// Command planetload drives configurable workloads against an in-process
// PLANET deployment and prints a latency/outcome report — the load-testing
// companion to cmd/planetbench's fixed experiment suite.
//
// Examples:
//
//	planetload                                   # defaults: closed loop, buy workload
//	planetload -workload rmw -hot 4 -hotprob 0.8 # contended physical writes
//	planetload -open -rate 1500 -count 2000      # open-loop Poisson arrivals
//	planetload -admission 0.4 -speculate 0.95    # PLANET features on
//	planetload -mode classic -master us-east     # classic path via Virginia
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/mdcc"
	"planet/internal/metrics"
	"planet/internal/simnet"
	"planet/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "buy", "buy | rmw | transfer | checkout")
		keys         = flag.Int("keys", 1000, "key-space size")
		hot          = flag.Int("hot", 0, "hotspot size (0 = uniform)")
		hotprob      = flag.Float64("hotprob", 0.5, "fraction of traffic on the hotspot")
		clients      = flag.Int("clients", 20, "closed-loop client count")
		perClient    = flag.Int("per-client", 50, "transactions per client (closed loop)")
		openLoop     = flag.Bool("open", false, "open-loop (Poisson) arrivals instead of closed loop")
		rate         = flag.Float64("rate", 1000, "open-loop arrival rate, txn/s (emulator time)")
		count        = flag.Int("count", 1000, "open-loop transaction count")
		speculate    = flag.Float64("speculate", 0, "speculation threshold (0 disables)")
		admission    = flag.Float64("admission", 0, "admission MinLikelihood (0 disables)")
		modeName     = flag.String("mode", "fast", "fast | classic")
		master       = flag.String("master", "", "fixed master region (classic locality)")
		scale        = flag.Float64("scale", 0.02, "WAN time compression")
		seed         = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var mode mdcc.Mode
	switch *modeName {
	case "fast":
		mode = mdcc.ModeFast
	case "classic":
		mode = mdcc.ModeClassic
	default:
		fmt.Fprintf(os.Stderr, "planetload: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	var keygen workload.KeyGen
	if *hot > 0 {
		keygen = workload.Hotspot{Prefix: "k-", HotKeys: *hot, ColdKeys: *keys, HotProb: *hotprob}
	} else {
		keygen = workload.Uniform{Prefix: "k-", N: *keys}
	}
	var tmpl workload.Template
	switch *workloadName {
	case "buy":
		tmpl = workload.Buy{Products: keygen}
	case "rmw":
		tmpl = workload.ReadModifyWrite{Keys: keygen}
	case "transfer":
		tmpl = workload.Transfer{Accounts: keygen, Balance: 1_000_000}
	case "checkout":
		tmpl = workload.Checkout{Products: keygen, Orders: workload.Uniform{Prefix: "o-", N: *keys}}
	default:
		fmt.Fprintf(os.Stderr, "planetload: unknown workload %q\n", *workloadName)
		os.Exit(2)
	}

	c, err := cluster.New(cluster.Config{TimeScale: *scale, Seed: *seed, MasterRegion: simnet.Region(*master)})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{
		Cluster:   c,
		Mode:      mode,
		Admission: planet.AdmissionPolicy{MinLikelihood: *admission, ProbeFraction: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := workload.Options{DB: db, Template: tmpl, SpeculateAt: *speculate, Seed: *seed}
	var rep *workload.Report
	if *openLoop {
		rep, err = workload.Open{Options: opts, Rate: *rate, Count: *count}.Run()
	} else {
		rep, err = workload.Closed{Options: opts, Clients: *clients, PerClient: *perClient}.Run()
	}
	if err != nil {
		log.Fatal(err)
	}

	unscale := 1 / *scale
	fmt.Printf("workload=%s mode=%s clients=%d speculate=%.2f admission=%.2f\n",
		*workloadName, mode, *clients, *speculate, *admission)
	fmt.Println(rep)
	fmt.Println("latency in WAN time (rescaled):")
	fmt.Print(metrics.LabeledSummaries(map[string]metrics.Summary{
		"final":     rep.Final.Summarize(),
		"perceived": rep.Perceived.Summarize(),
		"accept":    rep.Accept.Summarize(),
	}, unscale))
	fmt.Println("per-origin final latency (WAN time):")
	fmt.Print(metrics.LabeledSummaries(rep.PerRegion(), unscale))
}
