// Command planetdemo walks one transaction through the PLANET stack and
// narrates every stage on stdout: submission, per-replica votes with the
// live commit likelihood, the speculative-commit point, and the final
// geo-replicated decision. Flags choose the origin region, the protocol
// path, and artificial contention so the abort/apology path can be watched
// as well.
//
// Usage:
//
//	planetdemo [-region us-west] [-mode fast|classic] [-contend] [-threshold 0.95]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/mdcc"
	"planet/internal/simnet"
	"planet/internal/txn"
)

func main() {
	var (
		regionFlag = flag.String("region", "us-west", "origin region")
		modeFlag   = flag.String("mode", "fast", "commit path: fast or classic")
		contend    = flag.Bool("contend", false, "race a conflicting writer so the demo txn aborts")
		threshold  = flag.Float64("threshold", 0.95, "speculation threshold")
		scale      = flag.Float64("scale", 0.05, "WAN time compression")
	)
	flag.Parse()

	var mode mdcc.Mode
	switch *modeFlag {
	case "fast":
		mode = mdcc.ModeFast
	case "classic":
		mode = mdcc.ModeClassic
	default:
		fmt.Fprintf(os.Stderr, "planetdemo: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	c, err := cluster.New(cluster.Config{TimeScale: *scale, Seed: time.Now().UnixNano() % 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	c.SeedBytes("demo", []byte("original"))

	s, err := db.Session(simnet.Region(*regionFlag))
	if err != nil {
		fmt.Fprintf(os.Stderr, "planetdemo: %v (regions: %v)\n", err, c.Regions())
		os.Exit(2)
	}

	if *contend {
		// A racing writer commits first, so the demo transaction's read
		// version goes stale and the commit aborts — exercising the
		// speculation-then-apology path.
		fmt.Println("· racing writer submitted from ap-southeast")
	}

	tx := s.Begin()
	if _, err := tx.Read("demo"); err != nil {
		log.Fatal(err)
	}
	tx.Set("demo", []byte("updated by demo"))

	if *contend {
		rival, err := db.Session(c.Regions()[3])
		if err != nil {
			log.Fatal(err)
		}
		rtx := rival.Begin()
		rtx.Set("demo", []byte("rival write"))
		rh, err := rtx.Commit(planet.CommitOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rh.Wait()
		c.Quiesce(5 * time.Second)
	}

	start := time.Now()
	stamp := func() string {
		return fmt.Sprintf("%8s", time.Since(start).Round(100*time.Microsecond))
	}
	fmt.Printf("submitting from %s via the %s path (speculate at %.2f)\n", *regionFlag, mode, *threshold)

	h, err := tx.Commit(planet.CommitOptions{
		SpeculateAt: *threshold,
		OnAccept: func(p planet.Progress) {
			fmt.Printf("%s  accepted      likelihood=%.3f\n", stamp(), p.Likelihood)
		},
		OnProgress: func(p planet.Progress) {
			fmt.Printf("%s  %-12s likelihood=%.3f votes=%d/%d\n",
				stamp(), p.Stage, p.Likelihood, p.VotesReceived, p.VotesExpected)
		},
		OnSpeculative: func(p planet.Progress) {
			fmt.Printf("%s  SPECULATIVE — application responds to the user here\n", stamp())
		},
		OnFinal: func(o txn.Outcome) {
			if o.Committed {
				fmt.Printf("%s  COMMITTED across %d datacenters\n", stamp(), len(c.Regions()))
			} else {
				fmt.Printf("%s  ABORTED: %v\n", stamp(), o.Err)
			}
		},
		OnApology: func(o txn.Outcome) {
			fmt.Printf("%s  APOLOGY — the speculative answer was wrong; compensate the user\n", stamp())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	o := h.Wait()

	c.Quiesce(5 * time.Second)
	fmt.Println()
	for _, r := range c.Regions() {
		v, _ := c.Replica(r).ReadLocal("demo")
		fmt.Printf("replica %-14s %q (v%d)\n", r, v.Bytes, v.Version)
	}
	if o.Committed != (o.Err == nil) {
		log.Fatalf("inconsistent outcome: %+v", o)
	}
}
