// Command planetd runs a PLANET deployment and serves one region's gateway
// over HTTP — the shape an application server embedding this library would
// take. It has two modes:
//
// Simulation mode (default) boots the whole multi-region cluster in-process
// over the simulated WAN:
//
//	planetd [-addr :8480] [-region us-west] [-mode fast] [-scale 0.05]
//	        [-admission 0.4] [-slowtxn 250ms] [-logaborted] [-chaos mixed]
//	        [-chaosapi] [-shedat 0.5] [-pprof localhost:6060] [-attr 30s]
//
// Deployment mode (-realnet) runs ONE region's node as this process —
// replica, coordinator, and an HTTP gateway — speaking the wire protocol
// over real TCP to its peer processes. Every region of the deployment runs
// its own planetd:
//
//	planetd -realnet -region us-west -listen 127.0.0.1:9001 \
//	        -peers 'us-west=127.0.0.1:9001,us-east=127.0.0.1:9002,eu-west=127.0.0.1:9003' \
//	        -datadir /var/lib/planet &
//	# ... same for us-east and eu-west with their own -addr/-listen/-datadir
//
// All nodes must agree on -peers: the sorted region set defines quorum
// sizes and key mastership. With -datadir the write-ahead log lives on
// disk and is replayed on restart, so a kill -9'd node rejoins with its
// decisions intact.
//
// Try it (simulation mode):
//
//	planetd &
//	curl -s 'localhost:8480/v1/read?key=demo'
//	curl -s -X POST localhost:8480/v1/txn \
//	     -d '{"ops":[{"kind":"add","key":"demo-counter","delta":1}],"speculateAt":0.95}'
//	curl -s 'localhost:8480/v1/txn/txn-1?wait=1'
//	curl -s 'localhost:8480/v1/txn/txn-1/trace'
//	curl -s 'localhost:8480/v1/stats'
//	curl -s 'localhost:8480/v1/metrics'
//
// With -chaosapi (simulation mode only), faults can be injected at runtime:
//
//	planetd -chaosapi &
//	curl -s -X POST localhost:8480/v1/chaos/latency \
//	     -d '{"from":"us-west","to":"eu-west","factor":5}'
//	curl -s -X POST localhost:8480/v1/chaos/scenario -d '{"preset":"mixed"}'
//	curl -s 'localhost:8480/v1/chaos/events'
//
// In deployment mode the /v1/net/* routes expose peer health and fault
// injection instead; OS-level faults (kill -9, SIGSTOP) come from outside.
//
// Observability extras in both modes: -pprof serves net/http/pprof on a
// separate address (profiling never shares the public gateway port), -attr
// periodically logs the per-stage latency attribution table (the same data
// as GET /v1/attribution), and per-transaction causal span trees are on by
// default under GET /v1/txn/{id}/trace.
//
// planetd shuts down gracefully on SIGINT/SIGTERM in both modes: the
// gateway stops accepting new transactions (503), in-flight transactions
// drain bounded by -drain, the WAL is fsynced, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux (-pprof)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"planet/internal/chaos"
	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/httpapi"
	"planet/internal/mdcc"
	"planet/internal/obs"
	"planet/internal/realnet"
	"planet/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// flags groups the command line; both modes share most of it.
type flags struct {
	addr       string
	region     string
	mode       string
	scale      float64
	admission  float64
	slowtxn    time.Duration
	logaborted bool
	traceCap   int
	chaosRun   string
	chaosAPI   bool
	shedAt     float64
	drain      time.Duration
	pprofAddr  string
	attr       time.Duration

	realnet  bool
	listen   string
	peers    string
	datadir  string
	netdelay time.Duration
	master   string
	committo time.Duration

	leases    bool
	leaseterm time.Duration
}

func parseFlags() *flags {
	f := &flags{}
	flag.StringVar(&f.addr, "addr", ":8480", "HTTP gateway listen address")
	flag.StringVar(&f.region, "region", "us-west", "gateway region")
	flag.Float64Var(&f.scale, "scale", 0.05, "WAN time compression (simulation mode)")
	flag.Float64Var(&f.admission, "admission", 0, "admission MinLikelihood (0 disables)")
	flag.DurationVar(&f.slowtxn, "slowtxn", 0, "log traces of transactions at least this slow (0 disables)")
	flag.BoolVar(&f.logaborted, "logaborted", false, "log every aborted transaction's trace")
	flag.IntVar(&f.traceCap, "tracecap", 512, "completed traces retained for /v1/traces")
	flag.StringVar(&f.chaosRun, "chaos", "", "run a fault scenario at boot: preset name or seed:<N> (implies -chaosapi; simulation mode)")
	flag.BoolVar(&f.chaosAPI, "chaosapi", false, "enable runtime fault injection via POST /v1/chaos/* (simulation mode)")
	flag.Float64Var(&f.shedAt, "shedat", 0.5, "shed speculation in a region whose recent timeout rate reaches this (0 disables)")
	flag.DurationVar(&f.drain, "drain", 10*time.Second, "bound on draining in-flight transactions at shutdown")
	flag.StringVar(&f.mode, "mode", "fast", "commit path: fast (Fast Paxos with classic fallback) or classic (master-arbitrated)")
	flag.StringVar(&f.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.DurationVar(&f.attr, "attr", 0, "log the per-stage latency attribution table at this interval (0 disables)")

	flag.BoolVar(&f.realnet, "realnet", false, "deployment mode: run one region's node over real TCP")
	flag.StringVar(&f.listen, "listen", "", "transport listen address (deployment mode; default: this region's -peers entry)")
	flag.StringVar(&f.peers, "peers", "", "comma-separated region=host:port for EVERY region, e.g. 'us-west=127.0.0.1:9001,us-east=127.0.0.1:9002'")
	flag.StringVar(&f.datadir, "datadir", "", "directory for the on-disk WAL (deployment mode; empty keeps it in memory)")
	flag.DurationVar(&f.netdelay, "netdelay", 0, "artificial inbound delivery delay (deployment mode, tests)")
	flag.StringVar(&f.master, "masterregion", "", "make one region master for every key (deployment mode, tests)")
	flag.DurationVar(&f.committo, "committimeout", 0, "bound a transaction's in-flight time (deployment mode; 0 uses the default)")
	flag.BoolVar(&f.leases, "leases", false, "replace static mastership with epoch-fenced master leases and automatic failover")
	flag.DurationVar(&f.leaseterm, "leaseterm", 0, "master lease term (0 uses the default; scaled by -scale in simulation mode)")
	flag.Parse()
	return f
}

func run() error {
	f := parseFlags()
	if _, err := commitMode(f.mode); err != nil {
		return err
	}
	if f.pprofAddr != "" {
		// The pprof mux is the default ServeMux (net/http/pprof registers
		// there on import); serve it on its own listener so profiling never
		// shares a port with the public gateway.
		go func() {
			log.Printf("planetd: pprof on http://%s/debug/pprof/", f.pprofAddr)
			if err := http.ListenAndServe(f.pprofAddr, nil); err != nil {
				log.Printf("planetd: pprof server: %v", err)
			}
		}()
	}
	if f.realnet {
		return runRealnet(f)
	}
	return runSimnet(f)
}

// commitMode maps the -mode flag to the protocol constant.
func commitMode(s string) (mdcc.Mode, error) {
	switch s {
	case "fast":
		return mdcc.ModeFast, nil
	case "classic":
		return mdcc.ModeClassic, nil
	}
	return 0, fmt.Errorf("planetd: -mode must be fast or classic, got %q", s)
}

// attrLogger periodically logs the attribution table until stop is closed.
// It gives operators the "where is my latency going" answer in the process
// log without needing to poll /v1/attribution.
func attrLogger(db *planet.DB, every time.Duration, stop <-chan struct{}) {
	a := db.Attribution()
	if a == nil || every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			snap := a.Snapshot()
			if len(snap.Stages) == 0 {
				continue
			}
			log.Printf("planetd: latency attribution\n%s", snap.Table())
		}
	}
}

// runSimnet boots the whole cluster in-process over the simulated WAN.
func runSimnet(f *flags) error {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		Capacity:      f.traceCap,
		SlowThreshold: f.slowtxn,
		LogAborted:    f.logaborted,
		Logf:          log.Printf,
	})

	// WAL on: crash/restart chaos faults recover replica state by replay.
	c, err := cluster.New(cluster.Config{
		TimeScale:    f.scale,
		WAL:          true,
		MasterLeases: f.leases,
		LeaseTerm:    f.leaseterm,
		OnLeaseEvent: func(r simnet.Region, ev mdcc.LeaseEvent) {
			recordLeaseEvent(reg, tracer, string(r), ev)
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	mode, _ := commitMode(f.mode)
	db, err := planet.Open(planet.Config{
		Cluster:         c,
		Mode:            mode,
		Admission:       planet.AdmissionPolicy{MinLikelihood: f.admission, ProbeFraction: 0.05},
		Health:          planet.HealthPolicy{MaxTimeoutRate: f.shedAt},
		Registry:        reg,
		Tracer:          tracer,
		Trace:           true,
		AttributionFeed: true,
	})
	if err != nil {
		return err
	}
	region := simnet.Region(f.region)
	sess, err := db.Session(region)
	if err != nil {
		return fmt.Errorf("%v (regions: %v)", err, c.Regions())
	}

	seedDemo(c)
	gw := httpapi.NewServer(db, sess)
	var eng *chaos.Engine
	if f.chaosAPI || f.chaosRun != "" {
		eng, err = chaos.New(chaos.Config{
			Cluster:  c,
			Registry: reg,
			Tracer:   tracer,
			Logf:     log.Printf,
		})
		if err != nil {
			return err
		}
		gw.EnableChaos(eng)
	}
	if f.chaosRun != "" {
		var sc chaos.Scenario
		if seedStr, ok := strings.CutPrefix(f.chaosRun, "seed:"); ok {
			seed, err := strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return fmt.Errorf("planetd: bad -chaos seed %q: %v", seedStr, err)
			}
			sc, err = chaos.Generate(c.Regions(), chaos.GenConfig{Seed: seed})
			if err != nil {
				return err
			}
		} else {
			sc, err = chaos.Preset(f.chaosRun, c.Regions())
			if err != nil {
				return err
			}
		}
		if err := eng.Run(sc); err != nil {
			return err
		}
		defer eng.Stop()
	}

	fmt.Printf("planetd: %d-region cluster up, gateway for %s on %s\n",
		len(c.Regions()), f.region, f.addr)
	fmt.Printf("seeded keys: demo (bytes), demo-counter (int), demo-stock (bounded 0..100), acct-1..acct-8\n")
	if eng != nil {
		fmt.Printf("chaos: POST /v1/chaos/* enabled (presets: %v)\n", chaos.PresetNames())
	}
	return serve(f, gw, db, c.WALOf(region))
}

// runRealnet runs one region's node over real TCP (deployment mode).
func runRealnet(f *flags) error {
	peers, err := parsePeers(f.peers)
	if err != nil {
		return err
	}
	region := simnet.Region(f.region)
	if _, ok := peers[region]; !ok {
		return fmt.Errorf("planetd: -region %q has no -peers entry", f.region)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		Capacity:      f.traceCap,
		SlowThreshold: f.slowtxn,
		LogAborted:    f.logaborted,
		Logf:          log.Printf,
	})

	// Peer health feeds speculation shedding: when so many peer links are
	// down that the fast quorum is unreachable, force the local region
	// degraded so sessions stop speculating on commits that must take the
	// classic path anyway. Peers with no recorded transition are up.
	var (
		dbPtr      atomic.Pointer[planet.DB]
		peerMu     sync.Mutex
		peerStates = make(map[simnet.Region]realnet.PeerState, len(peers)-1)
	)
	recompute := func() {
		peerMu.Lock()
		up := 1 // self
		for r := range peers {
			if r == region {
				continue
			}
			if peerStates[r] != realnet.PeerDown {
				up++
			}
		}
		degraded := up < mdcc.FastQuorum(len(peers))
		peerMu.Unlock()
		if db := dbPtr.Load(); db != nil {
			db.SetRegionForcedDegraded(region, degraded)
		}
	}
	onPeerState := func(r simnet.Region, st realnet.PeerState) {
		peerMu.Lock()
		peerStates[r] = st
		peerMu.Unlock()
		log.Printf("planetd: peer %s -> %s", r, st)
		// Every transition lands in the metrics (rate of flapping) and, as a
		// fault event, in all in-flight traces — so a trace of a transaction
		// that stalled shows the peer going down mid-flight.
		reg.Counter("planet_realnet_peer_transitions_total",
			"Peer health transitions observed by the transport.",
			obs.L("peer", string(r)), obs.L("state", st.String())).Inc()
		tracer.Broadcast(obs.Event{
			Kind:   obs.EvFault,
			Region: string(r),
			Note:   fmt.Sprintf("peer %s -> %s", r, st),
		})
		recompute()
	}

	c, err := cluster.NewNode(cluster.NodeConfig{
		Region:        region,
		Peers:         peers,
		Listen:        f.listen,
		DataDir:       f.datadir,
		InboundDelay:  f.netdelay,
		MasterRegion:  simnet.Region(f.master),
		CommitTimeout: f.committo,
		MasterLeases:  f.leases,
		LeaseTerm:     f.leaseterm,
		OnLeaseEvent: func(ev mdcc.LeaseEvent) {
			if ev.Kind != mdcc.LeaseRenewed {
				log.Printf("planetd: lease %s: %s epoch %d holder %s", ev.Keyspace, ev.Kind, ev.Epoch, ev.Holder)
			}
			recordLeaseEvent(reg, tracer, f.region, ev)
		},
		OnPeerState: onPeerState,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	mode, _ := commitMode(f.mode)
	db, err := planet.Open(planet.Config{
		Cluster:         c,
		Mode:            mode,
		Admission:       planet.AdmissionPolicy{MinLikelihood: f.admission, ProbeFraction: 0.05},
		Health:          planet.HealthPolicy{MaxTimeoutRate: f.shedAt},
		Registry:        reg,
		Tracer:          tracer,
		Trace:           true,
		AttributionFeed: true,
	})
	if err != nil {
		return err
	}
	dbPtr.Store(db)
	recompute()
	sess, err := db.Session(region)
	if err != nil {
		return err
	}

	// Seed the baseline, then replay whatever the on-disk WAL recovered over
	// it: a restarted node rejoins with every decision it had durably
	// logged before the crash.
	seedDemo(c)
	if err := c.RestartReplica(region); err != nil {
		return err
	}
	if n := c.WALRecovered(); n > 0 || c.WALTorn() {
		log.Printf("planetd: WAL replay: %d decisions recovered (torn tail: %v)", n, c.WALTorn())
	}

	gw := httpapi.NewServer(db, sess)
	gw.EnableRealNet(c.RealNet, c.Replica(region))
	registerRealnetMetrics(reg, c.RealNet)

	fmt.Printf("planetd: node %s up, transport on %s, gateway on %s, %d-region deployment\n",
		region, c.RealNet.ListenAddr(), f.addr, len(peers))
	return serve(f, gw, db, c.WALOf(region))
}

// serve runs the HTTP gateway until SIGINT/SIGTERM, then performs the
// hardened graceful shutdown both modes share: refuse new transactions,
// drain HTTP and in-flight transactions (bounded), fsync the WAL, exit 0.
func serve(f *flags, gw *httpapi.Server, db *planet.DB, wal *mdcc.WAL) error {
	srv := &http.Server{Addr: f.addr, Handler: gw}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if f.attr > 0 {
		attrStop := make(chan struct{})
		defer close(attrStop)
		go attrLogger(db, f.attr, attrStop)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("planetd: shutting down")
	// 1. Stop accepting new transactions; reads and status polls still work
	// so clients can observe their in-flight outcomes.
	gw.SetDraining(true)
	// 2. Let in-flight HTTP requests (including bounded waits) finish.
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("planetd: http shutdown: %v", err)
	}
	// 3. Drain in-flight transactions, bounded by -drain. Real time on
	// purpose: the bound must hold even if the cluster's clock is stalled.
	deadline := time.Now().Add(f.drain)
	for db.InFlight() > 0 {
		if time.Now().After(deadline) {
			log.Printf("planetd: drain bound hit with %d transactions in flight", db.InFlight())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// 4. Make the decision log durable before the deferred cluster Close.
	if wal != nil {
		if err := wal.Sync(); err != nil {
			return fmt.Errorf("planetd: wal sync: %w", err)
		}
	}
	fmt.Println("planetd: shutdown complete")
	return nil
}

// seedDemo installs the out-of-the-box records: the curl examples' keys and
// a small bank of bounded accounts the multi-process harness moves value
// between.
func seedDemo(c *cluster.Cluster) {
	c.SeedBytes("demo", []byte("hello from planetd"))
	c.SeedInt("demo-counter", 0, 0, 1<<40)
	c.SeedInt("demo-stock", 100, 0, 100)
	for i := 1; i <= 8; i++ {
		c.SeedInt(fmt.Sprintf("acct-%d", i), 100, 0, 10_000_000)
	}
}

// parsePeers parses "r1=host:port,r2=host:port" into the deployment map.
func parsePeers(s string) (map[simnet.Region]string, error) {
	if s == "" {
		return nil, fmt.Errorf("planetd: -realnet requires -peers")
	}
	out := make(map[simnet.Region]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("planetd: bad -peers entry %q (want region=host:port)", part)
		}
		r := simnet.Region(strings.TrimSpace(name))
		if _, dup := out[r]; dup {
			return nil, fmt.Errorf("planetd: duplicate -peers region %q", r)
		}
		out[r] = strings.TrimSpace(addr)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("planetd: -peers needs at least 2 regions, got %d", len(out))
	}
	return out, nil
}

// recordLeaseEvent lands one lease transition in the metrics — the epoch
// gauge per keyspace and the takeover counter — and, for everything but a
// routine renewal, broadcasts a fault-style event into all in-flight traces:
// a trace of a transaction stalled across a failover shows the lease moving.
func recordLeaseEvent(reg *obs.Registry, tracer *obs.Tracer, observer string, ev mdcc.LeaseEvent) {
	reg.Gauge("planet_lease_epoch",
		"Latest lease epoch observed, per keyspace.",
		obs.L("keyspace", string(ev.Keyspace))).Set(float64(ev.Epoch))
	if ev.Kind == mdcc.LeaseTakeover {
		reg.Counter("planet_lease_takeovers_total",
			"Keyspace lease takeovers won from a dead or deposed master.",
			obs.L("keyspace", string(ev.Keyspace))).Inc()
	}
	if ev.Kind == mdcc.LeaseRenewed {
		return
	}
	tracer.Broadcast(obs.Event{
		Kind:   obs.EvFault,
		Region: observer,
		Note:   fmt.Sprintf("lease %s: %s epoch %d holder %s", ev.Keyspace, ev.Kind, ev.Epoch, ev.Holder),
	})
}

// registerRealnetMetrics exposes the transport's counters and peer health
// through the gateway's /v1/metrics.
func registerRealnetMetrics(reg *obs.Registry, tr *realnet.Transport) {
	snap := func(pick func(realnet.StatsSnapshot) uint64) func() float64 {
		return func() float64 { return float64(pick(tr.StatsSnapshot())) }
	}
	reg.GaugeFunc("planet_realnet_sent_total",
		"Payloads handed to the transport for delivery.",
		snap(func(s realnet.StatsSnapshot) uint64 { return s.Sent }))
	reg.GaugeFunc("planet_realnet_delivered_total",
		"Payloads delivered to local handlers.",
		snap(func(s realnet.StatsSnapshot) uint64 { return s.Delivered }))
	reg.GaugeFunc("planet_realnet_dropped_total",
		"Payloads dropped (cut links, full queues, dead peers).",
		snap(func(s realnet.StatsSnapshot) uint64 { return s.Dropped }))
	reg.GaugeFunc("planet_realnet_decode_errors_total",
		"Inbound frames rejected as malformed (connection closed).",
		snap(func(s realnet.StatsSnapshot) uint64 { return s.DecodeErrors }))
	reg.GaugeFunc("planet_realnet_reconnects_total",
		"Peer connections re-established after a drop.",
		snap(func(s realnet.StatsSnapshot) uint64 { return s.Reconnects }))
	reg.GaugeFunc("planet_realnet_peers_down",
		"Remote peers currently marked down.",
		func() float64 {
			n := 0
			for _, st := range tr.PeerStates() {
				if st == realnet.PeerDown {
					n++
				}
			}
			return float64(n)
		})
}
