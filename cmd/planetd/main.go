// Command planetd runs a PLANET deployment in-process and serves one
// region's gateway over HTTP — the shape an application server embedding
// this library would take.
//
//	planetd [-addr :8480] [-region us-west] [-scale 0.05] [-admission 0.4]
//
// Try it:
//
//	planetd &
//	curl -s 'localhost:8480/v1/read?key=demo'
//	curl -s -X POST localhost:8480/v1/txn \
//	     -d '{"ops":[{"kind":"add","key":"demo-counter","delta":1}],"speculateAt":0.95}'
//	curl -s 'localhost:8480/v1/txn/txn-1?wait=1'
//	curl -s 'localhost:8480/v1/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/httpapi"
	"planet/internal/simnet"
)

func main() {
	var (
		addr      = flag.String("addr", ":8480", "listen address")
		region    = flag.String("region", "us-west", "gateway region")
		scale     = flag.Float64("scale", 0.05, "WAN time compression")
		admission = flag.Float64("admission", 0, "admission MinLikelihood (0 disables)")
	)
	flag.Parse()

	c, err := cluster.New(cluster.Config{TimeScale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	db, err := planet.Open(planet.Config{
		Cluster:   c,
		Admission: planet.AdmissionPolicy{MinLikelihood: *admission, ProbeFraction: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := db.Session(simnet.Region(*region))
	if err != nil {
		log.Fatalf("%v (regions: %v)", err, c.Regions())
	}

	// Seed a few records so curl examples work out of the box.
	c.SeedBytes("demo", []byte("hello from planetd"))
	c.SeedInt("demo-counter", 0, 0, 1<<40)
	c.SeedInt("demo-stock", 100, 0, 100)

	srv := httpapi.NewServer(db, sess)
	fmt.Printf("planetd: %d-region cluster up, gateway for %s on %s\n",
		len(c.Regions()), *region, *addr)
	fmt.Printf("seeded keys: demo (bytes), demo-counter (int), demo-stock (bounded 0..100)\n")
	log.Fatal(http.ListenAndServe(*addr, srv))
}
