// Command planetd runs a PLANET deployment in-process and serves one
// region's gateway over HTTP — the shape an application server embedding
// this library would take.
//
//	planetd [-addr :8480] [-region us-west] [-scale 0.05] [-admission 0.4]
//	        [-slowtxn 250ms] [-logaborted]
//
// Try it:
//
//	planetd &
//	curl -s 'localhost:8480/v1/read?key=demo'
//	curl -s -X POST localhost:8480/v1/txn \
//	     -d '{"ops":[{"kind":"add","key":"demo-counter","delta":1}],"speculateAt":0.95}'
//	curl -s 'localhost:8480/v1/txn/txn-1?wait=1'
//	curl -s 'localhost:8480/v1/txn/txn-1/trace'
//	curl -s 'localhost:8480/v1/stats'
//	curl -s 'localhost:8480/v1/metrics'
//
// planetd shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain (bounded by a short timeout) and the cluster is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/httpapi"
	"planet/internal/obs"
	"planet/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8480", "listen address")
		region     = flag.String("region", "us-west", "gateway region")
		scale      = flag.Float64("scale", 0.05, "WAN time compression")
		admission  = flag.Float64("admission", 0, "admission MinLikelihood (0 disables)")
		slowtxn    = flag.Duration("slowtxn", 0, "log traces of transactions at least this slow (0 disables)")
		logaborted = flag.Bool("logaborted", false, "log every aborted transaction's trace")
		traceCap   = flag.Int("tracecap", 512, "completed traces retained for /v1/traces")
	)
	flag.Parse()

	c, err := cluster.New(cluster.Config{TimeScale: *scale})
	if err != nil {
		return err
	}
	defer c.Close()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		Capacity:      *traceCap,
		SlowThreshold: *slowtxn,
		LogAborted:    *logaborted,
		Logf:          log.Printf,
	})
	db, err := planet.Open(planet.Config{
		Cluster:   c,
		Admission: planet.AdmissionPolicy{MinLikelihood: *admission, ProbeFraction: 0.05},
		Registry:  reg,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	sess, err := db.Session(simnet.Region(*region))
	if err != nil {
		return fmt.Errorf("%v (regions: %v)", err, c.Regions())
	}

	// Seed a few records so curl examples work out of the box.
	c.SeedBytes("demo", []byte("hello from planetd"))
	c.SeedInt("demo-counter", 0, 0, 1<<40)
	c.SeedInt("demo-stock", 100, 0, 100)

	srv := &http.Server{Addr: *addr, Handler: httpapi.NewServer(db, sess)}
	fmt.Printf("planetd: %d-region cluster up, gateway for %s on %s\n",
		len(c.Regions()), *region, *addr)
	fmt.Printf("seeded keys: demo (bytes), demo-counter (int), demo-stock (bounded 0..100)\n")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests finish,
		// then fall through to the deferred cluster Close.
		fmt.Println("planetd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
