// Command planetd runs a PLANET deployment in-process and serves one
// region's gateway over HTTP — the shape an application server embedding
// this library would take.
//
//	planetd [-addr :8480] [-region us-west] [-scale 0.05] [-admission 0.4]
//	        [-slowtxn 250ms] [-logaborted] [-chaos mixed] [-chaosapi] [-shedat 0.5]
//
// Try it:
//
//	planetd &
//	curl -s 'localhost:8480/v1/read?key=demo'
//	curl -s -X POST localhost:8480/v1/txn \
//	     -d '{"ops":[{"kind":"add","key":"demo-counter","delta":1}],"speculateAt":0.95}'
//	curl -s 'localhost:8480/v1/txn/txn-1?wait=1'
//	curl -s 'localhost:8480/v1/txn/txn-1/trace'
//	curl -s 'localhost:8480/v1/stats'
//	curl -s 'localhost:8480/v1/metrics'
//
// With -chaosapi, faults can be injected at runtime:
//
//	planetd -chaosapi &
//	curl -s -X POST localhost:8480/v1/chaos/latency \
//	     -d '{"from":"us-west","to":"eu-west","factor":5}'
//	curl -s -X POST localhost:8480/v1/chaos/scenario -d '{"preset":"mixed"}'
//	curl -s 'localhost:8480/v1/chaos/events'
//
// With -chaos <preset|seed:N>, the named fault scenario starts against the
// cluster at boot (implies -chaosapi).
//
// planetd shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// drain (bounded by a short timeout) and the cluster is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"planet/internal/chaos"
	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/httpapi"
	"planet/internal/obs"
	"planet/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8480", "listen address")
		region     = flag.String("region", "us-west", "gateway region")
		scale      = flag.Float64("scale", 0.05, "WAN time compression")
		admission  = flag.Float64("admission", 0, "admission MinLikelihood (0 disables)")
		slowtxn    = flag.Duration("slowtxn", 0, "log traces of transactions at least this slow (0 disables)")
		logaborted = flag.Bool("logaborted", false, "log every aborted transaction's trace")
		traceCap   = flag.Int("tracecap", 512, "completed traces retained for /v1/traces")
		chaosRun   = flag.String("chaos", "", "run a fault scenario at boot: preset name or seed:<N> (implies -chaosapi)")
		chaosAPI   = flag.Bool("chaosapi", false, "enable runtime fault injection via POST /v1/chaos/*")
		shedAt     = flag.Float64("shedat", 0.5, "shed speculation in a region whose recent timeout rate reaches this (0 disables)")
	)
	flag.Parse()

	// WAL on: crash/restart chaos faults recover replica state by replay.
	c, err := cluster.New(cluster.Config{TimeScale: *scale, WAL: true})
	if err != nil {
		return err
	}
	defer c.Close()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerConfig{
		Capacity:      *traceCap,
		SlowThreshold: *slowtxn,
		LogAborted:    *logaborted,
		Logf:          log.Printf,
	})
	db, err := planet.Open(planet.Config{
		Cluster:   c,
		Admission: planet.AdmissionPolicy{MinLikelihood: *admission, ProbeFraction: 0.05},
		Health:    planet.HealthPolicy{MaxTimeoutRate: *shedAt},
		Registry:  reg,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	sess, err := db.Session(simnet.Region(*region))
	if err != nil {
		return fmt.Errorf("%v (regions: %v)", err, c.Regions())
	}

	// Seed a few records so curl examples work out of the box.
	c.SeedBytes("demo", []byte("hello from planetd"))
	c.SeedInt("demo-counter", 0, 0, 1<<40)
	c.SeedInt("demo-stock", 100, 0, 100)

	gw := httpapi.NewServer(db, sess)
	var eng *chaos.Engine
	if *chaosAPI || *chaosRun != "" {
		eng, err = chaos.New(chaos.Config{
			Cluster:  c,
			Registry: reg,
			Tracer:   tracer,
			Logf:     log.Printf,
		})
		if err != nil {
			return err
		}
		gw.EnableChaos(eng)
	}
	if *chaosRun != "" {
		var sc chaos.Scenario
		if seedStr, ok := strings.CutPrefix(*chaosRun, "seed:"); ok {
			seed, err := strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return fmt.Errorf("planetd: bad -chaos seed %q: %v", seedStr, err)
			}
			sc, err = chaos.Generate(c.Regions(), chaos.GenConfig{Seed: seed})
			if err != nil {
				return err
			}
		} else {
			sc, err = chaos.Preset(*chaosRun, c.Regions())
			if err != nil {
				return err
			}
		}
		if err := eng.Run(sc); err != nil {
			return err
		}
		defer eng.Stop()
	}

	srv := &http.Server{Addr: *addr, Handler: gw}
	fmt.Printf("planetd: %d-region cluster up, gateway for %s on %s\n",
		len(c.Regions()), *region, *addr)
	fmt.Printf("seeded keys: demo (bytes), demo-counter (int), demo-stock (bounded 0..100)\n")
	if eng != nil {
		fmt.Printf("chaos: POST /v1/chaos/* enabled (presets: %v)\n", chaos.PresetNames())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests finish,
		// then fall through to the deferred cluster Close.
		fmt.Println("planetd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
