// Command planetbench regenerates the tables and figures of the PLANET
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	planetbench [-quick] [-seed N] [-scale F] [-metrics] all
//	planetbench [-quick] [-seed N] [-scale F] [-metrics] t1 f1 f5 ...
//	planetbench -list
//
// Latency columns are reported in WAN time: the experiments run on a
// time-compressed network emulation and measurements are rescaled back.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"planet/internal/experiments"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run reduced workload sizes")
		seed       = flag.Int64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 0, "WAN time-compression factor (0 = default)")
		list       = flag.Bool("list", false, "list experiments and exit")
		showMetric = flag.Bool("metrics", false, "also print machine-readable metrics")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "planetbench: no experiments given (try 'all' or -list)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, TimeScale: *scale}
	failed := false
	for _, id := range ids {
		run, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "planetbench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planetbench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res)
		if *showMetric {
			fmt.Print(res.FormatMetrics())
		}
		fmt.Printf("(%s ran in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
