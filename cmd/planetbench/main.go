// Command planetbench regenerates the tables and figures of the PLANET
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	planetbench [-quick] [-seed N] [-scale F] [-metrics] all
//	planetbench [-quick] [-seed N] [-scale F] [-metrics] t1 f1 f5 ...
//	planetbench [-quick] [-seed N] -openloop
//	planetbench -list
//
// Latency columns are reported in WAN time: the experiments run on a
// time-compressed network emulation and measurements are rescaled back.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/experiments"
	"planet/internal/regions"
	"planet/internal/workload"
)

func main() { os.Exit(run()) }

// run holds main's body so profile-flushing defers execute before the
// process exits with a failure code (os.Exit skips defers).
func run() int {
	var (
		quick      = flag.Bool("quick", false, "run reduced workload sizes")
		seed       = flag.Int64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 0, "WAN time-compression factor (0 = default)")
		list       = flag.Bool("list", false, "list experiments and exit")
		parallel   = flag.Bool("parallel", false, "sweep GOMAXPROCS (1/2/4/NumCPU) over the selected experiments, reporting wall time per setting and checking metrics stay bit-identical")
		openloop   = flag.Bool("openloop", false, "run the million-user open-loop traffic profile (surge schedule, Zipfian keys, adaptive admission) instead of experiments, checking conservation at every sample")
		showMetric = flag.Bool("metrics", false, "also print machine-readable metrics")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file`")
		memProfile = flag.String("memprofile", "", "write an allocation profile to `file` on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planetbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "planetbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "planetbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "planetbench: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *openloop {
		return runOpenLoop(*quick, *seed, *scale)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "planetbench: no experiments given (try 'all' or -list)")
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, TimeScale: *scale}
	if *parallel {
		return runParallelSweep(cfg, ids)
	}
	failed := false
	for _, id := range ids {
		run, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "planetbench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planetbench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res)
		if *showMetric {
			fmt.Print(res.FormatMetrics())
		}
		fmt.Printf("(%s ran in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		return 1
	}
	return 0
}

// runOpenLoop is the -openloop profile: the million-user open-loop traffic
// engine run end to end — a surge-shaped Poisson schedule with Zipfian key
// popularity, batched arrivals, the adaptive admission controller, and the
// conservation ledger checked at every sample. Quick mode scales the rates
// down tenfold (~130k arrivals); the full profile injects over a million.
func runOpenLoop(quick bool, seed int64, scale float64) int {
	c, err := cluster.New(cluster.Config{
		Topology:      regions.Three(),
		TimeScale:     scale, // 0 = cluster default
		Seed:          seed,
		VirtualTime:   true,
		CommitTimeout: 2 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "planetbench: %v\n", err)
		return 1
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	db, err := planet.Open(planet.Config{
		Cluster:   c,
		Admission: planet.AdmissionPolicy{MaxInFlight: 48},
		Adaptive:  planet.AdaptiveAdmission{Enabled: true},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "planetbench: %v\n", err)
		return 1
	}

	mul := 1.0
	if quick {
		mul = 0.1
	}
	ledger := &workload.Ledger{}
	start := time.Now()
	rep, err := workload.Open{
		Options: workload.Options{
			DB:       db,
			Template: workload.Buy{Products: workload.NewZipfFast("hot-", 1000, 1.2)},
			Seed:     seed + 7,
		},
		Phases: []workload.RatePhase{
			{Rate: 2e6 * mul, Dur: 200 * time.Millisecond}, // morning ramp
			{Rate: 5e6 * mul, Dur: 100 * time.Millisecond}, // surge peak
			{Rate: 0, Dur: 20 * time.Millisecond},          // trough
			{Rate: 2e6 * mul, Dur: 200 * time.Millisecond}, // evening tail
		},
		Batch:       200 * time.Microsecond,
		Ledger:      ledger,
		SampleEvery: 4096,
	}.Run()
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planetbench: openloop: %v\n", err)
		return 1
	}
	for _, s := range ledger.Samples() {
		if err := s.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "planetbench: openloop: %v\n", err)
			return 1
		}
	}
	final := ledger.Final()
	fmt.Printf("open-loop profile: %d arrivals in %s wall (%.0f arrivals/s real time)\n",
		final.Injected, wall.Round(time.Millisecond), float64(final.Injected)/wall.Seconds())
	fmt.Printf("  committed %d  aborted %d  rejected %d (%.1f%% shed)  in-flight %d\n",
		final.Committed, final.Aborted, final.Rejected,
		100*float64(final.Rejected)/float64(final.Injected), final.InFlight)
	fmt.Printf("  conservation held at all %d samples\n", len(ledger.Samples()))
	fmt.Printf("  commit rate %.3f  goodput %.1f/s (emulated)\n", rep.CommitRate(), rep.GoodputPerSec())
	for _, r := range c.Regions() {
		st := db.AdmissionState(r)
		fmt.Printf("  %-14s controller: epochs %d  window %d  min-likelihood %.3f\n",
			r, st.Epochs, st.MaxInFlight, st.MinLikelihood)
	}
	return 0
}

// runParallelSweep runs the selected experiments once per GOMAXPROCS setting
// (1, 2, 4, NumCPU — deduplicated), reporting per-setting wall time, and
// verifies the partitioned scheduler's headline claim: every run's metrics
// are bit-identical to the GOMAXPROCS=1 run's.
func runParallelSweep(cfg experiments.Config, ids []string) int {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var gmps []int
	for _, n := range []int{1, 2, 4, runtime.NumCPU()} {
		dup := false
		for _, seen := range gmps {
			dup = dup || seen == n
		}
		if !dup {
			gmps = append(gmps, n)
		}
	}
	sort.Ints(gmps)

	// reference metrics from the first (GOMAXPROCS=1) pass, keyed by id.
	reference := make(map[string]map[string]float64)
	identical := true
	fmt.Printf("%-10s %12s   %s\n", "gomaxprocs", "wall", "metrics vs GOMAXPROCS=1")
	for pass, gmp := range gmps {
		runtime.GOMAXPROCS(gmp)
		start := time.Now()
		diverged := []string{}
		for _, id := range ids {
			run, ok := experiments.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "planetbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			res, err := run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "planetbench: %s at GOMAXPROCS=%d failed: %v\n", id, gmp, err)
				return 1
			}
			if pass == 0 {
				reference[id] = res.Metrics
				continue
			}
			if !sameMetrics(reference[id], res.Metrics) {
				diverged = append(diverged, id)
			}
		}
		wall := time.Since(start).Round(time.Millisecond)
		verdict := "reference"
		if pass > 0 {
			verdict = "bit-identical"
			if len(diverged) > 0 {
				verdict = fmt.Sprintf("DIVERGED: %v", diverged)
				identical = false
			}
		}
		fmt.Printf("%-10d %12s   %s\n", gmp, wall, verdict)
	}
	if !identical {
		fmt.Fprintln(os.Stderr, "planetbench: determinism violation — metrics changed with GOMAXPROCS")
		return 1
	}
	return 0
}

// sameMetrics reports whether two metric maps are bit-identical.
func sameMetrics(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || math.Float64bits(va) != math.Float64bits(vb) {
			return false
		}
	}
	return true
}
