#!/bin/sh
# verify.sh — the checks a change must pass before merging:
# vet, full build, full test suite, then a race-detector pass over the
# packages with the most concurrency (core, mdcc, obs).
set -eux

# Static analysis first (go vet has been part of this gate since the seed;
# the parallel scheduler work leans on it for copylocks/loopclosure checks).
go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/core ./internal/mdcc ./internal/obs
# Chaos soak gate: fault schedules (partition + crash/WAL-recovery +
# latency spike) must preserve the safety invariants under the race
# detector, both under static mastership and under epoch-fenced master
# leases (TestChaosSoakLeaseFailover crashes a live lease holder mid-run
# and requires a takeover plus the same invariants). -short shrinks the
# workload but never skips.
go test -race -run Soak -short ./internal/chaos/
# Virtual-time gates. Determinism: the same seed must reproduce the F4
# metric map bit-for-bit (twice per run, ten runs, plus a race pass over
# the scheduler itself). Budget: the full experiment suite runs on the
# virtual clock and must finish inside a wall-time budget a real-clock
# run could never meet (it needs ~10s of sleeping per run alone).
# Since the partitioned scheduler landed, the gate runs at GOMAXPROCS=1
# AND GOMAXPROCS=4: the parallel merge layer must produce bit-identical
# metrics whether partitions interleave on one OS thread or truly race
# on four. Each invocation compares two same-seed runs internally.
GOMAXPROCS=1 go test -count=10 -run TestVirtualTimeDeterminism .
GOMAXPROCS=4 go test -count=10 -run TestVirtualTimeDeterminism .
# Cross-GOMAXPROCS comparison: planetbench -parallel runs the whole
# experiment registry once per GOMAXPROCS setting (1/2/4/NumCPU) in ONE
# process and fails unless every pass's metric maps are bit-identical to
# the GOMAXPROCS=1 reference.
go run ./cmd/planetbench -quick -parallel all
# Lease determinism gate: the same seed on the virtual clock with master
# leases ENABLED must produce bit-identical txn outcomes, final state, and
# lease views (leases default off; this is the only gate that turns them on
# deterministically).
go test -count=10 -run TestLeaseVirtualDeterminism ./internal/mdcc/
go test -race -count=2 ./internal/vclock
go test -count=1 -timeout 60s -run 'TestExperimentsRunClean|TestEvaluationShapes' .
# Open-loop traffic gates. Smoke: the -openloop profile (surge schedule,
# Zipfian keys, adaptive admission) must sustain its quick arrival volume
# with the conservation invariant (injected == committed + aborted +
# rejected + in-flight) holding at every sample. Determinism: ten runs of
# the admission-controller end-to-end test, each comparing two same-seed
# runs bit-for-bit — the feedback loop (epoch ticks, sketch quantiles,
# published thresholds) is part of the deterministic simulation.
go run ./cmd/planetbench -quick -openloop
go test -count=10 -timeout 120s -run TestAdaptiveAdmissionDeterminism ./internal/core/
# Observability gates. Attribution determinism: the same seed on the
# virtual clock must produce bit-identical per-stage variance tables
# (twice per test invocation, ten invocations), or the span pipeline has
# grown a nondeterminism bug. The causal-tree shape check rides along.
go test -count=10 -timeout 120s -run 'TestAttributionDeterminism|TestTraceSpans' ./internal/core/
# Realnet smoke gate: build planetd, boot a 3-process loopback cluster,
# commit transfers, SIGKILL one master mid-load, restart it, and require
# WAL replay, rejoin, cross-node agreement, and conservation — all inside
# a wall-clock budget. The wire codec's corruption-tolerance property
# tests ride in the same budget, as do the cross-process trace gates:
# a stitched coordinator+master+replica span tree served by a live trio,
# a /v1/attribution smoke against it, and trace continuity across a
# kill -9 + WAL-replay cycle (TestRealnetStitchedTrace,
# TestRealnetTraceContinuityAcrossCrash). The lease gates ride here too:
# TestRealnetMasterFailover kills the lease-holding master mid-load and
# requires bounded submits, an automatic takeover (exported via
# planet_lease_takeovers_total), and deposed reconvergence after restart;
# TestRealnetScenarioDriver replays a seeded chaos preset against the live
# fleet through the multinet scenario driver.
go test -count=1 -timeout 240s -run 'TestRealnet' ./internal/multinet/
go test -count=1 -timeout 60s -run 'TestWire' ./internal/mdcc/
# Transport equivalence gate: the same seeded workloads must produce the
# same verdicts and final state over simnet and over real TCP.
go test -count=1 -timeout 120s -run TestTransportEquivalence ./internal/cluster/
# Benchmark smoke gate: every benchmark in the tree must complete one
# iteration cleanly (catches panics on bench-only paths), and the commit
# hot path is held to its recorded allocation budget: 60 allocs/op when the
# batched wire format landed (BENCH_pr5.json), gated at 80 to absorb noise.
go test -run '^$' -bench . -benchtime 1x -benchmem ./...
allocs=$(go test -run '^$' -bench BenchmarkCoordinatorCommit -benchtime 1000x -benchmem ./internal/mdcc/ |
	awk '/^BenchmarkCoordinatorCommit/ {for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
[ -n "$allocs" ] && [ "$allocs" -le 80 ] || {
	echo "verify: BenchmarkCoordinatorCommit allocs/op=$allocs exceeds ceiling 80" >&2
	exit 1
}
