#!/bin/sh
# verify.sh — the checks a change must pass before merging:
# vet, full build, full test suite, then a race-detector pass over the
# packages with the most concurrency (core, mdcc, obs).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/core ./internal/mdcc ./internal/obs
# Chaos soak gate: fault schedules (partition + crash/WAL-recovery +
# latency spike) must preserve the safety invariants under the race
# detector. -short shrinks the workload but never skips.
go test -race -run Soak -short ./internal/chaos/
