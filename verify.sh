#!/bin/sh
# verify.sh — the checks a change must pass before merging:
# vet, full build, full test suite, then a race-detector pass over the
# packages with the most concurrency (core, mdcc, obs).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/core ./internal/mdcc ./internal/obs
