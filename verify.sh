#!/bin/sh
# verify.sh — the checks a change must pass before merging:
# vet, full build, full test suite, then a race-detector pass over the
# packages with the most concurrency (core, mdcc, obs).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/core ./internal/mdcc ./internal/obs
# Chaos soak gate: fault schedules (partition + crash/WAL-recovery +
# latency spike) must preserve the safety invariants under the race
# detector. -short shrinks the workload but never skips.
go test -race -run Soak -short ./internal/chaos/
# Virtual-time gates. Determinism: the same seed must reproduce the F4
# metric map bit-for-bit (twice per run, ten runs, plus a race pass over
# the scheduler itself). Budget: the full experiment suite runs on the
# virtual clock and must finish inside a wall-time budget a real-clock
# run could never meet (it needs ~10s of sleeping per run alone).
go test -count=10 -run TestVirtualTimeDeterminism .
go test -race -count=2 ./internal/vclock
go test -count=1 -timeout 60s -run 'TestExperimentsRunClean|TestEvaluationShapes' .
