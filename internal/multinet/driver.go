package multinet

// Scenario driver: replays the chaos package's fault timelines — the same
// seeded Generate schedules and named presets the simnet engine runs —
// against a live multi-process deployment, translating each simulated
// fault into something an operator (or an unlucky datacenter) could do to
// real processes:
//
//	FaultRegionDown    → cut every link to the victim + drop its listener
//	FaultLinkCut       → transport admin link cut (both directions)
//	FaultReplicaCrash  → kill -9, restart on heal (WAL replay)
//	FaultCoordCrash    → SIGSTOP, SIGCONT on heal (gray failure)
//	FaultLossBurst     → skipped (real TCP has no loss knob), recorded
//	FaultLatencySpike  → skipped (no latency knob either), recorded
//
// Like the simnet engine, the driver always heals everything it injected
// before returning — a scenario never leaves the fleet broken — and it
// reports what it actually did per fault, so tests can assert coverage
// and skipped kinds are visible rather than silently dropped.

import (
	"fmt"
	"sort"
	"time"

	"planet/internal/chaos"
)

// DriverConfig parameterizes RunScenario.
type DriverConfig struct {
	// TimeScale compresses the scenario's unscaled WAN offsets to real
	// time (0.1 turns a 60s schedule into 6s). Defaults to 1.
	TimeScale float64
	// Logf receives driver progress (optional).
	Logf func(format string, args ...any)
}

// FaultRecord is the driver's account of one scheduled fault: what the
// scenario asked for, the OS-level action it became, and any error
// injecting or healing it (errors are recorded, not fatal — a fault may
// legitimately find its victim already dead).
type FaultRecord struct {
	Fault   chaos.Fault
	Action  string
	Skipped bool
	Err     error
}

// RunScenario executes sc's timeline against the live deployment,
// blocking until every fault has been injected, held for its duration,
// and healed. It returns one record per fault in schedule order.
func (n *Network) RunScenario(sc chaos.Scenario, cfg DriverConfig) ([]FaultRecord, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for i, f := range sc.Faults {
		switch f.Kind {
		case chaos.FaultRegionDown, chaos.FaultReplicaCrash, chaos.FaultCoordCrash:
			if _, err := n.node(f.Region); err != nil {
				return nil, fmt.Errorf("multinet: fault %d: %w", i, err)
			}
		case chaos.FaultLinkCut, chaos.FaultLatencySpike:
			if _, err := n.node(f.From); err != nil {
				return nil, fmt.Errorf("multinet: fault %d: %w", i, err)
			}
			if _, err := n.node(f.To); err != nil {
				return nil, fmt.Errorf("multinet: fault %d: %w", i, err)
			}
		case chaos.FaultLossBurst:
			// Skipped at injection; nothing to validate.
		default:
			return nil, fmt.Errorf("multinet: fault %d: unknown kind %q", i, f.Kind)
		}
	}

	// One inject event per fault plus a heal event for bounded faults,
	// fired in offset order by this goroutine — injections never race.
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * cfg.TimeScale)
	}
	type event struct {
		at     time.Duration
		idx    int
		isHeal bool
	}
	var events []event
	for i, f := range sc.Faults {
		events = append(events, event{at: scale(f.At), idx: i})
		if f.Duration > 0 {
			events = append(events, event{at: scale(f.At + f.Duration), idx: i, isHeal: true})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].at < events[b].at })

	logf("multinet: scenario %q starting: %d faults at timescale %v", sc.Name, len(sc.Faults), cfg.TimeScale)
	records := make([]FaultRecord, len(sc.Faults))
	for i, f := range sc.Faults {
		records[i].Fault = f
	}
	start := time.Now()
	outstanding := make(map[int]bool, len(sc.Faults))
	for _, ev := range events {
		if wait := ev.at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		f := sc.Faults[ev.idx]
		if ev.isHeal {
			if !outstanding[ev.idx] {
				continue
			}
			delete(outstanding, ev.idx)
			if err := n.healFault(f); err != nil {
				records[ev.idx].Err = err
				logf("multinet: heal %s: %v", f.Kind, err)
			}
			continue
		}
		action, skipped, err := n.injectFault(f)
		records[ev.idx].Action, records[ev.idx].Skipped, records[ev.idx].Err = action, skipped, err
		switch {
		case err != nil:
			logf("multinet: inject %s: %v", f.Kind, err)
		case skipped:
			logf("multinet: skip %s (no live-process equivalent)", f.Kind)
		default:
			logf("multinet: inject %s: %s", f.Kind, action)
			outstanding[ev.idx] = true
		}
	}
	// Heal everything still outstanding (unbounded faults, early errors on
	// scheduled heals), in injection order.
	idxs := make([]int, 0, len(outstanding))
	for i := range outstanding {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if err := n.healFault(sc.Faults[i]); err != nil {
			records[i].Err = err
			logf("multinet: final heal %s: %v", sc.Faults[i].Kind, err)
		}
	}
	logf("multinet: scenario %q finished", sc.Name)
	return records, nil
}

// injectFault maps one chaos fault onto the live fleet.
func (n *Network) injectFault(f chaos.Fault) (action string, skipped bool, err error) {
	switch f.Kind {
	case chaos.FaultRegionDown:
		// Blackout: the process stays up but its datacenter goes dark —
		// every link severed and the transport listener dropped, so peers
		// can neither reach it nor be reached.
		for _, r := range n.regions {
			if r == f.Region {
				continue
			}
			if e := n.CutLink(f.Region, r); e != nil && err == nil {
				err = e
			}
		}
		if e := n.Client(f.Region).NetListener(true); e != nil && err == nil {
			err = e
		}
		return fmt.Sprintf("blackout %s (links cut, listener dropped)", f.Region), false, err
	case chaos.FaultLinkCut:
		return fmt.Sprintf("cut %s<->%s", f.From, f.To), false, n.CutLink(f.From, f.To)
	case chaos.FaultReplicaCrash:
		return fmt.Sprintf("kill -9 %s", f.Region), false, n.Kill(f.Region)
	case chaos.FaultCoordCrash:
		return fmt.Sprintf("SIGSTOP %s", f.Region), false, n.Pause(f.Region)
	case chaos.FaultLossBurst, chaos.FaultLatencySpike:
		return "", true, nil
	}
	return "", false, fmt.Errorf("multinet: unknown fault kind %q", f.Kind)
}

// healFault reverses injectFault.
func (n *Network) healFault(f chaos.Fault) error {
	switch f.Kind {
	case chaos.FaultRegionDown:
		var first error
		if err := n.Client(f.Region).NetListener(false); err != nil {
			first = err
		}
		for _, r := range n.regions {
			if r == f.Region {
				continue
			}
			if err := n.HealLink(f.Region, r); err != nil && first == nil {
				first = err
			}
		}
		return first
	case chaos.FaultLinkCut:
		return n.HealLink(f.From, f.To)
	case chaos.FaultReplicaCrash:
		return n.Restart(f.Region)
	case chaos.FaultCoordCrash:
		return n.Resume(f.Region)
	}
	return nil
}
