package multinet

// Process-level crash-restart tests: each test boots a 3-region cluster of
// real planetd processes on loopback TCP and injects OS-level faults.
// These are the live-fire counterpart to the simnet/chaos suites — fewer
// schedules, but real sockets, real SIGKILL, real WAL files.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"planet/internal/httpapi"
	"planet/internal/simnet"
)

// planetdBin is built once by TestMain and shared by every test.
var planetdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "multinet-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "multinet:", err)
		os.Exit(1)
	}
	planetdBin = filepath.Join(dir, "planetd")
	build := exec.Command("go", "build", "-o", planetdBin, "planet/cmd/planetd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "multinet: build planetd:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// start boots a cluster with test-friendly timeouts and registers cleanup.
func start(t *testing.T, cfg Config) *Network {
	t.Helper()
	cfg.Binary = planetdBin
	cfg.BaseDir = t.TempDir()
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = time.Second
	}
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// acctKeys is the bank planetd seeds: acct-1..acct-8 at 100 each.
func acctKeys() []string {
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct-%d", i+1)
	}
	return keys
}

// commitWithin retries fn (a submit returning committed) until it commits
// or the budget passes — the shape of "the cluster should recover" checks,
// where the first attempt may burn a commit timeout while peer health
// catches up with a silent kill.
func commitWithin(t *testing.T, budget time.Duration, what string, fn func() (bool, error)) {
	t.Helper()
	deadline := time.Now().Add(budget)
	var attempts int
	for {
		committed, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		attempts++
		if committed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: no commit within %v (%d attempts)", what, budget, attempts)
		}
	}
}

// assertAgreement cross-checks the decision maps of every pair of regions:
// a transaction decided by both must have the same verdict. This is THE
// safety property — a kill -9 must never yield a dual decision.
func assertAgreement(t *testing.T, n *Network, regions []simnet.Region) {
	t.Helper()
	maps := make(map[simnet.Region]map[string]bool, len(regions))
	for _, r := range regions {
		d, err := n.Decisions(r)
		if err != nil {
			t.Fatalf("decisions %s: %v", r, err)
		}
		maps[r] = d
	}
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			for id, va := range maps[a] {
				if vb, ok := maps[b][id]; ok && va != vb {
					t.Errorf("dual decision on %s: %s says commit=%v, %s says commit=%v",
						id, a, va, b, vb)
				}
			}
		}
	}
}

// TestRealnetKillRestartMaster is the acceptance scenario: a 3-process
// cluster sustains commits while one key-master is SIGKILLed mid-load and
// restarted; the restarted node replays its WAL, rejoins, agrees with the
// survivors on every decision both retain, and account money is conserved.
func TestRealnetKillRestartMaster(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	n := start(t, Config{})
	keys := acctKeys()

	// The victim is whatever region masters acct-1; the gateway is any
	// other region. Survivor keys are mastered by neither-dead regions, so
	// their classic path stays available during the outage.
	victim := n.MasterOf(keys[0])
	var gw simnet.Region
	for _, r := range n.Regions() {
		if r != victim {
			gw = r
			break
		}
	}
	var survivorKeys []string
	for _, k := range keys {
		if n.MasterOf(k) != victim {
			survivorKeys = append(survivorKeys, k)
		}
	}
	if len(survivorKeys) < 2 {
		t.Fatalf("mastership hash left %d survivor keys; need 2", len(survivorKeys))
	}
	t.Logf("victim=%s gateway=%s survivorKeys=%v", victim, gw, survivorKeys)
	sess := n.Session(gw, 8*time.Second)

	// Phase 1: healthy cluster, fast-path transfers across the whole bank.
	for i := 0; i < 6; i++ {
		from, to := keys[i%len(keys)], keys[(i+3)%len(keys)]
		if from == to {
			continue
		}
		committed, id, err := sess.Transfer(from, to, 5)
		if err != nil || !committed {
			t.Fatalf("phase 1 transfer %s: committed=%v err=%v", id, committed, err)
		}
	}

	// Phase 2: kill -9 the master mid-load. The first transfer may burn a
	// commit timeout while the transport notices the silent death; after
	// that, submissions degrade to the classic path and keep committing.
	if err := n.Kill(victim); err != nil {
		t.Fatal(err)
	}
	commitWithin(t, 15*time.Second, "first post-kill transfer", func() (bool, error) {
		c, _, err := sess.Transfer(survivorKeys[0], survivorKeys[1], 1)
		return c, err
	})
	if err := n.WaitPeerState(gw, victim, "down", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	committedDuringOutage := 1
	for i := 0; i < 5; i++ {
		from := survivorKeys[i%len(survivorKeys)]
		to := survivorKeys[(i+1)%len(survivorKeys)]
		committed, id, err := sess.Transfer(from, to, 2)
		if err != nil {
			t.Fatalf("outage transfer %s: %v", id, err)
		}
		if committed {
			committedDuringOutage++
		}
	}
	if committedDuringOutage < 5 {
		t.Errorf("only %d/6 transfers committed during the outage; degraded path should sustain load", committedDuringOutage)
	}

	// Phase 3: restart. The node replays its WAL over the seeded baseline,
	// rejoins, and keys it masters become writable again.
	if err := n.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if ok, err := n.GrepLog(victim, "WAL replay"); err != nil || !ok {
		t.Errorf("restarted node did not report a WAL replay (err=%v); log %s", err, n.nodes[victim].LogPath)
	}
	if err := n.WaitPeerState(gw, victim, "up", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	commitWithin(t, 15*time.Second, "post-restart transfer on a victim-mastered key", func() (bool, error) {
		c, _, err := sess.Transfer(keys[0], survivorKeys[0], 1)
		return c, err
	})

	// Safety and conservation audits.
	assertAgreement(t, n, n.Regions())
	var sum int64
	for _, k := range keys {
		v, err := sess.ReadInt(k)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if sum != int64(len(keys))*100 {
		t.Errorf("money not conserved: accounts sum to %d, want %d", sum, len(keys)*100)
	}
}

// TestRealnetWALCrashPointMasterKill aims a kill -9 into the window between
// option-accept and decision write at the master of every key: a burst of
// transfers is in flight (widened by -netdelay) when the master dies. After
// restart the master's replayed WAL must agree with the survivors on every
// decision both retain — no dual decision, no resurrected commit.
func TestRealnetWALCrashPointMasterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	victim := simnet.Region("us-east")
	n := start(t, Config{
		MasterRegion:  victim,
		NetDelay:      30 * time.Millisecond,
		CommitTimeout: 1500 * time.Millisecond,
	})
	gw := simnet.Region("us-west")
	sess := n.Session(gw, 8*time.Second)
	keys := acctKeys()

	// Establish some durable decisions at the master.
	for i := 0; i < 3; i++ {
		committed, id, err := sess.Transfer(keys[i], keys[i+1], 3)
		if err != nil || !committed {
			t.Fatalf("warmup transfer %s: committed=%v err=%v", id, committed, err)
		}
	}

	// Fire a burst without waiting, then kill the master while the frames
	// are still being delivered (each hop eats >=30ms).
	cl := n.Client(gw)
	var ids []string
	for i := 0; i < 8; i++ {
		from, to := keys[i%len(keys)], keys[(i+5)%len(keys)]
		if from == to {
			continue
		}
		id, err := cl.Submit(transferReq(from, to, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := n.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Every in-flight transaction must still resolve at the coordinator —
	// commit (decision already reached) or abort by commit timeout.
	outcomes := make(map[string]bool, len(ids))
	for _, id := range ids {
		st, err := waitResolved(cl, id, 10*time.Second)
		if err != nil {
			t.Fatalf("txn %s never resolved after master kill: %v", id, err)
		}
		outcomes[id] = st.Committed
	}

	// Restart the master: WAL replay must land it on the survivors' side
	// of every decision it managed to log.
	if err := n.Restart(victim); err != nil {
		t.Fatal(err)
	}
	assertAgreement(t, n, n.Regions())

	// The survivors' decision maps are the ground truth for the client's
	// observed outcomes: anything the client saw commit must be a commit
	// there too (and never the reverse at the restarted master).
	for _, r := range []simnet.Region{gw, "eu-west"} {
		decisions, err := n.Decisions(r)
		if err != nil {
			t.Fatal(err)
		}
		for id, committed := range outcomes {
			if committed {
				if got, ok := decisions[id]; ok && !got {
					t.Errorf("client saw %s commit but %s decided abort", id, r)
				}
			}
		}
	}

	// And the deployment is writable again.
	commitWithin(t, 15*time.Second, "post-restart transfer", func() (bool, error) {
		c, _, err := sess.Transfer(keys[0], keys[1], 1)
		return c, err
	})
}

// TestRealnetPartitionAndListenerCycle drives a link partition and a
// listener drop/restore cycle (a reconnect storm in miniature) and checks
// the degraded paths keep committing throughout.
func TestRealnetPartitionAndListenerCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	n := start(t, Config{})
	gw := simnet.Region("us-west")
	other := simnet.Region("us-east")
	sess := n.Session(gw, 6*time.Second)
	keys := acctKeys()

	// Split the keys by the partition's reachability from the gateway.
	var reachable, unreachable []string
	for _, k := range keys {
		if n.MasterOf(k) == other {
			unreachable = append(unreachable, k)
		} else {
			reachable = append(reachable, k)
		}
	}
	if len(reachable) < 2 || len(unreachable) < 1 {
		t.Fatalf("mastership split unusable: reachable=%v unreachable=%v", reachable, unreachable)
	}

	// Partition gw <-> other. The cut registers immediately in the
	// transport's health, so submissions degrade to classic from the
	// first transaction: no sacrificial timeout.
	if err := n.CutLink(gw, other); err != nil {
		t.Fatal(err)
	}
	committed, id, err := sess.Transfer(reachable[0], reachable[1], 2)
	if err != nil || !committed {
		t.Fatalf("transfer during partition %s: committed=%v err=%v", id, committed, err)
	}
	// A key mastered across the cut cannot commit (its classic path needs
	// the master); it must abort by commit timeout, not hang.
	committed, _, err = sess.Transfer(unreachable[0], reachable[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Error("transfer on a key mastered across the partition committed")
	}
	if err := n.HealLink(gw, other); err != nil {
		t.Fatal(err)
	}
	commitWithin(t, 15*time.Second, "post-heal transfer on the cut-off master's key", func() (bool, error) {
		c, _, err := sess.Transfer(unreachable[0], reachable[0], 1)
		return c, err
	})

	// Listener cycle: drop the peer's listener a few times in a row (every
	// established connection dies each time), then restore and require the
	// gateway's transport to have reconnected and the fast path to work.
	for i := 0; i < 3; i++ {
		if err := n.Client(other).NetListener(true); err != nil {
			t.Fatal(err)
		}
		time.Sleep(150 * time.Millisecond)
		if err := n.Client(other).NetListener(false); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.WaitPeerState(gw, other, "up", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	commitWithin(t, 15*time.Second, "post-storm transfer", func() (bool, error) {
		c, _, err := sess.Transfer(unreachable[0], reachable[0], 1)
		return c, err
	})
	peers, err := n.Client(gw).NetPeers()
	if err != nil {
		t.Fatal(err)
	}
	if peers.Stats.Reconnects == 0 {
		t.Error("reconnect storm left no reconnects in the transport stats")
	}
}

// TestRealnetGracefulShutdown checks the SIGTERM path: the node drains,
// fsyncs its WAL, and exits 0; a later restart replays a clean (untorn)
// log and rejoins.
func TestRealnetGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	n := start(t, Config{Drain: 3 * time.Second})
	gw := simnet.Region("us-west")
	victim := simnet.Region("eu-west")
	sess := n.Session(gw, 6*time.Second)
	keys := acctKeys()

	for i := 0; i < 3; i++ {
		committed, id, err := sess.Transfer(keys[i], keys[i+2], 4)
		if err != nil || !committed {
			t.Fatalf("transfer %s: committed=%v err=%v", id, committed, err)
		}
	}
	if err := n.Stop(victim, 10*time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if ok, _ := n.GrepLog(victim, "shutdown complete"); !ok {
		t.Error("node log missing 'shutdown complete'")
	}
	if err := n.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if ok, _ := n.GrepLog(victim, "WAL replay"); !ok {
		t.Error("restart after graceful shutdown did not replay the WAL")
	}
	if ok, _ := n.GrepLog(victim, "torn tail: true"); ok {
		t.Error("graceful shutdown left a torn WAL tail")
	}
	if err := n.WaitPeerState(gw, victim, "up", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	commitWithin(t, 15*time.Second, "post-restart transfer", func() (bool, error) {
		c, _, err := sess.Transfer(keys[0], keys[1], 1)
		return c, err
	})
	assertAgreement(t, n, n.Regions())
}

// transferReq builds a two-account transfer request for the raw client.
func transferReq(from, to string, amt int64) httpapi.SubmitRequest {
	return httpapi.SubmitRequest{Ops: []httpapi.Op{
		{Kind: "add", Key: from, Delta: -amt},
		{Kind: "add", Key: to, Delta: amt},
	}}
}

// waitResolved polls a transaction's bounded wait until it reports done.
func waitResolved(cl *httpapi.Client, id string, budget time.Duration) (httpapi.Status, error) {
	deadline := time.Now().Add(budget)
	for {
		st, timedOut, err := cl.WaitBounded(id, 500*time.Millisecond)
		if err != nil {
			return httpapi.Status{}, err
		}
		if !timedOut && st.Done {
			return st, nil
		}
		if time.Now().After(deadline) {
			return httpapi.Status{}, fmt.Errorf("transaction %s unresolved after %v", id, budget)
		}
	}
}
