// Package multinet boots and torments multi-process PLANET clusters: N
// planetd processes (separate OS processes, WALs on disk, real TCP between
// them) that the crash-restart tests drive through OS-level fault
// injection — kill -9, SIGSTOP/SIGCONT, SIGTERM, dropped listeners, and
// link cuts via the transport's admin API.
//
// Where package chaos injects faults into the simulated WAN's knobs, this
// harness has no privileged view at all: every observation goes through
// each node's HTTP gateway, and every fault is something an operator (or
// an unlucky datacenter) could do to a live process. It is the sonic-style
// end of the testing spectrum — fewer schedules than simnet explores, but
// each one real.
package multinet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"planet/internal/httpapi"
	"planet/internal/mdcc"
	"planet/internal/simnet"
)

// DefaultRegions is the three-datacenter deployment the tests use.
var DefaultRegions = []simnet.Region{"us-west", "us-east", "eu-west"}

// Config parameterizes Start.
type Config struct {
	// Binary is the path to a planetd binary. Required.
	Binary string
	// BaseDir holds per-node data dirs and log files. Required (tests pass
	// t.TempDir()).
	BaseDir string
	// Regions lists the deployment's regions. Defaults to DefaultRegions.
	Regions []simnet.Region
	// CommitTimeout is passed as -committimeout (0 keeps the default).
	// Small values bound how long a transaction caught mid-fault stalls.
	CommitTimeout time.Duration
	// NetDelay is passed as -netdelay: an artificial inbound delivery
	// delay that widens protocol windows loopback TCP makes vanishingly
	// small (the WAL crash-point test aims kills into that window).
	NetDelay time.Duration
	// MasterRegion pins every key's master (-masterregion); empty keeps
	// hash mastership.
	MasterRegion simnet.Region
	// Mode is passed as -mode ("fast" or "classic"); empty keeps the
	// default. Classic routes every option through the key's master, which
	// the trace tests use to get master-side spans from a separate process.
	Mode string
	// Drain is passed as -drain (0 keeps the default).
	Drain time.Duration
	// Leases passes -leases: epoch-fenced master leases with automatic
	// failover replace the static master assignment.
	Leases bool
	// LeaseTerm is passed as -leaseterm (0 keeps the default). Small values
	// shrink the failover window the tests wait out.
	LeaseTerm time.Duration
	// ReadyTimeout bounds waiting for a node's gateway to come up.
	// Defaults to 15s.
	ReadyTimeout time.Duration
}

// Node is one planetd process of the deployment.
type Node struct {
	Region   simnet.Region
	HTTPAddr string // gateway, 127.0.0.1:port
	NetAddr  string // transport, 127.0.0.1:port
	DataDir  string
	LogPath  string

	args []string
	mu   sync.Mutex
	cmd  *exec.Cmd
	logf *os.File
}

// Network is a running multi-process deployment.
type Network struct {
	cfg     Config
	regions []simnet.Region // sorted, as the nodes see them
	nodes   map[simnet.Region]*Node
}

// Start builds the deployment layout, launches one planetd per region, and
// waits for every gateway to come up.
func Start(cfg Config) (*Network, error) {
	if cfg.Binary == "" || cfg.BaseDir == "" {
		return nil, fmt.Errorf("multinet: Binary and BaseDir are required")
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = DefaultRegions
	}
	if cfg.ReadyTimeout == 0 {
		cfg.ReadyTimeout = 15 * time.Second
	}
	regions := append([]simnet.Region(nil), cfg.Regions...)
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })

	ports, err := freePorts(2 * len(regions))
	if err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, regions: regions, nodes: make(map[simnet.Region]*Node, len(regions))}
	peerSpec := make([]string, 0, len(regions))
	for i, r := range regions {
		n.nodes[r] = &Node{
			Region:   r,
			HTTPAddr: fmt.Sprintf("127.0.0.1:%d", ports[2*i]),
			NetAddr:  fmt.Sprintf("127.0.0.1:%d", ports[2*i+1]),
			DataDir:  filepath.Join(cfg.BaseDir, string(r)),
			LogPath:  filepath.Join(cfg.BaseDir, string(r)+".log"),
		}
		peerSpec = append(peerSpec, fmt.Sprintf("%s=%s", r, n.nodes[r].NetAddr))
	}
	peers := strings.Join(peerSpec, ",")
	for _, r := range regions {
		nd := n.nodes[r]
		nd.args = []string{
			"-realnet",
			"-region", string(r),
			"-listen", nd.NetAddr,
			"-peers", peers,
			"-addr", nd.HTTPAddr,
			"-datadir", nd.DataDir,
		}
		if cfg.CommitTimeout > 0 {
			nd.args = append(nd.args, "-committimeout", cfg.CommitTimeout.String())
		}
		if cfg.NetDelay > 0 {
			nd.args = append(nd.args, "-netdelay", cfg.NetDelay.String())
		}
		if cfg.MasterRegion != "" {
			nd.args = append(nd.args, "-masterregion", string(cfg.MasterRegion))
		}
		if cfg.Mode != "" {
			nd.args = append(nd.args, "-mode", cfg.Mode)
		}
		if cfg.Drain > 0 {
			nd.args = append(nd.args, "-drain", cfg.Drain.String())
		}
		if cfg.Leases {
			nd.args = append(nd.args, "-leases")
			if cfg.LeaseTerm > 0 {
				nd.args = append(nd.args, "-leaseterm", cfg.LeaseTerm.String())
			}
		}
	}
	for _, r := range regions {
		if err := n.launch(n.nodes[r]); err != nil {
			n.Close()
			return nil, err
		}
	}
	for _, r := range regions {
		if err := n.WaitReady(r); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The window between release and the node's bind is real but tiny,
// and loopback tests tolerate it.
func freePorts(n int) ([]int, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range lns {
			l.Close()
		}
	}()
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("multinet: reserve port: %w", err)
		}
		lns = append(lns, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// launch starts (or restarts) a node's process, appending to its log.
func (n *Network) launch(nd *Node) error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd != nil {
		return fmt.Errorf("multinet: node %s already running", nd.Region)
	}
	logf, err := os.OpenFile(nd.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("multinet: node log: %w", err)
	}
	cmd := exec.Command(n.cfg.Binary, nd.args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("multinet: start %s: %w", nd.Region, err)
	}
	nd.cmd, nd.logf = cmd, logf
	return nil
}

// node returns the region's node or an error.
func (n *Network) node(r simnet.Region) (*Node, error) {
	nd := n.nodes[r]
	if nd == nil {
		return nil, fmt.Errorf("multinet: unknown region %q", r)
	}
	return nd, nil
}

// Regions returns the deployment's regions, sorted (the order that defines
// quorums and mastership on every node).
func (n *Network) Regions() []simnet.Region {
	return append([]simnet.Region(nil), n.regions...)
}

// MasterOf reports which region masters key under this deployment's region
// set (matching what every node computes).
func (n *Network) MasterOf(key string) simnet.Region {
	if n.cfg.MasterRegion != "" {
		return n.cfg.MasterRegion
	}
	return mdcc.MasterFor(key, n.regions)
}

// Client returns an HTTP client against the region's gateway.
func (n *Network) Client(r simnet.Region) *httpapi.Client {
	nd := n.nodes[r]
	if nd == nil {
		return &httpapi.Client{}
	}
	return &httpapi.Client{Base: "http://" + nd.HTTPAddr}
}

// WaitReady polls the region's gateway until it serves reads.
func (n *Network) WaitReady(r simnet.Region) error {
	nd, err := n.node(r)
	if err != nil {
		return err
	}
	cl := n.Client(r)
	deadline := time.Now().Add(n.cfg.ReadyTimeout)
	for {
		if resp, err := cl.Read("demo"); err == nil && resp.Found {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("multinet: node %s (%s) not ready within %v (log: %s)",
				r, nd.HTTPAddr, n.cfg.ReadyTimeout, nd.LogPath)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Kill delivers SIGKILL — the process vanishes mid-whatever-it-was-doing,
// with no chance to flush or say goodbye.
func (n *Network) Kill(r simnet.Region) error {
	nd, err := n.node(r)
	if err != nil {
		return err
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd == nil {
		return fmt.Errorf("multinet: node %s not running", r)
	}
	nd.cmd.Process.Kill()
	nd.cmd.Wait() // reap; a SIGKILL exit is expected to be non-zero
	nd.logf.Close()
	nd.cmd, nd.logf = nil, nil
	return nil
}

// Stop delivers SIGTERM and waits for a graceful exit, returning an error
// if the process exits non-zero or outlives timeout.
func (n *Network) Stop(r simnet.Region, timeout time.Duration) error {
	nd, err := n.node(r)
	if err != nil {
		return err
	}
	nd.mu.Lock()
	cmd := nd.cmd
	nd.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("multinet: node %s not running", r)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("multinet: signal %s: %w", r, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		nd.mu.Lock()
		nd.logf.Close()
		nd.cmd, nd.logf = nil, nil
		nd.mu.Unlock()
		if err != nil {
			return fmt.Errorf("multinet: node %s graceful exit: %w", r, err)
		}
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		nd.mu.Lock()
		nd.logf.Close()
		nd.cmd, nd.logf = nil, nil
		nd.mu.Unlock()
		return fmt.Errorf("multinet: node %s did not exit within %v of SIGTERM", r, timeout)
	}
}

// Restart relaunches a killed or stopped node with its original arguments
// (same ports, same data dir — the WAL replays) and waits for readiness.
func (n *Network) Restart(r simnet.Region) error {
	nd, err := n.node(r)
	if err != nil {
		return err
	}
	if err := n.launch(nd); err != nil {
		return err
	}
	return n.WaitReady(r)
}

// Pause delivers SIGSTOP: the process freezes with its sockets open — the
// gray failure where a peer is unreachable but its TCP endpoints linger.
func (n *Network) Pause(r simnet.Region) error { return n.signal(r, syscall.SIGSTOP) }

// Resume delivers SIGCONT after a Pause.
func (n *Network) Resume(r simnet.Region) error { return n.signal(r, syscall.SIGCONT) }

func (n *Network) signal(r simnet.Region, sig syscall.Signal) error {
	nd, err := n.node(r)
	if err != nil {
		return err
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd == nil {
		return fmt.Errorf("multinet: node %s not running", r)
	}
	return nd.cmd.Process.Signal(sig)
}

// Running reports whether the region's process is currently launched.
func (n *Network) Running(r simnet.Region) bool {
	nd := n.nodes[r]
	if nd == nil {
		return false
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.cmd != nil
}

// CutLink severs the link between two regions in both directions (each
// side drops traffic to and from the other). Both processes must be up.
func (n *Network) CutLink(a, b simnet.Region) error {
	if err := n.Client(a).NetCut(string(b), true); err != nil {
		return err
	}
	return n.Client(b).NetCut(string(a), true)
}

// HealLink restores a CutLink.
func (n *Network) HealLink(a, b simnet.Region) error {
	if err := n.Client(a).NetCut(string(b), false); err != nil {
		return err
	}
	return n.Client(b).NetCut(string(a), false)
}

// WaitPeerState polls region on's gateway until it reports peer about in
// the wanted state ("up", "suspect", "down").
func (n *Network) WaitPeerState(on, about simnet.Region, want string, timeout time.Duration) error {
	cl := n.Client(on)
	deadline := time.Now().Add(timeout)
	last := "?"
	for {
		if resp, err := cl.NetPeers(); err == nil {
			if st, ok := resp.Peers[string(about)]; ok {
				last = st
				if st == want {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("multinet: %s sees peer %s as %q, wanted %q within %v",
				on, about, last, want, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// WaitLeaseHolder polls region on's gateway until its replica's lease view
// reports keyspace held by want (lease deployments only).
func (n *Network) WaitLeaseHolder(on, keyspace, want simnet.Region, timeout time.Duration) error {
	cl := n.Client(on)
	deadline := time.Now().Add(timeout)
	last := "?"
	for {
		if resp, err := cl.NetLease(); err == nil {
			for _, li := range resp.Leases {
				if li.Keyspace == string(keyspace) {
					last = fmt.Sprintf("%s (epoch %d)", li.Holder, li.Epoch)
					if li.Holder == string(want) {
						return nil
					}
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("multinet: %s sees lease %s held by %s, wanted %s within %v",
				on, keyspace, last, want, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Decisions fetches every transaction verdict the region's replica retains.
func (n *Network) Decisions(r simnet.Region) (map[string]bool, error) {
	return n.Client(r).NetDecisions()
}

// GrepLog reports whether the node's log contains substr.
func (n *Network) GrepLog(r simnet.Region, substr string) (bool, error) {
	nd, err := n.node(r)
	if err != nil {
		return false, err
	}
	data, err := os.ReadFile(nd.LogPath)
	if err != nil {
		return false, err
	}
	return strings.Contains(string(data), substr), nil
}

// Close kills every running node. Data dirs and logs are left for the
// caller's cleanup (tests use t.TempDir).
func (n *Network) Close() {
	for _, nd := range n.nodes {
		nd.mu.Lock()
		if nd.cmd != nil {
			nd.cmd.Process.Kill()
			nd.cmd.Wait()
			nd.logf.Close()
			nd.cmd, nd.logf = nil, nil
		}
		nd.mu.Unlock()
	}
}

// Session wraps a gateway client with the workload vocabulary the tests
// speak: bounded-account transfers and integer reads.
type Session struct {
	C *httpapi.Client
	// Timeout bounds each SubmitAndWait.
	Timeout time.Duration
}

// Session returns a workload session against the region's gateway.
func (n *Network) Session(r simnet.Region, timeout time.Duration) *Session {
	return &Session{C: n.Client(r), Timeout: timeout}
}

// Add submits a single-key delta and reports whether it committed. An
// ErrWaitTimeout (transaction unresolved within Timeout) is reported as
// (false, nil, id): for a fault-injection workload that is an expected
// outcome, not a harness failure.
func (s *Session) Add(key string, delta int64) (committed bool, id string, err error) {
	return s.submit(httpapi.SubmitRequest{
		Ops: []httpapi.Op{{Kind: "add", Key: key, Delta: delta}},
	})
}

// Transfer moves amt from one bounded account to another atomically.
func (s *Session) Transfer(from, to string, amt int64) (committed bool, id string, err error) {
	return s.submit(httpapi.SubmitRequest{
		Ops: []httpapi.Op{
			{Kind: "add", Key: from, Delta: -amt},
			{Kind: "add", Key: to, Delta: amt},
		},
	})
}

func (s *Session) submit(req httpapi.SubmitRequest) (bool, string, error) {
	st, err := s.C.SubmitAndWait(req, s.Timeout)
	if err != nil {
		if errors.Is(err, httpapi.ErrWaitTimeout) {
			return false, st.Txn, nil
		}
		return false, "", err
	}
	return st.Committed, st.Txn, nil
}

// ReadInt reads a key's committed integer at the gateway's local replica.
func (s *Session) ReadInt(key string) (int64, error) {
	resp, err := s.C.Read(key)
	if err != nil {
		return 0, err
	}
	if !resp.Found {
		return 0, fmt.Errorf("multinet: key %q not found", key)
	}
	return resp.Int, nil
}
