package multinet

// Cross-process trace tests: the causal span tree must stitch together from
// spans recorded in separate OS processes (coordinator, master, replicas),
// and must stay stitched across a kill -9 / WAL-replay cycle.

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"planet/internal/httpapi"
	"planet/internal/mdcc"
	"planet/internal/simnet"
)

// pollTrace fetches a transaction's trace from the region's gateway until
// ok(spans) holds (spans from other processes arrive asynchronously via
// span-report frames) or the budget passes, returning the last response.
func pollTrace(t *testing.T, n *Network, r simnet.Region, id string,
	budget time.Duration, ok func([]httpapi.SpanJSON) bool) httpapi.TraceResponse {
	t.Helper()
	cl := n.Client(r)
	deadline := time.Now().Add(budget)
	var last httpapi.TraceResponse
	for {
		tr, err := cl.Trace(id)
		if err == nil {
			last = tr
			if ok(tr.Spans) {
				return tr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s on %s incomplete after %v: %d spans %+v",
				id, r, budget, len(last.Spans), last.Spans)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// spansByStage filters the wire-form spans by stage name.
func spansByStage(spans []httpapi.SpanJSON, stage string) []httpapi.SpanJSON {
	var out []httpapi.SpanJSON
	for _, sp := range spans {
		if sp.Stage == stage {
			out = append(out, sp)
		}
	}
	return out
}

// TestRealnetStitchedTrace is the tentpole acceptance scenario at process
// level: with the master pinned to a third process and the classic path
// forced, one transaction's trace — fetched from the coordinating gateway —
// must contain coordinator spans, a master_arbitrate span recorded by the
// master's process, and decide-broadcast spans recorded by at least two
// replica processes, all linked into a single causal tree. The attribution
// endpoint must then serve a ranked per-stage table built from those spans.
func TestRealnetStitchedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	gw := simnet.Region("us-west")
	master := simnet.Region("us-east")
	n := start(t, Config{Mode: "classic", MasterRegion: master, CommitTimeout: 3 * time.Second})
	sess := n.Session(gw, 8*time.Second)
	keys := acctKeys()

	// A handful of transfers: the first warms connections, the rest give
	// the attribution engine enough samples to rank variance.
	var lastCommitted string
	for i := 0; i < 8; i++ {
		committed, id, err := sess.Transfer(keys[i%len(keys)], keys[(i+3)%len(keys)], 1)
		if err != nil {
			t.Fatal(err)
		}
		if committed {
			lastCommitted = id
		}
	}
	if lastCommitted == "" {
		t.Fatal("no transfer committed on a healthy cluster")
	}

	tr := pollTrace(t, n, gw, lastCommitted, 10*time.Second, func(spans []httpapi.SpanJSON) bool {
		regions := make(map[string]bool)
		for _, sp := range spansByStage(spans, "decide_broadcast") {
			regions[sp.Region] = true
		}
		return len(spansByStage(spans, "total")) == 1 &&
			len(spansByStage(spans, "master_arbitrate")) >= 1 &&
			len(regions) >= 2
	})

	// One causal tree: a unique root, and every other span's parent chain
	// resolves to it — including the spans that crossed process boundaries.
	byID := make(map[uint64]httpapi.SpanJSON, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	root := spansByStage(tr.Spans, "total")[0]
	if root.Parent != 0 {
		t.Errorf("root span has parent %d", root.Parent)
	}
	for _, sp := range tr.Spans {
		cur, hops := sp, 0
		for cur.ID != root.ID {
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("%s span %d (region %s) has dangling parent %d",
					sp.Stage, sp.ID, sp.Region, cur.Parent)
			}
			if hops++; hops > len(tr.Spans) {
				t.Fatalf("parent cycle at %s span %d", sp.Stage, sp.ID)
			}
			cur = parent
		}
	}
	for _, sp := range spansByStage(tr.Spans, "master_arbitrate") {
		if sp.Region != string(master) {
			t.Errorf("master_arbitrate span from %s, want %s", sp.Region, master)
		}
	}

	// The same spans, aggregated: the gateway's attribution endpoint serves
	// a ranked snapshot with a dominant stage.
	snap, err := n.Client(gw).Attribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Stages) == 0 || snap.Dominant == "" {
		t.Fatalf("attribution snapshot empty: %+v", snap)
	}
	seen := make(map[string]bool, len(snap.Stages))
	for _, st := range snap.Stages {
		seen[st.Stage] = true
	}
	for _, want := range []string{"total", "master_arbitrate", "decide_broadcast", "replica_wal"} {
		if !seen[want] {
			t.Errorf("attribution snapshot missing stage %s: %+v", want, snap.Stages)
		}
	}
}

// TestRealnetTraceContinuityAcrossCrash kills -9 a replica after it has
// durably logged traced decisions, then restarts it and requires the
// replayed WAL to re-link its decisions to the pre-crash causal tree: the
// restarted process must serve a replay span whose parent is the very
// option-RPC span id the coordinator's process recorded before the crash.
func TestRealnetTraceContinuityAcrossCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	gw := simnet.Region("us-west")
	victim := simnet.Region("eu-west")
	n := start(t, Config{CommitTimeout: 3 * time.Second})
	sess := n.Session(gw, 8*time.Second)
	keys := acctKeys()

	for i := 0; i < 5; i++ {
		committed, id, err := sess.Transfer(keys[i%len(keys)], keys[(i+2)%len(keys)], 1)
		if err != nil || !committed {
			t.Fatalf("transfer %s: committed=%v err=%v", id, committed, err)
		}
	}

	if err := n.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Read the dead process's WAL straight off disk: the trace context must
	// have been persisted with the decision entries before the kill.
	walPath := filepath.Join(n.nodes[victim].DataDir, "wal-"+string(victim)+".jsonl")
	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var anchor mdcc.Entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e mdcc.Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // a torn tail is legitimate after SIGKILL
		}
		if e.Commit && e.OptionSpan != 0 && e.TraceSpan != 0 {
			anchor = e
		}
	}
	f.Close()
	if anchor.OptionSpan == 0 {
		t.Fatal("no WAL entry persisted its trace context before the kill")
	}

	// The pre-crash half of the link: the coordinator's process still holds
	// the option-RPC span the WAL entry points at.
	id := anchor.Txn.String()
	coordTr := pollTrace(t, n, gw, id, 10*time.Second, func(spans []httpapi.SpanJSON) bool {
		return len(spans) > 0
	})
	var foundOption bool
	for _, sp := range coordTr.Spans {
		if sp.ID == anchor.OptionSpan {
			if sp.Stage != "option_rpc" {
				t.Errorf("WAL anchor %d is a %s span at the coordinator, want option_rpc",
					anchor.OptionSpan, sp.Stage)
			}
			if sp.Region != string(victim) {
				t.Errorf("anchor option span region %s, want %s", sp.Region, victim)
			}
			foundOption = true
		}
	}
	if !foundOption {
		t.Fatalf("coordinator trace lacks the option span %d the victim's WAL anchors to",
			anchor.OptionSpan)
	}

	// The post-crash half: restart, replay, and the replayed decision span
	// must parent-link to that same pre-crash option span id.
	if err := n.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if ok, err := n.GrepLog(victim, "WAL replay"); err != nil || !ok {
		t.Errorf("restarted node did not report a WAL replay (err=%v)", err)
	}
	victimTr := pollTrace(t, n, victim, id, 10*time.Second, func(spans []httpapi.SpanJSON) bool {
		return len(spansByStage(spans, "replica_wal")) >= 1
	})
	var foundReplay bool
	for _, sp := range spansByStage(victimTr.Spans, "replica_wal") {
		if sp.Parent == anchor.OptionSpan && sp.Note == "replay" {
			foundReplay = true
		}
	}
	if !foundReplay {
		t.Errorf("no replay span links to pre-crash option span %d: %+v",
			anchor.OptionSpan, victimTr.Spans)
	}
}
