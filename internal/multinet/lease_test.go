package multinet

// Lease failover tests: live planetd processes running epoch-fenced master
// leases (-leases). The headline scenario kills the lease-holding master
// mid-load with SIGKILL and requires the survivors to claim the lease and
// keep committing to the dead master's keys without the corpse restarting —
// plus the scenario driver replaying a seeded chaos preset against the
// fleet.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planet/internal/chaos"
	"planet/internal/httpapi"
	"planet/internal/simnet"
)

// waitLeaseMoved polls region on's lease view until keyspace is held by
// some region other than exclude, returning the new holder.
func waitLeaseMoved(t *testing.T, n *Network, on simnet.Region, keyspace string, exclude simnet.Region, timeout time.Duration) simnet.Region {
	t.Helper()
	cl := n.Client(on)
	deadline := time.Now().Add(timeout)
	last := "?"
	for {
		if resp, err := cl.NetLease(); err == nil {
			for _, li := range resp.Leases {
				if li.Keyspace == keyspace {
					last = fmt.Sprintf("%s@%d", li.Holder, li.Epoch)
					if li.Holder != "" && li.Holder != string(exclude) {
						return simnet.Region(li.Holder)
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease %s did not move off %s within %v (last view %s)", keyspace, exclude, timeout, last)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// metricValue sums every series of a metric family in the gateway's
// Prometheus exposition (labels collapsed).
func metricValue(t *testing.T, cl *httpapi.Client, name string) float64 {
	t.Helper()
	text, err := cl.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				total += v
			}
		}
	}
	return total
}

// TestRealnetMasterFailover is the lease acceptance scenario: a 3-process
// deployment with a single leased keyspace loses its lease-holding master
// to kill -9 mid-load. Submissions against the dead master's keys must stay
// bounded (resolve within the wait bound, never hang), a survivor must
// claim the lease and commit to those keys while the corpse is still down,
// the takeover must surface in the survivor's metrics, and the restarted
// corpse must rejoin deposed — with pairwise agreement and conservation at
// the end.
func TestRealnetMasterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	victim := simnet.Region("us-east")
	n := start(t, Config{
		MasterRegion:  victim,
		Leases:        true,
		LeaseTerm:     1200 * time.Millisecond,
		CommitTimeout: 1500 * time.Millisecond,
	})
	gw := simnet.Region("us-west")
	sess := n.Session(gw, 4*time.Second)
	cl := n.Client(gw)
	keys := acctKeys()

	// Boot: the default holder (the static master region) claims the
	// keyspace lease, then the bank warms up through it.
	if err := n.WaitLeaseHolder(gw, victim, victim, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		committed, id, err := sess.Transfer(keys[i], keys[i+2], 3)
		if err != nil || !committed {
			t.Fatalf("warmup transfer %s: committed=%v err=%v", id, committed, err)
		}
	}

	// Kill -9 the lease holder with a burst in flight.
	var inflight []string
	for i := 0; i < 4; i++ {
		id, err := cl.Submit(transferReq(keys[i%len(keys)], keys[(i+5)%len(keys)], 1))
		if err != nil {
			t.Fatal(err)
		}
		inflight = append(inflight, id)
	}
	if err := n.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Failover-window bound: a submit against the dead master's keys must
	// resolve within the session bound plus slack — commit or abort, never
	// a hang past the wait bound.
	begin := time.Now()
	if _, _, err := sess.Transfer(keys[0], keys[1], 1); err != nil {
		t.Fatalf("post-kill transfer errored instead of resolving: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > sess.Timeout+3*time.Second {
		t.Errorf("post-kill transfer took %v; want bounded by %v + slack", elapsed, sess.Timeout)
	}
	for _, id := range inflight {
		if _, err := waitResolved(cl, id, 10*time.Second); err != nil {
			t.Errorf("in-flight txn %s never resolved after master kill: %v", id, err)
		}
	}

	// A survivor claims the lease (expiry + rank stagger ≈ two terms) and
	// the dead master's keys commit again — corpse still down.
	heir := waitLeaseMoved(t, n, gw, string(victim), victim, 15*time.Second)
	t.Logf("lease moved %s -> %s", victim, heir)
	if n.Running(victim) {
		t.Fatal("victim resurrected itself mid-test")
	}
	commitWithin(t, 20*time.Second, "post-takeover transfer on the dead master's keys", func() (bool, error) {
		c, _, err := sess.Transfer(keys[0], keys[1], 1)
		return c, err
	})
	committed := 0
	for i := 0; i < 4; i++ {
		c, id, err := sess.Transfer(keys[i], keys[i+3], 2)
		if err != nil {
			t.Fatalf("outage transfer %s: %v", id, err)
		}
		if c {
			committed++
		}
	}
	if committed < 3 {
		t.Errorf("only %d/4 transfers committed under the new lease; failover should restore the classic path", committed)
	}

	// The takeover is exported: counter on the heir, and a lease event in
	// its process log.
	if got := metricValue(t, n.Client(heir), "planet_lease_takeovers_total"); got < 1 {
		t.Errorf("heir %s exports planet_lease_takeovers_total=%v, want >= 1", heir, got)
	}
	if ok, err := n.GrepLog(heir, "takeover"); err != nil || !ok {
		t.Errorf("heir %s log has no lease takeover line (err=%v)", heir, err)
	}

	// Restart the corpse: WAL replay hands it its stale held epoch, the
	// failed re-acquire round reports the higher live epoch, and it must
	// converge on the heir as holder (fenced follower) instead of
	// reclaiming mastership.
	if err := n.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := n.WaitPeerState(gw, victim, "up", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deposedView := waitLeaseMoved(t, n, victim, string(victim), victim, 15*time.Second)
	t.Logf("restarted %s sees lease held by %s", victim, deposedView)
	commitWithin(t, 15*time.Second, "post-restart transfer", func() (bool, error) {
		c, _, err := sess.Transfer(keys[1], keys[0], 1)
		return c, err
	})

	assertAgreement(t, n, n.Regions())
	var sum int64
	for _, k := range keys {
		v, err := sess.ReadInt(k)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if sum != int64(len(keys))*100 {
		t.Errorf("money not conserved: accounts sum to %d, want %d", sum, len(keys)*100)
	}
}

// TestRealnetScenarioDriver replays a seeded chaos preset — the same
// timeline the simnet engine runs — against live processes under load:
// the partition preset blacks out one region (links cut, listener dropped)
// and then cuts a link, with auto-heal on the way out. Afterwards every
// fault must have been applied (none skipped, none errored), the fleet must
// be healed and committing, and the safety audits must pass.
func TestRealnetScenarioDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level harness")
	}
	n := start(t, Config{
		Leases:        true,
		LeaseTerm:     1200 * time.Millisecond,
		CommitTimeout: 1500 * time.Millisecond,
	})
	gw := simnet.Region("us-west")
	keys := acctKeys()

	// Background workload: transfers against every account while the fault
	// schedule runs. Timeouts and aborts are expected mid-fault; harness
	// errors are not.
	var (
		attempts, commits atomic.Int64
		wg                sync.WaitGroup
	)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := n.Session(gw, 2*time.Second)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			from, to := keys[i%len(keys)], keys[(i+3)%len(keys)]
			if from == to {
				continue
			}
			c, _, err := sess.Transfer(from, to, 1)
			if err != nil {
				continue // gateway briefly unavailable mid-fault is tolerable
			}
			attempts.Add(1)
			if c {
				commits.Add(1)
			}
		}
	}()

	sc, err := chaos.Preset("partition", n.Regions())
	if err != nil {
		t.Fatal(err)
	}
	records, err := n.RunScenario(sc, DriverConfig{TimeScale: 0.2, Logf: t.Logf})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range records {
		if rec.Skipped {
			t.Errorf("fault %d (%s) was skipped; the partition preset maps fully onto live faults", i, rec.Fault.Kind)
		}
		if rec.Err != nil {
			t.Errorf("fault %d (%s): %v", i, rec.Fault.Kind, rec.Err)
		}
	}
	t.Logf("workload during scenario: %d attempts, %d commits", attempts.Load(), commits.Load())
	if commits.Load() == 0 {
		t.Error("no transfer committed during the scenario; the unaffected majority should keep serving")
	}

	// Auto-heal: every node must see every peer up again, and the fleet
	// must commit from every gateway.
	for _, a := range n.Regions() {
		for _, b := range n.Regions() {
			if a == b {
				continue
			}
			if err := n.WaitPeerState(a, b, "up", 15*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, r := range n.Regions() {
		sess := n.Session(r, 4*time.Second)
		commitWithin(t, 20*time.Second, fmt.Sprintf("post-scenario transfer via %s", r), func() (bool, error) {
			c, _, err := sess.Transfer(keys[0], keys[1], 1)
			return c, err
		})
	}

	assertAgreement(t, n, n.Regions())
	// Conservation, with a short settle window for decisions still
	// propagating to the gateway's replica after the load stops.
	sess := n.Session(gw, 4*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var sum int64
		for _, k := range keys {
			v, err := sess.ReadInt(k)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum == int64(len(keys))*100 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("money not conserved: accounts sum to %d, want %d", sum, len(keys)*100)
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
}
