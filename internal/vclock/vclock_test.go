package vclock

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClock returns a running Virtual clock and registers its shutdown.
func newTestClock(t *testing.T) *Virtual {
	t.Helper()
	v := NewVirtual()
	t.Cleanup(v.Shutdown)
	return v
}

func TestVirtualSleepAdvancesWithoutWallTime(t *testing.T) {
	v := newTestClock(t)
	wall := time.Now()
	before := v.Now()
	v.Sleep(10 * time.Hour)
	if got := v.Since(before); got != 10*time.Hour {
		t.Fatalf("virtual elapsed = %v, want 10h", got)
	}
	if elapsed := time.Since(wall); elapsed > 2*time.Second {
		t.Fatalf("10h virtual sleep took %v of wall time", elapsed)
	}
	if v.Running() != 1 {
		t.Fatalf("running = %d after sleep, want 1 (the creator)", v.Running())
	}
}

func TestVirtualTimerOrdering(t *testing.T) {
	v := newTestClock(t)
	var order []int
	record := func(id int) func() { return func() { order = append(order, id) } }
	// Timers 1 and 2 tie at 5ms: creation order must break the tie.
	v.AfterFunc(5*time.Millisecond, record(1))
	v.AfterFunc(5*time.Millisecond, record(2))
	v.AfterFunc(9*time.Millisecond, record(3))
	v.AfterFunc(7*time.Millisecond, record(4))
	v.Sleep(20 * time.Millisecond)
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestVirtualIdleAdvanceWithBlockedGoroutines(t *testing.T) {
	v := newTestClock(t)
	g := NewGroup(v)
	var sum atomic.Int64
	for i := 1; i <= 4; i++ {
		i := i
		g.Go(func() {
			v.Sleep(time.Duration(i) * time.Hour)
			sum.Add(int64(i))
		})
	}
	g.Wait()
	if got := sum.Load(); got != 10 {
		t.Fatalf("sum = %d, want 10", got)
	}
	if got := v.Since(epoch); got != 4*time.Hour {
		t.Fatalf("virtual time advanced to %v, want 4h", got)
	}
}

func TestVirtualDeterministicGrantOrder(t *testing.T) {
	// Goroutines spawned in order, all sleeping until the same instant,
	// must resume in spawn order — every run, regardless of host load. No
	// mutex around order: serialized execution means the appends cannot
	// race, and -race verifies that claim.
	for trial := 0; trial < 20; trial++ {
		v := NewVirtual()
		g := NewGroup(v)
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			g.Go(func() {
				v.Sleep(time.Second) // identical deadline for everyone
				order = append(order, i)
			})
		}
		g.Wait()
		if len(order) != 8 {
			t.Fatalf("trial %d: woke %d of 8", trial, len(order))
		}
		for i := range order {
			if order[i] != i {
				t.Fatalf("trial %d: wake order = %v, want ascending", trial, order)
			}
		}
		v.Shutdown()
	}
}

func TestVirtualAfterFuncStopPreventsFire(t *testing.T) {
	v := newTestClock(t)
	fired := false
	tm := v.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop reported not-pending for a queued timer")
	}
	v.Sleep(50 * time.Millisecond)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualTimerReset(t *testing.T) {
	v := newTestClock(t)
	var fires atomic.Int32
	tm := v.AfterFunc(10*time.Millisecond, func() { fires.Add(1) })
	if !tm.Reset(30 * time.Millisecond) {
		t.Fatal("Reset reported not-pending for a queued timer")
	}
	v.Sleep(20 * time.Millisecond)
	if got := fires.Load(); got != 0 {
		t.Fatalf("timer fired %d times before the reset deadline", got)
	}
	v.Sleep(20 * time.Millisecond)
	if got := fires.Load(); got != 1 {
		t.Fatalf("timer fired %d times, want 1", got)
	}
	// Re-arming after a fire works too.
	tm.Reset(5 * time.Millisecond)
	v.Sleep(10 * time.Millisecond)
	if got := fires.Load(); got != 2 {
		t.Fatalf("timer fired %d times after re-arm, want 2", got)
	}
}

func TestVirtualEventHandoff(t *testing.T) {
	v := newTestClock(t)
	ev := v.NewEvent()
	g := NewGroup(v)
	var woke atomic.Int32
	for i := 0; i < 3; i++ {
		g.Go(func() {
			ev.Wait()
			woke.Add(1)
		})
	}
	v.AfterFunc(time.Minute, ev.Fire)
	g.Wait()
	if got := woke.Load(); got != 3 {
		t.Fatalf("woke = %d, want 3", got)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
	ev.Wait() // after Fire: returns immediately
	select {
	case <-ev.Done():
	default:
		t.Fatal("Done channel not closed after Fire")
	}
}

func TestVirtualEventWaitTimeout(t *testing.T) {
	v := newTestClock(t)
	ev := v.NewEvent()
	if ev.WaitTimeout(10 * time.Millisecond) {
		t.Fatal("WaitTimeout reported fired on a silent event")
	}
	v.AfterFunc(5*time.Millisecond, ev.Fire)
	if !ev.WaitTimeout(time.Hour) {
		t.Fatal("WaitTimeout missed the fire")
	}
	if !ev.WaitTimeout(0) {
		t.Fatal("WaitTimeout after fire must report true")
	}
}

func TestVirtualSleepCtxCancel(t *testing.T) {
	v := newTestClock(t)
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(v)
	errCh := make(chan error, 1)
	g.Go(func() {
		errCh <- v.SleepCtx(ctx, time.Hour)
	})
	// Cancel from outside the virtual world; the sleeper must return with
	// ctx's error without the clock having advanced to the full deadline.
	cancel()
	g.Wait()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("SleepCtx = %v, want context.Canceled", err)
	}
	if got := v.Since(epoch); got >= time.Hour {
		t.Fatalf("clock advanced to +%v during canceled sleep", got)
	}
}

func TestVirtualSleepCtxExpires(t *testing.T) {
	v := newTestClock(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := v.SleepCtx(ctx, 30*time.Second); err != nil {
		t.Fatalf("SleepCtx = %v, want nil", err)
	}
	if got := v.Since(epoch); got != 30*time.Second {
		t.Fatalf("virtual elapsed = %v, want 30s", got)
	}
}

func TestVirtualEventWaitCtxCancel(t *testing.T) {
	v := newTestClock(t)
	ev := v.NewEvent()
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(v)
	errCh := make(chan error, 1)
	g.Go(func() {
		errCh <- ev.WaitCtx(ctx)
	})
	cancel()
	g.Wait()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("WaitCtx = %v, want context.Canceled", err)
	}
}

func TestVirtualAddWorkBlocksAdvance(t *testing.T) {
	v := newTestClock(t)
	var fired atomic.Bool
	v.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	// The pin holds the world: even with the creator parked in a sleep,
	// the 1ms timer must not fire while the pinned unit is outstanding.
	v.AddWork(1)
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond) // real time: give a buggy scheduler room
		if fired.Load() {
			t.Error("timer fired while work was pinned")
		}
		v.WorkDone()
		close(done)
	}()
	v.Sleep(5 * time.Millisecond)
	<-done
	if !fired.Load() {
		t.Fatal("timer never fired after the pin was released")
	}
}

func TestVirtualTicketOrder(t *testing.T) {
	v := newTestClock(t)
	var order []int
	// Reserve tickets 1 and 2, then an AfterFunc at +0 — the tickets were
	// queued first and must run first even though their consumer
	// goroutines attach late and in reverse.
	t1 := v.Ticket()
	t2 := v.Ticket()
	v.AfterFunc(0, func() { order = append(order, 3) })
	done := make(chan struct{})
	go func() {
		t2.Run(func() { order = append(order, 2) })
		close(done)
	}()
	go func() {
		t1.Run(func() { order = append(order, 1) })
	}()
	v.Sleep(time.Millisecond)
	<-done
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestVirtualShutdownWakesSleepers(t *testing.T) {
	v := NewVirtual()
	g := NewGroup(v)
	g.Go(func() {
		v.Sleep(time.Hour)
	})
	// Pin the world so the scheduler cannot advance to the sleeper's
	// deadline, then shut down: the sleeper must return early, not hang.
	v.AddWork(1)
	v.Shutdown()
	done := make(chan struct{})
	go func() {
		g.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper did not wake on Shutdown")
	}
}

func TestRealClockBasics(t *testing.T) {
	clk := System
	start := clk.Now()
	clk.Sleep(time.Millisecond)
	if clk.Since(start) <= 0 {
		t.Fatal("real clock did not advance")
	}
	ev := clk.NewEvent()
	if ev.Fired() {
		t.Fatal("fresh event fired")
	}
	ev.Fire()
	ev.Wait()
	if !ev.WaitTimeout(time.Second) {
		t.Fatal("fired event reported timeout")
	}
	ran := false
	clk.Ticket().Run(func() { ran = true })
	if !ran {
		t.Fatal("real ticket did not run inline")
	}
	g := NewGroup(clk)
	var n atomic.Int32
	for i := 0; i < 3; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 3 {
		t.Fatalf("group ran %d workers, want 3", n.Load())
	}
}

func TestDefaultNilCoalesces(t *testing.T) {
	if Default(nil) != System {
		t.Fatal("Default(nil) is not the System clock")
	}
	v := newTestClock(t)
	if Default(v) != Clock(v) {
		t.Fatal("Default(v) did not pass through")
	}
}
