// Package vclock abstracts time for the PLANET stack. Two implementations
// share one interface: Real, a thin wrapper over package time with the
// current wall-clock behavior, and Virtual, a deterministic discrete-event
// scheduler that advances a simulated clock straight to the next pending
// deadline the moment every participant is blocked.
//
// Under the virtual clock the entire evaluation runs at CPU speed — a
// WAN-shaped experiment that used to spend 85% of its wall time asleep in
// scaled timers finishes as fast as the hardware can execute its handlers,
// and every seeded run is bit-for-bit reproducible regardless of host load.
//
// # Serialized execution
//
// Determinism comes from two rules, FoundationDB-style. First, the
// scheduler may only advance time while no tracked goroutine is runnable.
// Second — and this is what makes same-seed runs bit-identical rather than
// merely fast — at most one tracked goroutine executes at a time: every
// blocked goroutine waits for the single execution slot, and the scheduler
// grants the slot in strict FIFO order of when each waiter became runnable.
// Since wake-ups (timer fires, event broadcasts, spawns, queued tickets)
// are themselves produced by serialized execution, the grant order is a
// pure function of the initial state; the OS scheduler never gets a vote.
//
//   - timer callbacks run one at a time on the scheduler goroutine;
//   - Sleep and Event waits release the caller's slot and re-enter the run
//     queue when their wake condition fires;
//   - Go enqueues the new goroutine at the point of the call, so spawns
//     are ordered deterministically;
//   - Ticket reserves an execution slot at creation (fixing its order) for
//     work a plain goroutine will perform later — the mechanism behind
//     in-order callback dispatch;
//   - AddWork/WorkDone pin the world for untracked goroutines poking it
//     from outside (tests, real-clock bridges).
//
// The Real clock implements the same interface with every scheduling
// operation a no-op, so production code paths (planetd, the HTTP gateway)
// pay nothing.
package vclock

import (
	"context"
	"time"
)

// Clock is the time source threaded through every layer that sleeps,
// schedules, or timestamps on the transaction hot path.
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Until returns t.Sub(Now()).
	Until(t time.Time) time.Duration
	// Sleep blocks the caller for d. Under the virtual clock the caller's
	// activity token is released for the duration, letting time jump.
	Sleep(d time.Duration)
	// SleepCtx sleeps like Sleep but returns early with ctx's error when
	// ctx is done first.
	SleepCtx(ctx context.Context, d time.Duration) error
	// AfterFunc schedules f to run after d. f runs on a scheduler (or
	// timer) goroutine holding an activity token.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTimer returns a channel-based timer. Receiving from C after the
	// timer fires transfers an activity token to the receiver.
	NewTimer(d time.Duration) Timer
	// NewEvent returns a one-shot broadcast event with token handoff.
	NewEvent() *Event
	// Go runs f on a new goroutine tracked by the scheduler; the spawn is
	// ordered at the point of the call.
	Go(f func())
	// Ticket reserves an execution slot in the run queue, fixing the order
	// of work an untracked goroutine will run later via Ticket.Run. Under
	// the Real clock, Run simply invokes its callback.
	Ticket() Ticket
	// AddWork declares n units of pending work performed by an untracked
	// goroutine; each must be balanced by one WorkDone. While pending, the
	// virtual world neither advances time nor grants execution slots.
	AddWork(n int)
	// WorkDone completes one unit declared by AddWork.
	WorkDone()
}

// Ticket is a reserved execution slot. Run blocks until the scheduler
// grants the slot, executes f (which must not block through the clock),
// and releases the slot.
type Ticket interface {
	Run(f func())
}

// Timer is the subset of *time.Timer the stack needs, satisfiable by the
// virtual scheduler. The Stop/Reset contract matches package time, with one
// deliberate strengthening: the virtual Stop drains an unconsumed fire
// from C, so `if !t.Stop() { ... }` without a drain idiom is safe.
type Timer interface {
	// C returns the firing channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer for d, reporting whether it was pending.
	Reset(d time.Duration) bool
}

// Real is the production clock: package time, verbatim. The zero value is
// ready to use and all token operations are no-ops.
type Real struct{}

// System is the shared Real clock instance.
var System = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Until implements Clock.
func (Real) Until(t time.Time) time.Duration { return time.Until(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// SleepCtx implements Clock.
func (Real) SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// realTimer adapts *time.Timer to Timer.
type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{t: time.NewTimer(d)} }

// NewEvent implements Clock.
func (Real) NewEvent() *Event { return &Event{ch: make(chan struct{})} }

// Go implements Clock.
func (Real) Go(f func()) { go f() }

// realTicket is the Real clock's Ticket: no reservation, Run is immediate.
type realTicket struct{}

// Run implements Ticket.
func (realTicket) Run(f func()) { f() }

// Ticket implements Clock.
func (Real) Ticket() Ticket { return realTicket{} }

// AddWork implements Clock (no-op).
func (Real) AddWork(int) {}

// WorkDone implements Clock (no-op).
func (Real) WorkDone() {}

// Default returns clk, or the shared Real clock when clk is nil, so config
// structs can leave the field unset for current behavior.
func Default(clk Clock) Clock {
	if clk == nil {
		return System
	}
	return clk
}
