package vclock

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// maxDur is the "no pending work" sentinel for partition bases.
const maxDur = time.Duration(math.MaxInt64)

// World is a partitioned deterministic discrete-event scheduler: a set of
// Partition clocks — one per region, plus a control partition for driver
// code — each running the serialized Virtual discipline locally while
// executing concurrently with the others on real cores.
//
// Determinism under parallelism comes from conservative lookahead
// synchronization. Every ordered partition pair (S, P) has a lookahead
// la(S→P) > 0: the minimum virtual delay of any cross-partition effect from
// S to P (in the WAN emulator, the latency floor of the S→P link). Define
//
//	base(Q)    = Q's now while Q is busy, its earliest pending event time
//	             while idle, +inf when it has nothing scheduled;
//	horizon(P) = min over Q≠P of base(Q) + la(Q→P).
//
// P may execute an event at time t only while t < horizon(P) (strictly).
// Because cross-partition effects always land at least la in the sender's
// future, every event that could still arrive at P carries a timestamp
// >= horizon(P) > t, so the set and order of events P executes is a pure
// function of the initial state — the OS scheduler never gets a vote. The
// lookahead matrix is closed under the triangle inequality at construction,
// which also makes horizons monotone: an admitted event can never be
// invalidated by a later arrival.
//
// Cross-partition events are stamped (virtual_time, sender_partition, seq)
// — seq allocated per sender, whose execution is serialized — and merged
// into the destination's heap in that total order; at equal timestamps,
// cross-partition events sort before locally scheduled ones (the strict
// horizon guarantees all same-time arrivals are present before execution).
//
// All partitions share one mutex: scheduling transitions are short (timer-
// wheel ops and a horizon scan), and the event handlers — where the
// simulation actually spends its time — run with the lock released, in
// parallel. Wake-ups are targeted: each partition loop sleeps on its own
// condition variable and is signaled only when its admission predicate
// could have changed (new local work, or a peer's base advancing past a
// horizon block), so one partition's scheduling traffic does not stampede
// the rest. Two counters shave the synchronization overhead further:
// horizonWaiters lets base-raise notifications skip the peer walk when no
// loop is blocked, and activeParts lets the admission check skip the
// horizon scan entirely when a single partition owns all pending work —
// every peer base is then +inf, so the horizon is trivially unbounded.
type World struct {
	mu             sync.Mutex
	parts          []*Partition
	byName         map[string]*Partition
	la             [][]time.Duration // closed lookahead matrix, la[src][dst]
	stopped        bool
	horizonWaiters int // partition loops asleep blocked by their horizon
	activeParts    int // partitions with running slots, ready work, or timers
}

// NewWorld builds a world with one partition per name (in order; the index
// is the deterministic tie-break rank) and the given lookahead matrix:
// la[i][j] is the minimum virtual delay of any cross-partition effect from
// partition i to partition j, and must be positive for i != j. The matrix
// is closed under the triangle inequality internally. The constructing
// goroutine holds partition 0's execution slot (like NewVirtual) and must
// block only through clock primitives.
func NewWorld(names []string, la [][]time.Duration) (*World, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("vclock: world needs at least one partition")
	}
	if len(la) != len(names) {
		return nil, fmt.Errorf("vclock: lookahead matrix is %dx, want %d rows", len(la), len(names))
	}
	closed := make([][]time.Duration, len(names))
	for i := range names {
		if len(la[i]) != len(names) {
			return nil, fmt.Errorf("vclock: lookahead row %d has %d entries, want %d", i, len(la[i]), len(names))
		}
		closed[i] = append([]time.Duration(nil), la[i]...)
		for j := range names {
			if i != j && closed[i][j] <= 0 {
				return nil, fmt.Errorf("vclock: lookahead %s->%s must be positive", names[i], names[j])
			}
		}
	}
	// Floyd–Warshall metric closure: la[i][j] <= la[i][k] + la[k][j] for all
	// k. Without it a relayed message could undercut a direct lookahead and
	// invalidate an already-admitted event.
	n := len(names)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || i == k || j == k {
					continue
				}
				if via := closed[i][k] + closed[k][j]; via < closed[i][j] {
					closed[i][j] = via
				}
			}
		}
	}
	w := &World{byName: make(map[string]*Partition, len(names)), la: closed}
	for i, name := range names {
		if _, dup := w.byName[name]; dup {
			return nil, fmt.Errorf("vclock: duplicate partition name %q", name)
		}
		p := &Partition{w: w, id: i, name: name}
		p.cond = sync.NewCond(&w.mu)
		w.parts = append(w.parts, p)
		w.byName[name] = p
	}
	w.parts[0].running = 1 // the constructing goroutine holds partition 0's slot
	w.parts[0].active = true
	w.activeParts = 1
	for _, p := range w.parts {
		go p.run()
	}
	return w, nil
}

// Partition returns the named partition's clock, or nil if unknown.
func (w *World) Partition(name string) *Partition { return w.byName[name] }

// Partitions returns the partitions in construction (tie-break) order.
func (w *World) Partitions() []*Partition { return append([]*Partition(nil), w.parts...) }

// Shutdown stops every partition loop, discards pending callbacks, and
// wakes parked sleepers (their Sleep returns early, WaitTimeout reports
// false). Call once the simulated world is drained.
func (w *World) Shutdown() {
	w.mu.Lock()
	w.stopped = true
	for _, p := range w.parts {
		p.cond.Signal()
	}
	w.mu.Unlock()
}

// Partition is one region's serialized scheduler inside a World. It
// implements Clock: within a partition at most one tracked goroutine runs
// at a time and the local rules are exactly Virtual's; across partitions,
// execution is concurrent and ordered by the conservative horizon.
//
// Cross-partition scheduling must go through ScheduleCross / RunOn /
// Group.GoOn (or an Event homed on the firing partition) so the effect
// passes through the deterministic merge layer. Calling a partition's own
// methods from a goroutine tracked by a different partition bypasses that
// layer and reintroduces real-time races.
type Partition struct {
	w    *World
	id   int
	name string

	// All fields below are guarded by w.mu.
	cond        *sync.Cond // wakes this partition's loop only
	horizonWait bool       // loop is asleep blocked by its horizon
	active      bool       // counted in w.activeParts
	now         time.Duration
	running     int // granted execution slots (see Virtual.running)
	ready       []*grant
	timers      wheel[*wtimer]
	seq         uint64 // local insertion order (timer ties)
	xseq        uint64 // cross-partition send order (merge-layer ties)
}

// syncActiveLocked reconciles p's membership in w.activeParts after any
// change to its running slots, run queue, or timer population. Caller holds
// w.mu.
func (p *Partition) syncActiveLocked() {
	a := p.running > 0 || len(p.ready) > 0 || p.timers.live > 0
	if a == p.active {
		return
	}
	p.active = a
	if a {
		p.w.activeParts++
	} else {
		p.w.activeParts--
	}
}

// Name returns the partition's name.
func (p *Partition) Name() string { return p.name }

// run is the partition loop: grant ready work, and pop the timer heap only
// while the head is inside the conservative horizon.
func (p *Partition) run() {
	w := p.w
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.stopped {
			p.drainLocked()
			return
		}
		if p.running > 0 {
			p.cond.Wait()
			continue
		}
		if len(p.ready) > 0 {
			g := p.ready[0]
			p.ready = p.ready[1:]
			p.running++
			if g.fn != nil {
				fn := g.fn
				w.mu.Unlock()
				fn()
				w.mu.Lock()
				p.running--
				p.syncActiveLocked()
				p.baseRaisedLocked()
			} else {
				close(g.ch)
			}
			continue
		}
		if p.timers.live > 0 {
			t, when, _ := p.timers.peekMin()
			// Admit when the head is at or behind local time, when this
			// partition owns all pending work (every peer base is +inf, so
			// the horizon is trivially unbounded — no scan needed), or when
			// the head is strictly inside the conservative horizon.
			if when <= p.now || (w.activeParts == 1 && p.active) || when < p.horizonLocked() {
				p.timers.popMin()
				p.syncActiveLocked()
				if when > p.now {
					p.now = when
				}
				t.fireLocked()
				// Popping the head can only raise base(p): it was the head's
				// time and is now p.now (equal, if the fire readied local
				// work) or the next head / +inf (if it shipped elsewhere).
				p.baseRaisedLocked()
				continue
			}
			p.horizonWait = true
			w.horizonWaiters++
			p.cond.Wait()
			p.horizonWait = false
			w.horizonWaiters--
			continue
		}
		p.cond.Wait()
	}
}

// baseRaisedLocked propagates a possible base(p) increase — p just released
// an execution slot or dropped its head timer — to peers blocked on their
// horizons. Caller holds w.mu.
func (p *Partition) baseRaisedLocked() {
	if p.running == 0 && len(p.ready) == 0 {
		p.wakeHorizonPeersLocked()
	}
}

// wakeHorizonPeersLocked signals every peer loop asleep on its horizon:
// base(p) rose, so their horizons may have too. Caller holds w.mu. The
// common case — nobody blocked — is a single counter check.
func (p *Partition) wakeHorizonPeersLocked() {
	if p.w.horizonWaiters == 0 {
		return
	}
	for _, q := range p.w.parts {
		if q != p && q.horizonWait {
			q.cond.Signal()
		}
	}
}

// baseLocked is the earliest virtual time at which p could still produce an
// effect. Caller holds w.mu.
func (p *Partition) baseLocked() time.Duration {
	if p.running > 0 || len(p.ready) > 0 {
		return p.now
	}
	if _, when, ok := p.timers.peekMin(); ok {
		return when
	}
	return maxDur
}

// horizonLocked is the conservative bound below which p may execute.
// Caller holds w.mu.
func (p *Partition) horizonLocked() time.Duration {
	w := p.w
	h := maxDur
	for _, q := range w.parts {
		if q == p {
			continue
		}
		b := q.baseLocked()
		la := w.la[q.id][p.id]
		if b >= maxDur-la {
			continue // effectively unbounded
		}
		if b+la < h {
			h = b + la
		}
	}
	return h
}

// drainLocked wakes everything at shutdown. Caller holds w.mu.
func (p *Partition) drainLocked() {
	for _, g := range p.ready {
		if g.ch != nil {
			close(g.ch)
		}
	}
	p.ready = nil
	p.timers.forEach(func(t *wtimer) {
		if t.g != nil && t.g.cause == causeNone {
			t.g.cause = causeShutdown
			close(t.g.ch)
		}
	})
	p.timers.reset()
	p.syncActiveLocked()
}

// readyLocked appends g to the run queue. Caller holds w.mu.
func (p *Partition) readyLocked(g *grant) {
	p.ready = append(p.ready, g)
	p.syncActiveLocked()
	p.cond.Signal()
}

// parkLocked releases the caller's execution slot and blocks until g is
// granted. Caller holds w.mu and owns p's slot; returns without the lock.
func (p *Partition) parkLocked(g *grant) {
	p.running--
	if p.running < 0 {
		panic("vclock: park without an execution slot (untracked goroutine blocked through the clock)")
	}
	p.cond.Signal()
	p.syncActiveLocked()
	p.baseRaisedLocked()
	p.w.mu.Unlock()
	<-g.ch
}

// exitLocked gives the execution slot back without a wake-up to wait for.
// Caller holds w.mu.
func (p *Partition) exitLocked() {
	p.running--
	if p.running < 0 {
		panic("vclock: unbalanced execution-slot release")
	}
	p.cond.Signal()
	p.syncActiveLocked()
	p.baseRaisedLocked()
}

// wakeLocked readies a parked grant with the given cause, descheduling its
// companion timer. A no-op when the grant was already woken. Caller holds
// w.mu. The grant is readied on the partition it parked on (g.p).
func (p *Partition) wakeLocked(g *grant, cause int) {
	if g.cause != causeNone {
		return
	}
	g.cause = cause
	if g.wt != nil && g.wt.p != nil {
		g.wt.p.cancelTimerLocked(g.wt)
	}
	home := g.p
	if home == nil {
		home = p
	}
	if p.w.stopped {
		// The partition loops have exited; release the waiter directly
		// instead of queueing it on a dead run queue.
		if g.ch != nil {
			close(g.ch)
		}
		return
	}
	home.readyLocked(g)
}

// scheduleLocked inserts t into p's timer wheel under the packed ordering
// key: cross deliveries keep their small sender-id first word, local timers
// set localKeyBit, so the wheel's unsigned key compare reproduces the
// (when, cross-before-local, k1, k2) order exactly. Caller holds w.mu.
func (p *Partition) scheduleLocked(t *wtimer) {
	a := t.k1
	if !t.cross {
		a |= localKeyBit
	}
	p.timers.schedule(t.when, a, t.k2, t)
	p.syncActiveLocked()
	p.cond.Signal()
}

// cancelTimerLocked lazily removes t from p's wheel, propagating a possible
// base raise. Reports whether t was scheduled. Caller holds w.mu.
func (p *Partition) cancelTimerLocked(t *wtimer) bool {
	if !p.timers.cancel(t) {
		return false
	}
	p.syncActiveLocked()
	p.baseRaisedLocked() // head timer may have risen
	return true
}

// newTimerLocked registers a local timer firing at now+d. Caller holds w.mu.
func (p *Partition) newTimerLocked(d time.Duration) *wtimer {
	if d < 0 {
		d = 0
	}
	t := &wtimer{p: p, when: p.now + d, k1: p.seq, cause: causeTimer}
	p.seq++
	p.scheduleLocked(t)
	return t
}

// crossLocked stamps t with (src.now + max(d, la), src, seq) and merges it
// into dst's heap. Caller holds w.mu and must be executing on src (sends
// from a partition are serialized, which is what makes seq deterministic).
func (w *World) crossLocked(src, dst *Partition, d time.Duration, t *wtimer) {
	if la := w.la[src.id][dst.id]; d < la {
		d = la // the lookahead is a promise; never undercut it
	}
	t.p = dst
	t.when = src.now + d
	t.cross = true
	t.k1 = uint64(src.id)
	t.k2 = src.xseq
	src.xseq++
	dst.scheduleLocked(t)
}

// partitionOf unwraps clk to its World partition, or nil.
func partitionOf(clk Clock) *Partition {
	p, _ := clk.(*Partition)
	return p
}

// ScheduleCross schedules f to run on dst's partition at src's now + d,
// clamped up to the src→dst lookahead and delivered through the merge
// layer, so same-seed runs execute it at an identical point regardless of
// thread interleaving. The caller must be executing on src. When src and
// dst are not two distinct partitions of one World (serialized or real
// clocks), it degenerates to dst.AfterFunc(d, f).
func ScheduleCross(src, dst Clock, d time.Duration, f func()) Timer {
	sp, dp := partitionOf(src), partitionOf(dst)
	if sp == nil || dp == nil || sp == dp || sp.w != dp.w {
		return Default(dst).AfterFunc(d, f)
	}
	w := sp.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		go f()
		return &wtimer{p: dp, fired: true}
	}
	t := &wtimer{fn: f, cause: causeTimer}
	w.crossLocked(sp, dp, d, t)
	w.mu.Unlock()
	return t
}

// RunOn executes f synchronously on dst's partition: the call ships to dst
// through the merge layer, f runs holding dst's execution slot (it must not
// block through the clock), and the completion ships back, waking the
// caller at a deterministic virtual time. The caller must be a tracked
// goroutine executing on src. When src and dst are not two distinct
// partitions of one World, f runs inline.
func RunOn(src, dst Clock, f func()) {
	sp, dp := partitionOf(src), partitionOf(dst)
	if sp == nil || dp == nil || sp == dp || sp.w != dp.w {
		f()
		return
	}
	w := sp.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		f()
		return
	}
	g := &grant{ch: make(chan struct{}), p: sp}
	call := &wtimer{cause: causeTimer}
	call.fn = func() {
		f()
		w.mu.Lock()
		if w.stopped {
			// The partition loops have exited; release the caller directly.
			if g.cause == causeNone {
				g.cause = causeShutdown
				close(g.ch)
			}
			w.mu.Unlock()
			return
		}
		back := &wtimer{g: g, cause: causeTimer}
		w.crossLocked(dp, sp, 0, back)
		w.mu.Unlock()
	}
	w.crossLocked(sp, dp, 0, call)
	sp.parkLocked(g)
}

// Now implements Clock.
func (p *Partition) Now() time.Time {
	p.w.mu.Lock()
	defer p.w.mu.Unlock()
	return epoch.Add(p.now)
}

// Since implements Clock.
func (p *Partition) Since(t time.Time) time.Duration { return p.Now().Sub(t) }

// Until implements Clock.
func (p *Partition) Until(t time.Time) time.Duration { return t.Sub(p.Now()) }

// Sleep implements Clock (see Virtual.Sleep).
func (p *Partition) Sleep(d time.Duration) {
	w := p.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	g := &grant{ch: make(chan struct{}), p: p}
	if d <= 0 {
		p.readyLocked(g)
	} else {
		t := p.newTimerLocked(d)
		t.g = g
	}
	p.parkLocked(g)
}

// SleepCtx implements Clock. Cancellation comes from outside the virtual
// world and wakes the sleeper immediately (real-time, not merge-ordered);
// deterministic runs use contexts that never fire.
func (p *Partition) SleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		p.Sleep(d)
		return nil
	}
	w := p.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return ctx.Err()
	}
	g := &grant{ch: make(chan struct{}), p: p}
	if d <= 0 {
		p.readyLocked(g)
	} else {
		t := p.newTimerLocked(d)
		t.g = g
		g.wt = t
	}
	w.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		p.wakeLocked(g, causeCtx)
		w.mu.Unlock()
	})
	w.mu.Lock()
	p.parkLocked(g)
	stop()
	if g.cause == causeCtx {
		return ctx.Err()
	}
	return nil
}

// AfterFunc implements Clock: f runs on p's partition loop at the local
// virtual deadline and must not block through the clock.
func (p *Partition) AfterFunc(d time.Duration, f func()) Timer {
	w := p.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		go f()
		return &wtimer{p: p, fired: true}
	}
	t := p.newTimerLocked(d)
	t.fn = f
	w.mu.Unlock()
	return t
}

// NewTimer implements Clock (see Virtual.NewTimer for the channel caveats).
func (p *Partition) NewTimer(d time.Duration) Timer {
	w := p.w
	w.mu.Lock()
	if w.stopped {
		t := &wtimer{p: p, fired: true, ch: make(chan time.Time, 1)}
		t.ch <- epoch.Add(p.now)
		w.mu.Unlock()
		return t
	}
	t := p.newTimerLocked(d)
	t.ch = make(chan time.Time, 1)
	w.mu.Unlock()
	return t
}

// NewEvent implements Clock. The event is homed on p: Fire must be called
// from p's partition (waiters on other partitions are woken through the
// merge layer). See Event.
func (p *Partition) NewEvent() *Event {
	return &Event{p: p, ch: make(chan struct{})}
}

// Go implements Clock: the spawn is ordered at the point of the call on p's
// run queue. The caller must be executing on p (use Group.GoOn or
// ScheduleCross to spawn across partitions).
func (p *Partition) Go(f func()) {
	w := p.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		go f()
		return
	}
	g := &grant{ch: make(chan struct{}), p: p}
	p.readyLocked(g)
	w.mu.Unlock()
	go func() {
		<-g.ch
		f()
		w.mu.Lock()
		p.exitLocked()
		w.mu.Unlock()
	}()
}

// Ticket implements Clock (see Virtual.Ticket).
func (p *Partition) Ticket() Ticket {
	w := p.w
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return realTicket{}
	}
	g := &grant{ch: make(chan struct{}), p: p}
	p.readyLocked(g)
	w.mu.Unlock()
	return &wticket{p: p, g: g}
}

// wticket is a Partition execution slot reserved by Ticket.
type wticket struct {
	p *Partition
	g *grant
}

// Run implements Ticket.
func (t *wticket) Run(f func()) {
	<-t.g.ch
	f()
	t.p.w.mu.Lock()
	t.p.exitLocked()
	t.p.w.mu.Unlock()
}

// AddWork implements Clock: the n units pin this partition at its current
// now (conservatively stalling peers at now + lookahead) until balanced by
// WorkDone. For untracked goroutines poking the world from outside.
func (p *Partition) AddWork(n int) {
	if n <= 0 {
		return
	}
	p.w.mu.Lock()
	p.running += n
	p.syncActiveLocked()
	p.w.mu.Unlock()
}

// WorkDone implements Clock.
func (p *Partition) WorkDone() {
	p.w.mu.Lock()
	p.exitLocked()
	p.w.mu.Unlock()
}

// Running reports the granted-slot count (tests, debugging).
func (p *Partition) Running() int {
	p.w.mu.Lock()
	defer p.w.mu.Unlock()
	return p.running
}

// PendingTimers reports how many timers are scheduled (tests, debugging).
func (p *Partition) PendingTimers() int {
	p.w.mu.Lock()
	defer p.w.mu.Unlock()
	return p.timers.live
}

// fireEventLocked delivers an Event fire homed on p: local waiters are
// readied in arrival order; waiters parked on other partitions are woken
// through the merge layer at now + lookahead. Waiters are grouped by
// destination partition (arrival order across partitions is not
// deterministic; within one partition it is). Caller holds w.mu.
func (p *Partition) fireEventLocked(waiters []*grant) {
	w := p.w
	sort.SliceStable(waiters, func(i, j int) bool {
		pi, pj := p, p
		if waiters[i].p != nil {
			pi = waiters[i].p
		}
		if waiters[j].p != nil {
			pj = waiters[j].p
		}
		return pi.id < pj.id
	})
	for _, g := range waiters {
		dst := g.p
		if dst == nil || dst == p || w.stopped {
			p.wakeLocked(g, causeEvent)
			continue
		}
		wt := &wtimer{g: g, cause: causeEvent}
		w.crossLocked(p, dst, 0, wt)
	}
}

// wtimer is one scheduled entry in a partition's timer wheel: a local
// timer, a cross-partition delivery, or a shipped wake-up.
type wtimer struct {
	p      *Partition
	when   time.Duration
	cross  bool   // merged from another partition: sorts before local at equal when
	k1, k2 uint64 // cross: (sender id, sender seq); local: (insertion seq, 0)
	fn     func()
	ch     chan time.Time
	g      *grant
	cause  int // wake cause delivered to g
	fired  bool
	node   wheelNode
}

// wheelState exposes the wheel bookkeeping node.
func (t *wtimer) wheelState() *wheelNode { return &t.node }

// fireLocked delivers the timer. Caller holds w.mu; the timer was just
// popped from p's wheel.
func (t *wtimer) fireLocked() {
	t.fired = true
	switch {
	case t.g != nil:
		t.p.wakeLocked(t.g, t.cause)
	case t.fn != nil:
		t.p.readyLocked(&grant{fn: t.fn})
	case t.ch != nil:
		select {
		case t.ch <- epoch.Add(t.when):
		default: // unconsumed previous fire; drop
		}
	}
}

// C implements Timer.
func (t *wtimer) C() <-chan time.Time { return t.ch }

// Stop implements Timer.
func (t *wtimer) Stop() bool {
	w := t.p.w
	w.mu.Lock()
	defer w.mu.Unlock()
	return t.stopLocked()
}

// stopLocked is Stop under w.mu.
func (t *wtimer) stopLocked() bool {
	if t.p != nil && t.p.cancelTimerLocked(t) {
		return true
	}
	if t.ch != nil {
		select {
		case <-t.ch: // drain an unconsumed fire
		default:
		}
	}
	return false
}

// Reset implements Timer. The timer is re-keyed as a local timer of its
// partition (delivery timers are never reset).
func (t *wtimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	p := t.p
	w := p.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		return false
	}
	wasPending := t.stopLocked()
	t.fired = false
	t.cross = false
	t.when = p.now + d
	t.k1 = p.seq
	t.k2 = 0
	p.seq++
	p.scheduleLocked(t)
	return wasPending
}
