package vclock

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// testTimer is a minimal wheel payload for the data-structure tests.
type testTimer struct {
	id   int
	when time.Duration
	a, b uint64
	node wheelNode
}

func (t *testTimer) wheelState() *wheelNode { return &t.node }

// refHeap is the binary heap the wheel replaced, kept here as the reference
// implementation for the equivalence test and the arrivals benchmark. Keys
// are the same (when, a, b) total order.
type refHeap []*testTimer

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*testTimer)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// popLiveRef pops the reference heap down to its next live entry.
func popLiveRef(h *refHeap, cancelled map[int]bool) *testTimer {
	for h.Len() > 0 {
		t := heap.Pop(h).(*testTimer)
		if !cancelled[t.id] {
			return t
		}
	}
	return nil
}

// peekLiveRef purges cancelled tops and peeks the next live entry.
func peekLiveRef(h *refHeap, cancelled map[int]bool) *testTimer {
	for h.Len() > 0 {
		if t := (*h)[0]; !cancelled[t.id] {
			return t
		}
		heap.Pop(h)
	}
	return nil
}

// TestWheelHeapEquivalence drives the timer wheel and the reference binary
// heap through one seeded schedule of inserts, cancels, peeks, and pops —
// spanning every wheel level, deadline ties, and the overflow heap — and
// requires identical fire order. This is the scheduler-determinism argument
// in miniature: the wheel must reproduce the heap's (when, a, b) total
// order exactly, or same-seed runs would diverge across the swap.
func TestWheelHeapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var w wheel[*testTimer]
	var ref refHeap
	cancelled := make(map[int]bool)
	var live []*testTimer
	var seq uint64
	nextID := 0
	now := time.Duration(0)

	// Deltas cross level boundaries: sub-slot, level 0..4, and beyond the
	// top level (overflow).
	deltas := []time.Duration{
		0, 100 * time.Nanosecond, time.Microsecond, 50 * time.Microsecond,
		time.Millisecond, 80 * time.Millisecond, time.Second, time.Minute,
		3 * time.Hour, 24 * 400 * time.Hour * 100, // ~110 years: overflow
	}

	insert := func() {
		d := deltas[rng.Intn(len(deltas))]
		// Quantize some deadlines so ties exercise the (a, b) order.
		if rng.Intn(3) == 0 {
			d = d.Round(time.Millisecond)
		}
		tt := &testTimer{id: nextID, when: now + d, a: seq}
		if rng.Intn(4) == 0 {
			tt.a = seq | localKeyBit // mix in wtimer-style local keys
		}
		nextID++
		seq++
		w.schedule(tt.when, tt.a, tt.b, tt)
		heap.Push(&ref, tt)
		live = append(live, tt)
	}

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(10); {
		case op < 5:
			insert()
		case op < 7 && len(live) > 0:
			// Cancel a random live timer in both structures.
			j := rng.Intn(len(live))
			tt := live[j]
			if !w.cancel(tt) {
				t.Fatalf("cancel(%d): wheel says not scheduled", tt.id)
			}
			cancelled[tt.id] = true
			live = append(live[:j], live[j+1:]...)
		case op < 8:
			// Peek must agree with the purged reference top.
			wt, when, ok := w.peekMin()
			rt := peekLiveRef(&ref, cancelled)
			if (rt != nil) != ok {
				t.Fatalf("peek mismatch: wheel ok=%v ref=%v", ok, rt != nil)
			}
			if ok && (wt != rt || when != rt.when) {
				t.Fatalf("peek mismatch: wheel id=%d@%v ref id=%d@%v", wt.id, when, rt.id, rt.when)
			}
		default:
			wt, ok := w.popMin()
			rt := popLiveRef(&ref, cancelled)
			if (rt != nil) != ok {
				t.Fatalf("pop mismatch at step %d: wheel ok=%v ref=%v", i, ok, rt != nil)
			}
			if !ok {
				continue
			}
			if wt != rt {
				t.Fatalf("pop order diverged at step %d: wheel id=%d@%v ref id=%d@%v",
					i, wt.id, wt.when, rt.id, rt.when)
			}
			if wt.when > now {
				now = wt.when
			}
			for j, lt := range live {
				if lt == wt {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		}
		if w.live != len(live) {
			t.Fatalf("live count drifted: wheel=%d want %d", w.live, len(live))
		}
	}

	// Drain both completely: the tail order must match too.
	for {
		wt, ok := w.popMin()
		rt := popLiveRef(&ref, cancelled)
		if (rt != nil) != ok {
			t.Fatalf("drain mismatch: wheel ok=%v ref=%v", ok, rt != nil)
		}
		if !ok {
			break
		}
		if wt != rt {
			t.Fatalf("drain order diverged: wheel id=%d ref id=%d", wt.id, rt.id)
		}
	}
}

// TestWheelForEachVisitsLive checks forEach sees exactly the live timers.
func TestWheelForEachVisitsLive(t *testing.T) {
	var w wheel[*testTimer]
	var all []*testTimer
	for i := 0; i < 100; i++ {
		tt := &testTimer{id: i, when: time.Duration(i) * time.Millisecond, a: uint64(i)}
		w.schedule(tt.when, tt.a, 0, tt)
		all = append(all, tt)
	}
	for i := 0; i < 100; i += 2 {
		w.cancel(all[i])
	}
	seen := make(map[int]bool)
	w.forEach(func(tt *testTimer) { seen[tt.id] = true })
	if len(seen) != 50 {
		t.Fatalf("forEach visited %d timers, want 50", len(seen))
	}
	for id := range seen {
		if id%2 == 0 {
			t.Fatalf("forEach visited cancelled timer %d", id)
		}
	}
}

// BenchmarkOpenLoopArrivals measures the scheduler data structure under the
// open-loop steady state: a large standing population of deadlines with one
// pop + one insert per arrival. This is the access pattern of a million
// virtual users with per-user timeouts. The wheel is expected to hold a
// large constant-factor advantage over the binary heap at 100k+ outstanding
// timers (O(1) vs O(log n) with cold cache lines on every sift).
func BenchmarkOpenLoopArrivals(b *testing.B) {
	const outstanding = 1_000_000
	newTimers := func(rng *rand.Rand) []*testTimer {
		ts := make([]*testTimer, outstanding)
		for i := range ts {
			ts[i] = &testTimer{
				id:   i,
				when: time.Duration(rng.Int63n(int64(10 * time.Second))),
				a:    uint64(i),
			}
		}
		return ts
	}

	b.Run("wheel", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var w wheel[*testTimer]
		for _, tt := range newTimers(rng) {
			w.schedule(tt.when, tt.a, 0, tt)
		}
		var seq uint64 = outstanding
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tt, _ := w.popMin()
			tt.when = w.cur + time.Duration(rng.Int63n(int64(10*time.Second)))
			tt.a = seq
			seq++
			w.schedule(tt.when, tt.a, 0, tt)
		}
	})

	b.Run("heap", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var h refHeap
		now := time.Duration(0)
		for _, tt := range newTimers(rng) {
			heap.Push(&h, tt)
		}
		var seq uint64 = outstanding
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tt := heap.Pop(&h).(*testTimer)
			if tt.when > now {
				now = tt.when
			}
			tt.when = now + time.Duration(rng.Int63n(int64(10*time.Second)))
			tt.a = seq
			seq++
			heap.Push(&h, tt)
		}
	})
}
