package vclock

import (
	"context"
	"sync"
	"time"
)

// epoch is the fixed origin of every Virtual clock. A constant origin (and
// never the host's wall clock) is what makes timestamps recorded during a
// run — WAL entries, outcome brackets, decay horizons — identical across
// same-seed runs on any machine.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// Wake causes for a parked grant, recorded before the grant is readied so
// the woken goroutine can tell why it resumed.
const (
	causeNone = iota
	causeTimer
	causeEvent
	causeCtx
	causeShutdown
)

// grant is one execution slot in the scheduler's run queue. Either a parked
// goroutine waits on ch for the slot to be granted, or fn is a scheduler
// callback (AfterFunc) executed inline when the slot comes up.
type grant struct {
	ch    chan struct{} // closed when granted (nil for fn grants)
	fn    func()        // AfterFunc body (nil for parked goroutines)
	timer *vtimer       // companion timeout timer, descheduled on other wakes
	cause int           // why a parked grant was woken; causeNone = still parked

	// World-partition fields (nil/zero under a plain Virtual clock).
	p  *Partition // partition the grant parks on (wakes route back to it)
	wt *wtimer    // companion timeout timer in the partitioned scheduler
}

// Virtual is a deterministic discrete-event scheduler implementing Clock.
//
// Execution is fully serialized: at most one tracked goroutine runs at any
// moment, and the scheduler hands the single execution slot to waiters in
// strict FIFO order of when they became runnable. Because every wake-up is
// itself produced by serialized execution (a timer fire, an event, a spawn),
// the FIFO order — and therefore the entire run — is a pure function of the
// initial state. Virtual time advances only when the run queue is empty and
// nothing is running: the clock jumps straight to the earliest pending
// deadline, so a run spends zero wall time asleep.
//
// Construct with NewVirtual; the constructing goroutine holds the execution
// slot and must block only through clock primitives (Sleep, Event waits,
// Group.Wait). Timer callbacks and enqueued Ticket work run one at a time
// and must not block through the clock either — they may freely create
// timers, fire events, spawn via Go, and create Tickets.
type Virtual struct {
	mu      sync.Mutex
	cond    *sync.Cond // wakes the scheduler: slot freed, work queued, shutdown
	now     time.Duration
	running int // granted execution slots (1 in steady state; AddWork pins add)
	ready   []*grant
	timers  wheel[*vtimer]
	seq     uint64
	stopped bool
}

// NewVirtual returns a running virtual clock whose time starts at a fixed
// epoch. The caller holds the execution slot.
func NewVirtual() *Virtual {
	v := &Virtual{running: 1}
	v.cond = sync.NewCond(&v.mu)
	go v.run()
	return v
}

// Shutdown stops the scheduler goroutine, discards pending AfterFunc
// callbacks, and wakes every parked goroutine (their Sleep returns early,
// WaitTimeout reports false). Call once the virtual world is drained.
func (v *Virtual) Shutdown() {
	v.mu.Lock()
	v.stopped = true
	v.cond.Signal()
	v.mu.Unlock()
}

// run is the scheduler loop: grant the run queue head when the slot is
// free, and when both the slot and the queue are empty, jump time to the
// earliest deadline and fire that timer.
func (v *Virtual) run() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		if v.stopped {
			v.drainLocked()
			return
		}
		if v.running > 0 {
			v.cond.Wait()
			continue
		}
		if len(v.ready) > 0 {
			g := v.ready[0]
			v.ready = v.ready[1:]
			v.running++
			if g.fn != nil {
				fn := g.fn
				v.mu.Unlock()
				fn()
				v.mu.Lock()
				v.running--
			} else {
				close(g.ch)
			}
			continue
		}
		if t, ok := v.timers.popMin(); ok {
			if t.when > v.now {
				v.now = t.when
			}
			t.fireLocked()
			continue
		}
		v.cond.Wait()
	}
}

// drainLocked wakes everything at shutdown. Caller holds v.mu.
func (v *Virtual) drainLocked() {
	for _, g := range v.ready {
		if g.ch != nil {
			close(g.ch)
		}
	}
	v.ready = nil
	v.timers.forEach(func(t *vtimer) {
		if t.g != nil && t.g.cause == causeNone {
			t.g.cause = causeShutdown
			close(t.g.ch)
		}
	})
	v.timers.reset()
}

// readyLocked appends g to the run queue. Caller holds v.mu.
func (v *Virtual) readyLocked(g *grant) {
	v.ready = append(v.ready, g)
	v.cond.Signal()
}

// parkLocked releases the caller's execution slot and blocks until g is
// granted. Caller holds v.mu and owns the slot; returns without the lock.
func (v *Virtual) parkLocked(g *grant) {
	v.running--
	if v.running < 0 {
		panic("vclock: park without an execution slot (untracked goroutine blocked through the clock)")
	}
	v.cond.Signal()
	v.mu.Unlock()
	<-g.ch
}

// exitLocked gives the execution slot back without a wake-up to wait for
// (goroutine end, ticket completion). Caller holds v.mu.
func (v *Virtual) exitLocked() {
	v.running--
	if v.running < 0 {
		panic("vclock: unbalanced execution-slot release")
	}
	v.cond.Signal()
}

// newTimerLocked registers a timer firing at now+d. Caller holds v.mu.
func (v *Virtual) newTimerLocked(d time.Duration) *vtimer {
	if d < 0 {
		d = 0
	}
	t := &vtimer{v: v, when: v.now + d, seq: v.seq}
	v.seq++
	v.timers.schedule(t.when, t.seq, 0, t)
	v.cond.Signal()
	return t
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return epoch.Add(v.now)
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Until implements Clock.
func (v *Virtual) Until(t time.Time) time.Duration { return t.Sub(v.Now()) }

// Sleep implements Clock: the caller's slot is released for the duration,
// so the scheduler may advance straight to the wake-up (or any earlier
// work) with zero wall-clock cost. Sleep(0) yields: the caller goes to the
// back of the run queue.
func (v *Virtual) Sleep(d time.Duration) {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return
	}
	g := &grant{ch: make(chan struct{})}
	if d <= 0 {
		v.readyLocked(g)
	} else {
		t := v.newTimerLocked(d)
		t.g = g
	}
	v.parkLocked(g)
}

// SleepCtx implements Clock.
func (v *Virtual) SleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		v.Sleep(d)
		return nil
	}
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return ctx.Err()
	}
	g := &grant{ch: make(chan struct{})}
	if d <= 0 {
		v.readyLocked(g)
	} else {
		t := v.newTimerLocked(d)
		t.g = g
		g.timer = t
	}
	v.mu.Unlock()
	// Cancellation comes from outside the virtual world; the watcher
	// deschedules the timer and readies the sleeper with a ctx wake.
	stop := context.AfterFunc(ctx, func() {
		v.mu.Lock()
		v.wakeLocked(g, causeCtx)
		v.mu.Unlock()
	})
	v.mu.Lock()
	v.parkLocked(g)
	stop()
	if g.cause == causeCtx {
		return ctx.Err()
	}
	return nil
}

// wakeLocked readies a parked grant with the given cause, descheduling its
// companion timer. A no-op when the grant was already woken. Caller holds
// v.mu.
func (v *Virtual) wakeLocked(g *grant, cause int) {
	if g.cause != causeNone {
		return
	}
	g.cause = cause
	if g.timer != nil {
		v.timers.cancel(g.timer)
	}
	v.readyLocked(g)
}

// AfterFunc implements Clock. f runs on the scheduler goroutine, in run-
// queue order, at the virtual deadline; it must not block through the
// clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		go f()
		return &vtimer{v: v, fired: true}
	}
	t := v.newTimerLocked(d)
	t.fn = f
	v.mu.Unlock()
	return t
}

// NewTimer implements Clock. The returned timer delivers the fire into a
// buffered channel with no run-queue participation, so a tracked goroutine
// must not bare-receive from C (it would hold the execution slot and wedge
// the world); C is for select loops in real-clock-domain code that happen
// to hold a virtual clock. Tracked code should use Sleep or Events.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	if v.stopped {
		t := &vtimer{v: v, fired: true, ch: make(chan time.Time, 1)}
		t.ch <- epoch.Add(v.now)
		v.mu.Unlock()
		return t
	}
	t := v.newTimerLocked(d)
	t.ch = make(chan time.Time, 1)
	v.mu.Unlock()
	return t
}

// NewEvent implements Clock.
func (v *Virtual) NewEvent() *Event {
	return &Event{v: v, ch: make(chan struct{})}
}

// Go implements Clock: the new goroutine occupies a run-queue slot from the
// moment of the call, so the spawn is ordered deterministically and the
// scheduler cannot advance time past it.
func (v *Virtual) Go(f func()) {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		go f()
		return
	}
	g := &grant{ch: make(chan struct{})}
	v.readyLocked(g)
	v.mu.Unlock()
	go func() {
		<-g.ch
		f()
		v.mu.Lock()
		v.exitLocked()
		v.mu.Unlock()
	}()
}

// Ticket implements Clock: the slot is queued now (establishing its
// deterministic position), granted when the scheduler reaches it, and
// occupied for the duration of Run's callback.
func (v *Virtual) Ticket() Ticket {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return realTicket{}
	}
	g := &grant{ch: make(chan struct{})}
	v.readyLocked(g)
	v.mu.Unlock()
	return &vticket{v: v, g: g}
}

// vticket is a Virtual execution slot reserved by Ticket.
type vticket struct {
	v *Virtual
	g *grant
}

// Run implements Ticket.
func (t *vticket) Run(f func()) {
	<-t.g.ch
	f()
	t.v.mu.Lock()
	t.v.exitLocked()
	t.v.mu.Unlock()
}

// AddWork implements Clock: the n units occupy the execution slot jointly
// with the caller, pinning the world (no grants, no time advance) until
// each is balanced by WorkDone. For untracked goroutines poking a virtual
// world from outside (tests, real-clock bridges).
func (v *Virtual) AddWork(n int) {
	if n <= 0 {
		return
	}
	v.mu.Lock()
	v.running += n
	v.mu.Unlock()
}

// WorkDone implements Clock.
func (v *Virtual) WorkDone() {
	v.mu.Lock()
	v.exitLocked()
	v.mu.Unlock()
}

// Running reports the granted-slot count (tests, debugging).
func (v *Virtual) Running() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.running
}

// PendingTimers reports how many timers are scheduled (tests, debugging).
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.timers.live
}

// vtimer is one scheduled deadline in the virtual timer wheel.
type vtimer struct {
	v     *Virtual
	when  time.Duration  // virtual deadline (offset from epoch)
	seq   uint64         // insertion order breaks deadline ties
	fn    func()         // AfterFunc callback
	ch    chan time.Time // NewTimer channel
	g     *grant         // parked sleeper / waiter to ready on fire
	fired bool
	node  wheelNode
}

// wheelState exposes the wheel bookkeeping node.
func (t *vtimer) wheelState() *wheelNode { return &t.node }

// fireLocked delivers the timer. Caller holds v.mu; the timer was just
// popped from the wheel.
func (t *vtimer) fireLocked() {
	t.fired = true
	switch {
	case t.g != nil:
		t.v.wakeLocked(t.g, causeTimer)
	case t.fn != nil:
		t.v.readyLocked(&grant{fn: t.fn})
	case t.ch != nil:
		select {
		case t.ch <- epoch.Add(t.when):
		default: // unconsumed previous fire; drop
		}
	}
}

// C implements Timer.
func (t *vtimer) C() <-chan time.Time { return t.ch }

// Stop implements Timer.
func (t *vtimer) Stop() bool {
	v := t.v
	v.mu.Lock()
	defer v.mu.Unlock()
	return t.stopLocked()
}

// stopLocked is Stop under v.mu.
func (t *vtimer) stopLocked() bool {
	if t.v.timers.cancel(t) {
		return true
	}
	if t.ch != nil {
		select {
		case <-t.ch: // drain an unconsumed fire
		default:
		}
	}
	return false
}

// Reset implements Timer.
func (t *vtimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	v := t.v
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		return false
	}
	wasPending := t.stopLocked()
	t.fired = false
	t.when = v.now + d
	t.seq = v.seq
	v.seq++
	v.timers.schedule(t.when, t.seq, 0, t)
	v.cond.Signal()
	return wasPending
}
