package vclock

import (
	"math/bits"
	"time"
)

// This file implements the hierarchical timer wheel that backs both
// schedulers (Virtual and World partitions). The binary heaps it replaced
// cost O(log n) per insert/remove; with open-loop traffic the schedulers
// carry hundreds of thousands of outstanding deadlines (one per in-flight
// virtual user plus one per pending protocol timeout), and the heap's
// pointer-chasing sift dominated the hot path. The wheel makes insert and
// cancel O(1) and pop amortized O(1), while reproducing the heaps' fire
// order *exactly* — the same (when, tie-break) total order — which is what
// lets the determinism gates stay bit-identical across the swap.
//
// Shape: wheelLevels levels of wheelSlots slots each. Level ℓ's slot width
// is 1<<(wheelShift0 + ℓ*wheelBits) nanoseconds, so level 0 resolves
// ~1.024µs and the top level spans years; deadlines beyond the last level
// land in a plain overflow heap (never in practice — the emulator's horizon
// is minutes). Slots are unsorted slices (insert is an append), and each
// level keeps a one-word occupancy bitmap so "first non-empty slot at or
// after the cursor" is two bit ops.
//
// cur is the wheel's clock: the deadline of the last pop (pops come out in
// nondecreasing key order, and schedulers only insert at or after their own
// now >= cur, so every live entry satisfies when >= cur at all times).
// Placement guarantees a live entry's slot, read circularly from the
// cursor's slot at its level, is at distance bin(when)-bin(cur) in [0,63],
// where bin(x) = x >> levelShift; cur only grows, so the distance only
// shrinks. Per level, the first occupied slot scanning circularly from the
// cursor therefore holds the level's earliest bin.
//
// findMin resolves the global minimum by cascading: take the earliest
// first-bin across levels; while it belongs to a coarse level, advance cur
// to that bin's start (safe: no live deadline precedes it) and spill the
// slot's entries into finer levels — each lands at least one level down,
// so an entry moves at most wheelLevels-1 times in its life. Once the
// earliest bin is a level-0 slot, that slot contains every live entry with
// when < binstart + 1.024µs, and a linear scan of it under the full
// (when, a, b) key — against the overflow heap's top — yields exactly the
// heap's pop order. Correctness of the spill placement: after cur advances
// to the bin start, every entry in the slot has when - cur < slot width,
// which places it at a strictly finer level with cursor distance <= 63.
//
// Cancellation is lazy: Stop/Reset bump the timer's generation and drop
// the live count; the stale entry stays behind and is discarded when a
// scan or spill meets it. peekMin shares findMin, so partition base
// computations never see a dead minimum.

const (
	wheelShift0 = 10 // level-0 slot width: 1.024µs of virtual time
	wheelBits   = 6  // slots per level = 1<<wheelBits
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 8

	// localKeyBit packs the wtimer "cross sorts before local" flag into the
	// first tie-break word: cross senders use small ids, local timers set
	// the top bit, so unsigned compare reproduces cross-before-local.
	localKeyBit = uint64(1) << 63
)

// wheelNode is the per-timer state embedded in vtimer and wtimer. gen
// invalidates stale wheel entries after a cancel or re-key; queued reports
// whether the timer is currently scheduled.
type wheelNode struct {
	gen    uint32
	queued bool
}

// wheelTimer is the payload constraint: a pointer type exposing its node.
type wheelTimer interface {
	comparable
	wheelState() *wheelNode
}

// wentry is one scheduled deadline, stored by value inside slots.
// (when, a, b) is the full scheduling key. node caches t.wheelState() so
// staleness checks are a direct load instead of a generic-dictionary call.
type wentry[T wheelTimer] struct {
	when time.Duration
	a, b uint64
	gen  uint32
	node *wheelNode
	t    T
}

// stale reports whether the entry was cancelled or re-keyed after insert.
func (e *wentry[T]) stale() bool {
	return !e.node.queued || e.node.gen != e.gen
}

// entryLess is the total order shared with the replaced heaps.
func entryLess[T wheelTimer](x, y *wentry[T]) bool {
	if x.when != y.when {
		return x.when < y.when
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

// bucket holds entries. Wheel slots use it as an unsorted slice; the
// overflow uses hpush/hpop to keep it heap-ordered by entryLess.
type bucket[T wheelTimer] []wentry[T]

func (h *bucket[T]) hpush(e wentry[T]) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&(*h)[i], &(*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *bucket[T]) hpop() wentry[T] {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	var zero wentry[T]
	old[n] = zero // release the payload pointer
	old = old[:n]
	*h = old
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && entryLess(&old[r], &old[l]) {
			c = r
		}
		if !entryLess(&old[c], &old[i]) {
			break
		}
		old[i], old[c] = old[c], old[i]
		i = c
	}
	return top
}

// wheelLevel is one ring: an occupancy bitmap plus its slots.
type wheelLevel[T wheelTimer] struct {
	occupied uint64
	slots    [wheelSlots]bucket[T]
}

// wheel is the hierarchical timer wheel. Zero value is ready to use. All
// methods require external synchronization (the scheduler mutex).
type wheel[T wheelTimer] struct {
	cur    time.Duration // deadline of the last pop; floor of all live entries
	live   int           // scheduled and not cancelled
	stales int           // cancelled entries not yet physically dropped
	levels [wheelLevels]wheelLevel[T]
	over   bucket[T] // deadlines beyond the top level's reach (heap-ordered)

	// Cached result of the last findMin, valid while minNode != nil: the
	// location and key of the current global minimum. The heaps this wheel
	// replaced had a free peek (h[0]), and the partition merge layer peeks
	// the horizon on every fire — without the cache each peek repays the
	// full cascade. Inserts keep the cache unless they undercut the cached
	// key; popping, cancelling, or rescheduling the cached timer drops it.
	minNode         *wheelNode
	minWhen         time.Duration
	minA, minB      uint64
	minSlot, minIdx int
	minOver         bool
}

// place computes the (level, slot) for a deadline. Deadlines at or before
// cur share the cursor's level-0 slot (the scan starts there, and the
// full-key slot scan keeps them first). ok=false means overflow.
func (w *wheel[T]) place(when time.Duration) (int, int, bool) {
	k := when
	if k < w.cur {
		k = w.cur
	}
	delta := uint64(k-w.cur) >> wheelShift0
	level := 0
	if delta != 0 {
		level = (bits.Len64(delta) - 1) / wheelBits
	}
	if level >= wheelLevels {
		return 0, 0, false
	}
	shift := uint(wheelShift0 + level*wheelBits)
	// The raw span check can still leave the entry exactly one wrap ahead of
	// the cursor when cur is not slot-aligned; bump one level so the slot,
	// read circularly from the cursor, is unambiguous.
	if (uint64(k)>>shift)-(uint64(w.cur)>>shift) >= wheelSlots {
		level++
		if level >= wheelLevels {
			return 0, 0, false
		}
		shift += wheelBits
	}
	return level, int((uint64(k) >> shift) & wheelMask), true
}

// insert files e at its (level, slot) or into the overflow heap.
func (w *wheel[T]) insert(e wentry[T]) {
	if w.minNode != nil && (e.when < w.minWhen ||
		(e.when == w.minWhen && (e.a < w.minA || (e.a == w.minA && e.b < w.minB)))) {
		w.minNode = nil // the new entry undercuts the cached minimum
	}
	level, slot, ok := w.place(e.when)
	if !ok {
		w.over.hpush(e)
		return
	}
	lv := &w.levels[level]
	lv.slots[slot] = append(lv.slots[slot], e)
	lv.occupied |= 1 << uint(slot)
}

// schedule inserts t with deadline when and tie-break key (a, b). The
// timer's generation is advanced so any previous entry for t goes stale.
func (w *wheel[T]) schedule(when time.Duration, a, b uint64, t T) {
	n := t.wheelState()
	if n == w.minNode {
		w.minNode = nil // rescheduling stales the cached entry
	}
	n.gen++
	n.queued = true
	w.live++
	w.insert(wentry[T]{when: when, a: a, b: b, gen: n.gen, node: n, t: t})
}

// cancel lazily removes t. Reports whether t was scheduled.
func (w *wheel[T]) cancel(t T) bool {
	n := t.wheelState()
	if !n.queued {
		return false
	}
	if n == w.minNode {
		w.minNode = nil
	}
	n.queued = false
	n.gen++
	w.live--
	w.stales++
	return true
}

// spill redistributes one slot's entries into finer levels. The caller has
// advanced cur so that the slot's bin start is at or behind cur; every
// entry then satisfies when - cur < slot width and lands at least one
// level down. Stale entries ride along unexamined — touching their timers
// here would cost a cache miss per entry, and the level-0 compaction
// discards them anyway.
func (w *wheel[T]) spill(level, slot int) {
	lv := &w.levels[level]
	h := lv.slots[slot]
	lv.slots[slot] = h[:0]
	lv.occupied &^= 1 << uint(slot)
	var zero wentry[T]
	for i := range h {
		w.insert(h[i])
		h[i] = zero // release payload pointers under the retained backing array
	}
}

// purgeOver drops stale entries off the overflow heap top, returning the
// live top or nil.
func (w *wheel[T]) purgeOver() *wentry[T] {
	for len(w.over) > 0 {
		if top := &w.over[0]; w.stales == 0 || !top.stale() {
			return top
		}
		w.over.hpop()
		w.stales--
	}
	return nil
}

// findMin cascades until the earliest live entry is exposed in a level-0
// slot (or the overflow heap) and returns its location: the slot index and
// position for a wheel hit, or fromOver for an overflow hit.
func (w *wheel[T]) findMin() (slot, idx int, fromOver, ok bool) {
	if w.minNode != nil {
		return w.minSlot, w.minIdx, w.minOver, true
	}
	for {
		// Earliest occupied bin across levels, preferring the coarsest
		// level on ties: a coarse slot sharing a fine bin's start may hide
		// earlier deadlines inside its wider span, so it must spill first.
		bestLevel, bestSlot := -1, 0
		var bestStart time.Duration
		for level := 0; level < wheelLevels; level++ {
			lv := &w.levels[level]
			if lv.occupied == 0 {
				continue
			}
			shift := uint(wheelShift0 + level*wheelBits)
			cursor := uint64(w.cur) >> shift
			d := bits.TrailingZeros64(bits.RotateLeft64(lv.occupied, -int(cursor&wheelMask)))
			start := time.Duration((cursor + uint64(d)) << shift)
			if bestLevel < 0 || start < bestStart || start == bestStart {
				bestLevel = level
				bestSlot = int((cursor + uint64(d)) & wheelMask)
				bestStart = start
			}
		}
		if bestLevel < 0 {
			if w.purgeOver() == nil {
				return 0, 0, false, false
			}
			w.cacheMin(0, 0, true)
			return 0, 0, true, true
		}
		// No live deadline precedes the earliest occupied bin, so jumping
		// cur to its start preserves every placement invariant.
		if bestStart > w.cur {
			w.cur = bestStart
		}
		if bestLevel > 0 {
			w.spill(bestLevel, bestSlot)
			continue
		}
		// Level-0 slot: compact stale entries (skipped entirely while no
		// cancellation is outstanding — the common case pays no timer
		// dereference), then scan for the key min.
		h := &w.levels[0].slots[bestSlot]
		if w.stales > 0 {
			live := (*h)[:0]
			for i := range *h {
				if !(*h)[i].stale() {
					live = append(live, (*h)[i])
				}
			}
			w.stales -= len(*h) - len(live)
			var zero wentry[T]
			for i := len(live); i < len(*h); i++ {
				(*h)[i] = zero
			}
			*h = live
		}
		if len(*h) == 0 {
			w.levels[0].occupied &^= 1 << uint(bestSlot)
			continue
		}
		minIdx := 0
		for i := 1; i < len(*h); i++ {
			if entryLess(&(*h)[i], &(*h)[minIdx]) {
				minIdx = i
			}
		}
		// The slot holds every live wheel entry with when < binstart+width;
		// only the overflow heap can still undercut it.
		if ov := w.purgeOver(); ov != nil && entryLess(ov, &(*h)[minIdx]) {
			w.cacheMin(0, 0, true)
			return 0, 0, true, true
		}
		w.cacheMin(bestSlot, minIdx, false)
		return bestSlot, minIdx, false, true
	}
}

// cacheMin records the location and key findMin resolved, so subsequent
// peeks skip the cascade until something disturbs the minimum.
func (w *wheel[T]) cacheMin(slot, idx int, fromOver bool) {
	var e *wentry[T]
	if fromOver {
		e = &w.over[0]
	} else {
		e = &w.levels[0].slots[slot][idx]
	}
	w.minNode = e.node
	w.minWhen, w.minA, w.minB = e.when, e.a, e.b
	w.minSlot, w.minIdx, w.minOver = slot, idx, fromOver
}

// peekMin reports the earliest scheduled timer without removing it.
func (w *wheel[T]) peekMin() (T, time.Duration, bool) {
	slot, idx, fromOver, ok := w.findMin()
	if !ok {
		var zero T
		return zero, 0, false
	}
	if fromOver {
		return w.over[0].t, w.over[0].when, true
	}
	e := &w.levels[0].slots[slot][idx]
	return e.t, e.when, true
}

// popMin removes and returns the earliest scheduled timer, advancing cur to
// its deadline.
func (w *wheel[T]) popMin() (T, bool) {
	slot, idx, fromOver, ok := w.findMin()
	if !ok {
		var zero T
		return zero, false
	}
	var e wentry[T]
	if fromOver {
		e = w.over.hpop()
	} else {
		h := &w.levels[0].slots[slot]
		e = (*h)[idx]
		last := len(*h) - 1
		(*h)[idx] = (*h)[last]
		var zero wentry[T]
		(*h)[last] = zero
		*h = (*h)[:last]
		if last == 0 {
			w.levels[0].occupied &^= 1 << uint(slot)
		}
	}
	e.node.queued = false
	w.live--
	w.minNode = nil
	if e.when > w.cur {
		w.cur = e.when
	}
	return e.t, true
}

// forEach visits every live timer (order unspecified). The callback must
// not mutate the wheel.
func (w *wheel[T]) forEach(f func(T)) {
	visit := func(h bucket[T]) {
		for i := range h {
			if !h[i].stale() {
				f(h[i].t)
			}
		}
	}
	for level := range w.levels {
		for slot := range w.levels[level].slots {
			visit(w.levels[level].slots[slot])
		}
	}
	visit(w.over)
}

// reset discards every entry (shutdown drain). cur is preserved.
func (w *wheel[T]) reset() {
	for level := range w.levels {
		w.levels[level].occupied = 0
		for slot := range w.levels[level].slots {
			w.levels[level].slots[slot] = nil
		}
	}
	w.over = nil
	w.live = 0
	w.stales = 0
	w.minNode = nil
}
