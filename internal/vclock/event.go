package vclock

import (
	"context"
	"sync"
	"time"
)

// Event is a one-shot broadcast ("happened / not yet"). Construct through
// Clock.NewEvent so the event knows which world it lives in: under a
// Virtual clock, Fire moves every registered waiter onto the scheduler's
// run queue in the order they began waiting, so wake-ups are granted
// deterministically and the scheduler can never advance time through the
// handoff. Under the Real clock it degenerates to a closed channel. Fire
// is idempotent; Wait after Fire returns immediately.
//
// Under a World partition the event is homed on the creating partition:
// Fire must be called from code executing on that partition, and waiters
// parked on other partitions are woken through the deterministic merge
// layer at fire time + lookahead. (Firing from a foreign partition is
// tolerated — the wake is immediate rather than merge-ordered — but it is
// only deterministic at teardown, when ordering no longer matters.) A
// goroutine on a different partition must wait with WaitFrom /
// WaitTimeoutFrom, passing its own clock.
type Event struct {
	v       *Virtual   // non-nil for serialized-virtual semantics
	p       *Partition // non-nil for partitioned-world semantics (the home)
	mu      sync.Mutex // guards fired in real mode (virtual modes use the scheduler lock)
	ch      chan struct{}
	fired   bool
	waiters []*grant // virtual modes: parked waiters in arrival order
}

// Fire releases all current and future waiters. Safe to call from any
// goroutine, any number of times.
func (e *Event) Fire() {
	if p := e.p; p != nil {
		w := p.w
		w.mu.Lock()
		if !e.fired {
			e.fired = true
			close(e.ch)
			p.fireEventLocked(e.waiters)
			e.waiters = nil
		}
		w.mu.Unlock()
		return
	}
	if v := e.v; v != nil {
		v.mu.Lock()
		if !e.fired {
			e.fired = true
			close(e.ch)
			for _, g := range e.waiters {
				v.wakeLocked(g, causeEvent)
			}
			e.waiters = nil
		}
		v.mu.Unlock()
		return
	}
	e.mu.Lock()
	if !e.fired {
		e.fired = true
		close(e.ch)
	}
	e.mu.Unlock()
}

// Done exposes the raw channel closed by Fire, for select-based waits in
// real-clock code (an HTTP handler racing a request context). A bare
// receive does not participate in run-queue accounting, so tracked
// goroutines under a virtual clock must use Wait/WaitTimeout/WaitCtx
// instead.
func (e *Event) Done() <-chan struct{} { return e.ch }

// Fired reports whether Fire has been called.
func (e *Event) Fired() bool {
	if p := e.p; p != nil {
		p.w.mu.Lock()
		defer p.w.mu.Unlock()
		return e.fired
	}
	if v := e.v; v != nil {
		v.mu.Lock()
		defer v.mu.Unlock()
		return e.fired
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// Wait blocks until the event fires. Under a virtual clock the caller's
// execution slot is released while blocked and regained in run-queue order
// after Fire. Under a World the caller must be executing on the event's
// home partition (use WaitFrom elsewhere).
func (e *Event) Wait() { e.WaitFrom(nil) }

// WaitFrom is Wait for a caller executing on the partition of from (which
// may be the home partition or any other partition of the same World).
func (e *Event) WaitFrom(from Clock) {
	if p := e.p; p != nil {
		waiter := p
		if fp := partitionOf(from); fp != nil {
			waiter = fp
		}
		w := p.w
		w.mu.Lock()
		if e.fired || w.stopped {
			w.mu.Unlock()
			return
		}
		g := &grant{ch: make(chan struct{}), p: waiter}
		e.waiters = append(e.waiters, g)
		waiter.parkLocked(g)
		return
	}
	v := e.v
	if v == nil {
		<-e.ch
		return
	}
	v.mu.Lock()
	if e.fired || v.stopped {
		v.mu.Unlock()
		return
	}
	g := &grant{ch: make(chan struct{})}
	e.waiters = append(e.waiters, g)
	v.parkLocked(g)
}

// WaitTimeout blocks until the event fires or d elapses, reporting whether
// the event fired. Under a World the caller must be executing on the
// event's home partition (use WaitTimeoutFrom elsewhere).
func (e *Event) WaitTimeout(d time.Duration) bool { return e.WaitTimeoutFrom(nil, d) }

// WaitTimeoutFrom is WaitTimeout for a caller executing on the partition
// of from.
func (e *Event) WaitTimeoutFrom(from Clock, d time.Duration) bool {
	if p := e.p; p != nil {
		waiter := p
		if fp := partitionOf(from); fp != nil {
			waiter = fp
		}
		w := p.w
		w.mu.Lock()
		if e.fired {
			w.mu.Unlock()
			return true
		}
		if w.stopped {
			w.mu.Unlock()
			return false
		}
		g := &grant{ch: make(chan struct{}), p: waiter}
		t := waiter.newTimerLocked(d)
		t.g = g
		g.wt = t
		e.waiters = append(e.waiters, g)
		waiter.parkLocked(g)
		return g.cause == causeEvent
	}
	v := e.v
	if v == nil {
		e.mu.Lock()
		fired := e.fired
		e.mu.Unlock()
		if fired {
			return true
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-e.ch:
			return true
		case <-t.C:
			return false
		}
	}
	v.mu.Lock()
	if e.fired {
		v.mu.Unlock()
		return true
	}
	if v.stopped {
		v.mu.Unlock()
		return false
	}
	g := &grant{ch: make(chan struct{})}
	t := v.newTimerLocked(d)
	t.g = g
	g.timer = t
	e.waiters = append(e.waiters, g)
	v.parkLocked(g)
	return g.cause == causeEvent
}

// WaitCtx blocks until the event fires or ctx is done. Returns nil when
// the event fired.
func (e *Event) WaitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		e.Wait()
		return nil
	}
	if p := e.p; p != nil {
		w := p.w
		w.mu.Lock()
		if e.fired || w.stopped {
			w.mu.Unlock()
			return nil
		}
		g := &grant{ch: make(chan struct{}), p: p}
		e.waiters = append(e.waiters, g)
		w.mu.Unlock()
		// Cancellation comes from outside the virtual world; the watcher
		// readies the waiter with a ctx wake.
		stop := context.AfterFunc(ctx, func() {
			w.mu.Lock()
			p.wakeLocked(g, causeCtx)
			w.mu.Unlock()
		})
		w.mu.Lock()
		p.parkLocked(g)
		stop()
		if g.cause == causeCtx {
			return ctx.Err()
		}
		return nil
	}
	v := e.v
	if v == nil {
		select {
		case <-e.ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	v.mu.Lock()
	if e.fired || v.stopped {
		v.mu.Unlock()
		return nil
	}
	g := &grant{ch: make(chan struct{})}
	e.waiters = append(e.waiters, g)
	v.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		v.mu.Lock()
		v.wakeLocked(g, causeCtx)
		v.mu.Unlock()
	})
	v.mu.Lock()
	v.parkLocked(g)
	stop()
	if g.cause == causeCtx {
		return ctx.Err()
	}
	return nil
}

// Group is a sync.WaitGroup replacement whose Wait participates in the
// clock's run-queue accounting, so a goroutine joining its workers does not
// pin virtual time while blocked. The Group is homed on the clock it was
// built with: under a partitioned World, workers spawned on other
// partitions with GoOn ship their completion back through the merge layer,
// so the counter's zero crossing — and every waiter's wake-up — happens at
// a deterministic virtual time on the home partition.
type Group struct {
	clk Clock
	mu  sync.Mutex
	n   int
	ev  *Event // non-nil while a waiter is parked; recreated per wait round
}

// NewGroup returns a Group bound to clk.
func NewGroup(clk Clock) *Group { return &Group{clk: Default(clk)} }

// Add increments the worker count by n (call before spawning, like
// sync.WaitGroup).
func (g *Group) Add(n int) {
	g.mu.Lock()
	g.n += n
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	g.mu.Unlock()
}

// Done marks one worker finished, waking waiters when the count hits zero.
func (g *Group) Done() {
	g.mu.Lock()
	g.n--
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	var ev *Event
	if g.n == 0 && g.ev != nil {
		ev = g.ev
		g.ev = nil
	}
	g.mu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// Go runs f as one tracked worker on the Group's home clock: Add(1), spawn
// via the clock, Done on return.
func (g *Group) Go(f func()) {
	g.Add(1)
	g.clk.Go(func() {
		defer g.Done()
		f()
	})
}

// GoOn runs f as one tracked worker on clk's partition. The spawn ships
// from the Group's home partition through the merge layer (so it lands at
// a deterministic point in the worker partition's order), and the Done
// ships back the same way. The caller must be executing on the Group's
// home partition. When clk and the home clock are not distinct partitions
// of one World, GoOn is exactly Go on clk.
func (g *Group) GoOn(clk Clock, f func()) {
	clk = Default(clk)
	g.Add(1)
	body := func() {
		defer g.doneFrom(clk)
		f()
	}
	home, worker := partitionOf(g.clk), partitionOf(clk)
	if home == nil || worker == nil || home == worker || home.w != worker.w {
		clk.Go(body)
		return
	}
	ScheduleCross(g.clk, clk, 0, func() { clk.Go(body) })
}

// doneFrom ships a Done from a worker's partition back to the home
// partition through the merge layer.
func (g *Group) doneFrom(clk Clock) {
	home, worker := partitionOf(g.clk), partitionOf(clk)
	if home == nil || worker == nil || home == worker || home.w != worker.w {
		g.Done()
		return
	}
	ScheduleCross(clk, g.clk, 0, g.Done)
}

// N reports the current worker count: workers spawned and not yet finished
// (for GoOn workers, not yet finished *as observed at the home partition* —
// the completion signal takes one lookahead to ship). Open-loop drivers use
// it as their deterministic in-flight gauge.
func (g *Group) N() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Wait blocks until the worker count reaches zero. Must be called from the
// Group's home partition under a World.
func (g *Group) Wait() {
	for {
		g.mu.Lock()
		if g.n == 0 {
			g.mu.Unlock()
			return
		}
		if g.ev == nil {
			g.ev = g.clk.NewEvent()
		}
		ev := g.ev
		g.mu.Unlock()
		ev.Wait()
	}
}
