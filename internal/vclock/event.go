package vclock

import (
	"context"
	"sync"
	"time"
)

// Event is a one-shot broadcast ("happened / not yet"). Construct through
// Clock.NewEvent so the event knows which world it lives in: under a
// Virtual clock, Fire moves every registered waiter onto the scheduler's
// run queue in the order they began waiting, so wake-ups are granted
// deterministically and the scheduler can never advance time through the
// handoff. Under the Real clock it degenerates to a closed channel. Fire
// is idempotent; Wait after Fire returns immediately.
type Event struct {
	v       *Virtual   // nil for real-clock semantics
	mu      sync.Mutex // guards fired in real mode (virtual mode uses v.mu)
	ch      chan struct{}
	fired   bool
	waiters []*grant // virtual mode: parked waiters in arrival order
}

// Fire releases all current and future waiters. Safe to call from any
// goroutine, any number of times.
func (e *Event) Fire() {
	if v := e.v; v != nil {
		v.mu.Lock()
		if !e.fired {
			e.fired = true
			close(e.ch)
			for _, g := range e.waiters {
				v.wakeLocked(g, causeEvent)
			}
			e.waiters = nil
		}
		v.mu.Unlock()
		return
	}
	e.mu.Lock()
	if !e.fired {
		e.fired = true
		close(e.ch)
	}
	e.mu.Unlock()
}

// Done exposes the raw channel closed by Fire, for select-based waits in
// real-clock code (an HTTP handler racing a request context). A bare
// receive does not participate in run-queue accounting, so tracked
// goroutines under a Virtual clock must use Wait/WaitTimeout/WaitCtx
// instead.
func (e *Event) Done() <-chan struct{} { return e.ch }

// Fired reports whether Fire has been called.
func (e *Event) Fired() bool {
	if v := e.v; v != nil {
		v.mu.Lock()
		defer v.mu.Unlock()
		return e.fired
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// Wait blocks until the event fires. Under the virtual clock the caller's
// execution slot is released while blocked and regained in run-queue order
// after Fire.
func (e *Event) Wait() {
	v := e.v
	if v == nil {
		<-e.ch
		return
	}
	v.mu.Lock()
	if e.fired || v.stopped {
		v.mu.Unlock()
		return
	}
	g := &grant{ch: make(chan struct{})}
	e.waiters = append(e.waiters, g)
	v.parkLocked(g)
}

// WaitTimeout blocks until the event fires or d elapses, reporting whether
// the event fired.
func (e *Event) WaitTimeout(d time.Duration) bool {
	v := e.v
	if v == nil {
		e.mu.Lock()
		fired := e.fired
		e.mu.Unlock()
		if fired {
			return true
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-e.ch:
			return true
		case <-t.C:
			return false
		}
	}
	v.mu.Lock()
	if e.fired {
		v.mu.Unlock()
		return true
	}
	if v.stopped {
		v.mu.Unlock()
		return false
	}
	g := &grant{ch: make(chan struct{})}
	t := v.newTimerLocked(d)
	t.g = g
	g.timer = t
	e.waiters = append(e.waiters, g)
	v.parkLocked(g)
	return g.cause == causeEvent
}

// WaitCtx blocks until the event fires or ctx is done. Returns nil when
// the event fired.
func (e *Event) WaitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		e.Wait()
		return nil
	}
	v := e.v
	if v == nil {
		select {
		case <-e.ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	v.mu.Lock()
	if e.fired || v.stopped {
		v.mu.Unlock()
		return nil
	}
	g := &grant{ch: make(chan struct{})}
	e.waiters = append(e.waiters, g)
	v.mu.Unlock()
	// Cancellation comes from outside the virtual world; the watcher
	// readies the waiter with a ctx wake.
	stop := context.AfterFunc(ctx, func() {
		v.mu.Lock()
		v.wakeLocked(g, causeCtx)
		v.mu.Unlock()
	})
	v.mu.Lock()
	v.parkLocked(g)
	stop()
	if g.cause == causeCtx {
		return ctx.Err()
	}
	return nil
}

// Group is a sync.WaitGroup replacement whose Wait participates in the
// clock's run-queue accounting, so a goroutine joining its workers does not
// pin virtual time while blocked.
type Group struct {
	clk Clock
	mu  sync.Mutex
	n   int
	ev  *Event // non-nil while a waiter is parked; recreated per wait round
}

// NewGroup returns a Group bound to clk.
func NewGroup(clk Clock) *Group { return &Group{clk: Default(clk)} }

// Add increments the worker count by n (call before spawning, like
// sync.WaitGroup).
func (g *Group) Add(n int) {
	g.mu.Lock()
	g.n += n
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	g.mu.Unlock()
}

// Done marks one worker finished, waking waiters when the count hits zero.
func (g *Group) Done() {
	g.mu.Lock()
	g.n--
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	var ev *Event
	if g.n == 0 && g.ev != nil {
		ev = g.ev
		g.ev = nil
	}
	g.mu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// Go runs f as one tracked worker: Add(1), spawn via the clock, Done on
// return.
func (g *Group) Go(f func()) {
	g.Add(1)
	g.clk.Go(func() {
		defer g.Done()
		f()
	})
}

// Wait blocks until the worker count reaches zero.
func (g *Group) Wait() {
	for {
		g.mu.Lock()
		if g.n == 0 {
			g.mu.Unlock()
			return
		}
		if g.ev == nil {
			g.ev = g.clk.NewEvent()
		}
		ev := g.ev
		g.mu.Unlock()
		ev.Wait()
	}
}
