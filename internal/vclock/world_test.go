package vclock

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// stormClocks abstracts "one clock per partition" so the same storm can run
// on a partitioned World and on a serialized Virtual (where every partition
// maps to the one clock and the cross-partition helpers degenerate to plain
// local scheduling at identical virtual times).
type stormClocks struct {
	ctl   Clock
	parts []Clock
}

// stormLog collects delivered actions per partition. Appends happen only
// from the owning partition's serialized execution; the mutex makes the
// collection robust regardless.
type stormLog struct {
	mu   sync.Mutex
	recs [][]string
}

func (l *stormLog) add(part int, kind string, actor, step int, clk Clock) {
	l.mu.Lock()
	l.recs[part] = append(l.recs[part],
		fmt.Sprintf("%s a%d s%d @%d", kind, actor, step, clk.Now().UnixNano()))
	l.mu.Unlock()
}

// stormLA builds the test lookahead matrix: partition 0 is the control
// partition (tiny outbound lookahead, large inbound), the rest are regions
// with millisecond-scale pairwise lookaheads.
func stormLA(n int) [][]time.Duration {
	la := make([][]time.Duration, n)
	for i := range la {
		la[i] = make([]time.Duration, n)
		for j := range la[i] {
			switch {
			case i == j:
			case i == 0:
				la[i][j] = time.Microsecond
			case j == 0:
				la[i][j] = 10 * time.Millisecond
			default:
				diff := i - j
				if diff < 0 {
					diff = -diff
				}
				la[i][j] = time.Duration(1+diff) * time.Millisecond
			}
		}
	}
	return la
}

// runStorm drives a seeded cross-partition timer/send/call storm: actors on
// every region partition schedule local timers, cross-partition deliveries,
// and synchronous cross-partition calls from independent per-actor RNG
// streams. It returns the per-partition delivered order.
func runStorm(t *testing.T, seed int64, clks stormClocks, regions int) [][]string {
	t.Helper()
	const (
		actorsPerPart = 3
		steps         = 25
		startAt       = 50 * time.Millisecond
	)
	log := &stormLog{recs: make([][]string, regions+1)}
	g := NewGroup(clks.ctl)
	start := clks.ctl.Now().Add(startAt)
	for pi := 1; pi <= regions; pi++ {
		for ai := 0; ai < actorsPerPart; ai++ {
			pi, ai := pi, ai
			clk := clks.parts[pi-1]
			g.GoOn(clk, func() {
				rng := rand.New(rand.NewSource(seed + int64(pi*100+ai)))
				// Align to an absolute start time so the (mode-dependent)
				// spawn latency cannot shift the storm's timeline.
				clk.Sleep(clk.Until(start))
				for s := 0; s < steps; s++ {
					// Unique sub-microsecond stamp keeps every scheduled
					// instant distinct, so the serialized reference order
					// is exactly time order.
					uniq := time.Duration(pi*100_000+ai*1_000+s) * time.Nanosecond
					d := 11*time.Millisecond + time.Duration(rng.Intn(7_000_000)) + uniq
					switch rng.Intn(4) {
					case 0:
						clk.AfterFunc(d, func() { log.add(pi, "local", pi*100+ai, s, clk) })
					case 1:
						dst := 1 + rng.Intn(regions)
						dclk := clks.parts[dst-1]
						ScheduleCross(clk, dclk, d, func() { log.add(dst, "cross", pi*100+ai, s, dclk) })
					case 2:
						// A second cross flavor with a different delay
						// range, so merged streams overlap heavily.
						// (RunOn is deliberately absent here: its shipped
						// round trip takes 2×lookahead of virtual time on a
						// World but zero on the serialized reference; its
						// determinism is gated separately below.)
						dst := 1 + rng.Intn(regions)
						dclk := clks.parts[dst-1]
						ScheduleCross(clk, dclk, d+20*time.Millisecond,
							func() { log.add(dst, "cross2", pi*100+ai, s, dclk) })
					default:
						clk.Sleep(d / 4)
					}
					clk.Sleep(500*time.Microsecond + time.Duration(rng.Intn(2_000_000)))
				}
			})
		}
	}
	g.Wait()
	// Let stragglers (timers scheduled near the end) deliver.
	clks.ctl.Sleep(time.Second)
	return log.recs
}

func virtualStormClocks(regions int) (stormClocks, func()) {
	v := NewVirtual()
	clks := stormClocks{ctl: v}
	for i := 0; i < regions; i++ {
		clks.parts = append(clks.parts, v)
	}
	return clks, v.Shutdown
}

func worldStormClocks(t *testing.T, regions int) (stormClocks, func()) {
	t.Helper()
	names := []string{"ctl"}
	for i := 0; i < regions; i++ {
		names = append(names, fmt.Sprintf("r%d", i))
	}
	w, err := NewWorld(names, stormLA(regions+1))
	if err != nil {
		t.Fatal(err)
	}
	clks := stormClocks{ctl: w.Partition("ctl")}
	for i := 0; i < regions; i++ {
		clks.parts = append(clks.parts, w.Partition(fmt.Sprintf("r%d", i)))
	}
	return clks, w.Shutdown
}

func compareStorms(t *testing.T, wantName, gotName string, want, got [][]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("partition count differs: %s=%d %s=%d", wantName, len(want), gotName, len(got))
	}
	for p := range want {
		if len(want[p]) != len(got[p]) {
			t.Errorf("partition %d: %d deliveries under %s, %d under %s",
				p, len(want[p]), wantName, len(got[p]), gotName)
			continue
		}
		for i := range want[p] {
			if want[p][i] != got[p][i] {
				t.Errorf("partition %d delivery %d: %s=%q %s=%q",
					p, i, wantName, want[p][i], gotName, got[p][i])
				break
			}
		}
	}
}

// TestWorldMatchesSerializedReference is the merge-layer gate: a seeded
// cross-partition storm delivered by the parallel partitioned scheduler
// must land in exactly the order the serialized Virtual reference delivers
// it (per destination, with every instant distinct, that order is pure time
// order — any merge bug shows up as a reordering).
func TestWorldMatchesSerializedReference(t *testing.T) {
	const regions = 4
	for _, seed := range []int64{1, 42, 1789} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			vc, vstop := virtualStormClocks(regions)
			ref := runStorm(t, seed, vc, regions)
			vstop()
			wc, wstop := worldStormClocks(t, regions)
			got := runStorm(t, seed, wc, regions)
			wstop()
			total := 0
			for _, rs := range ref {
				total += len(rs)
			}
			if total < 100 {
				t.Fatalf("storm too small to be meaningful: %d deliveries", total)
			}
			compareStorms(t, "virtual", "world", ref, got)
		})
	}
}

// TestWorldGOMAXPROCSInvariance runs the same seeded storm on the
// partitioned scheduler at GOMAXPROCS=1 and GOMAXPROCS=NumCPU and requires
// bit-identical delivery logs: thread interleaving must never leak into the
// simulated order.
func TestWorldGOMAXPROCSInvariance(t *testing.T) {
	const regions = 4
	run := func(procs int) [][]string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		wc, stop := worldStormClocks(t, regions)
		defer stop()
		return runStorm(t, 7, wc, regions)
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	compareStorms(t, "procs=1", fmt.Sprintf("procs=%d", runtime.NumCPU()), serial, parallel)
}

// TestWorldEventCrossPartition exercises the Event merge path: events homed
// on region partitions, fired there, awaited from the control partition —
// the pattern the determinism gates' drivers rely on. Two same-seed runs
// must observe identical wake times.
func TestWorldEventCrossPartition(t *testing.T) {
	run := func() []string {
		wc, stop := worldStormClocks(t, 3)
		defer stop()
		ctl := wc.ctl
		var out []string
		for i := 0; i < 12; i++ {
			clk := wc.parts[i%3]
			ev := clk.NewEvent()
			d := time.Duration(i+1) * 3 * time.Millisecond
			RunOn(ctl, clk, func() { clk.AfterFunc(d, ev.Fire) })
			if !ev.WaitTimeoutFrom(ctl, time.Minute) {
				t.Fatalf("event %d never fired", i)
			}
			out = append(out, fmt.Sprintf("ev%d@%d", i, ctl.Now().UnixNano()))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wake %d differs across same-seed runs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestWorldGroupCountsInFlight checks the deterministic in-flight gauge the
// open-loop driver uses: N reflects spawned-minus-completed as observed at
// the home partition.
func TestWorldGroupCountsInFlight(t *testing.T) {
	wc, stop := worldStormClocks(t, 2)
	defer stop()
	ctl := wc.ctl
	g := NewGroup(ctl)
	for i := 0; i < 4; i++ {
		clk := wc.parts[i%2]
		g.GoOn(clk, func() { clk.Sleep(5 * time.Millisecond) })
	}
	if n := g.N(); n != 4 {
		t.Fatalf("in-flight after spawn = %d, want 4", n)
	}
	g.Wait()
	if n := g.N(); n != 0 {
		t.Fatalf("in-flight after Wait = %d, want 0", n)
	}
}

// TestWorldShutdownReleasesSleepers mirrors the Virtual shutdown contract.
func TestWorldShutdownReleasesSleepers(t *testing.T) {
	wc, stop := worldStormClocks(t, 2)
	ctl := wc.ctl
	g := NewGroup(ctl)
	g.GoOn(wc.parts[0], func() { wc.parts[0].Sleep(time.Hour) })
	go func() {
		time.Sleep(10 * time.Millisecond) // let the sleeper park
		stop()
	}()
	waited := make(chan struct{})
	go func() {
		select {
		case <-waited:
		case <-time.After(10 * time.Second):
			panic("vclock: shutdown did not release a parked sleeper")
		}
	}()
	g.Wait() // released by shutdown: the hour-long sleep returns early
	close(waited)
}
