package latency

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder(64)
	if _, ok := r.Quantile(0.5); ok {
		t.Error("quantile on empty recorder")
	}
	if _, ok := r.WindowMean(); ok {
		t.Error("mean on empty recorder")
	}
	if _, ok := r.Snapshot(); ok {
		t.Error("snapshot on empty recorder")
	}
	if got := r.CDF(time.Second); got != 0 {
		t.Errorf("CDF on empty = %v", got)
	}
}

func TestRecorderQuantiles(t *testing.T) {
	r := NewRecorder(1000)
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	if q, _ := r.Quantile(0.5); q < 49*time.Millisecond || q > 52*time.Millisecond {
		t.Errorf("p50=%v", q)
	}
	if q, _ := r.Quantile(0.99); q < 98*time.Millisecond {
		t.Errorf("p99=%v", q)
	}
	if got := r.CDF(50 * time.Millisecond); got != 0.5 {
		t.Errorf("CDF(50ms)=%v", got)
	}
}

func TestRecorderWindowEviction(t *testing.T) {
	r := NewRecorder(16)
	// Fill with large values, then overwrite with small ones.
	for i := 0; i < 16; i++ {
		r.Observe(time.Second)
	}
	for i := 0; i < 16; i++ {
		r.Observe(time.Millisecond)
	}
	if q, _ := r.Quantile(1); q != time.Millisecond {
		t.Errorf("old samples survived the window: max=%v", q)
	}
	if r.Count() != 32 {
		t.Errorf("total count=%d, want 32", r.Count())
	}
	if m, _ := r.WindowMean(); m != time.Millisecond {
		t.Errorf("window mean=%v", m)
	}
	if m, _ := r.TotalMean(); m != (time.Second+time.Millisecond)/2 {
		t.Errorf("total mean=%v", m)
	}
}

func TestRecorderNegativeClamped(t *testing.T) {
	r := NewRecorder(16)
	r.Observe(-5 * time.Second)
	if q, _ := r.Quantile(0.5); q != 0 {
		t.Errorf("negative sample stored as %v", q)
	}
}

func TestRecorderSample(t *testing.T) {
	r := NewRecorder(64)
	if _, ok := r.Sample(rand.New(rand.NewSource(1))); ok {
		t.Error("sample from empty recorder")
	}
	r.Observe(3 * time.Millisecond)
	if s, ok := r.Sample(rand.New(rand.NewSource(1))); !ok || s != 3*time.Millisecond {
		t.Errorf("sample=%v ok=%v", s, ok)
	}
}

func TestRecorderSnapshotMatchesWindow(t *testing.T) {
	r := NewRecorder(32)
	for i := 1; i <= 32; i++ {
		r.Observe(time.Duration(i))
	}
	e, ok := r.Snapshot()
	if !ok || e.N() != 32 {
		t.Fatalf("snapshot N=%d ok=%v", e.N(), ok)
	}
	if e.Quantile(1) != 32 {
		t.Errorf("snapshot max=%v", e.Quantile(1))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Observe(time.Duration(g*1000+i) * time.Microsecond)
				if i%100 == 0 {
					r.Quantile(0.9)
					r.CDF(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Errorf("count=%d, want 8000", r.Count())
	}
}

// Property: CDF is a non-decreasing function of the probe value.
func TestRecorderCDFMonotoneProperty(t *testing.T) {
	f := func(samples []uint16, a, b uint16) bool {
		r := NewRecorder(64)
		for _, s := range samples {
			r.Observe(time.Duration(s) * time.Microsecond)
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return r.CDF(time.Duration(lo)*time.Microsecond) <= r.CDF(time.Duration(hi)*time.Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are non-decreasing in p and drawn from the window.
func TestRecorderQuantileProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		r := NewRecorder(1024)
		minS, maxS := time.Duration(samples[0]), time.Duration(samples[0])
		for _, s := range samples {
			d := time.Duration(s)
			r.Observe(d)
			if d < minS {
				minS = d
			}
			if d > maxS {
				maxS = d
			}
		}
		prev := time.Duration(-1)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			q, ok := r.Quantile(p)
			if !ok || q < prev || q < minS || q > maxS {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
