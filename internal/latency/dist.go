// Package latency provides the probability machinery under PLANET's
// commit-likelihood predictor and the WAN emulator: parametric delay
// distributions (log-normal with an offset floor), empirical distributions
// built from streamed samples, quantile and CDF queries, moment fitting,
// and convolution of independent delays.
//
// All durations are expressed as time.Duration. Distributions are immutable
// once constructed and safe for concurrent use; the streaming Recorder is
// internally synchronized.
package latency

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Dist is a distribution over non-negative delays.
type Dist interface {
	// Sample draws one delay using rng.
	Sample(rng *rand.Rand) time.Duration
	// CDF returns P(X <= d).
	CDF(d time.Duration) float64
	// Quantile returns the smallest d with CDF(d) >= p, for p in [0,1].
	Quantile(p float64) time.Duration
	// Mean returns the expected delay.
	Mean() time.Duration
}

// LogNormal is a log-normal delay distribution shifted by a constant Floor:
// X = Floor + exp(N(Mu, Sigma^2)). The floor models the physical propagation
// minimum of a WAN link; the log-normal body models queueing jitter and the
// heavy-ish tail observed on real inter-datacenter paths.
type LogNormal struct {
	Floor time.Duration
	Mu    float64 // mean of the underlying normal, in log-nanoseconds
	Sigma float64 // stddev of the underlying normal
}

// NewLogNormal builds a LogNormal whose floor is floor and whose variable
// part has the given median and sigma. median is the median of the variable
// part (so the distribution's median is floor+median).
func NewLogNormal(floor, median time.Duration, sigma float64) LogNormal {
	if median <= 0 {
		median = time.Nanosecond
	}
	if sigma < 0 {
		sigma = 0
	}
	return LogNormal{Floor: floor, Mu: math.Log(float64(median)), Sigma: sigma}
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	v := math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
	return l.Floor + time.Duration(v)
}

// CDF implements Dist.
func (l LogNormal) CDF(d time.Duration) float64 {
	if d <= l.Floor {
		return 0
	}
	if l.Sigma == 0 {
		if float64(d-l.Floor) >= math.Exp(l.Mu) {
			return 1
		}
		return 0
	}
	z := (math.Log(float64(d-l.Floor)) - l.Mu) / l.Sigma
	return stdNormalCDF(z)
}

// Quantile implements Dist.
func (l LogNormal) Quantile(p float64) time.Duration {
	switch {
	case p <= 0:
		return l.Floor
	case p >= 1:
		// The support is unbounded; return a far-tail point.
		p = 1 - 1e-9
	}
	z := stdNormalQuantile(p)
	return l.Floor + time.Duration(math.Exp(l.Mu+l.Sigma*z))
}

// Mean implements Dist.
func (l LogNormal) Mean() time.Duration {
	return l.Floor + time.Duration(math.Exp(l.Mu+l.Sigma*l.Sigma/2))
}

// String implements fmt.Stringer.
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(floor=%s, median=%s, sigma=%.2f)",
		l.Floor, time.Duration(math.Exp(l.Mu)), l.Sigma)
}

// Constant is a degenerate distribution: every sample equals D.
type Constant time.Duration

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

// CDF implements Dist.
func (c Constant) CDF(d time.Duration) float64 {
	if d >= time.Duration(c) {
		return 1
	}
	return 0
}

// Quantile implements Dist.
func (c Constant) Quantile(float64) time.Duration { return time.Duration(c) }

// Mean implements Dist.
func (c Constant) Mean() time.Duration { return time.Duration(c) }

// Empirical is a distribution backed by a sorted sample set. It answers CDF
// and quantile queries by interpolation over the samples, which is exactly
// what the predictor wants when it has observed real message delays.
type Empirical struct {
	sorted []time.Duration // ascending
	mean   time.Duration
}

// NewEmpirical builds an Empirical distribution from samples. It copies and
// sorts the input. At least one sample is required.
func NewEmpirical(samples []time.Duration) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("latency: empirical distribution needs at least one sample")
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, d := range s {
		sum += float64(d)
	}
	return &Empirical{sorted: s, mean: time.Duration(sum / float64(len(s)))}, nil
}

// N returns the number of samples backing the distribution.
func (e *Empirical) N() int { return len(e.sorted) }

// Sample implements Dist by drawing a uniform sample.
func (e *Empirical) Sample(rng *rand.Rand) time.Duration {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// CDF implements Dist.
func (e *Empirical) CDF(d time.Duration) float64 {
	// Count of samples <= d, by binary search for the first sample > d.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > d })
	return float64(i) / float64(len(e.sorted))
}

// Quantile implements Dist.
func (e *Empirical) Quantile(p float64) time.Duration {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Mean implements Dist.
func (e *Empirical) Mean() time.Duration { return e.mean }

// FitLogNormal fits a shifted log-normal to samples by using the observed
// minimum as the floor estimate (shrunk slightly so the minimum itself has
// non-zero density) and moment matching on the log of the remainder.
func FitLogNormal(samples []time.Duration) (LogNormal, error) {
	if len(samples) < 2 {
		return LogNormal{}, fmt.Errorf("latency: fit needs at least 2 samples, got %d", len(samples))
	}
	minS := samples[0]
	for _, s := range samples {
		if s < minS {
			minS = s
		}
	}
	floor := time.Duration(float64(minS) * 0.9)
	var sum, sumSq float64
	n := 0
	for _, s := range samples {
		v := float64(s - floor)
		if v <= 0 {
			continue
		}
		lv := math.Log(v)
		sum += lv
		sumSq += lv * lv
		n++
	}
	if n < 2 {
		return LogNormal{}, fmt.Errorf("latency: fit degenerate after floor subtraction")
	}
	mu := sum / float64(n)
	variance := sumSq/float64(n) - mu*mu
	if variance < 0 {
		variance = 0
	}
	return LogNormal{Floor: floor, Mu: mu, Sigma: math.Sqrt(variance)}, nil
}

// stdNormalCDF is the standard normal CDF via the complementary error
// function (math.Erfc), accurate over the full range.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdNormalQuantile inverts stdNormalCDF with bisection; it is only used on
// construction/lookup paths, never per message, so simplicity wins.
func stdNormalQuantile(p float64) float64 {
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if stdNormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
