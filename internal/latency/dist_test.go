package latency

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLogNormalSampleAboveFloor(t *testing.T) {
	d := NewLogNormal(10*time.Millisecond, 5*time.Millisecond, 0.3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if s := d.Sample(rng); s <= d.Floor {
			t.Fatalf("sample %v not above floor %v", s, d.Floor)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	d := NewLogNormal(10*time.Millisecond, 5*time.Millisecond, 0.4)
	got := d.Quantile(0.5)
	want := 15 * time.Millisecond
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("median = %v, want ≈ %v", got, want)
	}
}

func TestLogNormalCDFQuantileInverse(t *testing.T) {
	d := NewLogNormal(2*time.Millisecond, 3*time.Millisecond, 0.5)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		q := d.Quantile(p)
		back := d.CDF(q)
		if math.Abs(back-p) > 0.01 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestLogNormalCDFMonotone(t *testing.T) {
	d := NewLogNormal(time.Millisecond, 2*time.Millisecond, 0.7)
	f := func(aMs, bMs uint16) bool {
		a := time.Duration(aMs) * time.Millisecond / 4
		b := time.Duration(bMs) * time.Millisecond / 4
		if a > b {
			a, b = b, a
		}
		return d.CDF(a) <= d.CDF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalMeanMatchesSamples(t *testing.T) {
	d := NewLogNormal(8*time.Millisecond, 4*time.Millisecond, 0.3)
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	sampleMean := time.Duration(sum / n)
	if ratio := float64(sampleMean) / float64(d.Mean()); ratio < 0.98 || ratio > 1.02 {
		t.Errorf("sample mean %v vs analytic mean %v (ratio %.3f)", sampleMean, d.Mean(), ratio)
	}
}

func TestConstant(t *testing.T) {
	c := Constant(7 * time.Millisecond)
	if c.Sample(nil) != 7*time.Millisecond {
		t.Error("sample not constant")
	}
	if c.CDF(6*time.Millisecond) != 0 || c.CDF(7*time.Millisecond) != 1 {
		t.Error("constant CDF wrong")
	}
	if c.Mean() != 7*time.Millisecond || c.Quantile(0.3) != 7*time.Millisecond {
		t.Error("constant mean/quantile wrong")
	}
}

func TestEmpiricalBasics(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Fatal("empty sample set accepted")
	}
	samples := []time.Duration{5, 1, 3, 2, 4}
	e, err := NewEmpirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 5 {
		t.Errorf("N=%d", e.N())
	}
	if e.Mean() != 3 {
		t.Errorf("mean=%v, want 3", e.Mean())
	}
	if got := e.CDF(3); got != 0.6 {
		t.Errorf("CDF(3)=%v, want 0.6", got)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5)=%v, want 3", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0)=%v, want 1", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Errorf("Quantile(1)=%v, want 5", got)
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	samples := []time.Duration{3, 1, 2}
	e, err := NewEmpirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	samples[0] = 100
	if e.Quantile(1) == 100 {
		t.Error("empirical aliases caller's slice")
	}
}

func TestEmpiricalCDFProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, r := range raw {
			samples[i] = time.Duration(r)
		}
		e, err := NewEmpirical(samples)
		if err != nil {
			return false
		}
		// CDF equals exact fraction of samples <= probe.
		count := 0
		for _, s := range samples {
			if s <= time.Duration(probe) {
				count++
			}
		}
		want := float64(count) / float64(len(samples))
		return math.Abs(e.CDF(time.Duration(probe))-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitLogNormalRecoversParameters(t *testing.T) {
	orig := NewLogNormal(20*time.Millisecond, 10*time.Millisecond, 0.25)
	rng := rand.New(rand.NewSource(3))
	samples := make([]time.Duration, 5000)
	for i := range samples {
		samples[i] = orig.Sample(rng)
	}
	fit, err := FitLogNormal(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted median should be close to the original's.
	gotMed, wantMed := fit.Quantile(0.5), orig.Quantile(0.5)
	if ratio := float64(gotMed) / float64(wantMed); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("fitted median %v vs original %v", gotMed, wantMed)
	}
	// And the p95 should be in the same ballpark.
	got95, want95 := fit.Quantile(0.95), orig.Quantile(0.95)
	if ratio := float64(got95) / float64(want95); ratio < 0.85 || ratio > 1.15 {
		t.Errorf("fitted p95 %v vs original %v", got95, want95)
	}
}

func TestFitLogNormalErrors(t *testing.T) {
	if _, err := FitLogNormal([]time.Duration{time.Second}); err == nil {
		t.Error("single sample accepted")
	}
	// Constant samples fit to a (valid) zero-sigma distribution whose
	// median matches the constant.
	fit, err := FitLogNormal([]time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("constant fit: %v", err)
	}
	if fit.Sigma != 0 {
		t.Errorf("constant fit sigma=%v, want 0", fit.Sigma)
	}
	if med := fit.Quantile(0.5); med < 4*time.Millisecond || med > 6*time.Millisecond {
		t.Errorf("constant fit median=%v, want ≈5ms", med)
	}
}

func TestStdNormal(t *testing.T) {
	cases := []struct{ z, p float64 }{
		{0, 0.5},
		{1.6449, 0.95},
		{-1.6449, 0.05},
		{2.3263, 0.99},
	}
	for _, tc := range cases {
		if got := stdNormalCDF(tc.z); math.Abs(got-tc.p) > 1e-3 {
			t.Errorf("stdNormalCDF(%v)=%v, want %v", tc.z, got, tc.p)
		}
		if got := stdNormalQuantile(tc.p); math.Abs(got-tc.z) > 1e-3 {
			t.Errorf("stdNormalQuantile(%v)=%v, want %v", tc.p, got, tc.z)
		}
	}
}
