package latency

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates delay observations and answers distribution queries
// over a bounded window of the most recent samples. It is the predictor's
// view of "what does a message on this link cost right now".
//
// The window is a ring buffer: once capacity is reached, new samples
// overwrite the oldest ones, so the recorder tracks non-stationary
// latencies (load spikes, reconfigurations) with bounded memory.
// All methods are safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	ring    []time.Duration
	next    int
	filled  bool
	count   uint64
	sum     float64 // running sum over the whole history, for TotalMean
	dirty   bool
	sortedC []time.Duration // cached sorted copy of the window
}

// NewRecorder returns a Recorder keeping the most recent capacity samples.
// Capacity is clamped to at least 16.
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{ring: make([]time.Duration, 0, capacity)}
}

// Observe records one delay sample.
func (r *Recorder) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, d)
	} else {
		r.ring[r.next] = d
		r.next = (r.next + 1) % cap(r.ring)
		r.filled = true
	}
	r.count++
	r.sum += float64(d)
	r.dirty = true
}

// Count returns the total number of samples ever observed.
func (r *Recorder) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// sortedLocked refreshes and returns the cached sorted window.
// Callers must hold r.mu.
func (r *Recorder) sortedLocked() []time.Duration {
	if r.dirty || r.sortedC == nil {
		r.sortedC = append(r.sortedC[:0], r.ring...)
		// insertion-free: use sort from the stdlib via a copy
		sortDurations(r.sortedC)
		r.dirty = false
	}
	return r.sortedC
}

// Snapshot returns an immutable Empirical distribution over the current
// window, or ok=false if no samples have been observed yet.
func (r *Recorder) Snapshot() (*Empirical, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil, false
	}
	e, err := NewEmpirical(r.ring)
	if err != nil {
		return nil, false
	}
	return e, true
}

// CDF returns the fraction of windowed samples <= d. With no samples it
// returns 0.
func (r *Recorder) CDF(d time.Duration) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sortedLocked()
	if len(s) == 0 {
		return 0
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(len(s))
}

// Quantile returns the p-quantile over the window; ok=false with no samples.
func (r *Recorder) Quantile(p float64) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sortedLocked()
	if len(s) == 0 {
		return 0, false
	}
	if p <= 0 {
		return s[0], true
	}
	if p >= 1 {
		return s[len(s)-1], true
	}
	idx := int(p * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx], true
}

// WindowMean returns the mean of the current window; ok=false with no samples.
func (r *Recorder) WindowMean() (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return 0, false
	}
	var sum float64
	for _, d := range r.ring {
		sum += float64(d)
	}
	return time.Duration(sum / float64(len(r.ring))), true
}

// TotalMean returns the mean over every sample ever observed.
func (r *Recorder) TotalMean() (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0, false
	}
	return time.Duration(r.sum / float64(r.count)), true
}

// Sample draws a random sample from the window, or ok=false when empty.
func (r *Recorder) Sample(rng *rand.Rand) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return 0, false
	}
	return r.ring[rng.Intn(len(r.ring))], true
}

// sortDurations sorts in place; split out to keep sortedLocked readable.
func sortDurations(s []time.Duration) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
