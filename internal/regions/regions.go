// Package regions provides the datacenter topologies used by the PLANET
// experiments. The five-region preset mirrors the paper's evaluation setup
// (five Amazon EC2 regions); the three- and seven-region presets back the
// scaling experiment (F8).
//
// Round-trip times are modeled on published inter-region EC2 measurements
// from the paper's era. Each directed link gets a shifted log-normal
// one-way delay whose median is half the RTT; the log-normal body gives the
// jitter and tail behaviour PLANET's predictor is designed around.
package regions

import (
	"fmt"
	"time"

	"planet/internal/latency"
	"planet/internal/simnet"
)

// The canonical region names (paper: California, Virginia, Ireland,
// Singapore, Tokyo; extended set adds Sydney and São Paulo).
const (
	California simnet.Region = "us-west"
	Virginia   simnet.Region = "us-east"
	Ireland    simnet.Region = "eu-west"
	Singapore  simnet.Region = "ap-southeast"
	Tokyo      simnet.Region = "ap-northeast"
	Sydney     simnet.Region = "ap-sydney"
	SaoPaulo   simnet.Region = "sa-east"
)

// rtts holds round-trip medians in milliseconds between region pairs.
var rtts = map[[2]simnet.Region]time.Duration{
	{California, Virginia}:  75 * time.Millisecond,
	{California, Ireland}:   155 * time.Millisecond,
	{California, Singapore}: 175 * time.Millisecond,
	{California, Tokyo}:     115 * time.Millisecond,
	{California, Sydney}:    160 * time.Millisecond,
	{California, SaoPaulo}:  195 * time.Millisecond,
	{Virginia, Ireland}:     80 * time.Millisecond,
	{Virginia, Singapore}:   230 * time.Millisecond,
	{Virginia, Tokyo}:       160 * time.Millisecond,
	{Virginia, Sydney}:      200 * time.Millisecond,
	{Virginia, SaoPaulo}:    120 * time.Millisecond,
	{Ireland, Singapore}:    270 * time.Millisecond,
	{Ireland, Tokyo}:        240 * time.Millisecond,
	{Ireland, Sydney}:       300 * time.Millisecond,
	{Ireland, SaoPaulo}:     190 * time.Millisecond,
	{Singapore, Tokyo}:      70 * time.Millisecond,
	{Singapore, Sydney}:     175 * time.Millisecond,
	{Singapore, SaoPaulo}:   340 * time.Millisecond,
	{Tokyo, Sydney}:         105 * time.Millisecond,
	{Tokyo, SaoPaulo}:       290 * time.Millisecond,
	{Sydney, SaoPaulo}:      310 * time.Millisecond,
}

// RTT returns the modeled median round-trip time between two regions, or an
// error for an unknown pair.
func RTT(a, b simnet.Region) (time.Duration, error) {
	if a == b {
		return 500 * time.Microsecond, nil
	}
	if d, ok := rtts[[2]simnet.Region{a, b}]; ok {
		return d, nil
	}
	if d, ok := rtts[[2]simnet.Region{b, a}]; ok {
		return d, nil
	}
	return 0, fmt.Errorf("regions: no RTT model for %s <-> %s", a, b)
}

// DefaultSigma is the log-normal sigma used for link jitter: wide enough to
// produce the tail latencies PLANET exists to mask, narrow enough that the
// latency ordering of regions is preserved.
const DefaultSigma = 0.18

// Topology bundles a region set with its latency matrix.
type Topology struct {
	Regions []simnet.Region
	Matrix  *simnet.Matrix
}

// Build constructs a Topology over the given regions with jitter sigma.
// Unknown region pairs are an error.
func Build(regionSet []simnet.Region, sigma float64) (Topology, error) {
	if len(regionSet) < 2 {
		return Topology{}, fmt.Errorf("regions: topology needs at least 2 regions, got %d", len(regionSet))
	}
	m := simnet.NewMatrix(nil)
	for i, a := range regionSet {
		for _, b := range regionSet[i+1:] {
			rtt, err := RTT(a, b)
			if err != nil {
				return Topology{}, err
			}
			oneWay := rtt / 2
			floor := time.Duration(float64(oneWay) * 0.85)
			m.SetLink(a, b, latency.NewLogNormal(floor, oneWay-floor, sigma))
		}
	}
	rs := make([]simnet.Region, len(regionSet))
	copy(rs, regionSet)
	return Topology{Regions: rs, Matrix: m}, nil
}

// Five returns the paper's five-datacenter topology.
func Five() Topology {
	t, err := Build([]simnet.Region{California, Virginia, Ireland, Singapore, Tokyo}, DefaultSigma)
	if err != nil {
		panic(err) // static preset; cannot fail
	}
	return t
}

// Three returns a three-datacenter topology (California, Virginia, Ireland).
func Three() Topology {
	t, err := Build([]simnet.Region{California, Virginia, Ireland}, DefaultSigma)
	if err != nil {
		panic(err)
	}
	return t
}

// Seven returns a seven-datacenter topology for the scaling experiment.
func Seven() Topology {
	t, err := Build([]simnet.Region{California, Virginia, Ireland, Singapore, Tokyo, Sydney, SaoPaulo}, DefaultSigma)
	if err != nil {
		panic(err)
	}
	return t
}
