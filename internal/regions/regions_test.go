package regions

import (
	"math/rand"
	"testing"
	"time"

	"planet/internal/simnet"
)

func TestRTTSymmetric(t *testing.T) {
	ab, err := RTT(California, Tokyo)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := RTT(Tokyo, California)
	if err != nil {
		t.Fatal(err)
	}
	if ab != ba {
		t.Errorf("RTT asymmetric: %v vs %v", ab, ba)
	}
}

func TestRTTSelf(t *testing.T) {
	d, err := RTT(Ireland, Ireland)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 5*time.Millisecond {
		t.Errorf("self RTT=%v", d)
	}
}

func TestRTTUnknown(t *testing.T) {
	if _, err := RTT("mars", California); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestPresetsComplete(t *testing.T) {
	for _, topo := range []Topology{Three(), Five(), Seven()} {
		for i, a := range topo.Regions {
			for _, b := range topo.Regions[i+1:] {
				if _, err := RTT(a, b); err != nil {
					t.Errorf("missing RTT %s <-> %s", a, b)
				}
			}
		}
	}
	if n := len(Five().Regions); n != 5 {
		t.Errorf("Five has %d regions", n)
	}
	if n := len(Seven().Regions); n != 7 {
		t.Errorf("Seven has %d regions", n)
	}
}

func TestTopologyMedianMatchesModel(t *testing.T) {
	topo := Five()
	rng := rand.New(rand.NewSource(5))
	// One-way samples between California and Virginia should straddle
	// half the modeled RTT.
	want, err := RTT(California, Virginia)
	if err != nil {
		t.Fatal(err)
	}
	oneWay := want / 2
	dist := topo.Matrix.Link(California, Virginia)
	var below, above int
	for i := 0; i < 4000; i++ {
		if dist.Sample(rng) <= oneWay {
			below++
		} else {
			above++
		}
	}
	// The median of the link distribution is the one-way time, so samples
	// split roughly evenly.
	if below < 1500 || above < 1500 {
		t.Errorf("one-way samples split %d below / %d above the modeled median", below, above)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]simnet.Region{California}, DefaultSigma); err == nil {
		t.Error("single-region topology accepted")
	}
	if _, err := Build([]simnet.Region{California, "atlantis"}, DefaultSigma); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestBuildCopiesRegionSlice(t *testing.T) {
	in := []simnet.Region{California, Virginia}
	topo, err := Build(in, DefaultSigma)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = "mutated"
	if topo.Regions[0] != California {
		t.Error("topology aliases caller's region slice")
	}
}

func TestLatencyOrderingPreserved(t *testing.T) {
	// The nearest and farthest pairs must stay ordered after jitter:
	// Singapore-Tokyo (70ms) below Ireland-Singapore (270ms) with margin.
	topo := Five()
	rng := rand.New(rand.NewSource(7))
	near := topo.Matrix.Link(Singapore, Tokyo)
	far := topo.Matrix.Link(Ireland, Singapore)
	for i := 0; i < 1000; i++ {
		if near.Sample(rng) >= far.Sample(rng) {
			t.Fatal("nearest pair sampled slower than farthest pair")
		}
	}
}
