package chaos_test

// The invariant soak harness: a generated fault schedule (always containing
// a partition, a replica crash/restart with WAL recovery, and a latency
// spike) runs against a live closed-loop workload, and afterwards the
// harness audits the safety invariants that must survive any fault pattern:
//
//  1. Conservation: every issued transaction is accounted for exactly once
//     (issued == submitted + rejected, submitted == committed + aborted).
//  2. No dual decision: no transaction ID is both committed and aborted —
//     within one replica's WAL or across replicas' WALs.
//  3. Replay equality: for the same seed the generated schedule is
//     identical, and every replica's live state equals the state rebuilt
//     from its durable baseline + WAL replay (Restore).
//
// The harness runs a reduced size under -short (the verify.sh gate) but
// never skips.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"planet/internal/chaos"
	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/mdcc"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/workload"
)

func TestChaosSoakInvariants(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSoak(t, seed, soakOpts{})
		})
	}
}

// TestChaosSoakInvariantsPerOptionWire repeats the soak on the legacy
// one-message-per-option wire format: the safety invariants must hold
// identically under both framings of the commit protocol.
func TestChaosSoakInvariantsPerOptionWire(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSoak(t, seed, soakOpts{perOptionWire: true})
		})
	}
}

// TestChaosSoakLeaseFailover repeats the soak with epoch-fenced master
// leases enabled and a short term, so the scheduled replica crash kills a
// live lease holder mid-run: at least one survivor must take the dead
// holder's keyspace over, and every safety invariant — conservation, no
// dual decision within or across WALs, replay equality — must hold under
// lease churn exactly as it does under static mastership.
func TestChaosSoakLeaseFailover(t *testing.T) {
	for _, seed := range []int64{7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSoak(t, seed, soakOpts{leases: true})
		})
	}
}

// soakOpts selects protocol variants for one soak run.
type soakOpts struct {
	perOptionWire bool // legacy one-message-per-option wire format
	leases        bool // epoch-fenced master leases instead of static masters
}

func runChaosSoak(t *testing.T, seed int64, opts soakOpts) {
	clients, perClient := 20, 20
	span := 30 * time.Second // unscaled; 300ms real at TimeScale 0.01
	if testing.Short() {
		clients, perClient = 10, 10
		span = 20 * time.Second
	}

	c, err := cluster.New(cluster.Config{
		TimeScale: 0.01,
		Seed:      seed,
		WAL:       true,
		// Generous relative to the injected latency spikes, small enough
		// that a blackout-stalled transaction resolves within the test.
		CommitTimeout:     30 * time.Second,
		PerOptionMessages: opts.perOptionWire,
		MasterLeases:      opts.leases,
		// Short relative to the generated crash durations (1.5s--7.5s
		// unscaled), so a crashed holder's lease lapses and fails over
		// well inside the fault window.
		LeaseTerm: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	db, err := planet.Open(planet.Config{
		Cluster: c,
		Health:  planet.HealthPolicy{Window: 32, MaxTimeoutRate: 0.6, MinSamples: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chaos.New(chaos.Config{Cluster: c, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	// Invariant 3a — schedule replay equality: the same seed generates the
	// identical fault schedule.
	gen := chaos.GenConfig{Seed: seed, Span: span, Extra: 2}
	sc, err := chaos.Generate(c.Regions(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if sc2, _ := chaos.Generate(c.Regions(), gen); !reflect.DeepEqual(sc, sc2) {
		t.Fatal("Generate is not deterministic for a fixed seed")
	}

	// The acceptance trio must be on the schedule: a partition, a replica
	// crash (with recovery), and a latency spike.
	kinds := make(map[chaos.FaultKind]int)
	crashed := make(map[simnet.Region]bool)
	for _, f := range sc.Faults {
		kinds[f.Kind]++
		if f.Kind == chaos.FaultReplicaCrash {
			crashed[f.Region] = true
		}
	}
	if kinds[chaos.FaultRegionDown]+kinds[chaos.FaultLinkCut] == 0 {
		t.Fatal("schedule has no partition fault")
	}
	if kinds[chaos.FaultReplicaCrash] == 0 {
		t.Fatal("schedule has no replica crash")
	}
	if kinds[chaos.FaultLatencySpike] == 0 {
		t.Fatal("schedule has no latency spike")
	}

	// Fire the schedule and drive load through it.
	if err := eng.Run(sc); err != nil {
		t.Fatal(err)
	}
	issued := clients * perClient
	rep, err := workload.Closed{
		Options: workload.Options{
			DB: db,
			// Commutative decrements: no read dependencies, so a crashed
			// local replica cannot fail transaction *construction* — all
			// failures flow through the commit pipeline under test.
			Template:    workload.Buy{Products: workload.Zipf{Prefix: "p-", N: 32, S: 1.1}, Stock: 1 << 30},
			SpeculateAt: 0.9,
			Seed:        seed,
		},
		Clients: clients, PerClient: perClient,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	eng.Wait() // scenario end heals every outstanding fault
	if !c.Quiesce(20 * time.Second) {
		t.Fatal("network did not quiesce after the scenario")
	}
	t.Logf("workload: %s", rep)
	t.Logf("injections: %d", len(eng.Injected()))

	// Invariant 1 — conservation.
	st := db.Stats()
	t.Logf("stats: %+v", st)
	if st.Submitted+st.Rejected != uint64(issued) {
		t.Errorf("conservation: submitted %d + rejected %d != issued %d",
			st.Submitted, st.Rejected, issued)
	}
	if st.Committed+st.Aborted != st.Submitted {
		t.Errorf("conservation: committed %d + aborted %d != submitted %d",
			st.Committed, st.Aborted, st.Submitted)
	}
	if st.Committed == 0 {
		t.Error("no transaction committed through the chaos schedule")
	}

	// Invariant 2 — no dual decision. A replica that was down missed some
	// decisions, so WAL *lengths* may differ; what must never happen is
	// the same transaction ID logged twice in one WAL, or logged with
	// opposite verdicts anywhere in the cluster.
	decisions := make(map[txn.ID]bool)
	for _, r := range c.Regions() {
		seen := make(map[txn.ID]bool)
		err := c.WALOf(r).Replay(func(e mdcc.Entry) error {
			if e.Lease != nil {
				return nil // lease transition, not a decision
			}
			if seen[e.Txn] {
				return fmt.Errorf("txn %s logged twice in %s's WAL", e.Txn, r)
			}
			seen[e.Txn] = true
			if prev, ok := decisions[e.Txn]; ok && prev != e.Commit {
				return fmt.Errorf("dual decision for txn %s (commit=%v at %s disagrees)", e.Txn, e.Commit, r)
			}
			decisions[e.Txn] = e.Commit
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}

	// Invariant 3b — state replay equality: each replica's live state must
	// equal the state rebuilt from its baseline + WAL (what a crash at
	// this instant would recover to).
	recoveries := uint64(0)
	for _, r := range c.Regions() {
		replica := c.Replica(r)
		recoveries += replica.RecoveryRuns
		before := replica.Snapshot()
		if err := replica.Restore(); err != nil {
			t.Fatalf("%s: Restore: %v", r, err)
		}
		after := replica.Snapshot()
		if !reflect.DeepEqual(before, after) {
			t.Errorf("%s: live state != baseline+WAL replay\nlive:     %+v\nreplayed: %+v", r, before, after)
		}
	}

	// The scheduled crash really exercised WAL recovery mid-run.
	if recoveries == 0 {
		t.Error("no replica performed a WAL recovery during the scenario")
	}
	for r := range crashed {
		if c.Replica(r).Crashed() {
			t.Errorf("%s: replica still crashed after scenario end", r)
		}
	}

	// Under leases, the scheduled crash must have cost the victim at least
	// one keyspace: some survivor claimed a lease away from a dead holder.
	if opts.leases {
		var takeovers uint64
		for _, r := range c.Regions() {
			takeovers += c.Replica(r).LeaseTakeoverCount()
		}
		t.Logf("lease takeovers: %d", takeovers)
		if takeovers == 0 {
			t.Error("no keyspace lease was taken over despite a replica crash longer than the term")
		}
	}
}
