// Package chaos is a deterministic fault-injection engine for PLANET
// clusters. It turns the simulated WAN's failure knobs — region blackouts,
// directional link cuts, loss bursts, latency spikes, node crashes with
// WAL-replay recovery — into first-class, observable fault events: every
// injection lands in the metrics registry, is broadcast into in-flight
// transaction traces, and is recorded in a queryable history.
//
// Faults can be injected one at a time (the Engine's injector methods,
// exposed over the HTTP API) or scheduled as a seeded Scenario whose
// timeline replays identically for the same seed (see scenario.go).
package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"planet/internal/cluster"
	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/vclock"
)

// FaultKind names a fault class, used in history entries and metric labels.
type FaultKind string

// The fault classes the engine can inject.
const (
	FaultRegionDown   FaultKind = "region-down"
	FaultLinkCut      FaultKind = "link-cut"
	FaultLossBurst    FaultKind = "loss-burst"
	FaultLatencySpike FaultKind = "latency-spike"
	FaultReplicaCrash FaultKind = "replica-crash"
	FaultCoordCrash   FaultKind = "coord-crash"
)

// Config parameterizes New.
type Config struct {
	// Cluster is the deployment under attack. Required.
	Cluster *cluster.Cluster
	// Registry, when non-nil, counts injections and heals per fault kind
	// (planet_chaos_faults_total / planet_chaos_heals_total).
	Registry *obs.Registry
	// Tracer, when non-nil, receives an EvFault broadcast into every
	// in-flight transaction trace at each injection and heal, so a slow
	// trace shows exactly which fault it overlapped.
	Tracer *obs.Tracer
	// Logf, when non-nil, logs every injection and heal (e.g. log.Printf).
	Logf func(format string, args ...any)
}

// Injection is one history entry: a fault injected or healed.
type Injection struct {
	At     time.Time `json:"at"`
	Kind   FaultKind `json:"kind"`
	Detail string    `json:"detail"`
	// Heal marks recovery actions (region up, link healed, restart).
	Heal bool `json:"heal"`
}

// Engine injects faults into one cluster. Injector methods are safe for
// concurrent use; at most one scenario runs at a time.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	history []Injection
	faultC  map[FaultKind]*obs.Counter
	healC   map[FaultKind]*obs.Counter

	// Scenario run state (guarded by mu; the runner goroutine owns the
	// timeline between Run and Wait).
	running bool
	cancel  context.CancelFunc
	done    *vclock.Event
}

// New builds an engine over cfg.Cluster.
func New(cfg Config) (*Engine, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("chaos: Config.Cluster is required")
	}
	if cfg.Cluster.Net == nil {
		// The engine's fault surface is the simulated WAN's knobs. A
		// realnet deployment injects faults at the OS level instead
		// (SIGKILL/SIGSTOP, partitions via the transport's admin API — see
		// internal/multinet).
		return nil, fmt.Errorf("chaos: cluster has no simnet network; realnet deployments inject faults at the OS level")
	}
	return &Engine{
		cfg:    cfg,
		faultC: make(map[FaultKind]*obs.Counter),
		healC:  make(map[FaultKind]*obs.Counter),
	}, nil
}

// Cluster returns the deployment under attack.
func (e *Engine) Cluster() *cluster.Cluster { return e.cfg.Cluster }

// record logs one injection into history, metrics, traces, and the log.
func (e *Engine) record(kind FaultKind, heal bool, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	entry := Injection{At: time.Now(), Kind: kind, Detail: detail, Heal: heal}

	e.mu.Lock()
	e.history = append(e.history, entry)
	ctr := e.counterLocked(kind, heal)
	e.mu.Unlock()

	if ctr != nil {
		ctr.Inc()
	}
	note := detail
	if heal {
		note = "heal: " + detail
	}
	e.cfg.Tracer.Broadcast(obs.Event{Kind: obs.EvFault, Note: note})
	if e.cfg.Logf != nil {
		verb := "inject"
		if heal {
			verb = "heal"
		}
		e.cfg.Logf("chaos: %s %s: %s", verb, kind, detail)
	}
}

// counterLocked lazily resolves the registry counter for kind. Caller
// holds e.mu.
func (e *Engine) counterLocked(kind FaultKind, heal bool) *obs.Counter {
	if e.cfg.Registry == nil {
		return nil
	}
	cache, name, help := e.faultC, "planet_chaos_faults_total",
		"Faults injected by the chaos engine, by kind."
	if heal {
		cache, name, help = e.healC, "planet_chaos_heals_total",
			"Fault recoveries performed by the chaos engine, by kind."
	}
	ctr := cache[kind]
	if ctr == nil {
		ctr = e.cfg.Registry.Counter(name, help, obs.L("kind", string(kind)))
		cache[kind] = ctr
	}
	return ctr
}

// Injected returns a copy of the injection history, oldest first.
func (e *Engine) Injected() []Injection {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Injection(nil), e.history...)
}

// checkRegion validates r against the cluster topology.
func (e *Engine) checkRegion(r simnet.Region) error {
	for _, known := range e.cfg.Cluster.Regions() {
		if known == r {
			return nil
		}
	}
	return fmt.Errorf("chaos: unknown region %q", r)
}

// RegionDown blackholes every message to and from region r.
func (e *Engine) RegionDown(r simnet.Region) error {
	if err := e.checkRegion(r); err != nil {
		return err
	}
	e.cfg.Cluster.Net.SetRegionDown(r, true)
	e.record(FaultRegionDown, false, "region %s blackholed", r)
	return nil
}

// RegionUp lifts a RegionDown blackout.
func (e *Engine) RegionUp(r simnet.Region) error {
	if err := e.checkRegion(r); err != nil {
		return err
	}
	e.cfg.Cluster.Net.SetRegionDown(r, false)
	e.record(FaultRegionDown, true, "region %s restored", r)
	return nil
}

// CutLink severs the directional link from → to.
func (e *Engine) CutLink(from, to simnet.Region) error {
	if err := e.checkRegion(from); err != nil {
		return err
	}
	if err := e.checkRegion(to); err != nil {
		return err
	}
	e.cfg.Cluster.Net.SetLinkCut(from, to, true)
	e.record(FaultLinkCut, false, "link %s->%s cut", from, to)
	return nil
}

// HealLink restores the directional link from → to.
func (e *Engine) HealLink(from, to simnet.Region) error {
	if err := e.checkRegion(from); err != nil {
		return err
	}
	if err := e.checkRegion(to); err != nil {
		return err
	}
	e.cfg.Cluster.Net.SetLinkCut(from, to, false)
	e.record(FaultLinkCut, true, "link %s->%s healed", from, to)
	return nil
}

// SetLoss sets the network-wide uniform loss rate (a loss burst while
// elevated; 0 heals).
func (e *Engine) SetLoss(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("chaos: loss rate %v outside [0,1]", rate)
	}
	e.cfg.Cluster.Net.SetLossRate(rate)
	if rate == 0 {
		e.record(FaultLossBurst, true, "loss rate cleared")
	} else {
		e.record(FaultLossBurst, false, "loss rate %.2f", rate)
	}
	return nil
}

// SpikeLatency multiplies the sampled delay on the directional link
// from → to by factor (> 1 slows it down).
func (e *Engine) SpikeLatency(from, to simnet.Region, factor float64) error {
	if err := e.checkRegion(from); err != nil {
		return err
	}
	if err := e.checkRegion(to); err != nil {
		return err
	}
	if factor <= 0 {
		return fmt.Errorf("chaos: latency factor %v must be positive", factor)
	}
	e.cfg.Cluster.Net.SetLinkDelayFactor(from, to, factor)
	e.record(FaultLatencySpike, false, "link %s->%s latency x%.1f", from, to, factor)
	return nil
}

// ClearLatency removes a latency spike from the directional link from → to.
func (e *Engine) ClearLatency(from, to simnet.Region) error {
	if err := e.checkRegion(from); err != nil {
		return err
	}
	if err := e.checkRegion(to); err != nil {
		return err
	}
	e.cfg.Cluster.Net.SetLinkDelayFactor(from, to, 1)
	e.record(FaultLatencySpike, true, "link %s->%s latency restored", from, to)
	return nil
}

// CrashReplica kills region r's replica process: it leaves the network and
// loses its in-memory state.
func (e *Engine) CrashReplica(r simnet.Region) error {
	if err := e.cfg.Cluster.CrashReplica(r); err != nil {
		return err
	}
	e.record(FaultReplicaCrash, false, "replica %s crashed", r)
	return nil
}

// RestartReplica recovers region r's replica from its baseline and WAL.
func (e *Engine) RestartReplica(r simnet.Region) error {
	if err := e.cfg.Cluster.RestartReplica(r); err != nil {
		return err
	}
	e.record(FaultReplicaCrash, true, "replica %s restarted (WAL replay)", r)
	return nil
}

// CrashCoordinator kills region r's coordinator: every transaction it was
// coordinating aborts with mdcc.ErrCrashed.
func (e *Engine) CrashCoordinator(r simnet.Region) error {
	if err := e.cfg.Cluster.CrashCoordinator(r); err != nil {
		return err
	}
	e.record(FaultCoordCrash, false, "coordinator %s crashed", r)
	return nil
}

// RestartCoordinator rejoins region r's coordinator to the network.
func (e *Engine) RestartCoordinator(r simnet.Region) error {
	if err := e.cfg.Cluster.RestartCoordinator(r); err != nil {
		return err
	}
	e.record(FaultCoordCrash, true, "coordinator %s restarted", r)
	return nil
}
