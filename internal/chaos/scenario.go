package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"planet/internal/simnet"
)

// Fault is one scheduled fault in a scenario. Times are unscaled WAN time;
// the engine scales them through the cluster's TimeScale when running.
type Fault struct {
	// At is the injection offset from scenario start.
	At time.Duration `json:"at"`
	// Duration is how long the fault lasts before the engine heals it
	// (region up, link heal, restart, …). Zero means the fault holds
	// until the scenario ends or Stop is called — the engine always heals
	// everything it injected on the way out.
	Duration time.Duration `json:"duration"`
	Kind     FaultKind     `json:"kind"`
	// Region names the victim for region-down and crash faults.
	Region simnet.Region `json:"region,omitempty"`
	// From/To name the directional link for cut and latency faults.
	From simnet.Region `json:"from,omitempty"`
	To   simnet.Region `json:"to,omitempty"`
	// Factor is the latency-spike multiplier.
	Factor float64 `json:"factor,omitempty"`
	// Rate is the loss-burst drop probability.
	Rate float64 `json:"rate,omitempty"`
}

// Scenario is a named, ordered fault schedule.
type Scenario struct {
	Name   string  `json:"name"`
	Seed   int64   `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// timelineEvent is one scheduled action on the runner's clock.
type timelineEvent struct {
	at time.Duration // scaled offset from scenario start
	// healIdx names the fault (index into Scenario.Faults); an inject
	// event registers it as outstanding, its heal event consumes it.
	healIdx int
	isHeal  bool
}

// inject dispatches f's injection through the engine.
func (e *Engine) inject(f Fault) error {
	switch f.Kind {
	case FaultRegionDown:
		return e.RegionDown(f.Region)
	case FaultLinkCut:
		return e.CutLink(f.From, f.To)
	case FaultLossBurst:
		return e.SetLoss(f.Rate)
	case FaultLatencySpike:
		return e.SpikeLatency(f.From, f.To, f.Factor)
	case FaultReplicaCrash:
		return e.CrashReplica(f.Region)
	case FaultCoordCrash:
		return e.CrashCoordinator(f.Region)
	}
	return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
}

// heal dispatches f's recovery through the engine.
func (e *Engine) heal(f Fault) error {
	switch f.Kind {
	case FaultRegionDown:
		return e.RegionUp(f.Region)
	case FaultLinkCut:
		return e.HealLink(f.From, f.To)
	case FaultLossBurst:
		return e.SetLoss(0)
	case FaultLatencySpike:
		return e.ClearLatency(f.From, f.To)
	case FaultReplicaCrash:
		return e.RestartReplica(f.Region)
	case FaultCoordCrash:
		return e.RestartCoordinator(f.Region)
	}
	return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
}

// Run starts executing sc's timeline on a background goroutine. Injection
// offsets are scaled to emulator time. At most one scenario runs at a time;
// Wait blocks until the timeline finishes and Stop aborts it early. Either
// way, every fault the scenario injected is healed before Run's goroutine
// exits — a scenario never leaves the cluster broken.
func (e *Engine) Run(sc Scenario) error {
	// Validate up front so a typo'd scenario fails loudly instead of
	// panicking mid-run.
	for i, f := range sc.Faults {
		switch f.Kind {
		case FaultRegionDown, FaultReplicaCrash, FaultCoordCrash:
			if err := e.checkRegion(f.Region); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		case FaultLinkCut, FaultLatencySpike:
			if err := e.checkRegion(f.From); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
			if err := e.checkRegion(f.To); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		case FaultLossBurst:
			if f.Rate < 0 || f.Rate > 1 {
				return fmt.Errorf("chaos: fault %d: loss rate %v outside [0,1]", i, f.Rate)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}

	// The runner sleeps through the cluster clock so a virtual-time cluster
	// advances past fault offsets instead of wedging on a wall-clock timer;
	// done is an Event for the same reason (Wait must not pin virtual time).
	clk := e.cfg.Cluster.Clock()
	ctx, cancel := context.WithCancel(context.Background())

	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		cancel()
		return fmt.Errorf("chaos: scenario already running")
	}
	e.running = true
	e.cancel = cancel
	e.done = clk.NewEvent()
	done := e.done
	e.mu.Unlock()

	// Build the scaled timeline: one inject event per fault, plus a heal
	// event for bounded faults. A single runner goroutine fires them in
	// order, so injections never race each other.
	scale := func(d time.Duration) time.Duration { return e.cfg.Cluster.ScaleDuration(d) }
	var events []timelineEvent
	for i := range sc.Faults {
		f := sc.Faults[i]
		events = append(events, timelineEvent{at: scale(f.At), healIdx: i})
		if f.Duration > 0 {
			events = append(events, timelineEvent{at: scale(f.At + f.Duration), healIdx: i, isHeal: true})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].at < events[b].at })

	if e.cfg.Logf != nil {
		e.cfg.Logf("chaos: scenario %q starting: %d faults", sc.Name, len(sc.Faults))
	}

	clk.Go(func() {
		defer done.Fire()
		defer cancel()
		defer func() {
			e.mu.Lock()
			e.running = false
			e.mu.Unlock()
		}()

		start := clk.Now()
		outstanding := make(map[int]Fault, len(sc.Faults))

		for _, ev := range events {
			if wait := ev.at - clk.Since(start); wait > 0 {
				if clk.SleepCtx(ctx, wait) != nil {
					e.healOutstanding(outstanding)
					return
				}
			} else if ctx.Err() != nil {
				e.healOutstanding(outstanding)
				return
			}
			f := sc.Faults[ev.healIdx]
			if ev.isHeal {
				delete(outstanding, ev.healIdx)
				if err := e.heal(f); err != nil && e.cfg.Logf != nil {
					e.cfg.Logf("chaos: heal %s: %v", f.Kind, err)
				}
				continue
			}
			if err := e.inject(f); err != nil {
				if e.cfg.Logf != nil {
					e.cfg.Logf("chaos: inject %s: %v", f.Kind, err)
				}
				continue
			}
			outstanding[ev.healIdx] = f
		}
		e.healOutstanding(outstanding)
		if e.cfg.Logf != nil {
			e.cfg.Logf("chaos: scenario %q finished", sc.Name)
		}
	})
	return nil
}

// healOutstanding recovers every still-active fault, in injection order.
func (e *Engine) healOutstanding(outstanding map[int]Fault) {
	idxs := make([]int, 0, len(outstanding))
	for i := range outstanding {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		f := outstanding[i]
		if err := e.heal(f); err != nil && e.cfg.Logf != nil {
			e.cfg.Logf("chaos: heal %s: %v", f.Kind, err)
		}
	}
}

// Wait blocks until the running scenario's timeline completes (including
// its final heals). It returns immediately if none is running.
func (e *Engine) Wait() {
	e.mu.Lock()
	done := e.done
	e.mu.Unlock()
	if done != nil {
		done.Wait()
	}
}

// Stop aborts the running scenario. Outstanding faults are healed before
// Stop returns. A no-op when nothing is running.
func (e *Engine) Stop() {
	e.mu.Lock()
	cancel, done, running := e.cancel, e.done, e.running
	e.mu.Unlock()
	if !running {
		return
	}
	cancel()
	done.Wait()
}

// Running reports whether a scenario timeline is active.
func (e *Engine) Running() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// GenConfig parameterizes Generate.
type GenConfig struct {
	// Seed drives every random choice; the same seed over the same region
	// list reproduces the schedule exactly.
	Seed int64
	// Span is the scenario length in unscaled WAN time (default 60s).
	// Faults start inside the first three quarters so their effects and
	// recoveries land inside the span.
	Span time.Duration
	// Extra adds this many random faults beyond the guaranteed core set
	// (default 3).
	Extra int
}

// Generate builds a reproducible random scenario over regionList. The
// schedule always contains at least one partition (region blackout or link
// cut), one replica crash/restart, and one latency spike — the trio the
// soak harness requires — plus cfg.Extra random faults, sorted by At.
func Generate(regionList []simnet.Region, cfg GenConfig) (Scenario, error) {
	if len(regionList) < 2 {
		return Scenario{}, fmt.Errorf("chaos: Generate needs >= 2 regions, got %d", len(regionList))
	}
	if cfg.Span <= 0 {
		cfg.Span = 60 * time.Second
	}
	if cfg.Extra < 0 {
		cfg.Extra = 0
	} else if cfg.Extra == 0 {
		cfg.Extra = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := func() simnet.Region { return regionList[rng.Intn(len(regionList))] }
	link := func() (simnet.Region, simnet.Region) {
		from := rng.Intn(len(regionList))
		to := rng.Intn(len(regionList) - 1)
		if to >= from {
			to++
		}
		return regionList[from], regionList[to]
	}
	// at draws an offset in the first three quarters of the span; dur
	// draws a bounded hold so the heal lands inside the span too.
	at := func() time.Duration {
		return time.Duration(rng.Int63n(int64(cfg.Span * 3 / 4)))
	}
	dur := func() time.Duration {
		return cfg.Span/20 + time.Duration(rng.Int63n(int64(cfg.Span/5)))
	}

	var faults []Fault
	// Guaranteed core set: partition, crash, latency spike.
	if rng.Intn(2) == 0 {
		faults = append(faults, Fault{At: at(), Duration: dur(), Kind: FaultRegionDown, Region: region()})
	} else {
		from, to := link()
		faults = append(faults, Fault{At: at(), Duration: dur(), Kind: FaultLinkCut, From: from, To: to})
	}
	faults = append(faults, Fault{At: at(), Duration: dur(), Kind: FaultReplicaCrash, Region: region()})
	{
		from, to := link()
		faults = append(faults, Fault{At: at(), Duration: dur(),
			Kind: FaultLatencySpike, From: from, To: to, Factor: 2 + 6*rng.Float64()})
	}
	// Random extras across every kind.
	for i := 0; i < cfg.Extra; i++ {
		f := Fault{At: at(), Duration: dur()}
		switch rng.Intn(6) {
		case 0:
			f.Kind, f.Region = FaultRegionDown, region()
		case 1:
			f.Kind = FaultLinkCut
			f.From, f.To = link()
		case 2:
			f.Kind, f.Rate = FaultLossBurst, 0.05+0.25*rng.Float64()
		case 3:
			f.Kind = FaultLatencySpike
			f.From, f.To = link()
			f.Factor = 2 + 6*rng.Float64()
		case 4:
			f.Kind, f.Region = FaultReplicaCrash, region()
		case 5:
			f.Kind, f.Region = FaultCoordCrash, region()
		}
		faults = append(faults, f)
	}
	sort.SliceStable(faults, func(a, b int) bool { return faults[a].At < faults[b].At })
	return Scenario{
		Name:   fmt.Sprintf("generated-%d", cfg.Seed),
		Seed:   cfg.Seed,
		Faults: faults,
	}, nil
}

// PresetNames lists the scenarios Preset understands.
func PresetNames() []string {
	return []string{"partition", "flaky", "lagspike", "crashloop", "mixed"}
}

// Preset returns a hand-written scenario by name over regionList:
//
//   - partition: one region blacked out, then a directional link cut
//   - flaky: alternating loss bursts
//   - lagspike: latency multipliers on two links
//   - crashloop: replica and coordinator crash/restart cycles
//   - mixed: a little of everything
func Preset(name string, regionList []simnet.Region) (Scenario, error) {
	if len(regionList) < 2 {
		return Scenario{}, fmt.Errorf("chaos: preset needs >= 2 regions, got %d", len(regionList))
	}
	a, b := regionList[0], regionList[1]
	c := regionList[len(regionList)-1]
	s := func(d time.Duration) time.Duration { return d } // readability
	switch name {
	case "partition":
		return Scenario{Name: name, Faults: []Fault{
			{At: s(2 * time.Second), Duration: 10 * time.Second, Kind: FaultRegionDown, Region: a},
			{At: s(16 * time.Second), Duration: 10 * time.Second, Kind: FaultLinkCut, From: b, To: c},
		}}, nil
	case "flaky":
		return Scenario{Name: name, Faults: []Fault{
			{At: s(2 * time.Second), Duration: 6 * time.Second, Kind: FaultLossBurst, Rate: 0.2},
			{At: s(12 * time.Second), Duration: 6 * time.Second, Kind: FaultLossBurst, Rate: 0.35},
			{At: s(22 * time.Second), Duration: 6 * time.Second, Kind: FaultLossBurst, Rate: 0.1},
		}}, nil
	case "lagspike":
		return Scenario{Name: name, Faults: []Fault{
			{At: s(2 * time.Second), Duration: 12 * time.Second, Kind: FaultLatencySpike, From: a, To: b, Factor: 5},
			{At: s(8 * time.Second), Duration: 12 * time.Second, Kind: FaultLatencySpike, From: c, To: a, Factor: 3},
		}}, nil
	case "crashloop":
		return Scenario{Name: name, Faults: []Fault{
			{At: s(2 * time.Second), Duration: 8 * time.Second, Kind: FaultReplicaCrash, Region: b},
			{At: s(14 * time.Second), Duration: 8 * time.Second, Kind: FaultCoordCrash, Region: a},
			{At: s(26 * time.Second), Duration: 8 * time.Second, Kind: FaultReplicaCrash, Region: c},
		}}, nil
	case "mixed":
		return Scenario{Name: name, Faults: []Fault{
			{At: s(2 * time.Second), Duration: 8 * time.Second, Kind: FaultLatencySpike, From: a, To: b, Factor: 4},
			{At: s(6 * time.Second), Duration: 8 * time.Second, Kind: FaultLossBurst, Rate: 0.15},
			{At: s(12 * time.Second), Duration: 8 * time.Second, Kind: FaultRegionDown, Region: c},
			{At: s(24 * time.Second), Duration: 8 * time.Second, Kind: FaultReplicaCrash, Region: b},
			{At: s(36 * time.Second), Duration: 6 * time.Second, Kind: FaultCoordCrash, Region: a},
		}}, nil
	}
	return Scenario{}, fmt.Errorf("chaos: unknown preset %q (have %v)", name, PresetNames())
}
