package chaos_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"planet/internal/chaos"
	"planet/internal/cluster"
	"planet/internal/obs"
	"planet/internal/regions"
)

// newTestEngine builds a compressed-time cluster and an engine over it.
func newTestEngine(t *testing.T, reg *obs.Registry) (*chaos.Engine, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: 3, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	eng, err := chaos.New(chaos.Config{Cluster: c, Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestGenerateDeterministic(t *testing.T) {
	regionList := regions.Five().Regions
	a, err := chaos.Generate(regionList, chaos.GenConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.Generate(regionList, chaos.GenConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scenarios:\n%+v\n%+v", a, b)
	}
	other, err := chaos.Generate(regionList, chaos.GenConfig{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Faults, other.Faults) {
		t.Fatal("different seeds produced identical schedules")
	}

	// The guaranteed core trio is present regardless of seed.
	for _, seed := range []int64{1, 2, 3, 99} {
		sc, err := chaos.Generate(regionList, chaos.GenConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		kinds := make(map[chaos.FaultKind]int)
		for _, f := range sc.Faults {
			kinds[f.Kind]++
		}
		if kinds[chaos.FaultRegionDown]+kinds[chaos.FaultLinkCut] == 0 {
			t.Errorf("seed %d: no partition fault", seed)
		}
		if kinds[chaos.FaultReplicaCrash] == 0 {
			t.Errorf("seed %d: no replica crash", seed)
		}
		if kinds[chaos.FaultLatencySpike] == 0 {
			t.Errorf("seed %d: no latency spike", seed)
		}
		for i := 1; i < len(sc.Faults); i++ {
			if sc.Faults[i].At < sc.Faults[i-1].At {
				t.Errorf("seed %d: schedule not sorted by At", seed)
			}
		}
	}
}

func TestInjectorsRecordHistoryAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	eng, c := newTestEngine(t, reg)
	rl := c.Regions()

	if err := eng.RegionDown(rl[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegionUp(rl[0]); err != nil {
		t.Fatal(err)
	}
	if err := eng.CutLink(rl[1], rl[2]); err != nil {
		t.Fatal(err)
	}
	if err := eng.HealLink(rl[1], rl[2]); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetLoss(0.3); err != nil {
		t.Fatal(err)
	}
	if got := c.Net.LossRate(); got != 0.3 {
		t.Fatalf("LossRate=%v after SetLoss(0.3)", got)
	}
	if err := eng.SetLoss(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.SpikeLatency(rl[0], rl[1], 4); err != nil {
		t.Fatal(err)
	}
	if got := c.Net.LinkDelayFactor(rl[0], rl[1]); got != 4 {
		t.Fatalf("LinkDelayFactor=%v after spike", got)
	}
	if err := eng.ClearLatency(rl[0], rl[1]); err != nil {
		t.Fatal(err)
	}

	hist := eng.Injected()
	if len(hist) != 8 {
		t.Fatalf("history has %d entries, want 8", len(hist))
	}
	heals := 0
	for _, h := range hist {
		if h.Heal {
			heals++
		}
	}
	if heals != 4 {
		t.Fatalf("history has %d heals, want 4", heals)
	}

	for _, check := range []struct {
		name, kind string
	}{
		{"planet_chaos_faults_total", "region-down"},
		{"planet_chaos_heals_total", "region-down"},
		{"planet_chaos_faults_total", "latency-spike"},
		{"planet_chaos_heals_total", "latency-spike"},
		{"planet_chaos_faults_total", "loss-burst"},
		{"planet_chaos_faults_total", "link-cut"},
	} {
		if v, ok := reg.Value(check.name, obs.L("kind", check.kind)); !ok || v != 1 {
			t.Errorf("%s{kind=%q} = %v (ok=%v), want 1", check.name, check.kind, v, ok)
		}
	}

	// Unknown regions and bad parameters are rejected.
	if err := eng.RegionDown("nowhere"); err == nil {
		t.Error("RegionDown accepted an unknown region")
	}
	if err := eng.SetLoss(1.5); err == nil {
		t.Error("SetLoss accepted a rate > 1")
	}
	if err := eng.SpikeLatency(rl[0], rl[1], -2); err == nil {
		t.Error("SpikeLatency accepted a negative factor")
	}
}

func TestCrashRestartRoundTrip(t *testing.T) {
	eng, c := newTestEngine(t, nil)
	victim := c.Regions()[1]
	c.SeedBytes("k", []byte("v0"))
	c.SeedInt("n", 7, 0, 100)

	rep := c.Replica(victim)
	before := rep.Snapshot()

	if err := eng.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	if !rep.Crashed() {
		t.Fatal("replica not marked crashed")
	}
	if err := eng.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	if rep.Crashed() {
		t.Fatal("replica still marked crashed after restart")
	}
	after := rep.Snapshot()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state changed across crash/restore:\nbefore %+v\nafter  %+v", before, after)
	}
	if rep.RecoveryRuns != 1 {
		t.Fatalf("RecoveryRuns=%d, want 1", rep.RecoveryRuns)
	}

	// Coordinator round trip.
	if err := eng.CrashCoordinator(victim); err != nil {
		t.Fatal(err)
	}
	if !c.Coordinator(victim).Crashed() {
		t.Fatal("coordinator not marked crashed")
	}
	if err := eng.RestartCoordinator(victim); err != nil {
		t.Fatal(err)
	}
	if c.Coordinator(victim).Crashed() {
		t.Fatal("coordinator still crashed after restart")
	}
}

func TestScenarioRunHealsEverything(t *testing.T) {
	eng, c := newTestEngine(t, nil)
	rl := c.Regions()
	// Unscaled seconds compress 100x through TimeScale 0.01.
	sc := chaos.Scenario{Name: "t", Faults: []chaos.Fault{
		{At: 1 * time.Second, Duration: 2 * time.Second, Kind: chaos.FaultLatencySpike, From: rl[0], To: rl[1], Factor: 5},
		{At: 2 * time.Second, Kind: chaos.FaultLossBurst, Rate: 0.4}, // unbounded: healed at scenario end
		{At: 3 * time.Second, Duration: 2 * time.Second, Kind: chaos.FaultReplicaCrash, Region: rl[2]},
	}}
	if err := eng.Run(sc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(sc); err == nil {
		t.Fatal("second Run while running did not error")
	}
	eng.Wait()

	if eng.Running() {
		t.Fatal("Running() true after Wait")
	}
	if got := c.Net.LossRate(); got != 0 {
		t.Fatalf("loss rate %v after scenario end, want 0 (auto-heal)", got)
	}
	if got := c.Net.LinkDelayFactor(rl[0], rl[1]); got != 1 {
		t.Fatalf("delay factor %v after scenario end, want 1", got)
	}
	if c.Replica(rl[2]).Crashed() {
		t.Fatal("replica still crashed after scenario end")
	}

	// Stop aborts early and still heals.
	sc2 := chaos.Scenario{Name: "t2", Faults: []chaos.Fault{
		{At: 0, Kind: chaos.FaultRegionDown, Region: rl[3]},
		{At: time.Hour, Kind: chaos.FaultRegionDown, Region: rl[4]}, // never fires
	}}
	if err := eng.Run(sc2); err != nil {
		t.Fatal(err)
	}
	// Let the first fault land, then abort.
	deadline := time.Now().Add(2 * time.Second)
	for {
		found := false
		for _, h := range eng.Injected() {
			if h.Kind == chaos.FaultRegionDown && strings.Contains(h.Detail, string(rl[3])) && !h.Heal {
				found = true
			}
		}
		if found || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	eng.Stop()
	healed := false
	for _, h := range eng.Injected() {
		if h.Kind == chaos.FaultRegionDown && h.Heal && strings.Contains(h.Detail, string(rl[3])) {
			healed = true
		}
	}
	if !healed {
		t.Fatal("Stop did not heal the outstanding region blackout")
	}

	// Validation rejects malformed scenarios before starting.
	bad := chaos.Scenario{Faults: []chaos.Fault{{Kind: chaos.FaultRegionDown, Region: "nowhere"}}}
	if err := eng.Run(bad); err == nil {
		t.Fatal("Run accepted an unknown region")
	}
}
