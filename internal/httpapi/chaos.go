package httpapi

// Runtime fault injection: when the gateway is built with EnableChaos, the
// /v1/chaos/* routes drive the chaos engine over HTTP so an operator (or a
// game-day script) can break the deployment while watching /v1/metrics and
// /v1/traces react.
//
//	POST /v1/chaos/region    {"region":R,"down":true|false}
//	POST /v1/chaos/link      {"from":A,"to":B,"cut":true|false}
//	POST /v1/chaos/loss      {"rate":0.2}            (0 heals)
//	POST /v1/chaos/latency   {"from":A,"to":B,"factor":4}  (0 or 1 heals)
//	POST /v1/chaos/crash     {"node":"replica"|"coordinator","region":R}
//	POST /v1/chaos/restart   {"node":"replica"|"coordinator","region":R}
//	POST /v1/chaos/scenario  {"preset":"mixed"} or {"seed":7,"spanMs":60000}
//	POST /v1/chaos/stop      abort the running scenario (heals everything)
//	GET  /v1/chaos/events    injection history
//
// Without EnableChaos every /v1/chaos/* request returns 404.

import (
	"encoding/json"
	"net/http"
	"time"

	"planet/internal/chaos"
	"planet/internal/simnet"
)

// ChaosRegionRequest is the POST /v1/chaos/region body.
type ChaosRegionRequest struct {
	Region string `json:"region"`
	Down   bool   `json:"down"`
}

// ChaosLinkRequest is the POST /v1/chaos/link body.
type ChaosLinkRequest struct {
	From string `json:"from"`
	To   string `json:"to"`
	Cut  bool   `json:"cut"`
}

// ChaosLossRequest is the POST /v1/chaos/loss body.
type ChaosLossRequest struct {
	Rate float64 `json:"rate"`
}

// ChaosLatencyRequest is the POST /v1/chaos/latency body. Factor 0 or 1
// clears the spike.
type ChaosLatencyRequest struct {
	From   string  `json:"from"`
	To     string  `json:"to"`
	Factor float64 `json:"factor"`
}

// ChaosNodeRequest is the POST /v1/chaos/crash and /v1/chaos/restart body.
type ChaosNodeRequest struct {
	// Node is "replica" or "coordinator".
	Node   string `json:"node"`
	Region string `json:"region"`
}

// ChaosScenarioRequest is the POST /v1/chaos/scenario body: a preset name,
// or a generated schedule from a seed.
type ChaosScenarioRequest struct {
	Preset string `json:"preset,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// SpanMs is the generated scenario length in unscaled WAN milliseconds
	// (default 60000).
	SpanMs int64 `json:"spanMs,omitempty"`
}

// ChaosScenarioResponse echoes the scheduled faults.
type ChaosScenarioResponse struct {
	Name   string        `json:"name"`
	Faults []chaos.Fault `json:"faults"`
}

// ChaosEventsResponse is the GET /v1/chaos/events body.
type ChaosEventsResponse struct {
	Events []chaos.Injection `json:"events"`
}

// okBody is the minimal success envelope for injection endpoints.
type okBody struct {
	OK bool `json:"ok"`
}

// EnableChaos attaches a fault-injection engine to the gateway, activating
// the /v1/chaos/* routes. Call before serving traffic.
func (s *Server) EnableChaos(eng *chaos.Engine) {
	s.mu.Lock()
	s.chaos = eng
	s.mu.Unlock()
}

// chaosEngine returns the attached engine, if any.
func (s *Server) chaosEngine() *chaos.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chaos
}

// handleChaos dispatches /v1/chaos/*.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	eng := s.chaosEngine()
	if eng == nil {
		writeErr(w, http.StatusNotFound, "chaos injection is not enabled on this deployment")
		return
	}
	if r.URL.Path == "/v1/chaos/events" {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, ChaosEventsResponse{Events: eng.Injected()})
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "use POST")
		return
	}

	var err error
	switch r.URL.Path {
	case "/v1/chaos/region":
		var req ChaosRegionRequest
		if !decodeChaos(w, r, &req) {
			return
		}
		if req.Down {
			err = eng.RegionDown(simnet.Region(req.Region))
		} else {
			err = eng.RegionUp(simnet.Region(req.Region))
		}
	case "/v1/chaos/link":
		var req ChaosLinkRequest
		if !decodeChaos(w, r, &req) {
			return
		}
		if req.Cut {
			err = eng.CutLink(simnet.Region(req.From), simnet.Region(req.To))
		} else {
			err = eng.HealLink(simnet.Region(req.From), simnet.Region(req.To))
		}
	case "/v1/chaos/loss":
		var req ChaosLossRequest
		if !decodeChaos(w, r, &req) {
			return
		}
		err = eng.SetLoss(req.Rate)
	case "/v1/chaos/latency":
		var req ChaosLatencyRequest
		if !decodeChaos(w, r, &req) {
			return
		}
		if req.Factor == 0 || req.Factor == 1 {
			err = eng.ClearLatency(simnet.Region(req.From), simnet.Region(req.To))
		} else {
			err = eng.SpikeLatency(simnet.Region(req.From), simnet.Region(req.To), req.Factor)
		}
	case "/v1/chaos/crash", "/v1/chaos/restart":
		var req ChaosNodeRequest
		if !decodeChaos(w, r, &req) {
			return
		}
		restart := r.URL.Path == "/v1/chaos/restart"
		switch req.Node {
		case "replica", "":
			if restart {
				err = eng.RestartReplica(simnet.Region(req.Region))
			} else {
				err = eng.CrashReplica(simnet.Region(req.Region))
			}
		case "coordinator":
			if restart {
				err = eng.RestartCoordinator(simnet.Region(req.Region))
			} else {
				err = eng.CrashCoordinator(simnet.Region(req.Region))
			}
		default:
			writeErr(w, http.StatusBadRequest, "node must be \"replica\" or \"coordinator\", got %q", req.Node)
			return
		}
	case "/v1/chaos/scenario":
		var req ChaosScenarioRequest
		if !decodeChaos(w, r, &req) {
			return
		}
		var sc chaos.Scenario
		if req.Preset != "" {
			sc, err = chaos.Preset(req.Preset, eng.Cluster().Regions())
		} else {
			span := time.Duration(req.SpanMs) * time.Millisecond
			sc, err = chaos.Generate(eng.Cluster().Regions(), chaos.GenConfig{Seed: req.Seed, Span: span})
		}
		if err == nil {
			err = eng.Run(sc)
		}
		if err == nil {
			writeJSON(w, http.StatusAccepted, ChaosScenarioResponse{Name: sc.Name, Faults: sc.Faults})
			return
		}
	case "/v1/chaos/stop":
		eng.Stop()
	default:
		writeErr(w, http.StatusNotFound, "no chaos route %s", r.URL.Path)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, okBody{OK: true})
}

// decodeChaos decodes a JSON body, writing the error response on failure.
func decodeChaos(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}
