package httpapi

import (
	"errors"
	"strings"
	"testing"
	"time"

	planet "planet/internal/core"
	"planet/internal/obs"
	"planet/internal/regions"
)

// hangRegions takes every region except the gateway's down, so a submitted
// transaction cannot gather votes and sits unresolved until the (long)
// commit timeout.
func hangRegions(db *planet.DB) {
	for _, r := range db.Cluster().Regions() {
		if r != regions.California {
			db.Cluster().Net.SetRegionDown(r, true)
		}
	}
}

// TestWaitBoundedTimesOut submits against a cluster whose peers are all
// down and requires the bounded wait to report a definitive timeout (the
// server's 504) plus the planet_http_wait_timeouts_total metric.
func TestWaitBoundedTimesOut(t *testing.T) {
	reg := obs.NewRegistry()
	cl, _, db := newGateway(t, planet.Config{Registry: reg})
	db.Cluster().SeedInt("stock", 10, 0, 100)
	hangRegions(db)

	id, err := cl.Submit(SubmitRequest{Ops: []Op{{Kind: "add", Key: "stock", Delta: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	st, timedOut, err := cl.WaitBounded(id, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatalf("expected bounded wait to time out, got %+v", st)
	}
	if v, ok := reg.Value("planet_http_wait_timeouts_total"); !ok || v < 1 {
		t.Fatalf("planet_http_wait_timeouts_total = %v (ok=%v)", v, ok)
	}
}

// TestSubmitAndWaitTimeoutError requires the convenience path to surface
// ErrWaitTimeout when the transaction cannot resolve in time, instead of
// polling forever.
func TestSubmitAndWaitTimeoutError(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{})
	db.Cluster().SeedInt("stock", 10, 0, 100)
	hangRegions(db)

	_, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "stock", Delta: -1}},
	}, 50*time.Millisecond)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("error %v does not wrap ErrWaitTimeout", err)
	}
}

// TestDrainingRefusesSubmits flips the gateway into drain mode and requires
// new submissions to bounce with 503 while reads keep working.
func TestDrainingRefusesSubmits(t *testing.T) {
	cl, srv, db := newGateway(t, planet.Config{})
	db.Cluster().SeedInt("stock", 10, 0, 100)

	srv.SetDraining(true)
	_, err := cl.Submit(SubmitRequest{Ops: []Op{{Kind: "add", Key: "stock", Delta: -1}}})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("draining submit error = %v, want 503", err)
	}
	if _, err := cl.Read("stock"); err != nil {
		t.Fatalf("reads must keep working while draining: %v", err)
	}

	srv.SetDraining(false)
	st, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "stock", Delta: -1}},
	}, 10*time.Second)
	if err != nil || !st.Committed {
		t.Fatalf("post-drain submit: st=%+v err=%v", st, err)
	}
}

// TestNetRoutesRequireEnable keeps /v1/net/* a 404 on simnet deployments.
func TestNetRoutesRequireEnable(t *testing.T) {
	cl, _, _ := newGateway(t, planet.Config{})
	if _, err := cl.NetPeers(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("net peers without EnableRealNet: %v, want 404", err)
	}
	if _, err := cl.NetDecisions(); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("net decisions without EnableRealNet: %v, want 404", err)
	}
}
