package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
)

// newGateway stands up a five-region cluster with an HTTP gateway in
// California and returns a client against it.
func newGateway(t *testing.T, pcfg planet.Config) (*Client, *Server, *planet.DB) {
	t.Helper()
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: 21,
		CommitTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	pcfg.Cluster = c
	db, err := planet.Open(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db, sess)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL}, srv, db
}

func TestReadEndpoint(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{})
	db.Cluster().SeedBytes("k", []byte("hello"))
	db.Cluster().SeedInt("n", 42, 0, 100)

	r, err := cl.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || string(r.Bytes) != "hello" {
		t.Errorf("read %+v", r)
	}

	ri, err := cl.Read("n")
	if err != nil {
		t.Fatal(err)
	}
	if !ri.Found || ri.Int != 42 {
		t.Errorf("int read %+v", ri)
	}

	missing, err := cl.Read("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if missing.Found {
		t.Error("missing key reported found")
	}
}

func TestSubmitAndWaitCommit(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{})
	db.Cluster().SeedInt("stock", 10, 0, 100)

	st, err := cl.SubmitAndWait(SubmitRequest{
		Ops:         []Op{{Kind: "add", Key: "stock", Delta: -3}},
		SpeculateAt: 0.9,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || !st.Committed {
		t.Fatalf("status %+v", st)
	}
	if st.Stage != "committed" {
		t.Errorf("stage %q", st.Stage)
	}
	if st.Likelihood != 1 {
		t.Errorf("final likelihood %v", st.Likelihood)
	}
	if !st.Speculated {
		t.Error("uncontended txn never speculated at 0.9")
	}
	if st.DurationMs <= 0 {
		t.Error("no duration recorded")
	}

	db.Cluster().Quiesce(5 * time.Second)
	r, err := cl.Read("stock")
	if err != nil || r.Int != 7 {
		t.Errorf("stock after commit = %+v err=%v", r, err)
	}
}

func TestConflictSurfacesError(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{})
	db.Cluster().SeedInt("stock", 1, 0, 10)

	st, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "stock", Delta: -5}},
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed {
		t.Fatal("bound violation committed")
	}
	if !strings.Contains(st.Error, "bound") {
		t.Errorf("error %q, want bound violation", st.Error)
	}
}

func TestSetThroughGateway(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{})
	db.Cluster().SeedBytes("doc", []byte("old"))

	st, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "set", Key: "doc", Value: []byte("new")}},
	}, 10*time.Second)
	if err != nil || !st.Committed {
		t.Fatalf("set commit: %+v err=%v", st, err)
	}
	db.Cluster().Quiesce(5 * time.Second)
	r, _ := cl.QuorumRead("doc")
	if string(r.Bytes) != "new" || r.Version != 1 {
		t.Errorf("quorum read %+v", r)
	}
}

func TestBadRequests(t *testing.T) {
	cl, srv, _ := newGateway(t, planet.Config{})

	if _, err := cl.Submit(SubmitRequest{}); err == nil {
		t.Error("empty txn accepted")
	}
	if _, err := cl.Submit(SubmitRequest{Ops: []Op{{Kind: "frobnicate", Key: "k"}}}); err == nil {
		t.Error("unknown op kind accepted")
	}
	if _, err := cl.Status("txn-999999"); err == nil {
		t.Error("unknown txn id accepted")
	}
	if _, err := cl.Read(""); err == nil {
		t.Error("empty key accepted")
	}

	// Raw protocol-level checks.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/read", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/read = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/txn", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{})
	db.Cluster().SeedInt("n", 0, 0, 100)
	if _, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "n", Delta: 1}},
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["Committed"] != 1 {
		t.Errorf("stats %v", stats)
	}
}

func TestRetentionCap(t *testing.T) {
	cl, srv, db := newGateway(t, planet.Config{})
	db.Cluster().SeedInt("n", 0, 0, 1<<30)
	srv.SetMaxTracked(4)
	var last string
	for i := 0; i < 10; i++ {
		id, err := cl.Submit(SubmitRequest{Ops: []Op{{Kind: "add", Key: "n", Delta: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	if got := srv.TrackedCount(); got > 4 {
		t.Errorf("tracked %d handles, cap 4", got)
	}
	if _, err := cl.Wait(last); err != nil {
		t.Errorf("latest txn evicted: %v", err)
	}
}

func TestAdmissionRejectionOverHTTP(t *testing.T) {
	cl, _, db := newGateway(t, planet.Config{
		Admission: planet.AdmissionPolicy{MinLikelihood: 0.9},
	})
	db.Cluster().SeedBytes("hot", []byte("v"))
	pred := db.Predictor(regions.California)
	for i := 0; i < 200; i++ {
		pred.ObserveVote("hot", regions.Virginia, false, 40*time.Millisecond)
	}

	st, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "set", Key: "hot", Value: []byte("w")}},
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rejected || st.Stage != "rejected" {
		t.Errorf("status %+v, want admission rejection", st)
	}
}
