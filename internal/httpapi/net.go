package httpapi

// Transport administration: when the gateway is built with EnableRealNet
// (planetd -realnet), the /v1/net/* routes expose the TCP transport's peer
// health and OS-level-style fault injection, plus the replica's decision
// map — the observability surface the multi-process harness drives its
// partition cycles and agreement audits through.
//
//	GET  /v1/net/peers      peer health states + transport counters
//	POST /v1/net/cut        {"region":R,"cut":true|false}  sever/heal a link
//	POST /v1/net/listener   {"drop":true|false}  stop/resume accepting peers
//	GET  /v1/net/decisions  every retained txn verdict at the local replica
//	GET  /v1/net/lease      this replica's view of every keyspace lease
//
// Without EnableRealNet every /v1/net/* request returns 404.

import (
	"encoding/json"
	"net/http"
	"strings"

	"planet/internal/mdcc"
	"planet/internal/realnet"
	"planet/internal/simnet"
)

// netAdmin bundles what the /v1/net/* routes operate on.
type netAdmin struct {
	transport *realnet.Transport
	replica   *mdcc.Replica
}

// NetPeersResponse is the GET /v1/net/peers body.
type NetPeersResponse struct {
	// Peers maps each remote region to its health state ("up", "suspect",
	// "down").
	Peers map[string]string `json:"peers"`
	// Stats are the transport's cumulative counters.
	Stats realnet.StatsSnapshot `json:"stats"`
}

// NetCutRequest is the POST /v1/net/cut body.
type NetCutRequest struct {
	Region string `json:"region"`
	Cut    bool   `json:"cut"`
}

// NetListenerRequest is the POST /v1/net/listener body.
type NetListenerRequest struct {
	Drop bool `json:"drop"`
}

// NetDecisionsResponse is the GET /v1/net/decisions body: transaction ID →
// committed, for every decision the local replica retains.
type NetDecisionsResponse struct {
	Decisions map[string]bool `json:"decisions"`
}

// NetLeaseResponse is the GET /v1/net/lease body: the local replica's view
// of every keyspace lease, plus how many takeovers it has won. Enabled is
// false (and Leases empty) when the deployment runs static mastership.
type NetLeaseResponse struct {
	Enabled   bool             `json:"enabled"`
	Leases    []mdcc.LeaseInfo `json:"leases,omitempty"`
	Takeovers uint64           `json:"takeovers"`
}

// EnableRealNet attaches the deployment transport (and the local replica,
// for the decisions audit) to the gateway, activating the /v1/net/* routes.
// Call before serving traffic.
func (s *Server) EnableRealNet(tr *realnet.Transport, replica *mdcc.Replica) {
	s.mu.Lock()
	s.net = &netAdmin{transport: tr, replica: replica}
	s.mu.Unlock()
}

// netAdminState returns the attached transport admin, if any.
func (s *Server) netAdminState() *netAdmin {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net
}

// handleNet dispatches /v1/net/*.
func (s *Server) handleNet(w http.ResponseWriter, r *http.Request) {
	na := s.netAdminState()
	if na == nil {
		writeErr(w, http.StatusNotFound, "transport administration is not enabled on this deployment")
		return
	}
	switch strings.TrimPrefix(r.URL.Path, "/v1/net/") {
	case "peers":
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		states := na.transport.PeerStates()
		resp := NetPeersResponse{
			Peers: make(map[string]string, len(states)),
			Stats: na.transport.StatsSnapshot(),
		}
		for region, st := range states {
			resp.Peers[string(region)] = st.String()
		}
		writeJSON(w, http.StatusOK, resp)
	case "cut":
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req NetCutRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.Region == "" {
			writeErr(w, http.StatusBadRequest, "missing region")
			return
		}
		na.transport.CutPeer(simnet.Region(req.Region), req.Cut)
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case "listener":
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req NetListenerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.Drop {
			na.transport.DropListener()
		} else if err := na.transport.RestoreListener(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "restore listener: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case "lease":
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, NetLeaseResponse{
			Enabled:   na.replica.LeasesEnabled(),
			Leases:    na.replica.LeaseTable(),
			Takeovers: na.replica.LeaseTakeoverCount(),
		})
	case "decisions":
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		decided := na.replica.Decisions()
		resp := NetDecisionsResponse{Decisions: make(map[string]bool, len(decided))}
		for id, commit := range decided {
			resp.Decisions[id.String()] = commit
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		writeErr(w, http.StatusNotFound, "no route %s", r.URL.Path)
	}
}
