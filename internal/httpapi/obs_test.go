package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	planet "planet/internal/core"
	"planet/internal/obs"
)

// newObsGateway is newGateway with metrics and tracing enabled.
func newObsGateway(t *testing.T) (*Client, *Server, *planet.DB) {
	t.Helper()
	return newGateway(t, planet.Config{
		Registry: obs.NewRegistry(),
		Tracer:   obs.NewTracer(obs.TracerConfig{}),
	})
}

// TestTraceSpeculatedThenAborted is the acceptance check for the tracer: a
// transaction that speculates and then aborts must expose an ordered event
// list ending final(abort) then apology, with non-decreasing timestamps.
func TestTraceSpeculatedThenAborted(t *testing.T) {
	cl, _, db := newObsGateway(t)
	db.Cluster().SeedInt("stock", 5, 0, 10)

	// A fresh key carries an optimistic prior, so SpeculateAt 0.2 fires the
	// speculative stage at submission; the bound violation then aborts it.
	st, err := cl.SubmitAndWait(SubmitRequest{
		Ops:         []Op{{Kind: "add", Key: "stock", Delta: -20}},
		SpeculateAt: 0.2,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed || !st.Speculated {
		t.Fatalf("want speculated abort, got %+v", st)
	}

	tr, err := cl.Trace(st.Txn)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Outcome != "aborted" || !tr.Speculated {
		t.Fatalf("trace header %+v", tr)
	}
	if len(tr.Events) < 4 {
		t.Fatalf("only %d events recorded: %+v", len(tr.Events), tr.Events)
	}
	for i, e := range tr.Events {
		if i > 0 && e.OffsetMs < tr.Events[i-1].OffsetMs {
			t.Errorf("event %d offset %.3f precedes event %d offset %.3f",
				i, e.OffsetMs, i-1, tr.Events[i-1].OffsetMs)
		}
	}
	if tr.Events[0].Kind != "submitted" {
		t.Errorf("first event %q, want submitted", tr.Events[0].Kind)
	}
	kinds := make([]string, len(tr.Events))
	for i, e := range tr.Events {
		kinds[i] = e.Kind
	}
	n := len(tr.Events)
	if kinds[n-1] != "apology" || kinds[n-2] != "final" {
		t.Fatalf("events must end final, apology; got %v", kinds)
	}
	if tr.Events[n-2].Accept {
		t.Error("final event claims commit on an aborted transaction")
	}
	spec := -1
	for i, k := range kinds {
		if k == "speculative" {
			spec = i
		}
	}
	if spec < 0 || spec >= n-2 {
		t.Errorf("speculative event missing or out of order: %v", kinds)
	}
}

// TestMetricsEndpoint exercises the full pipeline and asserts the
// exposition carries a healthy spread of series.
func TestMetricsEndpoint(t *testing.T) {
	cl, _, db := newObsGateway(t)
	db.Cluster().SeedInt("n", 0, 0, 1<<30)
	db.Cluster().SeedInt("bounded", 1, 0, 10)

	if _, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "n", Delta: 1}}, SpeculateAt: 0.5,
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "bounded", Delta: -9}},
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(cl.Base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	resp.Body.Close()

	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	series := 0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series++
	}
	if series < 10 {
		t.Errorf("exposition has %d series, want >= 10:\n%s", series, text)
	}
	for _, want := range []string{
		`planet_txn_stage_total{stage="committed"} 1`,
		`planet_txn_stage_total{stage="aborted"} 1`,
		`planet_txn_stage_total{stage="speculative"} 1`,
		`planet_txn_apologies_total 0`,
		`planet_txn_duration_seconds_count{outcome="committed"} 1`,
		`planet_mdcc_vote_latency_seconds_bucket{region=`,
		`le="+Inf"`,
		`planet_mdcc_decisions_total{coordinator=`,
		`planet_simnet_messages_sent_total{`,
		`planet_simnet_link_delay_seconds_count{`,
		`planet_http_requests_total{`,
		`planet_http_request_duration_seconds_count{route="/v1/txn"}`,
		`planet_txn_in_flight{region=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatsSpeculationAccuracy checks the registry-backed /v1/stats fields.
func TestStatsSpeculationAccuracy(t *testing.T) {
	cl, _, db := newObsGateway(t)
	db.Cluster().SeedInt("good", 0, 0, 1<<30)
	db.Cluster().SeedInt("bad", 5, 0, 10)

	// One speculation confirmed, one contradicted.
	if _, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "good", Delta: 1}}, SpeculateAt: 0.2,
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "bad", Delta: -20}}, SpeculateAt: 0.2,
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["Speculated"] != 2 || stats["Apologies"] != 1 {
		t.Fatalf("stats %v, want Speculated=2 Apologies=1", stats)
	}
	if got := stats["SpeculationAccuracy"]; got != 0.5 {
		t.Errorf("SpeculationAccuracy = %v, want 0.5", got)
	}
}

// TestTracesEndpoint checks the recent-trace listing and its filters.
func TestTracesEndpoint(t *testing.T) {
	cl, _, db := newObsGateway(t)
	db.Cluster().SeedInt("n", 0, 0, 1<<30)
	db.Cluster().SeedInt("bounded", 1, 0, 10)

	for i := 0; i < 3; i++ {
		if _, err := cl.SubmitAndWait(SubmitRequest{
			Ops: []Op{{Kind: "add", Key: "n", Delta: 1}},
		}, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.SubmitAndWait(SubmitRequest{
		Ops: []Op{{Kind: "add", Key: "bounded", Delta: -20}},
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	all, err := cl.Traces(false, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Errorf("got %d traces, want 4", len(all))
	}
	aborted, err := cl.Traces(true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted) != 1 || aborted[0].Outcome != "aborted" {
		t.Errorf("aborted filter %+v", aborted)
	}
	limited, err := cl.Traces(false, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Errorf("limit 2 returned %d", len(limited))
	}

	resp, err := http.Get(cl.Base + "/v1/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", resp.StatusCode)
	}
}

// jsonError asserts resp carries the given status and a JSON error envelope,
// returning the error text.
func jsonError(t *testing.T, resp *http.Response, wantCode int) string {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Errorf("status %d, want %d", resp.StatusCode, wantCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error content type %q, want application/json", ct)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if eb.Error == "" {
		t.Error("error body has empty error field")
	}
	return eb.Error
}

// TestErrorPaths pins the JSON error envelope across malformed input,
// unknown resources, bad methods, and unknown routes.
func TestErrorPaths(t *testing.T) {
	cl, _, _ := newObsGateway(t)

	resp, err := http.Post(cl.Base+"/v1/txn", "application/json",
		strings.NewReader(`{"ops": [`))
	if err != nil {
		t.Fatal(err)
	}
	if msg := jsonError(t, resp, http.StatusBadRequest); !strings.Contains(msg, "JSON") {
		t.Errorf("malformed-body error %q", msg)
	}

	resp, err = http.Get(cl.Base + "/v1/txn/txn-999999")
	if err != nil {
		t.Fatal(err)
	}
	jsonError(t, resp, http.StatusNotFound)

	resp, err = http.Get(cl.Base + "/v1/txn/txn-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	if msg := jsonError(t, resp, http.StatusNotFound); !strings.Contains(msg, "trace") {
		t.Errorf("unknown-trace error %q", msg)
	}

	resp, err = http.Get(cl.Base + "/v1/txn/not-an-id/trace")
	if err != nil {
		t.Fatal(err)
	}
	jsonError(t, resp, http.StatusBadRequest)

	req, err := http.NewRequest(http.MethodDelete, cl.Base+"/v1/txn", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	jsonError(t, resp, http.StatusMethodNotAllowed)

	resp, err = http.Get(cl.Base + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	if msg := jsonError(t, resp, http.StatusNotFound); !strings.Contains(msg, "/v1/nope") {
		t.Errorf("unknown-route error %q", msg)
	}
}

// TestObsDisabled404s confirms trace/metrics resources report themselves
// absent when the DB runs without a registry or tracer.
func TestObsDisabled404s(t *testing.T) {
	cl, _, _ := newGateway(t, planet.Config{})
	for _, path := range []string{"/v1/metrics", "/v1/traces", "/v1/txn/txn-1/trace"} {
		resp, err := http.Get(cl.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		jsonError(t, resp, http.StatusNotFound)
	}
}
