package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"planet/internal/chaos"
	planet "planet/internal/core"
	"planet/internal/regions"
)

// chaosPost POSTs a JSON body to path and decodes the response into out
// (when non-nil), returning the status code.
func chaosPost(t *testing.T, base, path string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestChaosEndpointsDisabledBy404(t *testing.T) {
	cl, _, _ := newGateway(t, planet.Config{})
	if code := chaosPost(t, cl.Base, "/v1/chaos/loss", ChaosLossRequest{Rate: 0.5}, nil); code != http.StatusNotFound {
		t.Fatalf("chaos without EnableChaos: status %d, want 404", code)
	}
	resp, err := http.Get(cl.Base + "/v1/chaos/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events without EnableChaos: status %d, want 404", resp.StatusCode)
	}
}

func TestChaosEndpoints(t *testing.T) {
	cl, srv, db := newGateway(t, planet.Config{})
	eng, err := chaos.New(chaos.Config{Cluster: db.Cluster()})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableChaos(eng)
	net := db.Cluster().Net

	// Loss burst on, then healed.
	if code := chaosPost(t, cl.Base, "/v1/chaos/loss", ChaosLossRequest{Rate: 0.4}, nil); code != http.StatusOK {
		t.Fatalf("loss: status %d", code)
	}
	if got := net.LossRate(); got != 0.4 {
		t.Fatalf("LossRate=%v, want 0.4", got)
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/loss", ChaosLossRequest{Rate: 0}, nil); code != http.StatusOK {
		t.Fatalf("heal loss: status %d", code)
	}

	// Latency spike, then cleared via factor 0.
	spike := ChaosLatencyRequest{From: string(regions.California), To: string(regions.Ireland), Factor: 5}
	if code := chaosPost(t, cl.Base, "/v1/chaos/latency", spike, nil); code != http.StatusOK {
		t.Fatalf("latency: status %d", code)
	}
	if got := net.LinkDelayFactor(regions.California, regions.Ireland); got != 5 {
		t.Fatalf("LinkDelayFactor=%v, want 5", got)
	}
	spike.Factor = 0
	if code := chaosPost(t, cl.Base, "/v1/chaos/latency", spike, nil); code != http.StatusOK {
		t.Fatalf("clear latency: status %d", code)
	}

	// Region blackout + link cut round trips.
	if code := chaosPost(t, cl.Base, "/v1/chaos/region",
		ChaosRegionRequest{Region: string(regions.Virginia), Down: true}, nil); code != http.StatusOK {
		t.Fatalf("region down: status %d", code)
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/region",
		ChaosRegionRequest{Region: string(regions.Virginia), Down: false}, nil); code != http.StatusOK {
		t.Fatalf("region up: status %d", code)
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/link",
		ChaosLinkRequest{From: string(regions.Tokyo), To: string(regions.Virginia), Cut: true}, nil); code != http.StatusOK {
		t.Fatalf("link cut: status %d", code)
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/link",
		ChaosLinkRequest{From: string(regions.Tokyo), To: string(regions.Virginia), Cut: false}, nil); code != http.StatusOK {
		t.Fatalf("link heal: status %d", code)
	}

	// Replica crash + restart.
	victim := regions.Singapore
	if code := chaosPost(t, cl.Base, "/v1/chaos/crash",
		ChaosNodeRequest{Node: "replica", Region: string(victim)}, nil); code != http.StatusOK {
		t.Fatalf("crash: status %d", code)
	}
	if !db.Cluster().Replica(victim).Crashed() {
		t.Fatal("replica not crashed after POST /v1/chaos/crash")
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/restart",
		ChaosNodeRequest{Node: "replica", Region: string(victim)}, nil); code != http.StatusOK {
		t.Fatalf("restart: status %d", code)
	}
	if db.Cluster().Replica(victim).Crashed() {
		t.Fatal("replica still crashed after POST /v1/chaos/restart")
	}

	// Bad requests are rejected.
	if code := chaosPost(t, cl.Base, "/v1/chaos/region",
		ChaosRegionRequest{Region: "atlantis", Down: true}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown region: status %d, want 400", code)
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/crash",
		ChaosNodeRequest{Node: "mainframe", Region: string(victim)}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown node kind: status %d, want 400", code)
	}

	// Scenario run by preset, then stopped; heals on the way out.
	var scResp ChaosScenarioResponse
	if code := chaosPost(t, cl.Base, "/v1/chaos/scenario",
		ChaosScenarioRequest{Preset: "flaky"}, &scResp); code != http.StatusAccepted {
		t.Fatalf("scenario: status %d", code)
	}
	if scResp.Name != "flaky" || len(scResp.Faults) == 0 {
		t.Fatalf("scenario response %+v", scResp)
	}
	if code := chaosPost(t, cl.Base, "/v1/chaos/stop", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("stop: status %d", code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for eng.Running() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if eng.Running() {
		t.Fatal("scenario still running after stop")
	}
	if got := net.LossRate(); got != 0 {
		t.Fatalf("loss rate %v after stop, want 0", got)
	}

	// Generated scenario via seed.
	var gen ChaosScenarioResponse
	if code := chaosPost(t, cl.Base, "/v1/chaos/scenario",
		ChaosScenarioRequest{Seed: 5, SpanMs: 1000}, &gen); code != http.StatusAccepted {
		t.Fatalf("generated scenario: status %d", code)
	}
	eng.Wait()

	// Injection history is queryable.
	resp, err := http.Get(cl.Base + "/v1/chaos/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events ChaosEventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events.Events) < 10 {
		t.Fatalf("history has %d events, want >= 10", len(events.Events))
	}
}
