// Package httpapi exposes a PLANET region over HTTP/JSON — the gateway an
// application server in that datacenter would embed. The API mirrors the
// staged programming model: submitting a transaction returns immediately
// with a transaction ID, and its stage, live commit likelihood, and final
// outcome are polled (or awaited) on a status resource.
//
//	GET  /v1/read?key=K[&quorum=1]     read committed state
//	POST /v1/txn                       submit a transaction (JSON body)
//	GET  /v1/txn/{id}[?wait=1[&waitms=N]]  stage/likelihood/outcome; waitms
//	                                   bounds the server-side wait and
//	                                   returns 504 when it expires
//	GET  /v1/txn/{id}/trace            recorded lifecycle events + causal
//	                                   span tree (spans require Config.Trace)
//	GET  /v1/traces[?aborted=1&slow=1&limit=N]  recent completed traces
//	GET  /v1/attribution[?format=table]  per-stage latency variance
//	                                   attribution (requires Config.Trace)
//	GET  /v1/stats                     DB-wide outcome counters
//	GET  /v1/metrics                   Prometheus text exposition
//	POST /v1/chaos/*                   runtime fault injection (see chaos.go;
//	                                   requires EnableChaos, else 404)
//	*    /v1/net/*                     transport peer health, partitions,
//	                                   decisions (see net.go; requires
//	                                   EnableRealNet, else 404)
//
// The trace and metrics resources require the DB to be opened with an
// obs.Tracer / obs.Registry; without one they return 404. Every response —
// including errors — is JSON, except /v1/metrics which is Prometheus text.
//
// The package also provides the matching Client. Both sides are pure
// stdlib (net/http, encoding/json).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/chaos"
	planet "planet/internal/core"
	"planet/internal/obs"
	"planet/internal/txn"
)

// Op is the wire form of one transaction operation.
type Op struct {
	// Kind is "set" or "add".
	Kind string `json:"kind"`
	Key  string `json:"key"`
	// Value is the new value for "set" (JSON base64 of the bytes).
	Value []byte `json:"value,omitempty"`
	// Delta is the increment for "add".
	Delta int64 `json:"delta,omitempty"`
}

// SubmitRequest is the POST /v1/txn body.
type SubmitRequest struct {
	Ops []Op `json:"ops"`
	// SpeculateAt enables speculative commit at this likelihood.
	SpeculateAt float64 `json:"speculateAt,omitempty"`
	// DeadlineMs arms the deadline callback (recorded in the status).
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// SubmitResponse returns the transaction handle's identity.
type SubmitResponse struct {
	Txn string `json:"txn"`
}

// Status is the wire form of a transaction's progress/outcome.
type Status struct {
	Txn          string  `json:"txn"`
	Stage        string  `json:"stage"`
	Likelihood   float64 `json:"likelihood"`
	Done         bool    `json:"done"`
	Committed    bool    `json:"committed"`
	Rejected     bool    `json:"rejected"`
	Speculated   bool    `json:"speculated"`
	DeadlineHit  bool    `json:"deadlineHit"`
	Error        string  `json:"error,omitempty"`
	DurationMs   float64 `json:"durationMs"`
	VotesSeen    int     `json:"votesSeen"`
	VotesOverall int     `json:"votesOverall"`
}

// ReadResponse is the GET /v1/read body.
type ReadResponse struct {
	Key     string `json:"key"`
	Found   bool   `json:"found"`
	Bytes   []byte `json:"bytes,omitempty"`
	Int     int64  `json:"int,omitempty"`
	Version int64  `json:"version"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// tracked pairs a handle with server-side observations.
type tracked struct {
	handle      *planet.Handle
	mu          sync.Mutex
	speculated  bool
	deadlineHit bool
	start       time.Time
	outcome     *txn.Outcome
}

// Server serves one region's sessions over HTTP. Create with NewServer and
// mount it as an http.Handler.
type Server struct {
	session *planet.Session
	db      *planet.DB
	mux     *http.ServeMux
	reg     *obs.Registry
	tracer  *obs.Tracer

	mu     sync.Mutex
	txns   map[string]*tracked
	order  []string
	maxTxn int
	chaos  *chaos.Engine // nil unless EnableChaos
	net    *netAdmin     // nil unless EnableRealNet

	// draining refuses new transactions with 503 while graceful shutdown
	// waits for in-flight ones (planetd's SIGTERM path).
	draining atomic.Bool
}

// NewServer builds a gateway for one region of db. When the DB carries an
// obs.Registry, every route is wrapped in request-latency middleware and
// the /v1/metrics and trace endpoints go live.
func NewServer(db *planet.DB, session *planet.Session) *Server {
	s := &Server{
		session: session,
		db:      db,
		mux:     http.NewServeMux(),
		reg:     db.Registry(),
		tracer:  db.Tracer(),
		txns:    make(map[string]*tracked),
		maxTxn:  4096,
	}
	s.mux.HandleFunc("/v1/read", s.route("/v1/read", s.handleRead))
	s.mux.HandleFunc("/v1/txn", s.route("/v1/txn", s.handleSubmit))
	s.mux.HandleFunc("/v1/txn/", s.route("/v1/txn/{id}", s.handleStatus))
	s.mux.HandleFunc("/v1/stats", s.route("/v1/stats", s.handleStats))
	s.mux.HandleFunc("/v1/traces", s.route("/v1/traces", s.handleTraces))
	s.mux.HandleFunc("/v1/attribution", s.route("/v1/attribution", s.handleAttribution))
	s.mux.HandleFunc("/v1/metrics", s.route("/v1/metrics", s.handleMetrics))
	s.mux.HandleFunc("/v1/chaos/", s.route("/v1/chaos/*", s.handleChaos))
	s.mux.HandleFunc("/v1/net/", s.route("/v1/net/*", s.handleNet))
	// Unknown routes get the same JSON error envelope as everything else.
	s.mux.HandleFunc("/", s.route("other", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "no route %s", r.URL.Path)
	}))
	return s
}

// statusWriter captures the response code for the request middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps h in per-route latency/count middleware; with no registry it
// returns h unchanged.
func (s *Server) route(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.reg == nil {
		return h
	}
	hist := s.reg.Histogram("planet_http_request_duration_seconds",
		"Gateway request latency by route.", obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.Observe(time.Since(start))
		s.reg.Counter("planet_http_requests_total", "Gateway requests by route and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(sw.code))).Inc()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleRead serves GET /v1/read?key=K[&quorum=1].
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	var (
		b   []byte
		n   int64
		ver int64
		err error
	)
	if r.URL.Query().Get("quorum") == "1" {
		b, ver, err = s.session.QuorumReadBytes(key)
		if err == nil {
			// Integer records round-trip through the int field too.
			n, _, _ = s.session.QuorumReadInt(key)
		}
	} else {
		b, ver, err = s.session.ReadBytes(key)
		if err == nil {
			n, _, _ = s.session.ReadInt(key)
		}
	}
	switch {
	case errors.Is(err, planet.ErrKeyNotFound):
		writeJSON(w, http.StatusNotFound, ReadResponse{Key: key, Found: false})
	case err != nil:
		writeErr(w, http.StatusServiceUnavailable, "read failed: %v", err)
	default:
		writeJSON(w, http.StatusOK, ReadResponse{Key: key, Found: true, Bytes: b, Int: n, Version: ver})
	}
}

// handleSubmit serves POST /v1/txn.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down: not accepting new transactions")
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "transaction has no operations")
		return
	}

	tx := s.session.Begin()
	for _, op := range req.Ops {
		switch op.Kind {
		case "set":
			tx.Set(op.Key, op.Value)
		case "add":
			tx.Add(op.Key, op.Delta)
		default:
			writeErr(w, http.StatusBadRequest, "unknown op kind %q", op.Kind)
			return
		}
	}

	tr := &tracked{start: time.Now()}
	opts := planet.CommitOptions{
		SpeculateAt: req.SpeculateAt,
		OnSpeculative: func(planet.Progress) {
			tr.mu.Lock()
			tr.speculated = true
			tr.mu.Unlock()
		},
		OnFinal: func(o txn.Outcome) {
			tr.mu.Lock()
			tr.outcome = &o
			tr.mu.Unlock()
		},
	}
	if req.DeadlineMs > 0 {
		opts.Deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		opts.OnDeadline = func(planet.Progress) {
			tr.mu.Lock()
			tr.deadlineHit = true
			tr.mu.Unlock()
		}
	}
	h, err := tx.Commit(opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "commit: %v", err)
		return
	}
	tr.handle = h
	id := h.ID().String()

	s.mu.Lock()
	s.txns[id] = tr
	s.order = append(s.order, id)
	for len(s.order) > s.maxTxn {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.txns, evict)
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, SubmitResponse{Txn: id})
}

// handleStatus serves GET /v1/txn/{id}[?wait=1] and /v1/txn/{id}/trace.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/txn/")
	if rest, ok := strings.CutSuffix(id, "/trace"); ok {
		s.handleTrace(w, rest)
		return
	}
	s.mu.Lock()
	tr := s.txns[id]
	s.mu.Unlock()
	if tr == nil {
		writeErr(w, http.StatusNotFound, "unknown transaction %q", id)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		// An optional waitms bounds the server-side wait: when a
		// transaction can never resolve (coordinator's peers down), the
		// client gets a definitive 504 instead of a hung request. The
		// timer is real wall time on purpose — this goroutine belongs to
		// net/http, not the DB's (possibly virtual) scheduler.
		var bound <-chan time.Time
		if raw := r.URL.Query().Get("waitms"); raw != "" {
			ms, err := strconv.ParseInt(raw, 10, 64)
			if err != nil || ms <= 0 {
				writeErr(w, http.StatusBadRequest, "bad waitms %q", raw)
				return
			}
			timer := time.NewTimer(time.Duration(ms) * time.Millisecond)
			defer timer.Stop()
			bound = timer.C
		}
		select {
		case <-tr.handle.Done():
		case <-bound:
			if s.reg != nil {
				s.reg.Counter("planet_http_wait_timeouts_total",
					"Status waits that hit their waitms bound before the transaction resolved.").Inc()
			}
			writeErr(w, http.StatusGatewayTimeout, "transaction %s not resolved within wait bound", id)
			return
		case <-r.Context().Done():
			writeErr(w, http.StatusRequestTimeout, "client gave up")
			return
		}
	}
	writeJSON(w, http.StatusOK, s.statusOf(id, tr))
}

// SetDraining switches the gateway into (or out of) drain mode: new
// transaction submissions are refused with 503 while reads and status
// queries keep working, so graceful shutdown can wait out the in-flight
// tail without admitting new work.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// statusOf snapshots a tracked transaction.
func (s *Server) statusOf(id string, tr *tracked) Status {
	p := tr.handle.Progress()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st := Status{
		Txn:          id,
		Stage:        p.Stage.String(),
		Likelihood:   p.Likelihood,
		Speculated:   tr.speculated,
		DeadlineHit:  tr.deadlineHit,
		VotesSeen:    p.VotesReceived,
		VotesOverall: p.VotesExpected,
	}
	if o := tr.outcome; o != nil {
		st.Done = true
		st.Committed = o.Committed
		st.Rejected = o.Rejected
		st.DurationMs = float64(o.Duration()) / float64(time.Millisecond)
		if o.Err != nil {
			st.Error = o.Err.Error()
		}
	}
	return st
}

// StatsResponse is the GET /v1/stats body. All counters are cumulative
// since the DB was opened.
type StatsResponse struct {
	// Submitted counts transactions accepted into commit processing
	// (admission rejections excluded).
	Submitted uint64
	// Committed and Aborted count final decisions.
	Committed uint64
	Aborted   uint64
	// Rejected counts admission-control refusals.
	Rejected uint64
	// Speculated counts transactions that reported a speculative commit
	// before their final decision.
	Speculated uint64
	// Apologies counts speculative commits later contradicted by an
	// abort — each one triggered the guaranteed apology callback.
	Apologies uint64
	// SpeculationAccuracy is the fraction of speculative commits that
	// the final decision confirmed: 1 - Apologies/Speculated, and 1.0
	// when nothing has speculated yet.
	SpeculationAccuracy float64
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := s.db.Stats()
	resp := StatsResponse{
		Submitted:  st.Submitted,
		Committed:  st.Committed,
		Aborted:    st.Aborted,
		Rejected:   st.Rejected,
		Speculated: st.Speculated,
		Apologies:  st.Apologies,
	}
	if s.reg != nil {
		// Prefer the registry series (the same sites increment both, but
		// the registry is the system of record for exposition).
		if v, ok := s.reg.Value("planet_txn_stage_total", obs.L("stage", "speculative")); ok {
			resp.Speculated = uint64(v)
		}
		if v, ok := s.reg.Value("planet_txn_apologies_total"); ok {
			resp.Apologies = uint64(v)
		}
	}
	resp.SpeculationAccuracy = 1
	if resp.Speculated > 0 {
		resp.SpeculationAccuracy = 1 - float64(resp.Apologies)/float64(resp.Speculated)
	}
	writeJSON(w, http.StatusOK, resp)
}

// TraceEvent is the wire form of one recorded lifecycle event.
type TraceEvent struct {
	// OffsetMs is the event time relative to submission.
	OffsetMs float64 `json:"offsetMs"`
	Kind     string  `json:"kind"`
	Key      string  `json:"key,omitempty"`
	Region   string  `json:"region,omitempty"`
	// Accept carries the event's verdict (vote accept, admission
	// verdict, option outcome, final commit).
	Accept     bool    `json:"accept"`
	Likelihood float64 `json:"likelihood,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// SpanJSON is the wire form of one causal span. Parent links spans into one
// tree per transaction; spans recorded in other processes (replicas,
// masters) appear here once their reports reach this coordinator.
type SpanJSON struct {
	ID            uint64  `json:"id"`
	Parent        uint64  `json:"parent,omitempty"`
	Stage         string  `json:"stage"`
	Region        string  `json:"region,omitempty"`
	Note          string  `json:"note,omitempty"`
	StartUnixNano int64   `json:"startUnixNano"`
	DurationMs    float64 `json:"durationMs"`
}

// TraceResponse is the GET /v1/txn/{id}/trace body and the element type of
// GET /v1/traces.
type TraceResponse struct {
	Txn        string       `json:"txn"`
	Done       bool         `json:"done"`
	Outcome    string       `json:"outcome,omitempty"`
	Speculated bool         `json:"speculated"`
	Slow       bool         `json:"slow,omitempty"`
	DurationMs float64      `json:"durationMs"`
	Events     []TraceEvent `json:"events"`
	// Spans is the transaction's causal span tree (present only on
	// deployments with Config.Trace).
	Spans []SpanJSON `json:"spans,omitempty"`
}

// TracesResponse is the GET /v1/traces body.
type TracesResponse struct {
	Traces []TraceResponse `json:"traces"`
}

// traceJSON converts a recorded trace to its wire form.
func traceJSON(tr obs.Trace) TraceResponse {
	resp := TraceResponse{
		Txn:        tr.ID.String(),
		Done:       tr.Done,
		Outcome:    tr.Outcome,
		Speculated: tr.Speculated,
		Slow:       tr.Slow,
		DurationMs: float64(tr.Duration()) / float64(time.Millisecond),
		Events:     make([]TraceEvent, 0, len(tr.Events)),
	}
	for _, e := range tr.Events {
		resp.Events = append(resp.Events, TraceEvent{
			OffsetMs:   float64(e.At.Sub(tr.Start)) / float64(time.Millisecond),
			Kind:       e.Kind.String(),
			Key:        e.Key,
			Region:     e.Region,
			Accept:     e.Accept,
			Likelihood: e.Likelihood,
			Note:       e.Note,
		})
	}
	return resp
}

// spansJSON converts recorded spans to their wire form.
func spansJSON(spans []obs.Span) []SpanJSON {
	out := make([]SpanJSON, 0, len(spans))
	for _, sp := range spans {
		out = append(out, SpanJSON{
			ID:            sp.ID,
			Parent:        sp.Parent,
			Stage:         sp.Stage.String(),
			Region:        sp.Region,
			Note:          sp.Note,
			StartUnixNano: sp.Start.UnixNano(),
			DurationMs:    float64(sp.Duration()) / float64(time.Millisecond),
		})
	}
	return out
}

// handleTrace serves GET /v1/txn/{id}/trace (dispatched by handleStatus).
func (s *Server) handleTrace(w http.ResponseWriter, rawID string) {
	store := s.db.Spans()
	if s.tracer == nil && store == nil {
		writeErr(w, http.StatusNotFound, "tracing is not enabled on this deployment")
		return
	}
	id, err := txn.ParseID(rawID)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad transaction id %q", rawID)
		return
	}
	var resp TraceResponse
	found := false
	if s.tracer != nil {
		if tr, ok := s.tracer.Lookup(id); ok {
			resp = traceJSON(tr)
			found = true
		}
	}
	if store != nil {
		if spans := store.Spans(id); len(spans) > 0 {
			if !found {
				resp.Txn = id.String()
				found = true
			}
			resp.Spans = spansJSON(spans)
		}
	}
	if !found {
		writeErr(w, http.StatusNotFound, "no trace for %q (evicted, unsampled, or unknown)", rawID)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAttribution serves GET /v1/attribution[?format=table]: per-stage
// latency statistics aggregated from completed traces, ranked by variance
// contribution, with the dominant leaf stage named. format=table renders
// the deterministic fixed-width text table instead of JSON.
func (s *Server) handleAttribution(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	attr := s.db.Attribution()
	if attr == nil {
		writeErr(w, http.StatusNotFound, "attribution is not enabled on this deployment")
		return
	}
	snap := attr.Snapshot()
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.Table())
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTraces serves GET /v1/traces?aborted=1&slow=1&limit=N.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.tracer == nil {
		writeErr(w, http.StatusNotFound, "tracing is not enabled on this deployment")
		return
	}
	q := r.URL.Query()
	filter := obs.TraceFilter{
		AbortedOnly: q.Get("aborted") == "1",
		SlowOnly:    q.Get("slow") == "1",
		Limit:       50,
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		filter.Limit = n
	}
	resp := TracesResponse{Traces: make([]TraceResponse, 0, filter.Limit)}
	for _, tr := range s.tracer.Recent(filter) {
		resp.Traces = append(resp.Traces, traceJSON(tr))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves GET /v1/metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.reg == nil {
		writeErr(w, http.StatusNotFound, "metrics are not enabled on this deployment")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// TrackedCount reports how many transactions the server currently retains
// (tests).
func (s *Server) TrackedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.txns)
}

// SetMaxTracked overrides the retention cap (tests).
func (s *Server) SetMaxTracked(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > 0 {
		s.maxTxn = n
	}
}
