// Package httpapi exposes a PLANET region over HTTP/JSON — the gateway an
// application server in that datacenter would embed. The API mirrors the
// staged programming model: submitting a transaction returns immediately
// with a transaction ID, and its stage, live commit likelihood, and final
// outcome are polled (or awaited) on a status resource.
//
//	GET  /v1/read?key=K[&quorum=1]     read committed state
//	POST /v1/txn                       submit a transaction (JSON body)
//	GET  /v1/txn/{id}[?wait=1]         stage/likelihood/outcome
//	GET  /v1/stats                     DB-wide outcome counters
//
// The package also provides the matching Client. Both sides are pure
// stdlib (net/http, encoding/json).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	planet "planet/internal/core"
	"planet/internal/txn"
)

// Op is the wire form of one transaction operation.
type Op struct {
	// Kind is "set" or "add".
	Kind string `json:"kind"`
	Key  string `json:"key"`
	// Value is the new value for "set" (JSON base64 of the bytes).
	Value []byte `json:"value,omitempty"`
	// Delta is the increment for "add".
	Delta int64 `json:"delta,omitempty"`
}

// SubmitRequest is the POST /v1/txn body.
type SubmitRequest struct {
	Ops []Op `json:"ops"`
	// SpeculateAt enables speculative commit at this likelihood.
	SpeculateAt float64 `json:"speculateAt,omitempty"`
	// DeadlineMs arms the deadline callback (recorded in the status).
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// SubmitResponse returns the transaction handle's identity.
type SubmitResponse struct {
	Txn string `json:"txn"`
}

// Status is the wire form of a transaction's progress/outcome.
type Status struct {
	Txn          string  `json:"txn"`
	Stage        string  `json:"stage"`
	Likelihood   float64 `json:"likelihood"`
	Done         bool    `json:"done"`
	Committed    bool    `json:"committed"`
	Rejected     bool    `json:"rejected"`
	Speculated   bool    `json:"speculated"`
	DeadlineHit  bool    `json:"deadlineHit"`
	Error        string  `json:"error,omitempty"`
	DurationMs   float64 `json:"durationMs"`
	VotesSeen    int     `json:"votesSeen"`
	VotesOverall int     `json:"votesOverall"`
}

// ReadResponse is the GET /v1/read body.
type ReadResponse struct {
	Key     string `json:"key"`
	Found   bool   `json:"found"`
	Bytes   []byte `json:"bytes,omitempty"`
	Int     int64  `json:"int,omitempty"`
	Version int64  `json:"version"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// tracked pairs a handle with server-side observations.
type tracked struct {
	handle      *planet.Handle
	mu          sync.Mutex
	speculated  bool
	deadlineHit bool
	start       time.Time
	outcome     *txn.Outcome
}

// Server serves one region's sessions over HTTP. Create with NewServer and
// mount it as an http.Handler.
type Server struct {
	session *planet.Session
	db      *planet.DB
	mux     *http.ServeMux

	mu     sync.Mutex
	txns   map[string]*tracked
	order  []string
	maxTxn int
}

// NewServer builds a gateway for one region of db.
func NewServer(db *planet.DB, session *planet.Session) *Server {
	s := &Server{
		session: session,
		db:      db,
		mux:     http.NewServeMux(),
		txns:    make(map[string]*tracked),
		maxTxn:  4096,
	}
	s.mux.HandleFunc("/v1/read", s.handleRead)
	s.mux.HandleFunc("/v1/txn", s.handleSubmit)
	s.mux.HandleFunc("/v1/txn/", s.handleStatus)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleRead serves GET /v1/read?key=K[&quorum=1].
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	var (
		b   []byte
		n   int64
		ver int64
		err error
	)
	if r.URL.Query().Get("quorum") == "1" {
		b, ver, err = s.session.QuorumReadBytes(key)
		if err == nil {
			// Integer records round-trip through the int field too.
			n, _, _ = s.session.QuorumReadInt(key)
		}
	} else {
		b, ver, err = s.session.ReadBytes(key)
		if err == nil {
			n, _, _ = s.session.ReadInt(key)
		}
	}
	switch {
	case errors.Is(err, planet.ErrKeyNotFound):
		writeJSON(w, http.StatusNotFound, ReadResponse{Key: key, Found: false})
	case err != nil:
		writeErr(w, http.StatusServiceUnavailable, "read failed: %v", err)
	default:
		writeJSON(w, http.StatusOK, ReadResponse{Key: key, Found: true, Bytes: b, Int: n, Version: ver})
	}
}

// handleSubmit serves POST /v1/txn.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "transaction has no operations")
		return
	}

	tx := s.session.Begin()
	for _, op := range req.Ops {
		switch op.Kind {
		case "set":
			tx.Set(op.Key, op.Value)
		case "add":
			tx.Add(op.Key, op.Delta)
		default:
			writeErr(w, http.StatusBadRequest, "unknown op kind %q", op.Kind)
			return
		}
	}

	tr := &tracked{start: time.Now()}
	opts := planet.CommitOptions{
		SpeculateAt: req.SpeculateAt,
		OnSpeculative: func(planet.Progress) {
			tr.mu.Lock()
			tr.speculated = true
			tr.mu.Unlock()
		},
		OnFinal: func(o txn.Outcome) {
			tr.mu.Lock()
			tr.outcome = &o
			tr.mu.Unlock()
		},
	}
	if req.DeadlineMs > 0 {
		opts.Deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		opts.OnDeadline = func(planet.Progress) {
			tr.mu.Lock()
			tr.deadlineHit = true
			tr.mu.Unlock()
		}
	}
	h, err := tx.Commit(opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "commit: %v", err)
		return
	}
	tr.handle = h
	id := h.ID().String()

	s.mu.Lock()
	s.txns[id] = tr
	s.order = append(s.order, id)
	for len(s.order) > s.maxTxn {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.txns, evict)
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, SubmitResponse{Txn: id})
}

// handleStatus serves GET /v1/txn/{id}[?wait=1].
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/txn/")
	s.mu.Lock()
	tr := s.txns[id]
	s.mu.Unlock()
	if tr == nil {
		writeErr(w, http.StatusNotFound, "unknown transaction %q", id)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-tr.handle.Done():
		case <-r.Context().Done():
			writeErr(w, http.StatusRequestTimeout, "client gave up")
			return
		}
	}
	writeJSON(w, http.StatusOK, s.statusOf(id, tr))
}

// statusOf snapshots a tracked transaction.
func (s *Server) statusOf(id string, tr *tracked) Status {
	p := tr.handle.Progress()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st := Status{
		Txn:          id,
		Stage:        p.Stage.String(),
		Likelihood:   p.Likelihood,
		Speculated:   tr.speculated,
		DeadlineHit:  tr.deadlineHit,
		VotesSeen:    p.VotesReceived,
		VotesOverall: p.VotesExpected,
	}
	if o := tr.outcome; o != nil {
		st.Done = true
		st.Committed = o.Committed
		st.Rejected = o.Rejected
		st.DurationMs = float64(o.Duration()) / float64(time.Millisecond)
		if o.Err != nil {
			st.Error = o.Err.Error()
		}
	}
	return st
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.db.Stats())
}

// TrackedCount reports how many transactions the server currently retains
// (tests).
func (s *Server) TrackedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.txns)
}

// SetMaxTracked overrides the retention cap (tests).
func (s *Server) SetMaxTracked(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > 0 {
		s.maxTxn = n
	}
}
