package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"planet/internal/obs"
	"planet/internal/vclock"
)

// ErrWaitTimeout reports that a transaction did not resolve within the
// caller's wait budget — the decisive outcome when the coordinator's peers
// are down and the transaction can never finish. Test with errors.Is.
var ErrWaitTimeout = errors.New("httpapi: wait timed out")

// Client talks to a Server. The zero HTTP client is fine for tests; set
// HTTP for custom transports or timeouts.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8480".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Clock paces SubmitAndWait's polling (vclock.System when nil). Tests
	// that drive an in-process server under a virtual cluster can point
	// this at the cluster's clock so polls ride the discrete-event
	// scheduler instead of wall-clock sleeps.
	Clock vclock.Clock
}

// httpc returns the effective HTTP client.
func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decode unmarshals a JSON response, translating error envelopes.
func decode(resp *http.Response, into any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("httpapi: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("httpapi: %s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("httpapi: %s", resp.Status)
	}
	if into == nil {
		return nil
	}
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("httpapi: decode response: %w", err)
	}
	return nil
}

// Read fetches committed state from the gateway's local replica.
func (c *Client) Read(key string) (ReadResponse, error) {
	return c.read(key, false)
}

// QuorumRead fetches the freshest majority-read state.
func (c *Client) QuorumRead(key string) (ReadResponse, error) {
	return c.read(key, true)
}

func (c *Client) read(key string, quorum bool) (ReadResponse, error) {
	q := url.Values{"key": {key}}
	if quorum {
		q.Set("quorum", "1")
	}
	resp, err := c.httpc().Get(c.Base + "/v1/read?" + q.Encode())
	if err != nil {
		return ReadResponse{}, fmt.Errorf("httpapi: read: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		defer resp.Body.Close()
		return ReadResponse{Key: key, Found: false}, nil
	}
	var out ReadResponse
	if err := decode(resp, &out); err != nil {
		return ReadResponse{}, err
	}
	return out, nil
}

// Submit posts a transaction and returns its ID without waiting.
func (c *Client) Submit(req SubmitRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("httpapi: marshal: %w", err)
	}
	resp, err := c.httpc().Post(c.Base+"/v1/txn", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("httpapi: submit: %w", err)
	}
	var out SubmitResponse
	if err := decode(resp, &out); err != nil {
		return "", err
	}
	return out.Txn, nil
}

// Status fetches a transaction's current stage without blocking.
func (c *Client) Status(id string) (Status, error) {
	return c.status(id, false)
}

// Wait blocks server-side until the transaction's final callback has run.
func (c *Client) Wait(id string) (Status, error) {
	return c.status(id, true)
}

func (c *Client) status(id string, wait bool) (Status, error) {
	u := c.Base + "/v1/txn/" + url.PathEscape(id)
	if wait {
		u += "?wait=1"
	}
	resp, err := c.httpc().Get(u)
	if err != nil {
		return Status{}, fmt.Errorf("httpapi: status: %w", err)
	}
	var out Status
	if err := decode(resp, &out); err != nil {
		return Status{}, err
	}
	return out, nil
}

// WaitBounded blocks server-side for at most bound and reports whether the
// wait expired (the server's 504) rather than folding it into an opaque
// error: callers distinguish "not resolved yet" from "request failed".
func (c *Client) WaitBounded(id string, bound time.Duration) (st Status, timedOut bool, err error) {
	ms := bound.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	u := fmt.Sprintf("%s/v1/txn/%s?wait=1&waitms=%d", c.Base, url.PathEscape(id), ms)
	resp, err := c.httpc().Get(u)
	if err != nil {
		return Status{}, false, fmt.Errorf("httpapi: status: %w", err)
	}
	if resp.StatusCode == http.StatusGatewayTimeout {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return Status{}, true, nil
	}
	if err := decode(resp, &st); err != nil {
		return Status{}, false, err
	}
	return st, false, nil
}

// Stats fetches the DB-wide outcome counters as a generic map (float64
// values: the response mixes counters with the speculation-accuracy ratio).
func (c *Client) Stats() (map[string]float64, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("httpapi: stats: %w", err)
	}
	var out map[string]float64
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches a transaction's recorded lifecycle events.
func (c *Client) Trace(id string) (TraceResponse, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/txn/" + url.PathEscape(id) + "/trace")
	if err != nil {
		return TraceResponse{}, fmt.Errorf("httpapi: trace: %w", err)
	}
	var out TraceResponse
	if err := decode(resp, &out); err != nil {
		return TraceResponse{}, err
	}
	return out, nil
}

// Traces fetches recent completed traces. abortedOnly/slowOnly narrow the
// result; limit <= 0 uses the server default.
func (c *Client) Traces(abortedOnly, slowOnly bool, limit int) ([]TraceResponse, error) {
	q := url.Values{}
	if abortedOnly {
		q.Set("aborted", "1")
	}
	if slowOnly {
		q.Set("slow", "1")
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	u := c.Base + "/v1/traces"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := c.httpc().Get(u)
	if err != nil {
		return nil, fmt.Errorf("httpapi: traces: %w", err)
	}
	var out TracesResponse
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// Attribution fetches the per-stage latency variance attribution snapshot.
func (c *Client) Attribution() (obs.Snapshot, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/attribution")
	if err != nil {
		return obs.Snapshot{}, fmt.Errorf("httpapi: attribution: %w", err)
	}
	var out obs.Snapshot
	if err := decode(resp, &out); err != nil {
		return obs.Snapshot{}, err
	}
	return out, nil
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("httpapi: metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", fmt.Errorf("httpapi: read metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("httpapi: metrics: %s", resp.Status)
	}
	return string(body), nil
}

// SubmitAndWait pacing: each request asks the server to wait up to
// submitWaitChunk; between chunks (and after transport errors) the client
// backs off from the base to the cap so a flapping gateway is not hammered.
const (
	submitWaitChunk     = 10 * time.Second
	submitRetryBase     = time.Millisecond
	submitRetryMax      = 50 * time.Millisecond
	submitNotDoneBudget = 3
)

// SubmitAndWait is the blocking convenience path: it submits, then rides
// bounded server-side waits until the transaction resolves or timeout
// passes. A transaction that can never resolve — its coordinator's peers
// are down — surfaces as an error wrapping ErrWaitTimeout instead of
// polling until the caller gives up.
func (c *Client) SubmitAndWait(req SubmitRequest, timeout time.Duration) (Status, error) {
	id, err := c.Submit(req)
	if err != nil {
		return Status{}, err
	}
	clk := vclock.Default(c.Clock)
	deadline := clk.Now().Add(timeout)
	delay := submitRetryBase
	notDone := 0
	for {
		remaining := clk.Until(deadline)
		if remaining <= 0 {
			return Status{}, fmt.Errorf("httpapi: transaction %s not resolved within %v: %w",
				id, timeout, ErrWaitTimeout)
		}
		chunk := remaining
		if chunk > submitWaitChunk {
			chunk = submitWaitChunk
		}
		st, timedOut, err := c.WaitBounded(id, chunk)
		if err == nil && !timedOut {
			if st.Done {
				return st, nil
			}
			// wait=1 returned before the final callback ran (it resolves on
			// the handle, the outcome lands a beat later). A couple of
			// immediate re-waits close the gap; persisting beyond that
			// means something is genuinely wrong.
			if notDone++; notDone > submitNotDoneBudget {
				return st, fmt.Errorf("httpapi: transaction %s wait returned undone status", id)
			}
		}
		// Timed out chunk or transport error: back off briefly. The sleep
		// runs on the client's clock so tests on a virtual cluster advance
		// scheduler time instead of stalling it.
		clk.Sleep(delay)
		if delay *= 2; delay > submitRetryMax {
			delay = submitRetryMax
		}
	}
}

// NetPeers fetches the transport's peer health and counters (realnet
// deployments only).
func (c *Client) NetPeers() (NetPeersResponse, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/net/peers")
	if err != nil {
		return NetPeersResponse{}, fmt.Errorf("httpapi: net peers: %w", err)
	}
	var out NetPeersResponse
	if err := decode(resp, &out); err != nil {
		return NetPeersResponse{}, err
	}
	return out, nil
}

// NetCut severs (cut=true) or heals the gateway node's link to a region.
func (c *Client) NetCut(region string, cut bool) error {
	body, _ := json.Marshal(NetCutRequest{Region: region, Cut: cut})
	resp, err := c.httpc().Post(c.Base+"/v1/net/cut", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("httpapi: net cut: %w", err)
	}
	return decode(resp, nil)
}

// NetListener drops (drop=true) or restores the gateway node's transport
// listener.
func (c *Client) NetListener(drop bool) error {
	body, _ := json.Marshal(NetListenerRequest{Drop: drop})
	resp, err := c.httpc().Post(c.Base+"/v1/net/listener", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("httpapi: net listener: %w", err)
	}
	return decode(resp, nil)
}

// NetLease fetches the gateway node's view of every keyspace lease (realnet
// deployments with -leases; Enabled is false otherwise).
func (c *Client) NetLease() (NetLeaseResponse, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/net/lease")
	if err != nil {
		return NetLeaseResponse{}, fmt.Errorf("httpapi: net lease: %w", err)
	}
	var out NetLeaseResponse
	if err := decode(resp, &out); err != nil {
		return NetLeaseResponse{}, err
	}
	return out, nil
}

// NetDecisions fetches every transaction verdict the gateway node's replica
// retains (the multi-process agreement audit).
func (c *Client) NetDecisions() (map[string]bool, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/net/decisions")
	if err != nil {
		return nil, fmt.Errorf("httpapi: net decisions: %w", err)
	}
	var out NetDecisionsResponse
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out.Decisions, nil
}
