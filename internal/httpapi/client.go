package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"planet/internal/vclock"
)

// Client talks to a Server. The zero HTTP client is fine for tests; set
// HTTP for custom transports or timeouts.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8480".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Clock paces SubmitAndWait's polling (vclock.System when nil). Tests
	// that drive an in-process server under a virtual cluster can point
	// this at the cluster's clock so polls ride the discrete-event
	// scheduler instead of wall-clock sleeps.
	Clock vclock.Clock
}

// httpc returns the effective HTTP client.
func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decode unmarshals a JSON response, translating error envelopes.
func decode(resp *http.Response, into any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("httpapi: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("httpapi: %s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("httpapi: %s", resp.Status)
	}
	if into == nil {
		return nil
	}
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("httpapi: decode response: %w", err)
	}
	return nil
}

// Read fetches committed state from the gateway's local replica.
func (c *Client) Read(key string) (ReadResponse, error) {
	return c.read(key, false)
}

// QuorumRead fetches the freshest majority-read state.
func (c *Client) QuorumRead(key string) (ReadResponse, error) {
	return c.read(key, true)
}

func (c *Client) read(key string, quorum bool) (ReadResponse, error) {
	q := url.Values{"key": {key}}
	if quorum {
		q.Set("quorum", "1")
	}
	resp, err := c.httpc().Get(c.Base + "/v1/read?" + q.Encode())
	if err != nil {
		return ReadResponse{}, fmt.Errorf("httpapi: read: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		defer resp.Body.Close()
		return ReadResponse{Key: key, Found: false}, nil
	}
	var out ReadResponse
	if err := decode(resp, &out); err != nil {
		return ReadResponse{}, err
	}
	return out, nil
}

// Submit posts a transaction and returns its ID without waiting.
func (c *Client) Submit(req SubmitRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("httpapi: marshal: %w", err)
	}
	resp, err := c.httpc().Post(c.Base+"/v1/txn", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("httpapi: submit: %w", err)
	}
	var out SubmitResponse
	if err := decode(resp, &out); err != nil {
		return "", err
	}
	return out.Txn, nil
}

// Status fetches a transaction's current stage without blocking.
func (c *Client) Status(id string) (Status, error) {
	return c.status(id, false)
}

// Wait blocks server-side until the transaction's final callback has run.
func (c *Client) Wait(id string) (Status, error) {
	return c.status(id, true)
}

func (c *Client) status(id string, wait bool) (Status, error) {
	u := c.Base + "/v1/txn/" + url.PathEscape(id)
	if wait {
		u += "?wait=1"
	}
	resp, err := c.httpc().Get(u)
	if err != nil {
		return Status{}, fmt.Errorf("httpapi: status: %w", err)
	}
	var out Status
	if err := decode(resp, &out); err != nil {
		return Status{}, err
	}
	return out, nil
}

// Stats fetches the DB-wide outcome counters as a generic map (float64
// values: the response mixes counters with the speculation-accuracy ratio).
func (c *Client) Stats() (map[string]float64, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("httpapi: stats: %w", err)
	}
	var out map[string]float64
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches a transaction's recorded lifecycle events.
func (c *Client) Trace(id string) (TraceResponse, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/txn/" + url.PathEscape(id) + "/trace")
	if err != nil {
		return TraceResponse{}, fmt.Errorf("httpapi: trace: %w", err)
	}
	var out TraceResponse
	if err := decode(resp, &out); err != nil {
		return TraceResponse{}, err
	}
	return out, nil
}

// Traces fetches recent completed traces. abortedOnly/slowOnly narrow the
// result; limit <= 0 uses the server default.
func (c *Client) Traces(abortedOnly, slowOnly bool, limit int) ([]TraceResponse, error) {
	q := url.Values{}
	if abortedOnly {
		q.Set("aborted", "1")
	}
	if slowOnly {
		q.Set("slow", "1")
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	u := c.Base + "/v1/traces"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := c.httpc().Get(u)
	if err != nil {
		return nil, fmt.Errorf("httpapi: traces: %w", err)
	}
	var out TracesResponse
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	resp, err := c.httpc().Get(c.Base + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("httpapi: metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", fmt.Errorf("httpapi: read metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("httpapi: metrics: %s", resp.Status)
	}
	return string(body), nil
}

// Poll pacing for SubmitAndWait: exponential backoff from the base to the
// cap, so a decision that lands fast is noticed fast while a long wait does
// not hammer the gateway with 5ms polls.
const (
	submitPollBase = time.Millisecond
	submitPollMax  = 50 * time.Millisecond
)

// SubmitAndWait is the blocking convenience path.
func (c *Client) SubmitAndWait(req SubmitRequest, timeout time.Duration) (Status, error) {
	id, err := c.Submit(req)
	if err != nil {
		return Status{}, err
	}
	clk := vclock.Default(c.Clock)
	deadline := clk.Now().Add(timeout)
	delay := submitPollBase
	for {
		st, err := c.Wait(id)
		if err == nil && st.Done {
			return st, nil
		}
		if !clk.Now().Before(deadline) {
			if err == nil {
				err = fmt.Errorf("httpapi: transaction %s not done before timeout", id)
			}
			return st, err
		}
		if remaining := clk.Until(deadline); delay > remaining {
			delay = remaining
		}
		clk.Sleep(delay)
		if delay *= 2; delay > submitPollMax {
			delay = submitPollMax
		}
	}
}
