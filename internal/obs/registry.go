package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/metrics"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label at a call site.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricType distinguishes exposition behavior per family.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing series.
type Counter struct{ c metrics.Counter }

// Inc adds one.
func (c *Counter) Inc() { c.c.Inc() }

// Add adds n.
func (c *Counter) Add(n uint64) { c.c.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.c.Value() }

// Gauge is a series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add moves the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Histogram records duration samples; it exposes as a Prometheus histogram
// (cumulative `_bucket{le="..."}` series + _sum + _count) in seconds.
type Histogram struct{ h *metrics.Histogram }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) { h.h.Observe(d) }

// Summarize returns the underlying headline statistics.
func (h *Histogram) Summarize() metrics.Summary { return h.h.Summarize() }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.h.Count() }

// series is one labeled instance within a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	gfn    func() float64
	hist   *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string

	mu     sync.RWMutex
	series map[string]*series
}

// Registry is a named collection of metric families. The zero value is not
// usable; construct with NewRegistry. All methods are safe for concurrent
// use, and instrument handles returned by Counter/Gauge/Histogram may be
// retained and used lock-free on hot paths.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName checks the Prometheus metric/label name grammar (letters,
// digits, underscores, colons; no leading digit).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// familyFor returns (creating if needed) the family, enforcing that every
// registration of a name agrees on type and label names. Mismatches are
// programmer errors and panic.
func (r *Registry) familyFor(name, help string, typ metricType, labels []Label) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	names := make([]string, len(labels))
	for i, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Name, name))
		}
		names[i] = l.Name
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, typ: typ,
				labelNames: names, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	if len(f.labelNames) != len(names) {
		panic(fmt.Sprintf("obs: metric %s label arity changed: %v vs %v", name, names, f.labelNames))
	}
	for i := range names {
		if names[i] != f.labelNames[i] {
			panic(fmt.Sprintf("obs: metric %s label names changed: %v vs %v", name, names, f.labelNames))
		}
	}
	return f
}

// seriesKey joins label values into a map key.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Value)
		b.WriteByte(0x1f)
	}
	return b.String()
}

// seriesFor returns (creating via mk if needed) the series for labels.
func (f *family) seriesFor(labels []Label, mk func() *series) *series {
	key := seriesKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = mk()
		s.labels = append([]Label(nil), labels...)
		f.series[key] = s
	}
	return s
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, typeCounter, labels)
	return f.seriesFor(labels, func() *series { return &series{ctr: &Counter{}} }).ctr
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, typeGauge, labels)
	return f.seriesFor(labels, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — the natural fit for values another subsystem already tracks.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, typeGauge, labels)
	f.seriesFor(labels, func() *series { return &series{gfn: fn} })
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	f := r.familyFor(name, help, typeHistogram, labels)
	return f.seriesFor(labels, func() *series {
		return &series{hist: &Histogram{h: metrics.NewHistogram()}}
	}).hist
}

// Value reads one series' current value: counts for counters, the gauge
// value for gauges, and the sample count for histograms. The second result
// reports whether the series exists.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return 0, false
	}
	f.mu.RLock()
	s := f.series[seriesKey(labels)]
	f.mu.RUnlock()
	if s == nil {
		return 0, false
	}
	switch {
	case s.ctr != nil:
		return float64(s.ctr.Value()), true
	case s.gauge != nil:
		return s.gauge.Value(), true
	case s.gfn != nil:
		return s.gfn(), true
	case s.hist != nil:
		return float64(s.hist.Count()), true
	}
	return 0, false
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatLabels renders {a="x",b="y"}; extra, when non-empty, is appended
// as-is (used for bucket le labels).
func formatLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// escapeLabel already applied exposition-format escaping; %q
		// would double-escape, so quote by hand.
		fmt.Fprintf(&b, "%s=\"%s\"", l.Name, escapeLabel(l.Value))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in sorted order so the
// output is diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		list := make([]*series, 0, len(keys))
		for _, k := range keys {
			list = append(list, f.series[k])
		}
		f.mu.RUnlock()

		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range list {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series of f.
func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels, ""), s.ctr.Value())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, formatLabels(s.labels, ""), s.gauge.Value())
		return err
	case s.gfn != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, formatLabels(s.labels, ""), s.gfn())
		return err
	case s.hist != nil:
		// Cumulative buckets, then the mandatory +Inf bucket, _sum, and
		// _count — the shape prometheus.WriteHistogram parsers require.
		// Racy snapshot: a sample landing between reads can make the bucket
		// cumulative exceed the count snapshot, so +Inf (which must equal
		// _count) takes the larger of the two.
		buckets := s.hist.h.CumulativeBuckets()
		var cum uint64
		for _, b := range buckets {
			lbl := formatLabels(s.labels, fmt.Sprintf("le=\"%g\"", b.UpperBound.Seconds()))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl, b.Count); err != nil {
				return err
			}
			cum = b.Count
		}
		sum := s.hist.Summarize()
		count := sum.Count
		if count < cum {
			count = cum
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			formatLabels(s.labels, `le="+Inf"`), count); err != nil {
			return err
		}
		totalSec := sum.Mean.Seconds() * float64(sum.Count)
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name,
			formatLabels(s.labels, ""), totalSec); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels, ""), count)
		return err
	}
	return nil
}
