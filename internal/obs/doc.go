// Package obs is PLANET's observability layer: a metrics registry with
// Prometheus-style text exposition, and a per-transaction lifecycle tracer.
//
// The registry layers named, labeled counters, gauges, and latency
// histograms on the primitives in internal/metrics. Instruments are
// get-or-create — calling Registry.Counter twice with the same name and
// labels returns the same instrument — so call sites can be written
// declaratively without a separate registration phase. WritePrometheus
// renders every series in the Prometheus text exposition format (counters
// and gauges verbatim, histograms as cumulative _bucket series with le
// labels plus _sum and _count, parseable by any Prometheus scraper).
//
// The tracer records timestamped lifecycle events (submitted, admission
// verdict, per-region votes, fallback, speculative fire, deadline fire,
// final decision, apology) into per-transaction event lists. Completed
// traces land in a bounded ring buffer for retrospective inspection, with
// an optional slow/aborted-transaction log. Every method is safe on a nil
// *Tracer and returns immediately, so instrumented code needs no guards
// and pays nothing when tracing is off.
//
// Both halves are safe for concurrent use: events and samples arrive from
// coordinator, simnet timer, and callback-dispatch goroutines at once.
package obs
