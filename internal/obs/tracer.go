package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/txn"
)

// EventKind enumerates per-transaction lifecycle events.
type EventKind uint8

const (
	// EvSubmitted: the transaction entered the system.
	EvSubmitted EventKind = iota
	// EvAdmission: admission control ruled (Accept = admitted) with the
	// predicted commit likelihood at submission.
	EvAdmission
	// EvVote: one replica's fast-path vote on one option arrived.
	EvVote
	// EvFallback: one option fell back from fast to classic Paxos.
	EvFallback
	// EvLearned: one option reached a definitive accept/reject.
	EvLearned
	// EvSpeculative: the likelihood crossed the speculation threshold.
	EvSpeculative
	// EvDeadline: the application deadline passed before the decision.
	EvDeadline
	// EvFinal: the final decision (Accept = committed).
	EvFinal
	// EvApology: the transaction speculated and then aborted.
	EvApology
	// EvFault: a fault was injected into the deployment while the
	// transaction was in flight (chaos engine broadcast). Note carries the
	// fault description, so a trace shows *why* a transaction stalled,
	// fell back, or timed out.
	EvFault
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvAdmission:
		return "admission"
	case EvVote:
		return "vote"
	case EvFallback:
		return "fallback"
	case EvLearned:
		return "learned"
	case EvSpeculative:
		return "speculative"
	case EvDeadline:
		return "deadline"
	case EvFinal:
		return "final"
	case EvApology:
		return "apology"
	case EvFault:
		return "fault"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one timestamped lifecycle observation.
type Event struct {
	At   time.Time
	Kind EventKind
	// Key and Region identify the option/replica for vote, fallback, and
	// learn events.
	Key    string
	Region string
	// Accept carries the event's verdict: vote accept, admission verdict,
	// option outcome, or final commit.
	Accept bool
	// Likelihood is the predicted commit likelihood after the event.
	Likelihood float64
	// Note carries free-form detail (reject reason, error text).
	Note string
}

// Trace is one transaction's recorded lifecycle.
type Trace struct {
	ID    txn.ID
	Start time.Time
	// End and Outcome are set once the transaction finishes; Outcome is
	// one of "committed", "aborted", "rejected".
	End        time.Time
	Done       bool
	Outcome    string
	Speculated bool
	// Slow marks traces whose duration reached the tracer's threshold.
	Slow   bool
	Events []Event
}

// Duration returns the submit-to-finish time (time so far if unfinished).
func (tr Trace) Duration() time.Duration {
	if !tr.Done {
		return time.Since(tr.Start)
	}
	return tr.End.Sub(tr.Start)
}

// String renders the trace as an indented event log for slow-txn logging.
func (tr Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s in %s (%d events)", tr.ID, tr.Outcome, tr.Duration(), len(tr.Events))
	for _, e := range tr.Events {
		fmt.Fprintf(&b, "\n  +%-12s %-11s", e.At.Sub(tr.Start), e.Kind)
		if e.Key != "" {
			fmt.Fprintf(&b, " key=%s", e.Key)
		}
		if e.Region != "" {
			fmt.Fprintf(&b, " region=%s", e.Region)
		}
		switch e.Kind {
		case EvVote, EvLearned, EvAdmission, EvFinal:
			fmt.Fprintf(&b, " accept=%v", e.Accept)
		}
		if e.Likelihood > 0 {
			fmt.Fprintf(&b, " likelihood=%.3f", e.Likelihood)
		}
		if e.Note != "" {
			fmt.Fprintf(&b, " (%s)", e.Note)
		}
	}
	return b.String()
}

// TracerConfig parameterizes NewTracer. The zero value keeps 256 completed
// traces, traces every transaction, and logs nothing.
type TracerConfig struct {
	// Capacity bounds the ring buffer of completed traces (default 256).
	Capacity int
	// SampleEvery traces one in every N transactions; values <= 1 trace
	// all of them.
	SampleEvery int
	// SlowThreshold marks (and logs) transactions at least this slow;
	// zero disables.
	SlowThreshold time.Duration
	// LogAborted also logs every aborted transaction's trace.
	LogAborted bool
	// Logf receives slow/aborted trace logs (e.g. log.Printf). Nil
	// disables logging but still marks Trace.Slow.
	Logf func(format string, args ...any)
}

// activeTrace is a trace still receiving events. Its own mutex keeps event
// appends off the tracer-wide lock.
type activeTrace struct {
	mu sync.Mutex
	tr Trace
}

// Tracer records transaction lifecycles. All methods are safe on a nil
// receiver (no-ops), giving instrumented code a zero-cost disabled path.
type Tracer struct {
	cfg TracerConfig

	seq atomic.Uint64 // sampling counter

	mu     sync.RWMutex
	active map[txn.ID]*activeTrace
	ring   []Trace // completed traces, ring[next-1] newest
	next   int
}

// initialEventCap preallocates each trace's event slice: submit, admission,
// 2×5 votes, learns, and the terminal events fit without growing for a
// typical 2-key transaction on a 5-region cluster.
const initialEventCap = 16

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	return &Tracer{
		cfg:    cfg,
		active: make(map[txn.ID]*activeTrace),
		ring:   make([]Trace, 0, cfg.Capacity),
	}
}

// Begin starts (subject to sampling) a trace for id. Returns whether the
// transaction is being traced.
func (t *Tracer) Begin(id txn.ID) bool {
	if t == nil {
		return false
	}
	if n := t.cfg.SampleEvery; n > 1 && t.seq.Add(1)%uint64(n) != 0 {
		return false
	}
	at := &activeTrace{tr: Trace{
		ID:     id,
		Start:  time.Now(),
		Events: make([]Event, 0, initialEventCap),
	}}
	t.mu.Lock()
	t.active[id] = at
	t.mu.Unlock()
	return true
}

// Record appends one event to id's trace; unknown (unsampled or already
// finished) ids are ignored. A zero e.At is stamped with the current time.
func (t *Tracer) Record(id txn.ID, e Event) {
	if t == nil {
		return
	}
	t.mu.RLock()
	at := t.active[id]
	t.mu.RUnlock()
	if at == nil {
		return
	}
	at.mu.Lock()
	// Stamp under the trace lock so timestamps are non-decreasing in
	// event order even when events race in from different goroutines.
	if e.At.IsZero() {
		e.At = time.Now()
	}
	at.tr.Events = append(at.tr.Events, e)
	at.mu.Unlock()
}

// Broadcast appends e to every in-flight trace. Fault injectors use it to
// mark which transactions were exposed to a fault, without knowing ids.
func (t *Tracer) Broadcast(e Event) {
	if t == nil {
		return
	}
	t.mu.RLock()
	active := make([]*activeTrace, 0, len(t.active))
	for _, at := range t.active {
		active = append(active, at)
	}
	t.mu.RUnlock()
	for _, at := range active {
		ev := e
		at.mu.Lock()
		// Stamp per trace, under its lock, for the same monotonicity
		// guarantee Record gives.
		if ev.At.IsZero() {
			ev.At = time.Now()
		}
		at.tr.Events = append(at.tr.Events, ev)
		at.mu.Unlock()
	}
}

// Finish seals id's trace with its outcome, moves it into the completed
// ring, and applies the slow/aborted log policy.
func (t *Tracer) Finish(id txn.ID, outcome string, speculated bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	at := t.active[id]
	delete(t.active, id)
	t.mu.Unlock()
	if at == nil {
		return
	}

	at.mu.Lock()
	tr := at.tr
	at.mu.Unlock()
	tr.Done = true
	tr.End = time.Now()
	tr.Outcome = outcome
	tr.Speculated = speculated
	tr.Slow = t.cfg.SlowThreshold > 0 && tr.Duration() >= t.cfg.SlowThreshold

	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.mu.Unlock()

	if t.cfg.Logf != nil {
		switch {
		case tr.Slow:
			t.cfg.Logf("obs: slow transaction: %s", tr)
		case t.cfg.LogAborted && outcome == "aborted":
			t.cfg.Logf("obs: aborted transaction: %s", tr)
		}
	}
}

// Lookup returns id's trace — in-flight or completed — and whether it was
// found. The returned copy is safe to retain.
func (t *Tracer) Lookup(id txn.ID) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.RLock()
	at := t.active[id]
	t.mu.RUnlock()
	if at != nil {
		at.mu.Lock()
		tr := at.tr
		tr.Events = append([]Event(nil), tr.Events...)
		at.mu.Unlock()
		return tr, true
	}
	for _, tr := range t.completed() {
		if tr.ID == id {
			return tr, true
		}
	}
	return Trace{}, false
}

// completed snapshots the ring newest-first.
func (t *Tracer) completed() []Trace {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.ring)
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest entry.
		idx := ((t.next-1-i)%n + n) % n
		out = append(out, t.ring[idx])
	}
	return out
}

// TraceFilter selects completed traces for Recent.
type TraceFilter struct {
	// AbortedOnly keeps only traces with outcome "aborted".
	AbortedOnly bool
	// SlowOnly keeps only traces marked slow.
	SlowOnly bool
	// Limit caps the result length; <= 0 means no cap.
	Limit int
}

// Recent returns completed traces, newest first, matching f.
func (t *Tracer) Recent(f TraceFilter) []Trace {
	if t == nil {
		return nil
	}
	var out []Trace
	for _, tr := range t.completed() {
		if f.AbortedOnly && tr.Outcome != "aborted" {
			continue
		}
		if f.SlowOnly && !tr.Slow {
			continue
		}
		out = append(out, tr)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// ActiveCount reports in-flight traced transactions (tests, gauges).
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.active)
}
