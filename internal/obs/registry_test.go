package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("planet_test_total", "help", L("stage", "accepted"))
	b := r.Counter("planet_test_total", "help", L("stage", "accepted"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("planet_test_total", "help", L("stage", "aborted"))
	if a == other {
		t.Fatal("distinct labels shared a counter")
	}
	a.Inc()
	a.Add(2)
	if got := a.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if v, ok := r.Value("planet_test_total", L("stage", "accepted")); !ok || v != 3 {
		t.Errorf("Value = %v,%v want 3,true", v, ok)
	}
	if _, ok := r.Value("planet_test_total", L("stage", "ghost")); ok {
		t.Error("unknown series reported found")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("planet_test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	n := 42.0
	r.GaugeFunc("planet_test_gauge_fn", "help", func() float64 { return n })
	if v, ok := r.Value("planet_test_gauge_fn"); !ok || v != 42 {
		t.Errorf("gauge func = %v,%v", v, ok)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("planet_txn_total", "Transactions.", L("stage", "committed")).Add(7)
	r.Gauge("planet_in_flight", "In flight.").Set(3)
	h := r.Histogram("planet_latency_seconds", "Latency.", L("region", "us-west"))
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP planet_txn_total Transactions.",
		"# TYPE planet_txn_total counter",
		`planet_txn_total{stage="committed"} 7`,
		"# TYPE planet_in_flight gauge",
		"planet_in_flight 3",
		"# TYPE planet_latency_seconds histogram",
		`planet_latency_seconds_bucket{region="us-west",le="+Inf"} 100`,
		`planet_latency_seconds_sum{region="us-west"} 1`,
		`planet_latency_seconds_count{region="us-west"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order for diff-stable scraping.
	if strings.Index(out, "planet_in_flight") > strings.Index(out, "planet_txn_total") {
		t.Error("families not sorted by name")
	}
}

// TestHistogramExpositionParses round-trips the histogram exposition through
// a strict text-format parser and checks the invariants a Prometheus scraper
// relies on: bucket counts are cumulative and non-decreasing in le order, the
// mandatory +Inf bucket is present and equals _count, and _sum is consistent
// with the observed samples.
func TestHistogramExpositionParses(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("planet_rt_seconds", "Round trips.", L("path", "fast"))
	samples := []time.Duration{
		100 * time.Microsecond, 1 * time.Millisecond, 1 * time.Millisecond,
		10 * time.Millisecond, 250 * time.Millisecond, 2 * time.Second,
	}
	var total time.Duration
	for _, d := range samples {
		h.Observe(d)
		total += d
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	type bucket struct {
		le  float64
		cum uint64
	}
	var (
		buckets  []bucket
		haveInf  bool
		infCount uint64
		sum      float64
		count    uint64
		sawType  bool
	)
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# TYPE planet_rt_seconds histogram" {
				sawType = true
			}
			continue
		}
		name, rest, ok := strings.Cut(line, "{")
		if !ok {
			name, rest, _ = strings.Cut(line, " ")
			rest = "} " + rest // normalize the no-label shape
		}
		if !strings.HasPrefix(name, "planet_rt_seconds") {
			continue
		}
		labelStr, valStr, ok := strings.Cut(rest, "} ")
		if !ok {
			t.Fatalf("unparseable line %q", line)
		}
		switch {
		case name == "planet_rt_seconds_bucket":
			var le float64
			leIdx := strings.Index(labelStr, `le="`)
			if leIdx < 0 {
				t.Fatalf("bucket line without le label: %q", line)
			}
			leVal := labelStr[leIdx+len(`le="`):]
			leVal = leVal[:strings.IndexByte(leVal, '"')]
			var c uint64
			if _, err := fmt.Sscanf(valStr, "%d", &c); err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if leVal == "+Inf" {
				haveInf, infCount = true, c
				continue
			}
			if _, err := fmt.Sscanf(leVal, "%g", &le); err != nil {
				t.Fatalf("le value in %q: %v", line, err)
			}
			buckets = append(buckets, bucket{le: le, cum: c})
		case name == "planet_rt_seconds_sum":
			if _, err := fmt.Sscanf(valStr, "%g", &sum); err != nil {
				t.Fatalf("sum value in %q: %v", line, err)
			}
		case name == "planet_rt_seconds_count":
			if _, err := fmt.Sscanf(valStr, "%d", &count); err != nil {
				t.Fatalf("count value in %q: %v", line, err)
			}
		}
	}

	if !sawType {
		t.Error("missing '# TYPE planet_rt_seconds histogram' line")
	}
	if !haveInf {
		t.Fatal("missing mandatory le=\"+Inf\" bucket")
	}
	if count != uint64(len(samples)) {
		t.Errorf("_count = %d, want %d", count, len(samples))
	}
	if infCount != count {
		t.Errorf("+Inf bucket = %d, want _count = %d", infCount, count)
	}
	if len(buckets) == 0 {
		t.Fatal("no finite buckets emitted")
	}
	prevLE, prevCum := -1.0, uint64(0)
	for _, bk := range buckets {
		if bk.le <= prevLE {
			t.Errorf("bucket le %g not increasing after %g", bk.le, prevLE)
		}
		if bk.cum < prevCum {
			t.Errorf("bucket cumulative count %d decreased after %d", bk.cum, prevCum)
		}
		prevLE, prevCum = bk.le, bk.cum
	}
	if last := buckets[len(buckets)-1].cum; last > infCount {
		t.Errorf("last finite bucket %d exceeds +Inf bucket %d", last, infCount)
	}
	// Every sample fits under the largest finite bucket here, so the last
	// finite cumulative must already equal the total count.
	if last := buckets[len(buckets)-1].cum; last != count {
		t.Errorf("last finite bucket %d, want %d (all samples in range)", last, count)
	}
	if want := total.Seconds(); math.Abs(sum-want) > want*0.01 {
		t.Errorf("_sum = %g, want ~%g", sum, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("planet_esc_total", "h", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `planet_esc_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("planet_mixed", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("planet_mixed", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name!", "h")
}

// TestRegistryConcurrency exercises get-or-create and increments from many
// goroutines; run under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("planet_conc_total", "h", L("g", "x")).Inc()
				r.Histogram("planet_conc_seconds", "h").Observe(time.Millisecond)
				r.Gauge("planet_conc_gauge", "h").Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if v, _ := r.Value("planet_conc_total", L("g", "x")); v != 4000 {
		t.Errorf("concurrent counter = %v, want 4000", v)
	}
}
