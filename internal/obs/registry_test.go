package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("planet_test_total", "help", L("stage", "accepted"))
	b := r.Counter("planet_test_total", "help", L("stage", "accepted"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("planet_test_total", "help", L("stage", "aborted"))
	if a == other {
		t.Fatal("distinct labels shared a counter")
	}
	a.Inc()
	a.Add(2)
	if got := a.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if v, ok := r.Value("planet_test_total", L("stage", "accepted")); !ok || v != 3 {
		t.Errorf("Value = %v,%v want 3,true", v, ok)
	}
	if _, ok := r.Value("planet_test_total", L("stage", "ghost")); ok {
		t.Error("unknown series reported found")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("planet_test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	n := 42.0
	r.GaugeFunc("planet_test_gauge_fn", "help", func() float64 { return n })
	if v, ok := r.Value("planet_test_gauge_fn"); !ok || v != 42 {
		t.Errorf("gauge func = %v,%v", v, ok)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("planet_txn_total", "Transactions.", L("stage", "committed")).Add(7)
	r.Gauge("planet_in_flight", "In flight.").Set(3)
	h := r.Histogram("planet_latency_seconds", "Latency.", L("region", "us-west"))
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP planet_txn_total Transactions.",
		"# TYPE planet_txn_total counter",
		`planet_txn_total{stage="committed"} 7`,
		"# TYPE planet_in_flight gauge",
		"planet_in_flight 3",
		"# TYPE planet_latency_seconds summary",
		`planet_latency_seconds{region="us-west",quantile="0.5"} 0.01`,
		`planet_latency_seconds_count{region="us-west"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order for diff-stable scraping.
	if strings.Index(out, "planet_in_flight") > strings.Index(out, "planet_txn_total") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("planet_esc_total", "h", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `planet_esc_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("planet_mixed", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("planet_mixed", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name!", "h")
}

// TestRegistryConcurrency exercises get-or-create and increments from many
// goroutines; run under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("planet_conc_total", "h", L("g", "x")).Inc()
				r.Histogram("planet_conc_seconds", "h").Observe(time.Millisecond)
				r.Gauge("planet_conc_gauge", "h").Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if v, _ := r.Value("planet_conc_total", L("g", "x")); v != 4000 {
		t.Errorf("concurrent counter = %v, want 4000", v)
	}
}
