package obs

import (
	"strings"
	"testing"
	"time"

	"planet/internal/txn"
)

func TestStageNamesAndLeaves(t *testing.T) {
	seen := make(map[string]bool)
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if strings.HasPrefix(name, "stage(") {
			t.Errorf("stage %d has no name", st)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if StageTotal.Leaf() || StageQuorumWait.Leaf() || StageDecideBroadcast.Leaf() {
		t.Error("container stages reported as leaves")
	}
	for _, st := range []Stage{StageOptionRPC, StageReplicaWAL, StageVoteReturn} {
		if !st.Leaf() {
			t.Errorf("%s should be a leaf", st)
		}
	}
}

func TestNewSpanIDUnique(t *testing.T) {
	const n = 1000
	ids := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("zero span id (zero means untraced on the wire)")
		}
		if ids[id] {
			t.Fatalf("duplicate span id %d", id)
		}
		ids[id] = true
	}
}

func TestSpanDurationClampsNegative(t *testing.T) {
	now := time.Now()
	sp := Span{Start: now, End: now.Add(-time.Second)}
	if d := sp.Duration(); d != 0 {
		t.Errorf("negative span duration = %v, want 0 (clock skew clamp)", d)
	}
}

func TestSpanStoreNilSafe(t *testing.T) {
	var s *SpanStore
	s.Add(Span{})
	s.AddBatch([]Span{{}})
	if s.Spans(1) != nil || s.TxnCount() != 0 || s.Attribution() != nil {
		t.Error("nil store not inert")
	}
}

func TestSpanStoreEviction(t *testing.T) {
	s := NewSpanStore(SpanStoreConfig{Capacity: 2})
	add := func(id txn.ID) {
		s.Add(Span{Txn: id, ID: NewSpanID(), Stage: StageSubmit})
	}
	add(1)
	add(2)
	add(1) // existing txn: no eviction
	add(3) // evicts txn 1 (FIFO)
	if s.Spans(1) != nil {
		t.Error("oldest txn not evicted")
	}
	if len(s.Spans(2)) != 1 || len(s.Spans(3)) != 1 {
		t.Error("retained txns lost spans")
	}
	if n := s.TxnCount(); n != 2 {
		t.Errorf("TxnCount = %d, want 2", n)
	}
}

func TestAttributionRanksDominantVariance(t *testing.T) {
	a := NewAttribution()
	base := time.Now()
	rec := func(st Stage, ds ...time.Duration) {
		for _, d := range ds {
			a.observe(st, d)
		}
	}
	// WAL durations are all over the place; the option RPC is steady but
	// slower on average. Variance ranking must name the WAL, not the RPC.
	rec(StageReplicaWAL, 1*time.Millisecond, 80*time.Millisecond, 2*time.Millisecond, 120*time.Millisecond)
	rec(StageOptionRPC, 50*time.Millisecond, 51*time.Millisecond, 50*time.Millisecond, 52*time.Millisecond)
	// The container's variance is even larger, but it must not be dominant.
	rec(StageTotal, 60*time.Millisecond, 250*time.Millisecond, 55*time.Millisecond, 300*time.Millisecond)

	snap := a.Snapshot()
	if snap.Dominant != "replica_wal" {
		t.Errorf("dominant = %q, want replica_wal\n%s", snap.Dominant, snap.Table())
	}
	if len(snap.Stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(snap.Stages))
	}
	// Ranked by descending variance: total (container) first, then WAL.
	if snap.Stages[0].Stage != "total" || snap.Stages[1].Stage != "replica_wal" {
		t.Errorf("rank order %q, %q", snap.Stages[0].Stage, snap.Stages[1].Stage)
	}
	// Shares over leaves only, and they sum to ~1.
	var shares float64
	for _, st := range snap.Stages {
		if !st.Leaf && st.Share != 0 {
			t.Errorf("container %s has share %v", st.Stage, st.Share)
		}
		shares += st.Share
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("leaf shares sum to %v, want 1", shares)
	}
	_ = base
}

func TestAttributionStageStats(t *testing.T) {
	a := NewAttribution()
	for i := 0; i < 10; i++ {
		a.observe(StageOptionRPC, 10*time.Millisecond)
	}
	ewma, jitter, n := a.StageStats(StageOptionRPC)
	if n != 10 {
		t.Errorf("n = %d, want 10", n)
	}
	if ewma != 10*time.Millisecond {
		t.Errorf("ewma = %v, want 10ms (constant input)", ewma)
	}
	if jitter != 0 {
		t.Errorf("jitter = %v, want 0 (constant input)", jitter)
	}

	// Nil engine is inert.
	var nilA *Attribution
	if _, _, n := nilA.StageStats(StageOptionRPC); n != 0 {
		t.Error("nil attribution returned samples")
	}
	nilA.observe(StageOptionRPC, time.Second)
	if snap := nilA.Snapshot(); len(snap.Stages) != 0 {
		t.Error("nil attribution snapshot not empty")
	}
}

func TestAttributionTableDeterministic(t *testing.T) {
	mk := func() string {
		a := NewAttribution()
		a.observe(StageOptionRPC, 5*time.Millisecond)
		a.observe(StageOptionRPC, 9*time.Millisecond)
		a.observe(StageVoteReturn, 7*time.Millisecond)
		a.observe(StageVoteReturn, 7*time.Millisecond)
		return a.Snapshot().Table()
	}
	t1, t2 := mk(), mk()
	if t1 != t2 {
		t.Errorf("identical inputs rendered different tables:\n%s\nvs\n%s", t1, t2)
	}
	if !strings.Contains(t1, "dominant variance: option_rpc") {
		t.Errorf("table missing dominant line:\n%s", t1)
	}
}
