package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// ewmaAlpha weights the exponentially weighted moving averages kept per
// stage (duration and jitter). 0.2 ≈ a ~10-sample memory: fast enough to
// track a latency-spike phase, slow enough not to chase single outliers.
const ewmaAlpha = 0.2

// stageAcc accumulates one stage's duration statistics: exact streaming
// mean/variance (Welford), min/max, and EWMA of the duration and of its
// absolute deviation (jitter). All fields are in float64 nanoseconds.
type stageAcc struct {
	count    uint64
	mean, m2 float64
	min, max float64
	ewma     float64
	jitter   float64
}

func (a *stageAcc) observe(ns float64) {
	a.count++
	delta := ns - a.mean
	a.mean += delta / float64(a.count)
	a.m2 += delta * (ns - a.mean)
	if a.count == 1 {
		a.min, a.max = ns, ns
		a.ewma = ns
		a.jitter = 0
		return
	}
	if ns < a.min {
		a.min = ns
	}
	if ns > a.max {
		a.max = ns
	}
	dev := math.Abs(ns - a.ewma)
	a.ewma += ewmaAlpha * (ns - a.ewma)
	a.jitter += ewmaAlpha * (dev - a.jitter)
}

// variance returns the sample variance in ns².
func (a *stageAcc) variance() float64 {
	if a.count < 2 {
		return 0
	}
	return a.m2 / float64(a.count-1)
}

// Attribution aggregates completed spans into per-stage latency statistics
// and ranks stages by their variance contribution (VProfiler-style): the
// stage with the largest variance is where latency *unpredictability* comes
// from, which is exactly what the commit-likelihood predictor needs to
// know. Safe on a nil receiver and for concurrent use.
type Attribution struct {
	mu     sync.Mutex
	stages [NumStages]stageAcc
}

// NewAttribution returns an empty engine.
func NewAttribution() *Attribution { return &Attribution{} }

// observe folds one span duration into its stage's accumulator.
func (a *Attribution) observe(st Stage, d time.Duration) {
	if a == nil || st >= NumStages {
		return
	}
	a.mu.Lock()
	a.stages[st].observe(float64(d))
	a.mu.Unlock()
}

// StageStats returns a stage's duration EWMA, jitter EWMA, and sample
// count. This is the predictor's feed: ewma estimates the stage's current
// cost, jitter its current volatility.
func (a *Attribution) StageStats(st Stage) (ewma, jitter time.Duration, n uint64) {
	if a == nil || st >= NumStages {
		return 0, 0, 0
	}
	a.mu.Lock()
	acc := a.stages[st]
	a.mu.Unlock()
	return time.Duration(acc.ewma), time.Duration(acc.jitter), acc.count
}

// StageStat is one stage's aggregated statistics in a snapshot.
type StageStat struct {
	Stage  string        `json:"stage"`
	Leaf   bool          `json:"leaf"`
	Count  uint64        `json:"count"`
	Mean   time.Duration `json:"mean_ns"`
	Stddev time.Duration `json:"stddev_ns"`
	Min    time.Duration `json:"min_ns"`
	Max    time.Duration `json:"max_ns"`
	EWMA   time.Duration `json:"ewma_ns"`
	Jitter time.Duration `json:"jitter_ns"`
	// VarianceMs2 is the sample variance in milliseconds², the ranking
	// key. A float of ms² stays readable where ns² would overflow
	// intuition (and JSON consumers' float precision).
	VarianceMs2 float64 `json:"variance_ms2"`
	// Share is this stage's fraction of the summed leaf variance
	// (containers report 0).
	Share float64 `json:"share"`
}

// Snapshot is a point-in-time attribution report.
type Snapshot struct {
	// Stages lists every stage with samples, sorted by descending
	// variance (ties broken by stage order, so equal-variance snapshots
	// render identically).
	Stages []StageStat `json:"stages"`
	// Dominant names the leaf stage with the largest variance — "where
	// is my latency going" in one word. Empty until two samples exist.
	Dominant string `json:"dominant,omitempty"`
}

// Snapshot captures the engine's current statistics.
func (a *Attribution) Snapshot() Snapshot {
	if a == nil {
		return Snapshot{}
	}
	a.mu.Lock()
	stages := a.stages
	a.mu.Unlock()
	return snapshotFrom(stages)
}

// snapshotFrom builds the ranked report from a set of accumulators (shared
// by Attribution.Snapshot and the merged AttributionSet view).
func snapshotFrom(stages [NumStages]stageAcc) Snapshot {
	var snap Snapshot
	var leafVar float64
	for st := Stage(0); st < NumStages; st++ {
		if st.Leaf() {
			leafVar += stages[st].variance()
		}
	}
	for st := Stage(0); st < NumStages; st++ {
		acc := &stages[st]
		if acc.count == 0 {
			continue
		}
		v := acc.variance()
		stat := StageStat{
			Stage:       st.String(),
			Leaf:        st.Leaf(),
			Count:       acc.count,
			Mean:        time.Duration(acc.mean),
			Stddev:      time.Duration(math.Sqrt(v)),
			Min:         time.Duration(acc.min),
			Max:         time.Duration(acc.max),
			EWMA:        time.Duration(acc.ewma),
			Jitter:      time.Duration(acc.jitter),
			VarianceMs2: nsToMs2(v),
		}
		if st.Leaf() && leafVar > 0 {
			stat.Share = v / leafVar
		}
		snap.Stages = append(snap.Stages, stat)
	}
	// Rank by descending variance; ties keep taxonomy order (stable sort
	// over an already taxonomy-ordered slice).
	sort.SliceStable(snap.Stages, func(i, j int) bool {
		return snap.Stages[i].VarianceMs2 > snap.Stages[j].VarianceMs2
	})
	for _, stat := range snap.Stages {
		if stat.Leaf && stat.Count >= 2 {
			snap.Dominant = stat.Stage
			break
		}
	}
	return snap
}

// nsToMs2 converts a variance in ns² to ms².
func nsToMs2(v float64) float64 { return v / 1e12 }

// Table renders the snapshot as a fixed-width text table, stages in ranked
// order. The rendering is deterministic for identical statistics — the
// attribution-determinism gate compares two seeded runs' tables
// byte-for-byte.
func (s Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-17s %8s %12s %12s %12s %14s %7s\n",
		"stage", "count", "mean", "stddev", "ewma", "variance(ms2)", "share")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "%-17s %8d %12s %12s %12s %14.6f %6.1f%%\n",
			st.Stage, st.Count,
			st.Mean.Round(time.Microsecond),
			st.Stddev.Round(time.Microsecond),
			st.EWMA.Round(time.Microsecond),
			st.VarianceMs2, st.Share*100)
	}
	if s.Dominant != "" {
		fmt.Fprintf(&b, "dominant variance: %s\n", s.Dominant)
	}
	return b.String()
}
