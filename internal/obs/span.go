package obs

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/txn"
)

// Stage identifies one latency stage of the commit pipeline. The taxonomy
// decomposes a transaction's submit-to-notify latency into the hops a
// decision actually takes: local bookkeeping (submit, admit), the
// option-phase RPC out to the replicas, master arbitration on the classic
// path, the replica's WAL append, the vote's return leg, the coordinator's
// quorum wait, the decision broadcast, and the client notification.
type Stage uint8

const (
	// StageTotal spans the whole transaction, submit to finish. It is a
	// container: the other stages decompose it.
	StageTotal Stage = iota
	// StageSubmit covers local submission bookkeeping before the options
	// leave the coordinator's region.
	StageSubmit
	// StageAdmit covers prediction + admission control at submit.
	StageAdmit
	// StageOptionRPC is the network leg carrying an option proposal from
	// the coordinator to one replica (or master).
	StageOptionRPC
	// StageMasterArbitrate covers a master's classic-round work for one
	// option: phase 1 (if the key is fresh), sequencing, and the phase-2
	// round trip with its acceptors.
	StageMasterArbitrate
	// StageReplicaWAL covers a replica's write-ahead-log append (and
	// fsync, when the WAL is disk-backed) for a decision.
	StageReplicaWAL
	// StageVoteReturn is the network leg carrying a vote (or classic
	// result) back to the coordinator.
	StageVoteReturn
	// StageQuorumWait spans the coordinator's wait from option send-out to
	// decision. It is a container: option RPCs, arbitration, and vote
	// returns happen inside it.
	StageQuorumWait
	// StageDecideBroadcast is the network leg carrying the decision from
	// the coordinator to one replica.
	StageDecideBroadcast
	// StageClientNotify covers decision-to-application delivery (callback
	// dispatch and handle wakeup).
	StageClientNotify

	// NumStages bounds the enum; new stages go before it.
	NumStages
)

// String implements fmt.Stringer. These names are API surface: they appear
// in /v1/attribution, the -attr log line, and PROTOCOL.md.
func (s Stage) String() string {
	switch s {
	case StageTotal:
		return "total"
	case StageSubmit:
		return "submit"
	case StageAdmit:
		return "admit"
	case StageOptionRPC:
		return "option_rpc"
	case StageMasterArbitrate:
		return "master_arbitrate"
	case StageReplicaWAL:
		return "replica_wal"
	case StageVoteReturn:
		return "vote_return"
	case StageQuorumWait:
		return "quorum_wait"
	case StageDecideBroadcast:
		return "decide_broadcast"
	case StageClientNotify:
		return "client_notify"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Leaf reports whether the stage is a leaf of the decomposition — a stage
// whose duration is not an aggregate of other stages. Dominant-variance
// ranking considers only leaves, so a container's (necessarily larger)
// variance cannot mask the hop actually responsible. Total contains
// everything; quorum_wait contains the option RPCs, arbitration, and vote
// returns; decide_broadcast brackets each replica's apply and contains its
// WAL append (and, sharing the propose leg's links, its transit variance
// would double-count option_rpc's verdict in the ranking).
func (s Stage) Leaf() bool {
	return s != StageTotal && s != StageQuorumWait && s != StageDecideBroadcast
}

// Span is one timed stage of one transaction, recorded wherever the stage
// ran — coordinator, master, or replica, possibly in different processes.
// Parent links spans into a causal tree: a span's parent is the span whose
// work caused it (the option RPC that carried the proposal, the root span
// that issued the decision).
type Span struct {
	Txn    txn.ID    `json:"txn"`
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Stage  Stage     `json:"-"`
	Region string    `json:"region,omitempty"`
	Note   string    `json:"note,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// Duration returns the span's elapsed time (clamped at zero: cross-process
// one-way legs can go slightly negative under clock skew).
func (sp Span) Duration() time.Duration {
	d := sp.End.Sub(sp.Start)
	if d < 0 {
		return 0
	}
	return d
}

// spanSeq hands out process-unique span ids; spanBase folds the pid into
// the high bits so ids from different processes of one deployment never
// collide when their spans are stitched into one tree.
var (
	spanSeq  atomic.Uint64
	spanBase = uint64(os.Getpid()&0xffff) << 44
)

// NewSpanID returns a fresh span id, unique within the deployment.
func NewSpanID() uint64 { return spanBase | spanSeq.Add(1) }

// SpanStoreConfig parameterizes NewSpanStore. The zero value retains spans
// for 512 transactions and aggregates into a fresh Attribution.
type SpanStoreConfig struct {
	// Capacity bounds the number of transactions whose spans are retained
	// (FIFO eviction). Default 512.
	Capacity int
	// Attr receives every added span's duration; nil creates one.
	Attr *Attribution
}

// SpanStore retains the spans of recent transactions, keyed by transaction
// id, and folds every added span into a per-stage Attribution. All methods
// are safe on a nil receiver (no-ops), giving instrumented code a zero-cost
// disabled path.
type SpanStore struct {
	mu    sync.Mutex
	cap   int
	txns  map[txn.ID][]Span
	order []txn.ID // FIFO eviction ring, order[next] oldest
	next  int
	attr  *Attribution
}

// NewSpanStore builds a span store from cfg.
func NewSpanStore(cfg SpanStoreConfig) *SpanStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.Attr == nil {
		cfg.Attr = NewAttribution()
	}
	return &SpanStore{
		cap:   cfg.Capacity,
		txns:  make(map[txn.ID][]Span, cfg.Capacity),
		order: make([]txn.ID, 0, cfg.Capacity),
		attr:  cfg.Attr,
	}
}

// Attribution returns the store's aggregation engine (nil on a nil store).
func (s *SpanStore) Attribution() *Attribution {
	if s == nil {
		return nil
	}
	return s.attr
}

// Add records one span.
func (s *SpanStore) Add(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.addLocked(sp)
	s.mu.Unlock()
	s.attr.observe(sp.Stage, sp.Duration())
}

// AddBatch records several spans under one lock acquisition.
func (s *SpanStore) AddBatch(sps []Span) {
	if s == nil || len(sps) == 0 {
		return
	}
	s.mu.Lock()
	for _, sp := range sps {
		s.addLocked(sp)
	}
	s.mu.Unlock()
	for _, sp := range sps {
		s.attr.observe(sp.Stage, sp.Duration())
	}
}

func (s *SpanStore) addLocked(sp Span) {
	if _, ok := s.txns[sp.Txn]; !ok {
		if len(s.order) < s.cap {
			s.order = append(s.order, sp.Txn)
		} else {
			delete(s.txns, s.order[s.next])
			s.order[s.next] = sp.Txn
			s.next = (s.next + 1) % s.cap
		}
	}
	s.txns[sp.Txn] = append(s.txns[sp.Txn], sp)
}

// Spans returns a copy of id's recorded spans (nil if unknown or evicted).
func (s *SpanStore) Spans(id txn.ID) []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sps := s.txns[id]
	if sps == nil {
		return nil
	}
	return append([]Span(nil), sps...)
}

// TxnCount reports how many transactions currently have retained spans.
func (s *SpanStore) TxnCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.txns)
}
