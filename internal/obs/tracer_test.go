package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"planet/internal/txn"
)

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	id := txn.NewID()
	if !tr.Begin(id) {
		t.Fatal("Begin refused with no sampling configured")
	}
	tr.Record(id, Event{Kind: EvSubmitted})
	tr.Record(id, Event{Kind: EvAdmission, Accept: true, Likelihood: 0.9})
	tr.Record(id, Event{Kind: EvVote, Key: "k", Region: "us-west", Accept: true, Likelihood: 0.95})

	live, ok := tr.Lookup(id)
	if !ok || live.Done || len(live.Events) != 3 {
		t.Fatalf("live lookup = %+v, %v", live, ok)
	}

	tr.Record(id, Event{Kind: EvFinal, Accept: true})
	tr.Finish(id, "committed", false)
	if tr.ActiveCount() != 0 {
		t.Error("trace still active after Finish")
	}

	done, ok := tr.Lookup(id)
	if !ok || !done.Done || done.Outcome != "committed" {
		t.Fatalf("completed lookup = %+v, %v", done, ok)
	}
	if len(done.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(done.Events))
	}
	for i := 1; i < len(done.Events); i++ {
		if done.Events[i].At.Before(done.Events[i-1].At) {
			t.Errorf("event %d timestamp precedes event %d", i, i-1)
		}
	}
	if done.Events[0].Kind != EvSubmitted || done.Events[3].Kind != EvFinal {
		t.Errorf("event order: %v .. %v", done.Events[0].Kind, done.Events[3].Kind)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	var ids []txn.ID
	for i := 0; i < 10; i++ {
		id := txn.NewID()
		ids = append(ids, id)
		tr.Begin(id)
		tr.Record(id, Event{Kind: EvSubmitted})
		tr.Finish(id, "committed", false)
	}
	recent := tr.Recent(TraceFilter{})
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	// Newest first: the last four finished ids in reverse order.
	for i := 0; i < 4; i++ {
		if want := ids[len(ids)-1-i]; recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	if _, ok := tr.Lookup(ids[0]); ok {
		t.Error("evicted trace still resolvable")
	}
}

func TestTracerFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16, SlowThreshold: time.Nanosecond})
	for i := 0; i < 6; i++ {
		id := txn.NewID()
		tr.Begin(id)
		outcome := "committed"
		if i%2 == 0 {
			outcome = "aborted"
		}
		tr.Finish(id, outcome, false)
	}
	aborted := tr.Recent(TraceFilter{AbortedOnly: true})
	if len(aborted) != 3 {
		t.Errorf("aborted filter got %d, want 3", len(aborted))
	}
	for _, a := range aborted {
		if a.Outcome != "aborted" {
			t.Errorf("filter leaked outcome %q", a.Outcome)
		}
	}
	if got := tr.Recent(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Errorf("limit 2 got %d", len(got))
	}
	// Every trace exceeds the 1ns slow threshold.
	if got := tr.Recent(TraceFilter{SlowOnly: true}); len(got) != 6 {
		t.Errorf("slow filter got %d, want 6", len(got))
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4})
	traced := 0
	for i := 0; i < 100; i++ {
		id := txn.NewID()
		if tr.Begin(id) {
			traced++
			tr.Finish(id, "committed", false)
		}
	}
	if traced != 25 {
		t.Errorf("sampled %d of 100, want 25", traced)
	}
}

func TestTracerSlowLog(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	tr := NewTracer(TracerConfig{SlowThreshold: time.Nanosecond, Logf: logf})
	id := txn.NewID()
	tr.Begin(id)
	tr.Record(id, Event{Kind: EvSubmitted})
	time.Sleep(time.Millisecond)
	tr.Finish(id, "committed", false)
	if len(logged) != 1 || !strings.Contains(logged[0], "slow transaction") {
		t.Fatalf("slow log = %q", logged)
	}
	if !strings.Contains(logged[0], id.String()) {
		t.Errorf("log misses txn id: %q", logged[0])
	}

	// Aborted logging is off by default.
	id2 := txn.NewID()
	tr2 := NewTracer(TracerConfig{Logf: logf, LogAborted: true})
	tr2.Begin(id2)
	tr2.Finish(id2, "aborted", true)
	if len(logged) != 2 || !strings.Contains(logged[1], "aborted transaction") {
		t.Fatalf("aborted log = %q", logged)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	id := txn.NewID()
	if tr.Begin(id) {
		t.Error("nil tracer claims to trace")
	}
	tr.Record(id, Event{Kind: EvSubmitted})
	tr.Finish(id, "committed", false)
	if _, ok := tr.Lookup(id); ok {
		t.Error("nil tracer found a trace")
	}
	if got := tr.Recent(TraceFilter{}); got != nil {
		t.Errorf("nil tracer returned traces: %v", got)
	}
	if tr.ActiveCount() != 0 {
		t.Error("nil tracer has active traces")
	}
}

// TestTracerConcurrency floods one tracer from many goroutines: events for
// private transactions plus cross-cutting Lookup/Recent readers. Run under
// -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := txn.NewID()
				tr.Begin(id)
				for e := 0; e < 5; e++ {
					tr.Record(id, Event{Kind: EvVote, Key: "k", Accept: true})
				}
				tr.Finish(id, "committed", false)
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Recent(TraceFilter{Limit: 5})
				tr.ActiveCount()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	for _, got := range tr.Recent(TraceFilter{}) {
		if len(got.Events) != 5 {
			t.Fatalf("trace %s has %d events, want 5", got.ID, len(got.Events))
		}
	}
}
