package obs

import (
	"math"
	"time"

	"planet/internal/txn"
)

// SpanStores shards span retention and attribution by home region, one
// SpanStore per region. Under the partitioned scheduler every span of a
// transaction is recorded from its home region's partition (the handle and
// coordinator run there, and remote replica/master spans flow back to that
// coordinator), so each shard sees a serialized, deterministic add order no
// matter how partitions interleave in real time. Readers get a merged view:
// Spans concatenates shards in the fixed region order and the attribution
// set pools the shards' statistics with an exact mean/variance merge.
//
// All methods are safe on a nil receiver (tracing disabled).
type SpanStores struct {
	order  []string
	stores map[string]*SpanStore
	attrs  *AttributionSet
}

// NewSpanStores builds one store per region (cfg.Capacity transactions
// retained per shard; cfg.Attr is ignored — each shard aggregates into its
// own Attribution).
func NewSpanStores(cfg SpanStoreConfig, regions []string) *SpanStores {
	f := &SpanStores{stores: make(map[string]*SpanStore, len(regions))}
	for _, r := range regions {
		if _, ok := f.stores[r]; ok {
			continue
		}
		f.order = append(f.order, r)
		f.stores[r] = NewSpanStore(SpanStoreConfig{Capacity: cfg.Capacity})
	}
	attrs := make([]*Attribution, len(f.order))
	for i, r := range f.order {
		attrs[i] = f.stores[r].Attribution()
	}
	f.attrs = &AttributionSet{attrs: attrs}
	return f
}

// For returns the region's shard (nil — a harmless no-op store — for
// unknown regions and on a nil receiver).
func (f *SpanStores) For(region string) *SpanStore {
	if f == nil {
		return nil
	}
	return f.stores[region]
}

// Spans returns id's recorded spans, shards visited in region order. A
// transaction's spans live in one shard, but the concatenation keeps the
// read correct either way.
func (f *SpanStores) Spans(id txn.ID) []Span {
	if f == nil {
		return nil
	}
	var out []Span
	for _, r := range f.order {
		out = append(out, f.stores[r].Spans(id)...)
	}
	return out
}

// TxnCount reports how many transactions currently have retained spans
// across all shards.
func (f *SpanStores) TxnCount() int {
	if f == nil {
		return 0
	}
	n := 0
	for _, r := range f.order {
		n += f.stores[r].TxnCount()
	}
	return n
}

// Attribution returns the merged per-stage statistics view over every
// shard's engine.
func (f *SpanStores) Attribution() *AttributionSet {
	if f == nil {
		return nil
	}
	return f.attrs
}

// AttributionSet merges several Attribution engines into one read-only
// view, combining shards in a fixed order: counts, means, variances, and
// min/max merge exactly (Chan's pooled form of Welford), so the pooled
// statistics equal what one global engine would have computed; the EWMAs
// are inherently order-dependent, so they merge count-weighted, which is
// deterministic and tracks the same scale. Safe on a nil receiver.
type AttributionSet struct {
	attrs []*Attribution
}

// MergeAttributions builds a set over the given engines (reporting helper).
func MergeAttributions(attrs ...*Attribution) *AttributionSet {
	return &AttributionSet{attrs: attrs}
}

// merged returns the pooled accumulators.
func (s *AttributionSet) merged() [NumStages]stageAcc {
	var out [NumStages]stageAcc
	for _, a := range s.attrs {
		if a == nil {
			continue
		}
		a.mu.Lock()
		stages := a.stages
		a.mu.Unlock()
		for st := range out {
			out[st] = mergeAcc(out[st], stages[st])
		}
	}
	return out
}

// mergeAcc pools two accumulators.
func mergeAcc(a, b stageAcc) stageAcc {
	if a.count == 0 {
		return b
	}
	if b.count == 0 {
		return a
	}
	n := a.count + b.count
	fa, fb, fn := float64(a.count), float64(b.count), float64(n)
	delta := b.mean - a.mean
	return stageAcc{
		count:  n,
		mean:   a.mean + delta*fb/fn,
		m2:     a.m2 + b.m2 + delta*delta*fa*fb/fn,
		min:    math.Min(a.min, b.min),
		max:    math.Max(a.max, b.max),
		ewma:   (fa*a.ewma + fb*b.ewma) / fn,
		jitter: (fa*a.jitter + fb*b.jitter) / fn,
	}
}

// StageStats implements the predictor's StageFeed over the merged view.
func (s *AttributionSet) StageStats(st Stage) (ewma, jitter time.Duration, n uint64) {
	if s == nil || st >= NumStages {
		return 0, 0, 0
	}
	var acc stageAcc
	for _, a := range s.attrs {
		if a == nil {
			continue
		}
		a.mu.Lock()
		sa := a.stages[st]
		a.mu.Unlock()
		acc = mergeAcc(acc, sa)
	}
	return time.Duration(acc.ewma), time.Duration(acc.jitter), acc.count
}

// Snapshot captures the merged statistics (same report as a single
// engine's Snapshot).
func (s *AttributionSet) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return snapshotFrom(s.merged())
}
