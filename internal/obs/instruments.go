package obs

import (
	"sync"
	"time"

	"planet/internal/simnet"
)

// NetInstruments publishes simnet traffic into a Registry. It implements
// simnet.Observer: counters for sent/delivered/dropped messages per
// directed region pair, and a per-link one-way delay histogram.
type NetInstruments struct {
	reg *Registry

	mu    sync.RWMutex
	links map[linkID]*linkInstruments
}

// linkID keys instruments by directed region pair.
type linkID struct{ from, to simnet.Region }

// linkInstruments caches one link's handles so the per-message path does
// only one map lookup.
type linkInstruments struct {
	sent, delivered, dropped *Counter
	delay                    *Histogram
}

// NewNetInstruments builds (and pre-registers) network instruments on reg.
func NewNetInstruments(reg *Registry) *NetInstruments {
	return &NetInstruments{reg: reg, links: make(map[linkID]*linkInstruments)}
}

// link returns (creating if needed) the instruments for from→to.
func (ni *NetInstruments) link(from, to simnet.Region) *linkInstruments {
	id := linkID{from, to}
	ni.mu.RLock()
	li := ni.links[id]
	ni.mu.RUnlock()
	if li != nil {
		return li
	}
	labels := []Label{L("from", string(from)), L("to", string(to))}
	li = &linkInstruments{
		sent:      ni.reg.Counter("planet_simnet_messages_sent_total", "Messages submitted to the emulated network.", labels...),
		delivered: ni.reg.Counter("planet_simnet_messages_delivered_total", "Messages delivered to a registered handler.", labels...),
		dropped:   ni.reg.Counter("planet_simnet_messages_dropped_total", "Messages dropped by loss, partitions, or shutdown.", labels...),
		delay:     ni.reg.Histogram("planet_simnet_link_delay_seconds", "Sampled one-way link delay (scaled emulator time).", labels...),
	}
	ni.mu.Lock()
	if prev := ni.links[id]; prev != nil {
		li = prev
	} else {
		ni.links[id] = li
	}
	ni.mu.Unlock()
	return li
}

// MessageSent implements simnet.Observer.
func (ni *NetInstruments) MessageSent(from, to simnet.Region, delay time.Duration) {
	li := ni.link(from, to)
	li.sent.Inc()
	li.delay.Observe(delay)
}

// MessageDelivered implements simnet.Observer.
func (ni *NetInstruments) MessageDelivered(from, to simnet.Region) {
	ni.link(from, to).delivered.Inc()
}

// MessageDropped implements simnet.Observer.
func (ni *NetInstruments) MessageDropped(from, to simnet.Region) {
	ni.link(from, to).dropped.Inc()
}

// CoordInstruments publishes one coordinator's protocol activity into a
// Registry. It implements mdcc.CoordObserver.
type CoordInstruments struct {
	accepts, rejects *Counter
	fallbacks        *Counter
	timeouts         *Counter
	commits, aborts  *Counter
	decisionLat      *Histogram

	reg *Registry

	mu      sync.RWMutex
	voteLat map[simnet.Region]*Histogram
}

// NewCoordInstruments builds instruments for the coordinator of region.
func NewCoordInstruments(reg *Registry, region simnet.Region) *CoordInstruments {
	coord := L("coordinator", string(region))
	return &CoordInstruments{
		reg:       reg,
		accepts:   reg.Counter("planet_mdcc_votes_total", "Fast-path votes received, by verdict.", coord, L("verdict", "accept")),
		rejects:   reg.Counter("planet_mdcc_votes_total", "Fast-path votes received, by verdict.", coord, L("verdict", "reject")),
		fallbacks: reg.Counter("planet_mdcc_fallbacks_total", "Options that fell back from fast to classic Paxos.", coord),
		timeouts:  reg.Counter("planet_mdcc_timeouts_total", "Transactions aborted by the commit timeout.", coord),
		commits:   reg.Counter("planet_mdcc_decisions_total", "Final decisions, by outcome.", coord, L("outcome", "commit")),
		aborts:    reg.Counter("planet_mdcc_decisions_total", "Final decisions, by outcome.", coord, L("outcome", "abort")),
		decisionLat: reg.Histogram("planet_mdcc_decision_latency_seconds",
			"Submit-to-decision latency at the coordinator (scaled emulator time).", coord),
		voteLat: make(map[simnet.Region]*Histogram),
	}
}

// voteHist returns the vote-latency histogram for the voting region.
func (ci *CoordInstruments) voteHist(region simnet.Region) *Histogram {
	ci.mu.RLock()
	h := ci.voteLat[region]
	ci.mu.RUnlock()
	if h != nil {
		return h
	}
	h = ci.reg.Histogram("planet_mdcc_vote_latency_seconds",
		"Submit-to-vote latency per voting region (scaled emulator time).",
		L("region", string(region)))
	ci.mu.Lock()
	ci.voteLat[region] = h
	ci.mu.Unlock()
	return h
}

// Vote implements mdcc.CoordObserver.
func (ci *CoordInstruments) Vote(region simnet.Region, accept bool, elapsed time.Duration) {
	if accept {
		ci.accepts.Inc()
	} else {
		ci.rejects.Inc()
	}
	ci.voteHist(region).Observe(elapsed)
}

// Fallback implements mdcc.CoordObserver.
func (ci *CoordInstruments) Fallback() { ci.fallbacks.Inc() }

// Timeout implements mdcc.CoordObserver.
func (ci *CoordInstruments) Timeout() { ci.timeouts.Inc() }

// Decided implements mdcc.CoordObserver.
func (ci *CoordInstruments) Decided(commit bool, elapsed time.Duration) {
	if commit {
		ci.commits.Inc()
	} else {
		ci.aborts.Inc()
	}
	ci.decisionLat.Observe(elapsed)
}
