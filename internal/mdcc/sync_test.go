package mdcc_test

import (
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/txn"
)

func TestSyncRepairsPartitionedReplica(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedBytes("doc", []byte("v0"))
	c.SeedInt("n", 0, 0, 1000)
	c.Quiesce(5 * time.Second)

	// Ireland misses two commits behind a partition.
	c.Net.SetRegionDown(regions.Ireland, true)
	for _, op := range []txn.Op{
		{Kind: txn.OpSet, Key: "doc", Value: []byte("v1"), ReadVersion: 0},
		{Kind: txn.OpAdd, Key: "n", Delta: 7},
	} {
		if ok, err, _ := submit(t, c, regions.California, []txn.Op{op}, mdcc.ModeFast); !ok {
			t.Fatalf("commit during partition: %v", err)
		}
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	c.Net.SetRegionDown(regions.Ireland, false)

	ie := c.Replica(regions.Ireland)
	if v, _ := ie.ReadLocal("doc"); string(v.Bytes) != "v0" {
		t.Fatalf("precondition: replica should be stale, has %q", v.Bytes)
	}

	repaired, err := ie.SyncFrom(c.Replica(regions.Virginia).Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 2 {
		t.Errorf("repaired %d records, want 2", repaired)
	}
	if v, _ := ie.ReadLocal("doc"); string(v.Bytes) != "v1" || v.Version != 1 {
		t.Errorf("doc after sync: %q v%d", v.Bytes, v.Version)
	}
	if v, _ := ie.ReadLocal("n"); v.Int != 7 {
		t.Errorf("n after sync: %d", v.Int)
	}
}

func TestSyncIsIdempotentAndDirectional(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedBytes("k", []byte("v0"))
	c.Quiesce(5 * time.Second)

	ca := c.Replica(regions.California)
	// Syncing identical replicas repairs nothing.
	repaired, err := ca.SyncFrom(c.Replica(regions.Tokyo).Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Errorf("repaired %d on identical state", repaired)
	}
	// A fresher local version is never downgraded by a stale donor.
	if ok, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 0},
	}, mdcc.ModeFast); !ok {
		t.Fatal(err)
	}
	c.Quiesce(5 * time.Second)
	repaired, err = ca.SyncFrom(c.Replica(regions.Tokyo).Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Errorf("repaired %d from an equally fresh donor", repaired)
	}
	if v, _ := ca.ReadLocal("k"); string(v.Bytes) != "v1" {
		t.Errorf("sync downgraded to %q", v.Bytes)
	}
}

func TestSyncTimesOutAgainstDeadPeer(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedBytes("k", []byte("v0"))
	c.Net.SetRegionDown(regions.Singapore, true)
	_, err := c.Replica(regions.California).SyncFrom(
		c.Replica(regions.Singapore).Addr(), 50*time.Millisecond)
	if err == nil {
		t.Fatal("sync from unreachable peer succeeded")
	}
}
