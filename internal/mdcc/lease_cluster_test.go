package mdcc_test

// Cluster-level lease coverage: leased mastership on the simulated WAN —
// boot acquisition, failover after crashing the lease holder, deposed
// reconvergence after restart, and a virtual-clock determinism gate with
// leases enabled.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// leaseEvents collects OnLeaseEvent callbacks per observing region.
type leaseEvents struct {
	mu  sync.Mutex
	evs map[simnet.Region][]mdcc.LeaseEvent
}

func newLeaseEvents() *leaseEvents {
	return &leaseEvents{evs: make(map[simnet.Region][]mdcc.LeaseEvent)}
}

func (l *leaseEvents) record(r simnet.Region, ev mdcc.LeaseEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs[r] = append(l.evs[r], ev)
}

func (l *leaseEvents) count(kind mdcc.LeaseEventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, evs := range l.evs {
		for _, ev := range evs {
			if ev.Kind == kind {
				n++
			}
		}
	}
	return n
}

// waitHeld polls until region r's replica holds keyspace ks's lease.
func waitHeld(t *testing.T, c *cluster.Cluster, r, ks simnet.Region, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !c.Replica(r).HoldsLease(ks) {
		if time.Now().After(deadline) {
			t.Fatalf("%s never acquired the %s lease within %v", r, ks, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeaseClusterCommits(t *testing.T) {
	c := newTestCluster(t, cluster.Config{
		MasterRegion: regions.Virginia,
		MasterLeases: true,
		WAL:          true,
	})
	c.SeedInt("acct", 100, 0, 1000)

	// The default holder (the static master region) claims its keyspace at
	// startup; classic proposals bounce NotMaster until then.
	waitHeld(t, c, regions.Virginia, regions.Virginia, 10*time.Second)

	committed, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpAdd, Key: "acct", Delta: 5},
	}, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("fast commit under leases: committed=%v err=%v", committed, err)
	}
	committed, err, _ = submit(t, c, regions.Ireland, []txn.Op{
		{Kind: txn.OpAdd, Key: "acct", Delta: -3},
	}, mdcc.ModeClassic)
	if !committed || err != nil {
		t.Fatalf("classic commit under leases: committed=%v err=%v", committed, err)
	}
}

// TestLeaseClusterFailover crashes the lease-holding master on the simnet
// cluster: a survivor must take the keyspace over once the lease lapses,
// classic commits against the dead master's keys must flow again, and the
// restarted corpse must converge on the new holder instead of reclaiming
// mastership.
func TestLeaseClusterFailover(t *testing.T) {
	events := newLeaseEvents()
	c := newTestCluster(t, cluster.Config{
		MasterRegion: regions.Virginia,
		MasterLeases: true,
		WAL:          true,
		OnLeaseEvent: events.record,
	})
	c.SeedInt("acct", 100, 0, 1000)
	ks := regions.Virginia

	waitHeld(t, c, regions.Virginia, ks, 10*time.Second)
	committed, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpAdd, Key: "acct", Delta: 1},
	}, mdcc.ModeClassic)
	if !committed || err != nil {
		t.Fatalf("warmup commit: committed=%v err=%v", committed, err)
	}

	// Kill the holder. Its lease lapses on the survivors' clocks and the
	// first survivor in stagger-rank order claims the next epoch.
	if err := c.CrashReplica(regions.Virginia); err != nil {
		t.Fatal(err)
	}
	var heir simnet.Region
	deadline := time.Now().Add(20 * time.Second)
	for heir == "" {
		for _, r := range c.Regions() {
			if r != regions.Virginia && c.Replica(r).HoldsLease(ks) {
				heir = r
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no survivor took over the dead master's lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("lease moved %s -> %s", regions.Virginia, heir)
	if events.count(mdcc.LeaseTakeover) == 0 {
		t.Error("takeover happened but no LeaseTakeover event was observed")
	}
	if got := c.Replica(heir).LeaseTakeoverCount(); got < 1 {
		t.Errorf("heir's LeaseTakeoverCount = %d, want >= 1", got)
	}

	// The dead master's keys commit under the new lease, corpse still down.
	commitEventually(t, c, regions.California, "acct", 2, "post-takeover commit")

	// Restart the corpse: WAL replay hands back its stale held epoch, the
	// re-acquire rounds are nacked, and its granted view must converge on
	// the heir (it never reclaims while the heir keeps renewing).
	if err := c.RestartReplica(regions.Virginia); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		holder, ok := c.Replica(regions.Virginia).LeaseHolder(ks)
		if ok && holder == heir {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted master never converged on the heir (sees %q)", holder)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Replica(regions.Virginia).HoldsLease(ks) {
		t.Error("restarted deposed master claims to hold the lease")
	}
	commitEventually(t, c, regions.California, "acct", 3, "post-restart commit")
}

// commitEventually retries a classic add until it commits — aborts are
// legitimate while an epoch transition is settling (stale routes bounce,
// the new master recovers per-key state), but liveness must return.
func commitEventually(t *testing.T, c *cluster.Cluster, from simnet.Region, key string, delta int64, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		committed, err, _ := submit(t, c, from, []txn.Op{
			{Kind: txn.OpAdd, Key: key, Delta: delta},
		}, mdcc.ModeClassic)
		if committed && err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: never committed (last: committed=%v err=%v)", what, committed, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// vsink is a ProgressSink whose decision wait participates in the virtual
// clock: the constructing goroutine owns the virtual world's execution
// slot, so it may only block through clock primitives — a raw channel wait
// would freeze virtual time.
type vsink struct {
	ev        *vclock.Event
	committed bool
	err       error
}

func (s *vsink) Progress(mdcc.ProgressEvent) {}

func (s *vsink) Decided(_ txn.ID, committed bool, err error) {
	s.committed, s.err = committed, err
	s.ev.Fire()
}

// leaseFingerprint runs a fixed workload on a lease-enabled virtual-time
// cluster and folds everything observable into one string: per-txn
// outcomes, final replicated values, and each region's final lease view.
// Txn IDs are process-global and excluded.
func leaseFingerprint(t *testing.T, seed int64) string {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Seed:         seed,
		VirtualTime:  true,
		ParallelTime: true,
		MasterRegion: regions.Virginia,
		MasterLeases: true,
		WAL:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clk := c.Clock()

	keys := []string{"fp-a", "fp-b", "fp-c"}
	for _, k := range keys {
		c.SeedInt(k, 100, 0, 1000)
	}
	var b strings.Builder
	froms := c.Regions()
	for i := 0; i < 24; i++ {
		mode := mdcc.ModeFast
		if i%3 == 0 {
			mode = mdcc.ModeClassic
		}
		from := froms[i%len(froms)]
		// The coordinator lives on its region's scheduler partition: home
		// the decision event there (Decided fires from that partition) and
		// ship the Submit through the merge layer.
		rclk := c.ClockFor(from)
		sink := &vsink{ev: rclk.NewEvent()}
		ops := []txn.Op{{Kind: txn.OpAdd, Key: keys[i%len(keys)], Delta: int64(i%7 - 3)}}
		var subErr error
		vclock.RunOn(clk, rclk, func() {
			subErr = c.Coordinator(from).Submit(txn.NewID(), ops, mode, sink)
		})
		if subErr != nil {
			t.Fatal(subErr)
		}
		if !sink.ev.WaitTimeoutFrom(clk, 5*time.Minute) {
			t.Fatalf("txn %d never decided within 5 virtual minutes", i)
		}
		fmt.Fprintf(&b, "txn%d:%v/%v\n", i, sink.committed, sink.err != nil)
	}
	// Let straggler decide messages land at every replica. A virtual sleep
	// advances deterministically; renewal traffic keeps flowing but does
	// not change epochs, so the state read below is a pure function of the
	// seed.
	clk.Sleep(30 * time.Second)

	regionList := append([]simnet.Region(nil), c.Regions()...)
	sort.Slice(regionList, func(i, j int) bool { return regionList[i] < regionList[j] })
	for _, r := range regionList {
		for _, k := range keys {
			v, okv := c.Replica(r).ReadLocal(k)
			fmt.Fprintf(&b, "%s/%s:%v@%d/%v\n", r, k, v.Int, v.Version, okv)
		}
		holder, epoch, _ := c.Replica(r).LeaseView(regions.Virginia)
		fmt.Fprintf(&b, "%s/lease:%s@%d\n", r, holder, epoch)
	}
	return b.String()
}

// TestLeaseVirtualDeterminism is the lease-enabled determinism gate: the
// same seed on the virtual clock must produce a bit-identical fingerprint
// — txn outcomes, final state, and lease views — across runs, or leases
// have introduced a nondeterminism bug. verify.sh runs it repeatedly.
func TestLeaseVirtualDeterminism(t *testing.T) {
	a := leaseFingerprint(t, 77)
	b := leaseFingerprint(t, 77)
	if a != b {
		t.Fatalf("same seed, different outcomes with leases enabled:\n--- run A\n%s\n--- run B\n%s", a, b)
	}
}
