package mdcc

import (
	"bytes"
	"testing"

	"planet/internal/txn"
)

// crashFile builds a WAL sink file whose final record is torn mid-write —
// the artifact a process crash leaves behind.
func crashFile(t *testing.T, entries []Entry, cut int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for _, e := range entries {
		w.Append(e)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if cut <= 0 || cut >= len(raw) {
		return raw
	}
	return raw[:len(raw)-cut]
}

// walOps is shorthand for a single-op entry.
func walOps(op txn.Op) []txn.Op { return []txn.Op{op} }

func TestRecoverWALTornTail(t *testing.T) {
	entries := []Entry{
		{Txn: 1, Commit: true, Options: walOps(txn.Op{Kind: txn.OpSet, Key: "a", Value: []byte("v1")})},
		{Txn: 2, Commit: false, Options: walOps(txn.Op{Kind: txn.OpAdd, Key: "n", Delta: 9})},
		{Txn: 3, Commit: true, Options: walOps(txn.Op{Kind: txn.OpAdd, Key: "n", Delta: 5})},
		{Txn: 4, Commit: true, Options: walOps(txn.Op{Kind: txn.OpSet, Key: "a", Value: []byte("v2"), ReadVersion: 1})},
	}
	// Cut 10 bytes off the file: the final record is torn.
	raw := crashFile(t, entries, 10)

	// ReadWAL (strict) surfaces the corruption...
	if _, err := ReadWAL(bytes.NewReader(raw)); err == nil {
		t.Error("ReadWAL accepted a torn tail without error")
	}

	// ...RecoverWAL returns the trustworthy prefix.
	got, torn := RecoverWAL(bytes.NewReader(raw))
	if !torn {
		t.Error("RecoverWAL did not report the torn tail")
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.Txn != entries[i].Txn || e.Commit != entries[i].Commit {
			t.Errorf("entry %d: %+v != %+v", i, e, entries[i])
		}
	}

	// An intact file recovers fully and reports no tear.
	full, torn := RecoverWAL(bytes.NewReader(crashFile(t, entries, 0)))
	if torn || len(full) != len(entries) {
		t.Errorf("intact file: %d entries torn=%v, want %d entries torn=false", len(full), torn, len(entries))
	}
}

// TestWALCrashReplayConsistency is the satellite's core scenario: a replica
// crashes mid-commit (its WAL file ends in a torn record), and replaying
// the recovered prefix must land in a consistent record state — committed
// writes from complete entries applied exactly once, aborts skipped, and
// the torn entry contributing nothing.
func TestWALCrashReplayConsistency(t *testing.T) {
	entries := []Entry{
		{Txn: 10, Commit: true, Options: walOps(txn.Op{Kind: txn.OpSet, Key: "a", Value: []byte("v1")})},
		{Txn: 11, Commit: true, Options: walOps(txn.Op{Kind: txn.OpAdd, Key: "n", Delta: 5})},
		{Txn: 12, Commit: false, Options: walOps(txn.Op{Kind: txn.OpAdd, Key: "n", Delta: 100})},
		{Txn: 13, Commit: true, Options: walOps(txn.Op{Kind: txn.OpAdd, Key: "n", Delta: -2})},
		// The mid-commit casualty: this decide was being logged when the
		// process died.
		{Txn: 14, Commit: true, Options: walOps(txn.Op{Kind: txn.OpSet, Key: "a", Value: []byte("v2"), ReadVersion: 1})},
	}
	raw := crashFile(t, entries, 5)
	recovered, torn := RecoverWAL(bytes.NewReader(raw))
	if !torn || len(recovered) != 4 {
		t.Fatalf("recovered %d entries torn=%v, want 4 torn=true", len(recovered), torn)
	}

	// Replay into records exactly the way Replica.Restore does.
	records := make(map[string]*record)
	decided := make(map[txn.ID]bool)
	for _, e := range recovered {
		decided[e.Txn] = e.Commit
		if !e.Commit {
			continue
		}
		for _, op := range e.Options {
			rc := records[op.Key]
			if rc == nil {
				rc = &record{}
				records[op.Key] = rc
			}
			rc.apply(op)
		}
	}

	if v := records["a"].value(); string(v.Bytes) != "v1" || v.Version != 1 {
		t.Errorf("a = %q v%d, want v1 v1 (torn txn-14 must not apply)", v.Bytes, v.Version)
	}
	if v := records["n"].value(); v.Int != 3 || v.Version != 2 {
		t.Errorf("n = %d v%d, want 3 v2 (aborted txn-12 must not apply)", v.Int, v.Version)
	}
	if len(decided) != 4 {
		t.Errorf("decided map has %d entries, want 4", len(decided))
	}
	if commit, ok := decided[12]; !ok || commit {
		t.Error("aborted txn-12 missing from decided map or marked committed")
	}
	if _, ok := decided[14]; ok {
		t.Error("torn txn-14 leaked into the decided map")
	}
}
