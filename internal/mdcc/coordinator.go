package mdcc

import (
	"fmt"
	"sync"
	"time"

	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// CoordinatorConfig parameterizes a region's transaction coordinator.
type CoordinatorConfig struct {
	// Net is the transport. Required.
	Net *simnet.Network
	// Addr is the coordinator's own address. Required.
	Addr simnet.Addr
	// Replicas lists every replica address. Required.
	Replicas []simnet.Addr
	// MasterFor routes a key to its master replica. Required.
	MasterFor func(key string) simnet.Addr
	// CommitTimeout bounds a transaction's in-flight time (already
	// time-scaled). Zero disables the timeout.
	CommitTimeout time.Duration
}

// optStatus is the lifecycle of a single option at the coordinator.
type optStatus uint8

const (
	optFast optStatus = iota
	optClassic
	optAccepted
	optRejected
)

// optState tracks vote collection for one option.
type optState struct {
	op      txn.Op
	status  optStatus
	voted   map[simnet.Region]bool
	accepts int
	rejects int
	reason  RejectReason
}

// commitState is a transaction in flight at the coordinator.
type commitState struct {
	id      txn.ID
	ops     []txn.Op
	mode    Mode
	sink    ProgressSink
	start   time.Time
	opts    map[string]*optState
	open    int // options not yet learned
	decided bool
	timer   vclock.Timer
}

// CoordObserver receives a coordinator's protocol instrumentation: votes as
// they arrive, fallbacks to classic Paxos, commit timeouts, and final
// decisions. Callbacks run with the coordinator lock held and must be fast
// and must not call back into the coordinator.
type CoordObserver interface {
	Vote(region simnet.Region, accept bool, elapsed time.Duration)
	Fallback()
	Timeout()
	Decided(commit bool, elapsed time.Duration)
}

// Coordinator drives commit processing for transactions originating in its
// region. It is a learner for option outcomes and the decision authority
// for the transactions it coordinates.
type Coordinator struct {
	cfg CoordinatorConfig
	clk vclock.Clock // the network's clock

	mu      sync.Mutex
	active  map[txn.ID]*commitState
	reads   map[uint64]*readWaiter
	obs     CoordObserver
	crashed bool

	// Stats for tests and experiments.
	Fallbacks uint64
	Timeouts  uint64
}

// SetObserver installs o (nil clears). Typically wired once at startup.
func (c *Coordinator) SetObserver(o CoordObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = o
}

// NewCoordinator constructs and registers a coordinator on cfg.Net.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Net == nil || len(cfg.Replicas) == 0 || cfg.MasterFor == nil {
		return nil, fmt.Errorf("mdcc: coordinator config incomplete")
	}
	c := &Coordinator{cfg: cfg, clk: cfg.Net.Clock(), active: make(map[txn.ID]*commitState)}
	cfg.Net.Register(cfg.Addr, c.recv)
	return c, nil
}

// Addr returns the coordinator's network address.
func (c *Coordinator) Addr() simnet.Addr { return c.cfg.Addr }

// Region returns the coordinator's region.
func (c *Coordinator) Region() simnet.Region { return c.cfg.Addr.Region }

// N returns the replica count.
func (c *Coordinator) N() int { return len(c.cfg.Replicas) }

// Submit starts commit processing for a transaction. ops must contain at
// most one operation per key. All progress — including the final decision —
// is delivered through sink from network goroutines. A transaction with no
// writes commits immediately.
func (c *Coordinator) Submit(id txn.ID, ops []txn.Op, mode Mode, sink ProgressSink) error {
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		if op.Key == "" {
			return fmt.Errorf("mdcc: %s has an operation with an empty key", id)
		}
		if seen[op.Key] {
			return fmt.Errorf("mdcc: %s has multiple operations on key %q", id, op.Key)
		}
		seen[op.Key] = true
	}

	s := &commitState{
		id:    id,
		ops:   ops,
		mode:  mode,
		sink:  sink,
		start: c.clk.Now(),
		opts:  make(map[string]*optState, len(ops)),
		open:  len(ops),
	}
	for _, op := range ops {
		st := &optState{op: op, voted: make(map[simnet.Region]bool)}
		if mode == ModeClassic {
			st.status = optClassic
		}
		s.opts[op.Key] = st
	}

	c.mu.Lock()
	if c.crashed {
		// A dead process accepts nothing; the caller sees the same error
		// a severed client connection would produce.
		c.mu.Unlock()
		return fmt.Errorf("mdcc: submit %s: %w", id, ErrCrashed)
	}
	c.active[id] = s
	if c.cfg.CommitTimeout > 0 {
		s.timer = c.clk.AfterFunc(c.cfg.CommitTimeout, func() { c.onTimeout(id) })
	}
	c.mu.Unlock()

	sink.Progress(ProgressEvent{Txn: id, Kind: KindSubmitted})

	if len(ops) == 0 {
		c.mu.Lock()
		c.decideLocked(s, true, nil)
		c.mu.Unlock()
		return nil
	}

	switch mode {
	case ModeClassic:
		for _, op := range ops {
			c.cfg.Net.Send(c.cfg.Addr, c.cfg.MasterFor(op.Key),
				classicProposeMsg{Txn: id, Coord: c.cfg.Addr, Option: op})
		}
	default:
		for _, rep := range c.cfg.Replicas {
			c.cfg.Net.Send(c.cfg.Addr, rep, proposeMsg{Txn: id, Coord: c.cfg.Addr, Options: ops})
		}
	}
	return nil
}

// recv dispatches network messages.
func (c *Coordinator) recv(m simnet.Message) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		// A delivery that raced with Crash's deregistration.
		return
	}
	switch p := m.Payload.(type) {
	case voteMsg:
		c.onVote(p)
	case classicResultMsg:
		c.onClassicResult(p)
	case readResp:
		c.onReadResp(p)
	}
}

// onVote processes one fast-path vote.
func (c *Coordinator) onVote(v voteMsg) {
	c.mu.Lock()
	s := c.active[v.Txn]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	st := s.opts[v.Key]
	if st == nil || st.status != optFast || st.voted[v.Region] {
		c.mu.Unlock()
		return
	}
	st.voted[v.Region] = true
	if v.Accept {
		st.accepts++
	} else {
		st.rejects++
		if st.reason == ReasonNone {
			st.reason = v.Reason
		}
	}

	// Emit the vote before any learn/decide it triggers, so sinks see
	// vote counts that are consistent with option outcomes.
	elapsed := c.clk.Since(s.start)
	if c.obs != nil {
		c.obs.Vote(v.Region, v.Accept, elapsed)
	}
	s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindVote, Key: v.Key,
		Region: v.Region, Accept: v.Accept, Reason: v.Reason, Elapsed: elapsed})

	n := c.N()
	fq := FastQuorum(n)
	switch {
	case st.accepts >= fq:
		c.learnLocked(s, st, true, ReasonNone)
	case !v.Accept && v.Reason.Fatal():
		c.learnLocked(s, st, false, v.Reason)
	case st.accepts+(n-len(st.voted)) < fq:
		// The fast quorum is out of reach: fall back to the master.
		st.status = optClassic
		st.reason = ReasonNone
		c.Fallbacks++
		if c.obs != nil {
			c.obs.Fallback()
		}
		c.cfg.Net.Send(c.cfg.Addr, c.cfg.MasterFor(v.Key),
			classicProposeMsg{Txn: s.id, Coord: c.cfg.Addr, Option: st.op})
		s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindFallback, Key: v.Key, Elapsed: elapsed})
	}
	c.mu.Unlock()
}

// onClassicResult processes a master's verdict for one option.
func (c *Coordinator) onClassicResult(r classicResultMsg) {
	c.mu.Lock()
	s := c.active[r.Txn]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	st := s.opts[r.Key]
	if st == nil || st.status != optClassic {
		c.mu.Unlock()
		return
	}
	c.learnLocked(s, st, r.Accepted, r.Reason)
	c.mu.Unlock()
}

// learnLocked finalizes one option and, when conclusive for the whole
// transaction, decides it. Caller holds c.mu.
func (c *Coordinator) learnLocked(s *commitState, st *optState, accepted bool, reason RejectReason) {
	if st.status == optAccepted || st.status == optRejected {
		return
	}
	if accepted {
		st.status = optAccepted
	} else {
		st.status = optRejected
		st.reason = reason
	}
	s.open--

	s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindOptionLearned, Key: st.op.Key,
		Accept: accepted, Reason: reason, Elapsed: c.clk.Since(s.start)})

	if !accepted {
		c.decideLocked(s, false, reasonErr(reason))
		return
	}
	if s.open == 0 {
		c.decideLocked(s, true, nil)
	}
}

// onTimeout aborts a transaction that outlived its commit timeout.
func (c *Coordinator) onTimeout(id txn.ID) {
	c.mu.Lock()
	s := c.active[id]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	c.Timeouts++
	if c.obs != nil {
		c.obs.Timeout()
	}
	c.decideLocked(s, false, ErrTimeout)
	c.mu.Unlock()
}

// decideLocked records the final decision, broadcasts it to the replicas,
// and notifies the sink. Caller holds c.mu.
func (c *Coordinator) decideLocked(s *commitState, commit bool, err error) {
	if s.decided {
		return
	}
	s.decided = true
	if s.timer != nil {
		s.timer.Stop()
	}
	delete(c.active, s.id)

	for _, rep := range c.cfg.Replicas {
		c.cfg.Net.Send(c.cfg.Addr, rep, decideMsg{Txn: s.id, Commit: commit, Options: s.ops})
	}
	if c.obs != nil {
		c.obs.Decided(commit, c.clk.Since(s.start))
	}
	s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindDecided,
		Accept: commit, Elapsed: c.clk.Since(s.start)})
	s.sink.Decided(s.id, commit, err)
}

// Crash simulates a coordinator process failure: it leaves the network and
// every in-flight transaction fails over to its sink with ErrCrashed. No
// decide message is broadcast for them — the coordinator is the decision
// authority, so an undecided transaction dies with it and its pendings at
// the replicas are left for PendingTTL eviction, exactly as a real crashed
// coordinator would leave them.
func (c *Coordinator) Crash() {
	c.cfg.Net.Deregister(c.cfg.Addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return
	}
	c.crashed = true
	for id, s := range c.active {
		s.decided = true
		if s.timer != nil {
			s.timer.Stop()
		}
		delete(c.active, id)
		if c.obs != nil {
			c.obs.Decided(false, c.clk.Since(s.start))
		}
		s.sink.Progress(ProgressEvent{Txn: id, Kind: KindDecided,
			Accept: false, Elapsed: c.clk.Since(s.start)})
		s.sink.Decided(id, false, ErrCrashed)
	}
}

// Restart rejoins a crashed coordinator to the network. Coordinators keep
// no durable state: recovery is simply re-registration with an empty
// in-flight table (the crash already failed every open transaction).
func (c *Coordinator) Restart() {
	c.mu.Lock()
	c.crashed = false
	c.mu.Unlock()
	c.cfg.Net.Register(c.cfg.Addr, c.recv)
}

// Crashed reports whether the coordinator is currently down.
func (c *Coordinator) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// reasonErr maps a rejection reason to the error surfaced to applications.
func reasonErr(r RejectReason) error {
	switch r {
	case ReasonBound:
		return ErrBound
	case ReasonVersion, ReasonPending, ReasonClassicOwned, ReasonDecided:
		return ErrConflict
	case ReasonBallot:
		return ErrAmbiguous
	default:
		return ErrConflict
	}
}
