package mdcc

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// CoordinatorConfig parameterizes a region's transaction coordinator.
type CoordinatorConfig struct {
	// Net is the transport (simnet.Network or realnet.Transport). Required.
	Net Transport
	// Addr is the coordinator's own address. Required.
	Addr simnet.Addr
	// Replicas lists every replica address. Required.
	Replicas []simnet.Addr
	// MasterFor routes a key to its master replica. Required.
	MasterFor func(key string) simnet.Addr
	// CommitTimeout bounds a transaction's in-flight time (already
	// time-scaled). Zero disables the timeout.
	CommitTimeout time.Duration
	// PerOptionMessages restores the legacy wire protocol: one classic
	// propose message per option instead of one batch per master.
	// Equivalence tests use it; see ReplicaConfig.PerOptionMessages.
	PerOptionMessages bool
	// Unreachable, when non-nil, reports whether a replica region is
	// currently unreachable over the transport (realnet peer health).
	// When so many replicas are unreachable that the fast quorum cannot
	// form, a fast-path submit degrades straight to the classic path
	// instead of burning its commit timeout waiting for votes that cannot
	// arrive. Nil (the simnet default) disables the check.
	Unreachable func(region simnet.Region) bool
	// EarlyAbort enables optimistic abort propagation: when conflict
	// rejects push the fast quorum out of reach, the option is learned
	// rejected on the spot — and the abort decide broadcast immediately
	// clears its sibling pendings at every replica — instead of paying a
	// classic master round-trip that the same conflict would almost
	// certainly also reject. Fatal rejects (version, bound) already abort
	// on arrival regardless of this flag; EarlyAbort extends the shortcut
	// to pending-conflict evidence. Rejects that ask for the classic path
	// by design (ReasonClassicOwned, ReasonNotMaster) still fall back.
	EarlyAbort bool
}

// optStatus is the lifecycle of a single option at the coordinator.
type optStatus uint8

const (
	optFast optStatus = iota
	optClassic
	optAccepted
	optRejected
)

// optState tracks vote collection for one option.
type optState struct {
	op      txn.Op
	status  optStatus
	voted   uint64 // bitmask over replica indices (see Coordinator.regionBit)
	accepts int
	rejects int
	reason  RejectReason
	// retries counts master re-resolutions after ReasonNotMaster bounces
	// (leased mastership: the lease moved and routing lagged).
	retries uint8
}

// maxMasterRetries bounds how many times one option chases a moving master
// lease before its rejection sticks. The commit timeout bounds the total
// time either way.
const maxMasterRetries = 3

// commitState is a transaction in flight at the coordinator.
type commitState struct {
	id    txn.ID
	ops   []txn.Op
	mode  Mode
	sink  ProgressSink
	start time.Time
	// opts holds per-option vote state inline, in submission order. A
	// linear key scan over a handful of options beats a map on both
	// allocation count and lookup cost.
	opts    []optState
	open    int // options not yet learned
	decided bool
	timer   vclock.Timer
	// span is the transaction's root span id (0 = untraced); every
	// protocol message for the transaction carries it as trace context.
	span uint64
}

// opt returns the state for key, or nil.
func (s *commitState) opt(key string) *optState {
	for i := range s.opts {
		if s.opts[i].op.Key == key {
			return &s.opts[i]
		}
	}
	return nil
}

// CoordObserver receives a coordinator's protocol instrumentation: votes as
// they arrive, fallbacks to classic Paxos, commit timeouts, and final
// decisions. Callbacks run with the coordinator lock held and must be fast
// and must not call back into the coordinator.
type CoordObserver interface {
	Vote(region simnet.Region, accept bool, elapsed time.Duration)
	Fallback()
	Timeout()
	Decided(commit bool, elapsed time.Duration)
}

// Coordinator drives commit processing for transactions originating in its
// region. It is a learner for option outcomes and the decision authority
// for the transactions it coordinates.
type Coordinator struct {
	cfg CoordinatorConfig
	clk vclock.Clock // the network's clock

	mu      sync.Mutex
	active  map[txn.ID]*commitState
	reads   map[uint64]*readWaiter
	obs     CoordObserver
	spans   *obs.SpanStore
	crashed bool

	// Stats for tests and experiments.
	Fallbacks uint64
	Timeouts  uint64
	// DegradedSubmits counts fast-path submissions rerouted to the classic
	// path because the fast quorum was unreachable (see
	// CoordinatorConfig.Unreachable).
	DegradedSubmits uint64
	// MasterRedirects counts classic proposals re-sent after a
	// ReasonNotMaster bounce (the master lease moved under the router).
	MasterRedirects uint64
	// EarlyAborts counts options learned rejected at the would-be classic
	// fallback because conflict evidence doomed them (EarlyAbort mode).
	EarlyAborts uint64
}

// SetObserver installs o (nil clears). Typically wired once at startup.
func (c *Coordinator) SetObserver(o CoordObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = o
}

// SetSpans installs the span store receiving this coordinator's stage spans
// and the span reports replicas and masters flush back to it (nil clears).
// Typically wired once at startup.
func (c *Coordinator) SetSpans(st *obs.SpanStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = st
}

// NewCoordinator constructs and registers a coordinator on cfg.Net.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Net == nil || len(cfg.Replicas) == 0 || cfg.MasterFor == nil {
		return nil, fmt.Errorf("mdcc: coordinator config incomplete")
	}
	c := &Coordinator{cfg: cfg, clk: cfg.Net.ClockFor(cfg.Addr.Region), active: make(map[txn.ID]*commitState)}
	cfg.Net.Register(cfg.Addr, c.recv)
	return c, nil
}

// Addr returns the coordinator's network address.
func (c *Coordinator) Addr() simnet.Addr { return c.cfg.Addr }

// Region returns the coordinator's region.
func (c *Coordinator) Region() simnet.Region { return c.cfg.Addr.Region }

// N returns the replica count.
func (c *Coordinator) N() int { return len(c.cfg.Replicas) }

// Submit starts commit processing for a transaction. ops must contain at
// most one operation per key. All progress — including the final decision —
// is delivered through sink from network goroutines. A transaction with no
// writes commits immediately.
func (c *Coordinator) Submit(id txn.ID, ops []txn.Op, mode Mode, sink ProgressSink) error {
	return c.SubmitTraced(id, ops, mode, sink, 0)
}

// SubmitTraced is Submit with a caller-provided root span id: every
// protocol message of the transaction carries it as trace context, and
// spans recorded at replicas and masters parent to it, stitching the
// cross-process causal tree. span 0 disables tracing for the transaction.
func (c *Coordinator) SubmitTraced(id txn.ID, ops []txn.Op, mode Mode, sink ProgressSink, span uint64) error {
	for i, op := range ops {
		if op.Key == "" {
			return fmt.Errorf("mdcc: %s has an operation with an empty key", id)
		}
		for _, prev := range ops[:i] {
			if prev.Key == op.Key {
				return fmt.Errorf("mdcc: %s has multiple operations on key %q", id, op.Key)
			}
		}
	}

	// Graceful degradation: with the fast quorum known-unreachable, fast
	// proposals can only time out. The classic path needs one master plus a
	// majority, which may still be reachable, so go there directly.
	degraded := false
	if mode == ModeFast && c.cfg.Unreachable != nil && len(ops) > 0 {
		reachable := 0
		for _, rep := range c.cfg.Replicas {
			if !c.cfg.Unreachable(rep.Region) {
				reachable++
			}
		}
		if reachable < FastQuorum(len(c.cfg.Replicas)) {
			mode = ModeClassic
			degraded = true
		}
	}

	s := &commitState{
		id:    id,
		ops:   ops,
		mode:  mode,
		sink:  sink,
		start: c.clk.Now(),
		opts:  make([]optState, len(ops)),
		open:  len(ops),
		span:  span,
	}
	for i, op := range ops {
		s.opts[i].op = op
		if mode == ModeClassic {
			s.opts[i].status = optClassic
		}
	}

	c.mu.Lock()
	if c.crashed {
		// A dead process accepts nothing; the caller sees the same error
		// a severed client connection would produce.
		c.mu.Unlock()
		return fmt.Errorf("mdcc: submit %s: %w", id, ErrCrashed)
	}
	c.active[id] = s
	if degraded {
		c.DegradedSubmits++
	}
	if c.cfg.CommitTimeout > 0 {
		s.timer = c.clk.AfterFunc(c.cfg.CommitTimeout, func() { c.onTimeout(id) })
	}
	c.mu.Unlock()

	sink.Progress(ProgressEvent{Txn: id, Kind: KindSubmitted})

	if len(ops) == 0 {
		c.mu.Lock()
		c.decideLocked(s, true, nil)
		c.mu.Unlock()
		return nil
	}

	switch mode {
	case ModeClassic:
		c.sendClassic(id, span, ops)
	default:
		tc := c.traceCtx(span)
		for _, rep := range c.cfg.Replicas {
			c.cfg.Net.Send(c.cfg.Addr, rep, proposeMsg{Txn: id, Coord: c.cfg.Addr, Options: ops, TC: tc})
		}
	}
	return nil
}

// traceCtx builds the outgoing trace context for a transaction's root span:
// the zero TraceCtx when untraced, else the span plus the current clock for
// the receiver's network-leg timing.
func (c *Coordinator) traceCtx(span uint64) TraceCtx {
	if span == 0 {
		return TraceCtx{}
	}
	return TraceCtx{Span: span, SentUnixNano: c.clk.Now().UnixNano()}
}

// sendClassic routes options to their masters: one classicProposeBatchMsg
// per master normally (grouped in option order, never map order, so routing
// is deterministic), one classicProposeMsg per option in compat mode.
func (c *Coordinator) sendClassic(id txn.ID, span uint64, ops []txn.Op) {
	tc := c.traceCtx(span)
	if c.cfg.PerOptionMessages {
		for _, op := range ops {
			c.cfg.Net.Send(c.cfg.Addr, c.cfg.MasterFor(op.Key),
				classicProposeMsg{Txn: id, Coord: c.cfg.Addr, Option: op, TC: tc})
		}
		return
	}
	type masterGroup struct {
		to  simnet.Addr
		ops []txn.Op
	}
	var groups []masterGroup
outer:
	for _, op := range ops {
		to := c.cfg.MasterFor(op.Key)
		for i := range groups {
			if groups[i].to == to {
				groups[i].ops = append(groups[i].ops, op)
				continue outer
			}
		}
		groups = append(groups, masterGroup{to: to, ops: []txn.Op{op}})
	}
	for _, g := range groups {
		c.cfg.Net.Send(c.cfg.Addr, g.to,
			classicProposeBatchMsg{Txn: id, Coord: c.cfg.Addr, Options: g.ops, TC: tc})
	}
}

// regionBit maps a replica's region to its bit in vote masks. ok is false
// for regions outside the replica set, whose votes are ignored.
func (c *Coordinator) regionBit(reg simnet.Region) (uint64, bool) {
	for i, rep := range c.cfg.Replicas {
		if rep.Region == reg {
			return 1 << uint(i), true
		}
	}
	return 0, false
}

// recv dispatches network messages.
func (c *Coordinator) recv(m simnet.Message) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		// A delivery that raced with Crash's deregistration.
		return
	}
	switch p := m.Payload.(type) {
	case voteMsg:
		c.onVote(p)
	case voteBatchMsg:
		c.onVoteBatch(p)
	case classicResultMsg:
		c.onClassicResult(p)
	case classicResultBatchMsg:
		c.onClassicResultBatch(p)
	case spanReportMsg:
		c.mu.Lock()
		st := c.spans
		c.mu.Unlock()
		st.AddBatch(p.Spans)
	case readResp:
		c.onReadResp(p)
	}
}

// recordReturnLegLocked times the network leg that carried a vote or
// classic result back to the coordinator, parenting it to the sender's
// span. Caller holds c.mu.
func (c *Coordinator) recordReturnLegLocked(id txn.ID, tc TraceCtx, region simnet.Region) {
	if tc.Span == 0 || c.spans == nil {
		return
	}
	c.spans.Add(obs.Span{
		Txn: id, ID: obs.NewSpanID(), Parent: tc.Span,
		Stage: obs.StageVoteReturn, Region: string(region),
		Start: time.Unix(0, tc.SentUnixNano), End: c.clk.Now(),
	})
}

// onVote processes one fast-path vote (compat wire format).
func (c *Coordinator) onVote(v voteMsg) {
	c.mu.Lock()
	s := c.active[v.Txn]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	c.recordReturnLegLocked(v.Txn, v.TC, v.Region)
	if op, fell := c.applyVoteLocked(s, v.Key, v.Region, v.Accept, v.Reason); fell {
		c.sendClassic(s.id, s.span, []txn.Op{op})
	}
	c.mu.Unlock()
}

// onVoteBatch processes one replica's votes on every option of a proposal
// under a single lock acquisition. Votes are applied in batch order — the
// proposal's submission order — so sinks observe the same event sequence the
// per-option protocol produces. Options whose fast quorum became unreachable
// are re-routed to their masters together, grouped per destination.
func (c *Coordinator) onVoteBatch(b voteBatchMsg) {
	c.mu.Lock()
	s := c.active[b.Txn]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	c.recordReturnLegLocked(b.Txn, b.TC, b.Region)
	var fallbacks []txn.Op
	for _, v := range b.Votes {
		if s.decided {
			// A fatal reject earlier in the batch decided the transaction;
			// the remaining votes are moot, as they would be if they
			// arrived as separate messages.
			break
		}
		if op, fell := c.applyVoteLocked(s, v.Key, b.Region, v.Accept, v.Reason); fell {
			fallbacks = append(fallbacks, op)
		}
	}
	if len(fallbacks) > 0 {
		c.sendClassic(s.id, s.span, fallbacks)
	}
	c.mu.Unlock()
}

// applyVoteLocked folds one replica's vote on one option into the commit
// state: duplicate suppression, quorum/fatality checks, and the resulting
// learn/decide/fallback transition. When the option must fall back to its
// master it is returned with fell=true; the caller sends it (batched with
// any siblings from the same vote batch). Caller holds c.mu.
func (c *Coordinator) applyVoteLocked(s *commitState, key string, region simnet.Region, accept bool, reason RejectReason) (op txn.Op, fell bool) {
	st := s.opt(key)
	if st == nil || st.status != optFast {
		return txn.Op{}, false
	}
	bit, known := c.regionBit(region)
	if !known || st.voted&bit != 0 {
		return txn.Op{}, false
	}
	st.voted |= bit
	if accept {
		st.accepts++
	} else {
		st.rejects++
		if st.reason == ReasonNone {
			st.reason = reason
		}
	}

	// Emit the vote before any learn/decide it triggers, so sinks see
	// vote counts that are consistent with option outcomes.
	elapsed := c.clk.Since(s.start)
	if c.obs != nil {
		c.obs.Vote(region, accept, elapsed)
	}
	s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindVote, Key: key,
		Region: region, Accept: accept, Reason: reason, Elapsed: elapsed})

	n := c.N()
	fq := FastQuorum(n)
	switch {
	case st.accepts >= fq:
		c.learnLocked(s, st, true, ReasonNone)
	case !accept && reason.Fatal():
		c.learnLocked(s, st, false, reason)
	case st.accepts+(n-bits.OnesCount64(st.voted)) < fq:
		// The fast quorum is out of reach. Under EarlyAbort, conflict
		// evidence (a pending or version reject pushed us here) dooms the
		// option now: the master holds the same pendings the replicas
		// voted against, so the classic round-trip would reject too, half
		// an RTT later. Learning the rejection here decides the abort and
		// broadcasts it, which clears this transaction's sibling pendings
		// at every replica — queued dependents stop conflicting against a
		// corpse. Lease/routing rejects still want the classic path.
		if c.cfg.EarlyAbort && (st.reason == ReasonPending || st.reason.Fatal()) {
			c.EarlyAborts++
			c.learnLocked(s, st, false, st.reason)
			return txn.Op{}, false
		}
		// Fall back to the master.
		st.status = optClassic
		st.reason = ReasonNone
		c.Fallbacks++
		if c.obs != nil {
			c.obs.Fallback()
		}
		s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindFallback, Key: key, Elapsed: elapsed})
		return st.op, true
	}
	return txn.Op{}, false
}

// onClassicResult processes a master's verdict for one option (compat wire
// format).
func (c *Coordinator) onClassicResult(r classicResultMsg) {
	c.mu.Lock()
	s := c.active[r.Txn]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	c.recordReturnLegLocked(r.Txn, r.TC, "")
	c.applyClassicResultLocked(s, r.Key, r.Accepted, r.Reason)
	c.mu.Unlock()
}

// onClassicResultBatch processes a master's coalesced verdicts for several
// options of one transaction under a single lock acquisition.
func (c *Coordinator) onClassicResultBatch(b classicResultBatchMsg) {
	c.mu.Lock()
	s := c.active[b.Txn]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	c.recordReturnLegLocked(b.Txn, b.TC, "")
	for _, res := range b.Results {
		if s.decided {
			break
		}
		c.applyClassicResultLocked(s, res.Key, res.Accepted, res.Reason)
	}
	c.mu.Unlock()
}

// applyClassicResultLocked folds one master verdict into the commit state.
// A ReasonNotMaster bounce — the routed-to replica does not hold the key's
// master lease — re-resolves the master through MasterFor (which consults
// the freshest lease view) and retries, a bounded number of times. Caller
// holds c.mu.
func (c *Coordinator) applyClassicResultLocked(s *commitState, key string, accepted bool, reason RejectReason) {
	st := s.opt(key)
	if st == nil || st.status != optClassic {
		return
	}
	if !accepted && reason == ReasonNotMaster && st.retries < maxMasterRetries {
		st.retries++
		c.MasterRedirects++
		c.sendClassic(s.id, s.span, []txn.Op{st.op})
		return
	}
	c.learnLocked(s, st, accepted, reason)
}

// learnLocked finalizes one option and, when conclusive for the whole
// transaction, decides it. Caller holds c.mu.
func (c *Coordinator) learnLocked(s *commitState, st *optState, accepted bool, reason RejectReason) {
	if st.status == optAccepted || st.status == optRejected {
		return
	}
	if accepted {
		st.status = optAccepted
	} else {
		st.status = optRejected
		st.reason = reason
	}
	s.open--

	s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindOptionLearned, Key: st.op.Key,
		Accept: accepted, Reason: reason, Elapsed: c.clk.Since(s.start)})

	if !accepted {
		c.decideLocked(s, false, reasonErr(reason))
		return
	}
	if s.open == 0 {
		c.decideLocked(s, true, nil)
	}
}

// onTimeout aborts a transaction that outlived its commit timeout.
func (c *Coordinator) onTimeout(id txn.ID) {
	c.mu.Lock()
	s := c.active[id]
	if s == nil || s.decided {
		c.mu.Unlock()
		return
	}
	c.Timeouts++
	if c.obs != nil {
		c.obs.Timeout()
	}
	c.decideLocked(s, false, ErrTimeout)
	c.mu.Unlock()
}

// decideLocked records the final decision, broadcasts it to the replicas,
// and notifies the sink. Caller holds c.mu.
func (c *Coordinator) decideLocked(s *commitState, commit bool, err error) {
	if s.decided {
		return
	}
	s.decided = true
	if s.timer != nil {
		s.timer.Stop()
	}
	delete(c.active, s.id)

	d := decideMsg{Txn: s.id, Commit: commit, Options: s.ops}
	if s.span != 0 && c.spans != nil {
		now := c.clk.Now()
		c.spans.Add(obs.Span{
			Txn: s.id, ID: obs.NewSpanID(), Parent: s.span,
			Stage: obs.StageQuorumWait, Region: string(c.Region()),
			Start: s.start, End: now,
		})
		d.TC = TraceCtx{Span: s.span, SentUnixNano: now.UnixNano()}
		d.Coord = c.cfg.Addr
	}
	for _, rep := range c.cfg.Replicas {
		c.cfg.Net.Send(c.cfg.Addr, rep, d)
	}
	if c.obs != nil {
		c.obs.Decided(commit, c.clk.Since(s.start))
	}
	s.sink.Progress(ProgressEvent{Txn: s.id, Kind: KindDecided,
		Accept: commit, Elapsed: c.clk.Since(s.start)})
	s.sink.Decided(s.id, commit, err)
}

// Crash simulates a coordinator process failure: it leaves the network and
// every in-flight transaction fails over to its sink with ErrCrashed. No
// decide message is broadcast for them — the coordinator is the decision
// authority, so an undecided transaction dies with it and its pendings at
// the replicas are left for PendingTTL eviction, exactly as a real crashed
// coordinator would leave them.
func (c *Coordinator) Crash() {
	c.cfg.Net.Deregister(c.cfg.Addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return
	}
	c.crashed = true
	for id, s := range c.active {
		s.decided = true
		if s.timer != nil {
			s.timer.Stop()
		}
		delete(c.active, id)
		if c.obs != nil {
			c.obs.Decided(false, c.clk.Since(s.start))
		}
		s.sink.Progress(ProgressEvent{Txn: id, Kind: KindDecided,
			Accept: false, Elapsed: c.clk.Since(s.start)})
		s.sink.Decided(id, false, ErrCrashed)
	}
}

// Restart rejoins a crashed coordinator to the network. Coordinators keep
// no durable state: recovery is simply re-registration with an empty
// in-flight table (the crash already failed every open transaction).
func (c *Coordinator) Restart() {
	c.mu.Lock()
	c.crashed = false
	c.mu.Unlock()
	c.cfg.Net.Register(c.cfg.Addr, c.recv)
}

// Crashed reports whether the coordinator is currently down.
func (c *Coordinator) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// reasonErr maps a rejection reason to the error surfaced to applications.
func reasonErr(r RejectReason) error {
	switch r {
	case ReasonBound:
		return ErrBound
	case ReasonVersion, ReasonPending, ReasonClassicOwned, ReasonDecided, ReasonNotMaster:
		return ErrConflict
	case ReasonBallot:
		return ErrAmbiguous
	default:
		return ErrConflict
	}
}
