package mdcc

import "sync"

// recordStripes is the stripe count of the replica's record storage. 64
// stripes keep a 1M-key keyspace from serializing every record touch on
// one mutex: seeding, local reads, and snapshot scans each contend only
// for the stripe a key hashes to, not the whole store.
const recordStripes = 64

// recordStore is the replica's key → record map, partitioned into
// independently-locked stripes. Each stripe's RWMutex guards both the
// stripe's map structure and the contents of every record in it, so
// holding the stripe lock is necessary and sufficient to read or mutate a
// record. Protocol handlers additionally hold the replica's protocol
// mutex (r.mu) around multi-record critical sections, which preserves the
// pre-stripe serialization of proposals against decides; the lock order
// is always r.mu before stripe lock, and never two stripe locks at once.
type recordStore struct {
	stripes [recordStripes]recordStripe
}

type recordStripe struct {
	mu sync.RWMutex
	m  map[string]*record
}

func newRecordStore() *recordStore {
	s := &recordStore{}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]*record)
	}
	return s
}

// stripeOf hashes key to its stripe (FNV-1a, folded to 6 bits).
func stripeOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return (h ^ h>>16) % recordStripes
}

// acquire write-locks key's stripe and returns the record, creating it if
// missing. The caller must Unlock the returned stripe's mu when done
// touching the record.
func (s *recordStore) acquire(key string) (*record, *recordStripe) {
	sp := &s.stripes[stripeOf(key)]
	sp.mu.Lock()
	rc := sp.m[key]
	if rc == nil {
		rc = &record{}
		sp.m[key] = rc
	}
	return rc, sp
}

// peek read-locks key's stripe and returns the record, or nil if the key
// does not exist. The caller must RUnlock the returned stripe's mu.
func (s *recordStore) peek(key string) (*record, *recordStripe) {
	sp := &s.stripes[stripeOf(key)]
	sp.mu.RLock()
	return sp.m[key], sp
}

// forEach visits every record one stripe at a time under that stripe's
// read lock. The view is per-stripe consistent, not a global cut —
// callers that need cross-key atomicity (none do today: anti-entropy and
// snapshots reconcile per key by version) must serialize writers
// themselves.
func (s *recordStore) forEach(f func(key string, rc *record)) {
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.RLock()
		for k, rc := range sp.m {
			f(k, rc)
		}
		sp.mu.RUnlock()
	}
}

// seedAll bulk-installs records for keys, taking each stripe lock once
// instead of once per key: indices are bucket-sorted by stripe (CSR
// layout, two passes, one flat order array), then each stripe is locked
// and all its keys inserted back to back. Fresh records come from one
// contiguous array. apply initializes (or re-initializes) keys[i]'s
// record; it runs under the key's stripe lock.
func (s *recordStore) seedAll(keys []string, apply func(rc *record, i int)) {
	n := len(keys)
	if n == 0 {
		return
	}
	stripe := make([]uint8, n)
	var count [recordStripes]int32
	for i, k := range keys {
		sp := uint8(stripeOf(k))
		stripe[i] = sp
		count[sp]++
	}
	var off [recordStripes + 1]int32
	for i := 0; i < recordStripes; i++ {
		off[i+1] = off[i] + count[i]
	}
	order := make([]int32, n)
	pos := off
	for i := range keys {
		sp := stripe[i]
		order[pos[sp]] = int32(i)
		pos[sp]++
	}
	recs := make([]record, n)
	for spi := 0; spi < recordStripes; spi++ {
		lo, hi := off[spi], off[spi+1]
		if lo == hi {
			continue
		}
		sp := &s.stripes[spi]
		sp.mu.Lock()
		for _, idx := range order[lo:hi] {
			key := keys[idx]
			rc := sp.m[key]
			if rc == nil {
				rc = &recs[idx]
				sp.m[key] = rc
			}
			apply(rc, int(idx))
		}
		sp.mu.Unlock()
	}
}

// reserve pre-sizes every stripe for about n total keys ahead of a bulk
// seed, so incremental map growth doesn't dominate setup. Only cold
// (empty) stripes are replaced.
func (s *recordStore) reserve(n int) {
	if n <= 0 {
		return
	}
	per := n/recordStripes + 1
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		if len(sp.m) == 0 {
			sp.m = make(map[string]*record, per)
		}
		sp.mu.Unlock()
	}
}

// reset drops every record (crash / restore).
func (s *recordStore) reset(hint int) {
	per := hint/recordStripes + 1
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		sp.m = make(map[string]*record, per)
		sp.mu.Unlock()
	}
}

// count returns the total number of records across stripes.
func (s *recordStore) count() int {
	n := 0
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.RLock()
		n += len(sp.m)
		sp.mu.RUnlock()
	}
	return n
}
