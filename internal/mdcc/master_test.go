package mdcc

import (
	"testing"
	"time"

	"planet/internal/latency"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// newLoneReplica builds a replica whose peers exist only as addresses, so
// handler methods can be driven directly with synthetic messages and the
// replica's outbound messages vanish harmlessly.
func newLoneReplica(t *testing.T, n int) *Replica {
	t.Helper()
	m := simnet.NewMatrix(latency.Constant(time.Microsecond))
	net, err := simnet.New(simnet.Config{Latency: m, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	peers := make([]simnet.Addr, n)
	for i := range peers {
		peers[i] = simnet.Addr{Region: simnet.Region(string(rune('a' + i))), Name: "replica"}
	}
	return NewReplica(ReplicaConfig{Net: net, Addr: peers[0], Peers: peers})
}

func regionOf(i int) simnet.Region { return simnet.Region(string(rune('a' + i))) }

func TestMasterPhase1TakesOwnership(t *testing.T) {
	r := newLoneReplica(t, 5)
	coord := simnet.Addr{Region: "a", Name: "coord"}

	r.onClassicPropose(classicProposeMsg{Txn: 1, Coord: coord, Option: setOp("k", 0)})

	r.mu.Lock()
	ks := r.masters["k"]
	if ks == nil || ks.p1 == nil || ks.leased {
		t.Fatalf("phase1 not started: %+v", ks)
	}
	ballot := ks.ballot
	if ballot == 0 {
		t.Fatal("ballot not advanced")
	}
	// Self-promise happened synchronously.
	if r.rec("k").promised != ballot {
		t.Errorf("self promise %d, want %d", r.rec("k").promised, ballot)
	}
	r.mu.Unlock()

	// Two more OK phase-1b responses reach the classic quorum of 3.
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(1)})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(2)})

	r.mu.Lock()
	defer r.mu.Unlock()
	if !ks.leased || ks.p1 != nil {
		t.Fatalf("ownership not taken: leased=%v", ks.leased)
	}
	// The queued client proposal was sequenced: it is pending at the
	// master and in flight.
	if ks.inflight[1] == nil {
		t.Fatal("queued proposal not sequenced after phase1")
	}
	if got := len(r.rec("k").pending); got != 1 {
		t.Errorf("master pendings=%d, want 1", got)
	}
}

// TestMasterRecoveryReproposesPossiblyChosen is the heart of coordinated
// Fast Paxos recovery: an option reported by >= recoveryThreshold replicas
// in phase 1 may have been fast-chosen and must be re-proposed at the new
// ballot before any competing client option is considered.
func TestMasterRecoveryReproposesPossiblyChosen(t *testing.T) {
	r := newLoneReplica(t, 5) // threshold = 2
	coord := simnet.Addr{Region: "a", Name: "coord"}

	// A client proposal for txn 7 arrives and starts phase 1.
	r.onClassicPropose(classicProposeMsg{Txn: 7, Coord: coord, Option: setOp("k", 0)})
	r.mu.Lock()
	ballot := r.masters["k"].ballot
	r.mu.Unlock()

	// Phase-1b responses report a conflicting fast-ballot option (txn 42)
	// pending at two replicas: possibly chosen.
	ghost := pendingSnapshot{Txn: 42, Option: setOp("k", 0), Ballot: 0}
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(1),
		Pending: []pendingSnapshot{ghost}})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(2),
		Pending: []pendingSnapshot{ghost}})

	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.masters["k"]
	if !ks.leased {
		t.Fatal("phase1 incomplete")
	}
	// txn 42 must be re-proposed (in flight at the master)...
	if ks.inflight[42] == nil {
		t.Fatal("possibly-chosen option not re-proposed")
	}
	if r.RecoveryRuns == 0 {
		t.Error("recovery not counted")
	}
	// ...and the client's conflicting txn 7 must NOT be in flight: it was
	// rejected against the recovered pending.
	if ks.inflight[7] != nil {
		t.Error("conflicting client option proposed over a possibly-chosen one")
	}
}

func TestMasterRecoveryIgnoresBelowThreshold(t *testing.T) {
	r := newLoneReplica(t, 5)
	coord := simnet.Addr{Region: "a", Name: "coord"}

	r.onClassicPropose(classicProposeMsg{Txn: 7, Coord: coord, Option: setOp("k", 0)})
	r.mu.Lock()
	ballot := r.masters["k"].ballot
	r.mu.Unlock()

	// The ghost option appears only once: it cannot have been fast-chosen
	// (max accepts 1 + (5 - promised quorum 3) = 3 < fastQuorum 4).
	ghost := pendingSnapshot{Txn: 42, Option: setOp("k", 0), Ballot: 0}
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(1),
		Pending: []pendingSnapshot{ghost}})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(2)})

	r.mu.Lock()
	defer r.mu.Unlock()
	ks := r.masters["k"]
	if ks.inflight[42] != nil {
		t.Error("below-threshold option re-proposed")
	}
	if ks.inflight[7] == nil {
		t.Error("client option not sequenced")
	}
}

func TestMasterPhase2QuorumResolution(t *testing.T) {
	r := newLoneReplica(t, 5)
	coord := simnet.Addr{Region: "a", Name: "coord"}

	r.onClassicPropose(classicProposeMsg{Txn: 9, Coord: coord, Option: setOp("k", 0)})
	r.mu.Lock()
	ballot := r.masters["k"].ballot
	r.mu.Unlock()
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(1)})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(2)})

	// Master already counts itself (1 accept); one more phase-2b reaches
	// nothing, two reach the classic quorum of 3.
	r.onPhase2b(phase2bMsg{Txn: 9, Key: "k", Ballot: ballot, Accept: true, Region: regionOf(1)})
	r.mu.Lock()
	mo := r.masters["k"].inflight[9]
	done := mo.done
	r.mu.Unlock()
	if done {
		t.Fatal("quorum declared with 2 of 3 accepts")
	}
	r.onPhase2b(phase2bMsg{Txn: 9, Key: "k", Ballot: ballot, Accept: true, Region: regionOf(2)})
	r.mu.Lock()
	defer r.mu.Unlock()
	if !mo.done {
		t.Fatal("quorum not declared with 3 accepts")
	}
}

func TestMasterStaleBallotPhase1bIgnored(t *testing.T) {
	r := newLoneReplica(t, 5)
	coord := simnet.Addr{Region: "a", Name: "coord"}
	r.onClassicPropose(classicProposeMsg{Txn: 1, Coord: coord, Option: setOp("k", 0)})
	r.mu.Lock()
	ballot := r.masters["k"].ballot
	r.mu.Unlock()

	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot + 7, OK: true, Region: regionOf(1)})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: false, Region: regionOf(2)})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(1)})
	r.onPhase1b(phase1bMsg{Key: "k", Ballot: ballot, OK: true, Region: regionOf(1)}) // dup region

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.masters["k"].leased {
		t.Error("leased from stale/duplicate/nack responses")
	}
}

func TestAcceptorPhase1aPromise(t *testing.T) {
	r := newLoneReplica(t, 5)
	master := simnet.Addr{Region: "b", Name: "replica"}

	r.onPhase1a(phase1aMsg{Key: "k", Ballot: 3, Master: master})
	r.mu.Lock()
	if r.rec("k").promised != 3 {
		t.Errorf("promised=%d", r.rec("k").promised)
	}
	r.mu.Unlock()

	// A lower ballot must not regress the promise.
	r.onPhase1a(phase1aMsg{Key: "k", Ballot: 2, Master: master})
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec("k").promised != 3 {
		t.Errorf("promise regressed to %d", r.rec("k").promised)
	}
}

func TestAcceptorPhase2aObeysBallot(t *testing.T) {
	r := newLoneReplica(t, 5)
	master := simnet.Addr{Region: "b", Name: "replica"}

	// Promise at 5; a phase-2a at 4 must be refused (no pending added).
	r.onPhase1a(phase1aMsg{Key: "k", Ballot: 5, Master: master})
	r.onPhase2a(phase2aMsg{Txn: 3, Key: "k", Ballot: 4, Option: setOp("k", 0), Master: master})
	if r.PendingCount("k") != 0 {
		t.Error("stale-ballot phase2a accepted")
	}
	// At 5 it is accepted.
	r.onPhase2a(phase2aMsg{Txn: 3, Key: "k", Ballot: 5, Option: setOp("k", 0), Master: master})
	if r.PendingCount("k") != 1 {
		t.Error("current-ballot phase2a refused")
	}
	// A higher-ballot conflicting phase2a evicts the lower one.
	r.onPhase2a(phase2aMsg{Txn: 4, Key: "k", Ballot: 6, Option: setOp("k", 0), Master: master})
	r.mu.Lock()
	defer r.mu.Unlock()
	rc := r.rec("k")
	if len(rc.pending) != 1 || rc.pending[0].txn != 4 {
		t.Errorf("eviction failed: %+v", rc.pending)
	}
}

func TestReplicaFastVoteOnDecidedTxn(t *testing.T) {
	r := newLoneReplica(t, 5)
	coord := simnet.Addr{Region: "a", Name: "coord"}

	// Decide arrives before the proposal (reordering): the late proposal
	// must not plant a pending.
	r.onDecide(decideMsg{Txn: 11, Commit: false, Options: []txn.Op{setOp("k", 0)}})
	r.onPropose(proposeMsg{Txn: 11, Coord: coord, Options: []txn.Op{setOp("k", 0)}})
	if r.PendingCount("k") != 0 {
		t.Error("decided txn re-planted a pending option")
	}
	// And the decide is idempotent.
	r.onDecide(decideMsg{Txn: 11, Commit: false, Options: []txn.Op{setOp("k", 0)}})
	if r.DecidedCount() != 1 {
		t.Errorf("decided count %d", r.DecidedCount())
	}
}

func TestDecideAppliesWithoutPriorProposal(t *testing.T) {
	r := newLoneReplica(t, 5)
	r.SeedInt("n", 10, 0, 100)
	// The proposal was lost, but the decide carries the options: the
	// replica must still converge.
	r.onDecide(decideMsg{Txn: 12, Commit: true, Options: []txn.Op{addOp("n", 5)}})
	v, ok := r.ReadLocal("n")
	if !ok || v.Int != 15 || v.Version != 1 {
		t.Errorf("value %+v", v)
	}
}
