package mdcc

import (
	"math/bits"
	"sort"
	"time"

	"planet/internal/simnet"
)

// Master leases.
//
// Static mastership makes the per-record master a single point of write
// unavailability: a dead master leaves its keys unwritable until the process
// returns. Leases fix that. The key space is partitioned into keyspaces —
// one per default master region — and each keyspace has a lease record
// replicated at every replica: (epoch, holder, expiry). A replica masters a
// keyspace's keys only while it holds the keyspace's lease, and every
// master-arbitrated message it sends carries the lease epoch, so acceptors
// fence out messages from deposed masters (stale epoch < granted epoch).
//
// Lease grant, renewal, and takeover run as a single classic-Paxos-style
// round over the lease record, with the epoch playing the ballot: an
// acceptor grants each epoch to at most one holder, and grants a *new*
// epoch only when the current lease has lapsed on its own clock (or to the
// current holder itself), so a majority of grants proves that exactly one
// master exists per epoch — even across partitions, where at most one side
// has the majority. Renewal repeats the round at the held epoch, extending
// expiry. Takeover claims epoch+1 after the incumbent's lease expires
// unrenewed.
//
// Fencing is belt and braces: besides the explicit epoch check, a leased
// master folds its epoch into the high bits of its per-key Paxos ballots
// (see leaseBallot), so a new master's ballots dominate a deposed one's
// even where the epoch field is absent.
//
// Epoch and holder changes are WAL-persisted, so a restarted master replays
// the last epoch it held — its messages then carry that stale epoch and are
// fenced — and learns it was deposed the moment any peer reports a higher
// epoch.

// leaseBallotShift positions the lease epoch in the high bits of classic
// ballots, so any ballot issued under epoch E+1 dominates every ballot
// issued under epoch E regardless of per-key sequence numbers.
const leaseBallotShift = 32

// LeaseConfig enables epoch-fenced master leases on a replica.
type LeaseConfig struct {
	// Term is how long one grant is valid (already time-scaled). The
	// holder renews well inside the term; takeover waits the term out.
	Term time.Duration
	// Keyspaces lists every keyspace of the deployment, named after its
	// default master region (one entry per region under hash mastership, a
	// single entry under a static master region). Sorted order is the
	// takeover-stagger rank order.
	Keyspaces []simnet.Region
	// KeyspaceOf maps a key to its keyspace. Required.
	KeyspaceOf func(key string) simnet.Region
	// OnEvent, when non-nil, observes lease transitions (acquire, renew,
	// takeover, deposal). Called without locks held; must not call back
	// into the replica synchronously from a way that re-enters locks it
	// holds, and should be fast.
	OnEvent func(LeaseEvent)
}

// LeaseEventKind enumerates lease transitions.
type LeaseEventKind uint8

const (
	// LeaseAcquired: a fresh lease was won for a keyspace with no prior
	// holder.
	LeaseAcquired LeaseEventKind = iota
	// LeaseRenewed: the holder extended its current epoch.
	LeaseRenewed
	// LeaseTakeover: this replica claimed a keyspace away from another
	// (dead or partitioned) holder at a higher epoch.
	LeaseTakeover
	// LeaseDeposed: this replica learned a higher epoch is held elsewhere;
	// its own lease is fenced from now on.
	LeaseDeposed
)

// String implements fmt.Stringer.
func (k LeaseEventKind) String() string {
	switch k {
	case LeaseAcquired:
		return "acquired"
	case LeaseRenewed:
		return "renewed"
	case LeaseTakeover:
		return "takeover"
	case LeaseDeposed:
		return "deposed"
	default:
		return "lease-event"
	}
}

// LeaseEvent is one lease transition observed at a replica.
type LeaseEvent struct {
	Kind     LeaseEventKind
	Keyspace simnet.Region
	Epoch    uint64
	// Holder is the lease holder after the transition.
	Holder simnet.Region
	// Prev is the holder before the transition ("" if none).
	Prev simnet.Region
}

// LeaseInfo is one keyspace's lease as seen by a replica (the admin
// surface's row format).
type LeaseInfo struct {
	Keyspace string    `json:"keyspace"`
	Epoch    uint64    `json:"epoch"`
	Holder   string    `json:"holder"`
	Expiry   time.Time `json:"expiry"`
	// Held reports whether this replica holds the lease (unexpired, at the
	// granted epoch).
	Held bool `json:"held"`
	// HeldEpoch is the last epoch this replica held, even if it has since
	// expired or been deposed (what a restarted master replays from its
	// WAL).
	HeldEpoch uint64 `json:"held_epoch,omitempty"`
}

// leaseState is a replica's state for one keyspace's lease: the
// acceptor-side granted view, the holder-side held lease, and any round in
// flight.
type leaseState struct {
	// Granted view (acceptor role): the highest epoch this replica has
	// granted, to whom, and until when on this replica's clock.
	epoch  uint64
	holder simnet.Region
	expiry time.Time

	// Held lease (holder role): the last epoch this replica won a majority
	// for and its validity. heldEpoch survives deposal — a deposed master
	// keeps stamping it so peers can fence its straggler messages.
	heldEpoch  uint64
	heldExpiry time.Time

	// deposedAt dedups deposal events: the highest foreign epoch already
	// reported to the observer.
	deposedAt uint64

	round *leaseRound
}

// leaseRound is one in-flight grant/renew/takeover round.
type leaseRound struct {
	epoch   uint64
	expiry  time.Time
	grants  uint64 // bitmask over peer indices (see regionBit)
	nacks   uint64 // acceptors that rejected this round's epoch
	done    bool
	started time.Time
	// prevEpoch/prevHolder snapshot the granted view before the round's
	// self-grant, for classifying the win (acquire vs renew vs takeover).
	prevEpoch  uint64
	prevHolder simnet.Region
	// best* track the highest current view reported by a rejecting
	// acceptor. When enough nacks make a majority impossible, the round
	// fails and the proposer rolls its provisional self-grant back to this
	// view — so a restarted deposed master converges on the live holder
	// instead of proposing ever-higher epochs against an unexpired lease.
	bestEpoch  uint64
	bestHolder simnet.Region
	bestExpiry time.Time
}

// leaseRequestMsg asks every replica to grant (or extend) a keyspace lease.
type leaseRequestMsg struct {
	Keyspace        simnet.Region
	Epoch           uint64
	Holder          simnet.Region
	ExpiresUnixNano int64
	From            simnet.Addr
}

// leaseGrantMsg is an acceptor's reply: whether it granted the requested
// epoch, plus its current granted view so rejected requesters adopt the
// real holder (and learn they were deposed).
type leaseGrantMsg struct {
	Keyspace           simnet.Region
	Epoch              uint64
	OK                 bool
	CurEpoch           uint64
	CurHolder          simnet.Region
	CurExpiresUnixNano int64
	Region             simnet.Region
}

// EnableLeases switches the replica to leased mastership. Wire it once at
// startup, before traffic; the lease manager (internal/cluster) then drives
// acquisition and renewal.
func (r *Replica) EnableLeases(cfg LeaseConfig) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := cfg
	r.leaseCfg = &c
	if r.leases == nil {
		r.leases = make(map[simnet.Region]*leaseState, len(cfg.Keyspaces))
	}
}

// LeasesEnabled reports whether leased mastership is on.
func (r *Replica) LeasesEnabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaseCfg != nil
}

// leaseFor returns (creating if needed) the lease state for keyspace ks.
// Caller holds r.mu.
func (r *Replica) leaseFor(ks simnet.Region) *leaseState {
	ls := r.leases[ks]
	if ls == nil {
		ls = &leaseState{}
		r.leases[ks] = ls
	}
	return ls
}

// holdsLeaseLocked reports whether this replica currently masters keyspace
// ks: it won the most recent epoch it knows of and the grant is unexpired.
// Caller holds r.mu.
func (r *Replica) holdsLeaseLocked(ks simnet.Region, now time.Time) bool {
	ls := r.leases[ks]
	return ls != nil && ls.heldEpoch != 0 && ls.heldEpoch >= ls.epoch && now.Before(ls.heldExpiry)
}

// leaseEpochLocked returns the epoch this replica stamps on master-
// arbitrated messages for key: the last epoch it held for the key's
// keyspace (stale after deposal — deliberately, so peers fence it), or 0
// when leases are off. Caller holds r.mu.
func (r *Replica) leaseEpochLocked(key string) uint64 {
	if r.leaseCfg == nil {
		return 0
	}
	ls := r.leases[r.leaseCfg.KeyspaceOf(key)]
	if ls == nil {
		return 0
	}
	return ls.heldEpoch
}

// leaseFencedLocked reports whether a master-arbitrated message stamped
// with epoch must be rejected: the sender's lease epoch is older than the
// one this acceptor has granted for the key's keyspace. Unstamped messages
// (epoch 0: leases off, or a pre-lease sender) pass. Caller holds r.mu.
func (r *Replica) leaseFencedLocked(key string, epoch uint64) bool {
	if epoch == 0 || r.leaseCfg == nil {
		return false
	}
	ls := r.leases[r.leaseCfg.KeyspaceOf(key)]
	return ls != nil && epoch < ls.epoch
}

// grantLocked is the acceptor rule: grant each epoch to at most one holder,
// and a new epoch only when the current lease has lapsed on this replica's
// clock or the requester already holds it. An equal-epoch request from the
// current holder is a renewal and extends expiry. Returns whether the
// request was granted; epoch/holder changes are WAL-persisted. Caller holds
// r.mu.
func (r *Replica) grantLocked(ls *leaseState, m leaseRequestMsg, now time.Time) bool {
	switch {
	case m.Epoch == 0 || m.Epoch < ls.epoch:
		return false
	case m.Epoch == ls.epoch:
		if ls.holder != m.Holder {
			return false
		}
		ls.expiry = time.Unix(0, m.ExpiresUnixNano)
		return true
	default:
		if ls.epoch != 0 && ls.holder != m.Holder && now.Before(ls.expiry) {
			return false
		}
		ls.epoch, ls.holder = m.Epoch, m.Holder
		ls.expiry = time.Unix(0, m.ExpiresUnixNano)
		r.walLeaseLocked(m.Keyspace, ls.epoch, ls.holder, false, now)
		return true
	}
}

// walLeaseLocked persists a lease transition so a restarted replica knows
// the last epoch it granted — and, for held=true, the last epoch it held.
// Caller holds r.mu.
func (r *Replica) walLeaseLocked(ks simnet.Region, epoch uint64, holder simnet.Region, held bool, now time.Time) {
	if r.cfg.WAL == nil {
		return
	}
	r.cfg.WAL.Append(Entry{At: now, Lease: &LeaseRecord{
		Keyspace: string(ks), Epoch: epoch, Holder: string(holder), Held: held,
	}})
}

// applyLeaseEntryLocked rebuilds lease state from one replayed WAL entry.
// Replayed leases come back *expired* (zero expiry): clocks are not
// trustworthy across a restart, so the replica re-acquires before
// mastering, and a deposed master discovers the higher epoch the moment it
// tries. Caller holds r.mu.
func (r *Replica) applyLeaseEntryLocked(l *LeaseRecord) {
	if r.leases == nil {
		r.leases = make(map[simnet.Region]*leaseState)
	}
	ls := r.leaseFor(simnet.Region(l.Keyspace))
	if l.Epoch >= ls.epoch {
		ls.epoch, ls.holder = l.Epoch, simnet.Region(l.Holder)
		ls.expiry = time.Time{}
	}
	if l.Held && l.Epoch >= ls.heldEpoch {
		ls.heldEpoch = l.Epoch
		ls.heldExpiry = time.Time{}
	}
}

// AcquireLease starts a lease round for keyspace ks: a renewal at the held
// epoch while the lease is live, otherwise a claim of the next epoch
// (bootstrap or takeover). No-op while a fresh round is already in flight.
// The round completes asynchronously when a majority grants.
func (r *Replica) AcquireLease(ks simnet.Region) {
	r.mu.Lock()
	if r.leaseCfg == nil || r.crashed {
		r.mu.Unlock()
		return
	}
	now := r.clk.Now()
	ls := r.leaseFor(ks)
	if ls.round != nil && !ls.round.done && now.Sub(ls.round.started) < r.leaseCfg.Term {
		r.mu.Unlock()
		return
	}
	next := ls.epoch + 1
	if ls.heldEpoch >= next {
		next = ls.heldEpoch + 1
	}
	if r.holdsLeaseLocked(ks, now) {
		next = ls.heldEpoch // renewal
	}
	round := &leaseRound{
		epoch: next, expiry: now.Add(r.leaseCfg.Term), started: now,
		prevEpoch: ls.epoch, prevHolder: ls.holder,
	}
	ls.round = round
	req := leaseRequestMsg{Keyspace: ks, Epoch: next, Holder: r.Region(),
		ExpiresUnixNano: round.expiry.UnixNano(), From: r.cfg.Addr}
	// Self-grant synchronously; peers answer over the wire. Our own
	// acceptor can refuse (an unexpired lease granted elsewhere) — that
	// counts as a nack like any other.
	bit, _ := r.regionBit(r.Region())
	if r.grantLocked(ls, req, now) {
		round.grants |= bit
	} else {
		round.nacks |= bit
		round.bestEpoch, round.bestHolder, round.bestExpiry = ls.epoch, ls.holder, ls.expiry
	}
	var out []envelope
	for _, peer := range r.cfg.Peers {
		if peer == r.cfg.Addr {
			continue
		}
		out = append(out, envelope{peer, req})
	}
	var evs []LeaseEvent
	evs, out = r.checkLeaseQuorumLocked(ks, ls, out, now)
	r.mu.Unlock()
	r.flush(out)
	r.fireLeaseEvents(evs)
}

// onLeaseRequest is the acceptor side of a lease round.
func (r *Replica) onLeaseRequest(m leaseRequestMsg) {
	r.mu.Lock()
	if r.leaseCfg == nil {
		r.mu.Unlock()
		return
	}
	now := r.clk.Now()
	ls := r.leaseFor(m.Keyspace)
	evs := r.adoptDeposalLocked(ls, m.Keyspace)
	ok := r.grantLocked(ls, m, now)
	if ok {
		evs = append(evs, r.adoptDeposalLocked(ls, m.Keyspace)...)
	}
	resp := leaseGrantMsg{Keyspace: m.Keyspace, Epoch: m.Epoch, OK: ok,
		CurEpoch: ls.epoch, CurHolder: ls.holder,
		CurExpiresUnixNano: ls.expiry.UnixNano(), Region: r.Region()}
	r.mu.Unlock()
	r.send(m.From, resp)
	r.fireLeaseEvents(evs)
}

// onLeaseGrant is the requester side of grant collection. Every reply also
// carries the acceptor's granted view; a higher epoch there is adopted, so
// routing converges on the real holder and a deposed master finds out.
func (r *Replica) onLeaseGrant(m leaseGrantMsg) {
	r.mu.Lock()
	if r.leaseCfg == nil {
		r.mu.Unlock()
		return
	}
	now := r.clk.Now()
	ls := r.leaseFor(m.Keyspace)
	var evs []LeaseEvent
	if m.CurEpoch > ls.epoch {
		ls.epoch, ls.holder = m.CurEpoch, m.CurHolder
		ls.expiry = time.Unix(0, m.CurExpiresUnixNano)
		r.walLeaseLocked(m.Keyspace, ls.epoch, ls.holder, false, now)
		evs = r.adoptDeposalLocked(ls, m.Keyspace)
	}
	var out []envelope
	round := ls.round
	if round != nil && !round.done && m.Epoch == round.epoch {
		if m.OK {
			if bit, known := r.regionBit(m.Region); known {
				round.grants |= bit
			}
			evs2, out2 := r.checkLeaseQuorumLocked(m.Keyspace, ls, nil, now)
			evs = append(evs, evs2...)
			out = out2
		} else {
			if bit, known := r.regionBit(m.Region); known {
				round.nacks |= bit
			}
			if m.CurEpoch > round.bestEpoch {
				round.bestEpoch, round.bestHolder = m.CurEpoch, m.CurHolder
				round.bestExpiry = time.Unix(0, m.CurExpiresUnixNano)
			}
			evs = append(evs, r.failLeaseRoundLocked(m.Keyspace, ls)...)
		}
	}
	r.mu.Unlock()
	r.flush(out)
	r.fireLeaseEvents(evs)
}

// failLeaseRoundLocked closes a round once enough acceptors have rejected
// it that a majority of grants is impossible, rolling the proposer's
// provisional self-grant back to the highest view the rejectors reported.
// The rollback only lowers a promise this replica made to itself for a
// round that can no longer win — it never claims the failed epoch, and a
// future round proposes above both views — so grant-at-most-one-holder
// still holds per epoch. Caller holds r.mu.
func (r *Replica) failLeaseRoundLocked(ks simnet.Region, ls *leaseState) []LeaseEvent {
	round := ls.round
	if round == nil || round.done {
		return nil
	}
	n := len(r.cfg.Peers)
	if n-bits.OnesCount64(round.nacks) >= ClassicQuorum(n) {
		return nil // a majority is still possible
	}
	round.done = true
	ls.round = nil
	if round.bestEpoch != 0 && ls.epoch == round.epoch && ls.holder == r.Region() && round.bestEpoch < ls.epoch {
		ls.epoch, ls.holder, ls.expiry = round.bestEpoch, round.bestHolder, round.bestExpiry
		return r.adoptDeposalLocked(ls, ks)
	}
	return nil
}

// adoptDeposalLocked emits a deposal event when the granted view moved past
// an epoch this replica held. The held epoch is kept — a deposed master
// must keep stamping it so peers can fence its stragglers. Caller holds
// r.mu.
func (r *Replica) adoptDeposalLocked(ls *leaseState, ks simnet.Region) []LeaseEvent {
	if ls.heldEpoch == 0 || ls.epoch <= ls.heldEpoch || ls.holder == r.Region() || ls.deposedAt == ls.epoch {
		return nil
	}
	ls.deposedAt = ls.epoch
	return []LeaseEvent{{Kind: LeaseDeposed, Keyspace: ks, Epoch: ls.epoch,
		Holder: ls.holder, Prev: r.Region()}}
}

// checkLeaseQuorumLocked resolves an in-flight round once a majority has
// granted: the replica now holds the lease until the round's expiry. The
// win is classified for observers (acquire, renew, takeover) and held
// transitions are WAL-persisted. Caller holds r.mu.
func (r *Replica) checkLeaseQuorumLocked(ks simnet.Region, ls *leaseState, out []envelope, now time.Time) ([]LeaseEvent, []envelope) {
	round := ls.round
	if round == nil || round.done || bits.OnesCount64(round.grants) < ClassicQuorum(len(r.cfg.Peers)) {
		return nil, out
	}
	round.done = true
	ls.round = nil

	renewal := round.epoch == ls.heldEpoch
	ls.heldEpoch = round.epoch
	ls.heldExpiry = round.expiry

	ev := LeaseEvent{Keyspace: ks, Epoch: round.epoch, Holder: r.Region(), Prev: round.prevHolder}
	switch {
	case renewal:
		ev.Kind = LeaseRenewed
	case round.prevEpoch == 0 || round.prevHolder == r.Region() || round.prevHolder == "":
		ev.Kind = LeaseAcquired
		r.walLeaseLocked(ks, round.epoch, r.Region(), true, now)
	default:
		ev.Kind = LeaseTakeover
		r.LeaseTakeovers++
		r.walLeaseLocked(ks, round.epoch, r.Region(), true, now)
	}
	return []LeaseEvent{ev}, out
}

// fireLeaseEvents delivers staged lease events to the configured observer
// (outside r.mu).
func (r *Replica) fireLeaseEvents(evs []LeaseEvent) {
	if len(evs) == 0 {
		return
	}
	r.mu.Lock()
	cfg := r.leaseCfg
	r.mu.Unlock()
	if cfg == nil || cfg.OnEvent == nil {
		return
	}
	for _, ev := range evs {
		cfg.OnEvent(ev)
	}
}

// HoldsLease reports whether this replica currently masters keyspace ks.
func (r *Replica) HoldsLease(ks simnet.Region) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.holdsLeaseLocked(ks, r.clk.Now())
}

// LeaseView returns this replica's granted view of keyspace ks: the
// current holder, epoch, and expiry (zero values when no lease was ever
// granted).
func (r *Replica) LeaseView(ks simnet.Region) (holder simnet.Region, epoch uint64, expiry time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := r.leases[ks]
	if ls == nil {
		return "", 0, time.Time{}
	}
	return ls.holder, ls.epoch, ls.expiry
}

// LeaseHolder returns the region this replica believes holds keyspace ks's
// lease. ok is false when no lease has ever been granted (callers fall back
// to the default assignment).
func (r *Replica) LeaseHolder(ks simnet.Region) (simnet.Region, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := r.leases[ks]
	if ls == nil || ls.epoch == 0 {
		return "", false
	}
	return ls.holder, true
}

// LeaseTakeoverCount reports how many keyspace leases this replica has
// taken over from another holder (the planet_lease_takeovers_total feed).
func (r *Replica) LeaseTakeoverCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.LeaseTakeovers
}

// LeaseTable snapshots every keyspace lease this replica knows of, sorted
// by keyspace (the /v1/net/lease admin surface).
func (r *Replica) LeaseTable() []LeaseInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clk.Now()
	out := make([]LeaseInfo, 0, len(r.leases))
	for ks, ls := range r.leases {
		out = append(out, LeaseInfo{
			Keyspace: string(ks), Epoch: ls.epoch, Holder: string(ls.holder),
			Expiry: ls.expiry, Held: r.holdsLeaseLocked(ks, now), HeldEpoch: ls.heldEpoch,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Keyspace < out[j].Keyspace })
	return out
}
