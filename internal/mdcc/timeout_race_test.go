package mdcc

// White-box tests for the coordinator's timeout/late-vote race: a vote that
// arrives after onTimeout (or after the decision, in general) must not flip
// the decision, re-notify the sink, or double-count in the observer stats.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"planet/internal/simnet"
	"planet/internal/txn"
)

// recSink records progress events and decisions for white-box assertions.
type recSink struct {
	mu      sync.Mutex
	events  []ProgressEvent
	decided int
	commit  bool
	err     error
}

func (s *recSink) Progress(e ProgressEvent) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *recSink) Decided(_ txn.ID, committed bool, err error) {
	s.mu.Lock()
	s.decided++
	s.commit = committed
	s.err = err
	s.mu.Unlock()
}

func (s *recSink) kinds() map[ProgressKind]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ProgressKind]int)
	for _, e := range s.events {
		out[e.Kind]++
	}
	return out
}

// tallyObserver counts CoordObserver callbacks.
type tallyObserver struct {
	mu    sync.Mutex
	tally struct {
		votes, fallbacks, timeouts, decisions int
	}
}

func (o *tallyObserver) Vote(simnet.Region, bool, time.Duration) {
	o.mu.Lock()
	o.tally.votes++
	o.mu.Unlock()
}

func (o *tallyObserver) Fallback() {
	o.mu.Lock()
	o.tally.fallbacks++
	o.mu.Unlock()
}

func (o *tallyObserver) Timeout() {
	o.mu.Lock()
	o.tally.timeouts++
	o.mu.Unlock()
}

func (o *tallyObserver) Decided(bool, time.Duration) {
	o.mu.Lock()
	o.tally.decisions++
	o.mu.Unlock()
}

func (o *tallyObserver) snapshot() struct{ votes, fallbacks, timeouts, decisions int } {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tally
}

// raceRegions is a five-region set for the white-box coordinator tests.
var raceRegions = []simnet.Region{"r1", "r2", "r3", "r4", "r5"}

// newRaceCoordinator builds a coordinator whose replica addresses point at
// nothing: proposals vanish, and the test injects votes by hand.
func newRaceCoordinator(t *testing.T) (*Coordinator, *recSink, *tallyObserver) {
	t.Helper()
	net, err := simnet.New(simnet.Config{Latency: simnet.NewMatrix(nil), TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	replicas := make([]simnet.Addr, len(raceRegions))
	for i, r := range raceRegions {
		replicas[i] = simnet.Addr{Region: r, Name: "replica"}
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Net:       net,
		Addr:      simnet.Addr{Region: raceRegions[0], Name: "coord"},
		Replicas:  replicas,
		MasterFor: func(string) simnet.Addr { return replicas[0] },
		// No timer: the tests fire onTimeout by hand for determinism.
		CommitTimeout: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := &tallyObserver{}
	coord.SetObserver(obs)
	sink := &recSink{}
	return coord, sink, obs
}

func TestLateVoteAfterTimeoutIgnored(t *testing.T) {
	coord, sink, obs := newRaceCoordinator(t)
	id := txn.NewID()
	if err := coord.Submit(id, []txn.Op{{Kind: txn.OpSet, Key: "k"}}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}

	coord.onTimeout(id)
	if sink.decided != 1 || sink.commit || !errors.Is(sink.err, ErrTimeout) {
		t.Fatalf("after timeout: decided=%d commit=%v err=%v", sink.decided, sink.commit, sink.err)
	}
	if coord.Timeouts != 1 {
		t.Fatalf("Timeouts=%d, want 1", coord.Timeouts)
	}

	// A full fast quorum of accepts straggles in after the timeout. None
	// of it may flip the decision, reach the sink, or count as votes.
	for _, r := range raceRegions {
		coord.onVote(voteMsg{Txn: id, Key: "k", Accept: true, Region: r})
	}
	// And a second timeout firing (stopped-timer race) must be a no-op.
	coord.onTimeout(id)

	if sink.decided != 1 {
		t.Errorf("decided fired %d times, want exactly 1", sink.decided)
	}
	if sink.commit {
		t.Error("late votes flipped an aborted transaction to committed")
	}
	if got := sink.kinds()[KindVote]; got != 0 {
		t.Errorf("%d late votes reached the sink", got)
	}
	if obs.snapshot().votes != 0 {
		t.Errorf("%d late votes reached the observer", obs.snapshot().votes)
	}
	if coord.Timeouts != 1 {
		t.Errorf("Timeouts=%d after straggler re-fire, want 1", coord.Timeouts)
	}
	if got := obs.snapshot().decisions; got != 1 {
		t.Errorf("observer saw %d decisions, want 1", got)
	}
}

func TestLateVoteAfterDecisionIgnored(t *testing.T) {
	coord, sink, obs := newRaceCoordinator(t)
	id := txn.NewID()
	if err := coord.Submit(id, []txn.Op{{Kind: txn.OpSet, Key: "k"}}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}

	// FastQuorum(5) = 4 accepts decide the transaction...
	for _, r := range raceRegions[:4] {
		coord.onVote(voteMsg{Txn: id, Key: "k", Accept: true, Region: r})
	}
	if sink.decided != 1 || !sink.commit {
		t.Fatalf("after quorum: decided=%d commit=%v", sink.decided, sink.commit)
	}
	// ...so the fifth replica's reject arrives too late to matter.
	coord.onVote(voteMsg{Txn: id, Key: "k", Accept: false, Reason: ReasonVersion, Region: raceRegions[4]})
	// As does a timeout racing the decision.
	coord.onTimeout(id)

	if sink.decided != 1 || !sink.commit {
		t.Errorf("late reject/timeout changed the outcome: decided=%d commit=%v err=%v",
			sink.decided, sink.commit, sink.err)
	}
	if got := obs.snapshot().votes; got != 4 {
		t.Errorf("observer counted %d votes, want 4 (late reject excluded)", got)
	}
	if coord.Timeouts != 0 {
		t.Errorf("Timeouts=%d for a decided transaction, want 0", coord.Timeouts)
	}
}

func TestDuplicateVoteNotDoubleCounted(t *testing.T) {
	coord, sink, obs := newRaceCoordinator(t)
	id := txn.NewID()
	if err := coord.Submit(id, []txn.Op{{Kind: txn.OpSet, Key: "k"}}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	// The same region votes three times (retransmission); only the first
	// may count, so the transaction must remain undecided.
	for i := 0; i < 3; i++ {
		coord.onVote(voteMsg{Txn: id, Key: "k", Accept: true, Region: raceRegions[0]})
	}
	if sink.decided != 0 {
		t.Fatal("duplicate votes decided the transaction")
	}
	if got := obs.snapshot().votes; got != 1 {
		t.Errorf("observer counted %d votes for one region, want 1", got)
	}
	// Clean up: finish the transaction so no timer leaks (none armed).
	coord.onTimeout(id)
}
