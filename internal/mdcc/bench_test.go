package mdcc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/txn"
)

// benchSink resolves a channel on decision, discarding progress.
type benchSink struct{ done chan struct{} }

func (s *benchSink) Progress(mdcc.ProgressEvent) {}
func (s *benchSink) Decided(txn.ID, bool, error) { close(s.done) }

// BenchmarkCommitThroughput measures end-to-end protocol throughput on the
// five-region emulated WAN with heavy time compression: pipelined
// commutative commits from one coordinator.
func BenchmarkCommitThroughput(b *testing.B) {
	c, err := cluster.New(cluster.Config{TimeScale: 0.002, Seed: 1, CommitTimeout: 300 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	c.SeedInt("n", 0, -1<<60, 1<<60)
	coord := c.Coordinator(regions.California)

	const window = 64 // in-flight pipeline depth
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		sink := &benchSink{done: make(chan struct{})}
		if err := coord.Submit(txn.NewID(), []txn.Op{
			{Kind: txn.OpAdd, Key: "n", Delta: 1},
		}, mdcc.ModeFast, sink); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-sink.done
			<-sem
		}()
	}
	wg.Wait()
}

// BenchmarkCommitLatencyDisjointKeys measures per-transaction decision
// latency (scaled) with no contention, one benchmark op per full commit.
func BenchmarkCommitLatencyDisjointKeys(b *testing.B) {
	c, err := cluster.New(cluster.Config{TimeScale: 0.002, Seed: 2, CommitTimeout: 300 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	for i := 0; i < 128; i++ {
		c.SeedBytes(fmt.Sprintf("k-%d", i), []byte("v"))
	}
	coord := c.Coordinator(regions.Virginia)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &benchSink{done: make(chan struct{})}
		if err := coord.Submit(txn.NewID(), []txn.Op{
			{Kind: txn.OpSet, Key: fmt.Sprintf("k-%d", i%128), Value: []byte("w"), ReadVersion: int64(i / 128)},
		}, mdcc.ModeFast, sink); err != nil {
			b.Fatal(err)
		}
		<-sink.done
	}
}
