package mdcc_test

// Hot-path microbenchmarks for the commit pipeline, run with -benchmem.
// BENCH_pr5.json records their before/after numbers for the batched-routing
// and allocation-diet work; verify.sh gates allocs/op regressions on
// BenchmarkCoordinatorCommit.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/latency"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// BenchmarkReplicaPrepare measures one replica's fast-path prepare cycle:
// a multi-option proposal validated and voted on, then decided. The vote
// reply fan-out rides the emulated network, so message-count reductions
// (one vote batch instead of one vote per option) show up here directly.
func BenchmarkReplicaPrepare(b *testing.B) {
	m := simnet.NewMatrix(latency.Constant(time.Microsecond))
	net, err := simnet.New(simnet.Config{Latency: m, TimeScale: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()

	self := simnet.Addr{Region: "r1", Name: "replica"}
	rep := mdcc.NewReplica(mdcc.ReplicaConfig{Net: net, Addr: self, Peers: []simnet.Addr{self}})
	coord := simnet.Addr{Region: "r1", Name: "coord"}
	net.Register(coord, func(simnet.Message) {})

	const nOps = 4
	ops := make([]txn.Op, nOps)
	for i := range ops {
		key := fmt.Sprintf("k-%d", i)
		rep.SeedInt(key, 0, -1<<60, 1<<60)
		ops[i] = txn.Op{Kind: txn.OpAdd, Key: key, Delta: 1}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := txn.NewID()
		rep.HandlePropose(id, coord, ops)
		rep.HandleDecide(id, true, ops)
	}
	b.StopTimer()
	net.Quiesce(time.Second)
}

// BenchmarkCoordinatorCommit measures the end-to-end commit path on the
// five-region cluster — submit, option routing, votes, decision fan-out —
// with pipelined commutative transactions. It also reports messages per
// commit, the headline number for the batching work.
func BenchmarkCoordinatorCommit(b *testing.B) {
	c, err := cluster.New(cluster.Config{TimeScale: 0.002, Seed: 5, CommitTimeout: 300 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	const nOps = 4
	ops := make([]txn.Op, nOps)
	for i := range ops {
		key := fmt.Sprintf("n-%d", i)
		c.SeedInt(key, 0, -1<<60, 1<<60)
		ops[i] = txn.Op{Kind: txn.OpAdd, Key: key, Delta: 1}
	}
	coord := c.Coordinator(regions.California)

	const window = 64
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup

	sentBefore := c.Net.Sent.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		sink := &benchSink{done: make(chan struct{})}
		if err := coord.Submit(txn.NewID(), ops, mdcc.ModeFast, sink); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-sink.done
			<-sem
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(c.Net.Sent.Load()-sentBefore)/float64(b.N), "msgs/commit")
}
