package mdcc_test

import (
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/txn"
)

// TestDecideCarriedConvergence isolates one region during a commit and
// verifies the survivors converge. The isolated replica misses both the
// proposal and the decision; it stays stale (rejoining replicas recover
// via quorum reads in this design — replica state transfer is out of
// scope and documented).
func TestDecideCarriedConvergence(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedBytes("k", []byte("v0"))
	c.Quiesce(5 * time.Second)

	c.Net.SetRegionDown(regions.Tokyo, true)
	committed, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 0},
	}, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("commit with one region down: committed=%v err=%v", committed, err)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}

	for _, r := range c.Regions() {
		v, _ := c.Replica(r).ReadLocal("k")
		if r == regions.Tokyo {
			if string(v.Bytes) != "v0" {
				t.Errorf("isolated replica unexpectedly advanced to %q", v.Bytes)
			}
			continue
		}
		if string(v.Bytes) != "v1" {
			t.Errorf("%s: %q, want v1", r, v.Bytes)
		}
	}
}

// TestPendingTTLEvictsOrphans simulates a lost decide: a transaction's
// pending option is planted and its abort never arrives. After the TTL the
// record must accept new writes again.
func TestPendingTTLEvictsOrphans(t *testing.T) {
	// Aggressive TTL (200ms WAN = 2ms scaled at 0.01).
	c := newTestCluster(t, cluster.Config{PendingTTL: 200 * time.Millisecond})
	c.SeedBytes("k", []byte("v0"))
	c.Quiesce(5 * time.Second)

	// Plant orphan pendings deterministically: submit from California and
	// partition California in the same breath. Submit sends the proposals
	// synchronously, and the emulator checks partitions by *destination*
	// at delivery time — so the in-flight proposals still land and plant
	// pendings at the other replicas, while every vote (destination
	// California) and the eventual timeout-abort decide (source region
	// down at send time) is dropped.
	sink := newWaitSink()
	coord := c.Coordinator(regions.California)
	if err := coord.Submit(txn.NewID(), []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("orphan"), ReadVersion: 0},
	}, mdcc.ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	c.Net.SetRegionDown(regions.California, true)
	// The proposals deliver; pendings appear at the reachable replicas.
	deadline := time.Now().Add(5 * time.Second)
	for c.Replica(regions.Virginia).PendingCount("k") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pending option never planted")
		}
		time.Sleep(time.Millisecond)
	}
	sink.wait(t) // timeout abort at the coordinator

	// Drain stragglers (proposals still in flight re-plant pendings with
	// fresh timestamps), then wait well past the TTL so eviction is due
	// everywhere, and write from Virginia.
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	time.Sleep(50 * time.Millisecond) // ≫ scaled TTL (2ms)
	committed, err, _ := submit(t, c, regions.Virginia, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 0},
	}, mdcc.ModeFast)
	if !committed {
		t.Fatalf("write after TTL still blocked: %v", err)
	}
}

// TestHealedRegionServesNewCommits verifies a previously partitioned
// region participates normally once healed: new commits reach it.
func TestHealedRegionServesNewCommits(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedInt("n", 0, 0, 1000)
	c.Quiesce(5 * time.Second)

	c.Net.SetRegionDown(regions.Ireland, true)
	if ok, err, _ := submit(t, c, regions.Virginia, []txn.Op{
		{Kind: txn.OpAdd, Key: "n", Delta: 1},
	}, mdcc.ModeFast); !ok {
		t.Fatalf("commit during partition: %v", err)
	}
	c.Net.SetRegionDown(regions.Ireland, false)

	if ok, err, _ := submit(t, c, regions.Ireland, []txn.Op{
		{Kind: txn.OpAdd, Key: "n", Delta: 10},
	}, mdcc.ModeFast); !ok {
		t.Fatalf("commit from healed region: %v", err)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	// Ireland missed the first delta but applied the second; the other
	// replicas hold both.
	v, _ := c.Replica(regions.Ireland).ReadLocal("n")
	if v.Int != 10 {
		t.Errorf("healed replica n=%d, want 10", v.Int)
	}
	v, _ = c.Replica(regions.Virginia).ReadLocal("n")
	if v.Int != 11 {
		t.Errorf("virginia n=%d, want 11", v.Int)
	}
	// Anti-entropy closes the gap.
	if _, err := c.Replica(regions.Ireland).SyncFrom(c.Replica(regions.Virginia).Addr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	v, _ = c.Replica(regions.Ireland).ReadLocal("n")
	if v.Int != 11 {
		t.Errorf("after sync, healed replica n=%d, want 11", v.Int)
	}
}

// TestSustainedLossSafety runs a lossy workload and re-checks the core
// safety property: never two conflicting commits, surviving replicas agree
// where they heard the decisions.
func TestSustainedLossSafety(t *testing.T) {
	c := newTestCluster(t, cluster.Config{
		LossRate: 0.05, Seed: 77, CommitTimeout: 1 * time.Second,
	})
	c.SeedInt("n", 0, -1_000_000, 1_000_000)
	c.Quiesce(5 * time.Second)

	var committedDelta int64
	for i := 0; i < 30; i++ {
		from := c.Regions()[i%5]
		ok, _, _ := submit(t, c, from, []txn.Op{
			{Kind: txn.OpAdd, Key: "n", Delta: 1},
		}, mdcc.ModeFast)
		if ok {
			committedDelta++
		}
	}
	if !c.Quiesce(10 * time.Second) {
		t.Fatal("no quiesce")
	}
	// Every replica's value must be <= committedDelta (decides can be
	// lost) and at least one replica must have all of them is NOT
	// guaranteed under loss; but no replica may exceed the committed sum
	// and none may go negative.
	maxSeen := int64(-1)
	for _, r := range c.Regions() {
		v, _ := c.Replica(r).ReadLocal("n")
		if v.Int > committedDelta || v.Int < 0 {
			t.Errorf("%s: n=%d outside [0,%d]", r, v.Int, committedDelta)
		}
		if v.Int > maxSeen {
			maxSeen = v.Int
		}
	}
	if committedDelta > 0 && maxSeen == 0 {
		t.Error("commits reported but no replica applied anything")
	}
}

// TestClassicOwnershipSticks verifies that once a key goes classic, fast
// proposals on it are refused and routed through the master (ReasonClassicOwned).
func TestClassicOwnershipSticks(t *testing.T) {
	c := newTestCluster(t, cluster.Config{MasterRegion: regions.Virginia})
	c.SeedBytes("k", []byte("v0"))
	c.Quiesce(5 * time.Second)

	// First classic write takes ownership.
	if ok, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 0},
	}, mdcc.ModeClassic); !ok {
		t.Fatalf("classic write: %v", err)
	}
	c.Quiesce(5 * time.Second)

	// A fast write on the owned key must still succeed via fallback.
	ok, err, sink := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v2"), ReadVersion: 1},
	}, mdcc.ModeFast)
	if !ok {
		t.Fatalf("fast-then-fallback write failed: %v", err)
	}
	kinds := sink.eventKinds()
	if kinds[mdcc.KindFallback] == 0 {
		t.Error("classic-owned key did not force a fallback")
	}
	sawOwned := false
	sink.mu.Lock()
	for _, e := range sink.events {
		if e.Reason == mdcc.ReasonClassicOwned {
			sawOwned = true
		}
	}
	sink.mu.Unlock()
	if !sawOwned {
		t.Error("no classic-owned rejection reported")
	}
}
