package mdcc

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"planet/internal/txn"
)

// Entry is one durable log record: a decided transaction and its options.
// TraceSpan and OptionSpan persist the causal trace context for traced
// transactions (zero otherwise): TraceSpan is the coordinator's root span
// the decide carried, OptionSpan this replica's option-RPC span. A
// post-crash replay re-links the replayed decision to OptionSpan, keeping
// the trace tree stitched across a crash-restart cycle.
type Entry struct {
	Txn        txn.ID    `json:"txn"`
	Commit     bool      `json:"commit"`
	Options    []txn.Op  `json:"options"`
	At         time.Time `json:"at"`
	TraceSpan  uint64    `json:"trace_span,omitempty"`
	OptionSpan uint64    `json:"option_span,omitempty"`
	// Lease, when non-nil, makes this a lease-transition record instead of
	// a decision: the replica granted or won a keyspace lease. Replay
	// rebuilds the lease view from these so a restarted master knows the
	// last epoch it held — and learns it was deposed when peers report a
	// higher one. Pre-lease WALs simply never carry the field.
	Lease *LeaseRecord `json:"lease,omitempty"`
}

// LeaseRecord is the durable form of one lease transition (see Entry.Lease).
// Held marks transitions where this replica itself won the lease, as
// opposed to granting it to a peer.
type LeaseRecord struct {
	Keyspace string `json:"keyspace"`
	Epoch    uint64 `json:"epoch"`
	Holder   string `json:"holder"`
	Held     bool   `json:"held,omitempty"`
}

// WAL is the replica's write-ahead log of decisions. It always retains
// entries in memory (for replay and tests) and, when constructed with a
// sink, additionally streams them as JSON lines.
type WAL struct {
	mu      sync.Mutex
	entries []Entry
	sink    io.Writer
	enc     *json.Encoder
	err     error
}

// NewWAL returns a WAL. sink may be nil for memory-only logging.
func NewWAL(sink io.Writer) *WAL {
	w := &WAL{sink: sink}
	if sink != nil {
		w.enc = json.NewEncoder(sink)
	}
	return w
}

// Append records one entry.
func (w *WAL) Append(e Entry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries = append(w.entries, e)
	if w.enc != nil && w.err == nil {
		w.err = w.enc.Encode(e)
	}
}

// Len returns the number of logged entries.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// Err reports the first sink write error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Sync flushes the sink to stable storage when it supports it (an *os.File
// does). Graceful shutdown calls it so the final decisions survive not just
// a process kill but a machine crash.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.sink.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// OpenWALFile opens (creating if needed) a durable WAL at path, recovers the
// decodable prefix of any existing log, truncates away a torn tail so new
// appends extend a clean stream, and returns a WAL ready for both Replay and
// Append. It reports how many entries were recovered and whether the file
// ended in a torn record.
func OpenWALFile(path string) (w *WAL, recovered int, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, false, fmt.Errorf("mdcc: open wal: %w", err)
	}
	dec := json.NewDecoder(f)
	var entries []Entry
	var good int64
	for {
		var e Entry
		derr := dec.Decode(&e)
		if derr == io.EOF {
			break
		}
		if derr != nil {
			torn = true
			break
		}
		entries = append(entries, e)
		good = dec.InputOffset()
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, 0, false, fmt.Errorf("mdcc: truncate torn wal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, false, fmt.Errorf("mdcc: seek wal: %w", err)
	}
	w = NewWAL(f)
	w.entries = entries
	return w, len(entries), torn, nil
}

// Replay invokes fn on every entry in append order. fn returning an error
// stops the replay.
func (w *WAL) Replay(fn func(Entry) error) error {
	w.mu.Lock()
	snapshot := append([]Entry(nil), w.entries...)
	w.mu.Unlock()
	for i, e := range snapshot {
		if err := fn(e); err != nil {
			return fmt.Errorf("mdcc: wal replay stopped at entry %d: %w", i, err)
		}
	}
	return nil
}

// Commits returns the committed entries in order (tests, recovery checks).
func (w *WAL) Commits() []Entry {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Entry
	for _, e := range w.entries {
		if e.Commit {
			out = append(out, e)
		}
	}
	return out
}

// ReadWAL decodes JSON-line entries from r, e.g. a log file written through
// a WAL sink, reconstructing the entry stream for offline recovery.
func ReadWAL(r io.Reader) ([]Entry, error) {
	dec := json.NewDecoder(r)
	var out []Entry
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("mdcc: wal decode: %w", err)
		}
		out = append(out, e)
	}
}

// RecoverWAL decodes entries from r, tolerating a torn tail: a process that
// crashed mid-append leaves a final record cut short, and recovery must use
// the complete prefix rather than fail. It returns the decodable prefix and
// whether the stream ended in a torn (or otherwise malformed) record.
//
// A torn tail is indistinguishable from mid-file corruption in a JSON-line
// stream, so any decode failure terminates the scan; everything before it
// is trusted.
func RecoverWAL(r io.Reader) (entries []Entry, torn bool) {
	dec := json.NewDecoder(r)
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			return entries, false
		} else if err != nil {
			return entries, true
		}
		entries = append(entries, e)
	}
}
