package mdcc

import (
	"fmt"
	"sync/atomic"
	"time"

	"planet/internal/simnet"
	"planet/internal/vclock"
)

// PLANET serves reads from the client's local replica — fast, but a read
// can miss a commit whose decide message is still in flight. Quorum reads
// are the stronger alternative this file provides: ask every replica,
// wait for a majority, and return the freshest (highest-version) value
// seen. Any committed write is applied at a majority-overlapping set of
// replicas once its decide propagates, so a quorum read observes every
// write that was committed and fully propagated before the read began,
// at the price of one wide-area round trip.

// wire messages for reads.
type readReq struct {
	ReqID uint64
	Key   string
	From  simnet.Addr
}

type readResp struct {
	ReqID  uint64
	Key    string
	Found  bool
	Value  Value
	Region simnet.Region
}

// readWaiter collects responses for one quorum read.
type readWaiter struct {
	need    int
	got     int
	found   bool
	best    Value
	done    *vclock.Event
	settled bool
}

var readSeq atomic.Uint64

// QuorumRead reads key from a majority of replicas and returns the value
// with the highest version among the responses. It blocks up to timeout
// (emulator time). found reports whether any responding replica had the
// key.
func (c *Coordinator) QuorumRead(key string, timeout time.Duration) (value Value, found bool, err error) {
	id := readSeq.Add(1)
	w := &readWaiter{need: ClassicQuorum(c.N()), done: c.clk.NewEvent()}

	c.mu.Lock()
	if c.reads == nil {
		c.reads = make(map[uint64]*readWaiter)
	}
	c.reads[id] = w
	c.mu.Unlock()

	for _, rep := range c.cfg.Replicas {
		c.cfg.Net.Send(c.cfg.Addr, rep, readReq{ReqID: id, Key: key, From: c.cfg.Addr})
	}

	if !w.done.WaitTimeout(timeout) {
		c.mu.Lock()
		delete(c.reads, id)
		settled := w.settled
		c.mu.Unlock()
		if !settled {
			return Value{}, false, fmt.Errorf("mdcc: quorum read of %q: %w", key, ErrTimeout)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.reads, id)
	return w.best, w.found, nil
}

// onReadResp accumulates one replica's answer.
func (c *Coordinator) onReadResp(r readResp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.reads[r.ReqID]
	if w == nil || w.settled {
		return
	}
	w.got++
	if r.Found {
		if !w.found || r.Value.Version > w.best.Version {
			w.best = r.Value
		}
		w.found = true
	}
	if w.got >= w.need {
		w.settled = true
		w.done.Fire()
	}
}

// onReadReq is the replica side: answer with local committed state.
func (r *Replica) onReadReq(q readReq) {
	v, ok := r.ReadLocal(q.Key)
	r.send(q.From, readResp{ReqID: q.ReqID, Key: q.Key, Found: ok, Value: v, Region: r.Region()})
}
