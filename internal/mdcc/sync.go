package mdcc

import (
	"fmt"
	"sync/atomic"
	"time"

	"planet/internal/simnet"
	"planet/internal/vclock"
)

// A replica that was partitioned misses the decide messages broadcast while
// it was unreachable, leaving it permanently stale on the affected keys
// (decides are fire-and-forget). SyncFrom is the anti-entropy repair: pull
// a peer's committed snapshot and adopt any record with a higher version.
//
// Adopting committed state wholesale is safe: every snapshot entry is
// decided state from a replica that applied it, versions are per-key write
// counters identical across replicas for the same write history, and a
// higher version strictly extends the local history (two histories of the
// same key cannot diverge — conflicting options never both commit).
// Pending options are untouched; in-flight transactions keep their votes.

// wire messages for anti-entropy.
type syncReq struct {
	ReqID uint64
	From  simnet.Addr
}

type syncResp struct {
	ReqID   uint64
	Records map[string]Value
}

var syncSeq atomic.Uint64

// syncWaiter holds the rendezvous for one SyncFrom call. resp is written
// once under r.mu before done fires.
type syncWaiter struct {
	done *vclock.Event
	resp syncResp
	ok   bool
}

// SyncFrom pulls peer's committed snapshot and applies every record whose
// version exceeds the local one. It blocks up to timeout (emulator time)
// and returns the number of records repaired.
func (r *Replica) SyncFrom(peer simnet.Addr, timeout time.Duration) (int, error) {
	id := syncSeq.Add(1)
	w := &syncWaiter{done: r.clk.NewEvent()}

	r.mu.Lock()
	if r.syncs == nil {
		r.syncs = make(map[uint64]*syncWaiter)
	}
	r.syncs[id] = w
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.syncs, id)
		r.mu.Unlock()
	}()

	r.send(peer, syncReq{ReqID: id, From: r.cfg.Addr})

	if !w.done.WaitTimeout(timeout) {
		return 0, fmt.Errorf("mdcc: sync from %s: %w", peer, ErrTimeout)
	}
	r.mu.Lock()
	resp := w.resp
	r.mu.Unlock()
	return r.applySnapshot(resp.Records), nil
}

// applySnapshot adopts fresher committed records.
func (r *Replica) applySnapshot(records map[string]Value) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	repaired := 0
	for key, v := range records {
		rc, sp := r.records.acquire(key)
		if v.Version > rc.version {
			rc.version = v.Version
			rc.isInt = v.IsInt
			rc.ival = v.Int
			// Adopt the donor's slice directly: snapshot values are
			// immutable views (see record.value), never written in place
			// by either side.
			rc.bytes = v.Bytes
			repaired++
		}
		sp.mu.Unlock()
	}
	return repaired
}

// onSyncReq is the donor side: snapshot committed state and reply.
func (r *Replica) onSyncReq(q syncReq) {
	snapshot := make(map[string]Value, r.records.count())
	r.records.forEach(func(key string, rc *record) {
		snapshot[key] = rc.value()
	})
	r.send(q.From, syncResp{ReqID: q.ReqID, Records: snapshot})
}

// onSyncResp routes the snapshot to its waiter.
func (r *Replica) onSyncResp(resp syncResp) {
	r.mu.Lock()
	w := r.syncs[resp.ReqID]
	if w == nil || w.ok {
		r.mu.Unlock()
		return
	}
	w.resp = resp
	w.ok = true
	r.mu.Unlock()
	w.done.Fire()
}
