package mdcc

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// wireSamples returns one representative instance of every wire message
// type, exercising nil vs empty slices, zero values, and every enum value
// somewhere in the set.
func wireSamples() []any {
	ops := []txn.Op{
		{Kind: txn.OpSet, Key: "k1", Value: []byte("hello"), ReadVersion: 7},
		{Kind: txn.OpAdd, Key: "k2", Delta: -42, ReadVersion: 0},
		{Kind: txn.OpSet, Key: "", Value: []byte{}, Delta: 1 << 40},
	}
	coord := simnet.Addr{Region: "us-west", Name: "coord"}
	master := simnet.Addr{Region: "eu-west", Name: "replica"}
	return []any{
		proposeMsg{Txn: 1, Coord: coord, Options: ops},
		proposeMsg{Txn: 2, Coord: simnet.Addr{}},
		voteMsg{Txn: 3, Key: "k", Accept: true, Reason: ReasonNone, Region: "us-east"},
		voteMsg{Txn: 4, Key: "k", Accept: false, Reason: ReasonBallot, Region: ""},
		classicProposeMsg{Txn: 5, Coord: coord, Option: ops[1]},
		classicResultMsg{Txn: 6, Key: "k", Accepted: false, Reason: ReasonBound},
		phase1aMsg{Key: "k", Ballot: 9, Master: master},
		phase1bMsg{Key: "k", Ballot: 9, OK: true, Region: "eu-west",
			Pending: []pendingSnapshot{{Txn: 7, Option: ops[0], Ballot: 2}, {Txn: 8, Option: ops[1]}}},
		phase1bMsg{Key: "k", OK: false},
		phase2aMsg{Txn: 9, Key: "k", Ballot: 3, Option: ops[2], Master: master},
		phase2bMsg{Txn: 10, Key: "k", Ballot: 3, Accept: true, Region: "us-west"},
		decideMsg{Txn: 11, Commit: true, Options: ops},
		decideMsg{Txn: 12, Commit: false},
		voteBatchMsg{Txn: 13, Region: "us-east", Votes: []optionVote{
			{Key: "a", Accept: true}, {Key: "b", Reason: ReasonPending},
			{Key: "c", Reason: ReasonVersion}, {Key: "d", Reason: ReasonClassicOwned},
			{Key: "e", Reason: ReasonDecided}}},
		classicProposeBatchMsg{Txn: 14, Coord: coord, Options: ops[:1]},
		classicResultBatchMsg{Txn: 15, Results: []optionResult{
			{Key: "a", Accepted: true}, {Key: "b", Reason: ReasonBound}}},
		phase2aBatchMsg{Master: master, Items: []phase2aItem{
			{Txn: 16, Key: "a", Ballot: 1, Option: ops[0]},
			{Txn: 16, Key: "b", Ballot: 2, Option: ops[1]}}},
		phase2bBatchMsg{Region: "ap-south", Items: []phase2bItem{
			{Txn: 17, Key: "a", Ballot: 1, Accept: true},
			{Txn: 17, Key: "b", Ballot: 2, Accept: false}}},
		readReq{ReqID: 1, Key: "stock", From: coord},
		readResp{ReqID: 1, Key: "stock", Found: true, Region: "us-west",
			Value: Value{Int: 99, IsInt: true, Version: 4}},
		readResp{ReqID: 2, Key: "blob", Found: true,
			Value: Value{Bytes: []byte{0, 1, 2}, Version: 1}},
		readResp{ReqID: 3, Key: "missing"},
		syncReq{ReqID: 5, From: master},
		syncResp{ReqID: 5, Records: map[string]Value{
			"a": {Int: 1, IsInt: true, Version: 2},
			"b": {Bytes: []byte("x"), Version: 9},
			"c": {}}},
		syncResp{ReqID: 6},
		// Traced variants: the optional trailing trace context present.
		proposeMsg{Txn: 18, Coord: coord, Options: ops[:1],
			TC: TraceCtx{Span: 0xabc0001, SentUnixNano: 1_700_000_000_000_000_001}},
		voteMsg{Txn: 19, Key: "k", Accept: true, Region: "us-east",
			TC: TraceCtx{Span: 0xabc0002, SentUnixNano: -5}},
		classicProposeMsg{Txn: 20, Coord: coord, Option: ops[0],
			TC: TraceCtx{Span: 3, SentUnixNano: 9}},
		classicResultMsg{Txn: 21, Key: "k", Accepted: true,
			TC: TraceCtx{Span: 4, SentUnixNano: 10}},
		decideMsg{Txn: 22, Commit: true, Options: ops[:1], Coord: coord,
			TC: TraceCtx{Span: 5, SentUnixNano: 11}},
		voteBatchMsg{Txn: 23, Region: "us-east",
			Votes: []optionVote{{Key: "a", Accept: true}},
			TC:    TraceCtx{Span: 6, SentUnixNano: 12}},
		classicProposeBatchMsg{Txn: 24, Coord: coord, Options: ops[:2],
			TC: TraceCtx{Span: 7, SentUnixNano: 13}},
		classicResultBatchMsg{Txn: 25,
			Results: []optionResult{{Key: "a", Accepted: true}},
			TC:      TraceCtx{Span: 8, SentUnixNano: 14}},
		spanReportMsg{Txn: 26, Spans: []obs.Span{
			{Txn: 26, ID: 100, Parent: 99, Stage: obs.StageOptionRPC,
				Region: "us-east", Note: "leg",
				Start: time.Unix(0, 1_000), End: time.Unix(0, 2_000)},
			{Txn: 26, ID: 101, Parent: 100, Stage: obs.StageReplicaWAL,
				Start: time.Unix(0, 3_000), End: time.Unix(0, 4_000)},
		}},
		spanReportMsg{Txn: 27},
		// Lease-epoch-stamped variants: the optional trailing epoch present.
		phase1aMsg{Key: "k", Ballot: 9, Master: master, Epoch: 3},
		phase2aMsg{Txn: 28, Key: "k", Ballot: 3, Option: ops[0], Master: master, Epoch: 1 << 33},
		phase2aBatchMsg{Master: master, Epoch: 2, Items: []phase2aItem{
			{Txn: 29, Key: "a", Ballot: 1, Option: ops[0]}}},
		// Lease round messages.
		leaseRequestMsg{Keyspace: "us-east", Epoch: 7, Holder: "eu-west",
			ExpiresUnixNano: 1_700_000_000_000_000_002, From: master},
		leaseRequestMsg{Keyspace: "", Epoch: 0, ExpiresUnixNano: -1},
		leaseGrantMsg{Keyspace: "us-east", Epoch: 7, OK: true, CurEpoch: 7,
			CurHolder: "eu-west", CurExpiresUnixNano: 1_700_000_000_000_000_003, Region: "us-west"},
		leaseGrantMsg{Keyspace: "us-east", Epoch: 8, OK: false, CurEpoch: 12,
			CurHolder: "ap-south", CurExpiresUnixNano: 0, Region: ""},
	}
}

// TestWireTraceVersionTolerance pins the compatibility contract for the
// trailing trace context: an untraced message encodes byte-identically to
// the pre-trace wire format (its traced encoding strictly extends it), and
// decoding the shorter untraced frame yields a zero TraceCtx.
func TestWireTraceVersionTolerance(t *testing.T) {
	var c WireCodec
	coord := simnet.Addr{Region: "us-west", Name: "coord"}
	ops := []txn.Op{{Kind: txn.OpSet, Key: "k", Value: []byte("v")}}

	untraced := proposeMsg{Txn: 1, Coord: coord, Options: ops}
	traced := untraced
	traced.TC = TraceCtx{Span: 42, SentUnixNano: 7}

	plain, err := c.Append(nil, untraced)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := c.Append(nil, traced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(ext, plain) {
		t.Fatal("traced frame does not extend the untraced frame: old-format frames would not decode")
	}
	if len(ext) <= len(plain) {
		t.Fatal("traced frame no longer than untraced frame")
	}

	// An old-format frame (no trailing context) decodes to the zero TraceCtx.
	got, err := c.Decode(plain)
	if err != nil {
		t.Fatalf("decode pre-trace frame: %v", err)
	}
	if p := got.(proposeMsg); p.TC != (TraceCtx{}) {
		t.Errorf("pre-trace frame decoded with TC %+v, want zero", p.TC)
	}

	// decideMsg's trailing group additionally carries the coordinator.
	dPlain, _ := c.Append(nil, decideMsg{Txn: 2, Commit: true, Options: ops})
	dTraced, _ := c.Append(nil, decideMsg{Txn: 2, Commit: true, Options: ops,
		TC: TraceCtx{Span: 9, SentUnixNano: 1}, Coord: coord})
	if !bytes.HasPrefix(dTraced, dPlain) {
		t.Fatal("traced decide does not extend the untraced decide")
	}
	gd, err := c.Decode(dTraced)
	if err != nil {
		t.Fatal(err)
	}
	if d := gd.(decideMsg); d.Coord != coord || d.TC.Span != 9 {
		t.Errorf("traced decide round trip lost trailing group: %+v", d)
	}
}

// TestWireEpochVersionTolerance pins the compatibility contract for the
// trailing lease epoch on master-arbitrated messages: an epoch-0 message
// (leases off) encodes byte-identically to the pre-lease wire format, an
// epoch-stamped frame strictly extends it, and decoding the shorter
// pre-lease frame yields epoch 0 — which the fence lets pass.
func TestWireEpochVersionTolerance(t *testing.T) {
	var c WireCodec
	master := simnet.Addr{Region: "eu-west", Name: "replica"}

	plainMsgs := []any{
		phase1aMsg{Key: "k", Ballot: 9, Master: master},
		phase2aMsg{Txn: 1, Key: "k", Ballot: 3,
			Option: txn.Op{Kind: txn.OpAdd, Key: "k", Delta: 1}, Master: master},
		phase2aBatchMsg{Master: master, Items: []phase2aItem{
			{Txn: 2, Key: "a", Ballot: 1, Option: txn.Op{Kind: txn.OpAdd, Key: "a"}}}},
	}
	stamp := func(m any) any {
		switch p := m.(type) {
		case phase1aMsg:
			p.Epoch = 6
			return p
		case phase2aMsg:
			p.Epoch = 6
			return p
		case phase2aBatchMsg:
			p.Epoch = 6
			return p
		}
		return m
	}
	epochOf := func(m any) uint64 {
		switch p := m.(type) {
		case phase1aMsg:
			return p.Epoch
		case phase2aMsg:
			return p.Epoch
		case phase2aBatchMsg:
			return p.Epoch
		}
		return 0
	}

	for _, m := range plainMsgs {
		plain, err := c.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := c.Append(nil, stamp(m))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(ext, plain) {
			t.Fatalf("%T: epoch-stamped frame does not extend the pre-lease frame", m)
		}
		if len(ext) <= len(plain) {
			t.Fatalf("%T: epoch-stamped frame no longer than the plain frame", m)
		}
		got, err := c.Decode(plain)
		if err != nil {
			t.Fatalf("%T: decode pre-lease frame: %v", m, err)
		}
		if e := epochOf(got); e != 0 {
			t.Errorf("%T: pre-lease frame decoded with epoch %d, want 0", m, e)
		}
		back, err := c.Decode(ext)
		if err != nil {
			t.Fatalf("%T: decode stamped frame: %v", m, err)
		}
		if e := epochOf(back); e != 6 {
			t.Errorf("%T: stamped frame decoded with epoch %d, want 6", m, e)
		}
	}
}

// TestWireRoundTrip encodes and decodes every message type and requires the
// result to be structurally identical to the input.
func TestWireRoundTrip(t *testing.T) {
	var c WireCodec
	for _, m := range wireSamples() {
		buf, err := c.Append(nil, m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T:\n  sent %#v\n  got  %#v", m, m, got)
		}
	}
}

// TestWireDeterministic requires equal messages to encode to equal bytes
// (map fields must serialize in sorted key order).
func TestWireDeterministic(t *testing.T) {
	var c WireCodec
	for _, m := range wireSamples() {
		a, _ := c.Append(nil, m)
		b, _ := c.Append(nil, m)
		if !bytes.Equal(a, b) {
			t.Errorf("%T encoded differently across calls", m)
		}
	}
}

// TestWireAppendExtends verifies Append really appends (framing writes the
// header first, then the payloads into the same buffer).
func TestWireAppendExtends(t *testing.T) {
	var c WireCodec
	prefix := []byte{0xde, 0xad}
	buf, err := c.Append(prefix, voteMsg{Txn: 1, Key: "k", Accept: true, Region: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatalf("Append overwrote the destination prefix")
	}
	if _, err := c.Decode(buf[len(prefix):]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

// TestWireUnencodable rejects non-protocol payloads instead of panicking.
func TestWireUnencodable(t *testing.T) {
	var c WireCodec
	if _, err := c.Append(nil, "not a message"); err == nil {
		t.Fatal("expected error encoding a non-protocol type")
	}
	if _, err := c.Append(nil, nil); err == nil {
		t.Fatal("expected error encoding nil")
	}
}

// TestWireTruncation decodes every strict prefix of every encoded message.
// Each must return an error, with one designed exception: a traced message
// truncated exactly at its fixed-field boundary IS the valid pre-trace
// frame (that is the version-tolerance contract). Such a prefix must decode
// cleanly and re-encode to exactly itself; any other prefix must error.
func TestWireTruncation(t *testing.T) {
	var c WireCodec
	for _, m := range wireSamples() {
		buf, err := c.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(buf); n++ {
			got, err := c.Decode(buf[:n])
			if err != nil {
				continue
			}
			re, err := c.Append(nil, got)
			if err != nil || !bytes.Equal(re, buf[:n]) {
				t.Errorf("%T: truncation to %d/%d bytes decoded to %T that re-encodes differently",
					m, n, len(buf), got)
			}
		}
	}
}

// TestWireTrailingBytes rejects frames with bytes left over after the
// message, which would otherwise hide desync between sender and receiver.
func TestWireTrailingBytes(t *testing.T) {
	var c WireCodec
	buf, _ := c.Append(nil, syncReq{ReqID: 1})
	if _, err := c.Decode(append(buf, 0)); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

// TestWireCorruption flips every byte of every encoded message through a few
// values; decoding must never panic, and when it succeeds the result must
// still be a protocol message (corruption may produce a different valid
// message — the framing checksum of TCP already guards integrity; this test
// guards the decoder against crashes and runaway allocations).
func TestWireCorruption(t *testing.T) {
	var c WireCodec
	for _, m := range wireSamples() {
		orig, err := c.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(orig))
		for i := range orig {
			for _, delta := range []byte{1, 0x80, 0xff} {
				copy(buf, orig)
				buf[i] ^= delta
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%T: decode panicked after corrupting byte %d: %v", m, i, r)
						}
					}()
					c.Decode(buf)
				}()
			}
		}
	}
}

// TestWireRandomGarbage feeds random byte strings to the decoder; none may
// panic.
func TestWireRandomGarbage(t *testing.T) {
	var c WireCodec
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on %x: %v", buf, r)
				}
			}()
			c.Decode(buf)
		}()
	}
}

// TestWireHostileLengths hand-builds frames whose length fields claim far
// more data than present; the decoder must error without allocating
// gigabytes.
func TestWireHostileLengths(t *testing.T) {
	var c WireCodec
	hostile := [][]byte{
		// propose with an options count of 2^40.
		append([]byte{tagPropose, 1, 0, 0}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40),
		// vote with a key length of 2^30.
		{tagVote, 1, 0x80, 0x80, 0x80, 0x80, 0x04},
		// syncResp with a huge record count and no data.
		{tagSyncResp, 1, 0xff, 0xff, 0xff, 0x7f},
	}
	for _, buf := range hostile {
		if _, err := c.Decode(buf); err == nil {
			t.Errorf("hostile frame %x decoded without error", buf)
		}
	}
}

// FuzzWireDecode is the go-native fuzz entry: any input must decode without
// panicking, and every successful decode must re-encode and re-decode to the
// same message (decode∘encode is idempotent even for inputs we didn't
// generate).
func FuzzWireDecode(f *testing.F) {
	var c WireCodec
	for _, m := range wireSamples() {
		buf, _ := c.Append(nil, m)
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	// Regression: a propose frame whose trailing trace group has span 0
	// (encoders never emit that — it must be rejected, not re-encoded away).
	f.Add([]byte("\x010\a0000000\x00\x00\x000"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := c.Decode(data)
		if err != nil {
			return
		}
		buf, err := c.Append(nil, m)
		if err != nil {
			t.Fatalf("re-encode of decoded %T failed: %v", m, err)
		}
		m2, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("re-decode of %T failed: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode∘encode not idempotent:\n  %#v\n  %#v", m, m2)
		}
	})
}
