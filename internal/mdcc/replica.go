package mdcc

import (
	"sort"
	"sync"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// ReplicaConfig parameterizes one region's replica.
type ReplicaConfig struct {
	// Net is the transport (simnet.Network or realnet.Transport). Required.
	Net Transport
	// Addr is this replica's address. Required.
	Addr simnet.Addr
	// Peers lists all replica addresses including this one. Required.
	Peers []simnet.Addr
	// PendingTTL evicts pending options whose decide message was lost.
	// Zero disables eviction.
	PendingTTL time.Duration
	// WAL, when non-nil, receives an entry for every decided transaction.
	WAL *WAL
	// PerOptionMessages restores the legacy wire protocol: one vote, one
	// classic result, and one phase-2 message per option instead of
	// per-destination batches. Equivalence tests use it to pin the batched
	// protocol's semantics to the per-option ones.
	PerOptionMessages bool
}

// Replica is one region's full copy of the store. It plays three protocol
// roles: fast-path acceptor, classic-path acceptor, and master for the keys
// assigned to its region.
type Replica struct {
	cfg ReplicaConfig
	clk vclock.Clock // the network's clock

	mu      sync.Mutex
	records *recordStore
	decided map[txn.ID]bool
	masters map[string]*masterKey
	syncs   map[uint64]*syncWaiter
	crashed bool

	// leaseCfg enables epoch-fenced master leases (see lease.go); leases
	// holds the per-keyspace lease state.
	leaseCfg *LeaseConfig
	leases   map[simnet.Region]*leaseState

	// spans is the local span store (nil = tracing off); traces is the
	// per-transaction trace state accumulated between proposal and decide,
	// flushed to the coordinator as a spanReportMsg when the transaction
	// decides.
	spans  *obs.SpanStore
	traces map[txn.ID]*replicaTrace

	// baseline is the seeded initial state (the "disk image" installed
	// before the protocol ran). Crash recovery rebuilds records from it
	// before replaying the WAL.
	baseline map[string]seedRecord

	// Stats exported for tests and experiments.
	FastAccepts  uint64
	FastRejects  uint64
	ClassicRuns  uint64
	Applied      uint64
	RecoveryRuns uint64
	// LeaseTakeovers counts keyspace leases this replica claimed away from
	// another holder (read via LeaseTakeoverCount).
	LeaseTakeovers uint64
	// LeaseFenced counts master-arbitrated messages rejected for carrying
	// a stale lease epoch.
	LeaseFenced uint64
}

// seedRecord is one key's seeded initial state.
type seedRecord struct {
	bytes   []byte
	ival    int64
	isInt   bool
	bounded bool
	lo, hi  int64
}

// replicaTrace is the trace state one replica keeps for one in-flight
// traced transaction: where to flush spans, this replica's option-RPC span
// (the causal anchor the WAL persists), and the spans accumulated so far.
type replicaTrace struct {
	coord      simnet.Addr
	optionSpan uint64
	spans      []obs.Span
	at         time.Time // insertion time, for TTL eviction
}

// maxReplicaTraces bounds the per-transaction trace map against decide
// messages that never arrive faster than PendingTTL can reap them.
const maxReplicaTraces = 4096

// SetSpans installs the replica's local span store (nil disables tracing).
// Typically wired once at startup, before traffic.
func (r *Replica) SetSpans(st *obs.SpanStore) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = st
	if st != nil && r.traces == nil {
		r.traces = make(map[txn.ID]*replicaTrace)
	}
}

// evictTracesLocked reaps trace state older than PendingTTL (orphans of
// lost decides). Caller holds r.mu.
func (r *Replica) evictTracesLocked(now time.Time) {
	ttl := r.cfg.PendingTTL
	if ttl <= 0 {
		ttl = time.Minute
	}
	for id, tr := range r.traces {
		if now.Sub(tr.at) > ttl {
			delete(r.traces, id)
		}
	}
}

// NewReplica constructs and registers a replica on cfg.Net.
func NewReplica(cfg ReplicaConfig) *Replica {
	r := &Replica{
		cfg:      cfg,
		clk:      cfg.Net.ClockFor(cfg.Addr.Region),
		records:  newRecordStore(),
		decided:  make(map[txn.ID]bool),
		masters:  make(map[string]*masterKey),
		baseline: make(map[string]seedRecord),
	}
	cfg.Net.Register(cfg.Addr, r.recv)
	return r
}

// Addr returns the replica's network address.
func (r *Replica) Addr() simnet.Addr { return r.cfg.Addr }

// Region returns the replica's region.
func (r *Replica) Region() simnet.Region { return r.cfg.Addr.Region }

// rec returns (creating if needed) the record for key, for white-box
// tests that inspect record state on a quiesced replica. Live code paths
// use records.acquire/peek and touch the record only under its stripe
// lock.
func (r *Replica) rec(key string) *record {
	rc, sp := r.records.acquire(key)
	sp.mu.Unlock()
	return rc
}

// SeedBytes installs an initial byte value outside the protocol (setup).
// One private copy of value is shared by the live record and the recovery
// baseline: committed slices are never written in place, so sharing is safe.
func (r *Replica) SeedBytes(key string, value []byte) {
	v := append([]byte(nil), value...)
	r.mu.Lock()
	defer r.mu.Unlock()
	rc, sp := r.records.acquire(key)
	rc.bytes = v
	rc.isInt = false
	sp.mu.Unlock()
	r.baseline[key] = seedRecord{bytes: v}
}

// SeedInt installs an initial integer value with integrity bounds.
func (r *Replica) SeedInt(key string, value, lo, hi int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rc, sp := r.records.acquire(key)
	rc.ival = value
	rc.isInt = true
	rc.bounded = true
	rc.lo, rc.hi = lo, hi
	sp.mu.Unlock()
	r.baseline[key] = seedRecord{ival: value, isInt: true, bounded: true, lo: lo, hi: hi}
}

// reserve pre-sizes the record and baseline maps ahead of a bulk seed so
// incremental map growth doesn't dominate setup. Caller holds r.mu; only
// cold (empty) maps are replaced.
func (r *Replica) reserve(n int) {
	if n <= 0 {
		return
	}
	r.records.reserve(n)
	if len(r.baseline) == 0 {
		r.baseline = make(map[string]seedRecord, n)
	}
}

// SeedBytesAll installs the same initial byte value under every key in one
// lock acquisition, backing all records with a single array. The value slice
// is adopted and shared by every record and baseline entry — callers must
// treat it as immutable afterwards (Cluster.SeedBytesAll makes the one copy).
func (r *Replica) SeedBytesAll(keys []string, value []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reserve(len(keys))
	r.records.seedAll(keys, func(rc *record, _ int) {
		rc.bytes = value
		rc.isInt = false
	})
	for _, key := range keys {
		r.baseline[key] = seedRecord{bytes: value}
	}
}

// SeedIntAll installs the same initial integer value and bounds under every
// key in one lock acquisition (bulk form of SeedInt).
func (r *Replica) SeedIntAll(keys []string, value, lo, hi int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reserve(len(keys))
	seed := seedRecord{ival: value, isInt: true, bounded: true, lo: lo, hi: hi}
	r.records.seedAll(keys, func(rc *record, _ int) {
		rc.ival = value
		rc.isInt = true
		rc.bounded = true
		rc.lo, rc.hi = lo, hi
	})
	for _, key := range keys {
		r.baseline[key] = seed
	}
}

// ReadLocal returns the committed state of key at this replica.
// The second result reports whether the key exists. Reads contend only
// for the key's stripe, never the protocol mutex.
func (r *Replica) ReadLocal(key string) (Value, bool) {
	rc, sp := r.records.peek(key)
	defer sp.mu.RUnlock()
	if rc == nil {
		return Value{}, false
	}
	return rc.value(), true
}

// PendingCount reports how many options are pending on key (tests).
func (r *Replica) PendingCount(key string) int {
	rc, sp := r.records.peek(key)
	defer sp.mu.RUnlock()
	if rc == nil {
		return 0
	}
	return len(rc.pending)
}

// DecidedCount reports how many transaction decisions this replica retains
// for idempotence/reordering protection.
func (r *Replica) DecidedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.decided)
}

// CompactDecided drops up to keepLast of the oldest retained decisions,
// bounding memory on long-lived replicas. Transaction IDs are issue-
// ordered, so dropping the lowest IDs discards the decisions least likely
// to see straggler messages. Returns the number of entries removed.
//
// Operators should keep at least the last few thousand decisions: a
// proposal arriving after its decision was compacted is treated as new and
// votes again, which is harmless for aborted transactions (their pendings
// re-evict via PendingTTL) and unreachable for committed ones in a healthy
// deployment (the coordinator has long stopped retransmitting).
func (r *Replica) CompactDecided(keepLast int) int {
	if keepLast < 0 {
		keepLast = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	excess := len(r.decided) - keepLast
	if excess <= 0 {
		return 0
	}
	ids := make([]txn.ID, 0, len(r.decided))
	for id := range r.decided {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids[:excess] {
		delete(r.decided, id)
	}
	return excess
}

// Decisions returns a copy of every transaction verdict this replica
// retains. The multi-process harness compares these maps across nodes to
// assert agreement (no dual decisions) after crash-restart cycles.
func (r *Replica) Decisions() map[txn.ID]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[txn.ID]bool, len(r.decided))
	for id, commit := range r.decided {
		out[id] = commit
	}
	return out
}

// Snapshot returns the committed state of every key this replica holds.
// Used by anti-entropy checks and the chaos soak's replay-equality audit.
// The view is per-stripe consistent (see recordStore.forEach); callers
// snapshot quiesced or reconcile per key by version.
func (r *Replica) Snapshot() map[string]Value {
	out := make(map[string]Value, r.records.count())
	r.records.forEach(func(k string, rc *record) {
		out[k] = rc.value()
	})
	return out
}

// Crash simulates a process failure: the replica leaves the network and
// loses all in-memory state (records, pendings, decisions, master roles).
// Only the seeded baseline and the WAL — the durable artifacts — survive
// for Restore to rebuild from.
func (r *Replica) Crash() {
	r.cfg.Net.Deregister(r.cfg.Addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashed = true
	r.records.reset(0)
	r.decided = make(map[txn.ID]bool)
	r.masters = make(map[string]*masterKey)
	r.syncs = nil
	if r.leases != nil {
		r.leases = make(map[simnet.Region]*leaseState)
	}
	if r.traces != nil {
		r.traces = make(map[txn.ID]*replicaTrace)
	}
}

// Restore recovers a crashed replica: committed state is rebuilt from the
// seeded baseline plus a WAL replay (repopulating the decided map so
// straggler proposals and decides stay idempotent), then the replica
// rejoins the network. Restoring a live replica is also safe — it reloads
// state from the same durable sources, which the soak harness uses to
// assert replay equality. Decisions whose decide message was lost before
// it reached this replica are not in its WAL and stay missing until
// anti-entropy (SyncFrom) repairs them, exactly like a healed partition.
func (r *Replica) Restore() error {
	r.mu.Lock()
	r.records.reset(len(r.baseline))
	r.decided = make(map[txn.ID]bool)
	r.masters = make(map[string]*masterKey)
	if r.leases != nil {
		r.leases = make(map[simnet.Region]*leaseState)
	}
	for key, s := range r.baseline {
		rc, sp := r.records.acquire(key)
		if s.isInt {
			rc.ival, rc.isInt = s.ival, true
			rc.bounded, rc.lo, rc.hi = s.bounded, s.lo, s.hi
		} else {
			// The baseline slice is immutable and apply never writes a
			// committed slice in place, so the record can adopt it.
			rc.bytes = s.bytes
		}
		sp.mu.Unlock()
	}
	var err error
	var replaySpans []obs.Span
	if r.cfg.WAL != nil {
		now := r.clk.Now()
		err = r.cfg.WAL.Replay(func(e Entry) error {
			if e.Lease != nil {
				// A lease transition, not a decision: rebuild the lease
				// view (expired — clocks don't survive restarts) and leave
				// the decided map alone.
				r.applyLeaseEntryLocked(e.Lease)
				return nil
			}
			r.decided[e.Txn] = e.Commit
			if e.Commit {
				for _, op := range e.Options {
					rc, sp := r.records.acquire(op.Key)
					rc.apply(op)
					sp.mu.Unlock()
					r.Applied++
				}
			}
			if r.spans != nil && e.OptionSpan != 0 {
				// Re-link the replayed decision to the pre-crash option
				// span persisted with the entry, so the causal tree stays
				// stitched across a crash-restart cycle.
				replaySpans = append(replaySpans, obs.Span{
					Txn: e.Txn, ID: obs.NewSpanID(), Parent: e.OptionSpan,
					Stage: obs.StageReplicaWAL, Region: string(r.Region()),
					Note: "replay", Start: now, End: now,
				})
			}
			return nil
		})
	}
	r.RecoveryRuns++
	r.crashed = false
	st := r.spans
	r.mu.Unlock()
	st.AddBatch(replaySpans)
	if err != nil {
		return err
	}
	r.cfg.Net.Register(r.cfg.Addr, r.recv)
	return nil
}

// Crashed reports whether the replica is currently down.
func (r *Replica) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// recv dispatches network messages.
func (r *Replica) recv(m simnet.Message) {
	r.mu.Lock()
	dead := r.crashed
	r.mu.Unlock()
	if dead {
		// A delivery that raced with Crash's deregistration: a dead
		// process handles nothing.
		return
	}
	switch p := m.Payload.(type) {
	case proposeMsg:
		r.onPropose(p)
	case decideMsg:
		r.onDecide(p)
	case classicProposeMsg:
		r.onClassicPropose(p)
	case classicProposeBatchMsg:
		r.onClassicProposeBatch(p)
	case phase1aMsg:
		r.onPhase1a(p)
	case phase1bMsg:
		r.onPhase1b(p)
	case phase2aMsg:
		r.onPhase2a(p)
	case phase2aBatchMsg:
		r.onPhase2aBatch(p)
	case phase2bMsg:
		r.onPhase2b(p)
	case phase2bBatchMsg:
		r.onPhase2bBatch(p)
	case readReq:
		r.onReadReq(p)
	case syncReq:
		r.onSyncReq(p)
	case syncResp:
		r.onSyncResp(p)
	case leaseRequestMsg:
		r.onLeaseRequest(p)
	case leaseGrantMsg:
		r.onLeaseGrant(p)
	}
}

// onPropose handles a fast-path proposal: validate each option against
// committed state and pendings, record accepted options, and vote. All
// options are validated under one lock acquisition and the verdicts leave
// as one coalesced vote batch (one voteMsg per option in compat mode).
func (r *Replica) onPropose(p proposeMsg) {
	now := r.clk.Now()
	votes := make([]optionVote, 0, len(p.Options))

	r.mu.Lock()
	if r.isDecided(p.Txn) {
		// Reordered proposal for an already-decided transaction: planting
		// pendings now would leave orphans. Report and stop.
		r.mu.Unlock()
		for _, op := range p.Options {
			votes = append(votes, optionVote{Key: op.Key, Reason: ReasonDecided})
		}
		r.sendVotes(p.Txn, p.Coord, votes, 0)
		return
	}
	span := r.beginTraceLocked(p.Txn, p.Coord, p.TC, now)
	for _, op := range p.Options {
		rc, sp := r.records.acquire(op.Key)
		rc.evictStale(now, r.cfg.PendingTTL)
		reason := rc.validate(op, 0, p.Txn)
		if reason == ReasonNone {
			rc.addPending(p.Txn, op, 0, now)
			r.FastAccepts++
		} else {
			r.FastRejects++
		}
		sp.mu.Unlock()
		votes = append(votes, optionVote{Key: op.Key,
			Accept: reason == ReasonNone, Reason: reason})
	}
	r.mu.Unlock()

	r.sendVotes(p.Txn, p.Coord, votes, span)
}

// beginTraceLocked records the option-RPC network leg of a traced proposal
// and opens the transaction's trace state, returning the leg's span id (0
// when tracing is off or the proposal is untraced). The leg span is the
// causal anchor for everything this replica later records for the
// transaction — votes parent to it and the WAL persists it. Spans are held
// in the trace state and delivered only via the decide-time flush to the
// coordinator, never folded into the local store: in a single-process
// deployment the replica and coordinator share one store, and recording at
// both ends would double-count every span. Caller holds r.mu.
func (r *Replica) beginTraceLocked(id txn.ID, coord simnet.Addr, tc TraceCtx, now time.Time) uint64 {
	if r.spans == nil || tc.Span == 0 {
		return 0
	}
	leg := obs.Span{
		Txn: id, ID: obs.NewSpanID(), Parent: tc.Span,
		Stage: obs.StageOptionRPC, Region: string(r.Region()),
		Start: time.Unix(0, tc.SentUnixNano), End: now,
	}
	r.evictTracesLocked(now)
	if _, dup := r.traces[id]; !dup && len(r.traces) < maxReplicaTraces {
		r.traces[id] = &replicaTrace{coord: coord, optionSpan: leg.ID,
			spans: []obs.Span{leg}, at: now}
	}
	return leg.ID
}

// sendVotes replies with the replica's verdicts on a proposal: one
// voteBatchMsg normally, one voteMsg per option in compat mode. Votes are in
// proposal (submission) order either way. span, when non-zero, is the
// option-RPC leg the coordinator's vote-return span should parent to.
func (r *Replica) sendVotes(id txn.ID, coord simnet.Addr, votes []optionVote, span uint64) {
	var tc TraceCtx
	if span != 0 {
		tc = TraceCtx{Span: span, SentUnixNano: r.clk.Now().UnixNano()}
	}
	if !r.cfg.PerOptionMessages {
		r.send(coord, voteBatchMsg{Txn: id, Region: r.Region(), Votes: votes, TC: tc})
		return
	}
	for _, v := range votes {
		r.send(coord, voteMsg{Txn: id, Key: v.Key, Accept: v.Accept,
			Reason: v.Reason, Region: r.Region(), TC: tc})
	}
}

// onDecide applies or discards a transaction's options. Decides are
// idempotent and may arrive before the proposal they decide.
func (r *Replica) onDecide(d decideMsg) {
	r.mu.Lock()
	if _, seen := r.decided[d.Txn]; seen {
		r.mu.Unlock()
		return
	}
	now := r.clk.Now()
	var tr *replicaTrace
	var decSpans []obs.Span
	optionSpan := uint64(0)
	st := r.spans
	if st != nil && d.TC.Span != 0 {
		if tr = r.traces[d.Txn]; tr != nil {
			delete(r.traces, d.Txn)
			optionSpan = tr.optionSpan
		}
		decSpans = append(decSpans, obs.Span{
			Txn: d.Txn, ID: obs.NewSpanID(), Parent: d.TC.Span,
			Stage: obs.StageDecideBroadcast, Region: string(r.Region()),
			Start: time.Unix(0, d.TC.SentUnixNano), End: now,
		})
	}
	r.decided[d.Txn] = d.Commit
	for _, op := range d.Options {
		rc, sp := r.records.acquire(op.Key)
		rc.removePending(d.Txn)
		if d.Commit {
			rc.apply(op)
			r.Applied++
		}
		sp.mu.Unlock()
		if ks := r.masters[op.Key]; ks != nil {
			delete(ks.inflight, d.Txn)
		}
	}
	// Log while still holding r.mu so WAL order matches apply order: two
	// decides racing between apply and append could otherwise log in the
	// opposite order, and a replay of physical (OpSet) writes would then
	// reconstruct the wrong final value.
	if r.cfg.WAL != nil {
		walStart := r.clk.Now()
		e := Entry{Txn: d.Txn, Commit: d.Commit, Options: d.Options, At: walStart}
		if len(decSpans) > 0 {
			// Persist the trace context so a post-crash replay can re-link
			// the decision to the pre-crash option span.
			e.TraceSpan = d.TC.Span
			e.OptionSpan = optionSpan
		}
		r.cfg.WAL.Append(e)
		if len(decSpans) > 0 {
			decSpans = append(decSpans, obs.Span{
				Txn: d.Txn, ID: obs.NewSpanID(), Parent: decSpans[0].ID,
				Stage: obs.StageReplicaWAL, Region: string(r.Region()),
				Start: walStart, End: r.clk.Now(),
			})
		}
	}
	r.mu.Unlock()

	if len(decSpans) == 0 {
		return
	}
	// Flush everything this replica recorded for the transaction to the
	// deciding coordinator, which owns the stitched tree. Classic-path
	// acceptors have no trace state (the proposal went to the master), so
	// they rely on the coordinator address carried by the decide.
	all := decSpans
	coord := d.Coord
	if tr != nil {
		all = append(tr.spans, decSpans...)
		if coord == (simnet.Addr{}) {
			coord = tr.coord
		}
	}
	if coord != (simnet.Addr{}) {
		r.send(coord, spanReportMsg{Txn: d.Txn, Spans: all})
	}
}

// send is a convenience wrapper.
func (r *Replica) send(to simnet.Addr, payload any) {
	r.cfg.Net.Send(r.cfg.Addr, to, payload)
}

// HandlePropose feeds a fast-path proposal into the replica as if it had
// arrived from coord over the network. Benchmarks and white-box tests use it
// to drive the prepare path without a coordinator.
func (r *Replica) HandlePropose(id txn.ID, coord simnet.Addr, ops []txn.Op) {
	r.onPropose(proposeMsg{Txn: id, Coord: coord, Options: ops})
}

// HandleDecide feeds a decision into the replica as if broadcast by a
// coordinator. Benchmarks and white-box tests use it with HandlePropose.
func (r *Replica) HandleDecide(id txn.ID, commit bool, ops []txn.Op) {
	r.onDecide(decideMsg{Txn: id, Commit: commit, Options: ops})
}
