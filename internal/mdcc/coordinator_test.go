package mdcc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"planet/internal/latency"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// recordSink captures events and the decision (white-box tests).
type recordSink struct {
	mu      sync.Mutex
	events  []ProgressEvent
	decided bool
	commit  bool
	err     error
}

func (s *recordSink) Progress(e ProgressEvent) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *recordSink) Decided(_ txn.ID, committed bool, err error) {
	s.mu.Lock()
	s.decided, s.commit, s.err = true, committed, err
	s.mu.Unlock()
}

func (s *recordSink) state() (bool, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decided, s.commit, s.err
}

// newLoneCoordinator builds a coordinator whose replicas are unregistered
// addresses, so vote messages are injected directly via onVote.
func newLoneCoordinator(t *testing.T, n int) *Coordinator {
	t.Helper()
	m := simnet.NewMatrix(latency.Constant(time.Microsecond))
	net, err := simnet.New(simnet.Config{Latency: m, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	replicas := make([]simnet.Addr, n)
	for i := range replicas {
		replicas[i] = simnet.Addr{Region: simnet.Region(string(rune('a' + i))), Name: "replica"}
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Net:       net,
		Addr:      simnet.Addr{Region: "a", Name: "coord"},
		Replicas:  replicas,
		MasterFor: func(string) simnet.Addr { return replicas[0] },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func vote(id txn.ID, key string, region int, accept bool, reason RejectReason) voteMsg {
	return voteMsg{Txn: id, Key: key, Accept: accept, Reason: reason,
		Region: simnet.Region(string(rune('a' + region)))}
}

func TestCoordinatorFastQuorumCommits(t *testing.T) {
	c := newLoneCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.onVote(vote(id, "k", i, true, ReasonNone))
	}
	if decided, _, _ := sink.state(); decided {
		t.Fatal("decided with 3 of 4 needed accepts")
	}
	c.onVote(vote(id, "k", 3, true, ReasonNone))
	decided, commit, err := sink.state()
	if !decided || !commit || err != nil {
		t.Fatalf("decided=%v commit=%v err=%v", decided, commit, err)
	}
	// Late vote is harmless.
	c.onVote(vote(id, "k", 4, true, ReasonNone))
}

func TestCoordinatorDuplicateVotesIgnored(t *testing.T) {
	c := newLoneCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	// The same region voting four times must not fake a quorum.
	for i := 0; i < 4; i++ {
		c.onVote(vote(id, "k", 0, true, ReasonNone))
	}
	if decided, _, _ := sink.state(); decided {
		t.Fatal("duplicate votes reached quorum")
	}
}

func TestCoordinatorFatalRejectAborts(t *testing.T) {
	c := newLoneCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	c.onVote(vote(id, "k", 0, true, ReasonNone))
	c.onVote(vote(id, "k", 1, false, ReasonVersion))
	decided, commit, err := sink.state()
	if !decided || commit {
		t.Fatalf("fatal reject: decided=%v commit=%v", decided, commit)
	}
	if !errors.Is(err, ErrConflict) {
		t.Errorf("err=%v", err)
	}
}

func TestCoordinatorAmbiguityFallsBackOnce(t *testing.T) {
	c := newLoneCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	// Two pending-conflict rejects: accepts can still reach 4? votes so
	// far 2 rejects, 3 outstanding, max accepts 3 < 4 → ambiguous after
	// the second reject.
	c.onVote(vote(id, "k", 0, false, ReasonPending))
	if c.Fallbacks != 0 {
		t.Fatal("fell back too early")
	}
	c.onVote(vote(id, "k", 1, false, ReasonPending))
	if c.Fallbacks != 1 {
		t.Fatalf("fallbacks=%d, want 1", c.Fallbacks)
	}
	// Stale fast votes after the fallback change nothing.
	c.onVote(vote(id, "k", 2, true, ReasonNone))
	if decided, _, _ := sink.state(); decided {
		t.Fatal("decided from stale fast votes after fallback")
	}
	// The classic result settles it.
	c.onClassicResult(classicResultMsg{Txn: id, Key: "k", Accepted: true})
	decided, commit, _ := sink.state()
	if !decided || !commit {
		t.Fatalf("classic result ignored: decided=%v commit=%v", decided, commit)
	}
}

func TestCoordinatorMultiOptionAllMustAccept(t *testing.T) {
	c := newLoneCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	ops := []txn.Op{setOp("k1", 0), setOp("k2", 0)}
	if err := c.Submit(id, ops, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	// k1 reaches its quorum.
	for i := 0; i < 4; i++ {
		c.onVote(vote(id, "k1", i, true, ReasonNone))
	}
	if decided, _, _ := sink.state(); decided {
		t.Fatal("decided with k2 still open")
	}
	// k2 hits a fatal conflict: abort.
	c.onVote(vote(id, "k2", 0, false, ReasonBound))
	decided, commit, err := sink.state()
	if !decided || commit || !errors.Is(err, ErrBound) {
		t.Fatalf("decided=%v commit=%v err=%v", decided, commit, err)
	}
}

func TestCoordinatorTimeout(t *testing.T) {
	m := simnet.NewMatrix(latency.Constant(time.Microsecond))
	net, err := simnet.New(simnet.Config{Latency: m, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	replicas := []simnet.Addr{{Region: "a", Name: "r"}, {Region: "b", Name: "r"}, {Region: "c", Name: "r"}}
	c, err := NewCoordinator(CoordinatorConfig{
		Net:           net,
		Addr:          simnet.Addr{Region: "a", Name: "coord"},
		Replicas:      replicas,
		MasterFor:     func(string) simnet.Addr { return replicas[0] },
		CommitTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if decided, commit, err := sink.state(); decided {
			if commit || !errors.Is(err, ErrTimeout) {
				t.Fatalf("commit=%v err=%v", commit, err)
			}
			if c.Timeouts != 1 {
				t.Errorf("timeouts=%d", c.Timeouts)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoordinatorClassicModeSkipsVotes(t *testing.T) {
	c := newLoneCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeClassic, sink); err != nil {
		t.Fatal(err)
	}
	// Fast votes for a classic-mode option are ignored.
	for i := 0; i < 4; i++ {
		c.onVote(vote(id, "k", i, true, ReasonNone))
	}
	if decided, _, _ := sink.state(); decided {
		t.Fatal("classic option decided by fast votes")
	}
	c.onClassicResult(classicResultMsg{Txn: id, Key: "k", Accepted: false, Reason: ReasonVersion})
	decided, commit, err := sink.state()
	if !decided || commit || !errors.Is(err, ErrConflict) {
		t.Fatalf("decided=%v commit=%v err=%v", decided, commit, err)
	}
}

func TestReasonErrMapping(t *testing.T) {
	cases := []struct {
		r    RejectReason
		want error
	}{
		{ReasonBound, ErrBound},
		{ReasonVersion, ErrConflict},
		{ReasonPending, ErrConflict},
		{ReasonClassicOwned, ErrConflict},
		{ReasonDecided, ErrConflict},
		{ReasonBallot, ErrAmbiguous},
		{ReasonNone, ErrConflict},
	}
	for _, tc := range cases {
		if got := reasonErr(tc.r); !errors.Is(got, tc.want) {
			t.Errorf("reasonErr(%v)=%v, want %v", tc.r, got, tc.want)
		}
	}
}

// newEarlyAbortCoordinator is newLoneCoordinator with optimistic abort
// propagation enabled.
func newEarlyAbortCoordinator(t *testing.T, n int) *Coordinator {
	t.Helper()
	m := simnet.NewMatrix(latency.Constant(time.Microsecond))
	net, err := simnet.New(simnet.Config{Latency: m, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	replicas := make([]simnet.Addr, n)
	for i := range replicas {
		replicas[i] = simnet.Addr{Region: simnet.Region(string(rune('a' + i))), Name: "replica"}
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Net:        net,
		Addr:       simnet.Addr{Region: "a", Name: "coord"},
		Replicas:   replicas,
		MasterFor:  func(string) simnet.Addr { return replicas[0] },
		EarlyAbort: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatorEarlyAbortOnConflict(t *testing.T) {
	c := newEarlyAbortCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	// One pending reject leaves the fast quorum reachable: no decision.
	c.onVote(vote(id, "k", 0, false, ReasonPending))
	if decided, _, _ := sink.state(); decided {
		t.Fatal("decided while the fast quorum was still reachable")
	}
	// The second conflict reject makes the quorum unreachable. Without
	// EarlyAbort this falls back to classic; with it, the option is
	// learned rejected on the spot and the abort is decided.
	c.onVote(vote(id, "k", 1, false, ReasonPending))
	decided, commit, err := sink.state()
	if !decided || commit {
		t.Fatalf("early abort: decided=%v commit=%v", decided, commit)
	}
	if !errors.Is(err, ErrConflict) {
		t.Errorf("err=%v, want conflict", err)
	}
	if c.EarlyAborts != 1 || c.Fallbacks != 0 {
		t.Fatalf("EarlyAborts=%d Fallbacks=%d, want 1/0", c.EarlyAborts, c.Fallbacks)
	}
}

func TestCoordinatorEarlyAbortSparesClassicBound(t *testing.T) {
	// Lease/routing rejections still want the classic path: EarlyAbort
	// must not turn a ReasonClassicOwned quorum miss into an abort.
	c := newEarlyAbortCoordinator(t, 5)
	sink := &recordSink{}
	id := txn.NewID()
	if err := c.Submit(id, []txn.Op{setOp("k", 0)}, ModeFast, sink); err != nil {
		t.Fatal(err)
	}
	c.onVote(vote(id, "k", 0, false, ReasonClassicOwned))
	c.onVote(vote(id, "k", 1, false, ReasonClassicOwned))
	if decided, _, _ := sink.state(); decided {
		t.Fatal("classic-owned rejects were early-aborted")
	}
	if c.Fallbacks != 1 || c.EarlyAborts != 0 {
		t.Fatalf("Fallbacks=%d EarlyAborts=%d, want 1/0", c.Fallbacks, c.EarlyAborts)
	}
	c.onClassicResult(classicResultMsg{Txn: id, Key: "k", Accepted: true})
	if decided, commit, _ := sink.state(); !decided || !commit {
		t.Fatal("classic path did not settle the option")
	}
}
