package mdcc

import (
	"sync"
	"testing"
	"time"

	"planet/internal/latency"
	"planet/internal/simnet"
)

// leaseEventLog records lease transitions delivered to the OnEvent observer.
type leaseEventLog struct {
	mu  sync.Mutex
	evs []LeaseEvent
}

func (l *leaseEventLog) record(ev LeaseEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs = append(l.evs, ev)
}

func (l *leaseEventLog) kinds() []LeaseEventKind {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LeaseEventKind, len(l.evs))
	for i, ev := range l.evs {
		out[i] = ev.Kind
	}
	return out
}

// newLeasedReplica builds a lone replica (peers exist only as addresses,
// like newLoneReplica) with leases enabled on a single keyspace "a" — the
// replica's own region, so it is the keyspace's default holder.
func newLeasedReplica(t *testing.T, n int, term time.Duration, w *WAL) (*Replica, *leaseEventLog) {
	t.Helper()
	m := simnet.NewMatrix(latency.Constant(time.Microsecond))
	net, err := simnet.New(simnet.Config{Latency: m, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	peers := make([]simnet.Addr, n)
	for i := range peers {
		peers[i] = simnet.Addr{Region: regionOf(i), Name: "replica"}
	}
	r := NewReplica(ReplicaConfig{Net: net, Addr: peers[0], Peers: peers, WAL: w})
	log := &leaseEventLog{}
	r.EnableLeases(LeaseConfig{
		Term:       term,
		Keyspaces:  []simnet.Region{"a"},
		KeyspaceOf: func(string) simnet.Region { return "a" },
		OnEvent:    log.record,
	})
	return r, log
}

// grantReply fabricates an acceptor's OK reply to this replica's round.
func grantReply(ks simnet.Region, epoch uint64, holder simnet.Region, from int) leaseGrantMsg {
	return leaseGrantMsg{Keyspace: ks, Epoch: epoch, OK: true,
		CurEpoch: epoch, CurHolder: holder, Region: regionOf(from)}
}

func TestLeaseAcquireAndRenew(t *testing.T) {
	r, log := newLeasedReplica(t, 3, time.Second, nil)

	// A round self-grants but one vote of three is not a quorum.
	r.AcquireLease("a")
	if r.HoldsLease("a") {
		t.Fatal("held the lease on a single self-grant")
	}
	if holder, epoch, _ := r.LeaseView("a"); holder != "a" || epoch != 1 {
		t.Fatalf("provisional view = %s@%d, want a@1", holder, epoch)
	}
	// A fresh round is already in flight: re-acquiring is a no-op, the
	// proposed epoch does not inflate.
	r.AcquireLease("a")
	if _, epoch, _ := r.LeaseView("a"); epoch != 1 {
		t.Fatalf("re-acquire during a fresh round bumped the epoch to %d", epoch)
	}

	// The second grant reaches the majority of 2/3: lease held, epoch 1.
	r.onLeaseGrant(grantReply("a", 1, "a", 1))
	if !r.HoldsLease("a") {
		t.Fatal("majority grant did not take the lease")
	}

	// Renewal: the holder repeats the round at the held epoch.
	r.AcquireLease("a")
	r.onLeaseGrant(grantReply("a", 1, "a", 1))
	if !r.HoldsLease("a") {
		t.Fatal("renewal dropped the lease")
	}
	if _, epoch, _ := r.LeaseView("a"); epoch != 1 {
		t.Fatalf("renewal changed the epoch to %d, want 1", epoch)
	}

	want := []LeaseEventKind{LeaseAcquired, LeaseRenewed}
	got := log.kinds()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("event kinds = %v, want %v", got, want)
	}
}

func TestLeaseAcceptorGrantRules(t *testing.T) {
	r, _ := newLeasedReplica(t, 3, time.Second, nil)
	now := time.Now()
	req := func(epoch uint64, holder simnet.Region, ttl time.Duration) leaseRequestMsg {
		return leaseRequestMsg{Keyspace: "a", Epoch: epoch, Holder: holder,
			ExpiresUnixNano: now.Add(ttl).UnixNano(),
			From:            simnet.Addr{Region: holder, Name: "replica"}}
	}

	// Epoch 1 goes to b.
	r.onLeaseRequest(req(1, "b", 40*time.Millisecond))
	if holder, epoch, _ := r.LeaseView("a"); holder != "b" || epoch != 1 {
		t.Fatalf("view = %s@%d, want b@1", holder, epoch)
	}
	// At most one holder per epoch: c cannot also have epoch 1.
	r.onLeaseRequest(req(1, "c", time.Second))
	if holder, _, _ := r.LeaseView("a"); holder != "b" {
		t.Fatalf("epoch 1 regranted to %s", holder)
	}
	// A new epoch is refused while the current lease is live...
	r.onLeaseRequest(req(2, "c", time.Second))
	if holder, epoch, _ := r.LeaseView("a"); holder != "b" || epoch != 2 {
		if epoch == 2 {
			t.Fatalf("epoch 2 granted to %s over b's live lease", holder)
		}
	}
	if _, epoch, _ := r.LeaseView("a"); epoch != 1 {
		t.Fatalf("live lease lost to a higher epoch: now at %d", epoch)
	}
	// ...but the holder itself may bump its own epoch mid-lease.
	r.onLeaseRequest(req(2, "b", 40*time.Millisecond))
	if holder, epoch, _ := r.LeaseView("a"); holder != "b" || epoch != 2 {
		t.Fatalf("same-holder epoch bump refused: view %s@%d", holder, epoch)
	}
	// Renewal: same epoch, same holder, later expiry.
	_, _, before := r.LeaseView("a")
	r.onLeaseRequest(req(2, "b", 80*time.Millisecond))
	if _, _, after := r.LeaseView("a"); !after.After(before) {
		t.Fatal("renewal did not extend expiry")
	}
	// Epoch 0 is never a lease.
	r.onLeaseRequest(req(0, "c", time.Second))
	if holder, _, _ := r.LeaseView("a"); holder != "b" {
		t.Fatal("epoch-0 request changed the lease")
	}

	// Once b's lease lapses on this clock, c's takeover epoch is granted.
	time.Sleep(100 * time.Millisecond)
	r.onLeaseRequest(req(3, "c", time.Second))
	if holder, epoch, _ := r.LeaseView("a"); holder != "c" || epoch != 3 {
		t.Fatalf("post-expiry takeover refused: view %s@%d, want c@3", holder, epoch)
	}
}

func TestLeaseTakeoverAfterExpiry(t *testing.T) {
	r, log := newLeasedReplica(t, 3, time.Second, nil)

	// b holds epoch 1 with a short fuse on this replica's clock.
	r.onLeaseRequest(leaseRequestMsg{Keyspace: "a", Epoch: 1, Holder: "b",
		ExpiresUnixNano: time.Now().Add(30 * time.Millisecond).UnixNano(),
		From:            simnet.Addr{Region: "b", Name: "replica"}})

	// Too early: the acceptor (ourselves) refuses epoch 2, and one peer
	// nack on top makes a majority impossible — the round fails and closes.
	r.AcquireLease("a")
	r.onLeaseGrant(leaseGrantMsg{Keyspace: "a", Epoch: 2, OK: false,
		CurEpoch: 1, CurHolder: "b",
		CurExpiresUnixNano: time.Now().Add(30 * time.Millisecond).UnixNano(),
		Region:             regionOf(1)})
	if r.HoldsLease("a") {
		t.Fatal("claimed the lease before the incumbent expired")
	}

	time.Sleep(50 * time.Millisecond)
	r.AcquireLease("a")
	r.onLeaseGrant(grantReply("a", 2, "a", 1))
	if !r.HoldsLease("a") {
		t.Fatal("post-expiry takeover did not win")
	}
	if got := r.LeaseTakeoverCount(); got != 1 {
		t.Fatalf("LeaseTakeoverCount = %d, want 1", got)
	}
	kinds := log.kinds()
	if len(kinds) == 0 || kinds[len(kinds)-1] != LeaseTakeover {
		t.Fatalf("events %v do not end in a takeover", kinds)
	}
}

// TestLeaseFencingAfterReplay is the deposed-master scenario: a master
// crashes holding epoch 1, replays its WAL (lease comes back expired), the
// cluster has moved to epoch 2 under a new holder — and every stale-epoch
// message the corpse might still emit is fenced, while it refuses to
// sequence new proposals itself.
func TestLeaseFencingAfterReplay(t *testing.T) {
	r, log := newLeasedReplica(t, 3, time.Second, NewWAL(nil))
	master := simnet.Addr{Region: "a", Name: "replica"}
	coord := simnet.Addr{Region: "a", Name: "coord"}

	// Hold epoch 1, then crash and replay.
	r.AcquireLease("a")
	r.onLeaseGrant(grantReply("a", 1, "a", 1))
	if !r.HoldsLease("a") {
		t.Fatal("setup: lease not held")
	}
	r.Crash()
	if err := r.Restore(); err != nil {
		t.Fatal(err)
	}

	// The WAL replays both the granted and the held epoch — expired, since
	// clocks do not survive a restart — so the replica is not master again
	// until it re-acquires.
	if r.HoldsLease("a") {
		t.Fatal("replayed lease came back live; replay must expire it")
	}
	var replayed *LeaseInfo
	for _, li := range r.LeaseTable() {
		if li.Keyspace == "a" {
			replayed = &li
			break
		}
	}
	if replayed == nil || replayed.Epoch != 1 || replayed.HeldEpoch != 1 {
		t.Fatalf("replayed lease table = %+v, want epoch 1 / held_epoch 1", replayed)
	}

	// Meanwhile the survivors elected b at epoch 2; its request lands here.
	r.onLeaseRequest(leaseRequestMsg{Keyspace: "a", Epoch: 2, Holder: "b",
		ExpiresUnixNano: time.Now().Add(time.Second).UnixNano(),
		From:            simnet.Addr{Region: "b", Name: "replica"}})
	kinds := log.kinds()
	if len(kinds) == 0 || kinds[len(kinds)-1] != LeaseDeposed {
		t.Fatalf("learning of epoch 2 did not fire a deposal event: %v", kinds)
	}

	// Fencing layer 1: stale-epoch phase 1a is rejected regardless of ballot.
	r.onPhase1a(phase1aMsg{Key: "k", Ballot: 9, Master: master, Epoch: 1})
	r.mu.Lock()
	promised := r.rec("k").promised
	fenced := r.LeaseFenced
	r.mu.Unlock()
	if promised != 0 {
		t.Fatalf("stale-epoch phase1a took the promise (ballot %d)", promised)
	}
	if fenced != 1 {
		t.Fatalf("LeaseFenced = %d, want 1", fenced)
	}

	// Fencing layer 2: stale-epoch phase 2a (single and batched) is refused.
	r.onPhase2a(phase2aMsg{Txn: 1, Key: "k", Ballot: 9, Option: setOp("k", 1), Master: master, Epoch: 1})
	r.onPhase2aBatch(phase2aBatchMsg{Master: master, Epoch: 1,
		Items: []phase2aItem{{Txn: 2, Key: "k", Ballot: 9, Option: setOp("k", 2)}}})
	r.mu.Lock()
	pendings := len(r.rec("k").pending)
	fenced = r.LeaseFenced
	r.mu.Unlock()
	if pendings != 0 {
		t.Fatalf("stale-epoch phase2a accepted %d pendings", pendings)
	}
	if fenced != 3 {
		t.Fatalf("LeaseFenced = %d, want 3", fenced)
	}

	// Forward compat: epoch 0 (a pre-lease sender) passes the fence, and so
	// does the current epoch.
	r.onPhase1a(phase1aMsg{Key: "k", Ballot: 9, Master: master, Epoch: 0})
	r.onPhase1a(phase1aMsg{Key: "k", Ballot: 10, Master: master, Epoch: 2})
	r.mu.Lock()
	promised = r.rec("k").promised
	r.mu.Unlock()
	if promised != 10 {
		t.Fatalf("unfenced phase1a promise = %d, want 10", promised)
	}

	// And the deposed master itself bounces proposals instead of sequencing:
	// the coordinator is told NotMaster and no per-key mastership starts.
	r.onClassicPropose(classicProposeMsg{Txn: 3, Coord: coord, Option: setOp("k", 3)})
	r.mu.Lock()
	ks := r.masters["k"]
	r.mu.Unlock()
	if ks != nil {
		t.Fatal("deposed master sequenced a proposal instead of bouncing it")
	}
}

// TestLeaseRoundRollback drives the restarted-deposed-master convergence:
// a replica replays held epoch 1, proposes higher epochs, collects nacks
// from peers whose live lease is epoch 2 under b — and must converge its
// granted view on b@2 instead of keeping a provisional self-grant at an
// inflated epoch (which would route its own gateway back to itself
// forever).
func TestLeaseRoundRollback(t *testing.T) {
	r, log := newLeasedReplica(t, 3, time.Second, nil)
	nack := func(epoch uint64) leaseGrantMsg {
		return leaseGrantMsg{Keyspace: "a", Epoch: epoch, OK: false,
			CurEpoch: 2, CurHolder: "b",
			CurExpiresUnixNano: time.Now().Add(time.Second).UnixNano(),
			Region:             regionOf(1)}
	}
	nack2 := func(epoch uint64) leaseGrantMsg {
		m := nack(epoch)
		m.Region = regionOf(2)
		return m
	}

	r.mu.Lock()
	r.applyLeaseEntryLocked(&LeaseRecord{Keyspace: "a", Epoch: 1, Holder: "a", Held: true})
	r.mu.Unlock()

	// Round 1 proposes epoch 2 and self-grants (the replayed lease is
	// expired). Both peers hold b@2 live and nack; the round fails. The
	// epochs are equal, so the rollback cannot apply — but the round must
	// close so the next attempt starts immediately.
	r.AcquireLease("a")
	r.onLeaseGrant(nack(2))
	r.onLeaseGrant(nack2(2))
	if r.HoldsLease("a") {
		t.Fatal("nacked round won the lease")
	}

	// Round 2 proposes epoch 3 above its own provisional grant; the nacks
	// report b@2, a majority is impossible, and the provisional self-grant
	// rolls back to the live view.
	r.AcquireLease("a")
	if _, epoch, _ := r.LeaseView("a"); epoch != 3 {
		t.Fatalf("round 2 proposed epoch %d, want 3", epoch)
	}
	r.onLeaseGrant(nack(3))
	r.onLeaseGrant(nack2(3))
	holder, epoch, _ := r.LeaseView("a")
	if holder != "b" || epoch != 2 {
		t.Fatalf("failed round left view %s@%d, want rollback to b@2", holder, epoch)
	}
	if r.HoldsLease("a") {
		t.Fatal("rolled-back replica still claims mastership")
	}
	kinds := log.kinds()
	if len(kinds) == 0 || kinds[len(kinds)-1] != LeaseDeposed {
		t.Fatalf("rollback did not report the deposal: %v", kinds)
	}
}

// TestLeaseViewAdoption: any grant reply carrying a higher granted view is
// adopted even outside a round, deposing the local holder.
func TestLeaseViewAdoption(t *testing.T) {
	r, log := newLeasedReplica(t, 3, time.Second, nil)
	r.AcquireLease("a")
	r.onLeaseGrant(grantReply("a", 1, "a", 1))
	if !r.HoldsLease("a") {
		t.Fatal("setup: lease not held")
	}

	// A stray reply (no round matches epoch 99) reveals c holds epoch 5.
	r.onLeaseGrant(leaseGrantMsg{Keyspace: "a", Epoch: 99, OK: false,
		CurEpoch: 5, CurHolder: "c",
		CurExpiresUnixNano: time.Now().Add(time.Second).UnixNano(),
		Region:             regionOf(2)})
	holder, epoch, _ := r.LeaseView("a")
	if holder != "c" || epoch != 5 {
		t.Fatalf("higher view not adopted: %s@%d, want c@5", holder, epoch)
	}
	if r.HoldsLease("a") {
		t.Fatal("deposed holder still claims the lease")
	}
	kinds := log.kinds()
	if len(kinds) == 0 || kinds[len(kinds)-1] != LeaseDeposed {
		t.Fatalf("adoption did not fire a deposal event: %v", kinds)
	}
	// The stamped epoch stays at the stale held epoch — deliberately, so
	// peers fence the stragglers.
	r.mu.Lock()
	stamp := r.leaseEpochLocked("k")
	r.mu.Unlock()
	if stamp != 1 {
		t.Fatalf("deposed master stamps epoch %d, want its stale held epoch 1", stamp)
	}
}
