package mdcc

import (
	"fmt"
	"sync"
	"testing"
)

// TestRecordStoreStriping: concurrent per-key writers and full-store
// readers across every stripe stay race-free and converge to the right
// contents (run under -race in the mdcc gate).
func TestRecordStoreStriping(t *testing.T) {
	s := newRecordStore()
	const keys = 512
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				rc, sp := s.acquire(fmt.Sprintf("k-%d", i))
				rc.ival++
				rc.isInt = true
				sp.mu.Unlock()
			}
		}(w)
	}
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := 0
			s.forEach(func(_ string, rc *record) { total += int(rc.ival) })
			_ = total
		}()
	}
	wg.Wait()
	if got := s.count(); got != keys {
		t.Fatalf("count=%d, want %d", got, keys)
	}
	sum := 0
	s.forEach(func(_ string, rc *record) { sum += int(rc.ival) })
	if sum != 4*keys {
		t.Fatalf("sum=%d, want %d", sum, 4*keys)
	}
	// Every stripe should get some share of a uniform keyspace.
	used := 0
	for i := range s.stripes {
		if len(s.stripes[i].m) > 0 {
			used++
		}
	}
	if used < recordStripes/2 {
		t.Fatalf("only %d/%d stripes used for %d keys: bad hash spread", used, recordStripes, keys)
	}
}

// TestRecordStoreReserveAndReset: reserve pre-sizes cold stripes only and
// reset drops everything.
func TestRecordStoreReserveAndReset(t *testing.T) {
	s := newRecordStore()
	rc, sp := s.acquire("a")
	rc.ival = 7
	sp.mu.Unlock()
	s.reserve(1000)
	if v, sp := s.peek("a"); v == nil || v.ival != 7 {
		t.Fatal("reserve dropped a live record")
	} else {
		sp.mu.RUnlock()
	}
	s.reset(0)
	if got := s.count(); got != 0 {
		t.Fatalf("count=%d after reset", got)
	}
	if v, sp := s.peek("a"); v != nil {
		t.Fatal("record survived reset")
	} else {
		sp.mu.RUnlock()
	}
}
