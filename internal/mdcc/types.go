package mdcc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// Mode selects the proposal path a coordinator tries first.
type Mode uint8

const (
	// ModeFast proposes directly to all replicas (Fast Paxos), falling
	// back to the classic path on collision.
	ModeFast Mode = iota
	// ModeClassic routes every option through the record master.
	ModeClassic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeClassic {
		return "classic"
	}
	return "fast"
}

// ClassicQuorum returns the majority quorum for n replicas.
func ClassicQuorum(n int) int { return n/2 + 1 }

// FastQuorum returns the Fast Paxos quorum ⌈3n/4⌉ for n replicas.
func FastQuorum(n int) int { return (3*n + 3) / 4 }

// recoveryThreshold is the minimum number of phase-1b appearances, within a
// classic quorum, at which a pending option may have been (or may become)
// fast-chosen and therefore must be re-proposed: classicQ - (n - fastQ).
func recoveryThreshold(n int) int { return ClassicQuorum(n) - (n - FastQuorum(n)) }

// RejectReason explains why a replica or master refused an option.
type RejectReason uint8

const (
	// ReasonNone marks an accept vote.
	ReasonNone RejectReason = iota
	// ReasonVersion: the record's committed version moved past the
	// transaction's read version. Fatal; retrying cannot help.
	ReasonVersion
	// ReasonPending: a conflicting option from another transaction is
	// pending. Transient; classic fallback may still succeed.
	ReasonPending
	// ReasonBound: a commutative delta would violate the record's
	// integrity bounds. Fatal under current committed+pending state.
	ReasonBound
	// ReasonClassicOwned: the key's promised ballot exceeds the fast
	// ballot, so fast proposals are refused. Retry via classic.
	ReasonClassicOwned
	// ReasonDecided: the transaction was already decided when the
	// proposal arrived (message reordering).
	ReasonDecided
	// ReasonBallot: a classic-path message carried a stale ballot.
	ReasonBallot
	// ReasonNotMaster: the replica a classic proposal was routed to does
	// not hold the key's master lease. Transient; the coordinator
	// re-resolves the master and retries.
	ReasonNotMaster
)

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	switch r {
	case ReasonNone:
		return "accept"
	case ReasonVersion:
		return "version-conflict"
	case ReasonPending:
		return "pending-conflict"
	case ReasonBound:
		return "bound-violation"
	case ReasonClassicOwned:
		return "classic-owned"
	case ReasonDecided:
		return "already-decided"
	case ReasonBallot:
		return "stale-ballot"
	case ReasonNotMaster:
		return "not-master"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Fatal reports whether a rejection for this reason dooms the transaction
// (no retry path can change the outcome).
func (r RejectReason) Fatal() bool {
	return r == ReasonVersion || r == ReasonBound
}

// Errors surfaced through transaction outcomes.
var (
	// ErrConflict reports a write-write conflict (version or pending).
	ErrConflict = errors.New("mdcc: write conflict")
	// ErrBound reports an integrity-bound (demarcation) violation.
	ErrBound = errors.New("mdcc: integrity bound violated")
	// ErrTimeout reports that the coordinator gave up waiting.
	ErrTimeout = errors.New("mdcc: commit timed out")
	// ErrAmbiguous reports that fast and classic attempts both failed to
	// reach a quorum.
	ErrAmbiguous = errors.New("mdcc: could not reach quorum")
	// ErrCrashed reports that the transaction's coordinator crashed before
	// deciding; from the client's side the connection died mid-commit.
	// No decision was broadcast, so the transaction can never commit.
	ErrCrashed = errors.New("mdcc: coordinator crashed")
)

// Value is what a read returns.
type Value struct {
	Bytes   []byte
	Int     int64
	IsInt   bool
	Version int64
}

// ProgressEvent is the coordinator's running commentary on a transaction,
// consumed by the PLANET layer to drive callbacks and likelihood updates.
type ProgressEvent struct {
	Txn  txn.ID
	Kind ProgressKind
	// Key and Region identify the vote for KindVote events.
	Key    string
	Region simnet.Region
	Accept bool
	Reason RejectReason
	// Elapsed is time since submission.
	Elapsed time.Duration
}

// ProgressKind enumerates coordinator progress events.
type ProgressKind uint8

const (
	// KindSubmitted: commit processing started (options sent).
	KindSubmitted ProgressKind = iota
	// KindVote: one replica voted on one option.
	KindVote
	// KindOptionLearned: one option reached a definitive accept/reject.
	KindOptionLearned
	// KindFallback: an option fell back from fast to classic.
	KindFallback
	// KindDecided: the transaction reached its final decision.
	KindDecided
)

// String implements fmt.Stringer.
func (k ProgressKind) String() string {
	switch k {
	case KindSubmitted:
		return "submitted"
	case KindVote:
		return "vote"
	case KindOptionLearned:
		return "option-learned"
	case KindFallback:
		return "fallback"
	case KindDecided:
		return "decided"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ProgressSink receives progress events and the final decision for one
// transaction. Implementations must be safe for concurrent use, must not
// block (events are delivered from network-timer goroutines, sometimes with
// coordinator locks held), and must not call back into the coordinator.
type ProgressSink interface {
	Progress(ProgressEvent)
	Decided(id txn.ID, committed bool, err error)
}

// MasterFor deterministically assigns a key's master region by hashing the
// key over the region list.
func MasterFor(key string, regions []simnet.Region) simnet.Region {
	h := fnv.New32a()
	h.Write([]byte(key))
	return regions[int(h.Sum32())%len(regions)]
}

// --- wire messages (simnet payloads) ---

// TraceCtx is the causal trace context piggybacked on protocol messages so
// spans recorded in different processes stitch into one tree. Span is the
// sender-side span the receiver's spans should parent to; SentUnixNano is
// the sender's clock at send time, letting the receiver time the network
// leg. The zero value means "not traced" and encodes to nothing on the
// wire (see wire.go), so untraced frames are byte-identical to the
// pre-trace protocol and old frames still decode.
type TraceCtx struct {
	Span         uint64
	SentUnixNano int64
}

type proposeMsg struct {
	Txn     txn.ID
	Coord   simnet.Addr
	Options []txn.Op
	TC      TraceCtx
}

type voteMsg struct {
	Txn    txn.ID
	Key    string
	Accept bool
	Reason RejectReason
	Region simnet.Region
	TC     TraceCtx
}

type classicProposeMsg struct {
	Txn    txn.ID
	Coord  simnet.Addr
	Option txn.Op
	TC     TraceCtx
}

type classicResultMsg struct {
	Txn      txn.ID
	Key      string
	Accepted bool
	Reason   RejectReason
	TC       TraceCtx
}

type phase1aMsg struct {
	Key    string
	Ballot uint64
	Master simnet.Addr
	// Epoch is the master's lease epoch for the key's keyspace (0 when
	// leases are off). Acceptors fence messages whose epoch is older than
	// the lease they granted. On the wire it rides as an optional trailing
	// field, so pre-lease frames still decode.
	Epoch uint64
}

type phase1bMsg struct {
	Key     string
	Ballot  uint64
	OK      bool
	Pending []pendingSnapshot
	Region  simnet.Region
}

// pendingSnapshot is a replica's view of one pending option, reported
// during phase 1.
type pendingSnapshot struct {
	Txn    txn.ID
	Option txn.Op
	Ballot uint64
}

type phase2aMsg struct {
	Txn    txn.ID
	Key    string
	Ballot uint64
	Option txn.Op
	Master simnet.Addr
	// Epoch is the master's lease epoch (see phase1aMsg.Epoch).
	Epoch uint64
}

type phase2bMsg struct {
	Txn    txn.ID
	Key    string
	Ballot uint64
	Accept bool
	Region simnet.Region
}

type decideMsg struct {
	Txn     txn.ID
	Commit  bool
	Options []txn.Op
	TC      TraceCtx
	// Coord is the deciding coordinator, carried only when traced (it
	// rides in the same optional trailing wire group as TC): replicas
	// that never saw the proposal — classic-path acceptors — still learn
	// where to flush their decide-time spans.
	Coord simnet.Addr
}

// --- batched wire messages ---
//
// The batch forms carry everything a handler produces for one destination in
// a single network message: one loss draw, one sampled delay, one delivery.
// Per-option semantics are unchanged — each item is processed exactly as its
// per-option counterpart would be, just under one lock acquisition at the
// receiver. The per-option messages above remain the compatibility protocol,
// selected by the PerOptionMessages config knobs, which the equivalence
// tests use to pin batch behavior to the classic wire format.

// optionVote is one option's verdict inside a voteBatchMsg.
type optionVote struct {
	Key    string
	Accept bool
	Reason RejectReason
}

// voteBatchMsg coalesces a replica's votes on every option of one fast-path
// proposal. Votes are ordered as the options appeared in the proposal, i.e.
// submission order.
type voteBatchMsg struct {
	Txn    txn.ID
	Region simnet.Region
	Votes  []optionVote
	TC     TraceCtx
}

// classicProposeBatchMsg carries all of one transaction's classic-path
// options that route to the same master.
type classicProposeBatchMsg struct {
	Txn     txn.ID
	Coord   simnet.Addr
	Options []txn.Op
	TC      TraceCtx
}

// optionResult is one option's verdict inside a classicResultBatchMsg.
type optionResult struct {
	Key      string
	Accepted bool
	Reason   RejectReason
}

// classicResultBatchMsg coalesces a master's same-instant verdicts for
// several options of one transaction.
type classicResultBatchMsg struct {
	Txn     txn.ID
	Results []optionResult
	TC      TraceCtx
}

// spanReportMsg ships spans recorded at a replica or master back to the
// transaction's coordinator, which owns the stitched causal tree. Spans
// travel after the fact (with the vote/result, or after the decide) so the
// hot path never blocks on trace bookkeeping.
type spanReportMsg struct {
	Txn   txn.ID
	Spans []obs.Span
}

// phase2aItem is one option's phase-2a proposal inside a batch. Ballots are
// per-item because they are per-key.
type phase2aItem struct {
	Txn    txn.ID
	Key    string
	Ballot uint64
	Option txn.Op
}

// phase2aBatchMsg groups a master's same-instant phase-2a proposals to one
// peer. Epoch is the master's lease epoch for every item in the batch —
// flush only folds same-epoch proposals together (items of one batch always
// share the master's lease for their keyspace at stamping time).
type phase2aBatchMsg struct {
	Master simnet.Addr
	Items  []phase2aItem
	Epoch  uint64
}

// phase2bItem is one option's phase-2b verdict inside a batch.
type phase2bItem struct {
	Txn    txn.ID
	Key    string
	Ballot uint64
	Accept bool
}

// phase2bBatchMsg coalesces an acceptor's phase-2b replies to one master.
type phase2bBatchMsg struct {
	Region simnet.Region
	Items  []phase2bItem
}
