// Package mdcc implements the strongly consistent, geo-replicated commit
// protocol PLANET runs on: an MDCC-style (multi-data-center consistency)
// optimistic commit protocol with per-record Paxos.
//
// # Protocol sketch
//
// Every region hosts one full replica of the record store. A transaction's
// writes become options — proposed record updates — that must be accepted by
// a quorum of replicas before the transaction can commit. Two proposal paths
// exist:
//
//   - Fast path: the coordinator sends each option directly to all N
//     replicas at the reserved fast ballot 0. An option is chosen once
//     ⌈3N/4⌉ replicas accept it (the Fast Paxos quorum). One wide-area
//     round trip in the common case.
//
//   - Classic path: the coordinator sends the option to the record's
//     master, which sequences it through ordinary Paxos (phase 1 once per
//     key to take ownership, then phase 2 to a majority). One extra hop to
//     the master, but a smaller quorum and no collision ambiguity.
//
// Replicas accept an option only if it is compatible with their committed
// state and with every option already pending on that record: version match
// for physical writes (OpSet), integrity-bound (demarcation) checks for
// commutative integer deltas (OpAdd). A transaction commits when every one
// of its options is learned accepted; the decision is broadcast to all
// replicas, which then apply the pending updates.
//
// # Fast-path collision recovery
//
// When fast-path votes split such that no quorum can form, the coordinator
// falls back to the classic path. The master then performs coordinated Fast
// Paxos recovery: phase 1 at a fresh ballot collects the pending options
// from a majority, and any conflicting option observed at least
// classicQuorum-(N-fastQuorum) times — i.e. any option that may have been,
// or may yet become, fast-chosen — is re-proposed at the new ballot before
// the master's own candidate is considered. This preserves the core safety
// property (no two conflicting options ever both commit) without full
// Generalized Paxos machinery.
//
// # Simplifications relative to the MDCC paper
//
//   - Masters do not fail over; experiments that partition regions keep
//     masters reachable or use the fast path.
//   - Paxos instances are tracked per key rather than per record version;
//     once a key's promised ballot rises above the fast ballot the key stays
//     classic-owned (MDCC likewise demotes contended records to classic).
//   - Reads are served by the client's local replica (snapshot of committed
//     state), as in PLANET's evaluation.
package mdcc
