package mdcc

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// Binary wire codec for the commit protocol's messages, used by the TCP
// transport (internal/realnet). simnet passes payloads by value inside one
// process and never needs it; realnet serializes every payload with this
// codec before it crosses a socket.
//
// Encoding: one tag byte identifying the message type, then the fields in
// struct order. Integers are varints (unsigned unless the field is signed),
// booleans a single 0/1 byte, strings and byte slices length-prefixed. A nil
// byte slice and an empty one encode differently (length+1, with 0 meaning
// nil) so values round-trip exactly. Map fields (syncResp.Records) encode
// with sorted keys so equal messages produce equal bytes.
//
// Decoding is strict: an unknown tag, a truncated buffer, an over-limit
// length, an out-of-range enum, or trailing bytes all return an error and
// never panic — the receiver treats any error as a corrupt frame and closes
// the connection (see realnet).
//
// Version tolerance: commit-path messages may carry an optional trace
// context (TraceCtx) appended *after* their fixed fields. An untraced
// message appends nothing — its frame is byte-identical to the pre-trace
// format — and the decoder reads the context only when bytes remain after
// the fixed fields, so frames from pre-trace senders still decode.

// WireCodec encodes and decodes protocol messages for transmission over a
// byte-oriented transport. The zero value is ready to use.
type WireCodec struct{}

// Append encodes m and appends the bytes to dst, returning the extended
// slice. Only protocol message types are encodable.
func (WireCodec) Append(dst []byte, m any) ([]byte, error) {
	return appendMessage(dst, m)
}

// Decode decodes one message from data, which must contain exactly one
// encoded message (trailing bytes are an error).
func (WireCodec) Decode(data []byte) (any, error) {
	return decodeMessage(data)
}

// Wire tags, one per message type. The order is frozen: appending new types
// is fine, renumbering is a protocol break.
const (
	tagPropose uint8 = 1 + iota
	tagVote
	tagClassicPropose
	tagClassicResult
	tagPhase1a
	tagPhase1b
	tagPhase2a
	tagPhase2b
	tagDecide
	tagVoteBatch
	tagClassicProposeBatch
	tagClassicResultBatch
	tagPhase2aBatch
	tagPhase2bBatch
	tagReadReq
	tagReadResp
	tagSyncReq
	tagSyncResp
	tagSpanReport
	tagLeaseRequest
	tagLeaseGrant
)

// Decode-side sanity limits. A frame that claims more than these is corrupt
// (or hostile), not large: the protocol never produces strings or counts
// anywhere near them.
const (
	maxWireString = 1 << 20 // keys, regions, names
	maxWireBytes  = 1 << 24 // op values
	maxWireCount  = 1 << 16 // slice/map lengths
)

// --- encoder ---

type wireEnc struct{ buf []byte }

func (e *wireEnc) u8(v uint8)       { e.buf = append(e.buf, v) }
func (e *wireEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *wireEnc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }

func (e *wireEnc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *wireEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// bytes encodes a byte slice preserving nil-ness: length+1, with 0 = nil.
func (e *wireEnc) bytes(b []byte) {
	if b == nil {
		e.uvarint(0)
		return
	}
	e.uvarint(uint64(len(b)) + 1)
	e.buf = append(e.buf, b...)
}

func (e *wireEnc) addr(a simnet.Addr) {
	e.str(string(a.Region))
	e.str(a.Name)
}

func (e *wireEnc) op(o txn.Op) {
	e.u8(uint8(o.Kind))
	e.str(o.Key)
	e.bytes(o.Value)
	e.varint(o.Delta)
	e.varint(o.ReadVersion)
}

func (e *wireEnc) ops(ops []txn.Op) {
	e.uvarint(uint64(len(ops)))
	for _, o := range ops {
		e.op(o)
	}
}

func (e *wireEnc) value(v Value) {
	e.bytes(v.Bytes)
	e.varint(v.Int)
	e.bool(v.IsInt)
	e.varint(v.Version)
}

// tc appends the optional trailing trace context. An untraced message
// (Span == 0) appends nothing, keeping its frame byte-identical to the
// pre-trace wire format; a traced one appends the context after the fixed
// fields, where old decoders would have rejected it and new ones look for
// it (version tolerance by trailing extension).
func (e *wireEnc) tc(t TraceCtx) {
	if t.Span == 0 {
		return
	}
	e.uvarint(t.Span)
	e.varint(t.SentUnixNano)
}

// epoch appends the optional trailing lease epoch. Epoch 0 — leases off —
// appends nothing, keeping the frame byte-identical to the pre-lease wire
// format (same version-tolerance scheme as tc).
func (e *wireEnc) epoch(v uint64) {
	if v == 0 {
		return
	}
	e.uvarint(v)
}

func (e *wireEnc) span(sp obs.Span) {
	e.uvarint(uint64(sp.Txn))
	e.uvarint(sp.ID)
	e.uvarint(sp.Parent)
	e.u8(uint8(sp.Stage))
	e.str(sp.Region)
	e.str(sp.Note)
	e.varint(sp.Start.UnixNano())
	e.varint(sp.End.UnixNano())
}

func appendMessage(dst []byte, m any) ([]byte, error) {
	e := &wireEnc{buf: dst}
	switch p := m.(type) {
	case proposeMsg:
		e.u8(tagPropose)
		e.uvarint(uint64(p.Txn))
		e.addr(p.Coord)
		e.ops(p.Options)
		e.tc(p.TC)
	case voteMsg:
		e.u8(tagVote)
		e.uvarint(uint64(p.Txn))
		e.str(p.Key)
		e.bool(p.Accept)
		e.u8(uint8(p.Reason))
		e.str(string(p.Region))
		e.tc(p.TC)
	case classicProposeMsg:
		e.u8(tagClassicPropose)
		e.uvarint(uint64(p.Txn))
		e.addr(p.Coord)
		e.op(p.Option)
		e.tc(p.TC)
	case classicResultMsg:
		e.u8(tagClassicResult)
		e.uvarint(uint64(p.Txn))
		e.str(p.Key)
		e.bool(p.Accepted)
		e.u8(uint8(p.Reason))
		e.tc(p.TC)
	case phase1aMsg:
		e.u8(tagPhase1a)
		e.str(p.Key)
		e.uvarint(p.Ballot)
		e.addr(p.Master)
		e.epoch(p.Epoch)
	case phase1bMsg:
		e.u8(tagPhase1b)
		e.str(p.Key)
		e.uvarint(p.Ballot)
		e.bool(p.OK)
		e.uvarint(uint64(len(p.Pending)))
		for _, ps := range p.Pending {
			e.uvarint(uint64(ps.Txn))
			e.op(ps.Option)
			e.uvarint(ps.Ballot)
		}
		e.str(string(p.Region))
	case phase2aMsg:
		e.u8(tagPhase2a)
		e.uvarint(uint64(p.Txn))
		e.str(p.Key)
		e.uvarint(p.Ballot)
		e.op(p.Option)
		e.addr(p.Master)
		e.epoch(p.Epoch)
	case phase2bMsg:
		e.u8(tagPhase2b)
		e.uvarint(uint64(p.Txn))
		e.str(p.Key)
		e.uvarint(p.Ballot)
		e.bool(p.Accept)
		e.str(string(p.Region))
	case decideMsg:
		e.u8(tagDecide)
		e.uvarint(uint64(p.Txn))
		e.bool(p.Commit)
		e.ops(p.Options)
		// The decide's trailing group also names the coordinator, so
		// classic-path acceptors know where to flush decide-time spans.
		if p.TC.Span != 0 {
			e.tc(p.TC)
			e.addr(p.Coord)
		}
	case voteBatchMsg:
		e.u8(tagVoteBatch)
		e.uvarint(uint64(p.Txn))
		e.str(string(p.Region))
		e.uvarint(uint64(len(p.Votes)))
		for _, v := range p.Votes {
			e.str(v.Key)
			e.bool(v.Accept)
			e.u8(uint8(v.Reason))
		}
		e.tc(p.TC)
	case classicProposeBatchMsg:
		e.u8(tagClassicProposeBatch)
		e.uvarint(uint64(p.Txn))
		e.addr(p.Coord)
		e.ops(p.Options)
		e.tc(p.TC)
	case classicResultBatchMsg:
		e.u8(tagClassicResultBatch)
		e.uvarint(uint64(p.Txn))
		e.uvarint(uint64(len(p.Results)))
		for _, res := range p.Results {
			e.str(res.Key)
			e.bool(res.Accepted)
			e.u8(uint8(res.Reason))
		}
		e.tc(p.TC)
	case phase2aBatchMsg:
		e.u8(tagPhase2aBatch)
		e.addr(p.Master)
		e.uvarint(uint64(len(p.Items)))
		for _, it := range p.Items {
			e.uvarint(uint64(it.Txn))
			e.str(it.Key)
			e.uvarint(it.Ballot)
			e.op(it.Option)
		}
		e.epoch(p.Epoch)
	case phase2bBatchMsg:
		e.u8(tagPhase2bBatch)
		e.str(string(p.Region))
		e.uvarint(uint64(len(p.Items)))
		for _, it := range p.Items {
			e.uvarint(uint64(it.Txn))
			e.str(it.Key)
			e.uvarint(it.Ballot)
			e.bool(it.Accept)
		}
	case readReq:
		e.u8(tagReadReq)
		e.uvarint(p.ReqID)
		e.str(p.Key)
		e.addr(p.From)
	case readResp:
		e.u8(tagReadResp)
		e.uvarint(p.ReqID)
		e.str(p.Key)
		e.bool(p.Found)
		e.value(p.Value)
		e.str(string(p.Region))
	case syncReq:
		e.u8(tagSyncReq)
		e.uvarint(p.ReqID)
		e.addr(p.From)
	case syncResp:
		e.u8(tagSyncResp)
		e.uvarint(p.ReqID)
		keys := make([]string, 0, len(p.Records))
		for k := range p.Records {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.value(p.Records[k])
		}
	case spanReportMsg:
		e.u8(tagSpanReport)
		e.uvarint(uint64(p.Txn))
		e.uvarint(uint64(len(p.Spans)))
		for _, sp := range p.Spans {
			e.span(sp)
		}
	case leaseRequestMsg:
		e.u8(tagLeaseRequest)
		e.str(string(p.Keyspace))
		e.uvarint(p.Epoch)
		e.str(string(p.Holder))
		e.varint(p.ExpiresUnixNano)
		e.addr(p.From)
	case leaseGrantMsg:
		e.u8(tagLeaseGrant)
		e.str(string(p.Keyspace))
		e.uvarint(p.Epoch)
		e.bool(p.OK)
		e.uvarint(p.CurEpoch)
		e.str(string(p.CurHolder))
		e.varint(p.CurExpiresUnixNano)
		e.str(string(p.Region))
	default:
		return dst, fmt.Errorf("mdcc: wire: unencodable message type %T", m)
	}
	return e.buf, nil
}

// --- decoder ---

// wireDec is an error-latching reader over one encoded message. The first
// failure records err; every later read returns zero values, so decoders can
// read fields unconditionally and check err once.
type wireDec struct {
	data []byte
	off  int
	err  error
}

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("mdcc: wire: "+format, args...)
	}
}

func (d *wireDec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

func (d *wireDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) bool() bool {
	b := d.u8()
	if b > 1 {
		d.fail("bad bool byte %d", b)
		return false
	}
	return b == 1
}

// take consumes n bytes after bounds-checking against both the named limit
// and the remaining buffer.
func (d *wireDec) take(n uint64, what string, limit uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > limit {
		d.fail("%s length %d exceeds limit %d", what, n, limit)
		return nil
	}
	if uint64(len(d.data)-d.off) < n {
		d.fail("truncated %s at byte %d", what, d.off)
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *wireDec) str() string {
	n := d.uvarint()
	return string(d.take(n, "string", maxWireString))
}

// bytes decodes a slice encoded by wireEnc.bytes, restoring nil-ness and
// copying out of the frame buffer (the caller may reuse it).
func (d *wireDec) bytes() []byte {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	b := d.take(n-1, "bytes", maxWireBytes)
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// count decodes a slice/map length, bounding it by both the count limit and
// the bytes actually remaining (each element costs ≥1 byte), so a corrupt
// length can never drive a huge allocation.
func (d *wireDec) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > maxWireCount {
		d.fail("count %d exceeds limit %d", n, maxWireCount)
		return 0
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.data)-d.off)
		return 0
	}
	return int(n)
}

func (d *wireDec) addr() simnet.Addr {
	var a simnet.Addr
	a.Region = simnet.Region(d.str())
	a.Name = d.str()
	return a
}

func (d *wireDec) reason() RejectReason {
	r := RejectReason(d.u8())
	if r > ReasonNotMaster {
		d.fail("bad reject reason %d", r)
		return ReasonNone
	}
	return r
}

func (d *wireDec) op() txn.Op {
	var o txn.Op
	o.Kind = txn.OpKind(d.u8())
	if d.err == nil && o.Kind > txn.OpAdd {
		d.fail("bad op kind %d", o.Kind)
		return txn.Op{}
	}
	o.Key = d.str()
	o.Value = d.bytes()
	o.Delta = d.varint()
	o.ReadVersion = d.varint()
	return o
}

func (d *wireDec) ops() []txn.Op {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]txn.Op, n)
	for i := range out {
		out[i] = d.op()
	}
	return out
}

func (d *wireDec) value() Value {
	var v Value
	v.Bytes = d.bytes()
	v.Int = d.varint()
	v.IsInt = d.bool()
	v.Version = d.varint()
	return v
}

// epoch decodes the optional trailing lease epoch: a frame that ends at the
// fixed fields — the pre-lease wire format — yields 0 (leases off).
func (d *wireDec) epoch() uint64 {
	if d.err != nil || d.off >= len(d.data) {
		return 0
	}
	v := d.uvarint()
	if v == 0 && d.err == nil {
		// Epoch 0 encodes as absence; an explicit 0 would not round-trip.
		d.fail("explicit zero trailing epoch")
	}
	return v
}

// tc decodes the optional trailing trace context. A frame that ends at the
// fixed fields — the pre-trace wire format — yields the zero TraceCtx, so
// old frames keep decoding.
func (d *wireDec) tc() TraceCtx {
	if d.err != nil || d.off >= len(d.data) {
		return TraceCtx{}
	}
	var t TraceCtx
	t.Span = d.uvarint()
	t.SentUnixNano = d.varint()
	if t.Span == 0 && d.err == nil {
		// An untraced message encodes no trailing group at all; a present
		// group with a zero span would not round-trip.
		d.fail("explicit zero trailing trace span")
	}
	return t
}

func (d *wireDec) span() obs.Span {
	var sp obs.Span
	sp.Txn = txn.ID(d.uvarint())
	sp.ID = d.uvarint()
	sp.Parent = d.uvarint()
	sp.Stage = obs.Stage(d.u8())
	if d.err == nil && sp.Stage >= obs.NumStages {
		d.fail("bad span stage %d", sp.Stage)
		return obs.Span{}
	}
	sp.Region = d.str()
	sp.Note = d.str()
	sp.Start = time.Unix(0, d.varint())
	sp.End = time.Unix(0, d.varint())
	return sp
}

func decodeMessage(data []byte) (any, error) {
	d := &wireDec{data: data}
	tag := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	var m any
	switch tag {
	case tagPropose:
		var p proposeMsg
		p.Txn = txn.ID(d.uvarint())
		p.Coord = d.addr()
		p.Options = d.ops()
		p.TC = d.tc()
		m = p
	case tagVote:
		var p voteMsg
		p.Txn = txn.ID(d.uvarint())
		p.Key = d.str()
		p.Accept = d.bool()
		p.Reason = d.reason()
		p.Region = simnet.Region(d.str())
		p.TC = d.tc()
		m = p
	case tagClassicPropose:
		var p classicProposeMsg
		p.Txn = txn.ID(d.uvarint())
		p.Coord = d.addr()
		p.Option = d.op()
		p.TC = d.tc()
		m = p
	case tagClassicResult:
		var p classicResultMsg
		p.Txn = txn.ID(d.uvarint())
		p.Key = d.str()
		p.Accepted = d.bool()
		p.Reason = d.reason()
		p.TC = d.tc()
		m = p
	case tagPhase1a:
		var p phase1aMsg
		p.Key = d.str()
		p.Ballot = d.uvarint()
		p.Master = d.addr()
		p.Epoch = d.epoch()
		m = p
	case tagPhase1b:
		var p phase1bMsg
		p.Key = d.str()
		p.Ballot = d.uvarint()
		p.OK = d.bool()
		if n := d.count(); d.err == nil && n > 0 {
			p.Pending = make([]pendingSnapshot, n)
			for i := range p.Pending {
				p.Pending[i].Txn = txn.ID(d.uvarint())
				p.Pending[i].Option = d.op()
				p.Pending[i].Ballot = d.uvarint()
			}
		}
		p.Region = simnet.Region(d.str())
		m = p
	case tagPhase2a:
		var p phase2aMsg
		p.Txn = txn.ID(d.uvarint())
		p.Key = d.str()
		p.Ballot = d.uvarint()
		p.Option = d.op()
		p.Master = d.addr()
		p.Epoch = d.epoch()
		m = p
	case tagPhase2b:
		var p phase2bMsg
		p.Txn = txn.ID(d.uvarint())
		p.Key = d.str()
		p.Ballot = d.uvarint()
		p.Accept = d.bool()
		p.Region = simnet.Region(d.str())
		m = p
	case tagDecide:
		var p decideMsg
		p.Txn = txn.ID(d.uvarint())
		p.Commit = d.bool()
		p.Options = d.ops()
		if p.TC = d.tc(); p.TC.Span != 0 {
			p.Coord = d.addr()
		}
		m = p
	case tagVoteBatch:
		var p voteBatchMsg
		p.Txn = txn.ID(d.uvarint())
		p.Region = simnet.Region(d.str())
		if n := d.count(); d.err == nil && n > 0 {
			p.Votes = make([]optionVote, n)
			for i := range p.Votes {
				p.Votes[i].Key = d.str()
				p.Votes[i].Accept = d.bool()
				p.Votes[i].Reason = d.reason()
			}
		}
		p.TC = d.tc()
		m = p
	case tagClassicProposeBatch:
		var p classicProposeBatchMsg
		p.Txn = txn.ID(d.uvarint())
		p.Coord = d.addr()
		p.Options = d.ops()
		p.TC = d.tc()
		m = p
	case tagClassicResultBatch:
		var p classicResultBatchMsg
		p.Txn = txn.ID(d.uvarint())
		if n := d.count(); d.err == nil && n > 0 {
			p.Results = make([]optionResult, n)
			for i := range p.Results {
				p.Results[i].Key = d.str()
				p.Results[i].Accepted = d.bool()
				p.Results[i].Reason = d.reason()
			}
		}
		p.TC = d.tc()
		m = p
	case tagPhase2aBatch:
		var p phase2aBatchMsg
		p.Master = d.addr()
		if n := d.count(); d.err == nil && n > 0 {
			p.Items = make([]phase2aItem, n)
			for i := range p.Items {
				p.Items[i].Txn = txn.ID(d.uvarint())
				p.Items[i].Key = d.str()
				p.Items[i].Ballot = d.uvarint()
				p.Items[i].Option = d.op()
			}
		}
		p.Epoch = d.epoch()
		m = p
	case tagPhase2bBatch:
		var p phase2bBatchMsg
		p.Region = simnet.Region(d.str())
		if n := d.count(); d.err == nil && n > 0 {
			p.Items = make([]phase2bItem, n)
			for i := range p.Items {
				p.Items[i].Txn = txn.ID(d.uvarint())
				p.Items[i].Key = d.str()
				p.Items[i].Ballot = d.uvarint()
				p.Items[i].Accept = d.bool()
			}
		}
		m = p
	case tagReadReq:
		var p readReq
		p.ReqID = d.uvarint()
		p.Key = d.str()
		p.From = d.addr()
		m = p
	case tagReadResp:
		var p readResp
		p.ReqID = d.uvarint()
		p.Key = d.str()
		p.Found = d.bool()
		p.Value = d.value()
		p.Region = simnet.Region(d.str())
		m = p
	case tagSyncReq:
		var p syncReq
		p.ReqID = d.uvarint()
		p.From = d.addr()
		m = p
	case tagSpanReport:
		var p spanReportMsg
		p.Txn = txn.ID(d.uvarint())
		if n := d.count(); d.err == nil && n > 0 {
			p.Spans = make([]obs.Span, n)
			for i := range p.Spans {
				p.Spans[i] = d.span()
			}
		}
		m = p
	case tagLeaseRequest:
		var p leaseRequestMsg
		p.Keyspace = simnet.Region(d.str())
		p.Epoch = d.uvarint()
		p.Holder = simnet.Region(d.str())
		p.ExpiresUnixNano = d.varint()
		p.From = d.addr()
		m = p
	case tagLeaseGrant:
		var p leaseGrantMsg
		p.Keyspace = simnet.Region(d.str())
		p.Epoch = d.uvarint()
		p.OK = d.bool()
		p.CurEpoch = d.uvarint()
		p.CurHolder = simnet.Region(d.str())
		p.CurExpiresUnixNano = d.varint()
		p.Region = simnet.Region(d.str())
		m = p
	case tagSyncResp:
		var p syncResp
		p.ReqID = d.uvarint()
		if n := d.count(); d.err == nil && n > 0 {
			p.Records = make(map[string]Value, n)
			for i := 0; i < n; i++ {
				k := d.str()
				v := d.value()
				if d.err != nil {
					break
				}
				p.Records[k] = v
			}
		}
		m = p
	default:
		return nil, fmt.Errorf("mdcc: wire: unknown tag %d", tag)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("mdcc: wire: %d trailing bytes after tag %d", len(data)-d.off, tag)
	}
	return m, nil
}
