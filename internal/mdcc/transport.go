package mdcc

import (
	"planet/internal/simnet"
	"planet/internal/vclock"
)

// Transport is the messaging substrate the commit protocol runs on. Two
// implementations exist: simnet.Network, the deterministic in-process WAN
// emulator every test and experiment defaults to, and realnet.Transport,
// which speaks the same message set over real TCP between planetd
// processes (internal/realnet).
//
// Semantics the protocol relies on, and which every implementation must
// provide:
//
//   - Sends are asynchronous and never block on delivery. A handler may
//     send from within a delivery callback without deadlocking, even when
//     the destination is co-located with the sender.
//   - Delivery is at-most-once and unordered; messages may be dropped
//     (losses, partitions, unreachable or deregistered destinations). The
//     protocol is built on idempotence and retry, never on reliability of
//     a single message.
//   - Register replaces any existing handler for the address; Deregister
//     drops in-flight deliveries to it (a dead process receives nothing).
//   - SendBatch delivers its payloads back to back in order, as one wire
//     message (one loss draw on simnet, one TCP frame on realnet).
type Transport interface {
	// Send schedules one payload for delivery from → to.
	Send(from, to simnet.Addr, payload any)
	// SendBatch schedules payloads for delivery from → to as one wire
	// message. An empty batch is a no-op.
	SendBatch(from, to simnet.Addr, payloads []any)
	// Register installs the handler for addr, replacing any previous one.
	Register(addr simnet.Addr, h simnet.Handler)
	// Deregister removes addr from the network.
	Deregister(addr simnet.Addr)
	// Clock is the time source shared by every layer above the transport.
	Clock() vclock.Clock
	// ClockFor is the time source owning region r. Under a partitioned
	// scheduler each region has its own partition and protocol actors pin
	// their timers to their region's clock; single-clock transports return
	// Clock().
	ClockFor(r simnet.Region) vclock.Clock
}
