package mdcc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"planet/internal/txn"
)

func sampleEntries() []Entry {
	return []Entry{
		{Txn: 1, Commit: true, Options: []txn.Op{{Kind: txn.OpSet, Key: "a", Value: []byte("x"), ReadVersion: 0}}, At: time.Unix(100, 0).UTC()},
		{Txn: 2, Commit: false, Options: []txn.Op{{Kind: txn.OpAdd, Key: "b", Delta: -3}}, At: time.Unix(101, 0).UTC()},
		{Txn: 3, Commit: true, Options: []txn.Op{{Kind: txn.OpAdd, Key: "b", Delta: 7}}, At: time.Unix(102, 0).UTC()},
	}
}

func TestWALAppendAndCommits(t *testing.T) {
	w := NewWAL(nil)
	for _, e := range sampleEntries() {
		w.Append(e)
	}
	if w.Len() != 3 {
		t.Errorf("len=%d", w.Len())
	}
	commits := w.Commits()
	if len(commits) != 2 || commits[0].Txn != 1 || commits[1].Txn != 3 {
		t.Errorf("commits=%v", commits)
	}
	if w.Err() != nil {
		t.Errorf("unexpected sink error: %v", w.Err())
	}
}

func TestWALReplayOrderAndStop(t *testing.T) {
	w := NewWAL(nil)
	for _, e := range sampleEntries() {
		w.Append(e)
	}
	var ids []txn.ID
	if err := w.Replay(func(e Entry) error {
		ids = append(ids, e.Txn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("replay order %v", ids)
	}

	stop := errors.New("stop")
	count := 0
	err := w.Replay(func(Entry) error {
		count++
		if count == 2 {
			return stop
		}
		return nil
	})
	if err == nil || !errors.Is(err, stop) {
		t.Errorf("replay stop error=%v", err)
	}
	if count != 2 {
		t.Errorf("replay visited %d entries after stop", count)
	}
}

func TestWALSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	in := sampleEntries()
	for _, e := range in {
		w.Append(e)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadWAL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Txn != in[i].Txn || out[i].Commit != in[i].Commit {
			t.Errorf("entry %d: %+v != %+v", i, out[i], in[i])
		}
		if len(out[i].Options) != len(in[i].Options) {
			t.Errorf("entry %d options differ", i)
			continue
		}
		for j := range in[i].Options {
			if out[i].Options[j].Key != in[i].Options[j].Key ||
				out[i].Options[j].Delta != in[i].Options[j].Delta ||
				string(out[i].Options[j].Value) != string(in[i].Options[j].Value) {
				t.Errorf("entry %d option %d: %+v != %+v", i, j, out[i].Options[j], in[i].Options[j])
			}
		}
	}
}

func TestReadWALRejectsGarbage(t *testing.T) {
	_, err := ReadWAL(strings.NewReader(`{"txn":1}{not json`))
	if err == nil {
		t.Error("garbage accepted")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWALSinkErrorSticky(t *testing.T) {
	w := NewWAL(failingWriter{})
	w.Append(Entry{Txn: 1})
	if w.Err() == nil {
		t.Fatal("sink error not reported")
	}
	// Entries still retained in memory despite the failing sink.
	if w.Len() != 1 {
		t.Errorf("len=%d", w.Len())
	}
}

// TestWALStateReconstruction replays a log into a fresh state map and
// checks it matches the direct application — the recovery use case.
func TestWALStateReconstruction(t *testing.T) {
	w := NewWAL(nil)
	w.Append(Entry{Txn: 1, Commit: true, Options: []txn.Op{{Kind: txn.OpAdd, Key: "n", Delta: 5}}})
	w.Append(Entry{Txn: 2, Commit: false, Options: []txn.Op{{Kind: txn.OpAdd, Key: "n", Delta: 100}}})
	w.Append(Entry{Txn: 3, Commit: true, Options: []txn.Op{{Kind: txn.OpAdd, Key: "n", Delta: -2}}})

	state := make(map[string]int64)
	if err := w.Replay(func(e Entry) error {
		if !e.Commit {
			return nil
		}
		for _, op := range e.Options {
			if op.Kind == txn.OpAdd {
				state[op.Key] += op.Delta
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if state["n"] != 3 {
		t.Errorf("reconstructed n=%d, want 3", state["n"])
	}
}
