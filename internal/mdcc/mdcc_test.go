package mdcc_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// waitSink is a ProgressSink that records events and signals the decision.
type waitSink struct {
	mu     sync.Mutex
	events []mdcc.ProgressEvent
	done   chan struct{}
	commit bool
	err    error
}

func newWaitSink() *waitSink { return &waitSink{done: make(chan struct{})} }

func (s *waitSink) Progress(e mdcc.ProgressEvent) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *waitSink) Decided(_ txn.ID, committed bool, err error) {
	s.mu.Lock()
	s.commit = committed
	s.err = err
	s.mu.Unlock()
	close(s.done)
}

// wait blocks for the decision with a test-failure timeout.
func (s *waitSink) wait(t *testing.T) (bool, error) {
	t.Helper()
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("transaction never decided")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit, s.err
}

func (s *waitSink) eventKinds() map[mdcc.ProgressKind]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[mdcc.ProgressKind]int)
	for _, e := range s.events {
		out[e.Kind]++
	}
	return out
}

func newTestCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.01
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.CommitTimeout == 0 {
		// The production default (5s WAN) is only 50ms of real time at
		// test scale — too tight when the machine is loaded with
		// parallel race-enabled packages. Tests that exercise timeouts
		// set their own.
		cfg.CommitTimeout = 60 * time.Second
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	return c
}

// submit is a helper that runs one transaction to decision.
func submit(t *testing.T, c *cluster.Cluster, from simnet.Region, ops []txn.Op, mode mdcc.Mode) (bool, error, *waitSink) {
	t.Helper()
	sink := newWaitSink()
	if err := c.Coordinator(from).Submit(txn.NewID(), ops, mode, sink); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	committed, err := sink.wait(t)
	return committed, err, sink
}

func TestFastPathCommit(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedBytes("k", []byte("v0"))

	v, ok := c.Replica(regions.California).ReadLocal("k")
	if !ok {
		t.Fatal("seeded key missing")
	}
	committed, err, sink := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: v.Version},
	}, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("want commit, got committed=%v err=%v", committed, err)
	}

	kinds := sink.eventKinds()
	if kinds[mdcc.KindSubmitted] != 1 || kinds[mdcc.KindDecided] != 1 {
		t.Errorf("unexpected event kinds: %v", kinds)
	}
	if kinds[mdcc.KindVote] == 0 {
		t.Error("expected vote progress events")
	}

	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	for _, r := range c.Regions() {
		got, ok := c.Replica(r).ReadLocal("k")
		if !ok || string(got.Bytes) != "v1" || got.Version != v.Version+1 {
			t.Errorf("%s: got %q v%d, want v1 v%d", r, got.Bytes, got.Version, v.Version+1)
		}
	}
}

func TestClassicPathCommit(t *testing.T) {
	c := newTestCluster(t, cluster.Config{MasterRegion: regions.Virginia})
	c.SeedBytes("k", []byte("v0"))

	committed, err, _ := submit(t, c, regions.Ireland, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 0},
	}, mdcc.ModeClassic)
	if !committed || err != nil {
		t.Fatalf("want commit, got committed=%v err=%v", committed, err)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	for _, r := range c.Regions() {
		got, _ := c.Replica(r).ReadLocal("k")
		if string(got.Bytes) != "v1" {
			t.Errorf("%s: got %q, want v1", r, got.Bytes)
		}
	}
}

func TestVersionConflictAborts(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedBytes("k", []byte("v0"))

	committed, err, _ := submit(t, c, regions.Tokyo, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 7}, // stale
	}, mdcc.ModeFast)
	if committed {
		t.Fatal("stale write committed")
	}
	if !errors.Is(err, mdcc.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
}

func TestEmptyTransactionCommits(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	committed, err, _ := submit(t, c, regions.California, nil, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("read-only txn should commit, got committed=%v err=%v", committed, err)
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	err := c.Coordinator(regions.California).Submit(txn.NewID(), []txn.Op{
		{Kind: txn.OpSet, Key: "k"},
		{Kind: txn.OpAdd, Key: "k", Delta: 1},
	}, mdcc.ModeFast, newWaitSink())
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestCommutativeAddsBothCommit(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedInt("stock", 100, 0, 1_000_000)

	var wg sync.WaitGroup
	results := make([]bool, 2)
	for i, from := range []simnet.Region{regions.California, regions.Singapore} {
		wg.Add(1)
		go func(i int, from simnet.Region) {
			defer wg.Done()
			committed, _, _ := submit(t, c, from, []txn.Op{
				{Kind: txn.OpAdd, Key: "stock", Delta: -10},
			}, mdcc.ModeFast)
			results[i] = committed
		}(i, from)
	}
	wg.Wait()

	if !results[0] || !results[1] {
		t.Fatalf("concurrent commutative adds should both commit, got %v", results)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	for _, r := range c.Regions() {
		got, _ := c.Replica(r).ReadLocal("stock")
		if got.Int != 80 {
			t.Errorf("%s: stock=%d, want 80", r, got.Int)
		}
	}
}

func TestBoundViolationAborts(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	c.SeedInt("stock", 5, 0, 100)

	committed, err, _ := submit(t, c, regions.Virginia, []txn.Op{
		{Kind: txn.OpAdd, Key: "stock", Delta: -10},
	}, mdcc.ModeFast)
	if committed {
		t.Fatal("bound-violating add committed")
	}
	if !errors.Is(err, mdcc.ErrBound) {
		t.Fatalf("want ErrBound, got %v", err)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	got, _ := c.Replica(regions.Virginia).ReadLocal("stock")
	if got.Int != 5 {
		t.Errorf("stock=%d, want 5 (unchanged)", got.Int)
	}
}

// TestConflictingSetsAtMostOneWins drives many rounds of two racing writes
// to the same version and checks the safety invariant: never two commits,
// and every replica converges to the winner (or the seed when both abort).
func TestConflictingSetsAtMostOneWins(t *testing.T) {
	for round := 0; round < 10; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			t.Parallel()
			c := newTestCluster(t, cluster.Config{Seed: int64(1000 + round)})
			c.SeedBytes("k", []byte("seed"))

			type result struct {
				committed bool
				val       string
			}
			var wg sync.WaitGroup
			results := make([]result, 2)
			origins := []simnet.Region{regions.California, regions.Tokyo}
			for i := range origins {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					val := fmt.Sprintf("writer-%d", i)
					committed, _, _ := submit(t, c, origins[i], []txn.Op{
						{Kind: txn.OpSet, Key: "k", Value: []byte(val), ReadVersion: 0},
					}, mdcc.ModeFast)
					results[i] = result{committed, val}
				}(i)
			}
			wg.Wait()

			if results[0].committed && results[1].committed {
				t.Fatal("SAFETY: both conflicting writes committed")
			}
			if !c.Quiesce(5 * time.Second) {
				t.Fatal("network did not quiesce")
			}
			want := "seed"
			for _, r := range results {
				if r.committed {
					want = r.val
				}
			}
			for _, region := range c.Regions() {
				got, _ := c.Replica(region).ReadLocal("k")
				if string(got.Bytes) != want {
					t.Errorf("%s: value %q, want %q", region, got.Bytes, want)
				}
			}
		})
	}
}

func TestClassicModeSerializesConflicts(t *testing.T) {
	c := newTestCluster(t, cluster.Config{MasterRegion: regions.Virginia})
	c.SeedBytes("k", []byte("seed"))

	var wg sync.WaitGroup
	committedCount := make(chan bool, 2)
	for _, from := range []simnet.Region{regions.California, regions.Ireland} {
		wg.Add(1)
		go func(from simnet.Region) {
			defer wg.Done()
			committed, _, _ := submit(t, c, from, []txn.Op{
				{Kind: txn.OpSet, Key: "k", Value: []byte(string(from)), ReadVersion: 0},
			}, mdcc.ModeClassic)
			committedCount <- committed
		}(from)
	}
	wg.Wait()
	close(committedCount)

	n := 0
	for ok := range committedCount {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("classic mode: %d of 2 conflicting writes committed, want exactly 1", n)
	}
}

func TestTimeoutUnderPartition(t *testing.T) {
	c := newTestCluster(t, cluster.Config{CommitTimeout: 500 * time.Millisecond})
	c.SeedBytes("k", []byte("v0"))

	// Isolate enough regions that no fast or classic quorum can form.
	for _, r := range []simnet.Region{regions.Virginia, regions.Ireland, regions.Singapore} {
		c.Net.SetRegionDown(r, true)
	}
	committed, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpSet, Key: "k", Value: []byte("v1"), ReadVersion: 0},
	}, mdcc.ModeFast)
	if committed {
		t.Fatal("committed without quorum")
	}
	if !errors.Is(err, mdcc.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestMessageLossStillCommits(t *testing.T) {
	// With 10% loss the fast path often misses its quorum, but fallback
	// plus decide-carried options must still converge every replica that
	// hears the decision; the transaction itself must decide either way.
	c := newTestCluster(t, cluster.Config{LossRate: 0.10, Seed: 7, CommitTimeout: 2 * time.Second})
	c.SeedInt("n", 0, -1_000_000, 1_000_000)

	decided := 0
	committedCount := 0
	for i := 0; i < 20; i++ {
		committed, err, _ := submit(t, c, regions.California, []txn.Op{
			{Kind: txn.OpAdd, Key: "n", Delta: 1},
		}, mdcc.ModeFast)
		decided++
		if committed {
			committedCount++
		} else if !errors.Is(err, mdcc.ErrTimeout) && !errors.Is(err, mdcc.ErrConflict) &&
			!errors.Is(err, mdcc.ErrAmbiguous) && !errors.Is(err, mdcc.ErrBound) {
			t.Fatalf("unexpected abort error: %v", err)
		}
	}
	if decided != 20 {
		t.Fatalf("only %d/20 transactions decided", decided)
	}
	if committedCount == 0 {
		t.Fatal("no transaction committed despite only 10%% loss")
	}
}

func TestWALRecordsDecisions(t *testing.T) {
	c := newTestCluster(t, cluster.Config{WAL: true})
	c.SeedInt("n", 0, 0, 100)

	committed, err, _ := submit(t, c, regions.California, []txn.Op{
		{Kind: txn.OpAdd, Key: "n", Delta: 5},
	}, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("commit failed: %v", err)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	for _, r := range c.Regions() {
		w := c.WALOf(r)
		if w == nil || len(w.Commits()) != 1 {
			t.Errorf("%s: WAL commits = %v, want 1 entry", r, w.Commits())
		}
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := []struct{ n, classic, fast int }{
		{3, 2, 3},
		{5, 3, 4},
		{7, 4, 6},
	}
	for _, tc := range cases {
		if got := mdcc.ClassicQuorum(tc.n); got != tc.classic {
			t.Errorf("ClassicQuorum(%d)=%d, want %d", tc.n, got, tc.classic)
		}
		if got := mdcc.FastQuorum(tc.n); got != tc.fast {
			t.Errorf("FastQuorum(%d)=%d, want %d", tc.n, got, tc.fast)
		}
	}
}
