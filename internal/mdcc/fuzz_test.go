package mdcc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"planet/internal/txn"
)

// FuzzReadWAL checks that the WAL decoder never panics on arbitrary input
// and that encode→decode round-trips whatever it accepts.
func FuzzReadWAL(f *testing.F) {
	var seed bytes.Buffer
	w := NewWAL(&seed)
	w.Append(Entry{Txn: 1, Commit: true, Options: []txn.Op{
		{Kind: txn.OpSet, Key: "a", Value: []byte("x"), ReadVersion: 2},
	}, At: time.Unix(10, 0).UTC()})
	w.Append(Entry{Txn: 2, Commit: false, Options: []txn.Op{
		{Kind: txn.OpAdd, Key: "b", Delta: -3},
	}})
	f.Add(seed.Bytes())
	f.Add([]byte(`{"txn":7,"commit":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadWAL(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Whatever decoded must re-encode and decode to the same entries.
		var buf bytes.Buffer
		rt := NewWAL(&buf)
		for _, e := range entries {
			rt.Append(e)
		}
		back, err := ReadWAL(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip %d -> %d entries", len(entries), len(back))
		}
		for i := range entries {
			if back[i].Txn != entries[i].Txn || back[i].Commit != entries[i].Commit {
				t.Fatalf("entry %d changed: %+v vs %+v", i, entries[i], back[i])
			}
		}
	})
}

// FuzzRecordValidateApply drives a record through arbitrary op sequences
// and asserts the structural invariants: versions only grow, accepted
// bounded adds never let the pessimistic sum escape the bounds, and
// validate/apply never panic.
func FuzzRecordValidateApply(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, int64(5))
	f.Add([]byte{255, 0, 128}, int64(-5))

	f.Fuzz(func(t *testing.T, script []byte, seedVal int64) {
		r := &record{ival: seedVal % 50, isInt: true, bounded: true, lo: -100, hi: 100}
		if r.ival < r.lo || r.ival > r.hi {
			r.ival = 0
		}
		now := time.Now()
		prevVersion := r.version
		for i, bb := range script {
			id := txn.ID(i + 1)
			switch bb % 4 {
			case 0: // propose an add
				op := txn.Op{Kind: txn.OpAdd, Key: "k", Delta: int64(int8(bb)) / 4}
				if r.validate(op, 0, id) == ReasonNone {
					r.addPending(id, op, 0, now)
				}
			case 1: // propose a set
				op := txn.Op{Kind: txn.OpSet, Key: "k", Value: []byte{bb}, ReadVersion: r.version}
				if r.validate(op, 0, id) == ReasonNone {
					r.addPending(id, op, 0, now)
				}
			case 2: // decide-commit the oldest pending
				if len(r.pending) > 0 {
					p := r.pending[0]
					r.removePending(p.txn)
					r.apply(p.op)
				}
			case 3: // decide-abort the oldest pending
				if len(r.pending) > 0 {
					r.removePending(r.pending[0].txn)
				}
			}
			// The demarcation guarantee: under ANY commit/abort
			// interleaving of accepted options, the committed value
			// stays within bounds.
			if r.isInt && (r.ival < r.lo || r.ival > r.hi) {
				t.Fatalf("committed value %d escaped [%d,%d]", r.ival, r.lo, r.hi)
			}
			if r.version < prevVersion {
				t.Fatalf("version regressed %d -> %d", prevVersion, r.version)
			}
			prevVersion = r.version
		}
	})
}

// FuzzRejectReasonStrings pins the enum's string table (no panics, no
// empty names) across arbitrary values.
func FuzzRejectReasonStrings(f *testing.F) {
	f.Add(uint8(0))
	f.Add(uint8(200))
	f.Fuzz(func(t *testing.T, v uint8) {
		s := RejectReason(v).String()
		if s == "" || strings.Contains(s, "%!") {
			t.Fatalf("bad reason string %q", s)
		}
	})
}
