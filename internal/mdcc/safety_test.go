package mdcc_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// TestRandomizedSafety drives a randomized mixed workload — physical writes
// and bounded commutative deltas over a tiny keyspace from every region,
// fast and classic, concurrently — and then checks the protocol's safety
// invariants:
//
//  1. agreement: all replicas converge to identical values and versions;
//  2. version accounting: each key's version equals its committed writes;
//  3. serializability of physical writes: committed Sets on a key have
//     distinct, consecutive read-versions (no lost updates);
//  4. demarcation: integer values equal seed + sum of committed deltas and
//     never leave their bounds;
//  5. WAL agreement: every replica's log commits exactly the same
//     transaction set.
func TestRandomizedSafety(t *testing.T) {
	for round := 0; round < 6; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			t.Parallel()
			runSafetyRound(t, int64(9000+round))
		})
	}
}

type committedOp struct {
	op txn.Op
}

func runSafetyRound(t *testing.T, seed int64) {
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: seed, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	}()

	const (
		nSetKeys = 3
		nIntKeys = 2
		seedInt  = 50
		boundLo  = 0
		boundHi  = 100
		clients  = 10
		perCli   = 8
	)
	setKeys := make([]string, nSetKeys)
	for i := range setKeys {
		setKeys[i] = fmt.Sprintf("set-%d", i)
		c.SeedBytes(setKeys[i], []byte("seed"))
	}
	intKeys := make([]string, nIntKeys)
	for i := range intKeys {
		intKeys[i] = fmt.Sprintf("int-%d", i)
		c.SeedInt(intKeys[i], seedInt, boundLo, boundHi)
	}

	var (
		mu        sync.Mutex
		committed []committedOp
		wg        sync.WaitGroup
	)
	regionList := c.Regions()
	for cl := 0; cl < clients; cl++ {
		rng := rand.New(rand.NewSource(seed + int64(cl)*31))
		region := regionList[cl%len(regionList)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			coord := c.Coordinator(region)
			rep := c.Replica(region)
			for i := 0; i < perCli; i++ {
				mode := mdcc.ModeFast
				if rng.Intn(3) == 0 {
					mode = mdcc.ModeClassic
				}
				var ops []txn.Op
				if rng.Intn(2) == 0 {
					key := setKeys[rng.Intn(nSetKeys)]
					v, _ := rep.ReadLocal(key)
					ops = append(ops, txn.Op{
						Kind: txn.OpSet, Key: key,
						Value:       []byte(fmt.Sprintf("w-%d-%d", seed, rng.Int63())),
						ReadVersion: v.Version,
					})
				} else {
					key := intKeys[rng.Intn(nIntKeys)]
					ops = append(ops, txn.Op{
						Kind: txn.OpAdd, Key: key, Delta: int64(rng.Intn(21) - 10),
					})
				}
				sink := newWaitSink()
				if err := coord.Submit(txn.NewID(), ops, mode, sink); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ok, _ := sink.wait(t)
				if ok {
					mu.Lock()
					for _, op := range ops {
						committed = append(committed, committedOp{op})
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if !c.Quiesce(10 * time.Second) {
		t.Fatal("network did not quiesce")
	}

	// Committed write counts per key.
	writesPerKey := make(map[string]int)
	deltaPerKey := make(map[string]int64)
	versionsSeen := make(map[string]map[int64]int) // key -> readVersion -> count
	for _, co := range committed {
		writesPerKey[co.op.Key]++
		if co.op.Kind == txn.OpAdd {
			deltaPerKey[co.op.Key] += co.op.Delta
		} else {
			m := versionsSeen[co.op.Key]
			if m == nil {
				m = make(map[int64]int)
				versionsSeen[co.op.Key] = m
			}
			m[co.op.ReadVersion]++
		}
	}

	// Invariant 3: committed Sets on a key never share a read-version.
	for key, vs := range versionsSeen {
		for rv, n := range vs {
			if n > 1 {
				t.Errorf("LOST UPDATE: %d committed Sets on %s at read-version %d", n, key, rv)
			}
		}
	}

	// Invariants 1, 2, 4: converged replicas with exact accounting.
	ref := make(map[string]mdcc.Value)
	first := regionList[0]
	for _, key := range append(append([]string{}, setKeys...), intKeys...) {
		v, ok := c.Replica(first).ReadLocal(key)
		if !ok {
			t.Fatalf("%s missing at %s", key, first)
		}
		ref[key] = v
		if int(v.Version) != writesPerKey[key] {
			t.Errorf("%s: version %d != %d committed writes", key, v.Version, writesPerKey[key])
		}
	}
	for _, key := range intKeys {
		want := int64(seedInt) + deltaPerKey[key]
		if ref[key].Int != want {
			t.Errorf("%s: value %d != seed+deltas %d", key, ref[key].Int, want)
		}
		if ref[key].Int < boundLo || ref[key].Int > boundHi {
			t.Errorf("%s: value %d outside bounds [%d,%d]", key, ref[key].Int, boundLo, boundHi)
		}
	}
	for _, region := range regionList[1:] {
		for key, want := range ref {
			got, ok := c.Replica(region).ReadLocal(key)
			if !ok || got.Version != want.Version || got.Int != want.Int ||
				string(got.Bytes) != string(want.Bytes) {
				t.Errorf("DIVERGENCE on %s: %s has (v%d,%q,%d), %s has (v%d,%q,%d)",
					key, first, want.Version, want.Bytes, want.Int,
					region, got.Version, got.Bytes, got.Int)
			}
		}
	}

	// Invariant 5: identical committed-transaction sets in every WAL.
	refCommits := walCommitSet(t, c, first)
	for _, region := range regionList[1:] {
		got := walCommitSet(t, c, region)
		if len(got) != len(refCommits) {
			t.Errorf("WAL size mismatch: %s has %d commits, %s has %d",
				first, len(refCommits), region, len(got))
			continue
		}
		for id := range refCommits {
			if !got[id] {
				t.Errorf("WAL at %s missing commit %v", region, id)
			}
		}
	}
}

func walCommitSet(t *testing.T, c *cluster.Cluster, region simnet.Region) map[txn.ID]bool {
	t.Helper()
	out := make(map[txn.ID]bool)
	w := c.WALOf(region)
	if w == nil {
		t.Fatalf("no WAL at %v", region)
	}
	for _, e := range w.Commits() {
		out[e.Txn] = true
	}
	return out
}
