package mdcc_test

// Tests for the per-destination message batching introduced with the
// PrepareBatch/VoteBatch wire forms: per-option semantics on mixed batches,
// resilience to losing a whole batch message, message-count reduction and
// its determinism, and outcome equivalence against the legacy
// one-message-per-option wire format.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// multiOps builds an n-option fast-path transaction over seeded keys.
func multiOps(c *cluster.Cluster, t *testing.T, prefix string, n int) []txn.Op {
	t.Helper()
	ops := make([]txn.Op, n)
	for i := range ops {
		key := fmt.Sprintf("%s-%03d", prefix, i)
		c.SeedBytes(key, []byte("v0"))
		v, ok := c.Replica(regions.California).ReadLocal(key)
		if !ok {
			t.Fatalf("seeded key %s missing", key)
		}
		ops[i] = txn.Op{Kind: txn.OpSet, Key: key, Value: []byte("v1"), ReadVersion: v.Version}
	}
	return ops
}

func TestBatchMixedAcceptReject(t *testing.T) {
	// A batch carrying both acceptable and fatally-rejectable options must
	// produce per-option votes: the stale option's version reject is fatal
	// and aborts the transaction even though its batchmates validate.
	c := newTestCluster(t, cluster.Config{})
	ops := multiOps(c, t, "mixed", 3)
	ops[1].ReadVersion = 99 // stale: no replica has version 99

	committed, err, sink := submit(t, c, regions.California, ops, mdcc.ModeFast)
	if committed {
		t.Fatal("transaction with a fatally stale option committed")
	}
	if err == nil {
		t.Fatal("expected an abort error")
	}
	if kinds := sink.eventKinds(); kinds[mdcc.KindVote] == 0 {
		t.Errorf("expected per-option vote events, got %v", kinds)
	}

	// The batchmates must not have been applied anywhere.
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	for _, r := range c.Regions() {
		for _, op := range ops {
			v, ok := c.Replica(r).ReadLocal(op.Key)
			if !ok || string(v.Bytes) != "v0" {
				t.Errorf("%s/%s: got %q, want untouched v0", r, op.Key, v.Bytes)
			}
		}
	}
}

func TestBatchAllAcceptCommits(t *testing.T) {
	c := newTestCluster(t, cluster.Config{})
	ops := multiOps(c, t, "ok", 4)
	committed, err, _ := submit(t, c, regions.California, ops, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("want commit, got committed=%v err=%v", committed, err)
	}
	if !c.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	for _, r := range c.Regions() {
		for _, op := range ops {
			v, _ := c.Replica(r).ReadLocal(op.Key)
			if string(v.Bytes) != "v1" {
				t.Errorf("%s/%s: got %q, want v1", r, op.Key, v.Bytes)
			}
		}
	}
}

func TestBatchPartialLossFastQuorum(t *testing.T) {
	// Cutting one replica→coordinator link loses that replica's entire
	// coalesced vote batch. The fast path must still commit from the
	// remaining four votes (fast quorum of five is four).
	c := newTestCluster(t, cluster.Config{})
	ops := multiOps(c, t, "cut1", 3)
	c.Net.SetLinkCut(regions.Tokyo, regions.California, true)

	committed, err, _ := submit(t, c, regions.California, ops, mdcc.ModeFast)
	if !committed || err != nil {
		t.Fatalf("want commit despite one lost vote batch, got committed=%v err=%v", committed, err)
	}
}

func TestBatchPartialLossClassicQuorum(t *testing.T) {
	// The classic path coalesces phase2a/2b into per-destination batches.
	// Losing two replicas' phase2b batches leaves three of five acceptors —
	// exactly the classic quorum — so the commit must still go through.
	c := newTestCluster(t, cluster.Config{MasterRegion: regions.California})
	ops := multiOps(c, t, "cut2", 3)
	c.Net.SetLinkCut(regions.Tokyo, regions.California, true)
	c.Net.SetLinkCut(regions.Singapore, regions.California, true)

	committed, err, _ := submit(t, c, regions.California, ops, mdcc.ModeClassic)
	if !committed || err != nil {
		t.Fatalf("want classic commit with 3/5 acceptors, got committed=%v err=%v", committed, err)
	}
}

func TestBatchMessageCountDeterministic(t *testing.T) {
	// Batching exists to cut messages per commit; that reduction must be
	// deterministic. Two identical runs send identical message counts, and
	// the batched wire format sends strictly fewer messages than the
	// per-option one for a multi-option transaction.
	count := func(perOption bool) uint64 {
		c := newTestCluster(t, cluster.Config{PerOptionMessages: perOption})
		ops := multiOps(c, t, "count", 4)
		before := c.Net.Sent.Load()
		committed, err, _ := submit(t, c, regions.California, ops, mdcc.ModeFast)
		if !committed || err != nil {
			t.Fatalf("want commit, got committed=%v err=%v", committed, err)
		}
		if !c.Quiesce(5 * time.Second) {
			t.Fatal("network did not quiesce")
		}
		return c.Net.Sent.Load() - before
	}

	batched := count(false)
	if again := count(false); again != batched {
		t.Errorf("batched message count not deterministic: %d vs %d", batched, again)
	}
	perOption := count(true)
	if batched >= perOption {
		t.Errorf("batched run sent %d messages, per-option sent %d; want a reduction", batched, perOption)
	}
}

// TestBatchPerOptionEquivalence drives the same transaction sequence
// through a batched-wire cluster and a per-option-wire cluster for several
// seeds and demands identical outcomes and identical final replica state.
// The mix includes multi-key sets spanning masters, bounded adds, a bound
// violation, and a stale read version.
func TestBatchPerOptionEquivalence(t *testing.T) {
	type outcome struct {
		committed bool
		errText   string
	}
	run := func(seed int64, perOption bool) ([]outcome, map[simnet.Region]map[string]mdcc.Value) {
		c := newTestCluster(t, cluster.Config{Seed: seed, PerOptionMessages: perOption})
		for i := 0; i < 4; i++ {
			c.SeedBytes(fmt.Sprintf("eq-b-%d", i), []byte("v0"))
		}
		for i := 0; i < 4; i++ {
			c.SeedInt(fmt.Sprintf("eq-i-%d", i), 10, 0, 100)
		}
		txns := [][]txn.Op{
			{ // multi-key fast-path set, masters spread by key hash
				{Kind: txn.OpSet, Key: "eq-b-0", Value: []byte("a"), ReadVersion: 0},
				{Kind: txn.OpSet, Key: "eq-b-1", Value: []byte("b"), ReadVersion: 0},
				{Kind: txn.OpSet, Key: "eq-b-2", Value: []byte("c"), ReadVersion: 0},
			},
			{ // commutative adds within bounds
				{Kind: txn.OpAdd, Key: "eq-i-0", Delta: 5},
				{Kind: txn.OpAdd, Key: "eq-i-1", Delta: -3},
			},
			{ // bound violation: 10-50 < 0 is a fatal reject
				{Kind: txn.OpAdd, Key: "eq-i-2", Delta: -50},
			},
			{ // stale read version: fatal reject
				{Kind: txn.OpSet, Key: "eq-b-3", Value: []byte("x"), ReadVersion: 7},
			},
			{ // second write to an already-written key, correct version
				{Kind: txn.OpSet, Key: "eq-b-0", Value: []byte("a2"), ReadVersion: 1},
			},
		}
		var outs []outcome
		for _, ops := range txns {
			committed, err, _ := submit(t, c, regions.Ireland, ops, mdcc.ModeFast)
			o := outcome{committed: committed}
			if err != nil {
				o.errText = err.Error()
			}
			outs = append(outs, o)
		}
		if !c.Quiesce(5 * time.Second) {
			t.Fatal("network did not quiesce")
		}
		state := make(map[simnet.Region]map[string]mdcc.Value)
		for _, r := range c.Regions() {
			state[r] = c.Replica(r).Snapshot()
		}
		return outs, state
	}

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			batchOuts, batchState := run(seed, false)
			legacyOuts, legacyState := run(seed, true)
			if !reflect.DeepEqual(batchOuts, legacyOuts) {
				t.Errorf("outcomes diverge:\nbatched:    %+v\nper-option: %+v", batchOuts, legacyOuts)
			}
			if !reflect.DeepEqual(batchState, legacyState) {
				t.Errorf("final replica state diverges between wire formats")
			}
		})
	}
}
