package mdcc

import (
	"planet/internal/simnet"
	"planet/internal/txn"
)

// masterKey is the master-role state this replica keeps for one key it owns.
type masterKey struct {
	ballot   uint64
	leased   bool
	p1       *phase1Run
	queue    []classicProposeMsg
	inflight map[txn.ID]*masterOption
}

// phase1Run tracks an in-progress phase 1 (ownership + recovery discovery).
type phase1Run struct {
	ballot uint64
	oks    map[simnet.Region]bool
	seen   map[txn.ID]*seenOption
}

// seenOption counts how many phase-1b responses reported a pending option.
type seenOption struct {
	op    txn.Op
	count int
}

// masterOption tracks one option's phase-2 quorum at the master.
type masterOption struct {
	id      txn.ID
	op      txn.Op
	ballot  uint64
	accepts map[simnet.Region]bool
	rejects int
	// coord is the coordinator waiting for the result; nil for recovery
	// re-proposals, which have no direct requester.
	coord *simnet.Addr
	done  bool
}

// masterFor returns (creating if needed) the master state for key.
// Caller holds r.mu.
func (r *Replica) masterFor(key string) *masterKey {
	ks := r.masters[key]
	if ks == nil {
		ks = &masterKey{inflight: make(map[txn.ID]*masterOption)}
		r.masters[key] = ks
	}
	return ks
}

// onClassicPropose handles a coordinator's classic-path request for one
// option. The first proposal for a key triggers phase 1 (taking ownership
// and running Fast Paxos recovery); later proposals are sequenced directly.
func (r *Replica) onClassicPropose(p classicProposeMsg) {
	r.mu.Lock()
	if r.isDecided(p.Txn) {
		committed := r.decided[p.Txn]
		r.mu.Unlock()
		r.send(p.Coord, classicResultMsg{Txn: p.Txn, Key: p.Option.Key,
			Accepted: committed, Reason: ReasonDecided})
		return
	}
	ks := r.masterFor(p.Option.Key)
	r.ClassicRuns++
	if ks.leased {
		outbox := r.sequenceLocked(ks, p)
		r.mu.Unlock()
		r.flush(outbox)
		return
	}
	ks.queue = append(ks.queue, p)
	var outbox []envelope
	if ks.p1 == nil {
		outbox = r.startPhase1Locked(p.Option.Key, ks)
	}
	r.mu.Unlock()
	r.flush(outbox)
}

// isDecided reports whether the transaction has a recorded decision.
// Caller holds r.mu.
func (r *Replica) isDecided(id txn.ID) bool {
	_, ok := r.decided[id]
	return ok
}

// envelope is an outgoing message staged while holding the lock.
type envelope struct {
	to      simnet.Addr
	payload any
}

// flush sends staged messages after the lock is released.
func (r *Replica) flush(out []envelope) {
	for _, e := range out {
		r.send(e.to, e.payload)
	}
}

// startPhase1Locked begins phase 1 for key at a fresh ballot. The replica
// promises to itself synchronously and broadcasts phase 1a to its peers.
// Caller holds r.mu; returns messages to send after unlock.
func (r *Replica) startPhase1Locked(key string, ks *masterKey) []envelope {
	ks.ballot++
	run := &phase1Run{
		ballot: ks.ballot,
		oks:    map[simnet.Region]bool{r.Region(): true},
		seen:   make(map[txn.ID]*seenOption),
	}
	ks.p1 = run

	// Self-promise and self-report of pendings.
	rc := r.rec(key)
	if ks.ballot > rc.promised {
		rc.promised = ks.ballot
	}
	for _, p := range rc.pending {
		run.seen[p.txn] = &seenOption{op: p.op, count: 1}
	}

	var out []envelope
	for _, peer := range r.cfg.Peers {
		if peer == r.cfg.Addr {
			continue
		}
		out = append(out, envelope{peer, phase1aMsg{Key: key, Ballot: ks.ballot, Master: r.cfg.Addr}})
	}
	// Degenerate single-replica cluster: quorum is already met.
	if len(run.oks) >= ClassicQuorum(len(r.cfg.Peers)) {
		out = append(out, r.finishPhase1Locked(key, ks)...)
	}
	return out
}

// onPhase1a is the acceptor side of phase 1.
func (r *Replica) onPhase1a(m phase1aMsg) {
	r.mu.Lock()
	rc := r.rec(m.Key)
	ok := m.Ballot >= rc.promised
	if ok {
		rc.promised = m.Ballot
	}
	resp := phase1bMsg{Key: m.Key, Ballot: m.Ballot, OK: ok, Region: r.Region()}
	if ok {
		for _, p := range rc.pending {
			resp.Pending = append(resp.Pending, pendingSnapshot{Txn: p.txn, Option: p.op, Ballot: p.ballot})
		}
	}
	r.mu.Unlock()
	r.send(m.Master, resp)
}

// onPhase1b is the master side of phase 1 response collection.
func (r *Replica) onPhase1b(b phase1bMsg) {
	r.mu.Lock()
	ks := r.masters[b.Key]
	if ks == nil || ks.p1 == nil || b.Ballot != ks.p1.ballot || !b.OK {
		r.mu.Unlock()
		return
	}
	run := ks.p1
	if run.oks[b.Region] {
		r.mu.Unlock()
		return
	}
	run.oks[b.Region] = true
	for _, ps := range b.Pending {
		if s := run.seen[ps.Txn]; s != nil {
			s.count++
		} else {
			run.seen[ps.Txn] = &seenOption{op: ps.Option, count: 1}
		}
	}
	var out []envelope
	if len(run.oks) >= ClassicQuorum(len(r.cfg.Peers)) {
		out = r.finishPhase1Locked(b.Key, ks)
	}
	r.mu.Unlock()
	r.flush(out)
}

// finishPhase1Locked completes ownership: re-propose any possibly
// fast-chosen options (coordinated recovery), then drain queued client
// proposals. Caller holds r.mu; returns staged messages.
func (r *Replica) finishPhase1Locked(key string, ks *masterKey) []envelope {
	run := ks.p1
	ks.p1 = nil
	ks.leased = true

	var out []envelope
	thr := recoveryThreshold(len(r.cfg.Peers))
	for id, s := range run.seen {
		if s.count < thr {
			continue
		}
		if r.isDecided(id) {
			continue
		}
		// Possibly fast-chosen: must be fixed at the new ballot before
		// any competing value. Recovery skips validation by design.
		r.RecoveryRuns++
		out = append(out, r.proposeAtMasterLocked(ks, key, id, s.op, nil)...)
	}

	queue := ks.queue
	ks.queue = nil
	for _, p := range queue {
		out = append(out, r.sequenceLocked(ks, p)...)
	}
	return out
}

// sequenceLocked validates and proposes one client option at the master's
// ballot. Caller holds r.mu; returns staged messages.
func (r *Replica) sequenceLocked(ks *masterKey, p classicProposeMsg) []envelope {
	key := p.Option.Key
	if r.isDecided(p.Txn) {
		return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: key,
			Accepted: r.decided[p.Txn], Reason: ReasonDecided}}}
	}
	if mo := ks.inflight[p.Txn]; mo != nil {
		// The option is already in flight (fast leftover recovered, or a
		// duplicate fallback): attach the coordinator to its outcome.
		if mo.done {
			return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: key,
				Accepted: len(mo.accepts) >= ClassicQuorum(len(r.cfg.Peers))}}}
		}
		mo.coord = &p.Coord
		return nil
	}
	rc := r.rec(key)
	rc.evictStale(r.clk.Now(), r.cfg.PendingTTL)
	if reason := rc.validate(p.Option, ks.ballot, p.Txn); reason != ReasonNone {
		return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: key,
			Accepted: false, Reason: reason}}}
	}
	return r.proposeAtMasterLocked(ks, key, p.Txn, p.Option, &p.Coord)
}

// proposeAtMasterLocked runs phase 2 for one option: the master accepts
// locally, then asks its peers. Caller holds r.mu; returns staged messages.
func (r *Replica) proposeAtMasterLocked(ks *masterKey, key string, id txn.ID, op txn.Op, coord *simnet.Addr) []envelope {
	now := r.clk.Now()
	rc := r.rec(key)
	rc.evictConflictingBelow(op, ks.ballot, id)
	rc.addPending(id, op, ks.ballot, now)

	mo := &masterOption{
		id: id, op: op, ballot: ks.ballot,
		accepts: map[simnet.Region]bool{r.Region(): true},
		coord:   coord,
	}
	ks.inflight[id] = mo

	var out []envelope
	for _, peer := range r.cfg.Peers {
		if peer == r.cfg.Addr {
			continue
		}
		out = append(out, envelope{peer, phase2aMsg{Txn: id, Key: key,
			Ballot: ks.ballot, Option: op, Master: r.cfg.Addr}})
	}
	out = append(out, r.checkMasterQuorumLocked(ks, mo)...)
	return out
}

// onPhase2a is the acceptor side of phase 2: obey the master if the ballot
// is current.
func (r *Replica) onPhase2a(m phase2aMsg) {
	r.mu.Lock()
	var accept bool
	if r.isDecided(m.Txn) {
		accept = r.decided[m.Txn]
	} else {
		rc := r.rec(m.Key)
		if m.Ballot >= rc.promised {
			rc.promised = m.Ballot
			rc.evictConflictingBelow(m.Option, m.Ballot, m.Txn)
			rc.addPending(m.Txn, m.Option, m.Ballot, r.clk.Now())
			accept = true
		}
	}
	resp := phase2bMsg{Txn: m.Txn, Key: m.Key, Ballot: m.Ballot, Accept: accept, Region: r.Region()}
	r.mu.Unlock()
	r.send(m.Master, resp)
}

// onPhase2b is the master side of phase 2 quorum counting.
func (r *Replica) onPhase2b(b phase2bMsg) {
	r.mu.Lock()
	ks := r.masters[b.Key]
	var out []envelope
	if ks != nil {
		if mo := ks.inflight[b.Txn]; mo != nil && mo.ballot == b.Ballot && !mo.done {
			if b.Accept {
				mo.accepts[b.Region] = true
			} else {
				mo.rejects++
			}
			out = r.checkMasterQuorumLocked(ks, mo)
		}
	}
	r.mu.Unlock()
	r.flush(out)
}

// checkMasterQuorumLocked resolves an in-flight option once its phase-2b
// votes are conclusive. Caller holds r.mu; returns staged messages.
func (r *Replica) checkMasterQuorumLocked(ks *masterKey, mo *masterOption) []envelope {
	n := len(r.cfg.Peers)
	q := ClassicQuorum(n)
	switch {
	case len(mo.accepts) >= q:
		mo.done = true
		if mo.coord != nil {
			return []envelope{{*mo.coord, classicResultMsg{Txn: mo.id, Key: mo.op.Key, Accepted: true}}}
		}
	case mo.rejects > n-q:
		mo.done = true
		if mo.coord != nil {
			return []envelope{{*mo.coord, classicResultMsg{Txn: mo.id, Key: mo.op.Key,
				Accepted: false, Reason: ReasonBallot}}}
		}
	}
	return nil
}
