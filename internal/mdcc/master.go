package mdcc

import (
	"math/bits"
	"sort"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// masterKey is the master-role state this replica keeps for one key it owns.
type masterKey struct {
	ballot   uint64
	leased   bool
	p1       *phase1Run
	queue    []classicProposeMsg
	inflight map[txn.ID]*masterOption
}

// phase1Run tracks an in-progress phase 1 (ownership + recovery discovery).
type phase1Run struct {
	ballot uint64
	oks    uint64 // bitmask over peer indices (see regionBit)
	seen   map[txn.ID]*seenOption
}

// seenOption counts how many phase-1b responses reported a pending option.
type seenOption struct {
	op    txn.Op
	count int
}

// masterOption tracks one option's phase-2 quorum at the master.
type masterOption struct {
	id      txn.ID
	op      txn.Op
	ballot  uint64
	accepts uint64 // bitmask over peer indices (see regionBit)
	rejects int
	// coord is the coordinator waiting for the result; nil for recovery
	// re-proposals, which have no direct requester.
	coord *simnet.Addr
	done  bool
	// traceParent is the master's option-RPC leg span this option's
	// arbitration span parents to (0 = untraced); traceStart is when the
	// master began sequencing the option.
	traceParent uint64
	traceStart  time.Time
}

// regionBit maps a region to its bit in quorum masks (the region's index in
// the peer list). ok is false for regions outside the peer set, whose votes
// are ignored. A linear scan over a handful of peers beats a map both on
// allocation and on lookup cost.
func (r *Replica) regionBit(reg simnet.Region) (uint64, bool) {
	for i, p := range r.cfg.Peers {
		if p.Region == reg {
			return 1 << uint(i), true
		}
	}
	return 0, false
}

// masterFor returns (creating if needed) the master state for key.
// Caller holds r.mu.
func (r *Replica) masterFor(key string) *masterKey {
	ks := r.masters[key]
	if ks == nil {
		ks = &masterKey{inflight: make(map[txn.ID]*masterOption)}
		r.masters[key] = ks
	}
	return ks
}

// onClassicPropose handles a coordinator's classic-path request for one
// option (compat wire format).
func (r *Replica) onClassicPropose(p classicProposeMsg) {
	r.mu.Lock()
	leg, out := r.masterLegLocked(p.Txn, p.Coord, p.TC, r.clk.Now())
	p.TC = TraceCtx{Span: leg}
	out = append(out, r.classicProposeLocked(p)...)
	r.mu.Unlock()
	r.flush(out)
}

// onClassicProposeBatch handles every option of one transaction routed to
// this master: all of them are sequenced under a single lock acquisition,
// and everything they produce — results back to the coordinator, phase-1/2
// traffic to peers — leaves as one message per destination.
func (r *Replica) onClassicProposeBatch(b classicProposeBatchMsg) {
	r.mu.Lock()
	leg, out := r.masterLegLocked(b.Txn, b.Coord, b.TC, r.clk.Now())
	tc := TraceCtx{Span: leg}
	for _, op := range b.Options {
		out = append(out, r.classicProposeLocked(classicProposeMsg{
			Txn: b.Txn, Coord: b.Coord, Option: op, TC: tc})...)
	}
	r.mu.Unlock()
	r.flush(out)
}

// masterLegLocked records the option-RPC network leg of a traced classic
// proposal at the master and stages its report to the coordinator, returning
// the leg's span id (0 when untraced). Per-option spans recorded later —
// arbitrations, results — parent to this leg. Caller holds r.mu.
func (r *Replica) masterLegLocked(id txn.ID, coord simnet.Addr, tc TraceCtx, now time.Time) (uint64, []envelope) {
	if r.spans == nil || tc.Span == 0 {
		return 0, nil
	}
	leg := obs.Span{
		Txn: id, ID: obs.NewSpanID(), Parent: tc.Span,
		Stage: obs.StageOptionRPC, Region: string(r.Region()), Note: "master",
		Start: time.Unix(0, tc.SentUnixNano), End: now,
	}
	return leg.ID, []envelope{{coord, spanReportMsg{Txn: id, Spans: []obs.Span{leg}}}}
}

// resultTC stamps a classic result's trace context: the span the
// coordinator's vote-return leg should parent to, and the send time. Zero
// span means untraced and yields a zero context.
func (r *Replica) resultTC(span uint64) TraceCtx {
	if span == 0 {
		return TraceCtx{}
	}
	return TraceCtx{Span: span, SentUnixNano: r.clk.Now().UnixNano()}
}

// classicProposeLocked is the master-side handling of one classic-path
// option: the first proposal for a key triggers phase 1 (taking ownership
// and running Fast Paxos recovery); later proposals are sequenced directly.
// Caller holds r.mu; returns staged messages.
func (r *Replica) classicProposeLocked(p classicProposeMsg) []envelope {
	if r.isDecided(p.Txn) {
		committed := r.decided[p.Txn]
		return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: p.Option.Key,
			Accepted: committed, Reason: ReasonDecided, TC: r.resultTC(p.TC.Span)}}}
	}
	if r.leaseCfg != nil {
		// Leased mastership: only the current lease holder may sequence.
		// Anyone else — including a deposed master that hasn't noticed yet —
		// bounces the proposal so the coordinator re-resolves the master.
		ksp := r.leaseCfg.KeyspaceOf(p.Option.Key)
		if !r.holdsLeaseLocked(ksp, r.clk.Now()) {
			return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: p.Option.Key,
				Accepted: false, Reason: ReasonNotMaster, TC: r.resultTC(p.TC.Span)}}}
		}
	}
	ks := r.masterFor(p.Option.Key)
	r.ClassicRuns++
	if ks.leased {
		return r.sequenceLocked(ks, p)
	}
	ks.queue = append(ks.queue, p)
	if ks.p1 == nil {
		return r.startPhase1Locked(p.Option.Key, ks)
	}
	return nil
}

// isDecided reports whether the transaction has a recorded decision.
// Caller holds r.mu.
func (r *Replica) isDecided(id txn.ID) bool {
	_, ok := r.decided[id]
	return ok
}

// envelope is an outgoing message staged while holding the lock.
type envelope struct {
	to      simnet.Addr
	payload any
}

// flush sends staged messages after the lock is released. In batch mode it
// groups envelopes by destination — in staged (deterministic) order, never
// map order — so one handler invocation costs at most one wire message per
// destination; per-option classic results and phase-2a proposals are folded
// into their batch forms on the way out. Compat mode sends one message per
// envelope, preserving the legacy wire format exactly.
func (r *Replica) flush(out []envelope) {
	if len(out) == 0 {
		return
	}
	if r.cfg.PerOptionMessages {
		for _, e := range out {
			r.send(e.to, e.payload)
		}
		return
	}
	// Group by destination in first-seen order. Quadratic in envelope count,
	// which is tiny (a handful of peers plus a coordinator or two).
	for i := 0; i < len(out); i++ {
		if out[i].payload == nil {
			continue // already claimed by an earlier destination group
		}
		to := out[i].to
		payloads := make([]any, 0, len(out)-i)
		for j := i; j < len(out); j++ {
			if out[j].payload != nil && out[j].to == to {
				payloads = append(payloads, out[j].payload)
				out[j].payload = nil
			}
		}
		r.sendCoalesced(to, payloads)
	}
}

// sendCoalesced ships one destination's staged payloads as a single wire
// message, first folding adjacent per-option messages into their batch
// forms: classic results of the same transaction become one
// classicResultBatchMsg, phase-2a proposals become one phase2aBatchMsg.
func (r *Replica) sendCoalesced(to simnet.Addr, payloads []any) {
	merged := payloads[:0]
	for _, p := range payloads {
		switch m := p.(type) {
		case classicResultMsg:
			if i := len(merged) - 1; i >= 0 {
				if b, ok := merged[i].(classicResultBatchMsg); ok && b.Txn == m.Txn {
					b.Results = append(b.Results, optionResult{m.Key, m.Accepted, m.Reason})
					merged[i] = b
					continue
				}
			}
			// The batch adopts the first result's trace context; same-message
			// results share one option-RPC leg, so first-wins is consistent.
			merged = append(merged, classicResultBatchMsg{Txn: m.Txn, TC: m.TC,
				Results: []optionResult{{m.Key, m.Accepted, m.Reason}}})
		case phase2aMsg:
			if i := len(merged) - 1; i >= 0 {
				// Same-epoch proposals only: a master can hold different
				// keyspace leases at different epochs, and the batch carries
				// one epoch for all its items.
				if b, ok := merged[i].(phase2aBatchMsg); ok && b.Epoch == m.Epoch {
					b.Items = append(b.Items, phase2aItem{m.Txn, m.Key, m.Ballot, m.Option})
					merged[i] = b
					continue
				}
			}
			merged = append(merged, phase2aBatchMsg{Master: m.Master, Epoch: m.Epoch,
				Items: []phase2aItem{{m.Txn, m.Key, m.Ballot, m.Option}}})
		default:
			merged = append(merged, p)
		}
	}
	if len(merged) == 1 {
		r.send(to, merged[0])
		return
	}
	r.cfg.Net.SendBatch(r.cfg.Addr, to, merged)
}

// startPhase1Locked begins phase 1 for key at a fresh ballot. The replica
// promises to itself synchronously and broadcasts phase 1a to its peers.
// Caller holds r.mu; returns messages to send after unlock.
func (r *Replica) startPhase1Locked(key string, ks *masterKey) []envelope {
	epoch := r.leaseEpochLocked(key)
	if epoch != 0 {
		// Fold the lease epoch into the ballot's high bits: a new master's
		// ballots dominate every ballot a deposed one ever issued, so its
		// phase 1 wins against acceptors that promised the old master.
		if floor := epoch << leaseBallotShift; ks.ballot < floor {
			ks.ballot = floor
		}
	}
	ks.ballot++
	selfBit, _ := r.regionBit(r.Region())
	run := &phase1Run{
		ballot: ks.ballot,
		oks:    selfBit,
		seen:   make(map[txn.ID]*seenOption),
	}
	ks.p1 = run

	// Self-promise and self-report of pendings.
	rc, sp := r.records.acquire(key)
	if ks.ballot > rc.promised {
		rc.promised = ks.ballot
	}
	for _, p := range rc.pending {
		run.seen[p.txn] = &seenOption{op: p.op, count: 1}
	}
	sp.mu.Unlock()

	var out []envelope
	for _, peer := range r.cfg.Peers {
		if peer == r.cfg.Addr {
			continue
		}
		out = append(out, envelope{peer, phase1aMsg{Key: key, Ballot: ks.ballot, Master: r.cfg.Addr, Epoch: epoch}})
	}
	// Degenerate single-replica cluster: quorum is already met.
	if bits.OnesCount64(run.oks) >= ClassicQuorum(len(r.cfg.Peers)) {
		out = append(out, r.finishPhase1Locked(key, ks)...)
	}
	return out
}

// onPhase1a is the acceptor side of phase 1.
func (r *Replica) onPhase1a(m phase1aMsg) {
	r.mu.Lock()
	rc, sp := r.records.acquire(m.Key)
	ok := m.Ballot >= rc.promised
	if r.leaseFencedLocked(m.Key, m.Epoch) {
		// The sender's lease epoch is older than the one this acceptor
		// granted: a deposed master. Fence it regardless of ballot.
		ok = false
		r.LeaseFenced++
	}
	if ok {
		rc.promised = m.Ballot
	}
	resp := phase1bMsg{Key: m.Key, Ballot: m.Ballot, OK: ok, Region: r.Region()}
	if ok {
		for _, p := range rc.pending {
			resp.Pending = append(resp.Pending, pendingSnapshot{Txn: p.txn, Option: p.op, Ballot: p.ballot})
		}
	}
	sp.mu.Unlock()
	r.mu.Unlock()
	r.send(m.Master, resp)
}

// onPhase1b is the master side of phase 1 response collection.
func (r *Replica) onPhase1b(b phase1bMsg) {
	r.mu.Lock()
	ks := r.masters[b.Key]
	if ks == nil || ks.p1 == nil || b.Ballot != ks.p1.ballot || !b.OK {
		r.mu.Unlock()
		return
	}
	run := ks.p1
	bit, known := r.regionBit(b.Region)
	if !known || run.oks&bit != 0 {
		r.mu.Unlock()
		return
	}
	run.oks |= bit
	for _, ps := range b.Pending {
		if s := run.seen[ps.Txn]; s != nil {
			s.count++
		} else {
			run.seen[ps.Txn] = &seenOption{op: ps.Option, count: 1}
		}
	}
	var out []envelope
	if bits.OnesCount64(run.oks) >= ClassicQuorum(len(r.cfg.Peers)) {
		out = r.finishPhase1Locked(b.Key, ks)
	}
	r.mu.Unlock()
	r.flush(out)
}

// finishPhase1Locked completes ownership: re-propose any possibly
// fast-chosen options (coordinated recovery), then drain queued client
// proposals. Caller holds r.mu; returns staged messages.
func (r *Replica) finishPhase1Locked(key string, ks *masterKey) []envelope {
	run := ks.p1
	ks.p1 = nil
	ks.leased = true

	var out []envelope
	thr := recoveryThreshold(len(r.cfg.Peers))
	// Recover in transaction-ID order, not map order: re-proposal order
	// decides which conflicting leftover wins, and a run-dependent order
	// would break same-seed reproducibility.
	ids := make([]txn.ID, 0, len(run.seen))
	for id := range run.seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := run.seen[id]
		if s.count < thr {
			continue
		}
		if r.isDecided(id) {
			continue
		}
		// Possibly fast-chosen: must be fixed at the new ballot before
		// any competing value. Recovery skips validation by design.
		r.RecoveryRuns++
		out = append(out, r.proposeAtMasterLocked(ks, key, id, s.op, nil, TraceCtx{})...)
	}

	queue := ks.queue
	ks.queue = nil
	for _, p := range queue {
		out = append(out, r.sequenceLocked(ks, p)...)
	}
	return out
}

// sequenceLocked validates and proposes one client option at the master's
// ballot. Caller holds r.mu; returns staged messages.
func (r *Replica) sequenceLocked(ks *masterKey, p classicProposeMsg) []envelope {
	key := p.Option.Key
	if r.isDecided(p.Txn) {
		return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: key,
			Accepted: r.decided[p.Txn], Reason: ReasonDecided, TC: r.resultTC(p.TC.Span)}}}
	}
	if mo := ks.inflight[p.Txn]; mo != nil {
		// The option is already in flight (fast leftover recovered, or a
		// duplicate fallback): attach the coordinator to its outcome.
		if mo.done {
			return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: key,
				Accepted: bits.OnesCount64(mo.accepts) >= ClassicQuorum(len(r.cfg.Peers)),
				TC:       r.resultTC(p.TC.Span)}}}
		}
		mo.coord = &p.Coord
		if mo.traceParent == 0 {
			mo.traceParent = p.TC.Span
			mo.traceStart = r.clk.Now()
		}
		return nil
	}
	rc, sp := r.records.acquire(key)
	rc.evictStale(r.clk.Now(), r.cfg.PendingTTL)
	reason := rc.validate(p.Option, ks.ballot, p.Txn)
	sp.mu.Unlock()
	if reason != ReasonNone {
		return []envelope{{p.Coord, classicResultMsg{Txn: p.Txn, Key: key,
			Accepted: false, Reason: reason, TC: r.resultTC(p.TC.Span)}}}
	}
	return r.proposeAtMasterLocked(ks, key, p.Txn, p.Option, &p.Coord, p.TC)
}

// proposeAtMasterLocked runs phase 2 for one option: the master accepts
// locally, then asks its peers. Caller holds r.mu; returns staged messages.
func (r *Replica) proposeAtMasterLocked(ks *masterKey, key string, id txn.ID, op txn.Op, coord *simnet.Addr, tc TraceCtx) []envelope {
	now := r.clk.Now()
	rc, sp := r.records.acquire(key)
	rc.evictConflictingBelow(op, ks.ballot, id)
	rc.addPending(id, op, ks.ballot, now)
	sp.mu.Unlock()

	selfBit, _ := r.regionBit(r.Region())
	mo := &masterOption{
		id: id, op: op, ballot: ks.ballot,
		accepts:     selfBit,
		coord:       coord,
		traceParent: tc.Span,
		traceStart:  now,
	}
	ks.inflight[id] = mo

	epoch := r.leaseEpochLocked(key)
	var out []envelope
	for _, peer := range r.cfg.Peers {
		if peer == r.cfg.Addr {
			continue
		}
		out = append(out, envelope{peer, phase2aMsg{Txn: id, Key: key,
			Ballot: ks.ballot, Option: op, Master: r.cfg.Addr, Epoch: epoch}})
	}
	out = append(out, r.checkMasterQuorumLocked(ks, mo)...)
	return out
}

// onPhase2a is the acceptor side of phase 2 (compat wire format): obey the
// master if the ballot is current.
func (r *Replica) onPhase2a(m phase2aMsg) {
	r.mu.Lock()
	it := r.phase2aLocked(phase2aItem{Txn: m.Txn, Key: m.Key, Ballot: m.Ballot, Option: m.Option}, m.Epoch)
	r.mu.Unlock()
	r.send(m.Master, phase2bMsg{Txn: it.Txn, Key: it.Key, Ballot: it.Ballot,
		Accept: it.Accept, Region: r.Region()})
}

// onPhase2aBatch processes a master's batched phase-2a proposals under one
// lock acquisition and replies with one coalesced phase-2b batch.
func (r *Replica) onPhase2aBatch(b phase2aBatchMsg) {
	items := make([]phase2bItem, 0, len(b.Items))
	r.mu.Lock()
	for _, it := range b.Items {
		items = append(items, r.phase2aLocked(it, b.Epoch))
	}
	r.mu.Unlock()
	r.send(b.Master, phase2bBatchMsg{Region: r.Region(), Items: items})
}

// phase2aLocked accepts or refuses one phase-2a proposal and returns the
// phase-2b verdict. epoch is the proposing master's lease epoch (0 when
// leases are off); stale epochs are fenced. Caller holds r.mu.
func (r *Replica) phase2aLocked(m phase2aItem, epoch uint64) phase2bItem {
	var accept bool
	if r.leaseFencedLocked(m.Key, epoch) {
		r.LeaseFenced++
	} else if r.isDecided(m.Txn) {
		accept = r.decided[m.Txn]
	} else {
		rc, sp := r.records.acquire(m.Key)
		if m.Ballot >= rc.promised {
			rc.promised = m.Ballot
			rc.evictConflictingBelow(m.Option, m.Ballot, m.Txn)
			rc.addPending(m.Txn, m.Option, m.Ballot, r.clk.Now())
			accept = true
		}
		sp.mu.Unlock()
	}
	return phase2bItem{Txn: m.Txn, Key: m.Key, Ballot: m.Ballot, Accept: accept}
}

// onPhase2b is the master side of phase 2 quorum counting (compat wire
// format).
func (r *Replica) onPhase2b(b phase2bMsg) {
	r.mu.Lock()
	out := r.phase2bLocked(phase2bItem{Txn: b.Txn, Key: b.Key, Ballot: b.Ballot, Accept: b.Accept}, b.Region)
	r.mu.Unlock()
	r.flush(out)
}

// onPhase2bBatch folds an acceptor's batched phase-2b verdicts into the
// in-flight options under one lock acquisition. Options that become
// conclusive together have their coordinator results coalesced by flush.
func (r *Replica) onPhase2bBatch(b phase2bBatchMsg) {
	var out []envelope
	r.mu.Lock()
	for _, it := range b.Items {
		out = append(out, r.phase2bLocked(it, b.Region)...)
	}
	r.mu.Unlock()
	r.flush(out)
}

// phase2bLocked counts one phase-2b verdict toward its option's quorum.
// Caller holds r.mu; returns staged messages.
func (r *Replica) phase2bLocked(b phase2bItem, from simnet.Region) []envelope {
	ks := r.masters[b.Key]
	if ks == nil {
		return nil
	}
	mo := ks.inflight[b.Txn]
	if mo == nil || mo.ballot != b.Ballot || mo.done {
		return nil
	}
	if b.Accept {
		bit, known := r.regionBit(from)
		if !known {
			return nil
		}
		mo.accepts |= bit
	} else {
		mo.rejects++
	}
	return r.checkMasterQuorumLocked(ks, mo)
}

// checkMasterQuorumLocked resolves an in-flight option once its phase-2b
// votes are conclusive. Caller holds r.mu; returns staged messages.
func (r *Replica) checkMasterQuorumLocked(ks *masterKey, mo *masterOption) []envelope {
	n := len(r.cfg.Peers)
	q := ClassicQuorum(n)
	switch {
	case bits.OnesCount64(mo.accepts) >= q:
		mo.done = true
		out := r.masterArbitratedLocked(mo)
		if mo.coord != nil {
			out = append(out, envelope{*mo.coord, classicResultMsg{Txn: mo.id, Key: mo.op.Key,
				Accepted: true, TC: r.resultTC(mo.traceParent)}})
		}
		return out
	case mo.rejects > n-q:
		mo.done = true
		out := r.masterArbitratedLocked(mo)
		if mo.coord != nil {
			out = append(out, envelope{*mo.coord, classicResultMsg{Txn: mo.id, Key: mo.op.Key,
				Accepted: false, Reason: ReasonBallot, TC: r.resultTC(mo.traceParent)}})
		}
		return out
	}
	return nil
}

// masterArbitratedLocked records the master's arbitration span for a traced
// option — sequencing start to quorum resolution — and stages its report to
// the waiting coordinator (spans reach the store only through that flush;
// see beginTraceLocked). Caller holds r.mu.
func (r *Replica) masterArbitratedLocked(mo *masterOption) []envelope {
	if r.spans == nil || mo.traceParent == 0 || mo.coord == nil {
		return nil
	}
	sp := obs.Span{
		Txn: mo.id, ID: obs.NewSpanID(), Parent: mo.traceParent,
		Stage: obs.StageMasterArbitrate, Region: string(r.Region()),
		Note: mo.op.Key, Start: mo.traceStart, End: r.clk.Now(),
	}
	return []envelope{{*mo.coord, spanReportMsg{Txn: mo.id, Spans: []obs.Span{sp}}}}
}
