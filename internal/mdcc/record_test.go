package mdcc

import (
	"testing"
	"testing/quick"
	"time"

	"planet/internal/simnet"
	"planet/internal/txn"
)

func setOp(key string, readVersion int64) txn.Op {
	return txn.Op{Kind: txn.OpSet, Key: key, Value: []byte("v"), ReadVersion: readVersion}
}

func addOp(key string, delta int64) txn.Op {
	return txn.Op{Kind: txn.OpAdd, Key: key, Delta: delta}
}

func TestConflictsMatrix(t *testing.T) {
	set, add := setOp("k", 0), addOp("k", 1)
	cases := []struct {
		a, b txn.Op
		want bool
	}{
		{set, set, true},
		{set, add, true},
		{add, set, true},
		{add, add, false},
	}
	for _, tc := range cases {
		if got := conflicts(tc.a, tc.b); got != tc.want {
			t.Errorf("conflicts(%v,%v)=%v, want %v", tc.a.Kind, tc.b.Kind, got, tc.want)
		}
	}
}

func TestRecordValidateSet(t *testing.T) {
	r := &record{version: 3}
	if got := r.validate(setOp("k", 3), 0, 1); got != ReasonNone {
		t.Errorf("matching version: %v", got)
	}
	if got := r.validate(setOp("k", 2), 0, 1); got != ReasonVersion {
		t.Errorf("stale version: %v", got)
	}
	r.addPending(2, setOp("k", 3), 0, time.Now())
	if got := r.validate(setOp("k", 3), 0, 1); got != ReasonPending {
		t.Errorf("pending conflict: %v", got)
	}
	// The same transaction's own pending does not conflict.
	if got := r.validate(setOp("k", 3), 0, 2); got != ReasonNone {
		t.Errorf("own pending: %v", got)
	}
}

func TestRecordValidateClassicOwned(t *testing.T) {
	r := &record{promised: 2}
	if got := r.validate(setOp("k", 0), 0, 1); got != ReasonClassicOwned {
		t.Errorf("fast on owned key: %v", got)
	}
	if got := r.validate(setOp("k", 0), 2, 1); got != ReasonNone {
		t.Errorf("classic on owned key: %v", got)
	}
}

func TestRecordValidateAddBounds(t *testing.T) {
	r := &record{ival: 5, isInt: true, bounded: true, lo: 0, hi: 10}
	if got := r.validate(addOp("k", -5), 0, 1); got != ReasonNone {
		t.Errorf("in-bounds add: %v", got)
	}
	if got := r.validate(addOp("k", -6), 0, 1); got != ReasonBound {
		t.Errorf("below-lo add: %v", got)
	}
	if got := r.validate(addOp("k", 6), 0, 1); got != ReasonBound {
		t.Errorf("above-hi add: %v", got)
	}
	// Pending adds from other txns count against the bound.
	r.addPending(2, addOp("k", -4), 0, time.Now())
	if got := r.validate(addOp("k", -2), 0, 1); got != ReasonBound {
		t.Errorf("bound with pendings: %v", got)
	}
	if got := r.validate(addOp("k", -1), 0, 1); got != ReasonNone {
		t.Errorf("fits with pendings: %v", got)
	}
	// A pending Set blocks adds.
	r.pending = nil
	r.addPending(3, setOp("k", 0), 0, time.Now())
	if got := r.validate(addOp("k", 1), 0, 1); got != ReasonPending {
		t.Errorf("add over pending set: %v", got)
	}
}

// TestDemarcationPessimisticPerDirection is the regression test for a bug
// the fuzzer found: with a net-zero mix of pending deltas, aborting the
// negative one must not let the positive one carry the committed value
// past the bound. The check has to treat each direction independently.
func TestDemarcationPessimisticPerDirection(t *testing.T) {
	r := &record{ival: 50, isInt: true, bounded: true, lo: 0, hi: 100}
	now := time.Now()

	neg := addOp("k", -40)
	if got := r.validate(neg, 0, 1); got != ReasonNone {
		t.Fatalf("negative add: %v", got)
	}
	r.addPending(1, neg, 0, now)

	// +80 must be rejected: if the -40 aborts, 50+80 = 130 > 100.
	pos := addOp("k", 80)
	if got := r.validate(pos, 0, 2); got != ReasonBound {
		t.Fatalf("net-zero masking: +80 accepted with -40 pending: %v", got)
	}
	// +50 is fine: worst case toward hi is 50+50 = 100.
	pos = addOp("k", 50)
	if got := r.validate(pos, 0, 2); got != ReasonNone {
		t.Fatalf("+50 rejected: %v", got)
	}
	r.addPending(2, pos, 0, now)

	// Worst-case interleaving: abort the -40, commit the +50.
	r.removePending(1)
	r.apply(pos)
	if r.ival < r.lo || r.ival > r.hi {
		t.Fatalf("committed value %d escaped [0,100]", r.ival)
	}
}

func TestRecordPendingLifecycle(t *testing.T) {
	r := &record{}
	now := time.Now()
	r.addPending(1, addOp("k", 1), 0, now)
	r.addPending(2, addOp("k", 2), 0, now)
	if len(r.pending) != 2 {
		t.Fatalf("pending=%d", len(r.pending))
	}
	// Re-adding for the same txn replaces, not appends.
	r.addPending(1, addOp("k", 5), 3, now)
	if len(r.pending) != 2 || r.pending[0].op.Delta != 5 || r.pending[0].ballot != 3 {
		t.Errorf("replace failed: %+v", r.pending[0])
	}
	r.removePending(1)
	if len(r.pending) != 1 || r.pending[0].txn != 2 {
		t.Errorf("remove failed: %+v", r.pending)
	}
	r.removePending(99) // absent: no-op
	if len(r.pending) != 1 {
		t.Error("removing absent txn changed state")
	}
}

func TestRecordEvictStale(t *testing.T) {
	r := &record{}
	old := time.Now().Add(-time.Hour)
	r.addPending(1, addOp("k", 1), 0, old)
	r.addPending(2, addOp("k", 2), 0, time.Now())
	r.evictStale(time.Now(), time.Minute)
	if len(r.pending) != 1 || r.pending[0].txn != 2 {
		t.Errorf("eviction kept %+v", r.pending)
	}
	// TTL zero disables eviction.
	r.addPending(3, addOp("k", 3), 0, old)
	r.evictStale(time.Now(), 0)
	if len(r.pending) != 2 {
		t.Error("TTL=0 evicted")
	}
}

func TestRecordEvictConflictingBelow(t *testing.T) {
	r := &record{}
	now := time.Now()
	r.addPending(1, setOp("k", 0), 0, now) // fast ballot
	r.addPending(2, addOp("k", 1), 0, now) // fast ballot, commutes w/ adds
	r.evictConflictingBelow(setOp("k", 0), 5, 9)
	// Both conflict with the incoming Set and sit below ballot 5.
	if len(r.pending) != 0 {
		t.Errorf("kept %+v", r.pending)
	}
	// Equal-or-higher ballots survive.
	r.addPending(3, setOp("k", 0), 5, now)
	r.evictConflictingBelow(setOp("k", 0), 5, 9)
	if len(r.pending) != 1 {
		t.Error("equal-ballot pending evicted")
	}
	// The owner's own entries survive regardless of ballot.
	r.pending = nil
	r.addPending(9, setOp("k", 0), 0, now)
	r.evictConflictingBelow(setOp("k", 0), 5, 9)
	if len(r.pending) != 1 {
		t.Error("owner's pending evicted")
	}
}

func TestRecordApply(t *testing.T) {
	r := &record{}
	r.apply(setOp("k", 0))
	if r.version != 1 || string(r.bytes) != "v" || r.isInt {
		t.Errorf("after set: %+v", r)
	}
	r.apply(addOp("k", 7))
	if r.version != 2 || r.ival != 7 || !r.isInt {
		t.Errorf("after add: %+v", r)
	}
}

func TestRecordValueViewStableAcrossApply(t *testing.T) {
	// value() returns a zero-copy view of the committed bytes. The safety
	// contract is that committed slices are never written in place: apply
	// installs a fresh slice, so a view taken before an apply still reads
	// the old committed value afterwards.
	r := &record{bytes: []byte("abc"), version: 1}
	v := r.value()
	if &v.Bytes[0] != &r.bytes[0] {
		t.Error("value should be a view, not a copy")
	}
	r.apply(txn.Op{Kind: txn.OpSet, Key: "k", Value: []byte("xyz"), ReadVersion: 1})
	if string(v.Bytes) != "abc" {
		t.Errorf("view mutated by apply: %q", v.Bytes)
	}
	if string(r.value().Bytes) != "xyz" {
		t.Errorf("committed bytes = %q, want xyz", r.value().Bytes)
	}
}

// Property: a validated-then-added option never makes a later validation of
// a commuting add with total within bounds fail, and never lets the
// pessimistic pending sum escape the bounds.
func TestRecordAddValidationProperty(t *testing.T) {
	f := func(seedVal int8, deltas []int8) bool {
		r := &record{ival: int64(seedVal), isInt: true, bounded: true, lo: -100, hi: 100}
		sum := r.ival
		id := txn.ID(1)
		for _, d := range deltas {
			op := addOp("k", int64(d))
			reason := r.validate(op, 0, id)
			if reason == ReasonNone {
				r.addPending(id, op, 0, time.Now())
				sum += int64(d)
				if sum < r.lo || sum > r.hi {
					return false // accepted an option that can violate bounds
				}
			}
			id++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecoveryThreshold(t *testing.T) {
	// K = classicQ - (n - fastQ): the minimum phase-1b appearances at
	// which an option may have been fast-chosen.
	cases := []struct{ n, want int }{
		{3, 2}, // cq=2, fq=3 → 2-0
		{5, 2}, // cq=3, fq=4 → 3-1
		{7, 3}, // cq=4, fq=6 → 4-1
	}
	for _, tc := range cases {
		if got := recoveryThreshold(tc.n); got != tc.want {
			t.Errorf("recoveryThreshold(%d)=%d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestRejectReasonProperties(t *testing.T) {
	if !ReasonVersion.Fatal() || !ReasonBound.Fatal() {
		t.Error("fatal reasons misclassified")
	}
	for _, r := range []RejectReason{ReasonNone, ReasonPending, ReasonClassicOwned, ReasonDecided, ReasonBallot} {
		if r.Fatal() {
			t.Errorf("%v should not be fatal", r)
		}
	}
	for r := ReasonNone; r <= ReasonBallot; r++ {
		if r.String() == "" {
			t.Errorf("reason %d has no name", r)
		}
	}
}

func TestMasterForDeterministic(t *testing.T) {
	regionList := []simnet.Region{"a", "b", "c"}
	m1 := MasterFor("some-key", regionList)
	m2 := MasterFor("some-key", regionList)
	if m1 != m2 {
		t.Errorf("MasterFor not deterministic: %v vs %v", m1, m2)
	}
	// Different keys spread across regions.
	seen := make(map[simnet.Region]bool)
	for i := 0; i < 100; i++ {
		seen[MasterFor(string(rune('a'+i%26))+string(rune('0'+i/26)), regionList)] = true
	}
	if len(seen) != 3 {
		t.Errorf("masters used %d of 3 regions", len(seen))
	}
}
