package mdcc

import (
	"time"

	"planet/internal/txn"
)

// record is a replica's state for one key: the committed value plus the
// accepted-but-undecided options and the Paxos promise.
type record struct {
	version int64
	bytes   []byte
	ival    int64
	isInt   bool
	bounded bool
	lo, hi  int64

	// promised is the highest classic ballot this replica promised for
	// the key; 0 means the key is still fast-eligible.
	promised uint64

	pending []*pendingOption
}

// pendingOption is an accepted, undecided option held by a replica.
type pendingOption struct {
	txn      txn.ID
	op       txn.Op
	ballot   uint64
	accepted time.Time
}

// conflicts reports whether two options on the same key cannot both be
// pending: physical writes conflict with everything; commutative adds
// tolerate each other.
func conflicts(a, b txn.Op) bool {
	return a.Kind == txn.OpSet || b.Kind == txn.OpSet
}

// value snapshots the committed state. Bytes is a view, not a copy:
// committed byte slices are immutable — apply and the seed paths install
// fresh slices and never write in place — so sharing is safe and the hot
// read/snapshot/sync paths stay allocation-free. APIs that hand bytes to
// application code (core's ReadBytes) copy at that boundary instead.
func (r *record) value() Value {
	return Value{Version: r.version, Int: r.ival, IsInt: r.isInt, Bytes: r.bytes}
}

// evictStale drops pending options older than ttl (a liveness guard against
// lost decide messages). ttl <= 0 disables eviction.
func (r *record) evictStale(now time.Time, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	kept := r.pending[:0]
	for _, p := range r.pending {
		if now.Sub(p.accepted) < ttl {
			kept = append(kept, p)
		}
	}
	r.pending = kept
}

// validate checks op against committed state and pendings from other
// transactions, for a proposal at the given ballot. It returns ReasonNone
// when the option can be accepted.
func (r *record) validate(op txn.Op, ballot uint64, owner txn.ID) RejectReason {
	if ballot == 0 && r.promised > 0 {
		return ReasonClassicOwned
	}
	switch op.Kind {
	case txn.OpSet:
		if r.version != op.ReadVersion {
			return ReasonVersion
		}
		for _, p := range r.pending {
			if p.txn != owner {
				return ReasonPending
			}
		}
	case txn.OpAdd:
		// Demarcation must be pessimistic per direction: any subset of
		// the accepted pendings may commit (the rest abort), so the
		// upper bound is checked as if only the positive deltas land and
		// the lower bound as if only the negative ones do.
		sumHi, sumLo := r.ival, r.ival
		for _, p := range r.pending {
			if p.txn == owner {
				continue
			}
			if p.op.Kind == txn.OpSet {
				return ReasonPending
			}
			if p.op.Delta > 0 {
				sumHi += p.op.Delta
			} else {
				sumLo += p.op.Delta
			}
		}
		if op.Delta > 0 {
			sumHi += op.Delta
		} else {
			sumLo += op.Delta
		}
		if r.bounded && (sumLo < r.lo || sumHi > r.hi) {
			return ReasonBound
		}
	}
	return ReasonNone
}

// addPending records an accepted option, replacing any existing pending
// entry from the same transaction.
func (r *record) addPending(id txn.ID, op txn.Op, ballot uint64, now time.Time) {
	for _, p := range r.pending {
		if p.txn == id {
			p.op, p.ballot, p.accepted = op, ballot, now
			return
		}
	}
	r.pending = append(r.pending, &pendingOption{txn: id, op: op, ballot: ballot, accepted: now})
}

// removePending drops the pending option owned by id, if present.
func (r *record) removePending(id txn.ID) {
	for i, p := range r.pending {
		if p.txn == id {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return
		}
	}
}

// evictConflictingBelow removes pendings that conflict with op and were
// accepted at a strictly lower ballot. Used when a classic phase-2a
// overrides leftover fast-ballot options.
func (r *record) evictConflictingBelow(op txn.Op, ballot uint64, owner txn.ID) {
	kept := r.pending[:0]
	for _, p := range r.pending {
		if p.txn != owner && p.ballot < ballot && conflicts(p.op, op) {
			continue
		}
		kept = append(kept, p)
	}
	r.pending = kept
}

// apply installs a decided option into committed state.
func (r *record) apply(op txn.Op) {
	switch op.Kind {
	case txn.OpSet:
		// Adopt the option's slice: op.Value is immutable after submission
		// (the client API copies user buffers), and committed bytes are only
		// ever replaced wholesale, so no defensive copy is needed here.
		r.bytes = op.Value
		r.isInt = false
	case txn.OpAdd:
		r.ival += op.Delta
		r.isInt = true
	}
	r.version++
}
