// Package cluster assembles a runnable PLANET deployment: a simulated WAN
// over a region topology, one MDCC replica per region, and one transaction
// coordinator per region. It is the composition root shared by the tests,
// the examples, and the benchmark harness.
package cluster

import (
	"fmt"
	"time"

	"planet/internal/mdcc"
	"planet/internal/realnet"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/vclock"
)

// Config parameterizes a cluster.
type Config struct {
	// Topology supplies the regions and their latency matrix.
	// Defaults to the paper's five-datacenter topology.
	Topology regions.Topology
	// TimeScale compresses WAN delays (see simnet.Config). Defaults to
	// DefaultTimeScale.
	TimeScale float64
	// Seed drives all network randomness.
	Seed int64
	// LossRate drops messages uniformly at random, in [0,1).
	LossRate float64
	// CommitTimeout bounds a transaction's in-flight time, expressed in
	// unscaled (WAN) time; the cluster scales it. Defaults to
	// DefaultCommitTimeout.
	CommitTimeout time.Duration
	// MasterRegion, when non-empty, makes one region master for every
	// key; otherwise masters are assigned by key hash across regions.
	MasterRegion simnet.Region
	// EarlyAbort enables optimistic abort propagation at every
	// coordinator: conflict-doomed options abort immediately instead of
	// paying a classic master round-trip first (see
	// mdcc.CoordinatorConfig.EarlyAbort).
	EarlyAbort bool
	// MasterLeases replaces the static master assignment with time-bounded,
	// epoch-fenced leases: mastership of each keyspace is granted by a
	// majority for LeaseTerm at a time, renewed by the holder, and taken
	// over by a survivor when the holder dies and the lease lapses. The
	// static assignment (MasterRegion, or the key-hash split) becomes the
	// default holder of each keyspace.
	MasterLeases bool
	// LeaseTerm is the lease duration in unscaled WAN time (scaled like the
	// other timeouts). Defaults to DefaultLeaseTerm.
	LeaseTerm time.Duration
	// OnLeaseEvent, when non-nil, observes lease transitions (acquired /
	// renewed / takeover / deposed) as seen by each region's replica.
	OnLeaseEvent func(simnet.Region, mdcc.LeaseEvent)
	// PendingTTL evicts orphaned pending options (unscaled time).
	// Defaults to DefaultPendingTTL; negative disables eviction.
	PendingTTL time.Duration
	// WAL enables per-replica write-ahead logs (memory-backed).
	WAL bool
	// VirtualTime runs the cluster on a discrete-event virtual clock: all
	// delivery timers, timeouts, and sleeps advance simulated time straight
	// to the next deadline instead of waiting in real time, so experiments
	// run at CPU speed and are deterministic for a given Seed. The clock is
	// owned by the cluster; Close shuts it down. Server binaries (planetd)
	// keep the default real clock.
	VirtualTime bool
	// Clock overrides the time source outright (tests). Takes precedence
	// over VirtualTime; the caller keeps ownership.
	Clock vclock.Clock
	// ParallelTime partitions the virtual scheduler by region: each region's
	// replica, coordinator, lease manager, and delivery timers run on that
	// region's own scheduler partition, concurrently on real cores, with a
	// control partition for the harness. Partitions synchronize
	// conservatively through the latency matrix's per-link delay floors and
	// exchange cross-region messages through a deterministic merge layer, so
	// same-seed runs stay bit-identical at any GOMAXPROCS. Requires
	// VirtualTime; ignored when an explicit Clock is supplied. Prefer the
	// serialized scheduler (ParallelTime=false) for scenarios that mutate
	// global topology mid-run (loss bursts, delay spikes) when exact
	// cross-run timestamps matter — see PROTOCOL.md "Time model".
	ParallelTime bool
	// PerOptionMessages runs the commit protocol on the legacy
	// one-message-per-option wire format instead of per-destination
	// batches. The batching equivalence tests use it; leave false
	// otherwise.
	PerOptionMessages bool
}

// Defaults used when Config fields are zero.
const (
	DefaultTimeScale     = 0.02
	DefaultCommitTimeout = 5 * time.Second
	DefaultPendingTTL    = 20 * time.Second
	DefaultLeaseTerm     = 8 * time.Second
)

// Cluster is a fully wired deployment. Exactly one of Net (simulated WAN,
// built by New) and RealNet (TCP transport, built by NewNode) is non-nil.
type Cluster struct {
	Net      *simnet.Network
	RealNet  *realnet.Transport
	Topology regions.Topology

	replicas   map[simnet.Region]*mdcc.Replica
	coords     map[simnet.Region]*mdcc.Coordinator
	wals       map[simnet.Region]*mdcc.WAL
	scale      float64
	timeout    time.Duration // effective (scaled) commit timeout
	clk        vclock.Clock
	ownedClk   *vclock.Virtual // non-nil when the cluster created a serialized clock
	ownedWorld *vclock.World   // non-nil when the cluster created a partitioned scheduler
	partClks   map[simnet.Region]vclock.Clock

	leaseMgrs []*leaseManager
	leaseTerm time.Duration // effective (scaled) lease term, 0 without leases

	// Node-mode recovery report (NewNode with a data dir).
	walRecovered int
	walTorn      bool
}

// replicaName and coordName are the per-region node names.
const (
	replicaName = "replica"
	coordName   = "coord"
)

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Topology.Matrix == nil {
		cfg.Topology = regions.Five()
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = DefaultTimeScale
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = DefaultCommitTimeout
	}
	switch {
	case cfg.PendingTTL == 0:
		cfg.PendingTTL = DefaultPendingTTL
	case cfg.PendingTTL < 0:
		cfg.PendingTTL = 0
	}
	if cfg.LeaseTerm == 0 {
		cfg.LeaseTerm = DefaultLeaseTerm
	}

	clk := cfg.Clock
	var owned *vclock.Virtual
	var world *vclock.World
	var partClks map[simnet.Region]vclock.Clock
	if clk == nil && cfg.VirtualTime {
		if cfg.ParallelTime {
			var err error
			world, partClks, clk, err = buildWorld(cfg)
			if err != nil {
				return nil, err
			}
		} else {
			owned = vclock.NewVirtual()
			clk = owned
		}
	}
	clk = vclock.Default(clk)
	stopClk := func() {
		if owned != nil {
			owned.Shutdown()
		}
		if world != nil {
			world.Shutdown()
		}
	}

	net, err := simnet.New(simnet.Config{
		Latency:   cfg.Topology.Matrix,
		TimeScale: cfg.TimeScale,
		Seed:      cfg.Seed,
		LossRate:  cfg.LossRate,
		Clock:     clk,
		Clocks:    partClks,
	})
	if err != nil {
		stopClk()
		return nil, fmt.Errorf("cluster: %w", err)
	}

	regionList := cfg.Topology.Regions
	if cfg.MasterRegion != "" {
		found := false
		for _, r := range regionList {
			if r == cfg.MasterRegion {
				found = true
				break
			}
		}
		if !found {
			stopClk()
			return nil, fmt.Errorf("cluster: master region %q not in topology", cfg.MasterRegion)
		}
	}

	replicaAddrs := make([]simnet.Addr, len(regionList))
	for i, r := range regionList {
		replicaAddrs[i] = simnet.Addr{Region: r, Name: replicaName}
	}

	masterFor := func(key string) simnet.Addr {
		if cfg.MasterRegion != "" {
			return simnet.Addr{Region: cfg.MasterRegion, Name: replicaName}
		}
		return simnet.Addr{Region: mdcc.MasterFor(key, regionList), Name: replicaName}
	}

	c := &Cluster{
		Net:        net,
		Topology:   cfg.Topology,
		replicas:   make(map[simnet.Region]*mdcc.Replica, len(regionList)),
		coords:     make(map[simnet.Region]*mdcc.Coordinator, len(regionList)),
		wals:       make(map[simnet.Region]*mdcc.WAL, len(regionList)),
		scale:      cfg.TimeScale,
		timeout:    time.Duration(float64(cfg.CommitTimeout) * cfg.TimeScale),
		clk:        clk,
		ownedClk:   owned,
		ownedWorld: world,
		partClks:   partClks,
	}

	var keyspaces []simnet.Region
	var keyspaceOf func(string) simnet.Region
	if cfg.MasterLeases {
		c.leaseTerm = time.Duration(float64(cfg.LeaseTerm) * cfg.TimeScale)
		keyspaces = keyspacesFor(cfg.MasterRegion, regionList)
		keyspaceOf = keyspaceOfFunc(cfg.MasterRegion, regionList)
	}

	for i, r := range regionList {
		var wal *mdcc.WAL
		if cfg.WAL {
			wal = mdcc.NewWAL(nil)
			c.wals[r] = wal
		}
		c.replicas[r] = mdcc.NewReplica(mdcc.ReplicaConfig{
			Net:               net,
			Addr:              replicaAddrs[i],
			Peers:             replicaAddrs,
			PendingTTL:        time.Duration(float64(cfg.PendingTTL) * cfg.TimeScale),
			WAL:               wal,
			PerOptionMessages: cfg.PerOptionMessages,
		})
		mfor := masterFor
		if cfg.MasterLeases {
			region := r
			c.replicas[r].EnableLeases(mdcc.LeaseConfig{
				Term:       c.leaseTerm,
				Keyspaces:  keyspaces,
				KeyspaceOf: keyspaceOf,
				OnEvent: func(ev mdcc.LeaseEvent) {
					if cfg.OnLeaseEvent != nil {
						cfg.OnLeaseEvent(region, ev)
					}
				},
			})
			mfor = leaseMasterFor(c.replicas[r], keyspaceOf)
		}
		coord, err := mdcc.NewCoordinator(mdcc.CoordinatorConfig{
			Net:               net,
			Addr:              simnet.Addr{Region: r, Name: coordName},
			Replicas:          replicaAddrs,
			MasterFor:         mfor,
			CommitTimeout:     time.Duration(float64(cfg.CommitTimeout) * cfg.TimeScale),
			PerOptionMessages: cfg.PerOptionMessages,
			EarlyAbort:        cfg.EarlyAbort,
		})
		if err != nil {
			return nil, err
		}
		c.coords[r] = coord
	}
	if cfg.MasterLeases {
		ranked := rankedRegions(regionList)
		for _, r := range regionList {
			c.leaseMgrs = append(c.leaseMgrs,
				newLeaseManager(c.replicas[r], c.ClockFor(r), c.leaseTerm, keyspaces, ranked, r))
		}
	}
	return c, nil
}

// ctlPartition names the control partition of a partitioned scheduler: the
// harness side (workload drivers, experiment timelines, chaos scenarios)
// runs there, beside the per-region partitions the protocol runs on.
const ctlPartition = "ctl"

// buildWorld constructs the partitioned scheduler for cfg: one partition per
// region plus the control partition, with the lookahead matrix taken from
// the latency matrix's per-link delay floors (scaled like every delay).
// Every sampled cross-region delay is ≥ its link's floor, so a partition may
// safely run ahead until the earliest instant a peer could still reach it.
func buildWorld(cfg Config) (*vclock.World, map[simnet.Region]vclock.Clock, vclock.Clock, error) {
	regionList := cfg.Topology.Regions
	names := make([]string, 0, len(regionList)+1)
	names = append(names, ctlPartition)
	for _, r := range regionList {
		names = append(names, string(r))
	}
	n := len(names)
	la := make([][]time.Duration, n)
	for i := range la {
		la[i] = make([]time.Duration, n)
	}
	var maxLA time.Duration
	for i, ri := range regionList {
		for j, rj := range regionList {
			if i == j {
				continue
			}
			floor := time.Duration(float64(cfg.Topology.Matrix.Link(ri, rj).Quantile(0)) * cfg.TimeScale)
			if floor < time.Nanosecond {
				floor = time.Nanosecond
			}
			la[i+1][j+1] = floor
			if floor > maxLA {
				maxLA = floor
			}
		}
	}
	if maxLA == 0 {
		maxLA = time.Nanosecond
	}
	for i := range regionList {
		// ctl → region: the harness dispatch latency (spawning a session,
		// pacing an arrival). Tiny, so driver pacing is essentially exact.
		la[0][i+1] = time.Microsecond
		// region → ctl: completion signals ride back with the largest
		// region-pair lookahead, which keeps the metric closure from
		// shortcutting any region→region floor through the control
		// partition.
		la[i+1][0] = maxLA
	}
	w, err := vclock.NewWorld(names, la)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cluster: %w", err)
	}
	clocks := make(map[simnet.Region]vclock.Clock, len(regionList))
	for _, r := range regionList {
		clocks[r] = w.Partition(string(r))
	}
	return w, clocks, w.Partition(ctlPartition), nil
}

// Regions returns the cluster's regions in topology order.
func (c *Cluster) Regions() []simnet.Region { return c.Topology.Regions }

// TimeScale returns the WAN compression factor.
func (c *Cluster) TimeScale() float64 { return c.scale }

// CommitTimeout returns the effective (already time-scaled) commit budget
// the coordinators run with. The attribution-fed predictor measures learned
// stage costs against it.
func (c *Cluster) CommitTimeout() time.Duration { return c.timeout }

// Clock returns the cluster's time source (the control partition under a
// partitioned scheduler).
func (c *Cluster) Clock() vclock.Clock { return c.clk }

// ClockFor returns the scheduler partition owning region r. Without
// ParallelTime every region shares Clock().
func (c *Cluster) ClockFor(r simnet.Region) vclock.Clock {
	if clk, ok := c.partClks[r]; ok {
		return clk
	}
	return c.clk
}

// LeaseTerm returns the effective (already time-scaled) lease term, or zero
// when master leases are disabled.
func (c *Cluster) LeaseTerm() time.Duration { return c.leaseTerm }

// Replica returns the region's replica, or nil for an unknown region.
func (c *Cluster) Replica(r simnet.Region) *mdcc.Replica { return c.replicas[r] }

// Coordinator returns the region's coordinator, or nil for unknown regions.
func (c *Cluster) Coordinator(r simnet.Region) *mdcc.Coordinator { return c.coords[r] }

// WALOf returns the region's write-ahead log (nil unless Config.WAL).
func (c *Cluster) WALOf(r simnet.Region) *mdcc.WAL { return c.wals[r] }

// SeedBytes installs key=value at every replica (setup path).
func (c *Cluster) SeedBytes(key string, value []byte) {
	for _, rep := range c.replicas {
		rep.SeedBytes(key, value)
	}
}

// SeedInt installs an integer record with integrity bounds at every replica.
func (c *Cluster) SeedInt(key string, value, lo, hi int64) {
	for _, rep := range c.replicas {
		rep.SeedInt(key, value, lo, hi)
	}
}

// SeedBytesAll installs key=value for every key at every replica in one
// lock acquisition per replica. A single private copy of value is shared
// across all records and replicas; committed slices are never written in
// place, so the sharing is invisible to readers.
func (c *Cluster) SeedBytesAll(keys []string, value []byte) {
	v := append([]byte(nil), value...)
	for _, rep := range c.replicas {
		rep.SeedBytesAll(keys, v)
	}
}

// SeedIntAll installs the same integer record with integrity bounds under
// every key at every replica (bulk form of SeedInt).
func (c *Cluster) SeedIntAll(keys []string, value, lo, hi int64) {
	for _, rep := range c.replicas {
		rep.SeedIntAll(keys, value, lo, hi)
	}
}

// CrashReplica simulates a replica process failure in region r: the node
// leaves the network and loses its in-memory state. RestartReplica recovers
// it from its seeded baseline and WAL.
func (c *Cluster) CrashReplica(r simnet.Region) error {
	rep := c.replicas[r]
	if rep == nil {
		return fmt.Errorf("cluster: no replica in region %q", r)
	}
	rep.Crash()
	return nil
}

// RestartReplica restores region r's crashed replica via WAL replay and
// rejoins it to the network.
func (c *Cluster) RestartReplica(r simnet.Region) error {
	rep := c.replicas[r]
	if rep == nil {
		return fmt.Errorf("cluster: no replica in region %q", r)
	}
	return rep.Restore()
}

// CrashCoordinator simulates a coordinator process failure in region r:
// every transaction it was coordinating fails with mdcc.ErrCrashed.
func (c *Cluster) CrashCoordinator(r simnet.Region) error {
	coord := c.coords[r]
	if coord == nil {
		return fmt.Errorf("cluster: no coordinator in region %q", r)
	}
	coord.Crash()
	return nil
}

// RestartCoordinator rejoins region r's crashed coordinator to the network.
func (c *Cluster) RestartCoordinator(r simnet.Region) error {
	coord := c.coords[r]
	if coord == nil {
		return fmt.Errorf("cluster: no coordinator in region %q", r)
	}
	coord.Restart()
	return nil
}

// ScaleDuration converts an unscaled WAN duration into emulator time.
func (c *Cluster) ScaleDuration(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.scale)
}

// UnscaleDuration converts a measured emulator duration back to WAN time.
func (c *Cluster) UnscaleDuration(d time.Duration) time.Duration {
	return time.Duration(float64(d) / c.scale)
}

// Close shuts the network down, then stops the virtual scheduler if the
// cluster owns one (in that order, so Quiesce calls racing Close observe
// the closed network and return instead of parking on a dead clock).
func (c *Cluster) Close() {
	for _, m := range c.leaseMgrs {
		m.Stop()
	}
	if c.Net != nil {
		c.Net.Close()
	}
	if c.RealNet != nil {
		c.RealNet.Close()
	}
	if c.ownedClk != nil {
		c.ownedClk.Shutdown()
	}
	if c.ownedWorld != nil {
		c.ownedWorld.Shutdown()
	}
}

// Quiesce waits for in-flight messages to drain (bounded by timeout). On a
// realnet node only local deliveries can be awaited; the wire has no global
// view.
func (c *Cluster) Quiesce(timeout time.Duration) bool {
	if c.Net != nil {
		return c.Net.Quiesce(timeout)
	}
	if c.RealNet != nil {
		return c.RealNet.Quiesce(timeout)
	}
	return true
}
