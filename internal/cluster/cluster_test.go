package cluster

import (
	"testing"
	"time"

	"planet/internal/regions"
	"planet/internal/simnet"
)

func TestDefaults(t *testing.T) {
	c, err := New(Config{TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Regions()) != 5 {
		t.Errorf("default topology has %d regions, want 5", len(c.Regions()))
	}
	for _, r := range c.Regions() {
		if c.Replica(r) == nil || c.Coordinator(r) == nil {
			t.Errorf("region %s missing nodes", r)
		}
	}
	if c.Replica("nowhere") != nil || c.Coordinator("nowhere") != nil {
		t.Error("unknown region returned nodes")
	}
	if c.WALOf(regions.California) != nil {
		t.Error("WAL present without Config.WAL")
	}
}

func TestMasterRegionValidation(t *testing.T) {
	if _, err := New(Config{MasterRegion: "atlantis", TimeScale: 0.01}); err == nil {
		t.Error("unknown master region accepted")
	}
	c, err := New(Config{MasterRegion: regions.Virginia, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestSeedReachesAllReplicas(t *testing.T) {
	c, err := New(Config{Topology: regions.Three(), TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SeedBytes("b", []byte("x"))
	c.SeedInt("i", 7, 0, 10)
	for _, r := range c.Regions() {
		if v, ok := c.Replica(r).ReadLocal("b"); !ok || string(v.Bytes) != "x" {
			t.Errorf("%s: bytes seed missing", r)
		}
		if v, ok := c.Replica(r).ReadLocal("i"); !ok || v.Int != 7 {
			t.Errorf("%s: int seed missing", r)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	c, err := New(Config{TimeScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ScaleDuration(time.Second); got != 20*time.Millisecond {
		t.Errorf("ScaleDuration=%v", got)
	}
	if got := c.UnscaleDuration(20 * time.Millisecond); got != time.Second {
		t.Errorf("UnscaleDuration=%v", got)
	}
	if c.TimeScale() != 0.02 {
		t.Errorf("TimeScale=%v", c.TimeScale())
	}
}

func TestWALEnabled(t *testing.T) {
	c, err := New(Config{WAL: true, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, r := range c.Regions() {
		if c.WALOf(r) == nil {
			t.Errorf("%s: WAL missing", r)
		}
	}
}

func TestNegativePendingTTLDisables(t *testing.T) {
	c, err := New(Config{PendingTTL: -1, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestQuiesceEmpty(t *testing.T) {
	c, err := New(Config{TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Quiesce(time.Second) {
		t.Error("idle network failed to quiesce")
	}
}

func TestLossRatePropagates(t *testing.T) {
	if _, err := New(Config{LossRate: 1.5, TimeScale: 0.01}); err == nil {
		t.Error("invalid loss rate accepted")
	}
}

func TestCustomTopology(t *testing.T) {
	topo, err := regions.Build([]simnet.Region{regions.Tokyo, regions.Sydney}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: topo, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Regions()) != 2 {
		t.Errorf("regions=%v", c.Regions())
	}
}
