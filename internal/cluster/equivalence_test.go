package cluster_test

// Transport equivalence: the same deterministic workload, run once over the
// simulated WAN and once over real TCP between in-process nodes, must
// produce identical per-transaction outcomes and identical final state.
// The wire and the scheduler may differ; the protocol's decisions may not.

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// eqRegions matches the three-datacenter topology's region names.
var eqRegions = []simnet.Region{"us-west", "us-east", "eu-west"}

var eqKeys = []string{"eq-a", "eq-b", "eq-c", "eq-d", "eq-e", "eq-f"}

// eqStep is one workload transaction: one or two bounded adds.
type eqStep struct {
	k1, k2 string
	d1, d2 int64
	two    bool
}

// eqWorkload derives a deterministic transaction sequence from seed. The
// deltas straddle the [0,100] bounds of the seeded accounts, so the
// sequence mixes commits with integrity aborts.
func eqWorkload(seed int64, n int) []eqStep {
	rng := rand.New(rand.NewSource(seed))
	steps := make([]eqStep, n)
	for i := range steps {
		s := eqStep{
			k1:  eqKeys[rng.Intn(len(eqKeys))],
			d1:  int64(rng.Intn(121) - 60),
			two: rng.Intn(2) == 0,
		}
		if s.two {
			s.k2 = eqKeys[rng.Intn(len(eqKeys))]
			s.d2 = int64(rng.Intn(121) - 60)
			if s.k2 == s.k1 {
				s.two = false
			}
		}
		steps[i] = s
	}
	return steps
}

// runEqWorkload executes the steps sequentially through a session in
// region us-west, invoking barrier after each transaction so every replica
// has applied the decision before the next submission — the
// synchronization that makes the outcome sequence timing-independent.
func runEqWorkload(t *testing.T, db *planet.DB, steps []eqStep,
	barrier func(id txn.ID) error) ([]bool, map[string]int64) {
	t.Helper()
	sess, err := db.Session("us-west")
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]bool, 0, len(steps))
	for i, s := range steps {
		tx := sess.Begin()
		tx.Add(s.k1, s.d1)
		if s.two {
			tx.Add(s.k2, s.d2)
		}
		h, err := tx.Commit(planet.CommitOptions{})
		if err != nil {
			t.Fatalf("step %d commit: %v", i, err)
		}
		oc := h.Wait()
		outcomes = append(outcomes, oc.Committed)
		if err := barrier(h.ID()); err != nil {
			t.Fatalf("step %d barrier: %v", i, err)
		}
	}
	finals := make(map[string]int64, len(eqKeys))
	for _, k := range eqKeys {
		v, _, err := sess.ReadInt(k)
		if err != nil {
			t.Fatalf("final read %q: %v", k, err)
		}
		finals[k] = v
	}
	return outcomes, finals
}

// simnetOutcomes runs the workload over the simulated WAN.
func simnetOutcomes(t *testing.T, seed int64, steps []eqStep) ([]bool, map[string]int64) {
	t.Helper()
	topo, err := regions.Build(eqRegions, regions.DefaultSigma)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Topology:  topo,
		TimeScale: 0.01,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	for _, k := range eqKeys {
		c.SeedInt(k, 50, 0, 100)
	}
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	// The simulated network has a global view of in-flight messages, so
	// quiescing is the per-step barrier.
	barrier := func(txn.ID) error {
		if !c.Quiesce(5 * time.Second) {
			return fmt.Errorf("simnet did not quiesce")
		}
		return nil
	}
	return runEqWorkload(t, db, steps, barrier)
}

// realnetOutcomes runs the workload over real TCP: three in-process nodes
// on loopback, a planet DB on the us-west gateway node.
func realnetOutcomes(t *testing.T, steps []eqStep) ([]bool, map[string]int64) {
	t.Helper()
	peers := make(map[simnet.Region]string, len(eqRegions))
	for _, r := range eqRegions {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers[r] = l.Addr().String()
		l.Close()
	}
	nodes := make(map[simnet.Region]*cluster.Cluster, len(eqRegions))
	for _, r := range eqRegions {
		nc, err := cluster.NewNode(cluster.NodeConfig{
			Region:        r,
			Peers:         peers,
			CommitTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nc.Close)
		for _, k := range eqKeys {
			nc.SeedInt(k, 50, 0, 100)
		}
		nodes[r] = nc
	}
	db, err := planet.Open(planet.Config{Cluster: nodes["us-west"]})
	if err != nil {
		t.Fatal(err)
	}
	// The wire has no global view; the barrier polls every node's replica
	// until it has recorded the decision.
	barrier := func(id txn.ID) error {
		deadline := time.Now().Add(10 * time.Second)
		for _, r := range eqRegions {
			rep := nodes[r].Replica(r)
			for {
				if _, ok := rep.Decisions()[id]; ok {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("replica %s never saw decision for %s", r, id)
				}
				time.Sleep(time.Millisecond)
			}
		}
		return nil
	}
	return runEqWorkload(t, db, steps, barrier)
}

// TestTransportEquivalence is the acceptance gate: for seeds 1, 7, and 42,
// the simnet run and the realnet run of the derived workload agree on
// every transaction's verdict and on the final value of every key.
func TestTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-transport equivalence is not short")
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			steps := eqWorkload(seed, 24)
			simOut, simFinal := simnetOutcomes(t, seed, steps)
			realOut, realFinal := realnetOutcomes(t, steps)
			for i := range steps {
				if simOut[i] != realOut[i] {
					t.Errorf("step %d (%+v): simnet committed=%v, realnet committed=%v",
						i, steps[i], simOut[i], realOut[i])
				}
			}
			for _, k := range eqKeys {
				if simFinal[k] != realFinal[k] {
					t.Errorf("final %q: simnet=%d realnet=%d", k, simFinal[k], realFinal[k])
				}
			}
			commits := 0
			for _, c := range simOut {
				if c {
					commits++
				}
			}
			if commits == 0 || commits == len(steps) {
				t.Errorf("degenerate workload: %d/%d commits exercises only one verdict", commits, len(steps))
			}
		})
	}
}
