package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"planet/internal/mdcc"
	"planet/internal/realnet"
	"planet/internal/regions"
	"planet/internal/simnet"
)

// NodeConfig parameterizes one process of a multi-process deployment: the
// local region's replica and coordinator over a TCP transport, with the WAL
// on disk. Every region of the deployment runs one such node (planetd
// -realnet); together they form the same logical cluster New builds
// in-process.
type NodeConfig struct {
	// Region is the local region. Required, and must appear in Peers.
	Region simnet.Region
	// Peers maps EVERY region of the deployment — including this one — to
	// its transport address. All nodes must agree on this map: the sorted
	// key set defines the region list, and with it quorum sizes and key
	// mastership.
	Peers map[simnet.Region]string
	// Listen overrides the address to bind (e.g. "127.0.0.1:0" in tests);
	// empty uses Peers[Region].
	Listen string
	// DataDir, when non-empty, stores the write-ahead log on disk
	// (wal-<region>.jsonl) and recovers it on startup. Empty keeps the WAL
	// in memory — crash durability off, tests only.
	DataDir string
	// CommitTimeout bounds a transaction's in-flight time, in real time
	// (node mode runs unscaled). Defaults to DefaultCommitTimeout.
	CommitTimeout time.Duration
	// PendingTTL evicts orphaned pending options, in real time. Defaults
	// to DefaultPendingTTL; negative disables eviction.
	PendingTTL time.Duration
	// MasterRegion, when non-empty, makes one region master for every key.
	MasterRegion simnet.Region
	// MasterLeases replaces the static master assignment with epoch-fenced
	// leases (see Config.MasterLeases). Transport peer-down transitions poke
	// the local lease manager so a dead master's keyspaces are reclaimed as
	// soon as their leases lapse.
	MasterLeases bool
	// LeaseTerm is the lease duration in real time (node mode runs
	// unscaled). Defaults to DefaultLeaseTerm.
	LeaseTerm time.Duration
	// OnLeaseEvent, when non-nil, observes local lease transitions.
	OnLeaseEvent func(mdcc.LeaseEvent)
	// InboundDelay artificially delays every delivery (tests widening
	// protocol windows that loopback TCP makes vanishingly small).
	InboundDelay time.Duration
	// OnPeerState observes transport peer health transitions (optional).
	OnPeerState func(region simnet.Region, state realnet.PeerState)
	// Logf receives transport diagnostics (optional).
	Logf func(format string, args ...any)
}

// NewNode builds and starts one deployment node: a realnet transport bound
// to the local address, the local replica (recovering any on-disk WAL), and
// the local coordinator wired for graceful degradation when the transport
// reports fast-quorum peers unreachable.
//
// The returned Cluster exposes the node through the same API the simnet
// composition does, with maps populated only for the local region; Net is
// nil and RealNet set.
func NewNode(cfg NodeConfig) (*Cluster, error) {
	if cfg.Region == "" {
		return nil, fmt.Errorf("cluster: NodeConfig.Region is required")
	}
	if _, ok := cfg.Peers[cfg.Region]; !ok {
		return nil, fmt.Errorf("cluster: local region %q missing from Peers", cfg.Region)
	}
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("cluster: a deployment needs at least 2 regions, got %d", len(cfg.Peers))
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = DefaultCommitTimeout
	}
	switch {
	case cfg.PendingTTL == 0:
		cfg.PendingTTL = DefaultPendingTTL
	case cfg.PendingTTL < 0:
		cfg.PendingTTL = 0
	}
	if cfg.LeaseTerm == 0 {
		cfg.LeaseTerm = DefaultLeaseTerm
	}

	// The region list — and with it FastQuorum, ClassicQuorum, and
	// MasterFor — must be identical on every node: derive it from the
	// sorted peer map keys.
	regionList := make([]simnet.Region, 0, len(cfg.Peers))
	for r := range cfg.Peers {
		regionList = append(regionList, r)
	}
	sort.Slice(regionList, func(i, j int) bool { return regionList[i] < regionList[j] })
	if cfg.MasterRegion != "" {
		if _, ok := cfg.Peers[cfg.MasterRegion]; !ok {
			return nil, fmt.Errorf("cluster: master region %q not in Peers", cfg.MasterRegion)
		}
	}

	remote := make(map[simnet.Region]string, len(cfg.Peers)-1)
	for r, addr := range cfg.Peers {
		if r != cfg.Region {
			remote[r] = addr
		}
	}
	listen := cfg.Listen
	if listen == "" {
		listen = cfg.Peers[cfg.Region]
	}
	// The lease manager is built after the transport (it needs the replica,
	// which needs the transport), but transport health callbacks can fire as
	// soon as New returns — hence the atomic indirection.
	var leaseMgr atomic.Pointer[leaseManager]
	onPeerState := cfg.OnPeerState
	if cfg.MasterLeases {
		user := cfg.OnPeerState
		onPeerState = func(region simnet.Region, st realnet.PeerState) {
			if m := leaseMgr.Load(); m != nil {
				m.PeerState(region, st)
			}
			if user != nil {
				user(region, st)
			}
		}
	}
	rn, err := realnet.New(realnet.Config{
		Listen:       listen,
		Peers:        remote,
		Codec:        mdcc.WireCodec{},
		InboundDelay: cfg.InboundDelay,
		OnPeerState:  onPeerState,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		RealNet:  rn,
		Topology: regions.Topology{Regions: regionList},
		replicas: make(map[simnet.Region]*mdcc.Replica, 1),
		coords:   make(map[simnet.Region]*mdcc.Coordinator, 1),
		wals:     make(map[simnet.Region]*mdcc.WAL, 1),
		scale:    1,
		timeout:  cfg.CommitTimeout,
		clk:      rn.Clock(),
	}

	var wal *mdcc.WAL
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			rn.Close()
			return nil, fmt.Errorf("cluster: data dir: %w", err)
		}
		path := filepath.Join(cfg.DataDir, fmt.Sprintf("wal-%s.jsonl", cfg.Region))
		w, recovered, torn, err := mdcc.OpenWALFile(path)
		if err != nil {
			rn.Close()
			return nil, err
		}
		wal, c.walRecovered, c.walTorn = w, recovered, torn
	} else {
		wal = mdcc.NewWAL(nil)
	}
	c.wals[cfg.Region] = wal

	replicaAddrs := make([]simnet.Addr, len(regionList))
	for i, r := range regionList {
		replicaAddrs[i] = simnet.Addr{Region: r, Name: replicaName}
	}
	masterFor := func(key string) simnet.Addr {
		if cfg.MasterRegion != "" {
			return simnet.Addr{Region: cfg.MasterRegion, Name: replicaName}
		}
		return simnet.Addr{Region: mdcc.MasterFor(key, regionList), Name: replicaName}
	}

	c.replicas[cfg.Region] = mdcc.NewReplica(mdcc.ReplicaConfig{
		Net:        rn,
		Addr:       simnet.Addr{Region: cfg.Region, Name: replicaName},
		Peers:      replicaAddrs,
		PendingTTL: cfg.PendingTTL,
		WAL:        wal,
	})
	if cfg.MasterLeases {
		c.leaseTerm = cfg.LeaseTerm
		keyspaceOf := keyspaceOfFunc(cfg.MasterRegion, regionList)
		c.replicas[cfg.Region].EnableLeases(mdcc.LeaseConfig{
			Term:       cfg.LeaseTerm,
			Keyspaces:  keyspacesFor(cfg.MasterRegion, regionList),
			KeyspaceOf: keyspaceOf,
			OnEvent:    cfg.OnLeaseEvent,
		})
		masterFor = leaseMasterFor(c.replicas[cfg.Region], keyspaceOf)
	}
	coord, err := mdcc.NewCoordinator(mdcc.CoordinatorConfig{
		Net:           rn,
		Addr:          simnet.Addr{Region: cfg.Region, Name: coordName},
		Replicas:      replicaAddrs,
		MasterFor:     masterFor,
		CommitTimeout: cfg.CommitTimeout,
		Unreachable:   rn.Unreachable,
	})
	if err != nil {
		rn.Close()
		return nil, err
	}
	c.coords[cfg.Region] = coord
	if cfg.MasterLeases {
		m := newLeaseManager(c.replicas[cfg.Region], rn.Clock(), cfg.LeaseTerm,
			keyspacesFor(cfg.MasterRegion, regionList), rankedRegions(regionList), cfg.Region)
		leaseMgr.Store(m)
		c.leaseMgrs = append(c.leaseMgrs, m)
	}
	return c, nil
}

// WALRecovered reports how many decision entries the node recovered from
// its on-disk WAL at startup (node mode; 0 otherwise). Callers seed the
// baseline, then RestartReplica replays these over it.
func (c *Cluster) WALRecovered() int { return c.walRecovered }

// WALTorn reports whether the recovered WAL ended in a torn record that was
// truncated away (the signature of a crash mid-append).
func (c *Cluster) WALTorn() bool { return c.walTorn }
