package cluster

import (
	"sort"
	"sync"
	"time"

	"planet/internal/mdcc"
	"planet/internal/realnet"
	"planet/internal/simnet"
	"planet/internal/vclock"
)

// keyspacesFor returns the lease keyspaces of a deployment: under static
// mastership every key lives in the master region's single keyspace; under
// hash mastership each region names the keyspace of the keys it masters by
// default.
func keyspacesFor(master simnet.Region, regionList []simnet.Region) []simnet.Region {
	if master != "" {
		return []simnet.Region{master}
	}
	return append([]simnet.Region(nil), regionList...)
}

// keyspaceOfFunc maps a key to its keyspace under the same split.
func keyspaceOfFunc(master simnet.Region, regionList []simnet.Region) func(string) simnet.Region {
	if master != "" {
		return func(string) simnet.Region { return master }
	}
	list := append([]simnet.Region(nil), regionList...)
	return func(key string) simnet.Region { return mdcc.MasterFor(key, list) }
}

// leaseMasterFor builds a coordinator routing function that consults the
// local replica's lease view: keys route to the keyspace's current lease
// holder, falling back to the keyspace's namesake region before any lease
// has ever been granted (which matches the static assignment exactly).
// Stale routes are corrected by the not-master bounce: a replica without
// the lease rejects the proposal and the coordinator re-resolves.
func leaseMasterFor(rep *mdcc.Replica, keyspaceOf func(string) simnet.Region) func(string) simnet.Addr {
	return func(key string) simnet.Addr {
		ks := keyspaceOf(key)
		if holder, ok := rep.LeaseHolder(ks); ok {
			return simnet.Addr{Region: holder, Name: replicaName}
		}
		return simnet.Addr{Region: ks, Name: replicaName}
	}
}

// rankedRegions returns the regions in sorted order — the shared rank order
// every manager uses to stagger takeover attempts.
func rankedRegions(regionList []simnet.Region) []simnet.Region {
	ranked := append([]simnet.Region(nil), regionList...)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i] < ranked[j] })
	return ranked
}

// leaseManager drives one replica's lease acquisition, renewal, and
// takeover decisions. It ticks on the cluster's clock — the virtual clock
// in simnet deployments (keeping seeded runs deterministic) and the real
// clock in node mode — every term/3, and in node mode a realnet peer-down
// transition pokes it immediately so a dead master's keyspaces are
// reclaimed as soon as their leases lapse, not a tick later.
//
// Policy per keyspace:
//   - holder: renew every tick (well inside the term).
//   - never granted: the keyspace's namesake region claims it; others step
//     in only if it stays unclaimed for two full terms (default holder dead
//     at boot), staggered by rank.
//   - recorded holder without a live lease (fresh restart): re-acquire —
//     the round either renews or discovers the deposing epoch.
//   - lapsed under another holder: take over, staggered by each candidate's
//     rank among the surviving regions so candidates don't duel. Dueling is
//     safe (the grant round gives each epoch to at most one winner), just
//     wasteful.
type leaseManager struct {
	rep       *mdcc.Replica
	clk       vclock.Clock
	term      time.Duration
	keyspaces []simnet.Region
	regions   []simnet.Region // sorted: the stagger rank order
	self      simnet.Region

	mu      sync.Mutex
	stopped bool
	timer   vclock.Timer
	started time.Time
}

// newLeaseManager builds a manager and schedules its first tick
// immediately (on the clock, so virtual deployments stay deterministic).
func newLeaseManager(rep *mdcc.Replica, clk vclock.Clock, term time.Duration, keyspaces, regions []simnet.Region, self simnet.Region) *leaseManager {
	m := &leaseManager{
		rep: rep, clk: clk, term: term,
		keyspaces: keyspaces, regions: regions, self: self,
		started: clk.Now(),
	}
	m.mu.Lock()
	m.timer = clk.AfterFunc(0, m.tick)
	m.mu.Unlock()
	return m
}

// Stop cancels the tick loop.
func (m *leaseManager) Stop() {
	m.mu.Lock()
	m.stopped = true
	if m.timer != nil {
		m.timer.Stop()
	}
	m.mu.Unlock()
}

func (m *leaseManager) isStopped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stopped
}

// tick runs one pass over every keyspace, then re-arms.
func (m *leaseManager) tick() {
	if m.isStopped() {
		return
	}
	m.poke()
	m.mu.Lock()
	if !m.stopped {
		m.timer = m.clk.AfterFunc(m.term/3, m.tick)
	}
	m.mu.Unlock()
}

// poke runs one decision pass without re-arming the tick loop (the
// peer-down fast path).
func (m *leaseManager) poke() {
	now := m.clk.Now()
	for _, ks := range m.keyspaces {
		m.consider(ks, now)
	}
}

// consider applies the lease policy to one keyspace.
func (m *leaseManager) consider(ks simnet.Region, now time.Time) {
	if m.rep.HoldsLease(ks) {
		m.rep.AcquireLease(ks) // renewal
		return
	}
	holder, epoch, expiry := m.rep.LeaseView(ks)
	switch {
	case epoch == 0:
		if m.self == ks {
			m.rep.AcquireLease(ks)
		} else if now.Sub(m.started) > 2*m.term+m.stagger(ks) {
			m.rep.AcquireLease(ks)
		}
	case holder == m.self:
		m.rep.AcquireLease(ks)
	case now.After(expiry.Add(m.stagger(holder))):
		m.rep.AcquireLease(ks)
	}
}

// stagger ranks this region among the candidates (every region except the
// current holder, sorted) and spaces takeover attempts half a term apart by
// rank.
func (m *leaseManager) stagger(holder simnet.Region) time.Duration {
	rank := 0
	for _, r := range m.regions {
		if r == holder {
			continue
		}
		if r == m.self {
			break
		}
		rank++
	}
	return time.Duration(rank) * (m.term / 2)
}

// PeerState feeds realnet peer-health transitions into the manager: a down
// transition means a master may be dead, so run a decision pass now instead
// of waiting out the tick interval. (Expiry still gates the actual
// takeover — that is the correctness rule, not a heuristic.)
func (m *leaseManager) PeerState(region simnet.Region, st realnet.PeerState) {
	if st != realnet.PeerDown || m.isStopped() {
		return
	}
	m.clk.AfterFunc(0, func() {
		if !m.isStopped() {
			m.poke()
		}
	})
}
