// Package predictor implements PLANET's commit-likelihood estimation: the
// probability, continuously updated while a transaction is in flight, that
// it will eventually commit.
//
// The model combines two ingredients the coordinator can observe locally:
//
//   - message-latency distributions per replica region, learned from the
//     round-trip times of earlier votes (internal/latency recorders), which
//     give the probability that outstanding votes arrive before a deadline;
//
//   - contention statistics per record, learned from the accept/reject
//     votes of earlier transactions with exponential time decay, which give
//     the probability that an outstanding vote is an accept.
//
// The two are composed with a Poisson-binomial tail probability over the
// replicas that have not voted yet, per option, and multiplied across the
// transaction's options. A Monte-Carlo estimator with the same inputs is
// provided as a cross-check (ablation A2).
package predictor

import (
	"math"
	"sync"
	"time"

	"planet/internal/vclock"
)

// decayed is an exponentially decayed pair of accept/total weights.
type decayed struct {
	accept float64
	total  float64
	last   time.Time
}

// decayTo ages the weights to now given half-life hl.
func (d *decayed) decayTo(now time.Time, hl time.Duration) {
	if d.last.IsZero() || hl <= 0 {
		d.last = now
		return
	}
	dt := now.Sub(d.last)
	if dt <= 0 {
		return
	}
	f := math.Exp2(-float64(dt) / float64(hl))
	d.accept *= f
	d.total *= f
	d.last = now
}

// observe records one accept/reject observation at time now.
func (d *decayed) observe(now time.Time, accept bool, hl time.Duration) {
	d.decayTo(now, hl)
	d.total++
	if accept {
		d.accept++
	}
}

// rate returns the smoothed accept probability with a Beta(α,β)-style prior
// pulling toward prior when evidence is thin.
func (d *decayed) rate(now time.Time, hl time.Duration, prior float64, priorWeight float64) float64 {
	d.decayTo(now, hl)
	return (d.accept + prior*priorWeight) / (d.total + priorWeight)
}

// ConflictTracker learns per-key vote-accept probabilities with exponential
// decay, falling back to a global rate for keys without history.
// Safe for concurrent use.
type ConflictTracker struct {
	mu       sync.Mutex
	clk      vclock.Clock
	halfLife time.Duration
	keys     map[string]*decayed
	global   decayed
	maxKeys  int
}

// NewConflictTracker returns a tracker whose observations decay with the
// given half-life (in emulator time). halfLife <= 0 disables decay.
// The tracker caps per-key state at a fixed size and falls back to the
// global rate for evicted keys.
func NewConflictTracker(halfLife time.Duration) *ConflictTracker {
	return newConflictTracker(halfLife, vclock.System)
}

// newConflictTracker binds the tracker to a clock for decay timestamps.
func newConflictTracker(halfLife time.Duration, clk vclock.Clock) *ConflictTracker {
	return &ConflictTracker{
		clk:      clk,
		halfLife: halfLife,
		keys:     make(map[string]*decayed),
		maxKeys:  1 << 16,
	}
}

// Observe records one vote on key.
func (t *ConflictTracker) Observe(key string, accept bool) {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.global.observe(now, accept, t.halfLife)
	d := t.keys[key]
	if d == nil {
		if len(t.keys) >= t.maxKeys {
			// Bounded memory: rely on the global rate for new keys.
			return
		}
		d = &decayed{}
		t.keys[key] = d
	}
	d.observe(now, accept, t.halfLife)
}

// priorStrength is the pseudo-count pulling thin per-key evidence toward
// the global rate, and the global rate toward optimism (accepts are the
// common case in an uncontended store).
const priorStrength = 4

// AcceptProb returns the estimated probability that a vote on key accepts.
func (t *ConflictTracker) AcceptProb(key string) float64 {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.global.rate(now, t.halfLife, 0.98, priorStrength)
	d := t.keys[key]
	if d == nil {
		return g
	}
	return d.rate(now, t.halfLife, g, priorStrength)
}

// GlobalAcceptProb returns the store-wide vote-accept probability.
func (t *ConflictTracker) GlobalAcceptProb() float64 {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.global.rate(now, t.halfLife, 0.98, priorStrength)
}

// KeyCount reports how many keys carry dedicated statistics (tests).
func (t *ConflictTracker) KeyCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.keys)
}
