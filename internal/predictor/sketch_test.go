package predictor

import (
	"testing"
	"time"
)

func TestUnitSketchQuantiles(t *testing.T) {
	s := NewUnitSketch(100)
	for i := 0; i < 1000; i++ {
		s.Observe(float64(i%100) / 100)
	}
	if s.Count() != 1000 {
		t.Fatalf("count = %d", s.Count())
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.10, 0.10}, {0.50, 0.50}, {0.95, 0.95},
	} {
		got := s.Quantile(tc.p)
		if got < tc.want-0.02 || got > tc.want+0.02 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.p, got, tc.want)
		}
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestDurationSketchP99(t *testing.T) {
	s := NewDurationSketch(time.Millisecond, time.Minute, 64)
	// 99 fast observations and one slow outlier.
	for i := 0; i < 99; i++ {
		s.ObserveDuration(50 * time.Millisecond)
	}
	s.ObserveDuration(10 * time.Second)
	p50 := s.QuantileDuration(0.50)
	p99 := s.QuantileDuration(0.99)
	if p50 < 40*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms bin edge", p50)
	}
	// The bin upper edge over-reports, never under-reports.
	if p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v under-reports", p99)
	}
	if s.QuantileDuration(1.0) < 10*time.Second {
		t.Errorf("max quantile %v lost the outlier", s.QuantileDuration(1.0))
	}
	// Out-of-range values clamp to the edge bins instead of panicking.
	s.ObserveDuration(0)
	s.ObserveDuration(time.Hour)
}

func TestSketchEmpty(t *testing.T) {
	if got := NewUnitSketch(8).Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}
