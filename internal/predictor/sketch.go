package predictor

import (
	"math"
	"time"
)

// Sketch is a fixed-size histogram quantile estimator. The admission
// controller uses two of them per region: a linear [0,1] sketch over the
// prior commit likelihoods of offered transactions (to turn a target shed
// fraction into a likelihood threshold) and a log-spaced duration sketch
// over commit latencies (to estimate the epoch's p99 against the SLO).
//
// Bins are fixed at construction, observations are O(1), and quantiles
// resolve to a bin's upper edge — a deterministic, slightly conservative
// estimate that over-reports rather than under-reports tail latency. All
// arithmetic is plain float64 with a fixed insertion-independent result,
// so identically-seeded runs produce identical control decisions.
type Sketch struct {
	linear bool
	lo     float64 // log mode: smallest representable value
	scale  float64 // log mode: bins per natural-log unit
	bins   int
	counts []uint64
	n      uint64
}

// NewUnitSketch builds a linear sketch over [0, 1].
func NewUnitSketch(bins int) *Sketch {
	if bins < 2 {
		bins = 2
	}
	return &Sketch{linear: true, bins: bins, counts: make([]uint64, bins)}
}

// NewDurationSketch builds a log-spaced sketch covering [min, max].
// Values below min land in the first bin, above max in the last.
func NewDurationSketch(min, max time.Duration, bins int) *Sketch {
	if bins < 2 {
		bins = 2
	}
	if min <= 0 {
		min = time.Millisecond
	}
	if max <= min {
		max = min * 2
	}
	lo := min.Seconds()
	return &Sketch{
		lo:     lo,
		scale:  float64(bins) / math.Log(max.Seconds()/lo),
		bins:   bins,
		counts: make([]uint64, bins),
	}
}

// Observe records one value.
func (s *Sketch) Observe(x float64) {
	var b int
	if s.linear {
		b = int(x * float64(s.bins))
	} else if x > s.lo {
		b = int(s.scale * math.Log(x/s.lo))
	}
	if b < 0 {
		b = 0
	} else if b >= s.bins {
		b = s.bins - 1
	}
	s.counts[b]++
	s.n++
}

// ObserveDuration records one duration (log mode).
func (s *Sketch) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Quantile returns the upper edge of the bin where the cumulative count
// first reaches p of the observations, or 0 when empty.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(s.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < s.bins; b++ {
		cum += s.counts[b]
		if cum >= target {
			return s.upperEdge(b)
		}
	}
	return s.upperEdge(s.bins - 1)
}

// QuantileDuration is Quantile for a duration sketch.
func (s *Sketch) QuantileDuration(p float64) time.Duration {
	return time.Duration(s.Quantile(p) * float64(time.Second))
}

func (s *Sketch) upperEdge(b int) float64 {
	if s.linear {
		return float64(b+1) / float64(s.bins)
	}
	return s.lo * math.Exp(float64(b+1)/s.scale)
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.n }

// Reset clears all observations, keeping the bin layout.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.n = 0
}
