package predictor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"planet/internal/simnet"
)

var testRegions = []simnet.Region{"r1", "r2", "r3", "r4", "r5"}

func newTestPredictor() *Predictor {
	return New(Config{
		Regions:      testRegions,
		FastQuorum:   4,
		UseConflicts: true,
		UseLatency:   true,
	})
}

func TestFreshPredictorIsOptimistic(t *testing.T) {
	p := newTestPredictor()
	got := p.LikelihoodAtSubmit([]string{"k"})
	if got < 0.9 {
		t.Errorf("fresh prior=%v, want optimistic", got)
	}
}

func TestConflictsLowerTheLikelihood(t *testing.T) {
	p := newTestPredictor()
	before := p.LikelihoodAtSubmit([]string{"hot"})
	for i := 0; i < 100; i++ {
		p.ObserveVote("hot", testRegions[i%5], false, 50*time.Millisecond)
	}
	after := p.LikelihoodAtSubmit([]string{"hot"})
	if after >= before {
		t.Errorf("likelihood %v did not drop from %v after 100 rejects", after, before)
	}
	if after > 0.1 {
		t.Errorf("likelihood %v still high after 100 rejects", after)
	}
}

func TestPerKeyIsolation(t *testing.T) {
	p := newTestPredictor()
	for i := 0; i < 50; i++ {
		p.ObserveVote("hot", testRegions[i%5], false, 50*time.Millisecond)
		for j := 0; j < 10; j++ {
			p.ObserveVote("cold", testRegions[(i+j)%5], true, 50*time.Millisecond)
		}
	}
	if hot, cold := p.AcceptProb("hot"), p.AcceptProb("cold"); hot >= cold {
		t.Errorf("hot accept prob %v not below cold %v", hot, cold)
	}
}

func TestLearnedOptionsDominate(t *testing.T) {
	p := newTestPredictor()
	if got := p.Likelihood(Flight{Options: []OptionFlight{{Key: "k", Learned: 1}}}); got != 1 {
		t.Errorf("accepted option likelihood=%v", got)
	}
	if got := p.Likelihood(Flight{Options: []OptionFlight{{Key: "k", Learned: -1}}}); got != 0 {
		t.Errorf("rejected option likelihood=%v", got)
	}
	// One rejected option zeroes the transaction regardless of others.
	got := p.Likelihood(Flight{Options: []OptionFlight{
		{Key: "a", Learned: 1},
		{Key: "b", Learned: -1},
	}})
	if got != 0 {
		t.Errorf("mixed likelihood=%v", got)
	}
}

func TestQuorumReachedIsCertain(t *testing.T) {
	p := newTestPredictor()
	got := p.Likelihood(Flight{Options: []OptionFlight{{
		Key: "k", Accepts: 4, Remaining: testRegions[4:],
	}}})
	if got != 1 {
		t.Errorf("met quorum likelihood=%v", got)
	}
}

func TestQuorumOutOfReachIsZero(t *testing.T) {
	p := newTestPredictor()
	// 1 accept, only 1 replica left, quorum 4: impossible.
	got := p.Likelihood(Flight{Options: []OptionFlight{{
		Key: "k", Accepts: 1, Remaining: testRegions[:1],
	}}})
	if got != 0 {
		t.Errorf("impossible quorum likelihood=%v", got)
	}
}

func TestLikelihoodMonotoneInAccepts(t *testing.T) {
	p := newTestPredictor()
	for i := 0; i < 40; i++ {
		p.ObserveVote("k", testRegions[i%5], i%4 != 0, 60*time.Millisecond)
	}
	prev := -1.0
	for accepts := 0; accepts <= 4; accepts++ {
		got := p.Likelihood(Flight{Options: []OptionFlight{{
			Key: "k", Accepts: accepts, Remaining: testRegions[accepts:],
		}}})
		if got < prev {
			t.Errorf("likelihood %v decreased with accepts=%d (prev %v)", got, accepts, prev)
		}
		prev = got
	}
}

func TestLikelihoodBoundsProperty(t *testing.T) {
	p := newTestPredictor()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p.ObserveVote("k", testRegions[rng.Intn(5)], rng.Float64() < 0.7,
			time.Duration(10+rng.Intn(200))*time.Millisecond)
	}
	f := func(accepts, remaining uint8, fellBack bool, elapsedMs, deadlineMs uint16) bool {
		a := int(accepts % 5)
		r := int(remaining % 6)
		fl := Flight{
			Options: []OptionFlight{{
				Key: "k", Accepts: a, Remaining: testRegions[:r], FellBack: fellBack,
			}},
			Elapsed:  time.Duration(elapsedMs) * time.Millisecond,
			Deadline: time.Duration(deadlineMs) * time.Millisecond,
		}
		got := p.Likelihood(fl)
		return got >= 0 && got <= 1 && !math.IsNaN(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDeadlinePressureLowersLikelihood(t *testing.T) {
	p := newTestPredictor()
	// All observed RTTs near 100ms.
	for i := 0; i < 200; i++ {
		for _, r := range testRegions {
			p.ObserveVote("k", r, true, time.Duration(90+i%20)*time.Millisecond)
		}
	}
	base := Flight{
		Options:  []OptionFlight{{Key: "k", Remaining: testRegions}},
		Deadline: time.Second,
	}
	relaxed := p.Likelihood(base)

	tight := base
	tight.Deadline = 50 * time.Millisecond // below every observed RTT
	rushed := p.Likelihood(tight)
	if rushed >= relaxed {
		t.Errorf("tight deadline likelihood %v not below relaxed %v", rushed, relaxed)
	}
	if rushed > 0.2 {
		t.Errorf("impossible deadline likelihood=%v", rushed)
	}
}

// tailAtLeast must match the brute-force enumeration over all outcomes.
func TestTailAtLeastExact(t *testing.T) {
	brute := func(probs []float64, k int) float64 {
		n := len(probs)
		total := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			cnt := 0
			p := 1.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					cnt++
					p *= probs[i]
				} else {
					p *= 1 - probs[i]
				}
			}
			if cnt >= k {
				total += p
			}
		}
		return total
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		k := rng.Intn(n + 2)
		got := tailAtLeast(probs, k)
		want := brute(probs, k)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("tailAtLeast(%v, %d)=%v, want %v", probs, k, got, want)
		}
	}
}

func TestTailAtLeastEdges(t *testing.T) {
	if got := tailAtLeast(nil, 0); got != 1 {
		t.Errorf("k=0 over empty = %v", got)
	}
	if got := tailAtLeast([]float64{0.5}, 2); got != 0 {
		t.Errorf("k>n = %v", got)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	p := newTestPredictor()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		p.ObserveVote("k", testRegions[rng.Intn(5)], rng.Float64() < 0.8,
			time.Duration(30+rng.Intn(150))*time.Millisecond)
	}
	flights := []Flight{
		{Options: []OptionFlight{{Key: "k", Remaining: testRegions}}, Deadline: 400 * time.Millisecond},
		{Options: []OptionFlight{{Key: "k", Accepts: 2, Remaining: testRegions[2:]}},
			Elapsed: 50 * time.Millisecond, Deadline: 400 * time.Millisecond},
		{Options: []OptionFlight{{Key: "k", FellBack: true}}},
	}
	for i, fl := range flights {
		analytic := p.Likelihood(fl)
		mc := p.MonteCarlo(fl, 30000, rng)
		if math.Abs(analytic-mc) > 0.05 {
			t.Errorf("flight %d: analytic %v vs monte-carlo %v", i, analytic, mc)
		}
	}
}

func TestConflictTrackerDecay(t *testing.T) {
	tr := NewConflictTracker(20 * time.Millisecond)
	for i := 0; i < 200; i++ {
		tr.Observe("k", false)
	}
	low := tr.AcceptProb("k")
	time.Sleep(200 * time.Millisecond) // 10 half-lives
	recovered := tr.AcceptProb("k")
	if recovered <= low+0.1 {
		t.Errorf("accept prob %v did not recover from %v after decay", recovered, low)
	}
}

func TestConflictTrackerBoundedKeys(t *testing.T) {
	tr := NewConflictTracker(time.Hour)
	tr.maxKeys = 8
	for i := 0; i < 100; i++ {
		tr.Observe(string(rune('a'+i%26))+string(rune('0'+i/26)), true)
	}
	if tr.KeyCount() > 8 {
		t.Errorf("key count %d exceeds cap", tr.KeyCount())
	}
	// Overflow keys fall back to the global rate.
	if g := tr.GlobalAcceptProb(); g < 0.9 {
		t.Errorf("global accept prob %v", g)
	}
}

func TestDisabledTermsNeutral(t *testing.T) {
	p := New(Config{Regions: testRegions, FastQuorum: 4})
	for i := 0; i < 100; i++ {
		p.ObserveVote("k", testRegions[i%5], false, 50*time.Millisecond)
	}
	// Conflicts disabled: accept prob pinned to 1.
	if got := p.AcceptProb("k"); got != 1 {
		t.Errorf("AcceptProb with conflicts disabled = %v", got)
	}
	if got := p.LikelihoodAtSubmit([]string{"k"}); got != 1 {
		t.Errorf("prior with all terms disabled = %v", got)
	}
}

func TestRTTQuantile(t *testing.T) {
	p := newTestPredictor()
	if _, ok := p.RTTQuantile("r1", 0.5); ok {
		t.Error("quantile before any samples")
	}
	for i := 1; i <= 100; i++ {
		p.ObserveVote("k", "r1", true, time.Duration(i)*time.Millisecond)
	}
	q, ok := p.RTTQuantile("r1", 0.5)
	if !ok || q < 45*time.Millisecond || q > 56*time.Millisecond {
		t.Errorf("p50 RTT=%v ok=%v", q, ok)
	}
	if _, ok := p.RTTQuantile("unknown", 0.5); ok {
		t.Error("quantile for unknown region")
	}
}
