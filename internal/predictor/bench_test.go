package predictor

import (
	"math/rand"
	"testing"
	"time"
)

// benchPredictor is warmed with realistic vote history.
func benchPredictor(b *testing.B) *Predictor {
	b.Helper()
	p := newTestPredictor()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p.ObserveVote("hot", testRegions[rng.Intn(5)], rng.Float64() < 0.6,
			time.Duration(20+rng.Intn(200))*time.Millisecond)
		p.ObserveVote("cold", testRegions[rng.Intn(5)], true,
			time.Duration(20+rng.Intn(200))*time.Millisecond)
	}
	return p
}

// BenchmarkLikelihood measures the hot-path cost of one in-flight
// likelihood evaluation (runs on every protocol event).
func BenchmarkLikelihood(b *testing.B) {
	p := benchPredictor(b)
	f := Flight{
		Options: []OptionFlight{
			{Key: "hot", Accepts: 2, Remaining: testRegions[2:]},
			{Key: "cold", Accepts: 1, Remaining: testRegions[1:]},
		},
		Elapsed:  80 * time.Millisecond,
		Deadline: 500 * time.Millisecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Likelihood(f); got < 0 || got > 1 {
			b.Fatalf("likelihood %v", got)
		}
	}
}

// BenchmarkLikelihoodAtSubmit measures the admission-control path.
func BenchmarkLikelihoodAtSubmit(b *testing.B) {
	p := benchPredictor(b)
	keys := []string{"hot", "cold"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LikelihoodAtSubmit(keys)
	}
}

// BenchmarkObserveVote measures the per-vote bookkeeping cost.
func BenchmarkObserveVote(b *testing.B) {
	p := benchPredictor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ObserveVote("hot", testRegions[i%5], i%3 != 0, 90*time.Millisecond)
	}
}

// BenchmarkMonteCarlo quantifies what the analytic model saves (A2).
func BenchmarkMonteCarlo(b *testing.B) {
	p := benchPredictor(b)
	rng := rand.New(rand.NewSource(2))
	f := Flight{
		Options:  []OptionFlight{{Key: "hot", Accepts: 2, Remaining: testRegions[2:]}},
		Elapsed:  80 * time.Millisecond,
		Deadline: 500 * time.Millisecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MonteCarlo(f, 1000, rng)
	}
}
