package predictor

import (
	"math/rand"
	"time"

	"planet/internal/simnet"
)

// MonteCarlo estimates the same likelihood as Predictor.Likelihood by
// simulation: it repeatedly samples outstanding vote arrival times from the
// learned RTT distributions and accept/reject outcomes from the learned
// contention rates, and counts the fraction of trials in which every option
// reaches its quorum in time.
//
// It exists as a model cross-check (ablation A2): the analytic model should
// agree with it within sampling noise. It is considerably more expensive and
// not used on the hot path.
func (p *Predictor) MonteCarlo(f Flight, trials int, rng *rand.Rand) float64 {
	if trials <= 0 {
		trials = 1000
	}
	success := 0
trial:
	for t := 0; t < trials; t++ {
		for _, opt := range f.Options {
			if !p.sampleOption(opt, f, rng) {
				continue trial
			}
		}
		success++
	}
	return float64(success) / float64(trials)
}

// sampleOption simulates one option's outcome in one trial.
func (p *Predictor) sampleOption(opt OptionFlight, f Flight, rng *rand.Rand) bool {
	switch {
	case opt.Learned > 0:
		return true
	case opt.Learned < 0:
		return false
	}
	if opt.FellBack {
		return rng.Float64() < p.classic.rate(0.7)
	}
	need := p.cfg.FastQuorum - opt.Accepts
	if need <= 0 {
		return true
	}
	q := 1.0
	if p.cfg.UseConflicts {
		q = p.conflicts.AcceptProb(opt.Key)
	}
	got := 0
	for _, region := range opt.Remaining {
		if p.cfg.UseLatency && f.Deadline > 0 && !p.sampleArrival(region, f.Elapsed, f.Deadline, rng) {
			continue
		}
		if rng.Float64() < q {
			got++
			if got >= need {
				return true
			}
		}
	}
	return got >= need
}

// sampleArrival draws whether the region's vote lands inside the window
// (elapsed, deadline], conditioning on it not having arrived by elapsed via
// rejection sampling against the learned RTT distribution.
func (p *Predictor) sampleArrival(region simnet.Region, elapsed, deadline time.Duration, rng *rand.Rand) bool {
	rec := p.recorder(region)
	if rec == nil || rec.Count() == 0 {
		return true
	}
	// Rejection-sample RTT | RTT > elapsed (bounded attempts; if every
	// draw is below elapsed the vote is effectively lost to the window).
	for attempt := 0; attempt < 32; attempt++ {
		rtt, ok := rec.Sample(rng)
		if !ok {
			return true
		}
		if rtt > elapsed {
			return rtt <= deadline
		}
	}
	return false
}
