package predictor

import (
	"math"
	"sync"
	"time"

	"planet/internal/latency"
	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/vclock"
)

// StageFeed supplies per-stage latency statistics learned by the
// attribution engine: the stage's duration EWMA, its jitter EWMA (mean
// absolute deviation), and the sample count. *obs.Attribution implements it.
type StageFeed interface {
	StageStats(st obs.Stage) (ewma, jitter time.Duration, n uint64)
}

// Config parameterizes a Predictor. One predictor serves one coordinator
// (latency is origin-dependent).
type Config struct {
	// Regions lists all replica regions. Required.
	Regions []simnet.Region
	// FastQuorum is the accepts needed per option. Required.
	FastQuorum int
	// ConflictHalfLife ages contention statistics (emulator time).
	// Defaults to 2 seconds of emulator time.
	ConflictHalfLife time.Duration
	// LatencyWindow is the per-region RTT sample window. Defaults to 512.
	LatencyWindow int
	// UseConflicts toggles the contention term; disabling it yields the
	// latency-only ablation model (A2).
	UseConflicts bool
	// UseLatency toggles deadline-awareness; without a deadline the term
	// is inert either way.
	UseLatency bool
	// Clock timestamps decay horizons. Nil means the real system clock.
	Clock vclock.Clock
	// StageFeed, when non-nil, supplies attribution statistics (option-RPC
	// and vote-return EWMA/jitter) and enables the timeliness term: the
	// probability that an outstanding vote's round trip still fits the
	// remaining commit budget, given the learned stage cost and volatility.
	StageFeed StageFeed
	// CommitTimeout is the commit budget the timeliness term measures
	// against. The term is inert when zero.
	CommitTimeout time.Duration
}

// Predictor estimates commit likelihood. Safe for concurrent use.
type Predictor struct {
	cfg       Config
	conflicts *ConflictTracker
	classic   *decayedBox

	mu  sync.Mutex
	rtt map[simnet.Region]*latency.Recorder
}

// decayedBox wraps a decayed counter with its own lock (package-internal).
type decayedBox struct {
	mu  sync.Mutex
	clk vclock.Clock
	d   decayed
	hl  time.Duration
}

func (b *decayedBox) observe(accept bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.d.observe(b.clk.Now(), accept, b.hl)
}

func (b *decayedBox) rate(prior float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.d.rate(b.clk.Now(), b.hl, prior, priorStrength)
}

// New constructs a Predictor.
func New(cfg Config) *Predictor {
	if cfg.ConflictHalfLife == 0 {
		cfg.ConflictHalfLife = 2 * time.Second
	}
	if cfg.LatencyWindow == 0 {
		cfg.LatencyWindow = 512
	}
	clk := vclock.Default(cfg.Clock)
	p := &Predictor{
		cfg:       cfg,
		conflicts: newConflictTracker(cfg.ConflictHalfLife, clk),
		classic:   &decayedBox{hl: cfg.ConflictHalfLife, clk: clk},
		rtt:       make(map[simnet.Region]*latency.Recorder, len(cfg.Regions)),
	}
	for _, r := range cfg.Regions {
		p.rtt[r] = latency.NewRecorder(cfg.LatencyWindow)
	}
	return p
}

// ObserveVote feeds one fast-path vote: its round-trip time from the
// coordinator and whether it accepted.
func (p *Predictor) ObserveVote(key string, region simnet.Region, accept bool, rtt time.Duration) {
	if rec := p.recorder(region); rec != nil {
		rec.Observe(rtt)
	}
	p.conflicts.Observe(key, accept)
}

// ObserveClassicResult feeds one classic-path outcome (fallbacks included).
func (p *Predictor) ObserveClassicResult(key string, accepted bool) {
	p.classic.observe(accepted)
	p.conflicts.Observe(key, accepted)
}

// recorder returns the region's RTT recorder (nil for unknown regions).
func (p *Predictor) recorder(region simnet.Region) *latency.Recorder {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rtt[region]
}

// RTTQuantile exposes the learned RTT quantile to a region (harness, F7).
func (p *Predictor) RTTQuantile(region simnet.Region, q float64) (time.Duration, bool) {
	rec := p.recorder(region)
	if rec == nil {
		return 0, false
	}
	return rec.Quantile(q)
}

// AcceptProb exposes the learned vote-accept probability for key.
func (p *Predictor) AcceptProb(key string) float64 {
	if !p.cfg.UseConflicts {
		return 1
	}
	return p.conflicts.AcceptProb(key)
}

// OptionFlight is the predictor's view of one in-flight option.
type OptionFlight struct {
	Key string
	// Accepts counts accept votes received so far.
	Accepts int
	// Remaining lists regions that have not voted yet.
	Remaining []simnet.Region
	// FellBack marks an option now on the classic path.
	FellBack bool
	// Learned is +1 once accepted, -1 once rejected, 0 while open.
	Learned int
}

// Flight is the predictor's view of one in-flight transaction.
type Flight struct {
	Options []OptionFlight
	// Elapsed is the time since submission.
	Elapsed time.Duration
	// Deadline, when positive, is the application deadline measured from
	// submission; outstanding votes must arrive before it to count.
	Deadline time.Duration
}

// Likelihood estimates P(commit) for an in-flight transaction.
func (p *Predictor) Likelihood(f Flight) float64 {
	prob := 1.0
	for _, opt := range f.Options {
		prob *= p.optionProb(opt, f.Elapsed, f.Deadline)
		if prob == 0 {
			return 0
		}
	}
	return prob
}

// LikelihoodAtSubmit estimates P(commit) before any protocol work, used by
// admission control. keys are the transaction's write keys.
func (p *Predictor) LikelihoodAtSubmit(keys []string) float64 {
	prob := 1.0
	for _, k := range keys {
		prob *= p.optionProb(OptionFlight{Key: k, Remaining: p.cfg.Regions}, 0, 0)
	}
	return prob
}

// optionProb estimates P(option eventually accepted).
func (p *Predictor) optionProb(opt OptionFlight, elapsed, deadline time.Duration) float64 {
	switch {
	case opt.Learned > 0:
		return 1
	case opt.Learned < 0:
		return 0
	}
	if opt.FellBack {
		// Classic outcomes depend on master arbitration; use the decayed
		// classic success rate, defaulting optimistic-but-hedged.
		return p.classic.rate(0.7)
	}

	need := p.cfg.FastQuorum - opt.Accepts
	if need <= 0 {
		return 1
	}
	if need > len(opt.Remaining) {
		return 0
	}

	q := 1.0
	if p.cfg.UseConflicts {
		q = p.conflicts.AcceptProb(opt.Key)
	}

	probs := make([]float64, 0, len(opt.Remaining))
	for _, region := range opt.Remaining {
		pr := 1.0
		if p.cfg.UseLatency && deadline > 0 {
			pr = p.arrivalProb(region, elapsed, deadline)
		}
		probs = append(probs, pr*q)
	}
	// Timeliness applies once per option, not per outstanding vote: the
	// learned stage cost m already measures a full propose→vote round trip,
	// so it estimates P(the quorum's votes fit the budget) as a whole.
	// Multiplying it into every region would compound the discount.
	return tailAtLeast(probs, need) * p.stageTimeliness(elapsed)
}

// stageTimelinessMinSamples is how many option-RPC legs the attribution
// engine must have seen before the timeliness term engages; below it the
// EWMA is noise and the term stays optimistic.
const stageTimelinessMinSamples = 8

// stageTimeliness estimates P(an outstanding vote's round trip completes
// within the remaining commit budget) from attribution statistics: a
// logistic in (budget − m)/s, where m is the learned option-RPC +
// vote-return cost (EWMA) and s their summed jitter. High jitter flattens
// the curve — volatile stages make the predictor appropriately unsure —
// while a calm network snaps it toward a step function at the budget.
// Returns 1 when the feed is absent, unwarmed, or no budget is configured.
func (p *Predictor) stageTimeliness(elapsed time.Duration) float64 {
	feed := p.cfg.StageFeed
	if feed == nil || p.cfg.CommitTimeout <= 0 {
		return 1
	}
	rpcEwma, rpcJit, n := feed.StageStats(obs.StageOptionRPC)
	if n < stageTimelinessMinSamples {
		return 1
	}
	retEwma, retJit, _ := feed.StageStats(obs.StageVoteReturn)
	budget := float64(p.cfg.CommitTimeout - elapsed)
	m := float64(rpcEwma + retEwma)
	s := float64(rpcJit + retJit)
	// Floor the scale: a perfectly calm history must not divide by ~zero,
	// and some spread below m/8 is always plausible.
	if floor := m / 8; s < floor {
		s = floor
	}
	if floor := float64(100 * time.Microsecond); s < floor {
		s = floor
	}
	pr := 1 / (1 + math.Exp(-(budget-m)/s))
	// Keep a residual: even a blown budget occasionally resolves (the
	// logistic tail handles this, but clamp against rounding to exact 0,
	// which would zero the whole likelihood product irrecoverably).
	if pr < 1e-6 {
		pr = 1e-6
	}
	return pr
}

// arrivalProb returns P(vote arrives before the deadline | not yet arrived),
// using the learned RTT distribution for the region. With no samples it
// returns 1 (optimistic until evidence accumulates).
func (p *Predictor) arrivalProb(region simnet.Region, elapsed, deadline time.Duration) float64 {
	rec := p.recorder(region)
	if rec == nil || rec.Count() == 0 {
		return 1
	}
	pastElapsed := 1 - rec.CDF(elapsed)       // P(RTT > elapsed)
	byDeadline := rec.CDF(deadline)           // P(RTT <= deadline)
	inWindow := byDeadline - rec.CDF(elapsed) // P(elapsed < RTT <= deadline)
	if pastElapsed <= 0 {
		// Every observed RTT is below elapsed: the vote is late relative
		// to all history. Retain a small residual rather than zero —
		// tails beyond the window do arrive.
		return 0.05
	}
	pr := inWindow / pastElapsed
	if pr < 0 {
		return 0
	}
	if pr > 1 {
		return 1
	}
	return pr
}

// tailAtLeast computes P(at least k of the independent Bernoulli trials in
// probs succeed) by dynamic programming (Poisson-binomial tail).
func tailAtLeast(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(probs) {
		return 0
	}
	// dp[j] = P(exactly j successes so far), capped at k (bucket k holds
	// "k or more").
	dp := make([]float64, k+1)
	dp[0] = 1
	for _, pr := range probs {
		for j := k; j >= 1; j-- {
			if j == k {
				dp[k] = dp[k] + dp[k-1]*pr
			} else {
				dp[j] = dp[j]*(1-pr) + dp[j-1]*pr
			}
		}
		dp[0] *= 1 - pr
	}
	return dp[k]
}
