// Package workload provides the benchmark workloads PLANET's evaluation
// needs: key-popularity generators (uniform, Zipf, hotspot), transaction
// templates modeled on the paper's TPC-W-derived "buy" microbenchmark, and
// closed-loop and open-loop (Poisson) drivers with result collection.
package workload

import (
	"fmt"
	"math/rand"
)

// KeyGen draws keys according to a popularity distribution. Implementations
// are stateless with respect to the RNG, which the caller owns, so drivers
// can run one RNG per client goroutine.
type KeyGen interface {
	// Next draws one key.
	Next(rng *rand.Rand) string
	// Keys returns the full key space (for seeding).
	Keys() []string
}

// keyName formats the canonical key for an index under a prefix. Key draws
// and seeding both sit on this, so it hand-rolls the zero-padded decimal
// instead of going through fmt.
func keyName(prefix string, i int) string {
	if i < 0 || i > 999999 {
		return fmt.Sprintf("%s%06d", prefix, i)
	}
	var buf [6]byte
	for j := 5; j >= 0; j-- {
		buf[j] = byte('0' + i%10)
		i /= 10
	}
	return prefix + string(buf[:])
}

// Uniform draws uniformly from N keys.
type Uniform struct {
	Prefix string
	N      int
}

// Next implements KeyGen.
func (u Uniform) Next(rng *rand.Rand) string { return keyName(u.Prefix, rng.Intn(u.N)) }

// Keys implements KeyGen.
func (u Uniform) Keys() []string { return allKeys(u.Prefix, u.N) }

// Zipf draws from N keys with a Zipfian popularity skew (s > 1).
type Zipf struct {
	Prefix string
	N      int
	S      float64 // skew exponent, > 1
}

// Next implements KeyGen.
func (z Zipf) Next(rng *rand.Rand) string {
	s := z.S
	if s <= 1 {
		s = 1.01
	}
	zf := rand.NewZipf(rng, s, 1, uint64(z.N-1))
	return keyName(z.Prefix, int(zf.Uint64()))
}

// Keys implements KeyGen.
func (z Zipf) Keys() []string { return allKeys(z.Prefix, z.N) }

// Hotspot sends HotProb of the draws to a small hot set and the rest
// uniformly to the cold set — the contention knob for experiments F5/F6.
type Hotspot struct {
	Prefix   string
	HotKeys  int
	ColdKeys int
	HotProb  float64
}

// Next implements KeyGen.
func (h Hotspot) Next(rng *rand.Rand) string {
	if rng.Float64() < h.HotProb {
		return keyName(h.Prefix+"hot-", rng.Intn(h.HotKeys))
	}
	return keyName(h.Prefix+"cold-", rng.Intn(h.ColdKeys))
}

// Keys implements KeyGen.
func (h Hotspot) Keys() []string {
	keys := allKeys(h.Prefix+"hot-", h.HotKeys)
	return append(keys, allKeys(h.Prefix+"cold-", h.ColdKeys)...)
}

// Fixed draws uniformly from an explicit key list.
type Fixed struct{ List []string }

// Next implements KeyGen.
func (f Fixed) Next(rng *rand.Rand) string { return f.List[rng.Intn(len(f.List))] }

// Keys implements KeyGen.
func (f Fixed) Keys() []string { return append([]string(nil), f.List...) }

func allKeys(prefix string, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = keyName(prefix, i)
	}
	return keys
}
