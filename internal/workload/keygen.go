// Package workload provides the benchmark workloads PLANET's evaluation
// needs: key-popularity generators (uniform, Zipf, hotspot), transaction
// templates modeled on the paper's TPC-W-derived "buy" microbenchmark, and
// closed-loop and open-loop (Poisson) drivers with result collection.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// KeyGen draws keys according to a popularity distribution. Implementations
// are stateless with respect to the RNG, which the caller owns, so drivers
// can run one RNG per client goroutine.
type KeyGen interface {
	// Next draws one key.
	Next(rng *rand.Rand) string
	// Keys returns the full key space (for seeding).
	Keys() []string
}

// keyName formats the canonical key for an index under a prefix. Key draws
// and seeding both sit on this, so it hand-rolls the zero-padded decimal
// instead of going through fmt.
func keyName(prefix string, i int) string {
	if i < 0 || i > 999999 {
		return fmt.Sprintf("%s%06d", prefix, i)
	}
	var buf [6]byte
	for j := 5; j >= 0; j-- {
		buf[j] = byte('0' + i%10)
		i /= 10
	}
	return prefix + string(buf[:])
}

// Uniform draws uniformly from N keys.
type Uniform struct {
	Prefix string
	N      int
}

// Next implements KeyGen.
func (u Uniform) Next(rng *rand.Rand) string { return keyName(u.Prefix, rng.Intn(u.N)) }

// Keys implements KeyGen.
func (u Uniform) Keys() []string { return allKeys(u.Prefix, u.N) }

// Zipf draws from N keys with a Zipfian popularity skew (s > 1).
type Zipf struct {
	Prefix string
	N      int
	S      float64 // skew exponent, > 1
}

// Next implements KeyGen.
func (z Zipf) Next(rng *rand.Rand) string {
	s := z.S
	if s <= 1 {
		s = 1.01
	}
	zf := rand.NewZipf(rng, s, 1, uint64(z.N-1))
	return keyName(z.Prefix, int(zf.Uint64()))
}

// Keys implements KeyGen.
func (z Zipf) Keys() []string { return allKeys(z.Prefix, z.N) }

// ZipfFast draws from the same popularity law as Zipf — P(k) ∝ (k+1)^-s —
// but from an alias table precomputed at construction, so Next is O(1)
// with exactly two RNG draws and no per-draw sampler allocation. Build it
// once and share it: the table is read-only after NewZipfFast, so one
// instance serves every arrival goroutine of an open-loop run.
type ZipfFast struct {
	prefix string
	n      int
	prob   []float64
	alias  []int32
}

// NewZipfFast precomputes the alias table (Vose's method) for n keys with
// skew exponent s (values ≤ 1 are clamped like Zipf).
func NewZipfFast(prefix string, n int, s float64) *ZipfFast {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.01
	}
	scaled := make([]float64, n)
	var sum float64
	for i := range scaled {
		scaled[i] = math.Pow(float64(i+1), -s)
		sum += scaled[i]
	}
	prob := make([]float64, n)
	alias := make([]int32, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := range scaled {
		scaled[i] = scaled[i] / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		lo := small[len(small)-1]
		small = small[:len(small)-1]
		hi := large[len(large)-1]
		large = large[:len(large)-1]
		prob[lo] = scaled[lo]
		alias[lo] = hi
		scaled[hi] += scaled[lo] - 1
		if scaled[hi] < 1 {
			small = append(small, hi)
		} else {
			large = append(large, hi)
		}
	}
	for _, i := range large {
		prob[i] = 1
	}
	for _, i := range small {
		prob[i] = 1 // numerical leftovers; exact weight is ≈1
	}
	return &ZipfFast{prefix: prefix, n: n, prob: prob, alias: alias}
}

// Next implements KeyGen.
func (z *ZipfFast) Next(rng *rand.Rand) string {
	i := rng.Intn(z.n)
	if rng.Float64() < z.prob[i] {
		return keyName(z.prefix, i)
	}
	return keyName(z.prefix, int(z.alias[i]))
}

// Keys implements KeyGen.
func (z *ZipfFast) Keys() []string { return allKeys(z.prefix, z.n) }

// Hotspot sends HotProb of the draws to a small hot set and the rest
// uniformly to the cold set — the contention knob for experiments F5/F6.
type Hotspot struct {
	Prefix   string
	HotKeys  int
	ColdKeys int
	HotProb  float64
}

// Next implements KeyGen.
func (h Hotspot) Next(rng *rand.Rand) string {
	if rng.Float64() < h.HotProb {
		return keyName(h.Prefix+"hot-", rng.Intn(h.HotKeys))
	}
	return keyName(h.Prefix+"cold-", rng.Intn(h.ColdKeys))
}

// Keys implements KeyGen.
func (h Hotspot) Keys() []string {
	keys := allKeys(h.Prefix+"hot-", h.HotKeys)
	return append(keys, allKeys(h.Prefix+"cold-", h.ColdKeys)...)
}

// Fixed draws uniformly from an explicit key list.
type Fixed struct{ List []string }

// Next implements KeyGen.
func (f Fixed) Next(rng *rand.Rand) string { return f.List[rng.Intn(len(f.List))] }

// Keys implements KeyGen.
func (f Fixed) Keys() []string { return append([]string(nil), f.List...) }

func allKeys(prefix string, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = keyName(prefix, i)
	}
	return keys
}
