package workload

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	planet "planet/internal/core"
	"planet/internal/metrics"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// Report aggregates the results of one workload run. All recording methods
// are safe for concurrent use.
type Report struct {
	// Accept, Speculative and Final are latencies from submission to the
	// corresponding stage; Perceived is the user-visible response time:
	// the speculative latency when the transaction speculated, otherwise
	// the final latency (rejections respond immediately).
	Accept      *metrics.Histogram
	Speculative *metrics.Histogram
	Final       *metrics.Histogram
	Perceived   *metrics.Histogram

	Committed  atomic.Uint64
	Aborted    atomic.Uint64
	Rejected   atomic.Uint64
	Speculated atomic.Uint64
	Apologies  atomic.Uint64

	mu        sync.Mutex
	perRegion map[simnet.Region]*metrics.Histogram

	// Elapsed is the run's duration on the driving clock (wall time under
	// the real clock, simulated time under a virtual one). Set by drivers.
	Elapsed time.Duration
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{
		Accept:      metrics.NewHistogram(),
		Speculative: metrics.NewHistogram(),
		Final:       metrics.NewHistogram(),
		Perceived:   metrics.NewHistogram(),
		perRegion:   make(map[simnet.Region]*metrics.Histogram),
	}
}

// regionHist returns the per-region final-latency histogram.
func (r *Report) regionHist(region simnet.Region) *metrics.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.perRegion[region]
	if h == nil {
		h = metrics.NewHistogram()
		r.perRegion[region] = h
	}
	return h
}

// PerRegion returns final-latency summaries keyed by origin region.
func (r *Report) PerRegion() map[string]metrics.Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]metrics.Summary, len(r.perRegion))
	for region, h := range r.perRegion {
		out[string(region)] = h.Summarize()
	}
	return out
}

// Decided counts transactions that ran to a commit/abort decision.
func (r *Report) Decided() uint64 { return r.Committed.Load() + r.Aborted.Load() }

// Total counts all finished transactions including rejections.
func (r *Report) Total() uint64 { return r.Decided() + r.Rejected.Load() }

// CommitRate is committed / decided (rejections excluded).
func (r *Report) CommitRate() float64 {
	d := r.Decided()
	if d == 0 {
		return 0
	}
	return float64(r.Committed.Load()) / float64(d)
}

// SpeculationRate is speculated / decided.
func (r *Report) SpeculationRate() float64 {
	d := r.Decided()
	if d == 0 {
		return 0
	}
	return float64(r.Speculated.Load()) / float64(d)
}

// ApologyRate is apologies / speculated: how often the guess was wrong.
func (r *Report) ApologyRate() float64 {
	s := r.Speculated.Load()
	if s == 0 {
		return 0
	}
	return float64(r.Apologies.Load()) / float64(s)
}

// GoodputPerSec is committed transactions per second of run time.
func (r *Report) GoodputPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed.Load()) / r.Elapsed.Seconds()
}

// String renders a one-run summary (latencies in raw emulator time).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d committed=%d aborted=%d rejected=%d speculated=%d apologies=%d\n",
		r.Total(), r.Committed.Load(), r.Aborted.Load(), r.Rejected.Load(),
		r.Speculated.Load(), r.Apologies.Load())
	fmt.Fprintf(&b, "commit-rate=%.3f spec-rate=%.3f apology-rate=%.3f goodput=%.1f/s\n",
		r.CommitRate(), r.SpeculationRate(), r.ApologyRate(), r.GoodputPerSec())
	fmt.Fprintf(&b, "final:     %s\n", r.Final.Summarize())
	fmt.Fprintf(&b, "perceived: %s\n", r.Perceived.Summarize())
	return b.String()
}

// callbackRecorder builds the CommitOptions that record one transaction
// into the report, composing with any caller-specified speculation config.
func (r *Report) callbacks(clk vclock.Clock, region simnet.Region, speculateAt float64, deadline time.Duration) planet.CommitOptions {
	var start = clk.Now()
	// Speculation can fire at the submission instant, where the elapsed
	// time is exactly zero under a virtual clock — track "did speculate"
	// explicitly rather than inferring it from a nonzero latency.
	var speculated atomic.Bool
	var specElapsed atomic.Int64
	return planet.CommitOptions{
		SpeculateAt: speculateAt,
		Deadline:    deadline,
		OnAccept: func(p planet.Progress) {
			r.Accept.Observe(clk.Since(start))
		},
		OnSpeculative: func(p planet.Progress) {
			e := clk.Since(start)
			specElapsed.Store(int64(e))
			speculated.Store(true)
			r.Speculative.Observe(e)
			r.Speculated.Add(1)
		},
		OnFinal: func(o txn.Outcome) {
			e := clk.Since(start)
			switch {
			case o.Rejected:
				r.Rejected.Add(1)
				r.Perceived.Observe(e)
			case o.Committed:
				r.Committed.Add(1)
				r.Final.Observe(e)
				r.regionHist(region).Observe(e)
				if speculated.Load() {
					r.Perceived.Observe(time.Duration(specElapsed.Load()))
				} else {
					r.Perceived.Observe(e)
				}
			default:
				r.Aborted.Add(1)
				r.Final.Observe(e)
				if speculated.Load() {
					r.Perceived.Observe(time.Duration(specElapsed.Load()))
				} else {
					r.Perceived.Observe(e)
				}
			}
		},
		OnApology: func(txn.Outcome) {
			r.Apologies.Add(1)
		},
	}
}
