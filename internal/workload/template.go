package workload

import (
	"math/rand"

	planet "planet/internal/core"
)

// Template builds one transaction on a session. Implementations must be
// safe for concurrent use (the RNG is per-client).
type Template interface {
	// Build assembles a transaction; it may read through the session.
	Build(s *planet.Session, rng *rand.Rand) (*planet.Txn, error)
	// Seed installs the template's key space into the cluster.
	Seed(seeder Seeder)
}

// Seeder is the subset of cluster setup a template needs.
type Seeder interface {
	SeedBytes(key string, value []byte)
	SeedInt(key string, value, lo, hi int64)
}

// BulkSeeder is an optional extension of Seeder that installs a whole key
// space in one pass, avoiding per-key locking and incremental map growth.
// cluster.Cluster implements it; templates use it when available.
type BulkSeeder interface {
	SeedBytesAll(keys []string, value []byte)
	SeedIntAll(keys []string, value, lo, hi int64)
}

func seedBytesAll(s Seeder, keys []string, value []byte) {
	if b, ok := s.(BulkSeeder); ok {
		b.SeedBytesAll(keys, value)
		return
	}
	for _, k := range keys {
		s.SeedBytes(k, value)
	}
}

func seedIntAll(s Seeder, keys []string, value, lo, hi int64) {
	if b, ok := s.(BulkSeeder); ok {
		b.SeedIntAll(keys, value, lo, hi)
		return
	}
	for _, k := range keys {
		s.SeedInt(k, value, lo, hi)
	}
}

// Buy models the paper's TPC-W-like microbenchmark: purchase Qty units of a
// product with bounded stock, as a commutative decrement. Contention comes
// from the product popularity distribution; integrity comes from the stock
// bound (never below zero).
type Buy struct {
	Products KeyGen
	Qty      int64
	// Stock is the initial per-product stock.
	Stock int64
}

// Build implements Template.
func (b Buy) Build(s *planet.Session, rng *rand.Rand) (*planet.Txn, error) {
	tx := s.Begin()
	tx.Add(b.Products.Next(rng), -b.qty())
	return tx, nil
}

func (b Buy) qty() int64 {
	if b.Qty <= 0 {
		return 1
	}
	return b.Qty
}

// Seed implements Template.
func (b Buy) Seed(seeder Seeder) {
	stock := b.Stock
	if stock <= 0 {
		stock = 1 << 40 // effectively unbounded
	}
	seedIntAll(seeder, b.Products.Keys(), stock, 0, 1<<50)
}

// ReadModifyWrite reads NKeys records and writes them back — the classic
// optimistic-concurrency stressor (physical writes conflict).
type ReadModifyWrite struct {
	Keys  KeyGen
	NKeys int
	// ValueSize is the written payload size (default 16 bytes).
	ValueSize int
}

// Build implements Template.
func (w ReadModifyWrite) Build(s *planet.Session, rng *rand.Rand) (*planet.Txn, error) {
	n := w.NKeys
	if n <= 0 {
		n = 1
	}
	size := w.ValueSize
	if size <= 0 {
		size = 16
	}
	tx := s.Begin()
	seen := make(map[string]bool, n)
	for len(seen) < n {
		key := w.Keys.Next(rng)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, err := tx.Read(key); err != nil {
			return nil, err
		}
		val := make([]byte, size)
		rng.Read(val)
		tx.Set(key, val)
	}
	return tx, nil
}

// Seed implements Template.
func (w ReadModifyWrite) Seed(seeder Seeder) {
	seedBytesAll(seeder, w.Keys.Keys(), []byte("init"))
}

// Checkout models a shopping-cart purchase: commutative decrements on
// NItems distinct product stocks plus one physical write recording the
// order. It mixes both option kinds in one transaction, which is the shape
// PLANET's use-case discussion centers on.
type Checkout struct {
	Products KeyGen
	// Orders generates the order-record keys (physical writes).
	Orders KeyGen
	// NItems is the distinct products per checkout (default 2).
	NItems int
	// Stock is the initial per-product stock.
	Stock int64
}

// Build implements Template.
func (c Checkout) Build(s *planet.Session, rng *rand.Rand) (*planet.Txn, error) {
	n := c.NItems
	if n <= 0 {
		n = 2
	}
	tx := s.Begin()
	seen := make(map[string]bool, n)
	for len(seen) < n {
		p := c.Products.Next(rng)
		if seen[p] {
			continue
		}
		seen[p] = true
		tx.Add(p, -1)
	}
	order := c.Orders.Next(rng)
	if _, err := tx.Read(order); err != nil {
		return nil, err
	}
	receipt := make([]byte, 8)
	rng.Read(receipt)
	tx.Set(order, receipt)
	return tx, nil
}

// Seed implements Template.
func (c Checkout) Seed(seeder Seeder) {
	stock := c.Stock
	if stock <= 0 {
		stock = 1 << 40
	}
	seedIntAll(seeder, c.Products.Keys(), stock, 0, 1<<50)
	seedBytesAll(seeder, c.Orders.Keys(), []byte("empty"))
}

// Transfer moves one unit between two accounts with commutative deltas,
// conserving the total — the invariant the property tests check.
type Transfer struct {
	Accounts KeyGen
	// Balance is the initial per-account balance.
	Balance int64
}

// Build implements Template.
func (t Transfer) Build(s *planet.Session, rng *rand.Rand) (*planet.Txn, error) {
	from := t.Accounts.Next(rng)
	to := t.Accounts.Next(rng)
	for to == from {
		to = t.Accounts.Next(rng)
	}
	tx := s.Begin()
	tx.Add(from, -1)
	tx.Add(to, 1)
	return tx, nil
}

// Seed implements Template.
func (t Transfer) Seed(seeder Seeder) {
	bal := t.Balance
	if bal <= 0 {
		bal = 1000
	}
	seedIntAll(seeder, t.Accounts.Keys(), bal, 0, 1<<50)
}
