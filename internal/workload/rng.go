package workload

import (
	"math/rand"
	"sync"
)

// splitmix64 is a tiny rand.Source64 with O(1) reseeding. math/rand's
// default source carries a 607-word feedback register (~5KB) and pays a
// full table walk on every New/Seed — at millions of per-arrival child
// RNGs the open-loop driver would spend more time seeding generators than
// drawing from them. One splitmix64 step is two xor-shift-multiplies over
// 8 bytes of state, and its output passes the statistical bar the key
// generators need.
type splitmix64 struct{ x uint64 }

// Seed implements rand.Source.
func (s *splitmix64) Seed(seed int64) { s.x = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *splitmix64) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// rngPool recycles child RNGs across arrivals. Determinism does not depend
// on which pooled object an arrival happens to get: Seed fully resets the
// splitmix64 state, so every draw sequence is a pure function of the child
// seed alone.
var rngPool = sync.Pool{New: func() any { return rand.New(new(splitmix64)) }}

// pooledRNG returns a child RNG seeded for one arrival. Return it with
// putRNG once the arrival's key draws are done.
func pooledRNG(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

func putRNG(r *rand.Rand) { rngPool.Put(r) }
