package workload

import (
	"fmt"
	"time"

	"planet/internal/txn"
	"sync"
)

// Ledger enforces the open-loop conservation invariant
//
//	injected == committed + aborted + rejected + in-flight
//
// exactly, not statistically: injections, completions, and samples all
// serialize on one mutex, so every sample observes a consistent cut of the
// counters rather than a racy read of independently-updated atomics.
// In-flight is maintained as its own counter instead of being derived from
// the others, which makes the check a genuine cross-check of the inject
// and completion paths — a double-fired OnFinal, a dropped rejection, or a
// leaked handle shows up as a violated sample, not a silent skew.
type Ledger struct {
	mu        sync.Mutex
	injected  uint64
	committed uint64
	aborted   uint64
	rejected  uint64
	inflight  uint64
	samples   []LedgerSample
}

// LedgerSample is one consistent cut of the conservation counters.
type LedgerSample struct {
	// At is the driver-clock offset from the run start.
	At        time.Duration
	Injected  uint64
	Committed uint64
	Aborted   uint64
	Rejected  uint64
	InFlight  uint64
}

// Check reports whether the conservation invariant holds at this sample.
func (s LedgerSample) Check() error {
	if s.Injected != s.Committed+s.Aborted+s.Rejected+s.InFlight {
		return fmt.Errorf("workload: conservation violated at %v: injected=%d != committed=%d + aborted=%d + rejected=%d + inflight=%d",
			s.At, s.Injected, s.Committed, s.Aborted, s.Rejected, s.InFlight)
	}
	return nil
}

func (s LedgerSample) String() string {
	return fmt.Sprintf("t=%v injected=%d committed=%d aborted=%d rejected=%d inflight=%d",
		s.At, s.Injected, s.Committed, s.Aborted, s.Rejected, s.InFlight)
}

// inject records one arrival handed to the database.
func (l *Ledger) inject() {
	l.mu.Lock()
	l.injected++
	l.inflight++
	l.mu.Unlock()
}

// finish records one arrival's final outcome.
func (l *Ledger) finish(o txn.Outcome) {
	l.mu.Lock()
	l.inflight-- // wraps loudly on a double-finish: the next sample fails
	switch {
	case o.Rejected:
		l.rejected++
	case o.Committed:
		l.committed++
	default:
		l.aborted++
	}
	l.mu.Unlock()
}

// abandon records an arrival that failed before reaching the database
// (build or submission error); it counts as rejected so conservation holds
// through driver-side failures too.
func (l *Ledger) abandon() {
	l.mu.Lock()
	l.inflight--
	l.rejected++
	l.mu.Unlock()
}

// Sample appends one consistent cut taken at driver-clock offset `at` and
// returns the invariant check for it.
func (l *Ledger) Sample(at time.Duration) error {
	l.mu.Lock()
	s := LedgerSample{
		At:       at,
		Injected: l.injected, Committed: l.committed,
		Aborted: l.aborted, Rejected: l.rejected, InFlight: l.inflight,
	}
	l.samples = append(l.samples, s)
	l.mu.Unlock()
	return s.Check()
}

// Samples returns a copy of every recorded sample, in order.
func (l *Ledger) Samples() []LedgerSample {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LedgerSample(nil), l.samples...)
}

// Final returns the current counters as an unrecorded sample. After the
// driver has waited out every handle, InFlight must be zero.
func (l *Ledger) Final() LedgerSample {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerSample{
		Injected: l.injected, Committed: l.committed,
		Aborted: l.aborted, Rejected: l.rejected, InFlight: l.inflight,
	}
}
