package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	planet "planet/internal/core"
	"planet/internal/simnet"
	"planet/internal/vclock"
)

// Options is the configuration shared by the drivers.
type Options struct {
	// DB is the database under test. Required.
	DB *planet.DB
	// Template builds the transactions. Required.
	Template Template
	// Regions restricts transaction origins; empty means all cluster
	// regions round-robin.
	Regions []simnet.Region
	// SpeculateAt enables speculative commits at the given likelihood.
	SpeculateAt float64
	// Deadline is the per-transaction deadline (emulator time).
	Deadline time.Duration
	// Seed makes key choices deterministic.
	Seed int64
	// SkipSeed skips seeding the template's key space (for re-runs over
	// a warm cluster).
	SkipSeed bool
}

// validate fills defaults and reports misconfiguration.
func (o *Options) validate() error {
	if o.DB == nil {
		return fmt.Errorf("workload: Options.DB is required")
	}
	if o.Template == nil {
		return fmt.Errorf("workload: Options.Template is required")
	}
	if len(o.Regions) == 0 {
		o.Regions = o.DB.Cluster().Regions()
	}
	if !o.SkipSeed {
		o.Template.Seed(o.DB.Cluster())
	}
	return nil
}

// Closed runs a closed-loop workload: Clients concurrent clients, each
// submitting PerClient transactions back to back, waiting for the final
// decision (not just speculation) before the next.
type Closed struct {
	Options
	Clients   int
	PerClient int
}

// Run executes the workload and returns its report.
func (c Closed) Run() (*Report, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.PerClient <= 0 {
		c.PerClient = 1
	}
	clk := c.DB.Cluster().Clock()
	report := NewReport()
	start := clk.Now()

	// Each client lives on its origin region's scheduler partition (GoOn),
	// so every clock read and timer it takes is partition-local and the
	// run is deterministic under the parallel scheduler. Under a serialized
	// or real clock GoOn degenerates to Go.
	g := vclock.NewGroup(clk)
	errs := make(chan error, c.Clients)
	for i := 0; i < c.Clients; i++ {
		region := c.Regions[i%len(c.Regions)]
		rclk := c.DB.Cluster().ClockFor(region)
		rng := rand.New(rand.NewSource(c.Seed + int64(i)*7919))
		g.GoOn(rclk, func() {
			s, err := c.DB.Session(region)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < c.PerClient; j++ {
				tx, err := c.Template.Build(s, rng)
				if err != nil {
					errs <- fmt.Errorf("workload: build: %w", err)
					return
				}
				h, err := tx.Commit(report.callbacks(rclk, region, c.SpeculateAt, c.Deadline))
				if err != nil {
					errs <- fmt.Errorf("workload: commit: %w", err)
					return
				}
				h.Wait()
			}
		})
	}
	g.Wait()
	close(errs)
	report.Elapsed = clk.Since(start)
	if err := <-errs; err != nil {
		return report, err
	}
	return report, nil
}

// Open runs an open-loop workload: transactions arrive as a Poisson process
// at Rate per second (emulator time) regardless of completion — the load
// shape under which admission control earns its keep.
type Open struct {
	Options
	// Rate is the mean arrival rate, transactions per second.
	Rate float64
	// Count is the total number of transactions to submit.
	Count int
}

// Run executes the workload and returns its report.
func (o Open) Run() (*Report, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Rate <= 0 {
		return nil, fmt.Errorf("workload: Open.Rate must be positive, got %v", o.Rate)
	}
	if o.Count <= 0 {
		o.Count = 100
	}

	clk := o.DB.Cluster().Clock()
	report := NewReport()
	rng := rand.New(rand.NewSource(o.Seed))
	sessions := make([]*planet.Session, len(o.Regions))
	for i, r := range o.Regions {
		s, err := o.DB.Session(r)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}

	// Arrivals are paced on the driving (control) partition; each arrival's
	// build+commit+wait runs on its session's region partition (GoOn) with a
	// child RNG seeded from the pacing RNG, so key choices stay a pure
	// function of the arrival index and every clock access is
	// partition-local. Group.N is the deterministic in-flight gauge.
	start := clk.Now()
	g := vclock.NewGroup(clk)
	var errMu sync.Mutex
	var firstErr error
	next := start
	for i := 0; i < o.Count; i++ {
		// Poisson arrivals: exponential inter-arrival gaps.
		next = next.Add(time.Duration(rng.ExpFloat64() / o.Rate * float64(time.Second)))
		if d := clk.Until(next); d > 0 {
			clk.Sleep(d)
		}
		errMu.Lock()
		stop := firstErr != nil
		errMu.Unlock()
		if stop {
			break
		}
		s := sessions[i%len(sessions)]
		rclk := s.Clock()
		childSeed := rng.Int63()
		g.GoOn(rclk, func() {
			crng := rand.New(rand.NewSource(childSeed))
			tx, err := o.Template.Build(s, crng)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("workload: build: %w", err)
				}
				errMu.Unlock()
				return
			}
			h, err := tx.Commit(report.callbacks(rclk, s.Region(), o.SpeculateAt, o.Deadline))
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("workload: commit: %w", err)
				}
				errMu.Unlock()
				return
			}
			h.Wait()
		})
	}
	g.Wait()
	report.Elapsed = clk.Since(start)
	errMu.Lock()
	defer errMu.Unlock()
	return report, firstErr
}
