package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	planet "planet/internal/core"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// Options is the configuration shared by the drivers.
type Options struct {
	// DB is the database under test. Required.
	DB *planet.DB
	// Template builds the transactions. Required.
	Template Template
	// Regions restricts transaction origins; empty means all cluster
	// regions round-robin.
	Regions []simnet.Region
	// SpeculateAt enables speculative commits at the given likelihood.
	SpeculateAt float64
	// Deadline is the per-transaction deadline (emulator time).
	Deadline time.Duration
	// Seed makes key choices deterministic.
	Seed int64
	// SkipSeed skips seeding the template's key space (for re-runs over
	// a warm cluster).
	SkipSeed bool
}

// validate fills defaults and reports misconfiguration.
func (o *Options) validate() error {
	if o.DB == nil {
		return fmt.Errorf("workload: Options.DB is required")
	}
	if o.Template == nil {
		return fmt.Errorf("workload: Options.Template is required")
	}
	if len(o.Regions) == 0 {
		o.Regions = o.DB.Cluster().Regions()
	}
	if !o.SkipSeed {
		o.Template.Seed(o.DB.Cluster())
	}
	return nil
}

// Closed runs a closed-loop workload: Clients concurrent clients, each
// submitting PerClient transactions back to back, waiting for the final
// decision (not just speculation) before the next.
type Closed struct {
	Options
	Clients   int
	PerClient int
}

// Run executes the workload and returns its report.
func (c Closed) Run() (*Report, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.PerClient <= 0 {
		c.PerClient = 1
	}
	clk := c.DB.Cluster().Clock()
	report := NewReport()
	start := clk.Now()

	// Each client lives on its origin region's scheduler partition (GoOn),
	// so every clock read and timer it takes is partition-local and the
	// run is deterministic under the parallel scheduler. Under a serialized
	// or real clock GoOn degenerates to Go.
	g := vclock.NewGroup(clk)
	errs := make(chan error, c.Clients)
	for i := 0; i < c.Clients; i++ {
		region := c.Regions[i%len(c.Regions)]
		rclk := c.DB.Cluster().ClockFor(region)
		rng := rand.New(rand.NewSource(c.Seed + int64(i)*7919))
		g.GoOn(rclk, func() {
			s, err := c.DB.Session(region)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < c.PerClient; j++ {
				tx, err := c.Template.Build(s, rng)
				if err != nil {
					errs <- fmt.Errorf("workload: build: %w", err)
					return
				}
				h, err := tx.Commit(report.callbacks(rclk, region, c.SpeculateAt, c.Deadline))
				if err != nil {
					errs <- fmt.Errorf("workload: commit: %w", err)
					return
				}
				h.Wait()
			}
		})
	}
	g.Wait()
	close(errs)
	report.Elapsed = clk.Since(start)
	if err := <-errs; err != nil {
		return report, err
	}
	return report, nil
}

// RatePhase is one piece of a piecewise-constant arrival-rate schedule:
// Rate arrivals per second (emulator time) sustained for Dur. Chaining
// phases models diurnal load curves and surges; a zero-rate phase is an
// idle trough.
type RatePhase struct {
	Rate float64
	Dur  time.Duration
}

// Open runs an open-loop workload: transactions arrive as a Poisson process
// regardless of completion — the load shape under which admission control
// earns its keep. Either a flat Rate/Count or a Phases schedule paces the
// arrivals; child RNGs come from a pool of O(1)-reseed generators so a
// million-arrival run doesn't allocate a fresh generator per arrival.
type Open struct {
	Options
	// Rate is the mean arrival rate, transactions per second. Ignored
	// when Phases is set.
	Rate float64
	// Count is the total number of transactions to submit. Ignored when
	// Phases is set (the schedule's duration bounds the run instead).
	Count int
	// Phases, when non-empty, shapes the arrival rate over the run as a
	// piecewise-constant (diurnal / surge) profile. The exponential gap
	// is redrawn at each phase boundary, which by memorylessness leaves
	// the process exactly Poisson at the new rate.
	Phases []RatePhase
	// Batch groups every arrival falling inside one window of this width
	// into a single scheduler sleep: the pacer sleeps once to the window
	// end and injects the batch in timestamp order. At high rates this
	// turns one timer per arrival into one per window while keeping the
	// injection order (and thus determinism) intact; observed latencies
	// shift by at most Batch. Zero disables batching.
	Batch time.Duration
	// Ledger, when non-nil, receives every inject/finish event and a
	// conservation sample every SampleEvery arrivals.
	Ledger *Ledger
	// SampleEvery is the ledger sampling stride in arrivals (default 1024).
	SampleEvery int
}

// Run executes the workload and returns its report.
func (o Open) Run() (*Report, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if len(o.Phases) == 0 {
		if o.Rate <= 0 {
			return nil, fmt.Errorf("workload: Open.Rate must be positive, got %v", o.Rate)
		}
		if o.Count <= 0 {
			o.Count = 100
		}
	} else {
		for i, ph := range o.Phases {
			if ph.Dur <= 0 {
				return nil, fmt.Errorf("workload: Open.Phases[%d].Dur must be positive, got %v", i, ph.Dur)
			}
			if ph.Rate < 0 {
				return nil, fmt.Errorf("workload: Open.Phases[%d].Rate must be non-negative, got %v", i, ph.Rate)
			}
		}
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1024
	}

	clk := o.DB.Cluster().Clock()
	report := NewReport()
	rng := rand.New(rand.NewSource(o.Seed))
	sessions := make([]*planet.Session, len(o.Regions))
	for i, r := range o.Regions {
		s, err := o.DB.Session(r)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}

	// Arrivals are paced on the driving (control) partition; each arrival's
	// build+commit+wait runs on its session's region partition (GoOn) with a
	// child RNG seeded from the pacing RNG, so key choices stay a pure
	// function of the arrival index and every clock access is
	// partition-local. Group.N is the deterministic in-flight gauge.
	start := clk.Now()
	g := vclock.NewGroup(clk)
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	inject := func(s *planet.Session, childSeed int64) {
		rclk := s.Clock()
		if o.Ledger != nil {
			o.Ledger.inject()
		}
		g.GoOn(rclk, func() {
			crng := pooledRNG(childSeed)
			tx, err := o.Template.Build(s, crng)
			putRNG(crng)
			if err != nil {
				if o.Ledger != nil {
					o.Ledger.abandon()
				}
				setErr(fmt.Errorf("workload: build: %w", err))
				return
			}
			opts := report.callbacks(rclk, s.Region(), o.SpeculateAt, o.Deadline)
			if l := o.Ledger; l != nil {
				inner := opts.OnFinal
				opts.OnFinal = func(out txn.Outcome) {
					inner(out)
					l.finish(out)
				}
			}
			h, err := tx.Commit(opts)
			if err != nil {
				if o.Ledger != nil {
					o.Ledger.abandon()
				}
				setErr(fmt.Errorf("workload: commit: %w", err))
				return
			}
			h.Wait()
		})
	}

	// The pacer draws (gap, childSeed) pairs in a fixed order, batches
	// arrivals when asked, and samples the conservation ledger on a fixed
	// arrival stride — all on the control partition, so the whole arrival
	// sequence is a pure function of the seed.
	type arrival struct {
		s    *planet.Session
		seed int64
	}
	var pending []arrival
	var flushAt time.Time
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if d := clk.Until(flushAt); d > 0 {
			clk.Sleep(d)
		}
		for _, a := range pending {
			inject(a.s, a.seed)
		}
		pending = pending[:0]
	}

	next := start
	phase := 0
	phaseEnd := start
	if len(o.Phases) > 0 {
		phaseEnd = start.Add(o.Phases[0].Dur)
	}
	injected := 0
	for {
		var rate float64
		if len(o.Phases) > 0 {
			if phase >= len(o.Phases) {
				break
			}
			rate = o.Phases[phase].Rate
			if rate <= 0 {
				// Idle trough: skip straight to the next phase.
				next = phaseEnd
				phase++
				if phase < len(o.Phases) {
					phaseEnd = phaseEnd.Add(o.Phases[phase].Dur)
				}
				continue
			}
		} else {
			if injected >= o.Count {
				break
			}
			rate = o.Rate
		}
		// Poisson arrivals: exponential inter-arrival gaps.
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if len(o.Phases) > 0 && next.After(phaseEnd) {
			// The gap crossed a phase boundary: restart the draw at the
			// boundary under the next phase's rate (memorylessness makes
			// this statistically exact).
			next = phaseEnd
			phase++
			if phase < len(o.Phases) {
				phaseEnd = phaseEnd.Add(o.Phases[phase].Dur)
			}
			continue
		}
		childSeed := rng.Int63()
		errMu.Lock()
		stop := firstErr != nil
		errMu.Unlock()
		if stop {
			break
		}
		s := sessions[injected%len(sessions)]
		if o.Batch > 0 {
			if len(pending) > 0 && next.After(flushAt) {
				flush()
			}
			if len(pending) == 0 {
				flushAt = next.Add(o.Batch)
			}
			pending = append(pending, arrival{s: s, seed: childSeed})
		} else {
			if d := clk.Until(next); d > 0 {
				clk.Sleep(d)
			}
			inject(s, childSeed)
		}
		injected++
		if o.Ledger != nil && injected%o.SampleEvery == 0 {
			flush() // the sample counts batched arrivals only once injected
			if err := o.Ledger.Sample(clk.Since(start)); err != nil {
				setErr(err)
			}
		}
	}
	flush()
	g.Wait()
	report.Elapsed = clk.Since(start)
	if o.Ledger != nil {
		if err := o.Ledger.Sample(clk.Since(start)); err != nil {
			setErr(err)
		}
		if f := o.Ledger.Final(); f.InFlight != 0 {
			setErr(fmt.Errorf("workload: %d transactions still in flight after drain: %v", f.InFlight, f))
		}
	}
	errMu.Lock()
	defer errMu.Unlock()
	return report, firstErr
}
