package workload

import (
	"math/rand"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
)

// virtualDB builds a DB on the virtual clock for open-loop tests: a
// million arrivals of emulator time run in seconds of wall time, and the
// whole run is a pure function of the seed.
func virtualDB(t *testing.T, seed int64, pcfg planet.Config) (*cluster.Cluster, *planet.DB) {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Topology:      regions.Three(),
		Seed:          seed,
		VirtualTime:   true,
		CommitTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	pcfg.Cluster = c
	db, err := planet.Open(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, db
}

// TestOpenLoopMillion drives one million-plus open-loop virtual users
// through a surge-shaped diurnal schedule with admission control on,
// checking the conservation invariant at every sample point and
// cross-checking the ledger against the report at the end. Admission
// sheds most of the load (that is the point of open-loop: arrivals do not
// wait for capacity), so the run stays inside the go test budget.
func TestOpenLoopMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("million-arrival run skipped in -short mode")
	}
	_, db := virtualDB(t, 42, planet.Config{
		Admission: planet.AdmissionPolicy{MaxInFlight: 48},
	})
	ledger := &Ledger{}
	rep, err := Open{
		Options: Options{
			DB:       db,
			Template: Buy{Products: NewZipfFast("hot-", 1000, 1.2)},
			Seed:     7,
		},
		Phases: []RatePhase{
			{Rate: 2e6, Dur: 200 * time.Millisecond}, // morning ramp
			{Rate: 5e6, Dur: 100 * time.Millisecond}, // surge peak
			{Rate: 0, Dur: 20 * time.Millisecond},    // trough
			{Rate: 2e6, Dur: 200 * time.Millisecond}, // evening tail
		},
		Batch:       200 * time.Microsecond,
		Ledger:      ledger,
		SampleEvery: 4096,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}

	final := ledger.Final()
	if final.Injected < 1_000_000 {
		t.Fatalf("injected %d arrivals, want >= 1M", final.Injected)
	}
	if final.InFlight != 0 {
		t.Fatalf("in-flight %d after drain, want 0", final.InFlight)
	}
	samples := ledger.Samples()
	if len(samples) < 200 {
		t.Fatalf("only %d conservation samples for %d arrivals", len(samples), final.Injected)
	}
	for _, s := range samples {
		if err := s.Check(); err != nil {
			t.Fatal(err)
		}
	}
	// The ledger and the report count through independent code paths; they
	// must agree exactly.
	if rep.Committed.Load() != final.Committed || rep.Aborted.Load() != final.Aborted ||
		rep.Rejected.Load() != final.Rejected {
		t.Fatalf("ledger %v disagrees with report committed=%d aborted=%d rejected=%d",
			final, rep.Committed.Load(), rep.Aborted.Load(), rep.Rejected.Load())
	}
	if rep.Total() != final.Injected {
		t.Fatalf("report total %d != injected %d", rep.Total(), final.Injected)
	}
	if final.Committed == 0 {
		t.Fatal("surge rejected everything: admission gate never admitted a commit")
	}
	t.Logf("million-user run: %v (%.1f%% shed)", final,
		100*float64(final.Rejected)/float64(final.Injected))
}

// TestOpenLoopConservationChaos crashes a replica and cuts a WAN link in
// the middle of an open-loop surge, then heals both, and requires the
// conservation invariant to hold at every sample through the fault window
// — timeouts, aborts, and rejections all have to land in exactly one
// ledger bucket even while the cluster is degraded.
func TestOpenLoopConservationChaos(t *testing.T) {
	c, db := virtualDB(t, 43, planet.Config{
		Admission: planet.AdmissionPolicy{MaxInFlight: 32},
	})
	clk := c.Clock()

	// Fault window: one replica down and one WAN link cut mid-surge, both
	// healed before the tail phase ends.
	clk.AfterFunc(60*time.Millisecond, func() {
		if err := c.CrashReplica(regions.Virginia); err != nil {
			t.Error(err)
		}
		c.Net.SetLinkCut(regions.California, regions.Ireland, true)
	})
	clk.AfterFunc(160*time.Millisecond, func() {
		c.Net.SetLinkCut(regions.California, regions.Ireland, false)
		if err := c.RestartReplica(regions.Virginia); err != nil {
			t.Error(err)
		}
	})

	ledger := &Ledger{}
	_, err := Open{
		Options: Options{
			DB:       db,
			Template: Transfer{Accounts: NewZipfFast("acct-", 200, 1.3), Balance: 100},
			Seed:     11,
		},
		Phases: []RatePhase{
			{Rate: 50_000, Dur: 120 * time.Millisecond},
			{Rate: 200_000, Dur: 80 * time.Millisecond}, // surge inside the fault window
			{Rate: 50_000, Dur: 120 * time.Millisecond},
		},
		Batch:       500 * time.Microsecond,
		Ledger:      ledger,
		SampleEvery: 512,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := ledger.Final()
	if final.InFlight != 0 {
		t.Fatalf("in-flight %d after drain: %v", final.InFlight, final)
	}
	if final.Injected == 0 || final.Committed == 0 {
		t.Fatalf("degenerate chaos run: %v", final)
	}
	for _, s := range ledger.Samples() {
		if err := s.Check(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("chaos run: %v over %d samples", final, len(ledger.Samples()))
}

// TestOpenLoopDeterministic runs the same phased, batched schedule twice
// on identically-seeded clusters and requires bit-identical ledgers: the
// arrival sequence, admission decisions, and outcomes are pure functions
// of the seed even with pooled child RNGs.
func TestOpenLoopDeterministic(t *testing.T) {
	run := func() ([]LedgerSample, LedgerSample) {
		_, db := virtualDB(t, 44, planet.Config{
			Admission: planet.AdmissionPolicy{MaxInFlight: 16},
		})
		ledger := &Ledger{}
		_, err := Open{
			Options: Options{
				DB:       db,
				Template: Buy{Products: NewZipfFast("dp-", 100, 1.1)},
				Seed:     13,
			},
			Phases: []RatePhase{
				{Rate: 100_000, Dur: 50 * time.Millisecond},
				{Rate: 400_000, Dur: 20 * time.Millisecond},
			},
			Batch:       250 * time.Microsecond,
			Ledger:      ledger,
			SampleEvery: 256,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return ledger.Samples(), ledger.Final()
	}
	s1, f1 := run()
	s2, f2 := run()
	if f1 != f2 {
		t.Fatalf("final ledgers diverged:\n  %v\n  %v", f1, f2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("sample counts diverged: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample %d diverged:\n  %v\n  %v", i, s1[i], s2[i])
		}
	}
}

// TestZipfFastSkew checks the alias-table sampler reproduces the Zipfian
// head weight the per-draw sampler has.
func TestZipfFastSkew(t *testing.T) {
	g := NewZipfFast("z-", 1000, 1.3)
	rng := rand.New(rand.NewSource(2))
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		counts[g.Next(rng)]++
	}
	head := counts[keyName("z-", 0)]
	if head < 20000/1000*10 {
		t.Errorf("zipf head key drawn %d times, not skewed", head)
	}
	if len(g.Keys()) != 1000 {
		t.Errorf("Keys()=%d", len(g.Keys()))
	}
}

// TestPooledRNGDeterministic: the draw sequence is a pure function of the
// seed regardless of pool reuse order.
func TestPooledRNGDeterministic(t *testing.T) {
	draw := func(seed int64) [4]int64 {
		r := pooledRNG(seed)
		defer putRNG(r)
		var out [4]int64
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	a := draw(99)
	b := draw(7) // interleave another seed to perturb pool state
	if got := draw(99); got != a {
		t.Fatalf("seed 99 drew %v then %v", a, got)
	}
	if got := draw(7); got != b {
		t.Fatalf("seed 7 drew %v then %v", b, got)
	}
}

// TestLedgerAbandonConserves: driver-side failures land in the rejected
// bucket and keep the invariant intact.
func TestLedgerAbandonConserves(t *testing.T) {
	l := &Ledger{}
	l.inject()
	l.inject()
	l.abandon()
	if err := l.Sample(time.Second); err != nil {
		t.Fatal(err)
	}
	f := l.Final()
	if f.Rejected != 1 || f.InFlight != 1 {
		t.Fatalf("unexpected ledger %v", f)
	}
}
