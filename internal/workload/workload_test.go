package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
)

func TestUniformKeyGen(t *testing.T) {
	g := Uniform{Prefix: "u-", N: 10}
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string]int)
	for i := 0; i < 10000; i++ {
		seen[g.Next(rng)]++
	}
	if len(seen) != 10 {
		t.Fatalf("drew %d distinct keys, want 10", len(seen))
	}
	for k, n := range seen {
		if !strings.HasPrefix(k, "u-") {
			t.Errorf("key %q missing prefix", k)
		}
		if n < 800 || n > 1200 {
			t.Errorf("key %q drawn %d times, want ≈1000", k, n)
		}
	}
	if len(g.Keys()) != 10 {
		t.Errorf("Keys()=%d", len(g.Keys()))
	}
}

func TestZipfSkew(t *testing.T) {
	g := Zipf{Prefix: "z-", N: 1000, S: 1.3}
	rng := rand.New(rand.NewSource(2))
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		counts[g.Next(rng)]++
	}
	// The head key must dominate: more than 10x the mean.
	head := counts[keyName("z-", 0)]
	if head < 20000/1000*10 {
		t.Errorf("zipf head key drawn %d times, not skewed", head)
	}
}

func TestZipfDefaultsInvalidS(t *testing.T) {
	g := Zipf{Prefix: "z-", N: 10, S: 0.5}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if k := g.Next(rng); !strings.HasPrefix(k, "z-") {
			t.Fatalf("bad key %q", k)
		}
	}
}

func TestHotspotSplit(t *testing.T) {
	g := Hotspot{Prefix: "h-", HotKeys: 2, ColdKeys: 1000, HotProb: 0.7}
	rng := rand.New(rand.NewSource(4))
	hot := 0
	const total = 20000
	for i := 0; i < total; i++ {
		if strings.HasPrefix(g.Next(rng), "h-hot-") {
			hot++
		}
	}
	frac := float64(hot) / total
	if frac < 0.67 || frac > 0.73 {
		t.Errorf("hot fraction %.3f, want ≈0.70", frac)
	}
	if len(g.Keys()) != 1002 {
		t.Errorf("Keys()=%d, want 1002", len(g.Keys()))
	}
}

func TestFixedKeyGen(t *testing.T) {
	g := Fixed{List: []string{"a", "b"}}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if k := g.Next(rng); k != "a" && k != "b" {
			t.Fatalf("unexpected key %q", k)
		}
	}
}

// Property: every generator only emits keys from its declared key space.
func TestKeyGenClosedOverKeys(t *testing.T) {
	gens := []KeyGen{
		Uniform{Prefix: "p-", N: 17},
		Zipf{Prefix: "p-", N: 17, S: 1.2},
		Hotspot{Prefix: "p-", HotKeys: 3, ColdKeys: 14, HotProb: 0.5},
		Fixed{List: []string{"x", "y", "z"}},
	}
	for _, g := range gens {
		space := make(map[string]bool)
		for _, k := range g.Keys() {
			space[k] = true
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				if !space[g.Next(rng)] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%T: %v", g, err)
		}
	}
}

// testDB builds a small DB for driver tests.
func testDB(t *testing.T, pcfg planet.Config) *planet.DB {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Topology: regions.Three(), TimeScale: 0.01, Seed: 6,
		// Generous: the production default is a 50ms real-time budget at
		// this scale, which flakes on loaded machines.
		CommitTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	pcfg.Cluster = c
	db, err := planet.Open(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestClosedDriver(t *testing.T) {
	db := testDB(t, planet.Config{})
	rep, err := Closed{
		Options: Options{
			DB:       db,
			Template: Transfer{Accounts: Uniform{Prefix: "acct-", N: 20}, Balance: 100},
			Seed:     7,
		},
		Clients: 6, PerClient: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 30 {
		t.Errorf("total=%d, want 30", rep.Total())
	}
	if rep.Committed.Load() == 0 {
		t.Error("nothing committed")
	}
	if rep.Final.Count() != rep.Decided() {
		t.Errorf("final latency samples %d != decided %d", rep.Final.Count(), rep.Decided())
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestOpenDriver(t *testing.T) {
	db := testDB(t, planet.Config{})
	rep, err := Open{
		Options: Options{
			DB:       db,
			Template: Buy{Products: Uniform{Prefix: "prod-", N: 50}},
			Seed:     8,
		},
		Rate: 2000, Count: 40,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 40 {
		t.Errorf("total=%d, want 40", rep.Total())
	}
	if rep.GoodputPerSec() <= 0 {
		t.Error("no goodput measured")
	}
}

func TestOpenDriverValidation(t *testing.T) {
	db := testDB(t, planet.Config{})
	if _, err := (Open{Options: Options{DB: db, Template: Buy{Products: Uniform{Prefix: "p", N: 1}}}}).Run(); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := (Open{Rate: 100}).Run(); err == nil {
		t.Error("missing DB accepted")
	}
	if _, err := (Open{Options: Options{DB: db}, Rate: 100}).Run(); err == nil {
		t.Error("missing template accepted")
	}
}

func TestSpeculationRecordedInReport(t *testing.T) {
	db := testDB(t, planet.Config{})
	rep, err := Closed{
		Options: Options{
			DB:          db,
			Template:    Buy{Products: Uniform{Prefix: "s-", N: 100}},
			SpeculateAt: 0.8,
			Seed:        9,
		},
		Clients: 4, PerClient: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speculated.Load() == 0 {
		t.Error("no speculation on an uncontended workload at threshold 0.8")
	}
	if rep.Perceived.Count() != rep.Total() {
		t.Errorf("perceived samples %d != total %d", rep.Perceived.Count(), rep.Total())
	}
	// Perceived latency must not exceed final latency on average.
	if rep.Perceived.Mean() > rep.Final.Mean() {
		t.Errorf("perceived mean %v above final mean %v", rep.Perceived.Mean(), rep.Final.Mean())
	}
}

func TestTransferConservesTotal(t *testing.T) {
	db := testDB(t, planet.Config{})
	tmpl := Transfer{Accounts: Uniform{Prefix: "tc-", N: 8}, Balance: 50}
	if _, err := (Closed{
		Options: Options{DB: db, Template: tmpl, Seed: 10},
		Clients: 8, PerClient: 8,
	}).Run(); err != nil {
		t.Fatal(err)
	}
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	for _, r := range db.Cluster().Regions() {
		s, err := db.Session(r)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, k := range tmpl.Accounts.Keys() {
			v, _, err := s.ReadInt(k)
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
		if total != 8*50 {
			t.Errorf("%s: total balance %d, want 400", r, total)
		}
	}
}

func TestReportRates(t *testing.T) {
	r := NewReport()
	if r.CommitRate() != 0 || r.ApologyRate() != 0 || r.GoodputPerSec() != 0 {
		t.Error("empty report rates not zero")
	}
	r.Committed.Add(3)
	r.Aborted.Add(1)
	r.Rejected.Add(2)
	r.Speculated.Add(2)
	r.Apologies.Add(1)
	r.Elapsed = time.Second
	if got := r.CommitRate(); got != 0.75 {
		t.Errorf("commit rate=%v", got)
	}
	if got := r.SpeculationRate(); got != 0.5 {
		t.Errorf("speculation rate=%v", got)
	}
	if got := r.ApologyRate(); got != 0.5 {
		t.Errorf("apology rate=%v", got)
	}
	if got := r.GoodputPerSec(); got != 3 {
		t.Errorf("goodput=%v", got)
	}
	if r.Total() != 6 {
		t.Errorf("total=%d", r.Total())
	}
	if !strings.Contains(r.String(), "commit-rate=0.750") {
		t.Errorf("report string: %s", r.String())
	}
}

func TestTemplateSeeding(t *testing.T) {
	db := testDB(t, planet.Config{})
	tmpl := Buy{Products: Uniform{Prefix: "seed-", N: 3}, Stock: 9}
	tmpl.Seed(db.Cluster())
	s, err := db.Session(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range tmpl.Products.Keys() {
		v, _, err := s.ReadInt(k)
		if err != nil || v != 9 {
			t.Errorf("seeded %s=%d err=%v", k, v, err)
		}
	}
}

func TestCheckoutTemplate(t *testing.T) {
	db := testDB(t, planet.Config{})
	tmpl := Checkout{
		Products: Uniform{Prefix: "cp-", N: 10},
		Orders:   Uniform{Prefix: "co-", N: 20},
		NItems:   3,
		Stock:    100,
	}
	rep, err := Closed{
		Options: Options{DB: db, Template: tmpl, Seed: 14},
		Clients: 4, PerClient: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed.Load() == 0 {
		t.Fatal("no checkout committed")
	}
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	// Each committed checkout sells exactly NItems units.
	s, err := db.Session(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, k := range tmpl.Products.Keys() {
		v, _, err := s.ReadInt(k)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	wantSold := 3 * int64(rep.Committed.Load())
	if sold := 10*100 - total; sold != wantSold {
		t.Errorf("sold %d units for %d commits, want %d", sold, rep.Committed.Load(), wantSold)
	}
}

func TestReadModifyWriteDistinctKeys(t *testing.T) {
	db := testDB(t, planet.Config{})
	tmpl := ReadModifyWrite{Keys: Uniform{Prefix: "rm-", N: 4}, NKeys: 3}
	tmpl.Seed(db.Cluster())
	s, err := db.Session(regions.Virginia)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		tx, err := tmpl.Build(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tx.WriteCount() != 3 {
			t.Fatalf("txn writes %d keys, want 3", tx.WriteCount())
		}
	}
}
