// Package metrics provides the measurement primitives used by the PLANET
// experiment harness: latency histograms with percentile and CDF queries,
// simple counters, calibration (reliability) tables for the commit-likelihood
// predictor, and throughput accounting.
//
// Everything here is safe for concurrent use unless documented otherwise,
// because workload drivers record from many goroutines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram records duration samples with logarithmically spaced buckets,
// trading a bounded relative error (~5%) for O(1) recording and constant
// memory. It keeps exact min/max and sum for means.
//
// Recording is lock-free and allocation-free: buckets, count, and sum are
// atomics, and min/max are maintained with CAS loops that early-exit once
// the extremes settle, so concurrent workload drivers never serialize on a
// histogram mutex. The sum is an integer nanosecond total — a single
// fetch-and-add, exact, and commutative, so the mean is independent of the
// real-time order concurrent recorders land in. Readers take racy-but-
// monotonic snapshots, which is all reporting needs.
type Histogram struct {
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64 // running sum in ns (exact: ~292y of headroom)
	minNS   atomic.Int64 // smallest sample in ns; math.MaxInt64 when empty
	maxNS   atomic.Int64 // largest sample in ns
}

// bucketGrowth is the per-bucket multiplicative width. 1.05 bounds the
// relative quantile error at about 5%, plenty for latency reporting.
const bucketGrowth = 1.05

// histBase is the lower edge of bucket 0 (durations below it land in
// bucket 0): 1 microsecond.
const histBase = float64(time.Microsecond)

// numBuckets covers 1µs..~ (1.05^512)µs ≈ 7e10µs ≈ 19h, far beyond any
// latency this system produces.
const numBuckets = 512

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{buckets: make([]atomic.Uint64, numBuckets)}
	h.minNS.Store(math.MaxInt64)
	return h
}

// bucketFor maps a duration to a bucket index.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	v := float64(d) / histBase
	if v <= 1 {
		return 0
	}
	i := int(math.Log(v) / math.Log(bucketGrowth))
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// bucketMid returns a representative duration for a bucket (geometric mean
// of its edges).
func bucketMid(i int) time.Duration {
	lo := histBase * math.Pow(bucketGrowth, float64(i))
	return time.Duration(lo * math.Sqrt(bucketGrowth))
}

// Observe records one sample. Lock-free and allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	ns := int64(d)
	for {
		cur := h.minNS.Load()
		if ns >= cur || h.minNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.sumNS.Add(ns)
	h.count.Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the exact mean of all samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / int64(n))
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.minNS.Load())
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.maxNS.Load())
}

// Quantile returns the approximate p-quantile (p in [0,1]); 0 when empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	min, max := time.Duration(h.minNS.Load()), time.Duration(h.maxNS.Load())
	if p <= 0 {
		return min
	}
	if p >= 1 {
		return max
	}
	target := uint64(p * float64(n))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > target {
			d := bucketMid(i)
			// Clamp into the exact observed range so p50 of a
			// single-valued distribution equals that value.
			if d < min {
				d = min
			}
			if d > max {
				d = max
			}
			return d
		}
	}
	return max
}

// BucketCount is one cumulative histogram bucket: Count samples were at or
// below UpperBound.
type BucketCount struct {
	UpperBound time.Duration
	Count      uint64
}

// bucketUpper returns the upper edge of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(histBase * math.Pow(bucketGrowth, float64(i+1)))
}

// CumulativeBuckets returns cumulative counts at the upper edge of every
// non-empty bucket, in increasing bound order — exactly the series a
// Prometheus histogram exposes as `_bucket{le="..."}` lines (the caller
// appends the `+Inf` bucket). Skipping empty buckets keeps the exposition
// compact without changing its meaning: cumulative counts are valid at any
// subset of edges.
func (h *Histogram) CumulativeBuckets() []BucketCount {
	var out []BucketCount
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, BucketCount{UpperBound: bucketUpper(i), Count: cum})
	}
	return out
}

// CDFPoints returns (duration, cumulative fraction) pairs suitable for
// plotting the sample CDF, one point per non-empty bucket.
func (h *Histogram) CDFPoints() []CDFPoint {
	n := h.count.Load()
	if n == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{D: bucketMid(i), P: float64(cum) / float64(n)})
	}
	return pts
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	D time.Duration
	P float64
}

// Summary is a fixed set of latency statistics for reporting.
type Summary struct {
	Count          uint64
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
}

// Summarize captures the histogram's headline statistics.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Scale returns a copy of s with every duration multiplied by f. The bench
// harness uses it to convert time-compressed measurements back to WAN
// milliseconds.
func (s Summary) Scale(f float64) Summary {
	scale := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	return Summary{
		Count: s.Count,
		Mean:  scale(s.Mean), Min: scale(s.Min), Max: scale(s.Max),
		P50: scale(s.P50), P95: scale(s.P95), P99: scale(s.P99),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.P99), round(s.Max))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// FormatCDF renders CDF points as a two-column table (for the harness).
func FormatCDF(pts []CDFPoint, scale float64) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%12s  %.4f\n", time.Duration(float64(p.D)*scale).Round(time.Millisecond), p.P)
	}
	return b.String()
}

// SortDurations sorts a slice ascending (helper shared by reports).
func SortDurations(s []time.Duration) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
