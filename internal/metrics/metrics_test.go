package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not zeroed")
	}
	if pts := h.CDFPoints(); pts != nil {
		t.Errorf("CDF points on empty: %v", pts)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(42 * time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 || s.Min != 42*time.Millisecond || s.Max != 42*time.Millisecond {
		t.Errorf("summary %+v", s)
	}
	if s.P50 != 42*time.Millisecond {
		t.Errorf("p50=%v, want exactly the single sample", s.P50)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	var exact []time.Duration
	for i := 1; i <= 10000; i++ {
		d := time.Duration(i) * 37 * time.Microsecond
		h.Observe(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(p)
		want := exact[int(p*float64(len(exact)))]
		if ratio := float64(got) / float64(want); ratio < 0.93 || ratio > 1.07 {
			t.Errorf("p%.0f: got %v, want %v (ratio %.3f)", p*100, got, want, ratio)
		}
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{10, 20, 30} {
		h.Observe(d * time.Millisecond)
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Errorf("mean=%v, want 20ms", got)
	}
}

func TestHistogramCDFPoints(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	pts := h.CDFPoints()
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	prevP := 0.0
	prevD := time.Duration(0)
	for _, pt := range pts {
		if pt.P < prevP || pt.D < prevD {
			t.Fatalf("CDF not monotone at %+v", pt)
		}
		prevP, prevD = pt.P, pt.D
	}
	if last := pts[len(pts)-1].P; math.Abs(last-1) > 1e-9 {
		t.Errorf("final CDF point %v, want 1", last)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count=%d", h.Count())
	}
}

// Property: quantile is within the histogram's documented ~5% relative
// error of an exactly computed quantile, for arbitrary sample sets.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		exact := make([]time.Duration, len(raw))
		for i, r := range raw {
			d := time.Duration(r%10_000_000) * time.Microsecond
			h.Observe(d)
			exact[i] = d
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		for _, p := range []float64{0.25, 0.5, 0.9} {
			got := float64(h.Quantile(p))
			idx := int(p * float64(len(exact)))
			want := float64(exact[idx])
			// Allow one bucket width (5%) plus one rank of slack for
			// bucket-boundary ties.
			lo, hi := idx-1, idx+1
			if lo < 0 {
				lo = 0
			}
			if hi >= len(exact) {
				hi = len(exact) - 1
			}
			min := float64(exact[lo])*0.93 - float64(time.Microsecond)
			max := float64(exact[hi])*1.07 + float64(time.Microsecond)
			if got < min || got > max {
				t.Logf("p=%v got=%v want≈%v [%v,%v]", p, got, want, min, max)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryScale(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Millisecond)
	s := h.Summarize().Scale(50)
	if s.Mean != 500*time.Millisecond {
		t.Errorf("scaled mean=%v", s.Mean)
	}
	if s.Count != 1 {
		t.Errorf("scaled count=%d", s.Count)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter=%d", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	for i := 0; i < 10; i++ {
		tp.Record()
	}
	time.Sleep(10 * time.Millisecond)
	if tp.Count() != 10 {
		t.Errorf("count=%d", tp.Count())
	}
	if tp.RatePerSec() <= 0 {
		t.Errorf("rate=%v", tp.RatePerSec())
	}
}

func TestCalibrationDiagonal(t *testing.T) {
	c := NewCalibration(10)
	// Perfectly calibrated source: outcome ~ Bernoulli(p).
	for i := 0; i < 10; i++ {
		p := float64(i)/10 + 0.05
		for j := 0; j < 1000; j++ {
			c.Record(p, float64(j%1000)/1000 < p)
		}
	}
	if mae := c.MeanAbsoluteError(); mae > 0.02 {
		t.Errorf("calibrated source MAE=%v", mae)
	}
	rows := c.Rows()
	if len(rows) != 10 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.MeanPredicted < r.Lo || r.MeanPredicted > r.Hi {
			t.Errorf("bucket [%v,%v) holds mean prediction %v", r.Lo, r.Hi, r.MeanPredicted)
		}
	}
}

func TestCalibrationMiscalibrated(t *testing.T) {
	c := NewCalibration(10)
	// Predicts 0.9, reality is 0.5.
	for j := 0; j < 2000; j++ {
		c.Record(0.9, j%2 == 0)
	}
	if mae := c.MeanAbsoluteError(); mae < 0.35 {
		t.Errorf("miscalibrated source MAE=%v, want ≈0.4", mae)
	}
}

func TestCalibrationClamping(t *testing.T) {
	c := NewCalibration(4)
	c.Record(-0.5, true)
	c.Record(1.5, true)
	rows := c.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows=%v", rows)
	}
	if rows[0].Lo != 0 || rows[len(rows)-1].Hi != 1 {
		t.Errorf("clamped rows: %+v", rows)
	}
}

func TestCalibrationString(t *testing.T) {
	c := NewCalibration(5)
	c.Record(0.7, true)
	s := c.String()
	if !strings.Contains(s, "mean abs calibration error") {
		t.Errorf("missing MAE line: %q", s)
	}
}

func TestLabeledSummaries(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	out := LabeledSummaries(map[string]Summary{
		"b-series": h.Summarize(),
		"a-series": h.Summarize(),
	}, 1)
	ai := strings.Index(out, "a-series")
	bi := strings.Index(out, "b-series")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("labels not sorted:\n%s", out)
	}
}

func TestFormatCDF(t *testing.T) {
	out := FormatCDF([]CDFPoint{{D: time.Millisecond, P: 0.5}}, 2)
	if !strings.Contains(out, "0.5000") || !strings.Contains(out, "2ms") {
		t.Errorf("FormatCDF output %q", out)
	}
}

func TestSortDurations(t *testing.T) {
	s := []time.Duration{3, 1, 2}
	SortDurations(s)
	if s[0] != 1 || s[2] != 3 {
		t.Errorf("sorted: %v", s)
	}
}
