package metrics

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve measures the per-sample recording cost, which
// sits on every transaction completion path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Millisecond)
	}
}

// BenchmarkHistogramQuantile measures a percentile query over a populated
// histogram (reporting path).
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100_000; i++ {
		h.Observe(time.Duration(i%5000) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}

// BenchmarkCalibrationRecord measures the per-prediction recording cost.
func BenchmarkCalibrationRecord(b *testing.B) {
	c := NewCalibration(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(float64(i%100)/100, i%3 == 0)
	}
}
