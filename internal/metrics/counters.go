package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Throughput measures committed work over a wall-clock interval.
type Throughput struct {
	start time.Time
	n     atomic.Uint64
}

// NewThroughput starts measuring now.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Record counts one completed unit.
func (t *Throughput) Record() { t.n.Add(1) }

// RatePerSec returns units per second since construction.
func (t *Throughput) RatePerSec() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.n.Load()) / el
}

// Count returns total recorded units.
func (t *Throughput) Count() uint64 { return t.n.Load() }

// Calibration is a reliability table for probability predictions: it buckets
// predictions by value and tracks the realized positive rate per bucket.
// A well-calibrated predictor shows observed ≈ bucket midpoint on every row.
// Predictions are accumulated in fixed point (nano-units) so the sum is
// exact and commutative: concurrent recorders landing in different real-time
// orders cannot perturb the table's low bits across same-seed runs.
type Calibration struct {
	mu      sync.Mutex
	buckets int
	n       []uint64
	hits    []uint64
	sumPred []int64 // sum of predictions × predFixed
}

// predFixed is the fixed-point scale for prediction sums: 1e9 keeps nine
// decimal digits, far below any reported precision, with int64 headroom for
// ~9e9 samples per bucket.
const predFixed = 1e9

// NewCalibration returns a table with the given number of equal-width
// buckets over [0,1]; buckets is clamped to at least 2.
func NewCalibration(buckets int) *Calibration {
	if buckets < 2 {
		buckets = 2
	}
	return &Calibration{
		buckets: buckets,
		n:       make([]uint64, buckets),
		hits:    make([]uint64, buckets),
		sumPred: make([]int64, buckets),
	}
}

// Record logs one (prediction, outcome) pair.
func (c *Calibration) Record(predicted float64, positive bool) {
	if predicted < 0 {
		predicted = 0
	}
	if predicted > 1 {
		predicted = 1
	}
	i := int(predicted * float64(c.buckets))
	if i >= c.buckets {
		i = c.buckets - 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n[i]++
	c.sumPred[i] += int64(math.Round(predicted * predFixed))
	if positive {
		c.hits[i]++
	}
}

// Row is one calibration bucket's aggregate.
type Row struct {
	Lo, Hi        float64 // bucket bounds
	MeanPredicted float64
	Observed      float64
	N             uint64
}

// Rows returns non-empty buckets in ascending prediction order.
func (c *Calibration) Rows() []Row {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rows []Row
	w := 1 / float64(c.buckets)
	for i := 0; i < c.buckets; i++ {
		if c.n[i] == 0 {
			continue
		}
		rows = append(rows, Row{
			Lo:            float64(i) * w,
			Hi:            float64(i+1) * w,
			MeanPredicted: float64(c.sumPred[i]) / predFixed / float64(c.n[i]),
			Observed:      float64(c.hits[i]) / float64(c.n[i]),
			N:             c.n[i],
		})
	}
	return rows
}

// MeanAbsoluteError returns the sample-weighted mean |predicted - observed|
// across buckets — the headline calibration-quality number.
func (c *Calibration) MeanAbsoluteError() float64 {
	rows := c.Rows()
	var total, weighted float64
	for _, r := range rows {
		total += float64(r.N)
		weighted += float64(r.N) * absF(r.MeanPredicted-r.Observed)
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// String renders the table for the harness.
func (c *Calibration) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %-10s %8s\n", "bucket", "predicted", "observed", "n")
	for _, r := range c.Rows() {
		fmt.Fprintf(&b, "[%.2f,%.2f)  %-10.3f %-10.3f %8d\n", r.Lo, r.Hi, r.MeanPredicted, r.Observed, r.N)
	}
	fmt.Fprintf(&b, "mean abs calibration error: %.4f\n", c.MeanAbsoluteError())
	return b.String()
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// LabeledSummaries formats a set of named histogram summaries as an aligned
// table, sorted by label, for experiment output.
func LabeledSummaries(m map[string]Summary, scale float64) string {
	labels := make([]string, 0, len(m))
	for k := range m {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %12s %12s %12s\n", "series", "n", "mean", "p50", "p95", "p99")
	for _, l := range labels {
		s := m[l].Scale(scale)
		fmt.Fprintf(&b, "%-24s %8d %12s %12s %12s %12s\n",
			l, s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.P99))
	}
	return b.String()
}
