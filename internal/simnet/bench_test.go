package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planet/internal/latency"
)

// BenchmarkSendDeliver measures raw emulator message throughput: sample a
// delay, schedule, deliver. This bounds how much load the experiment
// harness can put through one process.
func BenchmarkSendDeliver(b *testing.B) {
	m := NewMatrix(latency.Constant(10 * time.Microsecond))
	m.SetLink("x", "y", latency.NewLogNormal(20*time.Microsecond, 10*time.Microsecond, 0.2))
	n, err := New(Config{Latency: m, TimeScale: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	var wg sync.WaitGroup
	dst := Addr{Region: "y", Name: "sink"}
	n.Register(dst, func(Message) { wg.Done() })
	src := Addr{Region: "x", Name: "src"}

	b.ReportAllocs()
	b.ResetTimer()
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		n.Send(src, dst, i)
	}
	wg.Wait()
}

// BenchmarkSimnetSend hammers the send path from many goroutines at once —
// the shape a fleet of concurrent coordinators produces. It measures how
// much the send-side synchronization serializes independent senders.
func BenchmarkSimnetSend(b *testing.B) {
	m := NewMatrix(latency.Constant(time.Microsecond))
	n, err := New(Config{Latency: m, TimeScale: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	var wg sync.WaitGroup
	dst := Addr{Region: "y", Name: "sink"}
	n.Register(dst, func(Message) { wg.Done() })

	var senders atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	wg.Add(b.N)
	b.RunParallel(func(pb *testing.PB) {
		src := Addr{Region: "x", Name: fmt.Sprintf("s%d", senders.Add(1))}
		for pb.Next() {
			n.Send(src, dst, 0)
		}
	})
	wg.Wait()
}
