// Package simnet emulates a multi-region wide-area network inside one
// process. Nodes register a handler under an Addr (region + name); messages
// sent between nodes are delivered asynchronously after a delay sampled from
// a per-region-pair latency distribution, optionally scaled down by a global
// time-scale factor so WAN-shaped experiments complete in milliseconds.
//
// The emulator supports message loss, region partitions, and per-link
// overrides, which the failure-injection tests use. All delivery happens on
// timer goroutines, so handlers must be internally synchronized and must not
// block for long.
package simnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/latency"
	"planet/internal/vclock"
)

// Region names a datacenter/availability region.
type Region string

// Addr identifies a node on the network.
type Addr struct {
	Region Region
	Name   string
}

// String implements fmt.Stringer.
func (a Addr) String() string { return string(a.Region) + "/" + a.Name }

// Message is one delivered payload.
type Message struct {
	From, To Addr
	Payload  any
	// SentAt is the send timestamp on the network's clock (wall time under
	// the real clock, virtual time under a virtual one).
	SentAt time.Time
}

// Handler consumes delivered messages. Handlers run on shared timer
// goroutines: they must synchronize internally and return quickly.
type Handler func(Message)

// Observer receives per-message instrumentation callbacks. Implementations
// must be safe for concurrent use and fast: they run inline on the send
// path and on delivery timer goroutines.
type Observer interface {
	// MessageSent fires for every accepted send with the sampled
	// (scaled) one-way delay.
	MessageSent(from, to Region, delay time.Duration)
	// MessageDelivered fires when a handler receives the message.
	MessageDelivered(from, to Region)
	// MessageDropped fires for losses, partitions, unknown destinations,
	// and shutdown drops.
	MessageDropped(from, to Region)
}

// linkKey orders a directed region pair.
type linkKey struct{ from, to Region }

// Matrix holds one-way delay distributions per directed region pair, plus a
// default intra-region distribution. It is immutable after construction.
type Matrix struct {
	links map[linkKey]latency.Dist
	local latency.Dist
}

// NewMatrix returns an empty matrix whose intra-region delay is local.
// A nil local defaults to a 250µs-median log-normal.
func NewMatrix(local latency.Dist) *Matrix {
	if local == nil {
		local = latency.NewLogNormal(100*time.Microsecond, 150*time.Microsecond, 0.3)
	}
	return &Matrix{links: make(map[linkKey]latency.Dist), local: local}
}

// SetLink installs dist as the one-way delay for from→to and to→from.
func (m *Matrix) SetLink(from, to Region, dist latency.Dist) {
	m.links[linkKey{from, to}] = dist
	m.links[linkKey{to, from}] = dist
}

// Link returns the one-way distribution for from→to (the local distribution
// when the regions are equal or the pair is unknown).
func (m *Matrix) Link(from, to Region) latency.Dist {
	if from == to {
		return m.local
	}
	if d, ok := m.links[linkKey{from, to}]; ok {
		return d
	}
	return m.local
}

// Regions returns the distinct regions mentioned by the matrix links.
func (m *Matrix) Regions() []Region {
	seen := make(map[Region]bool)
	var out []Region
	for k := range m.links {
		if !seen[k.from] {
			seen[k.from] = true
			out = append(out, k.from)
		}
		if !seen[k.to] {
			seen[k.to] = true
			out = append(out, k.to)
		}
	}
	return out
}

// Config parameterizes a Network.
type Config struct {
	// Latency supplies per-pair one-way delays. Required.
	Latency *Matrix
	// TimeScale multiplies sampled delays before they are realized; 0.01
	// runs a 150ms link as 1.5ms. Values <= 0 default to 1 (real time).
	TimeScale float64
	// Seed makes delay sampling and loss deterministic.
	Seed int64
	// LossRate drops messages uniformly at random, in [0,1).
	LossRate float64
	// Clock drives delivery timers, send timestamps, and Quiesce. Nil means
	// the real system clock; a *vclock.Virtual runs the network at CPU
	// speed with deterministic delivery order.
	Clock vclock.Clock
}

// sendShards is the fixed number of RNG shards for the send path. A fixed
// count (rather than GOMAXPROCS) keeps sender→shard assignment — and thus
// every sampled delay — identical across machines.
const sendShards = 8

// rngShard is one independently-seeded sampling stream. Senders hash to a
// shard, so concurrent sends from different nodes do not serialize on one
// global RNG lock.
type rngShard struct {
	mu  sync.Mutex
	rng *rand.Rand
	_   [40]byte // pad to a cache line so shards don't false-share
}

// Network is the in-process WAN. Safe for concurrent use.
type Network struct {
	cfg    Config
	scale  float64
	clk    vclock.Clock
	mu     sync.Mutex
	nodes  map[Addr]Handler
	down   map[Region]bool
	cut    map[linkKey]bool
	factor map[linkKey]float64 // per-link delay multipliers (latency spikes)
	closed atomic.Bool

	lossBits atomic.Uint64 // current loss rate as float64 bits (lock-free read on send)

	shards  [sendShards]rngShard // per-sender delay/loss sampling streams
	calibMu sync.Mutex
	calib   *rand.Rand // dedicated stream for SampleDelay probes

	pmu     sync.Mutex
	pending int64         // messages sampled but not yet delivered
	drained *vclock.Event // fired when pending hits zero; nil unless a Quiesce waits

	obs atomic.Value // Observer, set via SetObserver

	// Stats.
	Sent      atomic.Uint64
	Delivered atomic.Uint64
	Dropped   atomic.Uint64
}

// obsHolder wraps an Observer so atomic.Value always stores one concrete
// type (nil included).
type obsHolder struct{ o Observer }

// SetObserver installs o to receive per-message instrumentation; a nil o
// clears it. Safe to call while traffic is flowing.
func (n *Network) SetObserver(o Observer) { n.obs.Store(obsHolder{o}) }

// observer returns the installed observer, or nil.
func (n *Network) observer() Observer {
	h, _ := n.obs.Load().(obsHolder)
	return h.o
}

// New builds a Network from cfg.
func New(cfg Config) (*Network, error) {
	if cfg.Latency == nil {
		return nil, fmt.Errorf("simnet: Config.Latency is required")
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("simnet: LossRate %v out of [0,1)", cfg.LossRate)
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	n := &Network{
		cfg:    cfg,
		scale:  scale,
		clk:    vclock.Default(cfg.Clock),
		nodes:  make(map[Addr]Handler),
		down:   make(map[Region]bool),
		cut:    make(map[linkKey]bool),
		factor: make(map[linkKey]float64),
		calib:  rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5eed)),
	}
	for i := range n.shards {
		n.shards[i].rng = rand.New(rand.NewSource(cfg.Seed + int64(i)))
	}
	n.lossBits.Store(math.Float64bits(cfg.LossRate))
	return n, nil
}

// Clock returns the network's time source.
func (n *Network) Clock() vclock.Clock { return n.clk }

// shardFor deterministically maps a sender to an RNG shard.
func (n *Network) shardFor(from Addr) *rngShard {
	h := fnv.New32a()
	h.Write([]byte(from.Region))
	h.Write([]byte{0})
	h.Write([]byte(from.Name))
	return &n.shards[h.Sum32()%sendShards]
}

// TimeScale returns the effective scale factor (always > 0).
func (n *Network) TimeScale() float64 { return n.scale }

// Register installs h as the handler for addr, replacing any previous one.
func (n *Network) Register(addr Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = h
}

// Deregister removes addr; in-flight messages to it are dropped on arrival.
func (n *Network) Deregister(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// SetRegionDown isolates (or restores) an entire region: messages to or
// from it are dropped.
func (n *Network) SetRegionDown(r Region, isDown bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if isDown {
		n.down[r] = true
	} else {
		delete(n.down, r)
	}
}

// SetLinkCut severs (or restores) the directed link from→to.
func (n *Network) SetLinkCut(from, to Region, isCut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := linkKey{from, to}
	if isCut {
		n.cut[k] = true
	} else {
		delete(n.cut, k)
	}
}

// SetLossRate changes the uniform message-loss rate at runtime (loss bursts
// in fault injection). The rate is clamped into [0,1]; unlike Config.LossRate
// a full 1.0 is allowed and blackholes every message.
func (n *Network) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.lossBits.Store(math.Float64bits(rate))
}

// LossRate returns the current loss rate.
func (n *Network) LossRate() float64 {
	return math.Float64frombits(n.lossBits.Load())
}

// SetLinkDelayFactor multiplies every sampled delay on the directed link
// from→to by factor (a latency spike). Factors <= 0 or == 1 clear the
// override. Intra-region "links" (from == to) are supported.
func (n *Network) SetLinkDelayFactor(from, to Region, factor float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := linkKey{from, to}
	if factor <= 0 || factor == 1 {
		delete(n.factor, k)
		return
	}
	n.factor[k] = factor
}

// LinkDelayFactor returns the current delay multiplier for from→to (1 when
// no spike is installed).
func (n *Network) LinkDelayFactor(from, to Region) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.factor[linkKey{from, to}]; ok {
		return f
	}
	return 1
}

// Send schedules payload for delivery from→to. It never blocks; messages to
// unknown, partitioned, or lossy destinations are silently dropped, exactly
// as a real datagram network would.
func (n *Network) Send(from, to Addr, payload any) {
	if n.closed.Load() {
		return
	}
	n.Sent.Add(1)
	obs := n.observer()

	n.mu.Lock()
	if n.down[from.Region] || n.down[to.Region] || n.cut[linkKey{from.Region, to.Region}] {
		n.mu.Unlock()
		n.drop(obs, from, to)
		return
	}
	factor, hasFactor := n.factor[linkKey{from.Region, to.Region}]
	n.mu.Unlock()

	// Loss and delay sampling run on a per-sender shard, off the global
	// lock, so concurrent senders don't serialize on one shared RNG.
	lossRate := n.LossRate()
	sh := n.shardFor(from)
	sh.mu.Lock()
	if lossRate > 0 && sh.rng.Float64() < lossRate {
		sh.mu.Unlock()
		n.drop(obs, from, to)
		return
	}
	delay := n.cfg.Latency.Link(from.Region, to.Region).Sample(sh.rng)
	sh.mu.Unlock()
	if hasFactor {
		delay = time.Duration(float64(delay) * factor)
	}

	scaled := time.Duration(float64(delay) * n.scale)
	if obs != nil {
		obs.MessageSent(from.Region, to.Region, scaled)
	}
	msg := Message{From: from, To: to, Payload: payload, SentAt: n.clk.Now()}
	n.pmu.Lock()
	n.pending++
	n.pmu.Unlock()
	n.clk.AfterFunc(scaled, func() {
		defer n.deliveryDone()
		obs := n.observer()
		if n.closed.Load() {
			n.drop(obs, from, to)
			return
		}
		n.mu.Lock()
		h := n.nodes[to]
		blocked := n.down[to.Region]
		n.mu.Unlock()
		if h == nil || blocked {
			n.drop(obs, from, to)
			return
		}
		n.Delivered.Add(1)
		if obs != nil {
			obs.MessageDelivered(from.Region, to.Region)
		}
		h(msg)
	})
}

// deliveryDone retires one in-flight message and wakes Quiesce waiters when
// the network drains.
func (n *Network) deliveryDone() {
	n.pmu.Lock()
	n.pending--
	var ev *vclock.Event
	if n.pending == 0 && n.drained != nil {
		ev = n.drained
		n.drained = nil
	}
	n.pmu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// drop accounts one dropped message.
func (n *Network) drop(obs Observer, from, to Addr) {
	n.Dropped.Add(1)
	if obs != nil {
		obs.MessageDropped(from.Region, to.Region)
	}
}

// SampleDelay draws one unscaled one-way delay for the pair, for calibration
// probes and the predictor's bootstrap. It consumes a dedicated RNG stream
// so probing never perturbs the send path's deterministic sampling.
func (n *Network) SampleDelay(from, to Region) time.Duration {
	n.calibMu.Lock()
	defer n.calibMu.Unlock()
	return n.cfg.Latency.Link(from, to).Sample(n.calib)
}

// Close stops future sends and suppresses undelivered messages. Quiesce
// waiters are released: once closed, every in-flight message is doomed to
// be dropped on arrival, so there is nothing worth waiting for.
func (n *Network) Close() {
	n.closed.Store(true)
	n.pmu.Lock()
	ev := n.drained
	n.drained = nil
	n.pmu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// Quiesce waits until no messages are in flight or the timeout elapses,
// and reports whether the network drained. Waiting is event-driven — the
// last delivery (or Close) wakes us — so draining burns no CPU and has no
// polling-latency floor; under a virtual clock it costs no wall time at all.
func (n *Network) Quiesce(timeout time.Duration) bool {
	deadline := n.clk.Now().Add(timeout)
	for {
		if n.closed.Load() {
			return true
		}
		n.pmu.Lock()
		if n.pending == 0 {
			n.pmu.Unlock()
			return true
		}
		if n.drained == nil {
			n.drained = n.clk.NewEvent()
		}
		ev := n.drained
		n.pmu.Unlock()
		remaining := n.clk.Until(deadline)
		if remaining <= 0 {
			return false
		}
		if !ev.WaitTimeout(remaining) {
			return n.closed.Load()
		}
	}
}
