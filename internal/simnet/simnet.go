// Package simnet emulates a multi-region wide-area network inside one
// process. Nodes register a handler under an Addr (region + name); messages
// sent between nodes are delivered asynchronously after a delay sampled from
// a per-region-pair latency distribution, optionally scaled down by a global
// time-scale factor so WAN-shaped experiments complete in milliseconds.
//
// The emulator supports message loss, region partitions, and per-link
// overrides, which the failure-injection tests use. All delivery happens on
// timer goroutines, so handlers must be internally synchronized and must not
// block for long.
//
// The send path is engineered for concurrent coordinators: routing state
// (handlers, partitions, link overrides) lives in an immutable snapshot
// swapped atomically on mutation, so Send takes no lock at all for routing;
// loss/delay sampling runs on per-sender RNG shards; and per-message
// delivery bookkeeping is pooled so a send allocates no timer closure.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/latency"
	"planet/internal/vclock"
)

// Region names a datacenter/availability region.
type Region string

// Addr identifies a node on the network.
type Addr struct {
	Region Region
	Name   string
}

// String implements fmt.Stringer.
func (a Addr) String() string { return string(a.Region) + "/" + a.Name }

// Message is one delivered payload.
type Message struct {
	From, To Addr
	Payload  any
	// SentAt is the send timestamp on the network's clock (wall time under
	// the real clock, virtual time under a virtual one).
	SentAt time.Time
}

// Handler consumes delivered messages. Handlers run on shared timer
// goroutines: they must synchronize internally and return quickly.
type Handler func(Message)

// Observer receives per-message instrumentation callbacks. Implementations
// must be safe for concurrent use and fast: they run inline on the send
// path and on delivery timer goroutines.
type Observer interface {
	// MessageSent fires for every accepted send with the sampled
	// (scaled) one-way delay.
	MessageSent(from, to Region, delay time.Duration)
	// MessageDelivered fires when a handler receives the message.
	MessageDelivered(from, to Region)
	// MessageDropped fires for losses, partitions, unknown destinations,
	// and shutdown drops.
	MessageDropped(from, to Region)
}

// linkKey orders a directed region pair.
type linkKey struct{ from, to Region }

// Matrix holds one-way delay distributions per directed region pair, plus a
// default intra-region distribution. It is immutable after construction.
type Matrix struct {
	links map[linkKey]latency.Dist
	local latency.Dist
}

// NewMatrix returns an empty matrix whose intra-region delay is local.
// A nil local defaults to a 250µs-median log-normal.
func NewMatrix(local latency.Dist) *Matrix {
	if local == nil {
		local = latency.NewLogNormal(100*time.Microsecond, 150*time.Microsecond, 0.3)
	}
	return &Matrix{links: make(map[linkKey]latency.Dist), local: local}
}

// SetLink installs dist as the one-way delay for from→to and to→from.
func (m *Matrix) SetLink(from, to Region, dist latency.Dist) {
	m.links[linkKey{from, to}] = dist
	m.links[linkKey{to, from}] = dist
}

// Link returns the one-way distribution for from→to (the local distribution
// when the regions are equal or the pair is unknown).
func (m *Matrix) Link(from, to Region) latency.Dist {
	if from == to {
		return m.local
	}
	if d, ok := m.links[linkKey{from, to}]; ok {
		return d
	}
	return m.local
}

// Regions returns the distinct regions mentioned by the matrix links, in
// sorted order. Sorting matters: the map-iteration order underneath is
// randomized per process, and callers feed this list into seeded topology
// construction, where a run-dependent order would silently break same-seed
// reproducibility.
func (m *Matrix) Regions() []Region {
	seen := make(map[Region]bool)
	var out []Region
	for k := range m.links {
		if !seen[k.from] {
			seen[k.from] = true
			out = append(out, k.from)
		}
		if !seen[k.to] {
			seen[k.to] = true
			out = append(out, k.to)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Config parameterizes a Network.
type Config struct {
	// Latency supplies per-pair one-way delays. Required.
	Latency *Matrix
	// TimeScale multiplies sampled delays before they are realized; 0.01
	// runs a 150ms link as 1.5ms. Values <= 0 default to 1 (real time).
	TimeScale float64
	// Seed makes delay sampling and loss deterministic.
	Seed int64
	// LossRate drops messages uniformly at random, in [0,1).
	LossRate float64
	// Clock drives delivery timers, send timestamps, and Quiesce. Nil means
	// the real system clock; a *vclock.Virtual runs the network at CPU
	// speed with deterministic delivery order.
	Clock vclock.Clock
	// Clocks optionally maps each region to its own scheduler partition
	// (a vclock.World partition). When set, a send samples its delay on the
	// sender region's serialized stream, stamps SentAt with the sender
	// partition's time, and ships delivery through the deterministic
	// cross-partition merge layer, so regions simulate concurrently on real
	// cores with a bit-identical delivery order. Regions absent from the map
	// fall back to Clock.
	Clocks map[Region]vclock.Clock
}

// rngShard is one independently-seeded sampling stream. Each region owns a
// shard: all sends from a region are serialized on that region's scheduler
// partition, so the shard's draw order — and thus every sampled delay — is
// deterministic even when partitions run concurrently on real cores.
// Unknown regions share a fallback shard.
type rngShard struct {
	mu  sync.Mutex
	rng *rand.Rand
	_   [40]byte // pad to a cache line so shards don't false-share
}

// topology is an immutable snapshot of the network's routing state. Send
// and delivery read it with one atomic load; mutations (register, partition,
// link overrides) clone-and-swap under the writer lock. Nil maps are never
// stored, so readers can index without checks.
type topology struct {
	nodes  map[Addr]Handler
	down   map[Region]bool
	cut    map[linkKey]bool
	factor map[linkKey]float64 // per-link delay multipliers (latency spikes)
}

// clone deep-copies the snapshot for a mutation.
func (t *topology) clone() *topology {
	c := &topology{
		nodes:  make(map[Addr]Handler, len(t.nodes)+1),
		down:   make(map[Region]bool, len(t.down)+1),
		cut:    make(map[linkKey]bool, len(t.cut)+1),
		factor: make(map[linkKey]float64, len(t.factor)+1),
	}
	for k, v := range t.nodes {
		c.nodes[k] = v
	}
	for k, v := range t.down {
		c.down[k] = v
	}
	for k, v := range t.cut {
		c.cut[k] = v
	}
	for k, v := range t.factor {
		c.factor[k] = v
	}
	return c
}

// Network is the in-process WAN. Safe for concurrent use.
type Network struct {
	cfg    Config
	scale  float64
	clk    vclock.Clock
	mu     sync.Mutex                // serializes topology mutations only
	topo   atomic.Pointer[topology]  // current routing snapshot
	closed atomic.Bool

	lossBits atomic.Uint64 // current loss rate as float64 bits (lock-free read on send)

	shards   map[Region]*rngShard // per-region delay/loss sampling streams
	defShard *rngShard            // fallback for regions missing from the matrix
	calibMu  sync.Mutex
	calib    *rand.Rand // dedicated stream for SampleDelay probes

	pending atomic.Int64  // messages sampled but not yet delivered
	pmu     sync.Mutex    // guards drained
	drained *vclock.Event // fired when pending hits zero; nil unless a Quiesce waits

	obs atomic.Value // Observer, set via SetObserver

	// Stats.
	Sent      atomic.Uint64
	Delivered atomic.Uint64
	Dropped   atomic.Uint64
}

// obsHolder wraps an Observer so atomic.Value always stores one concrete
// type (nil included).
type obsHolder struct{ o Observer }

// SetObserver installs o to receive per-message instrumentation; a nil o
// clears it. Safe to call while traffic is flowing.
func (n *Network) SetObserver(o Observer) { n.obs.Store(obsHolder{o}) }

// observer returns the installed observer, or nil.
func (n *Network) observer() Observer {
	h, _ := n.obs.Load().(obsHolder)
	return h.o
}

// New builds a Network from cfg.
func New(cfg Config) (*Network, error) {
	if cfg.Latency == nil {
		return nil, fmt.Errorf("simnet: Config.Latency is required")
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("simnet: LossRate %v out of [0,1)", cfg.LossRate)
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	n := &Network{
		cfg:   cfg,
		scale: scale,
		clk:   vclock.Default(cfg.Clock),
		calib: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5eed)),
	}
	n.topo.Store(&topology{
		nodes:  make(map[Addr]Handler),
		down:   make(map[Region]bool),
		cut:    make(map[linkKey]bool),
		factor: make(map[linkKey]float64),
	})
	// Shard seeds are assigned by sorted region index, so the per-region
	// sampling streams are identical across processes and GOMAXPROCS values.
	n.shards = make(map[Region]*rngShard)
	regions := cfg.Latency.Regions()
	for i, r := range regions {
		n.shards[r] = &rngShard{rng: rand.New(rand.NewSource(cfg.Seed + int64(i)))}
	}
	n.defShard = &rngShard{rng: rand.New(rand.NewSource(cfg.Seed + int64(len(regions))))}
	n.lossBits.Store(math.Float64bits(cfg.LossRate))
	return n, nil
}

// Clock returns the network's time source.
func (n *Network) Clock() vclock.Clock { return n.clk }

// ClockFor returns the scheduler partition owning region r (the shared clock
// when no per-region partitions are configured).
func (n *Network) ClockFor(r Region) vclock.Clock {
	if c, ok := n.cfg.Clocks[r]; ok {
		return c
	}
	return n.clk
}

// mutate clones the routing snapshot, applies f, and swaps it in. Mutations
// are rare (startup registration, fault injection); sends never wait on them.
func (n *Network) mutate(f func(t *topology)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.topo.Load().clone()
	f(t)
	n.topo.Store(t)
}

// shardFor maps a sender to its region's RNG shard.
func (n *Network) shardFor(from Addr) *rngShard {
	if sh, ok := n.shards[from.Region]; ok {
		return sh
	}
	return n.defShard
}

// TimeScale returns the effective scale factor (always > 0).
func (n *Network) TimeScale() float64 { return n.scale }

// Register installs h as the handler for addr, replacing any previous one.
func (n *Network) Register(addr Addr, h Handler) {
	n.mutate(func(t *topology) { t.nodes[addr] = h })
}

// Deregister removes addr; in-flight messages to it are dropped on arrival.
func (n *Network) Deregister(addr Addr) {
	n.mutate(func(t *topology) { delete(t.nodes, addr) })
}

// SetRegionDown isolates (or restores) an entire region: messages to or
// from it are dropped.
func (n *Network) SetRegionDown(r Region, isDown bool) {
	n.mutate(func(t *topology) {
		if isDown {
			t.down[r] = true
		} else {
			delete(t.down, r)
		}
	})
}

// SetLinkCut severs (or restores) the directed link from→to.
func (n *Network) SetLinkCut(from, to Region, isCut bool) {
	n.mutate(func(t *topology) {
		k := linkKey{from, to}
		if isCut {
			t.cut[k] = true
		} else {
			delete(t.cut, k)
		}
	})
}

// SetLossRate changes the uniform message-loss rate at runtime (loss bursts
// in fault injection). The rate is clamped into [0,1]; unlike Config.LossRate
// a full 1.0 is allowed and blackholes every message.
func (n *Network) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.lossBits.Store(math.Float64bits(rate))
}

// LossRate returns the current loss rate.
func (n *Network) LossRate() float64 {
	return math.Float64frombits(n.lossBits.Load())
}

// SetLinkDelayFactor multiplies every sampled delay on the directed link
// from→to by factor (a latency spike). Factors <= 0 or == 1 clear the
// override. Intra-region "links" (from == to) are supported.
func (n *Network) SetLinkDelayFactor(from, to Region, factor float64) {
	n.mutate(func(t *topology) {
		k := linkKey{from, to}
		if factor <= 0 || factor == 1 {
			delete(t.factor, k)
			return
		}
		t.factor[k] = factor
	})
}

// LinkDelayFactor returns the current delay multiplier for from→to (1 when
// no spike is installed).
func (n *Network) LinkDelayFactor(from, to Region) float64 {
	if f, ok := n.topo.Load().factor[linkKey{from, to}]; ok {
		return f
	}
	return 1
}

// delivery is the pooled bookkeeping for one in-flight message (or payload
// batch). The timer callback fn is a method value bound once per pooled
// object, so a steady-state send schedules a timer without allocating a
// closure, a message box, or a batch slice.
type delivery struct {
	n     *Network
	msg   Message
	batch []any // non-nil for SendBatch deliveries; msg.Payload is then unset
	fn    func()
}

// deliveryPool recycles delivery records across sends (and across networks:
// each Get rebinds n). New is installed in init to break the
// pool→run→pool initialization cycle.
var deliveryPool sync.Pool

func init() {
	deliveryPool.New = func() any {
		d := &delivery{}
		d.fn = d.run
		return d
	}
}

// run delivers the message, returns the record to the pool, and retires the
// in-flight count. It copies every field to locals before Put so a recycled
// record can be reused while the handler is still executing.
func (d *delivery) run() {
	n, msg, batch := d.n, d.msg, d.batch
	d.n, d.msg, d.batch = nil, Message{}, nil
	deliveryPool.Put(d)

	defer n.deliveryDone()
	obs := n.observer()
	if n.closed.Load() {
		n.drop(obs, msg.From, msg.To)
		return
	}
	t := n.topo.Load()
	h := t.nodes[msg.To]
	if h == nil || t.down[msg.To.Region] {
		n.drop(obs, msg.From, msg.To)
		return
	}
	n.Delivered.Add(1)
	if obs != nil {
		obs.MessageDelivered(msg.From.Region, msg.To.Region)
	}
	if batch == nil {
		h(msg)
		return
	}
	for _, p := range batch {
		msg.Payload = p
		h(msg)
	}
}

// Send schedules payload for delivery from→to. It never blocks; messages to
// unknown, partitioned, or lossy destinations are silently dropped, exactly
// as a real datagram network would.
func (n *Network) Send(from, to Addr, payload any) {
	n.send(from, to, payload, nil)
}

// SendBatch schedules payloads for delivery from→to as one wire message:
// one loss draw, one sampled delay, one scheduled event, with the payloads
// handed to the destination handler back to back in order. Protocol layers
// use it to coalesce same-instant fan-in (a replica's vote batch, a
// master's result batch) instead of paying per-payload timer overhead.
// An empty batch is a no-op.
func (n *Network) SendBatch(from, to Addr, payloads []any) {
	if len(payloads) == 0 {
		return
	}
	n.send(from, to, nil, payloads)
}

// send is the shared path behind Send and SendBatch: exactly one of payload
// and batch is set.
func (n *Network) send(from, to Addr, payload any, batch []any) {
	if n.closed.Load() {
		return
	}
	n.Sent.Add(1)
	obs := n.observer()

	t := n.topo.Load()
	if t.down[from.Region] || t.down[to.Region] || t.cut[linkKey{from.Region, to.Region}] {
		n.drop(obs, from, to)
		return
	}
	factor, hasFactor := t.factor[linkKey{from.Region, to.Region}]

	// Loss and delay sampling run on a per-sender shard, off any global
	// lock, so concurrent senders don't serialize on one shared RNG.
	lossRate := n.LossRate()
	sh := n.shardFor(from)
	sh.mu.Lock()
	if lossRate > 0 && sh.rng.Float64() < lossRate {
		sh.mu.Unlock()
		n.drop(obs, from, to)
		return
	}
	delay := n.cfg.Latency.Link(from.Region, to.Region).Sample(sh.rng)
	sh.mu.Unlock()
	if hasFactor {
		delay = time.Duration(float64(delay) * factor)
	}

	scaled := time.Duration(float64(delay) * n.scale)
	if obs != nil {
		obs.MessageSent(from.Region, to.Region, scaled)
	}
	n.pending.Add(1)
	srcClk := n.ClockFor(from.Region)
	d := deliveryPool.Get().(*delivery)
	d.n = n
	d.msg = Message{From: from, To: to, Payload: payload, SentAt: srcClk.Now()}
	d.batch = batch
	// Under per-region partitions this ships through the deterministic merge
	// layer (clamping the delay up to the link's lookahead floor if a delay
	// override pushed it below); otherwise it degenerates to a local timer.
	vclock.ScheduleCross(srcClk, n.ClockFor(to.Region), scaled, d.fn)
}

// deliveryDone retires one in-flight message and wakes Quiesce waiters when
// the network drains.
func (n *Network) deliveryDone() {
	if n.pending.Add(-1) != 0 {
		return
	}
	n.pmu.Lock()
	ev := n.drained
	n.drained = nil
	n.pmu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// drop accounts one dropped message.
func (n *Network) drop(obs Observer, from, to Addr) {
	n.Dropped.Add(1)
	if obs != nil {
		obs.MessageDropped(from.Region, to.Region)
	}
}

// SampleDelay draws one unscaled one-way delay for the pair, for calibration
// probes and the predictor's bootstrap. It consumes a dedicated RNG stream
// so probing never perturbs the send path's deterministic sampling.
func (n *Network) SampleDelay(from, to Region) time.Duration {
	n.calibMu.Lock()
	defer n.calibMu.Unlock()
	return n.cfg.Latency.Link(from, to).Sample(n.calib)
}

// Close stops future sends and suppresses undelivered messages. Quiesce
// waiters are released: once closed, every in-flight message is doomed to
// be dropped on arrival, so there is nothing worth waiting for.
func (n *Network) Close() {
	n.closed.Store(true)
	n.pmu.Lock()
	ev := n.drained
	n.drained = nil
	n.pmu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// Quiesce waits until no messages are in flight or the timeout elapses,
// and reports whether the network drained. Waiting is event-driven — the
// last delivery (or Close) wakes us — so draining burns no CPU and has no
// polling-latency floor; under a virtual clock it costs no wall time at all.
func (n *Network) Quiesce(timeout time.Duration) bool {
	deadline := n.clk.Now().Add(timeout)
	for {
		if n.closed.Load() {
			return true
		}
		if n.pending.Load() == 0 {
			return true
		}
		n.pmu.Lock()
		if n.drained == nil {
			n.drained = n.clk.NewEvent()
		}
		ev := n.drained
		n.pmu.Unlock()
		// Re-check after publishing the event: the last delivery may have
		// drained the network between the count check and the registration,
		// in which case no one will fire ev.
		if n.pending.Load() == 0 {
			return true
		}
		remaining := n.clk.Until(deadline)
		if remaining <= 0 {
			return false
		}
		if !ev.WaitTimeout(remaining) {
			return n.closed.Load()
		}
	}
}
