package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planet/internal/latency"
)

const (
	east Region = "east"
	west Region = "west"
)

// newTestNet builds a two-region network with a 10ms one-way link,
// compressed 10x (so 1ms real time).
func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	if cfg.Latency == nil {
		m := NewMatrix(latency.Constant(100 * time.Microsecond))
		m.SetLink(east, west, latency.Constant(10*time.Millisecond))
		cfg.Latency = m
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.1
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestDelivery(t *testing.T) {
	n := newTestNet(t, Config{})
	got := make(chan Message, 1)
	dst := Addr{west, "node"}
	src := Addr{east, "node"}
	n.Register(dst, func(m Message) { got <- m })

	start := time.Now()
	n.Send(src, dst, "hello")
	select {
	case m := <-got:
		if m.Payload != "hello" || m.From != src || m.To != dst {
			t.Errorf("message %+v", m)
		}
		// 10ms scaled by 0.1 = 1ms.
		if e := time.Since(start); e < 500*time.Microsecond {
			t.Errorf("delivered too fast: %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
	if n.Delivered.Load() != 1 || n.Sent.Load() != 1 {
		t.Errorf("stats sent=%d delivered=%d", n.Sent.Load(), n.Delivered.Load())
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := newTestNet(t, Config{})
	n.Send(Addr{east, "a"}, Addr{west, "ghost"}, 1)
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if n.Dropped.Load() != 1 {
		t.Errorf("dropped=%d, want 1", n.Dropped.Load())
	}
}

func TestRegionPartition(t *testing.T) {
	n := newTestNet(t, Config{})
	var delivered atomic.Int32
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) { delivered.Add(1) })

	n.SetRegionDown(west, true)
	n.Send(Addr{east, "a"}, dst, 1)
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != 0 {
		t.Error("message crossed a partition")
	}

	n.SetRegionDown(west, false)
	n.Send(Addr{east, "a"}, dst, 2)
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != 1 {
		t.Error("message lost after partition healed")
	}
}

func TestPartitionDropsInFlight(t *testing.T) {
	// A message already in flight when the destination region goes down
	// must not be delivered (the region is unreachable at arrival time).
	n := newTestNet(t, Config{})
	var delivered atomic.Int32
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) { delivered.Add(1) })

	n.Send(Addr{east, "a"}, dst, 1) // 1ms scaled flight time
	n.SetRegionDown(west, true)
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != 0 {
		t.Error("in-flight message delivered into a downed region")
	}
}

func TestLinkCutIsDirected(t *testing.T) {
	n := newTestNet(t, Config{})
	var eastGot, westGot atomic.Int32
	n.Register(Addr{west, "n"}, func(Message) { westGot.Add(1) })
	n.Register(Addr{east, "n"}, func(Message) { eastGot.Add(1) })

	n.SetLinkCut(east, west, true)
	n.Send(Addr{east, "n"}, Addr{west, "n"}, 1) // cut
	n.Send(Addr{west, "n"}, Addr{east, "n"}, 2) // open direction
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if westGot.Load() != 0 {
		t.Error("cut direction delivered")
	}
	if eastGot.Load() != 1 {
		t.Error("open direction dropped")
	}
}

func TestLossRate(t *testing.T) {
	n := newTestNet(t, Config{LossRate: 0.5, Seed: 42})
	var delivered atomic.Int32
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) { delivered.Add(1) })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(Addr{east, "a"}, dst, i)
	}
	if !n.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	got := int(delivered.Load())
	if got < total*4/10 || got > total*6/10 {
		t.Errorf("delivered %d of %d with 50%% loss", got, total)
	}
}

func TestLossRateValidation(t *testing.T) {
	m := NewMatrix(nil)
	if _, err := New(Config{Latency: m, LossRate: 1.0}); err == nil {
		t.Error("LossRate=1 accepted")
	}
	if _, err := New(Config{Latency: m, LossRate: -0.1}); err == nil {
		t.Error("negative LossRate accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("nil matrix accepted")
	}
}

func TestCloseSuppressesDelivery(t *testing.T) {
	n := newTestNet(t, Config{})
	var delivered atomic.Int32
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) { delivered.Add(1) })
	n.Send(Addr{east, "a"}, dst, 1)
	n.Close()
	n.Quiesce(2 * time.Second)
	if delivered.Load() != 0 {
		t.Error("delivery after Close")
	}
	n.Send(Addr{east, "a"}, dst, 2) // no-op
	if n.Sent.Load() != 1 {
		t.Error("send after Close counted")
	}
}

func TestDeregister(t *testing.T) {
	n := newTestNet(t, Config{})
	var delivered atomic.Int32
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) { delivered.Add(1) })
	n.Deregister(dst)
	n.Send(Addr{east, "a"}, dst, 1)
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != 0 {
		t.Error("delivered to deregistered node")
	}
}

func TestIntraRegionUsesLocalDist(t *testing.T) {
	n := newTestNet(t, Config{})
	d := n.SampleDelay(east, east)
	if d != 100*time.Microsecond {
		t.Errorf("local delay=%v, want 100µs", d)
	}
	if d := n.SampleDelay(east, west); d != 10*time.Millisecond {
		t.Errorf("link delay=%v, want 10ms", d)
	}
}

func TestMatrixRegions(t *testing.T) {
	m := NewMatrix(nil)
	// Insert in non-sorted order: Regions must return a sorted list
	// regardless of insertion or map iteration order.
	m.SetLink("c", "b", latency.Constant(time.Millisecond))
	m.SetLink("b", "a", latency.Constant(time.Millisecond))
	rs := m.Regions()
	if len(rs) != 3 {
		t.Errorf("regions=%v", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1] >= rs[i] {
			t.Fatalf("Regions not sorted: %v", rs)
		}
	}
	// Unknown pairs fall back to the local distribution.
	if m.Link("a", "zzz") == nil {
		t.Error("unknown link returned nil")
	}
}

func TestConcurrentSendStress(t *testing.T) {
	n := newTestNet(t, Config{TimeScale: 0.01})
	var delivered atomic.Int64
	for _, r := range []Region{east, west} {
		n.Register(Addr{r, "n"}, func(Message) { delivered.Add(1) })
	}
	var wg sync.WaitGroup
	const perG, gs = 500, 8
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				from, to := east, west
				if (g+i)%2 == 0 {
					from, to = west, east
				}
				n.Send(Addr{from, "n"}, Addr{to, "n"}, i)
			}
		}(g)
	}
	wg.Wait()
	if !n.Quiesce(10 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != perG*gs {
		t.Errorf("delivered=%d, want %d", delivered.Load(), perG*gs)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Region: "r1", Name: "replica"}
	if a.String() != "r1/replica" {
		t.Errorf("Addr.String()=%q", a.String())
	}
}

// spyObserver records MessageSent delays for delay-factor assertions.
type spyObserver struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (o *spyObserver) MessageSent(_, _ Region, delay time.Duration) {
	o.mu.Lock()
	o.delays = append(o.delays, delay)
	o.mu.Unlock()
}
func (o *spyObserver) MessageDelivered(_, _ Region) {}
func (o *spyObserver) MessageDropped(_, _ Region)   {}

func TestSetLossRateRuntime(t *testing.T) {
	n := newTestNet(t, Config{Seed: 7})
	var delivered atomic.Int32
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) { delivered.Add(1) })

	// A full blackhole: nothing arrives.
	n.SetLossRate(1)
	if got := n.LossRate(); got != 1 {
		t.Fatalf("LossRate()=%v after SetLossRate(1)", got)
	}
	for i := 0; i < 20; i++ {
		n.Send(Addr{east, "a"}, dst, i)
	}
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != 0 {
		t.Fatalf("%d messages survived a loss rate of 1", delivered.Load())
	}

	// Healing restores delivery.
	n.SetLossRate(0)
	n.Send(Addr{east, "a"}, dst, 99)
	if !n.Quiesce(2 * time.Second) {
		t.Fatal("no quiesce")
	}
	if delivered.Load() != 1 {
		t.Errorf("delivered %d after healing the loss burst, want 1", delivered.Load())
	}

	// Out-of-range values are clamped, not rejected.
	n.SetLossRate(-3)
	if got := n.LossRate(); got != 0 {
		t.Errorf("LossRate()=%v after SetLossRate(-3)", got)
	}
	n.SetLossRate(17)
	if got := n.LossRate(); got != 1 {
		t.Errorf("LossRate()=%v after SetLossRate(17)", got)
	}
}

func TestLinkDelayFactor(t *testing.T) {
	// Constant 10ms east→west link compressed 10x: 1ms scaled.
	n := newTestNet(t, Config{})
	obs := &spyObserver{}
	n.SetObserver(obs)
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) {})

	n.Send(Addr{east, "a"}, dst, "base")
	n.SetLinkDelayFactor(east, west, 5)
	if got := n.LinkDelayFactor(east, west); got != 5 {
		t.Fatalf("LinkDelayFactor=%v, want 5", got)
	}
	// The spike is directional: the reverse link is unaffected.
	if got := n.LinkDelayFactor(west, east); got != 1 {
		t.Fatalf("reverse LinkDelayFactor=%v, want 1", got)
	}
	n.Send(Addr{east, "a"}, dst, "spiked")
	n.SetLinkDelayFactor(east, west, 1) // clears
	n.Send(Addr{east, "a"}, dst, "healed")
	if !n.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.delays) != 3 {
		t.Fatalf("observed %d sends, want 3", len(obs.delays))
	}
	base, spiked, healed := obs.delays[0], obs.delays[1], obs.delays[2]
	if spiked != 5*base {
		t.Errorf("spiked delay %v, want 5x base %v", spiked, base)
	}
	if healed != base {
		t.Errorf("healed delay %v, want base %v", healed, base)
	}
}

func TestQuiesceReturnsEarlyOnClose(t *testing.T) {
	// An uncompressed 500ms link keeps a message in flight long enough to
	// observe Quiesce's behaviour while pending > 0.
	m := NewMatrix(latency.Constant(time.Millisecond))
	m.SetLink(east, west, latency.Constant(500*time.Millisecond))
	n, err := New(Config{Latency: m, TimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	dst := Addr{west, "node"}
	n.Register(dst, func(Message) {})
	n.Send(Addr{east, "a"}, dst, 1)
	n.Close()
	start := time.Now()
	if !n.Quiesce(10 * time.Second) {
		t.Fatal("Quiesce on a closed network reported failure")
	}
	if waited := time.Since(start); waited > 250*time.Millisecond {
		t.Errorf("Quiesce on a closed network waited %v for doomed messages", waited)
	}
}
