package txn

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewIDUniqueAndConcurrent(t *testing.T) {
	const goroutines, per = 16, 1000
	var mu sync.Mutex
	seen := make(map[ID]bool, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, per)
			for i := range local {
				local[i] = NewID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate ID %v", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*per {
		t.Errorf("got %d unique ids, want %d", len(seen), goroutines*per)
	}
}

func TestStageTerminal(t *testing.T) {
	terminal := map[Stage]bool{
		StageInit:        false,
		StageRejected:    true,
		StageAccepted:    false,
		StageInFlight:    false,
		StageSpeculative: false,
		StageCommitted:   true,
		StageAborted:     true,
	}
	for s, want := range terminal {
		if s.Terminal() != want {
			t.Errorf("%v.Terminal()=%v, want %v", s, s.Terminal(), want)
		}
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageInit; s <= StageAborted; s++ {
		if strings.HasPrefix(s.String(), "stage(") {
			t.Errorf("stage %d has no name", s)
		}
	}
	if !strings.HasPrefix(Stage(200).String(), "stage(") {
		t.Error("unknown stage should fall back to numeric form")
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpSet.String() != "set" || OpAdd.String() != "add" {
		t.Error("op kind names wrong")
	}
	if !strings.HasPrefix(OpKind(9).String(), "opkind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}

func TestOpString(t *testing.T) {
	set := Op{Kind: OpSet, Key: "k", Value: []byte("abc"), ReadVersion: 3}
	if got := set.String(); !strings.Contains(got, "k@v3") {
		t.Errorf("set string %q", got)
	}
	add := Op{Kind: OpAdd, Key: "k", Delta: -2}
	if got := add.String(); !strings.Contains(got, "-2") {
		t.Errorf("add string %q", got)
	}
}

func TestOutcomeString(t *testing.T) {
	base := time.Now()
	cases := []struct {
		o    Outcome
		want string
	}{
		{Outcome{ID: 1, Committed: true, Submitted: base, Decided: base.Add(time.Second)}, "committed"},
		{Outcome{ID: 2, Err: errors.New("boom"), Submitted: base, Decided: base.Add(time.Second)}, "aborted"},
		{Outcome{ID: 3, Rejected: true, Err: errors.New("no")}, "rejected"},
	}
	for _, tc := range cases {
		if got := tc.o.String(); !strings.Contains(got, tc.want) {
			t.Errorf("%+v String()=%q, want substring %q", tc.o, got, tc.want)
		}
	}
}

func TestOutcomeDuration(t *testing.T) {
	base := time.Now()
	o := Outcome{Submitted: base, Decided: base.Add(250 * time.Millisecond)}
	if o.Duration() != 250*time.Millisecond {
		t.Errorf("duration=%v", o.Duration())
	}
}

// Property: stage ordering respects the lifecycle (terminal stages are
// never "less" than in-flight stages in the numeric encoding used for
// monotonic advancement).
func TestStageOrderingProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		sa, sb := Stage(a%7), Stage(b%7)
		// Committed and Aborted are the maximal stages.
		if sa == StageCommitted || sa == StageAborted {
			return sb <= sa || sb == StageCommitted || sb == StageAborted
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseID(t *testing.T) {
	id := ID(42)
	got, err := ParseID(id.String())
	if err != nil || got != id {
		t.Errorf("ParseID(%q) = %v, %v", id.String(), got, err)
	}
	for _, bad := range []string{"", "42", "txn-", "txn-0", "txn-abc", "TXN-42", "txn--1"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}
