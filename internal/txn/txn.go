// Package txn defines the shared transaction vocabulary used across the
// PLANET stack: transaction identifiers, operations, stages, and outcomes.
//
// The types here are deliberately free of protocol or policy logic so that
// the commit protocol (internal/mdcc), the predictor (internal/predictor)
// and the programming model (internal/core) can exchange transaction state
// without depending on each other.
package txn

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ID uniquely identifies a transaction within a cluster run.
// IDs are ordered by issue time (within a single process), which the
// protocol uses only for tie-breaking and logging, never for correctness.
type ID uint64

var nextID atomic.Uint64

// NewID returns a process-unique transaction ID.
func NewID() ID { return ID(nextID.Add(1)) }

// IDSpace hands out transaction IDs from a private namespace. A partitioned
// deployment gives each region its own space: allocation order across
// regions then never leaks into the IDs themselves, so same-seed runs mint
// identical IDs no matter how scheduler partitions interleave in real time.
type IDSpace struct {
	base ID
	next atomic.Uint64
}

// idSpaceShift positions the namespace tag above the per-space counter,
// leaving ~7.2e16 IDs per space.
const idSpaceShift = 56

// NewIDSpace returns the id allocator for namespace n (n ≥ 0; n = -1 is the
// process-global space NewID uses).
func NewIDSpace(n int) *IDSpace {
	if n < 0 {
		return &IDSpace{}
	}
	return &IDSpace{base: ID(uint64(n+1) << idSpaceShift)}
}

// NewID returns the next ID in this space.
func (s *IDSpace) NewID() ID {
	if s == nil || s.base == 0 {
		return NewID()
	}
	return s.base + ID(s.next.Add(1))
}

// String implements fmt.Stringer.
func (id ID) String() string { return fmt.Sprintf("txn-%d", uint64(id)) }

// ParseID parses the String form ("txn-42") back into an ID.
func ParseID(s string) (ID, error) {
	num, ok := strings.CutPrefix(s, "txn-")
	if !ok {
		return 0, fmt.Errorf("txn: malformed id %q", s)
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("txn: malformed id %q", s)
	}
	return ID(n), nil
}

// OpKind distinguishes the write operations a transaction may buffer.
type OpKind uint8

const (
	// OpSet replaces the record value and requires the record version to
	// be unchanged since the transaction read it (physical write).
	OpSet OpKind = iota
	// OpAdd adds a signed delta to an integer record. Adds are
	// commutative: two concurrent adds to the same record may both
	// commit, provided the record's integrity bounds stay satisfied
	// (demarcation).
	OpAdd
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpSet:
		return "set"
	case OpAdd:
		return "add"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is a single buffered write belonging to a transaction.
type Op struct {
	Kind OpKind
	Key  string
	// Value is the new value for OpSet.
	Value []byte
	// Delta is the signed increment for OpAdd.
	Delta int64
	// ReadVersion is the record version observed when the transaction
	// read the key; OpSet options are accepted only if the record is
	// still at this version. Ignored for OpAdd.
	ReadVersion int64
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o.Kind {
	case OpAdd:
		return fmt.Sprintf("add(%s, %+d)", o.Key, o.Delta)
	default:
		return fmt.Sprintf("set(%s@v%d, %dB)", o.Key, o.ReadVersion, len(o.Value))
	}
}

// Stage enumerates the externally visible phases of a PLANET transaction.
// Stages only ever advance (monotonically), and every transaction ends in
// exactly one of the terminal stages.
type Stage uint8

const (
	// StageInit is the zero value: the transaction is being assembled by
	// the application and has not been submitted.
	StageInit Stage = iota
	// StageRejected means admission control refused the transaction
	// before any protocol work was done. Terminal.
	StageRejected
	// StageAccepted means the system has durably queued the transaction
	// and taken responsibility for driving it to a decision.
	StageAccepted
	// StageInFlight means commit processing has started: options are out
	// to the replicas and the commit likelihood is being updated.
	StageInFlight
	// StageSpeculative means the predicted commit likelihood crossed the
	// application's speculation threshold; the app may act as if the
	// transaction committed, with a guaranteed apology if it does not.
	StageSpeculative
	// StageCommitted is the successful terminal stage.
	StageCommitted
	// StageAborted is the unsuccessful terminal stage.
	StageAborted
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageInit:
		return "init"
	case StageRejected:
		return "rejected"
	case StageAccepted:
		return "accepted"
	case StageInFlight:
		return "in-flight"
	case StageSpeculative:
		return "speculative"
	case StageCommitted:
		return "committed"
	case StageAborted:
		return "aborted"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Terminal reports whether s is a final stage.
func (s Stage) Terminal() bool {
	return s == StageRejected || s == StageCommitted || s == StageAborted
}

// Outcome describes how a transaction finished.
type Outcome struct {
	ID        ID
	Committed bool
	// Rejected is true when the transaction never entered commit
	// processing because admission control refused it.
	Rejected bool
	// Err carries the abort or rejection reason, nil on commit.
	Err error
	// Submitted and Decided bracket the transaction's lifetime.
	Submitted time.Time
	Decided   time.Time
	// Speculated is true if the transaction reported a speculative
	// commit before its final decision.
	Speculated bool
}

// Duration returns the submit-to-decision latency.
func (o Outcome) Duration() time.Duration { return o.Decided.Sub(o.Submitted) }

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch {
	case o.Rejected:
		return fmt.Sprintf("%s rejected: %v", o.ID, o.Err)
	case o.Committed:
		return fmt.Sprintf("%s committed in %s", o.ID, o.Duration())
	default:
		return fmt.Sprintf("%s aborted in %s: %v", o.ID, o.Duration(), o.Err)
	}
}
