// Package realnet is the deployment transport: it carries the commit
// protocol's messages between planetd processes over real TCP, implementing
// the same Transport contract internal/simnet provides in-process.
//
// Robustness is the design center. Frames are length-prefixed and strictly
// validated — a truncated or corrupt frame closes the connection without
// panicking the receiver, and the sender reconnects. Outbound connections
// are managed per peer with jittered exponential backoff (the semantics of
// internal/core/retry.go), per-frame write deadlines, and a three-state
// health model (up/suspect/down) surfaced through PeerState and the
// OnPeerState callback so the layers above can shed speculation — and the
// coordinator can degrade straight to classic Paxos — when a fast-quorum
// peer is unreachable.
//
// The transport deliberately promises no more than simnet does: delivery is
// at-most-once, unordered across frames, and frames are dropped when a peer
// is down, cut, or its queue is full. The protocol is built on idempotence
// and retry, never on transport reliability.
package realnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/simnet"
	"planet/internal/vclock"
)

// Codec serializes protocol payloads. mdcc.WireCodec implements it; the
// interface lives here (structurally typed) so realnet stays independent of
// the protocol package.
type Codec interface {
	Append(dst []byte, m any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Config parameterizes a Transport.
type Config struct {
	// Listen is the TCP address to accept peer connections on, e.g.
	// "127.0.0.1:7101". Empty means outbound-only (tests).
	Listen string
	// Peers maps every REMOTE region to its transport address. The local
	// region must not appear: any destination region without an entry is
	// treated as local and delivered in-process.
	Peers map[simnet.Region]string
	// Codec encodes and decodes payloads. Required.
	Codec Codec
	// Clock is the time source handed to the protocol layers. Defaults to
	// vclock.System (a real deployment runs on real time).
	Clock vclock.Clock

	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write. Default 2s.
	WriteTimeout time.Duration
	// BackoffBase/BackoffMax shape reconnect backoff: base doubling per
	// consecutive failure to the cap, jittered by [0.5, 1.5). Defaults
	// 50ms / 2s — the internal/core/retry.go constants.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DownAfter is the consecutive-failure count at which a peer is
	// declared down. Default 3.
	DownAfter int
	// QueueDepth bounds each peer's outbound frame queue; overflow drops.
	// Default 1024.
	QueueDepth int
	// MaxFrame bounds one frame body in bytes, both directions. Default
	// 16 MiB.
	MaxFrame int
	// InboundDelay, when positive, delays every delivery (local and
	// remote) by that duration. Tests use it to widen protocol windows —
	// e.g. the gap between option-accept and decision — that loopback TCP
	// makes vanishingly small.
	InboundDelay time.Duration
	// Seed seeds reconnect jitter. Zero picks an arbitrary seed.
	Seed int64
	// OnPeerState, when non-nil, observes every peer health transition.
	// Called from transport goroutines; must not block.
	OnPeerState func(region simnet.Region, state PeerState)
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Stats counts transport activity (all fields atomic).
type Stats struct {
	Sent         atomic.Uint64 // frames written to a socket
	Delivered    atomic.Uint64 // payloads handed to a handler
	Dropped      atomic.Uint64 // payloads or frames discarded
	DecodeErrors atomic.Uint64 // corrupt frames (each closed a connection)
	Reconnects   atomic.Uint64 // successful re-dials after a drop
}

// StatsSnapshot is a plain-value copy of Stats for APIs and logs.
type StatsSnapshot struct {
	Sent         uint64 `json:"sent"`
	Delivered    uint64 `json:"delivered"`
	Dropped      uint64 `json:"dropped"`
	DecodeErrors uint64 `json:"decode_errors"`
	Reconnects   uint64 `json:"reconnects"`
}

// Transport speaks the commit protocol over TCP. It satisfies the same
// interface as simnet.Network (mdcc's Transport).
type Transport struct {
	cfg    Config
	clk    vclock.Clock
	lnAddr string // resolved listen address (meaningful with Listen ":0")

	mu       sync.Mutex
	ln       net.Listener
	lnDown   bool
	closed   bool
	handlers map[simnet.Addr]simnet.Handler
	peers    map[simnet.Region]*peer
	cut      map[simnet.Region]bool
	conns    map[net.Conn]struct{} // inbound connections

	done chan struct{}
	wg   sync.WaitGroup

	// Loopback deliveries run on a dedicated dispatcher goroutine so a
	// handler that sends to a co-located destination from inside a delivery
	// callback (the protocol does, with locks held) can never deadlock.
	lbMu      sync.Mutex
	lbCond    *sync.Cond
	lbQueue   []localDelivery
	lbClosed  bool
	pendingLB atomic.Int64

	stats Stats
}

// localDelivery is one queued loopback send (a batch delivers its payloads
// back to back, mirroring simnet).
type localDelivery struct {
	msg   simnet.Message
	batch []any // nil for single-payload sends
}

// New starts a Transport: it binds the listener (when configured), launches
// the accept loop, the loopback dispatcher, and one writer per peer.
func New(cfg Config) (*Transport, error) {
	if cfg.Codec == nil {
		return nil, fmt.Errorf("realnet: Config.Codec is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.System
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 16 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	t := &Transport{
		cfg:      cfg,
		clk:      cfg.Clock,
		handlers: make(map[simnet.Addr]simnet.Handler),
		peers:    make(map[simnet.Region]*peer, len(cfg.Peers)),
		cut:      make(map[simnet.Region]bool),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	t.lbCond = sync.NewCond(&t.lbMu)
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("realnet: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.lnAddr = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(ln)
	}
	t.wg.Add(1)
	go t.dispatcher()
	seed := cfg.Seed
	for region, addr := range cfg.Peers {
		seed++
		p := &peer{
			t:      t,
			region: region,
			addr:   addr,
			queue:  make(chan []byte, cfg.QueueDepth),
			rng:    rand.New(rand.NewSource(seed)),
		}
		t.peers[region] = p
		t.wg.Add(1)
		go p.run()
	}
	return t, nil
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Clock returns the transport's time source (mdcc.Transport contract).
func (t *Transport) Clock() vclock.Clock { return t.clk }

// ClockFor returns the transport's single time source for any region: a
// realnet process hosts one region, so there is nothing to partition.
func (t *Transport) ClockFor(simnet.Region) vclock.Clock { return t.clk }

// ListenAddr returns the resolved listen address ("" when outbound-only).
func (t *Transport) ListenAddr() string { return t.lnAddr }

// StatsSnapshot returns a point-in-time copy of the activity counters.
func (t *Transport) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		Sent:         t.stats.Sent.Load(),
		Delivered:    t.stats.Delivered.Load(),
		Dropped:      t.stats.Dropped.Load(),
		DecodeErrors: t.stats.DecodeErrors.Load(),
		Reconnects:   t.stats.Reconnects.Load(),
	}
}

// Register installs the handler for addr, replacing any previous one.
func (t *Transport) Register(addr simnet.Addr, h simnet.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[addr] = h
}

// Deregister removes addr; frames already in flight to it are dropped.
func (t *Transport) Deregister(addr simnet.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, addr)
}

func (t *Transport) handlerFor(addr simnet.Addr) simnet.Handler {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handlers[addr]
}

// Send schedules one payload for delivery (mdcc.Transport contract).
func (t *Transport) Send(from, to simnet.Addr, payload any) {
	t.route(from, to, payload, nil)
}

// SendBatch schedules payloads as one frame, delivered back to back.
func (t *Transport) SendBatch(from, to simnet.Addr, payloads []any) {
	if len(payloads) == 0 {
		return
	}
	t.route(from, to, nil, payloads)
}

// route sends either a single payload (batch == nil) or a batch: local
// destinations go through the loopback queue, remote ones are framed and
// handed to the peer's writer. Both paths return without blocking.
func (t *Transport) route(from, to simnet.Addr, payload any, batch []any) {
	p, remote := t.peerFor(to.Region)
	if !remote {
		t.enqueueLocal(localDelivery{
			msg:   simnet.Message{From: from, To: to, Payload: payload, SentAt: t.clk.Now()},
			batch: batch,
		})
		return
	}
	if t.isCut(to.Region) {
		t.stats.Dropped.Add(1)
		return
	}
	payloads := batch
	if payloads == nil {
		payloads = []any{payload}
	}
	frame, err := t.encodeFrame(from, to, payloads)
	if err != nil {
		t.logf("%v", err)
		t.stats.Dropped.Add(1)
		return
	}
	p.enqueue(frame)
}

func (t *Transport) peerFor(region simnet.Region) (*peer, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[region]
	return p, ok
}

// enqueueLocal appends a loopback delivery for the dispatcher goroutine,
// honoring InboundDelay.
func (t *Transport) enqueueLocal(d localDelivery) {
	if delay := t.cfg.InboundDelay; delay > 0 {
		t.pendingLB.Add(1)
		time.AfterFunc(delay, func() { t.pushLocal(d, false) })
		return
	}
	t.pushLocal(d, true)
}

func (t *Transport) pushLocal(d localDelivery, count bool) {
	if count {
		t.pendingLB.Add(1)
	}
	t.lbMu.Lock()
	if t.lbClosed {
		t.lbMu.Unlock()
		t.pendingLB.Add(-1)
		t.stats.Dropped.Add(1)
		return
	}
	t.lbQueue = append(t.lbQueue, d)
	t.lbMu.Unlock()
	t.lbCond.Signal()
}

// dispatcher drains the loopback queue, invoking handlers outside every
// transport lock.
func (t *Transport) dispatcher() {
	defer t.wg.Done()
	for {
		t.lbMu.Lock()
		for len(t.lbQueue) == 0 && !t.lbClosed {
			t.lbCond.Wait()
		}
		if len(t.lbQueue) == 0 {
			t.lbMu.Unlock()
			return
		}
		d := t.lbQueue[0]
		t.lbQueue[0] = localDelivery{}
		t.lbQueue = t.lbQueue[1:]
		t.lbMu.Unlock()
		t.deliver(d.msg, d.batch)
		t.pendingLB.Add(-1)
	}
}

// deliver hands one message (or batch) to its handler.
func (t *Transport) deliver(msg simnet.Message, batch []any) {
	h := t.handlerFor(msg.To)
	if h == nil {
		if batch == nil {
			t.stats.Dropped.Add(1)
		} else {
			t.stats.Dropped.Add(uint64(len(batch)))
		}
		return
	}
	if batch == nil {
		t.stats.Delivered.Add(1)
		h(msg)
		return
	}
	for _, p := range batch {
		msg.Payload = p
		t.stats.Delivered.Add(1)
		h(msg)
	}
}

// acceptLoop admits inbound peer connections.
func (t *Transport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown or DropListener)
		}
		t.mu.Lock()
		if t.closed || t.lnDown {
			t.mu.Unlock()
			c.Close()
			continue
		}
		t.conns[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop consumes frames from one inbound connection. Any framing or
// decode error closes the connection — the stream position is unknowable
// after a bad frame, and the sender will reconnect — without ever panicking
// the receiver.
func (t *Transport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.conns, c)
		t.mu.Unlock()
	}()
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			return // EOF or severed connection: normal churn
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > uint32(t.cfg.MaxFrame) {
			t.stats.DecodeErrors.Add(1)
			t.logf("realnet: inbound frame length %d out of range; closing connection", n)
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		from, to, payloads, err := t.decodeFrame(body)
		if err != nil {
			t.stats.DecodeErrors.Add(1)
			t.logf("realnet: %v; closing connection", err)
			return
		}
		if t.isCut(from.Region) {
			t.stats.Dropped.Add(uint64(len(payloads)))
			continue
		}
		if delay := t.cfg.InboundDelay; delay > 0 {
			time.Sleep(delay)
		}
		// Dispatch directly on the read goroutine: a handler's own local
		// sends go through the loopback queue, its remote sends through
		// peer queues, so no re-entrancy is possible.
		msg := simnet.Message{From: from, To: to, SentAt: t.clk.Now()}
		if len(payloads) == 1 {
			msg.Payload = payloads[0]
			t.deliver(msg, nil)
		} else {
			t.deliver(msg, payloads)
		}
	}
}

// --- fault injection and health ---

// CutPeer severs (or heals) the logical link to a region: outbound frames
// are dropped at the source, inbound frames from it are dropped at
// delivery, and any live outbound connection is closed. Tests use it for
// asymmetric partitions; real partitions manifest the same way (writes
// fail, health degrades).
func (t *Transport) CutPeer(region simnet.Region, cut bool) {
	t.mu.Lock()
	t.cut[region] = cut
	p := t.peers[region]
	t.mu.Unlock()
	if cut && p != nil {
		p.closeConn()
	}
}

func (t *Transport) isCut(region simnet.Region) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cut[region]
}

// DropListener stops accepting inbound connections and severs the existing
// ones, simulating a one-way network failure toward this node.
func (t *Transport) DropListener() {
	t.mu.Lock()
	t.lnDown = true
	ln := t.ln
	t.ln = nil
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// RestoreListener re-binds the original listen address after DropListener.
func (t *Transport) RestoreListener() error {
	t.mu.Lock()
	if t.closed || !t.lnDown {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	ln, err := net.Listen("tcp", t.lnAddr)
	if err != nil {
		return fmt.Errorf("realnet: re-listen %s: %w", t.lnAddr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return nil
	}
	t.ln = ln
	t.lnDown = false
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return nil
}

// PeerState reports the health of one region's link. The local region (and
// any region without a configured peer) is always PeerUp.
func (t *Transport) PeerState(region simnet.Region) PeerState {
	p, ok := t.peerFor(region)
	if !ok {
		return PeerUp
	}
	return p.stateVal()
}

// PeerStates returns every configured peer's current health.
func (t *Transport) PeerStates() map[simnet.Region]PeerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[simnet.Region]PeerState, len(t.peers))
	for r, p := range t.peers {
		out[r] = p.stateVal()
	}
	return out
}

// Unreachable reports whether region is currently beyond reach: its link is
// administratively cut or its peer health is down. The coordinator consults
// it (CoordinatorConfig.Unreachable) to degrade fast-path submissions to
// classic Paxos instead of timing them out.
func (t *Transport) Unreachable(region simnet.Region) bool {
	t.mu.Lock()
	cut := t.cut[region]
	p := t.peers[region]
	t.mu.Unlock()
	if cut {
		return true
	}
	return p != nil && p.stateVal() == PeerDown
}

// Quiesce waits until the loopback queue drains (remote traffic cannot be
// quiesced — the wire has no global view), up to timeout. Matches
// simnet.Network's signature so Cluster can call either.
func (t *Transport) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if t.pendingLB.Load() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close shuts the transport down: listener, inbound connections, peer
// writers, and the loopback dispatcher. Idempotent.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.ln
	t.ln = nil
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()

	close(t.done)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		p.closeConn()
	}
	t.lbMu.Lock()
	t.lbClosed = true
	t.lbMu.Unlock()
	t.lbCond.Broadcast()
	t.wg.Wait()
}
