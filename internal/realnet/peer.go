package realnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/simnet"
)

// PeerState is the transport's opinion of one remote peer's reachability.
type PeerState int32

const (
	// PeerUp: the last write (or dial) succeeded.
	PeerUp PeerState = iota
	// PeerSuspect: at least one consecutive failure; the link may be
	// blipping or the peer restarting.
	PeerSuspect
	// PeerDown: failures reached Config.DownAfter. Outbound frames are
	// dropped (the protocol is built on loss) and the writer falls back to
	// periodic redial probes until the peer answers again.
	PeerDown
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerUp:
		return "up"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// peer manages the outbound connection to one remote region: a bounded
// frame queue, a writer goroutine that dials lazily, and reconnect with
// jittered exponential backoff mirroring internal/core/retry.go (base
// doubling per attempt to a cap, jitter factor in [0.5, 1.5)).
type peer struct {
	t      *Transport
	region simnet.Region // remote region
	addr   string        // TCP address

	queue chan []byte // encoded frames awaiting write
	state atomic.Int32

	// connMu guards conn so CutPeer/Close can sever a live connection from
	// outside the writer goroutine.
	connMu sync.Mutex
	conn   net.Conn

	// Writer-goroutine-local reconnect bookkeeping.
	fails     int
	connected bool // a dial has succeeded at least once
	rng       *rand.Rand
}

func (p *peer) stateVal() PeerState { return PeerState(p.state.Load()) }

// setState publishes a state transition and notifies the health callback.
func (p *peer) setState(s PeerState) {
	old := PeerState(p.state.Swap(int32(s)))
	if old == s {
		return
	}
	p.t.logf("realnet: peer %s (%s) %s -> %s", p.region, p.addr, old, s)
	if cb := p.t.cfg.OnPeerState; cb != nil {
		cb(p.region, s)
	}
}

// enqueue hands a frame to the writer without ever blocking the sender: a
// full queue (peer slower than the workload, or down with frames piling up)
// drops the frame, exactly as a lossy WAN would.
func (p *peer) enqueue(frame []byte) {
	select {
	case p.queue <- frame:
	default:
		p.t.stats.Dropped.Add(1)
	}
}

// run is the writer loop: pull a frame, write it, retrying with backoff
// through transient failures; while the peer is down, probe periodically so
// health recovers even when no traffic is flowing.
func (p *peer) run() {
	defer p.t.wg.Done()
	for {
		var frame []byte
		if p.stateVal() == PeerUp {
			select {
			case frame = <-p.queue:
			case <-p.t.done:
				return
			}
		} else {
			probe := time.NewTimer(p.t.cfg.BackoffMax)
			select {
			case frame = <-p.queue:
				probe.Stop()
			case <-probe.C:
				// Idle redial probe: no frame to carry, just a health check.
				if !p.t.isCut(p.region) && p.currentConn() == nil {
					p.dial()
				}
				continue
			case <-p.t.done:
				probe.Stop()
				return
			}
		}
		p.write(frame)
	}
}

// write delivers one frame, dialing and retrying with jittered exponential
// backoff. A frame is abandoned (dropped, counted) when the peer reaches
// PeerDown or is administratively cut; the queue is drained along with it so
// a long outage doesn't replay stale protocol traffic on reconnect.
func (p *peer) write(frame []byte) {
	for attempt := 0; ; attempt++ {
		select {
		case <-p.t.done:
			return
		default:
		}
		if p.t.isCut(p.region) {
			p.t.stats.Dropped.Add(1)
			return
		}
		conn := p.currentConn()
		if conn == nil {
			if conn = p.dial(); conn == nil {
				if p.stateVal() == PeerDown {
					p.abandon(frame)
					return
				}
				if !p.sleepBackoff(attempt) {
					return
				}
				continue
			}
		}
		conn.SetWriteDeadline(time.Now().Add(p.t.cfg.WriteTimeout))
		_, err := conn.Write(frame)
		if err == nil {
			p.noteSuccess()
			p.t.stats.Sent.Add(1)
			return
		}
		p.t.logf("realnet: write to %s: %v", p.region, err)
		p.closeConn()
		p.noteFailure()
		if p.stateVal() == PeerDown {
			p.abandon(frame)
			return
		}
		if !p.sleepBackoff(attempt) {
			return
		}
	}
}

// abandon drops the current frame and everything queued behind it.
func (p *peer) abandon(frame []byte) {
	p.t.stats.Dropped.Add(1)
	for {
		select {
		case <-p.queue:
			p.t.stats.Dropped.Add(1)
		default:
			return
		}
	}
}

// dial attempts a connection; success resets the failure streak.
func (p *peer) dial() net.Conn {
	c, err := net.DialTimeout("tcp", p.addr, p.t.cfg.DialTimeout)
	if err != nil {
		p.t.logf("realnet: dial %s (%s): %v", p.region, p.addr, err)
		p.noteFailure()
		return nil
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p.connMu.Lock()
	p.conn = c
	p.connMu.Unlock()
	if p.connected {
		p.t.stats.Reconnects.Add(1)
	}
	p.connected = true
	p.noteSuccess()
	return c
}

func (p *peer) currentConn() net.Conn {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	return p.conn
}

// closeConn severs the live connection (writer, CutPeer, and Close use it).
func (p *peer) closeConn() {
	p.connMu.Lock()
	c := p.conn
	p.conn = nil
	p.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *peer) noteSuccess() {
	p.fails = 0
	p.setState(PeerUp)
}

func (p *peer) noteFailure() {
	p.fails++
	if p.fails >= p.t.cfg.DownAfter {
		p.setState(PeerDown)
	} else {
		p.setState(PeerSuspect)
	}
}

// sleepBackoff waits the jittered exponential delay for the attempt-th
// consecutive failure (mirrors internal/core/retry.go: base doubling to the
// cap, jitter factor in [0.5, 1.5)). Returns false when the transport shut
// down mid-sleep.
func (p *peer) sleepBackoff(attempt int) bool {
	d := p.t.cfg.BackoffBase
	for i := 0; i < attempt && d < p.t.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > p.t.cfg.BackoffMax {
		d = p.t.cfg.BackoffMax
	}
	d = time.Duration(float64(d) * (0.5 + p.rng.Float64()))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-p.t.done:
		return false
	}
}
