package realnet

import (
	"encoding/binary"
	"fmt"

	"planet/internal/simnet"
)

// Wire framing: every TCP segment boundary is invisible to the protocol, so
// messages travel in self-delimiting frames:
//
//	u32 (big endian)  body length
//	body:
//	  addr   from     (uvarint-prefixed region, uvarint-prefixed name)
//	  addr   to
//	  uvarint count   number of payloads
//	  count × (uvarint length, codec-encoded payload)
//
// One frame corresponds to one Transport.Send or SendBatch call, preserving
// simnet's batching semantics: the payloads of one frame are handed to the
// destination handler back to back, in order. Any parse failure — truncated
// body, over-limit length, codec error, trailing bytes — condemns the whole
// connection: framing state is unrecoverable once desynced, and reconnect is
// cheap (see readLoop).

// frameHeaderLen is the byte length of the frame length prefix.
const frameHeaderLen = 4

// maxAddrString bounds region and name lengths inside a frame.
const maxAddrString = 1 << 12

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendAddr(dst []byte, a simnet.Addr) []byte {
	dst = appendString(dst, string(a.Region))
	return appendString(dst, a.Name)
}

// encodeFrame renders one send (from → to, one or more payloads) as a
// length-prefixed frame ready to write to a socket.
func (t *Transport) encodeFrame(from, to simnet.Addr, payloads []any) ([]byte, error) {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+64)
	buf = appendAddr(buf, from)
	buf = appendAddr(buf, to)
	buf = binary.AppendUvarint(buf, uint64(len(payloads)))
	for _, p := range payloads {
		body, err := t.cfg.Codec.Append(nil, p)
		if err != nil {
			return nil, fmt.Errorf("realnet: encode payload: %w", err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(body)))
		buf = append(buf, body...)
	}
	body := len(buf) - frameHeaderLen
	if body > t.cfg.MaxFrame {
		return nil, fmt.Errorf("realnet: frame body %d exceeds MaxFrame %d", body, t.cfg.MaxFrame)
	}
	binary.BigEndian.PutUint32(buf[:frameHeaderLen], uint32(body))
	return buf, nil
}

// frameReader is an error-latching cursor over one frame body.
type frameReader struct {
	data []byte
	off  int
	err  error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("realnet: frame: "+format, args...)
	}
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxAddrString {
		r.fail("address string length %d exceeds %d", n, maxAddrString)
		return ""
	}
	if uint64(len(r.data)-r.off) < n {
		r.fail("truncated string at byte %d", r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *frameReader) addr() simnet.Addr {
	var a simnet.Addr
	a.Region = simnet.Region(r.str())
	a.Name = r.str()
	return a
}

// decodeFrame parses one frame body into its envelope and payloads.
func (t *Transport) decodeFrame(body []byte) (from, to simnet.Addr, payloads []any, err error) {
	r := &frameReader{data: body}
	from = r.addr()
	to = r.addr()
	count := r.uvarint()
	if r.err == nil && count > uint64(len(body)-r.off) {
		r.fail("payload count %d exceeds remaining %d bytes", count, len(body)-r.off)
	}
	if r.err != nil {
		return from, to, nil, r.err
	}
	payloads = make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		n := r.uvarint()
		if r.err != nil {
			return from, to, nil, r.err
		}
		if uint64(len(body)-r.off) < n {
			return from, to, nil, fmt.Errorf("realnet: frame: truncated payload %d", i)
		}
		p, derr := t.cfg.Codec.Decode(body[r.off : r.off+int(n)])
		if derr != nil {
			return from, to, nil, fmt.Errorf("realnet: frame: payload %d: %w", i, derr)
		}
		r.off += int(n)
		payloads = append(payloads, p)
	}
	if r.off != len(body) {
		return from, to, nil, fmt.Errorf("realnet: frame: %d trailing bytes", len(body)-r.off)
	}
	return from, to, payloads, nil
}
