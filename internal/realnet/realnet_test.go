package realnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"planet/internal/simnet"
)

// testCodec encodes string payloads (tag 's' + bytes). Anything else errors,
// and decoding an empty buffer or unknown tag errors — enough structure to
// exercise framing, corruption handling, and reconnects without dragging the
// protocol package in.
type testCodec struct{}

func (testCodec) Append(dst []byte, m any) ([]byte, error) {
	s, ok := m.(string)
	if !ok {
		return dst, fmt.Errorf("testCodec: cannot encode %T", m)
	}
	dst = append(dst, 's')
	return append(dst, s...), nil
}

func (testCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 || data[0] != 's' {
		return nil, fmt.Errorf("testCodec: bad payload")
	}
	return string(data[1:]), nil
}

// collector is a handler that records messages and signals arrivals.
type collector struct {
	mu   sync.Mutex
	msgs []simnet.Message
	ch   chan simnet.Message
}

func newCollector() *collector {
	return &collector{ch: make(chan simnet.Message, 128)}
}

func (c *collector) handle(m simnet.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- m
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) []simnet.Message {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		if got >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]simnet.Message(nil), c.msgs...)
		}
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages (have %d)", n, got)
		}
	}
}

// fastCfg returns a config with short timeouts so failure tests stay quick.
func fastCfg(listen string, peers map[simnet.Region]string) Config {
	return Config{
		Listen:       listen,
		Peers:        peers,
		Codec:        testCodec{},
		DialTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		DownAfter:    2,
		Seed:         1,
	}
}

func newPair(t *testing.T) (a, b *Transport) {
	t.Helper()
	// Bind both listeners first so each side can point at the other.
	a, err := New(fastCfg("127.0.0.1:0", nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err = New(fastCfg("127.0.0.1:0", map[simnet.Region]string{"a": a.ListenAddr()}))
	if err != nil {
		t.Fatal(err)
	}
	// a learns b's resolved address via a fresh transport config — instead,
	// rebuild a with the peer map now that b's address is known.
	a.Close()
	a2, err := New(fastCfg(a.ListenAddr(), map[simnet.Region]string{"b": b.ListenAddr()}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close(); b.Close() })
	return a2, b
}

func TestRealnetLocalDelivery(t *testing.T) {
	tr, err := New(fastCfg("", nil))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	col := newCollector()
	to := simnet.Addr{Region: "local", Name: "replica"}
	tr.Register(to, col.handle)
	from := simnet.Addr{Region: "local", Name: "coord"}
	tr.Send(from, to, "hello")
	tr.SendBatch(from, to, []any{"b1", "b2", "b3"})
	msgs := col.wait(t, 4, 2*time.Second)
	if msgs[0].Payload != "hello" || msgs[1].Payload != "b1" ||
		msgs[2].Payload != "b2" || msgs[3].Payload != "b3" {
		t.Fatalf("wrong payloads/order: %+v", msgs)
	}
	if msgs[0].From != from || msgs[0].To != to {
		t.Fatalf("wrong envelope: %+v", msgs[0])
	}
}

// TestRealnetHandlerMaySend asserts the contract handlers rely on: sending
// to a co-located address from inside a delivery callback cannot deadlock.
func TestRealnetHandlerMaySend(t *testing.T) {
	tr, err := New(fastCfg("", nil))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a := simnet.Addr{Region: "local", Name: "a"}
	b := simnet.Addr{Region: "local", Name: "b"}
	col := newCollector()
	tr.Register(a, func(m simnet.Message) {
		// Echo every ping back to b from inside the callback.
		tr.Send(a, b, "pong:"+m.Payload.(string))
	})
	tr.Register(b, col.handle)
	for i := 0; i < 10; i++ {
		tr.Send(b, a, fmt.Sprintf("ping%d", i))
	}
	msgs := col.wait(t, 10, 2*time.Second)
	if msgs[0].Payload != "pong:ping0" {
		t.Fatalf("unexpected first reply %v", msgs[0].Payload)
	}
}

func TestRealnetRemoteRoundTrip(t *testing.T) {
	a, b := newPair(t)
	colB := newCollector()
	addrA := simnet.Addr{Region: "a", Name: "coord"}
	addrB := simnet.Addr{Region: "b", Name: "replica"}
	b.Register(addrB, colB.handle)

	a.Send(addrA, addrB, "over-tcp")
	a.SendBatch(addrA, addrB, []any{"x", "y"})
	msgs := colB.wait(t, 3, 5*time.Second)
	if msgs[0].Payload != "over-tcp" || msgs[0].From != addrA || msgs[0].To != addrB {
		t.Fatalf("bad first message: %+v", msgs[0])
	}
	if msgs[1].Payload != "x" || msgs[2].Payload != "y" {
		t.Fatalf("batch order broken: %+v", msgs[1:])
	}

	// And the reverse direction.
	colA := newCollector()
	a.Register(addrA, colA.handle)
	b.Send(addrB, addrA, "reply")
	got := colA.wait(t, 1, 5*time.Second)
	if got[0].Payload != "reply" {
		t.Fatalf("bad reply: %+v", got[0])
	}
}

// TestRealnetReconnect kills the remote transport, watches health degrade to
// down, restarts it on the same port, and requires the link to heal via the
// idle redial probe — with traffic flowing again and Reconnects counted.
func TestRealnetReconnect(t *testing.T) {
	a, b := newPair(t)
	addrA := simnet.Addr{Region: "a", Name: "coord"}
	addrB := simnet.Addr{Region: "b", Name: "replica"}
	col := newCollector()
	b.Register(addrB, col.handle)
	a.Send(addrA, addrB, "warmup")
	col.wait(t, 1, 5*time.Second)

	bAddr := b.ListenAddr()
	b.Close()
	// Push sends until the peer is declared down (writes fail, DownAfter=2).
	deadline := time.Now().Add(5 * time.Second)
	for a.PeerState("b") != PeerDown {
		if time.Now().After(deadline) {
			t.Fatalf("peer b never went down (state %v)", a.PeerState("b"))
		}
		a.Send(addrA, addrB, "probe")
		time.Sleep(10 * time.Millisecond)
	}
	if !a.Unreachable("b") {
		t.Fatal("down peer should be Unreachable")
	}

	// Resurrect b on the same port.
	b2, err := New(fastCfg(bAddr, map[simnet.Region]string{"a": a.ListenAddr()}))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	col2 := newCollector()
	b2.Register(addrB, col2.handle)

	// The idle probe must re-dial and restore health without any send.
	deadline = time.Now().Add(5 * time.Second)
	for a.PeerState("b") != PeerUp {
		if time.Now().After(deadline) {
			t.Fatalf("peer b never recovered (state %v)", a.PeerState("b"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.Send(addrA, addrB, "after-restart")
	got := col2.wait(t, 1, 5*time.Second)
	if got[0].Payload != "after-restart" {
		t.Fatalf("bad post-restart payload: %+v", got[0])
	}
	if a.StatsSnapshot().Reconnects == 0 {
		t.Fatal("expected a recorded reconnect")
	}
}

func TestRealnetCutPeer(t *testing.T) {
	a, b := newPair(t)
	addrA := simnet.Addr{Region: "a", Name: "coord"}
	addrB := simnet.Addr{Region: "b", Name: "replica"}
	col := newCollector()
	b.Register(addrB, col.handle)
	a.Send(addrA, addrB, "before")
	col.wait(t, 1, 5*time.Second)

	a.CutPeer("b", true)
	if !a.Unreachable("b") {
		t.Fatal("cut peer should be Unreachable")
	}
	dropped := a.StatsSnapshot().Dropped
	a.Send(addrA, addrB, "lost")
	if got := a.StatsSnapshot().Dropped; got != dropped+1 {
		t.Fatalf("cut send should drop at source (dropped %d -> %d)", dropped, got)
	}

	a.CutPeer("b", false)
	a.Send(addrA, addrB, "after-heal")
	msgs := col.wait(t, 2, 5*time.Second)
	if msgs[1].Payload != "after-heal" {
		t.Fatalf("bad post-heal payload: %+v", msgs[1])
	}
}

// TestRealnetInboundCut drops frames from a cut region at delivery, the
// receiving half of a partition.
func TestRealnetInboundCut(t *testing.T) {
	a, b := newPair(t)
	addrA := simnet.Addr{Region: "a", Name: "coord"}
	addrB := simnet.Addr{Region: "b", Name: "replica"}
	col := newCollector()
	b.Register(addrB, col.handle)

	b.CutPeer("a", true)
	a.Send(addrA, addrB, "should-not-arrive")
	// Wait until the frame has been received (Dropped counts it) rather
	// than sleeping blind.
	deadline := time.Now().Add(5 * time.Second)
	for b.StatsSnapshot().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("inbound frame never accounted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.CutPeer("a", false)
	a.Send(addrA, addrB, "arrives")
	msgs := col.wait(t, 1, 5*time.Second)
	if msgs[0].Payload != "arrives" {
		t.Fatalf("got %+v", msgs[0])
	}
}

// TestRealnetCorruptFrame writes garbage to the listener and requires the
// transport to close that connection, count a decode error, and keep
// serving valid traffic — never panicking.
func TestRealnetCorruptFrame(t *testing.T) {
	a, b := newPair(t)
	addrA := simnet.Addr{Region: "a", Name: "coord"}
	addrB := simnet.Addr{Region: "b", Name: "replica"}
	col := newCollector()
	b.Register(addrB, col.handle)

	for _, garbage := range [][]byte{
		{0xff, 0xff, 0xff, 0xff},                         // absurd length
		{0x00, 0x00, 0x00, 0x00},                         // zero length
		{0x00, 0x00, 0x00, 0x03, 0x01, 0x02, 0x03},       // undecodable body
		{0x00, 0x00, 0x00, 0x05, 0x01, 'a', 0x01, 'b', 9}, // truncated payloads
	} {
		c, err := net.Dial("tcp", b.ListenAddr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(garbage); err != nil {
			t.Fatal(err)
		}
		// The transport must hang up on us.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatal("transport kept a corrupt connection open")
		}
		c.Close()
	}
	if b.StatsSnapshot().DecodeErrors == 0 {
		t.Fatal("decode errors not counted")
	}
	// Valid traffic still flows.
	a.Send(addrA, addrB, "still-alive")
	msgs := col.wait(t, 1, 5*time.Second)
	if msgs[0].Payload != "still-alive" {
		t.Fatalf("got %+v", msgs[0])
	}
}

func TestRealnetDropRestoreListener(t *testing.T) {
	a, b := newPair(t)
	addrA := simnet.Addr{Region: "a", Name: "coord"}
	addrB := simnet.Addr{Region: "b", Name: "replica"}
	col := newCollector()
	b.Register(addrB, col.handle)
	a.Send(addrA, addrB, "pre")
	col.wait(t, 1, 5*time.Second)

	b.DropListener()
	// Drive sends until a's view of b degrades (the severed conn plus
	// failed dials).
	deadline := time.Now().Add(5 * time.Second)
	for a.PeerState("b") == PeerUp {
		if time.Now().After(deadline) {
			t.Fatal("peer b stayed up after listener drop")
		}
		a.Send(addrA, addrB, "void")
		time.Sleep(10 * time.Millisecond)
	}

	if err := b.RestoreListener(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for a.PeerState("b") != PeerUp {
		if time.Now().After(deadline) {
			t.Fatalf("peer b never healed (state %v)", a.PeerState("b"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	before := len(col.wait(t, 1, time.Second))
	a.Send(addrA, addrB, "post")
	col.wait(t, before+1, 5*time.Second)
}

// TestRealnetPeerStateCallback observes up→suspect→down→up transitions.
func TestRealnetPeerStateCallback(t *testing.T) {
	var mu sync.Mutex
	var transitions []PeerState
	cfgB, err := New(fastCfg("127.0.0.1:0", nil))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg("", map[simnet.Region]string{"b": cfgB.ListenAddr()})
	cfg.OnPeerState = func(r simnet.Region, s PeerState) {
		mu.Lock()
		transitions = append(transitions, s)
		mu.Unlock()
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrA := simnet.Addr{Region: "a", Name: "x"}
	addrB := simnet.Addr{Region: "b", Name: "y"}

	bAddr := cfgB.ListenAddr()
	cfgB.Close()
	deadline := time.Now().Add(5 * time.Second)
	for a.PeerState("b") != PeerDown {
		if time.Now().After(deadline) {
			t.Fatal("never reached down")
		}
		a.Send(addrA, addrB, "x")
		time.Sleep(10 * time.Millisecond)
	}
	b2, err := New(fastCfg(bAddr, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	deadline = time.Now().Add(5 * time.Second)
	for a.PeerState("b") != PeerUp {
		if time.Now().After(deadline) {
			t.Fatal("never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	sawSuspectOrDown, sawUp := false, false
	for _, s := range transitions {
		if s == PeerSuspect || s == PeerDown {
			sawSuspectOrDown = true
		}
		if s == PeerUp && sawSuspectOrDown {
			sawUp = true
		}
	}
	if !sawSuspectOrDown || !sawUp {
		t.Fatalf("transitions missing degradation or recovery: %v", transitions)
	}
}

// TestRealnetCloseIdempotent double-closes and sends after close without
// panicking.
func TestRealnetCloseIdempotent(t *testing.T) {
	tr, err := New(fastCfg("127.0.0.1:0", nil))
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close()
	tr.Send(simnet.Addr{Region: "x"}, simnet.Addr{Region: "x"}, "late")
}
