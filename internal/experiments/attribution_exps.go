package experiments

import (
	"fmt"
	"strings"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/workload"
)

// E3AttributionFeed measures what the attribution engine buys the
// predictor. Under heavy WAN jitter and a tight commit budget, a predictor
// without stage statistics keeps estimating near-certain commits for
// uncontended transactions — it has no reason not to, since conflicts are
// absent and no application deadline engages the latency term — while the
// real commit rate sags under timeout aborts. The attribution feed closes
// exactly that gap: the learned option-RPC and vote-return EWMA/jitter let
// the timeliness term discount in-flight likelihood by the probability the
// remaining votes still fit the budget. Calibration error (MAE between
// predicted likelihood and realized outcome) is the scorecard.
func E3AttributionFeed(cfg Config) (Result, error) {
	// The same gentler compression E2 uses, for the same reason: this
	// experiment lives in the latency tail.
	if cfg.TimeScale < 0.1 {
		cfg.TimeScale = 0.1
	}
	regionSet := regions.Five().Regions
	topo, err := jitterTopology(regionSet, 0.8)
	if err != nil {
		return Result{}, err
	}

	variants := []struct {
		name string
		feed bool
	}{
		{"no-feed", false},
		{"attribution-feed", true},
	}
	var b strings.Builder
	out := make(map[string]float64)
	var dominant string
	for _, v := range variants {
		db, cleanup, err := openDB(cfg, cluster.Config{
			Topology: topo, Seed: cfg.Seed + 211,
			// Tight budget: the jittered quorum tail must actually blow it,
			// or timeliness has nothing to predict. ~p75 of the quorum wait
			// under this topology's jitter.
			CommitTimeout: 240 * time.Millisecond,
		}, planet.Config{
			Calibrate:       true,
			Trace:           true,
			AttributionFeed: v.feed,
		})
		if err != nil {
			return Result{}, err
		}
		// Uncontended uniform keys: every miss is a timeout, not a
		// conflict, so calibration error isolates the timeliness term.
		rep, err := workload.Closed{
			Options: workload.Options{
				DB:       db,
				Template: workload.Buy{Products: workload.Uniform{Prefix: "at-", N: 4000}},
				Seed:     cfg.Seed + 223,
			},
			Clients: 16, PerClient: cfg.pick(60, 15),
		}.Run()
		if err != nil {
			cleanup()
			return Result{}, err
		}
		mae := db.Calibration().MeanAbsoluteError()
		snap := db.Attribution().Snapshot()
		cleanup()

		key := strings.ReplaceAll(v.name, "-", "_")
		out[key+"_mae"] = mae
		out[key+"_commit_rate"] = rep.CommitRate()
		fmt.Fprintf(&b, "%-18s mae=%.4f commit_rate=%.3f\n", v.name, mae, rep.CommitRate())
		if v.feed {
			dominant = snap.Dominant
			fmt.Fprintf(&b, "\nper-stage attribution (feed variant):\n%s", snap.Table())
		}
	}
	if out["no_feed_mae"] > 0 {
		out["mae_improvement"] = 1 - out["attribution_feed_mae"]/out["no_feed_mae"]
	}
	fmt.Fprintf(&b, "\ncalibration MAE improvement with feed: %.1f%%\n",
		out["mae_improvement"]*100)
	if dominant != "" {
		fmt.Fprintf(&b, "dominant variance stage under jitter: %s\n", dominant)
	}
	return Result{Name: "E3 attribution feed vs predictor calibration (extension)",
		Text: b.String(), Metrics: out}, nil
}
