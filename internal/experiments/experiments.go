// Package experiments implements the reproduction of every table and figure
// in the (reconstructed) PLANET evaluation — see DESIGN.md for the index.
// Each experiment is a function from a Config to a Result; the benchmark
// harness (cmd/planetbench) and the repository-level benchmarks
// (bench_test.go) both call into this package so the numbers they report
// are produced by identical code.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
)

// Config parameterizes an experiment run.
type Config struct {
	// TimeScale compresses WAN time; 0 uses cluster.DefaultTimeScale.
	TimeScale float64
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks workload sizes for CI and go-test runs.
	Quick bool
	// RealTime opts out of the virtual clock: the emulator runs against
	// the wall clock as it did before discrete-event scheduling existed.
	// The default (false) runs every experiment in virtual time — the
	// whole evaluation executes at CPU speed and is deterministic for a
	// fixed Seed.
	RealTime bool
	// EarlyAbort turns on optimistic abort propagation at every
	// coordinator (see cluster.Config.EarlyAbort). Off by default so the
	// published tables keep measuring the paper's baseline protocol;
	// before/after comparisons flip it on the same experiment.
	EarlyAbort bool
}

// scale returns the effective time scale.
func (c Config) scale() float64 {
	if c.TimeScale <= 0 {
		return cluster.DefaultTimeScale
	}
	return c.TimeScale
}

// pick selects between the full and quick sizes.
func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// quiesceBudget bounds post-run network draining.
func (c Config) quiesceBudget() time.Duration { return 5 * time.Second }

// Result is one experiment's output: human-readable text plus headline
// metrics for programmatic checks.
type Result struct {
	Name    string
	Text    string
	Metrics map[string]float64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("=== %s ===\n%s", r.Name, r.Text)
}

// MetricKeys returns the metric names sorted (stable output).
func (r Result) MetricKeys() []string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatMetrics renders the metrics block.
func (r Result) FormatMetrics() string {
	var b strings.Builder
	for _, k := range r.MetricKeys() {
		fmt.Fprintf(&b, "%-40s %12.4f\n", k, r.Metrics[k])
	}
	return b.String()
}

// openDB builds a cluster and DB for an experiment, returning a cleanup.
func openDB(cfg Config, ccfg cluster.Config, pcfg planet.Config) (*planet.DB, func(), error) {
	if ccfg.Topology.Matrix == nil {
		ccfg.Topology = regions.Five()
	}
	ccfg.TimeScale = cfg.scale()
	ccfg.VirtualTime = !cfg.RealTime
	ccfg.EarlyAbort = cfg.EarlyAbort
	// Virtual-time experiments run on the partitioned parallel scheduler:
	// one partition per region, deterministic cross-partition merge. (The
	// chaos harness keeps the serialized scheduler — it mutates topology
	// mid-run, which only the global-order scheduler makes deterministic.)
	ccfg.ParallelTime = ccfg.VirtualTime
	if ccfg.Seed == 0 {
		ccfg.Seed = cfg.Seed + 1
	}
	if ccfg.CommitTimeout == 0 {
		// A generous commit timeout: at the default scale the production
		// 5s maps to only 100ms of real time, so a loaded machine could
		// turn scheduling delays into spurious timeout-aborts and distort
		// the measured commit rates.
		ccfg.CommitTimeout = 30 * time.Second
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, nil, err
	}
	pcfg.Cluster = c
	db, err := planet.Open(pcfg)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	cleanup := func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}
	return db, cleanup, nil
}

// wan converts a measured emulator duration to WAN time for reporting.
func wan(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) / scale).Round(time.Millisecond)
}

// ms returns the duration as float milliseconds of WAN time.
func ms(d time.Duration, scale float64) float64 {
	return float64(d) / scale / float64(time.Millisecond)
}

// Registry maps experiment IDs to runners, in the order DESIGN.md lists
// them. cmd/planetbench iterates this.
var Registry = []struct {
	ID    string
	Title string
	Run   func(Config) (Result, error)
}{
	{"t1", "Inter-DC RTT matrix (calibration)", T1RTTMatrix},
	{"f1", "Commit-latency CDF, classic vs fast path", F1CommitCDF},
	{"f2", "Likelihood calibration (predicted vs observed)", F2Calibration},
	{"f3", "Likelihood trajectory over transaction lifetime", F3Trajectory},
	{"f4", "Speculation threshold sweep", F4Speculation},
	{"f5", "Admission control: goodput vs offered load", F5AdmissionLoad},
	{"f6", "Commit rate vs contention (hotspot size)", F6Contention},
	{"f7", "Stage-latency table", F7Stages},
	{"f8", "Scaling with datacenter count", F8Scale},
	{"a1", "Ablation: fast vs classic under conflicts", A1FastVsClassic},
	{"a2", "Ablation: predictor terms and Monte-Carlo check", A2PredictorAblation},
	{"a3", "Ablation: commutative updates (demarcation)", A3Commutative},
	{"e1", "Extension: message-loss sweep", E1LossSweep},
	{"e2", "Extension: latency-jitter sweep", E2JitterSweep},
	{"e3", "Extension: attribution feed vs predictor calibration", E3AttributionFeed},
	{"f9", "Open-loop surge: static vs adaptive admission", F9OpenLoopSurge},
}

// Find returns the registered experiment with the given ID.
func Find(id string) (func(Config) (Result, error), bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
