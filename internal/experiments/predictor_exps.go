package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/predictor"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/vclock"
	"planet/internal/workload"
)

// F2Calibration reproduces the prediction-calibration figure: bucket the
// in-flight likelihood predictions and compare each bucket's mean prediction
// with the realized commit fraction. A good predictor sits on the diagonal.
func F2Calibration(cfg Config) (Result, error) {
	db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 21},
		planet.Config{Calibrate: true})
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	// Mixed contention: a handful of hot records generate genuine
	// conflicts; the cold mass commits. Warm-up traffic teaches the
	// predictor before the measured phase.
	tmpl := workload.ReadModifyWrite{
		Keys: workload.Hotspot{Prefix: "c-", HotKeys: 4, ColdKeys: 4000, HotProb: 0.35},
	}
	phases := []struct {
		name     string
		per      int
		skipSeed bool
	}{
		{"warm", cfg.pick(20, 8), false},
		{"measure", cfg.pick(60, 18), true},
	}
	for _, phase := range phases {
		_, err := workload.Closed{
			Options: workload.Options{
				DB: db, Template: tmpl, Seed: cfg.Seed + int64(len(phase.name)),
				SkipSeed: phase.skipSeed,
			},
			Clients: 20, PerClient: phase.per,
		}.Run()
		if err != nil {
			return Result{}, err
		}
	}

	calib := db.Calibration()
	mae := calib.MeanAbsoluteError()
	text := calib.String()
	return Result{
		Name:    "F2 likelihood calibration",
		Text:    text,
		Metrics: map[string]float64{"mean_abs_error": mae},
	}, nil
}

// F3Trajectory reproduces the likelihood-over-lifetime figure: the mean
// predicted commit likelihood after each received vote, separately for
// transactions that eventually committed and ones that aborted.
func F3Trajectory(cfg Config) (Result, error) {
	db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 23}, planet.Config{})
	if err != nil {
		return Result{}, err
	}
	defer cleanup()

	// Warm the predictor with background contention on hot keys.
	tmpl := workload.ReadModifyWrite{
		Keys: workload.Hotspot{Prefix: "t-", HotKeys: 2, ColdKeys: 2000, HotProb: 0.5},
	}
	tmpl.Seed(db.Cluster())
	if _, err := (workload.Closed{
		Options: workload.Options{DB: db, Template: tmpl, Seed: cfg.Seed, SkipSeed: true},
		Clients: 16, PerClient: cfg.pick(30, 10),
	}).Run(); err != nil {
		return Result{}, err
	}

	// Measured phase: sample (voteIndex, likelihood) trajectories.
	type agg struct {
		sum   []float64
		count []int
	}
	var mu sync.Mutex
	byOutcome := map[bool]*agg{true: {}, false: {}}
	observe := func(committed bool, traj []float64) {
		mu.Lock()
		defer mu.Unlock()
		a := byOutcome[committed]
		for i, v := range traj {
			if i >= len(a.sum) {
				a.sum = append(a.sum, 0)
				a.count = append(a.count, 0)
			}
			a.sum[i] += v
			a.count[i]++
		}
	}

	s, err := db.Session(regions.California)
	if err != nil {
		return Result{}, err
	}
	// Pace arrivals from the driving partition; each transaction's
	// build+commit+wait runs on the session's region partition (a child RNG
	// per arrival keeps key choices a pure function of the arrival index).
	rng := rand.New(rand.NewSource(cfg.Seed + 29))
	total := cfg.pick(300, 80)
	clk := db.Cluster().Clock()
	rclk := s.Clock()
	g := vclock.NewGroup(clk)
	var errMu sync.Mutex
	var runErr error
	for i := 0; i < total; i++ {
		childSeed := rng.Int63()
		g.GoOn(rclk, func() {
			crng := rand.New(rand.NewSource(childSeed))
			tx, err := tmpl.Build(s, crng)
			if err != nil {
				errMu.Lock()
				if runErr == nil {
					runErr = err
				}
				errMu.Unlock()
				return
			}
			var trajMu sync.Mutex
			var traj []float64
			h, err := tx.Commit(planet.CommitOptions{
				OnProgress: func(p planet.Progress) {
					trajMu.Lock()
					traj = append(traj, p.Likelihood)
					trajMu.Unlock()
				},
			})
			if err != nil {
				errMu.Lock()
				if runErr == nil {
					runErr = err
				}
				errMu.Unlock()
				return
			}
			o := h.Wait()
			trajMu.Lock()
			t := append([]float64(nil), traj...)
			trajMu.Unlock()
			observe(o.Committed, t)
		})
		// Pace arrivals so hot conflicts actually overlap.
		clk.Sleep(db.Cluster().ScaleDuration(5 * time.Millisecond))
	}
	g.Wait()
	if runErr != nil {
		return Result{}, runErr
	}

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-6s %-12s %-12s\n", "event", "committed", "aborted")
	maxLen := len(byOutcome[true].sum)
	if l := len(byOutcome[false].sum); l > maxLen {
		maxLen = l
	}
	mean := func(a *agg, i int) (float64, bool) {
		if i >= len(a.sum) || a.count[i] == 0 {
			return 0, false
		}
		return a.sum[i] / float64(a.count[i]), true
	}
	for i := 0; i < maxLen; i++ {
		cm, cok := mean(byOutcome[true], i)
		am, aok := mean(byOutcome[false], i)
		cs, as := "-", "-"
		if cok {
			cs = fmt.Sprintf("%.3f", cm)
		}
		if aok {
			as = fmt.Sprintf("%.3f", am)
		}
		fmt.Fprintf(&b, "%-6d %-12s %-12s\n", i+1, cs, as)
		if cok {
			out[fmt.Sprintf("committed_event_%02d", i+1)] = cm
		}
		if aok {
			out[fmt.Sprintf("aborted_event_%02d", i+1)] = am
		}
	}
	if last, ok := mean(byOutcome[true], maxLen-1); ok {
		out["committed_final"] = last
	}
	return Result{Name: "F3 likelihood trajectories", Text: b.String(), Metrics: out}, nil
}

// A2PredictorAblation compares the full likelihood model against a
// latency-only variant (no contention term) on a contended workload, and
// cross-checks the analytic model against Monte-Carlo simulation on
// synthetic in-flight states.
func A2PredictorAblation(cfg Config) (Result, error) {
	var b strings.Builder
	out := make(map[string]float64)

	variants := []struct {
		name             string
		disableConflicts bool
	}{
		{"full-model", false},
		{"latency-only", true},
	}
	for _, v := range variants {
		db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 37}, planet.Config{
			Calibrate:           true,
			DisableConflictTerm: v.disableConflicts,
		})
		if err != nil {
			return Result{}, err
		}
		tmpl := workload.ReadModifyWrite{
			Keys: workload.Hotspot{Prefix: "a-", HotKeys: 2, ColdKeys: 2000, HotProb: 0.5},
		}
		_, err = workload.Closed{
			Options: workload.Options{DB: db, Template: tmpl, Seed: cfg.Seed + 41,
				Deadline: db.Cluster().ScaleDuration(2 * time.Second)},
			Clients: 20, PerClient: cfg.pick(50, 15),
		}.Run()
		if err != nil {
			cleanup()
			return Result{}, err
		}
		mae := db.Calibration().MeanAbsoluteError()
		fmt.Fprintf(&b, "%-14s mean abs calibration error = %.4f\n", v.name, mae)
		out[strings.ReplaceAll(v.name, "-", "_")+"_mae"] = mae
		cleanup()
	}

	// Monte-Carlo agreement on synthetic flights. The predictor's conflict
	// and latency terms decay against its clock; the default (real) clock
	// would make the decayed rates depend on wall time elapsed between
	// ObserveVote and Likelihood, so pin a virtual clock — it never
	// advances here, making every decay timestamp a pure function of the
	// call sequence.
	topo := regions.Five()
	mcClk := vclock.NewVirtual()
	defer mcClk.Shutdown()
	pred := predictor.New(predictor.Config{
		Regions:      topo.Regions,
		FastQuorum:   4,
		UseConflicts: true,
		UseLatency:   true,
		Clock:        mcClk,
	})
	rng := rand.New(rand.NewSource(cfg.Seed + 43))
	for i := 0; i < 400; i++ {
		region := topo.Regions[rng.Intn(len(topo.Regions))]
		pred.ObserveVote("mc-key", region, rng.Float64() < 0.85,
			time.Duration(20+rng.Intn(160))*time.Millisecond)
	}
	maxDiff := 0.0
	flights := syntheticFlights(topo.Regions)
	for _, f := range flights {
		analytic := pred.Likelihood(f)
		mc := pred.MonteCarlo(f, cfg.pick(20000, 4000), rng)
		diff := analytic - mc
		if diff < 0 {
			diff = -diff
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	fmt.Fprintf(&b, "analytic vs monte-carlo: max |diff| over %d flights = %.4f\n",
		len(flights), maxDiff)
	out["mc_max_abs_diff"] = maxDiff
	return Result{Name: "A2 predictor ablation", Text: b.String(), Metrics: out}, nil
}

// syntheticFlights builds representative in-flight states for the
// analytic-vs-Monte-Carlo comparison.
func syntheticFlights(regionList []simnet.Region) []predictor.Flight {
	return []predictor.Flight{
		{ // fresh submission, one option
			Options:  []predictor.OptionFlight{{Key: "mc-key", Remaining: regionList}},
			Deadline: 800 * time.Millisecond,
		},
		{ // two accepts in, two replicas outstanding
			Options: []predictor.OptionFlight{{
				Key: "mc-key", Accepts: 2, Remaining: regionList[2:],
			}},
			Elapsed:  60 * time.Millisecond,
			Deadline: 800 * time.Millisecond,
		},
		{ // multi-option transaction with one learned option
			Options: []predictor.OptionFlight{
				{Key: "mc-key", Learned: 1},
				{Key: "mc-key", Accepts: 3, Remaining: regionList[3:]},
			},
			Elapsed:  120 * time.Millisecond,
			Deadline: 800 * time.Millisecond,
		},
		{ // deep into the deadline
			Options: []predictor.OptionFlight{{
				Key: "mc-key", Accepts: 1, Remaining: regionList[1:],
			}},
			Elapsed:  500 * time.Millisecond,
			Deadline: 800 * time.Millisecond,
		},
	}
}
