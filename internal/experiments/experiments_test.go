package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment in DESIGN.md's index must be registered.
	want := []string{"t1", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "a1", "a2", "a3", "e1", "e2", "e3", "f9"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Errorf("registry[%d]=%q, want %q", i, Registry[i].ID, id)
		}
		if Registry[i].Title == "" || Registry[i].Run == nil {
			t.Errorf("registry entry %q incomplete", id)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("f4"); !ok {
		t.Error("f4 not found")
	}
	if _, ok := Find("zz"); ok {
		t.Error("unknown experiment found")
	}
}

func TestConfigHelpers(t *testing.T) {
	full := Config{}
	if full.pick(100, 10) != 100 {
		t.Error("full config picked quick size")
	}
	quick := Config{Quick: true}
	if quick.pick(100, 10) != 10 {
		t.Error("quick config picked full size")
	}
	if got := (Config{}).scale(); got <= 0 || got > 1 {
		t.Errorf("default scale=%v", got)
	}
	if got := (Config{TimeScale: 0.5}).scale(); got != 0.5 {
		t.Errorf("explicit scale=%v", got)
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{
		Name:    "demo",
		Text:    "table\n",
		Metrics: map[string]float64{"zeta": 2, "alpha": 1},
	}
	if keys := r.MetricKeys(); len(keys) != 2 || keys[0] != "alpha" {
		t.Errorf("metric keys %v", keys)
	}
	s := r.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "table") {
		t.Errorf("result string %q", s)
	}
	m := r.FormatMetrics()
	if !strings.Contains(m, "alpha") || strings.Index(m, "alpha") > strings.Index(m, "zeta") {
		t.Errorf("metrics block %q", m)
	}
}

func TestWANConversion(t *testing.T) {
	// 5ms measured at scale 0.02 is 250ms of WAN time.
	if got := wan(5*time.Millisecond, 0.02); got != 250*time.Millisecond {
		t.Errorf("wan()=%v", got)
	}
	if got := ms(5*time.Millisecond, 0.02); got != 250 {
		t.Errorf("ms()=%v", got)
	}
}
