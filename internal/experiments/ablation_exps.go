package experiments

import (
	"fmt"
	"strings"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/workload"
)

// A1FastVsClassic reproduces the protocol-path ablation: fast path versus
// classic path across a contention sweep. The fast path wins on latency
// when conflicts are rare (one wide-area round trip, no master hop); as
// contention grows it pays fallback penalties while the master-sequenced
// classic path degrades more gracefully.
func A1FastVsClassic(cfg Config) (Result, error) {
	hotProbs := []float64{0.0, 0.3, 0.6, 0.9}
	perClient := cfg.pick(40, 12)

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %10s %12s\n",
		"mode", "hotprob", "commit", "p50", "p95", "fallbacks")
	for _, mode := range []mdcc.Mode{mdcc.ModeFast, mdcc.ModeClassic} {
		for _, hp := range hotProbs {
			ccfg := cluster.Config{Seed: cfg.Seed + 73}
			if mode == mdcc.ModeClassic {
				ccfg.MasterRegion = regions.Virginia
			}
			db, cleanup, err := openDB(cfg, ccfg, planet.Config{Mode: mode})
			if err != nil {
				return Result{}, err
			}
			scale := db.Cluster().TimeScale()
			rep, err := workload.Closed{
				Options: workload.Options{
					DB: db,
					Template: workload.ReadModifyWrite{
						Keys: workload.Hotspot{Prefix: "ab-", HotKeys: 4, ColdKeys: 2000, HotProb: hp},
					},
					Seed: cfg.Seed + 79,
				},
				Clients: 16, PerClient: perClient,
			}.Run()
			var fallbacks uint64
			for _, r := range db.Cluster().Regions() {
				fallbacks += db.Cluster().Coordinator(r).Fallbacks
			}
			cleanup()
			if err != nil {
				return Result{}, err
			}
			f := rep.Final.Summarize()
			fmt.Fprintf(&b, "%-8s %8.1f %10.3f %10s %10s %12d\n",
				mode, hp, rep.CommitRate(), wan(f.P50, scale), wan(f.P95, scale), fallbacks)
			key := fmt.Sprintf("%s_hp_%02.0f", mode, hp*10)
			out[key+"_commit_rate"] = rep.CommitRate()
			out[key+"_p50_ms"] = ms(f.P50, scale)
			out[key+"_fallbacks"] = float64(fallbacks)
		}
	}
	return Result{Name: "A1 fast vs classic under conflicts", Text: b.String(), Metrics: out}, nil
}

// A3Commutative reproduces the demarcation ablation: on the same hot
// records, commutative bounded decrements (the paper's "buy" workload)
// commit where physical read-modify-writes conflict — until the integrity
// bound runs out, at which point bound violations are rejected up front.
func A3Commutative(cfg Config) (Result, error) {
	perClient := cfg.pick(40, 12)
	clients := 16

	var b strings.Builder
	out := make(map[string]float64)

	// Plentiful stock: commutativity should carry everything.
	for _, tc := range []struct {
		name string
		tmpl workload.Template
	}{
		{"commutative-buy", workload.Buy{
			Products: workload.Uniform{Prefix: "pr-", N: 2}, Stock: 1 << 30,
		}},
		{"physical-rmw", workload.ReadModifyWrite{
			Keys: workload.Uniform{Prefix: "pw-", N: 2},
		}},
	} {
		db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 83}, planet.Config{})
		if err != nil {
			return Result{}, err
		}
		rep, err := workload.Closed{
			Options: workload.Options{DB: db, Template: tc.tmpl, Seed: cfg.Seed + 89},
			Clients: clients, PerClient: perClient,
		}.Run()
		cleanup()
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&b, "%-18s commit-rate=%.3f committed=%d aborted=%d\n",
			tc.name, rep.CommitRate(), rep.Committed.Load(), rep.Aborted.Load())
		out[strings.ReplaceAll(tc.name, "-", "_")+"_commit_rate"] = rep.CommitRate()
	}

	// Scarce stock: exactly Stock units can ever sell; demarcation must
	// cap committed buys at the bound with zero oversell.
	stock := int64(cfg.pick(100, 40))
	db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 97}, planet.Config{})
	if err != nil {
		return Result{}, err
	}
	rep, err := workload.Closed{
		Options: workload.Options{
			DB: db,
			Template: workload.Buy{
				Products: workload.Fixed{List: []string{"scarce"}},
				Stock:    stock,
			},
			Seed: cfg.Seed + 101,
		},
		Clients: clients, PerClient: perClient,
	}.Run()
	if err != nil {
		cleanup()
		return Result{}, err
	}
	db.Cluster().Quiesce(cfg.quiesceBudget())
	var remaining int64 = -1
	if s, err := db.Session(regions.California); err == nil {
		if v, _, err := s.ReadInt("scarce"); err == nil {
			remaining = v
		}
	}
	cleanup()
	sold := stock - remaining
	fmt.Fprintf(&b, "scarce stock: initial=%d sold=%d remaining=%d committed=%d oversell=%v\n",
		stock, sold, remaining, rep.Committed.Load(), remaining < 0)
	out["scarce_sold"] = float64(sold)
	out["scarce_remaining"] = float64(remaining)
	out["scarce_committed"] = float64(rep.Committed.Load())
	return Result{Name: "A3 commutative updates (demarcation)", Text: b.String(), Metrics: out}, nil
}
