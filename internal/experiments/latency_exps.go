package experiments

import (
	"fmt"
	"strings"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/mdcc"
	"planet/internal/metrics"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/workload"
)

// T1RTTMatrix reproduces the evaluation's calibration table: the round-trip
// time matrix between the five datacenters, as measured by probing the
// emulated links.
func T1RTTMatrix(cfg Config) (Result, error) {
	topo := regions.Five()
	net, err := simnet.New(simnet.Config{Latency: topo.Matrix, Seed: cfg.Seed + 3})
	if err != nil {
		return Result{}, err
	}
	probes := cfg.pick(400, 100)

	var b strings.Builder
	metricsOut := make(map[string]float64)
	fmt.Fprintf(&b, "median RTT (ms), %d probes per directed pair\n", probes)
	fmt.Fprintf(&b, "%-14s", "")
	for _, to := range topo.Regions {
		fmt.Fprintf(&b, "%14s", to)
	}
	b.WriteByte('\n')
	for _, from := range topo.Regions {
		fmt.Fprintf(&b, "%-14s", from)
		for _, to := range topo.Regions {
			if from == to {
				fmt.Fprintf(&b, "%14s", "-")
				continue
			}
			rec := metrics.NewHistogram()
			for i := 0; i < probes; i++ {
				rtt := net.SampleDelay(from, to) + net.SampleDelay(to, from)
				rec.Observe(rtt)
			}
			med := rec.Quantile(0.5)
			fmt.Fprintf(&b, "%14s", med.Round(time.Millisecond))
			metricsOut[fmt.Sprintf("rtt_ms_%s_%s", from, to)] = float64(med) / float64(time.Millisecond)
		}
		b.WriteByte('\n')
	}
	return Result{Name: "T1 RTT matrix", Text: b.String(), Metrics: metricsOut}, nil
}

// F1CommitCDF reproduces the commit-latency distribution figure: final
// commit latency per origin datacenter for the fast path versus the classic
// path (master in Virginia), on an uncontended uniform workload.
func F1CommitCDF(cfg Config) (Result, error) {
	perClient := cfg.pick(40, 10)
	out := make(map[string]float64)
	var b strings.Builder

	for _, mode := range []mdcc.Mode{mdcc.ModeFast, mdcc.ModeClassic} {
		ccfg := cluster.Config{Seed: cfg.Seed + 5}
		if mode == mdcc.ModeClassic {
			ccfg.MasterRegion = regions.Virginia
		}
		db, cleanup, err := openDB(cfg, ccfg, planet.Config{Mode: mode})
		if err != nil {
			return Result{}, err
		}
		scale := db.Cluster().TimeScale()

		// One driver per origin region so latencies stay attributable.
		var californiaFinal *metrics.Histogram
		for _, origin := range db.Cluster().Regions() {
			rep, err := workload.Closed{
				Options: workload.Options{
					DB: db,
					Template: workload.ReadModifyWrite{
						Keys: workload.Uniform{Prefix: "u-", N: 5000}, NKeys: 1,
					},
					Regions: []simnet.Region{origin},
					Seed:    cfg.Seed + int64(len(origin)),
				},
				Clients: 4, PerClient: perClient,
			}.Run()
			if err != nil {
				cleanup()
				return Result{}, err
			}
			if origin == regions.California {
				californiaFinal = rep.Final
			}
			s := rep.Final.Summarize()
			fmt.Fprintf(&b, "%-8s origin=%-14s n=%4d  p50=%8s  p95=%8s  p99=%8s\n",
				mode, origin, s.Count, wan(s.P50, scale), wan(s.P95, scale), wan(s.P99, scale))
			out[fmt.Sprintf("%s_%s_p50_ms", mode, origin)] = ms(s.P50, scale)
			out[fmt.Sprintf("%s_%s_p95_ms", mode, origin)] = ms(s.P95, scale)
		}
		// The figure itself is a CDF; print deciles for the California
		// origin so the curve can be plotted directly.
		if californiaFinal != nil {
			fmt.Fprintf(&b, "%-8s origin=us-west CDF:", mode)
			for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99} {
				fmt.Fprintf(&b, " p%02.0f=%s", p*100, wan(californiaFinal.Quantile(p), scale))
			}
			b.WriteByte('\n')
		}
		cleanup()
	}
	return Result{Name: "F1 commit-latency CDF (fast vs classic)", Text: b.String(), Metrics: out}, nil
}

// F7Stages reproduces the stage-latency table: per origin datacenter, the
// latency from submission to acceptance, to speculative commit, and to the
// final decision.
func F7Stages(cfg Config) (Result, error) {
	db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 7}, planet.Config{})
	if err != nil {
		return Result{}, err
	}
	defer cleanup()
	scale := db.Cluster().TimeScale()
	perClient := cfg.pick(40, 12)

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-14s %10s %12s %10s %10s %10s\n",
		"origin", "accept p50", "speculative", "final p50", "final p95", "final p99")
	for _, origin := range db.Cluster().Regions() {
		rep, err := workload.Closed{
			Options: workload.Options{
				DB: db,
				Template: workload.ReadModifyWrite{
					Keys: workload.Uniform{Prefix: "s-", N: 5000}, NKeys: 1,
				},
				Regions:     []simnet.Region{origin},
				SpeculateAt: 0.90,
				Seed:        cfg.Seed + 31,
			},
			Clients: 4, PerClient: perClient,
		}.Run()
		if err != nil {
			return Result{}, err
		}
		acc := rep.Accept.Summarize()
		spec := rep.Speculative.Summarize()
		fin := rep.Final.Summarize()
		fmt.Fprintf(&b, "%-14s %10s %12s %10s %10s %10s\n", origin,
			wan(acc.P50, scale), wan(spec.P50, scale),
			wan(fin.P50, scale), wan(fin.P95, scale), wan(fin.P99, scale))
		out[fmt.Sprintf("%s_accept_p50_ms", origin)] = ms(acc.P50, scale)
		out[fmt.Sprintf("%s_spec_p50_ms", origin)] = ms(spec.P50, scale)
		out[fmt.Sprintf("%s_final_p50_ms", origin)] = ms(fin.P50, scale)
	}
	return Result{Name: "F7 stage latencies", Text: b.String(), Metrics: out}, nil
}

// F8Scale reproduces the datacenter-count scaling figure: commit latency as
// the deployment grows from three to seven regions (quorums widen).
func F8Scale(cfg Config) (Result, error) {
	topos := []struct {
		name string
		topo regions.Topology
	}{
		{"3-dc", regions.Three()},
		{"5-dc", regions.Five()},
		{"7-dc", regions.Seven()},
	}
	perClient := cfg.pick(40, 12)

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-6s %3s %6s %6s %10s %10s %12s\n",
		"topo", "n", "cq", "fq", "p50", "p95", "goodput/s")
	for _, tc := range topos {
		db, cleanup, err := openDB(cfg, cluster.Config{
			Topology: tc.topo, Seed: cfg.Seed + 11,
		}, planet.Config{})
		if err != nil {
			return Result{}, err
		}
		scale := db.Cluster().TimeScale()
		rep, err := workload.Closed{
			Options: workload.Options{
				DB: db,
				Template: workload.ReadModifyWrite{
					Keys: workload.Uniform{Prefix: "sc-", N: 5000}, NKeys: 1,
				},
				Regions: []simnet.Region{regions.California},
				Seed:    cfg.Seed + 13,
			},
			Clients: 4, PerClient: perClient,
		}.Run()
		cleanup()
		if err != nil {
			return Result{}, err
		}
		n := len(tc.topo.Regions)
		s := rep.Final.Summarize()
		fmt.Fprintf(&b, "%-6s %3d %6d %6d %10s %10s %12.1f\n",
			tc.name, n, mdcc.ClassicQuorum(n), mdcc.FastQuorum(n),
			wan(s.P50, scale), wan(s.P95, scale), rep.GoodputPerSec())
		out[tc.name+"_p50_ms"] = ms(s.P50, scale)
		out[tc.name+"_p95_ms"] = ms(s.P95, scale)
	}
	return Result{Name: "F8 datacenter scaling", Text: b.String(), Metrics: out}, nil
}
