package experiments

import (
	"fmt"
	"strings"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/workload"
)

// F4Speculation reproduces the speculation-threshold sweep: as the
// application raises its likelihood threshold, speculation fires later
// (higher perceived latency) but is wrong less often (lower apology rate).
// At every threshold the perceived latency stays well below the final
// geo-commit latency — PLANET's headline user-experience claim.
func F4Speculation(cfg Config) (Result, error) {
	thresholds := []float64{0.50, 0.80, 0.90, 0.95, 0.99}
	perClient := cfg.pick(50, 15)

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %10s %10s\n",
		"threshold", "perceived", "final p50", "spec-rate", "apology", "commit")
	for _, th := range thresholds {
		db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 47}, planet.Config{})
		if err != nil {
			return Result{}, err
		}
		scale := db.Cluster().TimeScale()
		rep, err := workload.Closed{
			Options: workload.Options{
				DB: db,
				Template: workload.ReadModifyWrite{
					Keys: workload.Hotspot{Prefix: "sp-", HotKeys: 8, ColdKeys: 4000, HotProb: 0.25},
				},
				SpeculateAt: th,
				Seed:        cfg.Seed + 53,
			},
			Clients: 20, PerClient: perClient,
		}.Run()
		cleanup()
		if err != nil {
			return Result{}, err
		}
		p := rep.Perceived.Summarize()
		f := rep.Final.Summarize()
		fmt.Fprintf(&b, "%-10.2f %12s %12s %10.3f %10.3f %10.3f\n",
			th, wan(p.P50, scale), wan(f.P50, scale),
			rep.SpeculationRate(), rep.ApologyRate(), rep.CommitRate())
		key := fmt.Sprintf("th_%03.0f", th*100)
		out[key+"_perceived_p50_ms"] = ms(p.P50, scale)
		out[key+"_final_p50_ms"] = ms(f.P50, scale)
		out[key+"_spec_rate"] = rep.SpeculationRate()
		out[key+"_apology_rate"] = rep.ApologyRate()
	}
	return Result{Name: "F4 speculation threshold sweep", Text: b.String(), Metrics: out}, nil
}

// F5AdmissionLoad reproduces the admission-control headline figure: goodput
// (committed transactions per second) against offered open-loop load on a
// contended store, with and without likelihood-based admission control.
// Without admission, past saturation every extra transaction mostly burns
// quorum work before aborting; with admission the doomed ones are rejected
// up front and goodput holds.
func F5AdmissionLoad(cfg Config) (Result, error) {
	// Offered load in transactions/second of emulator time.
	rates := []float64{200, 600, 1200, 2400}
	count := cfg.pick(500, 150)

	policies := []struct {
		name      string
		admission planet.AdmissionPolicy
	}{
		{"no-admission", planet.AdmissionPolicy{}},
		{"admission", planet.AdmissionPolicy{MinLikelihood: 0.40, MaxInFlight: 120}},
	}

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-14s %10s %12s %10s %10s %10s\n",
		"policy", "offered/s", "goodput/s", "commit", "rejected", "p50-final")
	for _, pol := range policies {
		for _, rate := range rates {
			db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 59},
				planet.Config{Admission: pol.admission})
			if err != nil {
				return Result{}, err
			}
			scale := db.Cluster().TimeScale()
			rep, err := workload.Open{
				Options: workload.Options{
					DB: db,
					Template: workload.ReadModifyWrite{
						Keys: workload.Hotspot{Prefix: "ld-", HotKeys: 4, ColdKeys: 2000, HotProb: 0.6},
					},
					Seed: cfg.Seed + 61,
				},
				Rate: rate, Count: count,
			}.Run()
			cleanup()
			if err != nil {
				return Result{}, err
			}
			rejFrac := float64(rep.Rejected.Load()) / float64(rep.Total())
			f := rep.Final.Summarize()
			fmt.Fprintf(&b, "%-14s %10.0f %12.1f %10.3f %10.3f %10s\n",
				pol.name, rate, rep.GoodputPerSec(), rep.CommitRate(), rejFrac,
				wan(f.P50, scale))
			key := fmt.Sprintf("%s_rate_%04.0f", strings.ReplaceAll(pol.name, "-", "_"), rate)
			out[key+"_goodput"] = rep.GoodputPerSec()
			out[key+"_commit_rate"] = rep.CommitRate()
			out[key+"_reject_frac"] = rejFrac
		}
	}
	return Result{Name: "F5 admission control vs offered load", Text: b.String(), Metrics: out}, nil
}

// F6Contention reproduces the contention sweep: commit rate and goodput as
// the hotspot shrinks (fewer hot records = more contention), with and
// without admission control.
func F6Contention(cfg Config) (Result, error) {
	hotSizes := []int{256, 64, 16, 4, 1}
	perClient := cfg.pick(40, 12)

	policies := []struct {
		name      string
		admission planet.AdmissionPolicy
	}{
		{"no-admission", planet.AdmissionPolicy{}},
		{"admission", planet.AdmissionPolicy{MinLikelihood: 0.40}},
	}

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-14s %8s %10s %12s %10s %10s\n",
		"policy", "hotkeys", "commit", "goodput/s", "rejected", "aborted")
	for _, pol := range policies {
		for _, hot := range hotSizes {
			db, cleanup, err := openDB(cfg, cluster.Config{Seed: cfg.Seed + 67},
				planet.Config{Admission: pol.admission})
			if err != nil {
				return Result{}, err
			}
			rep, err := workload.Closed{
				Options: workload.Options{
					DB: db,
					Template: workload.ReadModifyWrite{
						Keys: workload.Hotspot{Prefix: "ct-", HotKeys: hot, ColdKeys: 2000, HotProb: 0.8},
					},
					Seed: cfg.Seed + 71,
				},
				Clients: 24, PerClient: perClient,
			}.Run()
			cleanup()
			if err != nil {
				return Result{}, err
			}
			fmt.Fprintf(&b, "%-14s %8d %10.3f %12.1f %10d %10d\n",
				pol.name, hot, rep.CommitRate(), rep.GoodputPerSec(),
				rep.Rejected.Load(), rep.Aborted.Load())
			key := fmt.Sprintf("%s_hot_%03d", strings.ReplaceAll(pol.name, "-", "_"), hot)
			out[key+"_commit_rate"] = rep.CommitRate()
			out[key+"_goodput"] = rep.GoodputPerSec()
			out[key+"_aborted"] = float64(rep.Aborted.Load())
		}
	}
	return Result{Name: "F6 contention sweep", Text: b.String(), Metrics: out}, nil
}
