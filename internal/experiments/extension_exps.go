package experiments

import (
	"fmt"
	"strings"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/latency"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/workload"
)

// The paper's title condition — *unpredictable environments* — is latency
// variance and unreliability, not just distance. The two extension
// experiments below sweep exactly those knobs. They go beyond the
// reconstructed core evaluation and are labeled E-series in DESIGN.md.

// E1LossSweep measures protocol robustness as uniform message loss grows:
// commit rate, timeouts, and latency tails. Decide messages carry the full
// option set, so replicas that miss a proposal still converge; the cost of
// loss is retried quorums (fallbacks) and timeout aborts, not divergence.
func E1LossSweep(cfg Config) (Result, error) {
	lossRates := []float64{0, 0.02, 0.05, 0.10}
	perClient := cfg.pick(40, 12)

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %10s %12s %10s\n",
		"loss", "commit", "p50", "p95", "p99", "fallbacks", "timeouts")
	for _, loss := range lossRates {
		db, cleanup, err := openDB(cfg, cluster.Config{
			Seed: cfg.Seed + 103, LossRate: loss,
			CommitTimeout: 10 * time.Second,
		}, planet.Config{})
		if err != nil {
			return Result{}, err
		}
		scale := db.Cluster().TimeScale()
		rep, err := workload.Closed{
			Options: workload.Options{
				DB:       db,
				Template: workload.Buy{Products: workload.Uniform{Prefix: "ls-", N: 4000}},
				Seed:     cfg.Seed + 107,
			},
			Clients: 16, PerClient: perClient,
		}.Run()
		var fallbacks, timeouts uint64
		for _, r := range db.Cluster().Regions() {
			fallbacks += db.Cluster().Coordinator(r).Fallbacks
			timeouts += db.Cluster().Coordinator(r).Timeouts
		}
		cleanup()
		if err != nil {
			return Result{}, err
		}
		f := rep.Final.Summarize()
		fmt.Fprintf(&b, "%-8.2f %8.3f %10s %10s %10s %12d %10d\n",
			loss, rep.CommitRate(), wan(f.P50, scale), wan(f.P95, scale),
			wan(f.P99, scale), fallbacks, timeouts)
		key := fmt.Sprintf("loss_%03.0f", loss*100)
		out[key+"_commit_rate"] = rep.CommitRate()
		out[key+"_p50_ms"] = ms(f.P50, scale)
		out[key+"_p95_ms"] = ms(f.P95, scale)
		out[key+"_fallbacks"] = float64(fallbacks)
		out[key+"_timeouts"] = float64(timeouts)
	}
	return Result{Name: "E1 message-loss sweep (extension)", Text: b.String(), Metrics: out}, nil
}

// E2JitterSweep is the motivation experiment: as WAN latency variance
// grows (log-normal sigma sweep on the same medians), the final-commit
// tail inflates dramatically while speculative commits keep the
// user-perceived latency nearly flat — the unpredictability PLANET's
// programming model exists to absorb.
func E2JitterSweep(cfg Config) (Result, error) {
	sigmas := []float64{0.05, 0.18, 0.40, 0.80}
	perClient := cfg.pick(80, 15)

	// Tail percentiles are the measurement here, and at heavy time
	// compression a millisecond of scheduler noise reads as 50ms of WAN
	// tail. Run this experiment at a gentler compression so the emulated
	// jitter, not the host scheduler, owns the tail.
	if cfg.TimeScale < 0.1 {
		cfg.TimeScale = 0.1
	}
	regionSet := []simnet.Region{regions.California, regions.Virginia,
		regions.Ireland, regions.Singapore, regions.Tokyo}

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %14s %10s\n",
		"sigma", "final p50", "final p95", "final p99", "perceived p50", "apology")
	for _, sigma := range sigmas {
		topo, err := jitterTopology(regionSet, sigma)
		if err != nil {
			return Result{}, err
		}
		db, cleanup, err := openDB(cfg, cluster.Config{
			Topology: topo, Seed: cfg.Seed + 109,
			CommitTimeout: 30 * time.Second,
		}, planet.Config{})
		if err != nil {
			return Result{}, err
		}
		scale := db.Cluster().TimeScale()
		rep, err := workload.Closed{
			Options: workload.Options{
				DB:          db,
				Template:    workload.Buy{Products: workload.Uniform{Prefix: "js-", N: 4000}},
				SpeculateAt: 0.95,
				Seed:        cfg.Seed + 113,
			},
			Clients: 16, PerClient: perClient,
		}.Run()
		cleanup()
		if err != nil {
			return Result{}, err
		}
		f := rep.Final.Summarize()
		p := rep.Perceived.Summarize()
		fmt.Fprintf(&b, "%-8.2f %10s %10s %10s %14s %10.3f\n",
			sigma, wan(f.P50, scale), wan(f.P95, scale), wan(f.P99, scale),
			wan(p.P50, scale), rep.ApologyRate())
		key := fmt.Sprintf("sigma_%03.0f", sigma*100)
		out[key+"_final_p50_ms"] = ms(f.P50, scale)
		out[key+"_final_p99_ms"] = ms(f.P99, scale)
		out[key+"_perceived_p50_ms"] = ms(p.P50, scale)
		out[key+"_apology_rate"] = rep.ApologyRate()
	}
	return Result{Name: "E2 latency-jitter sweep (extension)", Text: b.String(), Metrics: out}, nil
}

// jitterTopology builds the region matrix with the same median one-way
// delays as the standard presets but a much larger stochastic component
// (floor at 50% of the one-way time instead of 85%), so the sigma sweep
// actually moves the tail — modeling congested, bursty paths rather than
// quiet ones.
func jitterTopology(regionSet []simnet.Region, sigma float64) (regions.Topology, error) {
	m := simnet.NewMatrix(nil)
	for i, a := range regionSet {
		for _, b := range regionSet[i+1:] {
			rtt, err := regions.RTT(a, b)
			if err != nil {
				return regions.Topology{}, err
			}
			oneWay := rtt / 2
			floor := time.Duration(float64(oneWay) * 0.5)
			m.SetLink(a, b, latency.NewLogNormal(floor, oneWay-floor, sigma))
		}
	}
	rs := make([]simnet.Region, len(regionSet))
	copy(rs, regionSet)
	return regions.Topology{Regions: rs, Matrix: m}, nil
}
